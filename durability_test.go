package gsqlgo_test

import (
	"errors"
	"testing"

	"gsqlgo"
)

func socialInit() (*gsqlgo.Graph, error) {
	s := gsqlgo.NewSchema()
	s.AddVertexType("Person", gsqlgo.AttrDef{Name: "name", Type: gsqlgo.AttrString})
	s.AddEdgeType("Knows", false)
	return gsqlgo.NewGraph(s), nil
}

const friendCount = `CREATE QUERY Friends() {
  SumAccum<int> @deg;
  R = SELECT p FROM Person:p -(Knows)- Person:q ACCUM p.@deg += 1;
  PRINT R[R.name, R.@deg];
}`

// TestOpenDBLifecycle drives the public durable API: seed, mutate,
// crash-style reopen, query, checkpoint, reopen again.
func TestOpenDBLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := gsqlgo.OpenDB(dir, socialInit, gsqlgo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Recovered() {
		t.Fatal("fresh OpenDB claims to have recovered state")
	}
	g := db.Graph()
	ada, err := g.AddVertex("Person", "ada", map[string]gsqlgo.Value{"name": gsqlgo.Str("Ada")})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := g.AddVertex("Person", "bob", map[string]gsqlgo.Value{"name": gsqlgo.Str("Bob")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("Knows", ada, bob, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddVertex("Person", "ada", nil); !errors.Is(err, gsqlgo.ErrDuplicateKey) {
		t.Fatalf("duplicate key: err = %v, want ErrDuplicateKey", err)
	}
	res, err := db.InstallAndRun(friendCount, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Printed[0].String()
	// No Close: the reopen below recovers from the WAL alone.

	db2, err := gsqlgo.OpenDB(dir, nil, gsqlgo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !db2.Recovered() {
		t.Fatal("reopen did not report recovery")
	}
	res2, err := db2.InstallAndRun(friendCount, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Printed[0].String(); got != want {
		t.Fatalf("recovered results differ:\n%s\nwant:\n%s", got, want)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Graph().AddVertex("Person", "cyd", nil); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}

	db3, err := gsqlgo.OpenDB(dir, nil, gsqlgo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if n := db3.Graph().NumVertices(); n != 3 {
		t.Fatalf("post-checkpoint reopen has %d vertices, want 3", n)
	}
}

// TestOpenInMemoryHasNoStore pins the in-memory DB's durability
// surface: Checkpoint errors, Close is a no-op.
func TestOpenInMemoryHasNoStore(t *testing.T) {
	g, _ := socialInit()
	db := gsqlgo.Open(g, gsqlgo.Options{})
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on in-memory DB succeeded")
	}
	if db.Recovered() {
		t.Fatal("in-memory DB claims recovery")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close on in-memory DB: %v", err)
	}
}
