module gsqlgo

go 1.22
