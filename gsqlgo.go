// Package gsqlgo is a Go reproduction of "Aggregation Support for
// Modern Graph Analytics in TigerGraph" (Deutsch, Xu, Wu, Lee —
// SIGMOD 2020): an in-memory property-graph engine with a GSQL-style
// query language featuring accumulator-based aggregation (vertex @
// and global @@ accumulators with snapshot map/reduce semantics),
// direction-aware regular path expressions (DARPEs), and the paper's
// all-shortest-paths pattern-matching semantics evaluated by
// polynomial path counting — alongside the competing non-repeated-edge
// and non-repeated-vertex semantics as reference baselines.
//
// Typical use:
//
//	schema := gsqlgo.NewSchema()
//	schema.AddVertexType("Person", gsqlgo.AttrDef{Name: "name", Type: gsqlgo.AttrString})
//	schema.AddEdgeType("Knows", false) // undirected
//	g := gsqlgo.NewGraph(schema)
//	// ... AddVertex/AddEdge or LoadVerticesCSV/LoadEdgesCSV ...
//	db := gsqlgo.Open(g, gsqlgo.Options{})
//	db.Install(`CREATE QUERY Hello(...) { ... }`)
//	res, err := db.Run("Hello", map[string]gsqlgo.Value{...})
package gsqlgo

import (
	"context"
	"errors"
	"io"

	"gsqlgo/internal/accum"
	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/match"
	"gsqlgo/internal/storage"
	"gsqlgo/internal/trace"
	"gsqlgo/internal/value"
)

// Re-exported graph types.
type (
	// Schema is the catalog of vertex and edge types.
	Schema = graph.Schema
	// Graph is the in-memory property graph.
	Graph = graph.Graph
	// AttrDef declares one vertex/edge attribute.
	AttrDef = graph.AttrDef
	// AttrType is the declared type of an attribute.
	AttrType = graph.AttrType
	// VID identifies a vertex.
	VID = graph.VID
	// EID identifies an edge.
	EID = graph.EID
)

// Attribute types.
const (
	AttrInt      = graph.AttrInt
	AttrFloat    = graph.AttrFloat
	AttrString   = graph.AttrString
	AttrBool     = graph.AttrBool
	AttrDatetime = graph.AttrDatetime
)

// Re-exported engine types.
type (
	// Options configures path-match semantics, parallelism and the
	// Appendix A multiplicity-shortcut ablation.
	Options = core.Options
	// Result is the outcome of one query run.
	Result = core.Result
	// Table is a named result table.
	Table = core.Table
	// Value is a GSQL runtime value.
	Value = value.Value
	// Semantics selects a path-legality flavor (Section 6.1).
	Semantics = match.Semantics
)

// Path-legality flavors.
const (
	// AllShortestPaths is the paper's default: polynomial path
	// counting (Theorems 6.1 and 7.1).
	AllShortestPaths = match.AllShortestPaths
	// NonRepeatedEdge is Cypher's default semantics (exponential
	// enumeration baseline).
	NonRepeatedEdge = match.NonRepeatedEdge
	// NonRepeatedVertex is the Gremlin-tutorial semantics
	// (exponential enumeration baseline).
	NonRepeatedVertex = match.NonRepeatedVertex
	// ShortestExists is the SparQL-style existence semantics.
	ShortestExists = match.ShortestExists
)

// Value constructors.
var (
	// Int wraps an int64.
	Int = value.NewInt
	// Float wraps a float64.
	Float = value.NewFloat
	// Str wraps a string.
	Str = value.NewString
	// Bool wraps a bool.
	Bool = value.NewBool
	// DatetimeUnix wraps Unix seconds as a datetime.
	DatetimeUnix = value.NewDatetime
	// Vertex wraps a vertex id (use Graph.VertexByKey to obtain one).
	Vertex = value.NewVertex
)

// Datetime parses "YYYY-MM-DD[ HH:MM:SS]" (UTC) into a datetime value;
// it panics on malformed literals (use graph CSV loading for data).
func Datetime(s string) Value { return graph.MustDatetime(s) }

// NewSchema returns an empty schema.
func NewSchema() *Schema { return graph.NewSchema() }

// NewGraph returns an empty graph over the schema.
func NewGraph(s *Schema) *Graph { return graph.New(s) }

// Error taxonomy re-exports: match with errors.Is.
var (
	// ErrUnknownQuery: the named query is not installed.
	ErrUnknownQuery = core.ErrUnknownQuery
	// ErrParse: the GSQL source failed to parse or validate.
	ErrParse = core.ErrParse
	// ErrCancelled: a run was stopped by context cancellation or
	// deadline.
	ErrCancelled = core.ErrCancelled
	// ErrDuplicateQuery: Install collided with an installed name.
	ErrDuplicateQuery = core.ErrDuplicateQuery
	// ErrDuplicateKey: AddVertex collided with an existing
	// (type, key) pair.
	ErrDuplicateKey = graph.ErrDuplicateKey
	// ErrCorrupt: durable state failed validation during recovery or
	// snapshot load (distinct from a crash-torn WAL tail, which
	// recovery repairs silently).
	ErrCorrupt = storage.ErrCorrupt
)

// DB couples a graph with a GSQL engine and, when opened with OpenDB,
// a durable store.
type DB struct {
	g  *Graph
	e  *core.Engine
	st *storage.Store
}

// Open creates a DB over a loaded graph.
func Open(g *Graph, opts Options) *DB {
	return &DB{g: g, e: core.New(g, opts)}
}

// OpenDB opens a durable DB rooted at dir. An existing store is
// recovered — newest valid snapshot loaded, WAL tail replayed, torn
// tail truncated — and init is ignored; a fresh directory is seeded by
// calling init and persisting its graph. Every subsequent AddVertex /
// AddEdge / SetVertexAttr on the DB's graph is write-ahead-logged, so
// the graph survives a crash at any point. Mutation is single-writer
// (the graph's usual discipline); call Checkpoint only while no
// mutation is in flight, and Close when done.
func OpenDB(dir string, init func() (*Graph, error), opts Options) (*DB, error) {
	st, err := storage.Open(dir, storage.Options{Init: init})
	if err != nil {
		return nil, err
	}
	return &DB{g: st.Graph(), e: core.New(st.Graph(), opts), st: st}, nil
}

// Checkpoint writes a snapshot and rotates the write-ahead log,
// bounding the next open's replay work. It is an error on a DB not
// opened with OpenDB.
func (db *DB) Checkpoint() error {
	if db.st == nil {
		return errors.New("gsqlgo: DB has no durable store (use OpenDB)")
	}
	return db.st.Checkpoint()
}

// Recovered reports whether OpenDB found and recovered existing state
// (false on a DB that seeded a fresh directory or was built with Open).
func (db *DB) Recovered() bool { return db.st != nil && db.st.Recovered() }

// Close syncs and closes the durable store, if any. The DB stays
// usable in memory; further mutations are no longer persisted.
func (db *DB) Close() error {
	if db.st == nil {
		return nil
	}
	return db.st.Close()
}

// Graph returns the underlying graph.
func (db *DB) Graph() *Graph { return db.g }

// Install parses GSQL source and registers its queries.
func (db *DB) Install(src string) error { return db.e.Install(src) }

// Run executes an installed query.
func (db *DB) Run(name string, args map[string]Value) (*Result, error) {
	return db.e.Run(name, args)
}

// RunCtx executes an installed query under a context: cancellation
// and deadlines propagate cooperatively into the ACCUM and path-
// counting loops, and a run aborted that way fails with an error
// matching errors.Is(err, ErrCancelled).
func (db *DB) RunCtx(ctx context.Context, name string, args map[string]Value) (*Result, error) {
	return db.e.RunCtx(ctx, name, args)
}

// InstallAndRun installs a single-query source and runs it.
func (db *DB) InstallAndRun(src string, args map[string]Value) (*Result, error) {
	return db.e.InstallAndRun(src, args)
}

// InstallAndRunCtx is InstallAndRun under a context (see RunCtx).
func (db *DB) InstallAndRunCtx(ctx context.Context, src string, args map[string]Value) (*Result, error) {
	return db.e.InstallAndRunCtx(ctx, src, args)
}

// Span re-exports the execution-trace span type: a named, timed tree
// with attributes, produced when a run executes under a traced
// context (see RunProfiled).
type Span = trace.Span

// NewTraceContext derives a context that carries root; RunCtx under
// it records spans for every execution phase (parse, DFA compile,
// each hop, ACCUM/POST-ACCUM) into the tree. Result.Profile points at
// the same root. End the root yourself when the run returns.
func NewTraceContext(ctx context.Context, root *Span) context.Context {
	return trace.NewContext(ctx, root)
}

// RunProfiled executes an installed query with tracing enabled and
// returns the finished span tree alongside the result. Render it with
// RenderTrace for an EXPLAIN ANALYZE-style view, or marshal it to
// JSON. The profile is returned even when the run fails, so error
// paths can still be timed.
func (db *DB) RunProfiled(name string, args map[string]Value) (*Result, *Span, error) {
	root := trace.New("query")
	res, err := db.e.RunCtx(trace.NewContext(context.Background(), root), name, args)
	root.End()
	return res, root, err
}

// RenderTrace writes an EXPLAIN ANALYZE-style rendering of a span
// tree: one line per span with actual time and attributes, children
// indented with tree glyphs.
func RenderTrace(w io.Writer, root *Span) { trace.Render(w, root) }

// Queries lists installed query names.
func (db *DB) Queries() []string { return db.e.Queries() }

// Explain renders a human-readable evaluation plan for an installed
// query: per-hop strategy (adjacency expansion vs polynomial counting
// vs enumeration), clause structure, and effective path semantics.
func (db *DB) Explain(name string) (string, error) { return db.e.Explain(name) }

// RelTable re-exports the relational-table type joinable against
// graph patterns in FROM clauses (Example 1 of the paper).
type RelTable = core.RelTable

// NewRelTable builds a relational table from columns and rows.
func NewRelTable(name string, cols []string, rows [][]Value) (*RelTable, error) {
	return core.NewRelTable(name, cols, rows)
}

// RegisterTable registers a relational table for use in this DB's
// FROM clauses.
func (db *DB) RegisterTable(t *RelTable) error { return db.e.RegisterTable(t) }

// RegisterAccumulator installs a user-defined accumulator type — the
// extensible accumulator library of Section 3. The name must follow
// the *Accum convention to be usable in declarations.
func RegisterAccumulator(c accum.CustomType) { accum.Register(c) }

// CustomAccumulator re-exports the registration record type.
type CustomAccumulator = accum.CustomType

// Accumulator re-exports the accumulator instance interface for
// user-defined types.
type Accumulator = accum.Accumulator

// AccumSpec re-exports the accumulator type descriptor.
type AccumSpec = accum.Spec
