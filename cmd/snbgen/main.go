// Command snbgen generates the SNB-like social-network dataset of
// Section 7.1 / Appendix B to a directory of CSV files (plus
// schema.json) consumable by cmd/gsql:
//
//	snbgen -sf 1 -out ./snb-sf1
//	gsql -data ./snb-sf1 -query myquery.gsql -run MyQuery ...
//
// -mutations N additionally writes mutations.jsonl: N records of the
// deterministic SNB-shaped update stream (add_vertex / add_edge /
// set_attr, one JSON object per line) consistent with the generated
// graph — the write side of a sustained-load workload (cmd/gsqlbench
// generates the same stream in-process from the same knobs).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gsqlgo/internal/ldbc"
)

func main() {
	sf := flag.Float64("sf", 1, "scale factor (persons ≈ 1000·sf)")
	seed := flag.Int64("seed", 7, "generator seed")
	deg := flag.Int("knows-degree", 0, "average KNOWS degree (0 = default)")
	out := flag.String("out", "snb-data", "output directory")
	mutations := flag.Int("mutations", 0, "also write N mutation-stream records to mutations.jsonl")
	mutPrefix := flag.String("mutation-prefix", "mut", "key namespace for vertices the mutation stream adds")
	flag.Parse()

	cfg := ldbc.Config{SF: *sf, Seed: *seed, AvgKnowsDegree: *deg}
	g := ldbc.Generate(cfg)
	if err := g.DumpCSV(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d vertices, %d edges to %s\n", g.NumVertices(), g.NumEdges(), *out)
	if *mutations > 0 {
		path := filepath.Join(*out, "mutations.jsonl")
		if err := writeMutations(path, cfg, *mutations, *seed, *mutPrefix); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d mutation records to %s\n", *mutations, path)
	}
}

func writeMutations(path string, cfg ldbc.Config, n int, seed int64, prefix string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, m := range ldbc.Mutations(cfg, n, seed, prefix) {
		if err := enc.Encode(m); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
