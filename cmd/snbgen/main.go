// Command snbgen generates the SNB-like social-network dataset of
// Section 7.1 / Appendix B to a directory of CSV files (plus
// schema.json) consumable by cmd/gsql:
//
//	snbgen -sf 1 -out ./snb-sf1
//	gsql -data ./snb-sf1 -query myquery.gsql -run MyQuery ...
package main

import (
	"flag"
	"fmt"
	"log"

	"gsqlgo/internal/ldbc"
)

func main() {
	sf := flag.Float64("sf", 1, "scale factor (persons ≈ 1000·sf)")
	seed := flag.Int64("seed", 7, "generator seed")
	deg := flag.Int("knows-degree", 0, "average KNOWS degree (0 = default)")
	out := flag.String("out", "snb-data", "output directory")
	flag.Parse()

	g := ldbc.Generate(ldbc.Config{SF: *sf, Seed: *seed, AvgKnowsDegree: *deg})
	if err := g.DumpCSV(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d vertices, %d edges to %s\n", g.NumVertices(), g.NumEdges(), *out)
}
