// Command gsql runs GSQL queries against a graph loaded from CSV (the
// cmd/snbgen layout) or one of the built-in paper graphs:
//
//	gsql -data ./snb-sf1 -query q.gsql -run MyQuery -arg p=vertex:Person:person0 -arg k=int:10
//	gsql -builtin diamond:20 -query qn.gsql -run Qn -arg srcName=v0 -arg tgtName=v20
//	gsql -builtin g1 -semantics nre -query qn.gsql -run Qn -arg srcName=1 -arg tgtName=5
//
// Argument syntax: name=value with optional explicit type prefix —
// int:, float:, string:, bool:, datetime:, vertex:<Type>:<key>.
// Untyped values are inferred (int, then float, then datetime, then
// string).
//
// With -data-dir the graph comes from (and persists to) a durable
// store — recovered if the directory holds one, seeded from
// -data/-builtin otherwise — and -checkpoint snapshots it on exit.
// With -i the command drops into a meta-command loop (\help lists the
// commands, including \save/\load for moving graphs through snapshot
// files and \checkpoint for the store).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/ldbc"
	"gsqlgo/internal/match"
	"gsqlgo/internal/storage"
	"gsqlgo/internal/trace"
	"gsqlgo/internal/value"
)

type argList []string

func (a *argList) String() string     { return strings.Join(*a, ",") }
func (a *argList) Set(s string) error { *a = append(*a, s); return nil }

func main() {
	data := flag.String("data", "", "directory with schema.json and CSV files (from snbgen or DumpCSV)")
	builtin := flag.String("builtin", "", "built-in graph: diamond:N | sales | snb:SF | g1 | g2 | linkgraph:N")
	dataDir := flag.String("data-dir", "", "durable store directory (snapshots + WAL); recovered if present, seeded from -data/-builtin otherwise")
	checkpoint := flag.Bool("checkpoint", false, "checkpoint the -data-dir store before exiting")
	interactive := flag.Bool("i", false, `interactive meta-command loop (\help lists commands)`)
	queryFile := flag.String("query", "", "GSQL source file to install")
	run := flag.String("run", "", "query name to run")
	profile := flag.Bool("profile", false, "trace the -run query and print an EXPLAIN ANALYZE span tree after the result")
	semantics := flag.String("semantics", "asp", "path semantics: asp | nre | nrv | exists")
	workers := flag.Int("workers", 0, "ACCUM workers (0 = GOMAXPROCS)")
	var args argList
	flag.Var(&args, "arg", "query argument name=value (repeatable)")
	flag.Parse()

	var g *graph.Graph
	var st *storage.Store
	if *dataDir != "" {
		var err error
		st, err = storage.Open(*dataDir, storage.Options{
			Init: func() (*graph.Graph, error) { return loadGraph(*data, *builtin) },
		})
		if err != nil {
			log.Fatal(err)
		}
		g = st.Graph()
		if st.Recovered() {
			fmt.Fprintf(os.Stderr, "recovered %s: %d vertices, %d WAL records replayed\n",
				*dataDir, g.NumVertices(), st.Stats().ReplayedRecords)
		}
	} else {
		var err error
		g, err = loadGraph(*data, *builtin)
		if err != nil {
			log.Fatal(err)
		}
	}
	sem, err := parseSemantics(*semantics)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{Semantics: sem, Workers: *workers}

	if *interactive {
		s := newSession(g, st, opts, os.Stdout)
		if *queryFile != "" {
			src, err := os.ReadFile(*queryFile)
			if err != nil {
				log.Fatal(err)
			}
			if err := s.install(string(src)); err != nil {
				log.Fatal(err)
			}
		}
		if err := repl(os.Stdin, s); err != nil {
			log.Fatal(err)
		}
		closeStore(st, *checkpoint)
		return
	}

	e := core.New(g, opts)
	if *queryFile == "" {
		log.Fatal("missing -query file (or -i for interactive mode)")
	}
	src, err := os.ReadFile(*queryFile)
	if err != nil {
		log.Fatal(err)
	}
	if err := e.Install(string(src)); err != nil {
		log.Fatal(err)
	}
	if *run == "" {
		fmt.Println("installed queries:", strings.Join(e.Queries(), ", "))
		closeStore(st, *checkpoint)
		return
	}
	argVals, err := parseArgs(g, args)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	var root *trace.Span
	if *profile {
		root = trace.New("query")
		ctx = trace.NewContext(ctx, root)
	}
	res, err := e.RunCtx(ctx, *run, argVals)
	root.End()
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)
	if root != nil {
		fmt.Println()
		trace.Render(os.Stdout, root)
	}
	closeStore(st, *checkpoint)
}

// closeStore checkpoints (when asked) and closes the durable store, if
// one was opened.
func closeStore(st *storage.Store, checkpoint bool) {
	if st == nil {
		return
	}
	if checkpoint {
		if err := st.Checkpoint(); err != nil {
			log.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
}

func loadGraph(data, builtin string) (*graph.Graph, error) {
	switch {
	case data != "" && builtin != "":
		return nil, fmt.Errorf("use either -data or -builtin, not both")
	case data != "":
		return graph.LoadCSVDir(data)
	case builtin != "":
		return builtinGraph(builtin)
	default:
		return nil, fmt.Errorf("missing -data directory or -builtin graph")
	}
}

func builtinGraph(spec string) (*graph.Graph, error) {
	name, param, _ := strings.Cut(spec, ":")
	switch name {
	case "diamond":
		n, err := strconv.Atoi(param)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("diamond:N requires a positive N, got %q", param)
		}
		return graph.BuildDiamondChain(n), nil
	case "sales":
		return graph.BuildSalesGraph(graph.SalesGraphConfig{
			Customers: 50, Products: 30, Sales: 400, Likes: 600, Seed: 42,
		}), nil
	case "snb":
		sf := 1.0
		if param != "" {
			f, err := strconv.ParseFloat(param, 64)
			if err != nil {
				return nil, fmt.Errorf("snb:SF requires a number, got %q", param)
			}
			sf = f
		}
		return ldbc.Generate(ldbc.Config{SF: sf, Seed: 7}), nil
	case "g1":
		return graph.BuildG1(), nil
	case "g2":
		return graph.BuildG2(), nil
	case "linkgraph":
		n, err := strconv.Atoi(param)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("linkgraph:N requires a positive N, got %q", param)
		}
		return graph.BuildLinkGraph(n, 8, 1), nil
	default:
		return nil, fmt.Errorf("unknown builtin graph %q", spec)
	}
}

func parseSemantics(s string) (match.Semantics, error) {
	switch strings.ToLower(s) {
	case "asp":
		return match.AllShortestPaths, nil
	case "nre":
		return match.NonRepeatedEdge, nil
	case "nrv":
		return match.NonRepeatedVertex, nil
	case "exists":
		return match.ShortestExists, nil
	default:
		return 0, fmt.Errorf("unknown semantics %q (asp|nre|nrv|exists)", s)
	}
}

func parseArgs(g *graph.Graph, args argList) (map[string]value.Value, error) {
	out := map[string]value.Value{}
	for _, a := range args {
		name, raw, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("bad -arg %q (want name=value)", a)
		}
		v, err := parseArgValue(g, raw)
		if err != nil {
			return nil, fmt.Errorf("-arg %s: %w", name, err)
		}
		out[name] = v
	}
	return out, nil
}

func parseArgValue(g *graph.Graph, raw string) (value.Value, error) {
	typ, rest, typed := strings.Cut(raw, ":")
	if typed {
		switch typ {
		case "int":
			i, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return value.Null, err
			}
			return value.NewInt(i), nil
		case "float":
			f, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return value.Null, err
			}
			return value.NewFloat(f), nil
		case "string":
			return value.NewString(rest), nil
		case "bool":
			b, err := strconv.ParseBool(rest)
			if err != nil {
				return value.Null, err
			}
			return value.NewBool(b), nil
		case "datetime":
			return graph.ParseDatetime(rest)
		case "vertex":
			vt, key, ok := strings.Cut(rest, ":")
			if !ok {
				return value.Null, fmt.Errorf("vertex args use vertex:<Type>:<key>")
			}
			id, found := g.VertexByKey(vt, key)
			if !found {
				return value.Null, fmt.Errorf("no %s vertex with key %q", vt, key)
			}
			return value.NewVertex(int64(id)), nil
		}
	}
	// Inference: int, float, datetime, string.
	if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return value.NewInt(i), nil
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return value.NewFloat(f), nil
	}
	if dt, err := graph.ParseDatetime(raw); err == nil {
		return dt, nil
	}
	return value.NewString(raw), nil
}

func printResult(res *core.Result) { fprintResult(os.Stdout, res) }

func fprintResult(w io.Writer, res *core.Result) {
	for _, t := range res.Printed {
		fmt.Fprintf(w, "== PRINT %s ==\n%s\n", t.Name, t)
	}
	names := make([]string, 0, len(res.Tables))
	for name := range res.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "== TABLE %s ==\n%s\n", name, res.Tables[name])
	}
	if res.Returned != nil {
		fmt.Fprintf(w, "== RETURN ==\n%s\n", res.Returned)
	}
	if len(res.Globals) > 0 {
		fmt.Fprintln(w, "== GLOBAL ACCUMULATORS ==")
		for name, v := range res.Globals {
			fmt.Fprintf(w, "@@%s = %s\n", name, v)
		}
	}
}
