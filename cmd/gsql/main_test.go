package main

import (
	"testing"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/match"
	"gsqlgo/internal/value"
)

func TestBuiltinGraph(t *testing.T) {
	cases := []struct {
		spec  string
		verts int
		ok    bool
	}{
		{"diamond:5", 16, true},
		{"g1", 12, true},
		{"g2", 6, true},
		{"sales", 80, true},
		{"linkgraph:10", 10, true},
		{"snb:0.05", 0, true}, // count varies; just loads
		{"diamond:x", 0, false},
		{"diamond:-1", 0, false},
		{"linkgraph:", 0, false},
		{"snb:abc", 0, false},
		{"marsgraph", 0, false},
	}
	for _, c := range cases {
		g, err := builtinGraph(c.spec)
		if c.ok != (err == nil) {
			t.Errorf("builtinGraph(%q): err=%v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if err == nil && c.verts > 0 && g.NumVertices() != c.verts {
			t.Errorf("builtinGraph(%q) vertices = %d, want %d", c.spec, g.NumVertices(), c.verts)
		}
	}
}

func TestParseSemanticsFlag(t *testing.T) {
	for in, want := range map[string]match.Semantics{
		"asp": match.AllShortestPaths, "NRE": match.NonRepeatedEdge,
		"nrv": match.NonRepeatedVertex, "exists": match.ShortestExists,
	} {
		got, err := parseSemantics(in)
		if err != nil || got != want {
			t.Errorf("parseSemantics(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseSemantics("bogus"); err == nil {
		t.Error("bad semantics must error")
	}
}

func TestParseArgValues(t *testing.T) {
	g := graph.BuildDiamondChain(2)
	cases := []struct {
		raw  string
		want value.Value
	}{
		{"int:5", value.NewInt(5)},
		{"float:1.5", value.NewFloat(1.5)},
		{"string:5", value.NewString("5")},
		{"bool:true", value.NewBool(true)},
		{"42", value.NewInt(42)},
		{"4.5", value.NewFloat(4.5)},
		{"hello", value.NewString("hello")},
	}
	for _, c := range cases {
		got, err := parseArgValue(g, c.raw)
		if err != nil || !value.Equal(got, c.want) {
			t.Errorf("parseArgValue(%q) = %v, %v; want %v", c.raw, got, err, c.want)
		}
	}
	// Datetime forms.
	if v, err := parseArgValue(g, "datetime:2020-01-02"); err != nil || v.Kind() != value.KindDatetime {
		t.Errorf("datetime arg: %v %v", v, err)
	}
	if v, err := parseArgValue(g, "2020-01-02"); err != nil || v.Kind() != value.KindDatetime {
		t.Errorf("inferred datetime arg: %v %v", v, err)
	}
	// Vertex resolution.
	v0, _ := g.VertexByKey("V", "v0")
	if v, err := parseArgValue(g, "vertex:V:v0"); err != nil || v.VertexID() != int64(v0) {
		t.Errorf("vertex arg: %v %v", v, err)
	}
	for _, bad := range []string{"int:x", "float:x", "bool:x", "datetime:junkstring", "vertex:V", "vertex:V:nope"} {
		if _, err := parseArgValue(g, bad); err == nil {
			t.Errorf("parseArgValue(%q) must error", bad)
		}
	}
	// Full arg lists.
	args, err := parseArgs(g, argList{"a=1", "b=string:x"})
	if err != nil || len(args) != 2 || args["a"].Int() != 1 {
		t.Errorf("parseArgs: %v %v", args, err)
	}
	if _, err := parseArgs(g, argList{"noequals"}); err == nil {
		t.Error("malformed arg must error")
	}
}

func TestLoadGraphValidation(t *testing.T) {
	if _, err := loadGraph("", ""); err == nil {
		t.Error("missing both sources must error")
	}
	if _, err := loadGraph("x", "y"); err == nil {
		t.Error("both sources must error")
	}
	if _, err := loadGraph("/nonexistent-dir-xyz", ""); err == nil {
		t.Error("missing data dir must error")
	}
}
