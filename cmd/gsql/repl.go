package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/storage"
	"gsqlgo/internal/trace"
)

// The interactive mode (-i) is a meta-command loop in the psql style:
// lines starting with \ drive the session, everything else is an
// error (GSQL enters via \install FILE, keeping the loop line-based).
// \save and \load move whole graphs through the storage snapshot
// codec, so an expensive builtin or CSV load can be captured once and
// reopened instantly; \checkpoint persists the durable store opened
// with -data-dir.

// session is the REPL state: the live graph, an engine over it, the
// sources installed so far (replayed onto the fresh engine a \load
// builds), and the optional durable store.
type session struct {
	g       *graph.Graph
	e       *core.Engine
	st      *storage.Store
	opts    core.Options
	sources []string
	out     io.Writer
}

func newSession(g *graph.Graph, st *storage.Store, opts core.Options, out io.Writer) *session {
	return &session{g: g, e: core.New(g, opts), st: st, opts: opts, out: out}
}

// install parses and installs src, remembering it for re-installation
// after \load swaps the graph.
func (s *session) install(src string) error {
	if err := s.e.Install(src); err != nil {
		return err
	}
	s.sources = append(s.sources, src)
	return nil
}

// setGraph replaces the session graph and rebuilds the engine,
// re-installing every remembered source (queries are validated against
// the schema, so this surfaces schema mismatches immediately).
func (s *session) setGraph(g *graph.Graph) error {
	e := core.New(g, s.opts)
	for _, src := range s.sources {
		if err := e.Install(src); err != nil {
			return fmt.Errorf("re-installing queries against loaded graph: %w", err)
		}
	}
	s.g, s.e = g, e
	return nil
}

// exec handles one REPL line, reporting whether the loop should quit.
// Errors are printed, not returned: a typo must not end the session.
func (s *session) exec(line string) bool {
	line = strings.TrimSpace(line)
	if line == "" {
		return false
	}
	if !strings.HasPrefix(line, `\`) {
		fmt.Fprintln(s.out, `error: commands start with \ (try \help)`)
		return false
	}
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case `\q`, `\quit`:
		return true
	case `\help`:
		fmt.Fprint(s.out, `commands:
  \install FILE        install GSQL queries from FILE
  \run NAME [a=v ...]  run an installed query (arg syntax as -arg)
  \profile NAME [a=v ...]  run with EXPLAIN ANALYZE: span tree with actual times
  \explain NAME        show the evaluation plan without running
  \queries             list installed queries
  \stats               graph size and epoch
  \save PATH           write the graph as a snapshot file
  \load PATH           replace the graph from a snapshot file (unavailable with -data-dir)
  \checkpoint          snapshot + rotate the -data-dir store
  \quit                exit
`)
	case `\queries`:
		fmt.Fprintln(s.out, strings.Join(s.e.Queries(), "\n"))
	case `\stats`:
		fmt.Fprintf(s.out, "%d vertices, %d edges, epoch %d\n",
			s.g.NumVertices(), s.g.NumEdges(), s.g.Epoch())
	case `\install`:
		if len(args) != 1 {
			fmt.Fprintln(s.out, `error: \install FILE`)
			break
		}
		src, err := os.ReadFile(args[0])
		if err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			break
		}
		if err := s.install(string(src)); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			break
		}
		fmt.Fprintln(s.out, "installed:", strings.Join(s.e.Queries(), ", "))
	case `\run`:
		if len(args) < 1 {
			fmt.Fprintln(s.out, `error: \run NAME [arg=value ...]`)
			break
		}
		argVals, err := parseArgs(s.g, argList(args[1:]))
		if err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			break
		}
		res, err := s.e.Run(args[0], argVals)
		if err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			break
		}
		fprintResult(s.out, res)
	case `\profile`:
		if len(args) < 1 {
			fmt.Fprintln(s.out, `error: \profile NAME [arg=value ...]`)
			break
		}
		argVals, err := parseArgs(s.g, argList(args[1:]))
		if err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			break
		}
		root := trace.New("query")
		ctx := trace.NewContext(context.Background(), root)
		res, err := s.e.RunCtx(ctx, args[0], argVals)
		root.End()
		if err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			break
		}
		fprintResult(s.out, res)
		fmt.Fprintln(s.out)
		trace.Render(s.out, root)
	case `\explain`:
		if len(args) != 1 {
			fmt.Fprintln(s.out, `error: \explain NAME`)
			break
		}
		plan, err := s.e.Explain(args[0])
		if err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			break
		}
		fmt.Fprint(s.out, plan)
	case `\save`:
		if len(args) != 1 {
			fmt.Fprintln(s.out, `error: \save PATH`)
			break
		}
		if err := storage.SaveSnapshot(args[0], s.g); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(s.out, "saved %d vertices, %d edges to %s\n",
			s.g.NumVertices(), s.g.NumEdges(), args[0])
	case `\load`:
		if len(args) != 1 {
			fmt.Fprintln(s.out, `error: \load PATH`)
			break
		}
		if s.st != nil {
			// The store observes the graph it was opened with; swapping
			// in a loaded graph would leave \checkpoint persisting the
			// stale pre-load state while \stats shows the new one.
			fmt.Fprintln(s.out, `error: \load is unavailable while a -data-dir store is open (its checkpoints track the original graph)`)
			break
		}
		g, err := storage.LoadSnapshot(args[0])
		if err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			break
		}
		if err := s.setGraph(g); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(s.out, "loaded %d vertices, %d edges from %s\n",
			g.NumVertices(), g.NumEdges(), args[0])
	case `\checkpoint`:
		if s.st == nil {
			fmt.Fprintln(s.out, "error: no durable store open (start with -data-dir)")
			break
		}
		if err := s.st.Checkpoint(); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
			break
		}
		st := s.st.Stats()
		fmt.Fprintf(s.out, "checkpoint %d written to %s\n", st.Checkpoints, s.st.Dir())
	default:
		fmt.Fprintf(s.out, "error: unknown command %s (try \\help)\n", cmd)
	}
	return false
}

// repl runs the meta-command loop until \quit or EOF.
func repl(in io.Reader, s *session) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for {
		fmt.Fprint(s.out, "gsql> ")
		if !sc.Scan() {
			fmt.Fprintln(s.out)
			return sc.Err()
		}
		if s.exec(sc.Text()) {
			return nil
		}
	}
}
