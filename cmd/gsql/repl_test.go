package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/storage"
)

// runREPL feeds lines to a fresh session over g and returns the output.
func runREPL(t *testing.T, g *graph.Graph, st *storage.Store, lines ...string) string {
	t.Helper()
	var sb strings.Builder
	s := newSession(g, st, core.Options{Workers: 1}, &sb)
	if err := repl(strings.NewReader(strings.Join(lines, "\n")), s); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestREPLSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "g.gsnap")
	qfile := filepath.Join(dir, "q.gsql")
	src := `CREATE QUERY Deg() {
	  SumAccum<int> @n;
	  R = SELECT s FROM V:s -(E>)- V:t ACCUM s.@n += 1;
	  PRINT R[R.name, R.@n];
	}`
	if err := os.WriteFile(qfile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	g := graph.BuildDiamondChain(3)
	out := runREPL(t, g, nil,
		`\install `+qfile,
		`\run Deg`,
		`\save `+snap,
		`\stats`,
		`\quit`,
	)
	if !strings.Contains(out, "installed: Deg") {
		t.Fatalf("missing install echo:\n%s", out)
	}
	if !strings.Contains(out, "== PRINT R ==") {
		t.Fatalf("missing run output:\n%s", out)
	}
	if !strings.Contains(out, "saved 10 vertices, 12 edges") {
		t.Fatalf("missing save echo:\n%s", out)
	}
	runOut := out[strings.Index(out, "== PRINT R =="):]
	runOut = runOut[:strings.Index(runOut, "gsql>")]

	// A second session over an unrelated graph \loads the snapshot; the
	// re-installed query must print the same table.
	out2 := runREPL(t, graph.BuildDiamondChain(1), nil,
		`\install `+qfile,
		`\load `+snap,
		`\run Deg`,
		`\quit`,
	)
	if !strings.Contains(out2, "loaded 10 vertices, 12 edges") {
		t.Fatalf("missing load echo:\n%s", out2)
	}
	if !strings.Contains(out2, runOut) {
		t.Fatalf("loaded-graph run differs.\nwant fragment:\n%s\ngot:\n%s", runOut, out2)
	}
}

func TestREPLCheckpointAndErrors(t *testing.T) {
	// Without a store, \checkpoint refuses.
	out := runREPL(t, graph.BuildDiamondChain(1), nil,
		`\checkpoint`,
		`notacommand`,
		`\bogus`,
		`\load /nonexistent/file`,
		`\quit`,
	)
	for _, wantFrag := range []string{
		"no durable store open",
		`commands start with \`,
		`unknown command \bogus`,
		"error:",
	} {
		if !strings.Contains(out, wantFrag) {
			t.Fatalf("missing %q in:\n%s", wantFrag, out)
		}
	}

	// With a store, \checkpoint rotates a generation.
	dir := t.TempDir()
	st, err := storage.Open(dir, storage.Options{Init: func() (*graph.Graph, error) {
		return graph.BuildDiamondChain(2), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	snap := filepath.Join(t.TempDir(), "g.gsnap")
	out = runREPL(t, st.Graph(), st,
		`\checkpoint`,
		`\save `+snap,
		`\load `+snap,
	)
	if !strings.Contains(out, "checkpoint 2 written to "+dir) {
		t.Fatalf("missing checkpoint echo:\n%s", out)
	}
	if st.Stats().Checkpoints != 2 {
		t.Fatalf("store saw %d checkpoints, want 2", st.Stats().Checkpoints)
	}
	// \load must refuse while the store is open: the store keeps
	// observing (and checkpointing) the original graph, so a swap would
	// silently diverge what \stats shows from what gets persisted.
	if !strings.Contains(out, `\load is unavailable while a -data-dir store is open`) {
		t.Fatalf("missing \\load refusal:\n%s", out)
	}
}
