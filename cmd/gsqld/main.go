// Command gsqld serves GSQL queries over HTTP — the paper's
// installed-query model as a long-running service. Install queries
// with POST /queries (GSQL source in the body), list them with GET
// /queries, invoke with POST /queries/{name}/run and a JSON body of
// {"params": {...}, "timeout_ms": N}. Metrics are at GET /metrics
// (Prometheus text format) and GET /debug/vars (expvar).
//
//	gsqld -builtin sales -addr :8844
//	curl -sS localhost:8844/queries --data-binary @q.gsql
//	curl -sS localhost:8844/queries/TopProducts/run -d '{"params":{"k":5}}'
//
// Observability: append ?trace=1 to a run (or mutation) to get the
// span tree inline in the response; recent traces are retained at GET
// /debug/traces. -slow-query-ms N arms the slow-query log — every run
// is traced and those at or over the threshold emit a structured warn
// record with per-stage timings. -debug-addr starts a second listener
// serving net/http/pprof (kept off the query port so profiling is
// never exposed by accident). Logs are structured (log/slog); -log-json
// switches them from text to JSON.
//
// With -data-dir the graph is durable: mutations posted to
// /graph/vertices and /graph/edges are write-ahead-logged before they
// are acknowledged, POST /admin/checkpoint snapshots and rotates the
// log, and a restart recovers the persisted state (so -data/-builtin
// only seed the very first boot). Without it everything is in-memory,
// as before.
//
// A durable gsqld is automatically a replication leader: followers
// bootstrap from GET /replication/snapshot and tail GET
// /replication/wal. Start a read replica with
//
//	gsqld -follow http://leader:8844 -data-dir /var/lib/gsqld-replica
//
// The follower bootstraps from the leader's latest snapshot (or
// recovers its local copy and resumes tailing), applies shipped WAL
// records under the same writer lock mutations would take, serves
// installed read queries throughout, and answers 403 on mutation and
// checkpoint routes. -wal-retain raises how many WAL generations a
// leader keeps so slow followers can tail across checkpoints instead
// of re-bootstrapping.
//
// SIGINT/SIGTERM trigger graceful shutdown: the server stops admitting
// work (503), drains in-flight runs, checkpoints the store (when one
// is attached), then exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/ldbc"
	"gsqlgo/internal/match"
	"gsqlgo/internal/replication"
	"gsqlgo/internal/server"
	"gsqlgo/internal/storage"
)

func main() {
	addr := flag.String("addr", ":8844", "listen address")
	debugAddr := flag.String("debug-addr", "", "listen address for a separate pprof/debug server (off when empty)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	slowMs := flag.Int64("slow-query-ms", 0, "slow-query log threshold in ms (0 = off); arming it traces every run")
	traceRing := flag.Int("trace-ring", 0, "how many recent traces /debug/traces retains (0 = default 64)")
	dataDir := flag.String("data-dir", "", "durable store directory (snapshots + WAL); recovered on start, seeded from -data/-builtin on first boot")
	fsync := flag.Bool("fsync", false, "fsync the WAL after every mutation (durable against power loss, not just crashes); concurrent mutations share flushes (group commit)")
	walRetain := flag.Int("wal-retain", 0, "snapshot/WAL generations to keep (0 = default 2); raise on a leader so slow followers keep tailing across checkpoints")
	follow := flag.String("follow", "", "run as a read replica of the leader at this base URL (requires -data-dir; mutation routes answer 403)")
	metricsHistory := flag.Duration("metrics-history", 0, "sample every metric into a bounded in-memory ring at this interval, served at GET /debug/metrics/history (0 = off)")
	metricsHistorySize := flag.Int("metrics-history-size", 0, "samples the metrics history retains (0 = default 600)")
	advertise := flag.String("advertise", "", "this node's base URL as peers reach it (default http://127.0.0.1:PORT from -addr); identifies the node in /cluster/status and is sent to the leader on replication fetches")
	peers := flag.String("peers", "", "comma-separated base URLs of other cluster nodes for the /cluster/status fan-out (replication peers are learned automatically)")
	data := flag.String("data", "", "directory with schema.json and CSV files (from snbgen or DumpCSV)")
	builtin := flag.String("builtin", "", "built-in graph: diamond:N | sales | snb:SF | g1 | g2 | linkgraph:N")
	queryFile := flag.String("query", "", "optional GSQL source file to pre-install at startup")
	semantics := flag.String("semantics", "asp", "path semantics: asp | nre | nrv | exists")
	workers := flag.Int("workers", 0, "ACCUM workers (0 = GOMAXPROCS)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max simultaneously executing runs (0 = worker count)")
	maxQueue := flag.Int("max-queue", 0, "max runs queued for a slot (0 = 4x max-concurrent)")
	defTimeout := flag.Duration("timeout", 30*time.Second, "default per-run deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeout_ms")
	drainWait := flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight runs")
	flag.Parse()

	logger, err := buildLogger(*logJSON, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	advertiseURL := *advertise
	if advertiseURL == "" {
		advertiseURL = deriveAdvertise(*addr)
	}
	advertiseURL = strings.TrimRight(advertiseURL, "/")

	var g *graph.Graph
	var store *storage.Store
	var follower *replication.Follower
	if *follow != "" {
		if *dataDir == "" {
			fatal("starting follower", fmt.Errorf("-follow requires -data-dir for the replica's local store"))
		}
		fw, err := replication.OpenFollower(context.Background(), replication.FollowerConfig{
			LeaderURL:    strings.TrimRight(*follow, "/"),
			Dir:          *dataDir,
			Fsync:        *fsync,
			Retain:       *walRetain,
			Logger:       logger,
			AdvertiseURL: advertiseURL,
		})
		if err != nil {
			fatal("opening follower", err)
		}
		follower = fw
		g = fw.Graph()
	} else if *dataDir != "" {
		// Lazy init: -data/-builtin only matter when the directory holds
		// no store yet; recovery wins otherwise, and a recovered boot
		// does not even require them.
		st, err := storage.Open(*dataDir, storage.Options{
			Fsync: *fsync,
			// The server fsyncs after releasing its writer mutex
			// (Store.WaitDurable), so concurrent mutations share
			// group-commit cohorts instead of holding the lock across
			// disk barriers.
			DeferSync: true,
			Retain:    *walRetain,
			Init:      func() (*graph.Graph, error) { return loadGraph(*data, *builtin) },
		})
		if err != nil {
			fatal("opening store", err)
		}
		store = st
		g = st.Graph()
		stats := st.Stats()
		if st.Recovered() {
			logger.Info("recovered store", "dir", *dataDir,
				"vertices", g.NumVertices(), "wal_records_replayed", stats.ReplayedRecords)
		} else {
			logger.Info("initialized store", "dir", *dataDir, "vertices", g.NumVertices())
		}
	} else {
		var err error
		g, err = loadGraph(*data, *builtin)
		if err != nil {
			fatal("loading graph", err)
		}
	}
	sem, err := parseSemantics(*semantics)
	if err != nil {
		fatal("parsing -semantics", err)
	}
	eng := core.New(g, core.Options{Semantics: sem, Workers: *workers})
	if *queryFile != "" {
		src, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal("reading -query file", err)
		}
		if err := eng.Install(string(src)); err != nil {
			fatal("installing -query file", err)
		}
		logger.Info("pre-installed queries", "queries", eng.Queries())
	}

	srv := server.New(server.Config{
		Engine:             eng,
		Store:              store,
		Follower:           follower,
		DefaultTimeout:     *defTimeout,
		MaxTimeout:         *maxTimeout,
		MaxConcurrent:      *maxConcurrent,
		MaxQueue:           *maxQueue,
		Logger:             logger,
		SlowQueryThreshold: time.Duration(*slowMs) * time.Millisecond,
		TraceRingSize:      *traceRing,
		MetricsHistory:     *metricsHistory,
		MetricsHistorySize: *metricsHistorySize,
		AdvertiseURL:       advertiseURL,
		Peers:              splitPeers(*peers),
	})
	srv.PublishExpvar("gsqld")

	// The follower's tail loop starts only after the server exists: its
	// applies take the server's writer lock, a re-bootstrap repoints the
	// engine at the swapped store's graph, and its lifecycle spans land
	// in the server's trace ring.
	replDone := make(chan error, 1)
	var replCancel context.CancelFunc
	if follower != nil {
		follower.Bind(srv.ReplicationLock(),
			func(st *storage.Store) { eng.SetGraph(st.Graph()) },
			srv.AddTrace)
		var replCtx context.Context
		replCtx, replCancel = context.WithCancel(context.Background())
		go func() { replDone <- follower.Run(replCtx) }()
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr, logger)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("gsqld listening", "addr", *addr,
		"vertices", g.NumVertices(), "workers", eng.Workers(),
		"follow", *follow, "slow_query_ms", *slowMs, "debug_addr", *debugAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal("serving", err)
	case err := <-replDone:
		// Run only returns on cancellation (nil, and nobody cancelled
		// yet) or a fatal divergence — serving a silently stale replica
		// is worse than dying loudly.
		fatal("replication", err)
	case s := <-sig:
		logger.Info("signal received, draining", "signal", s.String(), "drain_wait", *drainWait)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("drain incomplete", "error", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if follower != nil {
		replCancel()
		select {
		case <-replDone:
		case <-ctx.Done():
		}
		if err := follower.Close(); err != nil {
			logger.Warn("closing follower store", "error", err)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			logger.Warn("closing store", "error", err)
		}
	}
}

// deriveAdvertise guesses this node's reachable base URL from the
// listen address: the listen host when it names one, 127.0.0.1 for the
// wildcard. Single-machine clusters (tests, CI smoke, local dev) just
// work; multi-host deployments pass -advertise explicitly.
func deriveAdvertise(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil || port == "" {
		return ""
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// splitPeers parses the comma-separated -peers list, dropping empties.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(strings.TrimRight(p, "/")); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func buildLogger(asJSON bool, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("unknown -log-level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if asJSON {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h), nil
}

// serveDebug runs net/http/pprof on its own listener with an explicit
// mux, so profiling endpoints never ride on the query port (the blank
// import would register them on http.DefaultServeMux — which gsqld
// never serves — but keeping registration explicit makes that
// guarantee visible).
func serveDebug(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("debug server listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug server", "error", err)
	}
}

func loadGraph(data, builtin string) (*graph.Graph, error) {
	switch {
	case data != "" && builtin != "":
		return nil, fmt.Errorf("use either -data or -builtin, not both")
	case data != "":
		return graph.LoadCSVDir(data)
	case builtin != "":
		return builtinGraph(builtin)
	default:
		return nil, fmt.Errorf("missing -data directory or -builtin graph")
	}
}

func builtinGraph(spec string) (*graph.Graph, error) {
	name, param, _ := strings.Cut(spec, ":")
	switch name {
	case "diamond":
		n, err := strconv.Atoi(param)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("diamond:N requires a positive N, got %q", param)
		}
		return graph.BuildDiamondChain(n), nil
	case "sales":
		return graph.BuildSalesGraph(graph.SalesGraphConfig{
			Customers: 50, Products: 30, Sales: 400, Likes: 600, Seed: 42,
		}), nil
	case "snb":
		sf := 1.0
		if param != "" {
			f, err := strconv.ParseFloat(param, 64)
			if err != nil {
				return nil, fmt.Errorf("snb:SF requires a number, got %q", param)
			}
			sf = f
		}
		return ldbc.Generate(ldbc.Config{SF: sf, Seed: 7}), nil
	case "g1":
		return graph.BuildG1(), nil
	case "g2":
		return graph.BuildG2(), nil
	case "linkgraph":
		n, err := strconv.Atoi(param)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("linkgraph:N requires a positive N, got %q", param)
		}
		return graph.BuildLinkGraph(n, 8, 1), nil
	default:
		return nil, fmt.Errorf("unknown builtin graph %q", spec)
	}
}

func parseSemantics(s string) (match.Semantics, error) {
	switch strings.ToLower(s) {
	case "asp":
		return match.AllShortestPaths, nil
	case "nre":
		return match.NonRepeatedEdge, nil
	case "nrv":
		return match.NonRepeatedVertex, nil
	case "exists":
		return match.ShortestExists, nil
	default:
		return 0, fmt.Errorf("unknown semantics %q (asp|nre|nrv|exists)", s)
	}
}
