// Command gsqlbench drives one or more running gsqld servers with a
// sustained mixed workload — installed IC-query reads, vertex/edge
// mutations, periodic checkpoints — and reports throughput and latency
// percentiles per op class. Reads round-robin across every target
// (leader plus -follow replicas); writes follow the leader via the 403
// Leader header. Results land in the shared BENCH_*.json schema, and
// -compare gates the run against a committed baseline for CI.
//
// Single node:
//
//	gsqld -listen :8844 -builtin snb:0.1 -data-dir /tmp/leader &
//	gsqlbench -targets http://localhost:8844 -sf 0.1 -duration 30s
//
// Leader + replica fan-out with regression gating:
//
//	gsqlbench -targets http://leader:8844,http://replica:8845 \
//	    -sf 0.1 -duration 30s -mode both -mix 90:8:2 \
//	    -json BENCH_load.json -compare BENCH_load.json -tolerance 0.3
//
// Exit status: 0 ok, 1 usage/run error, 2 regression detected.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"gsqlgo/internal/bench"
	"gsqlgo/internal/ldbc"
	"gsqlgo/internal/load"
	"gsqlgo/internal/trace"
)

func main() {
	var (
		targets     = flag.String("targets", "http://localhost:8844", "comma-separated gsqld base URLs; first is the presumed leader, reads round-robin across all")
		mode        = flag.String("mode", "both", "closed | open | both")
		duration    = flag.Duration("duration", 30*time.Second, "wall-clock budget per mode (ignored when -ops is set)")
		ops         = flag.Uint64("ops", 0, "exact op count per mode instead of -duration (hits the mix ratios exactly)")
		concurrency = flag.Int("c", 8, "closed-loop workers / open-loop pool size")
		rate        = flag.Float64("rate", 200, "open loop arrival rate, ops/sec")
		mix         = flag.String("mix", "90:8:2", "read:write:checkpoint weights")
		sf          = flag.Float64("sf", 0.1, "scale factor the servers were seeded with (-builtin snb:SF)")
		seed        = flag.Int64("seed", 7, "workload seed; must match the servers' -builtin seed for reads to hit")
		hops        = flag.Int("hops", 2, "KNOWS hop bound h for the IC query family")
		queries     = flag.String("queries", "", "comma-separated IC subset (ic3,ic5,ic6,ic9,ic11); empty = all")
		prefix      = flag.String("write-prefix", "bench", "key namespace for vertices the write stream adds (vary across runs against one durable server)")
		timeout     = flag.Duration("op-timeout", 30*time.Second, "per-request HTTP timeout")
		traceSample = flag.Int("trace-sample", 0, "tag every Nth read with a fresh X-Trace-Id and, after the run, fetch and print the server span trees of the slowest sampled reads (0 = off)")
		traceTopK   = flag.Int("trace-top", 3, "how many of the slowest sampled reads to fetch server traces for")
		jsonOut     = flag.String("json", "", "write the merged BENCH report to this file")
		compare     = flag.String("compare", "", "baseline BENCH_load.json to gate against")
		tolerance   = flag.Float64("tolerance", 0.3, "relative regression tolerance for -compare (0.3 = 30%)")
	)
	flag.Parse()

	r, w, c, err := parseMix(*mix)
	if err != nil {
		fatal(err)
	}
	var modes []load.Mode
	switch *mode {
	case "closed":
		modes = []load.Mode{load.ModeClosed}
	case "open":
		modes = []load.Mode{load.ModeOpen}
	case "both":
		modes = []load.Mode{load.ModeClosed, load.ModeOpen}
	default:
		fatal(fmt.Errorf("unknown -mode %q (closed, open, both)", *mode))
	}

	var qs []string
	if *queries != "" {
		qs = strings.Split(*queries, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := ldbc.Config{SF: *sf, Seed: *seed}
	var results []*load.Result
	for _, m := range modes {
		// Each mode gets its own write-key namespace so running both
		// against one durable server never collides on duplicate keys.
		wl, err := load.NewWorkload(cfg, *seed, *hops, qs, fmt.Sprintf("%s-%s", *prefix, m))
		if err != nil {
			fatal(err)
		}
		client, err := load.NewClient(strings.Split(*targets, ","), *timeout)
		if err != nil {
			fatal(err)
		}
		if err := client.InstallAll(wl.InstallSources()); err != nil {
			fatal(err)
		}
		client.SetTraceSampling(*traceSample, 0)
		res, err := load.Run(ctx, load.Config{
			Client:        client,
			Workload:      wl,
			Mode:          m,
			Duration:      *duration,
			MaxOps:        *ops,
			Concurrency:   *concurrency,
			Rate:          *rate,
			MixRead:       r,
			MixWrite:      w,
			MixCheckpoint: c,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(load.Summary(res))
		if *traceSample > 0 {
			printSampledTraces(client, *traceTopK)
		}
		results = append(results, res)
	}

	rep := load.Reportify(bench.CurrentMeta(headCommit()), results...)
	if err := rep.Validate(); err != nil {
		fatal(err)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d entries)\n", *jsonOut, len(rep.Benchmarks))
	}

	if *compare != "" {
		base, err := bench.ReadReportFile(*compare)
		if err != nil {
			fatal(err)
		}
		regs := bench.CompareReports(base, rep, *tolerance)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "REGRESSION vs %s (tolerance %.0f%%):\n", *compare, *tolerance*100)
			for _, reg := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", reg)
			}
			os.Exit(2)
		}
		fmt.Printf("no regression vs %s (tolerance %.0f%%)\n", *compare, *tolerance*100)
	}
}

// printSampledTraces fetches and renders the server span trees for the
// slowest sampled reads — the payoff of -trace-sample: the id this
// client minted comes back as the root span's trace_id attribute on
// the server that actually executed the run.
func printSampledTraces(client *load.Client, topK int) {
	samples := client.TraceSamples()
	if len(samples) == 0 {
		fmt.Println("trace sample: no reads sampled")
		return
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a].LatencyMS > samples[b].LatencyMS })
	if topK > 0 && len(samples) > topK {
		samples = samples[:topK]
	}
	fmt.Printf("trace sample: server span trees for the %d slowest sampled reads\n", len(samples))
	matched := 0
	for _, s := range samples {
		fmt.Printf("-- trace %s  query=%s target=%s client_latency=%.3fms\n",
			s.ID, s.Query, s.Target, s.LatencyMS)
		spans, err := client.FetchTrace(s.Target, s.ID)
		switch {
		case err != nil:
			fmt.Printf("   (fetch failed: %v)\n", err)
		case len(spans) == 0:
			fmt.Println("   (trace aged out of the server ring)")
		default:
			matched++
			for _, sp := range spans {
				trace.RenderJSON(os.Stdout, sp)
			}
		}
	}
	fmt.Printf("trace sample: %d/%d matched server-side\n", matched, len(samples))
}

func parseMix(s string) (r, w, c int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("-mix wants R:W:C, got %q", s)
	}
	vals := make([]int, 3)
	for i, p := range parts {
		if vals[i], err = strconv.Atoi(p); err != nil || vals[i] < 0 {
			return 0, 0, 0, fmt.Errorf("-mix wants three non-negative ints, got %q", s)
		}
	}
	return vals[0], vals[1], vals[2], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsqlbench:", err)
	os.Exit(1)
}

// headCommit resolves the short HEAD hash for the meta stamp; empty
// when git (or a checkout) is unavailable — the artifact is still
// valid, just unpinned.
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
