package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"gsqlgo/internal/cluster"
)

// render writes one dashboard frame: the per-node table from the
// merged cluster status, then (when the polled node samples metrics
// history) a per-query breakdown over the recent window. Pure function
// of its inputs so the golden test can pin the exact output.
func render(w io.Writer, st *cluster.Status, hist *historyDoc) {
	fmt.Fprintf(w, "gsqltop — %d node(s), reported by %s at %s\n\n",
		len(st.Nodes), st.ReportedBy, st.At.Format("15:04:05"))

	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tROLE\tSTATUS\tQPS\tP50ms\tP99ms\tLAGrec\tLAGbytes\tEPOCH\tFOLDS\tWAL\tRUNS\tERRS\tUPTIME")
	for _, n := range st.Nodes {
		if n.Error != "" {
			fmt.Fprintf(tw, "%s\tunreachable: %s\n", n.URL, n.Error)
			continue
		}
		lagRec, lagBytes := "-", "-"
		if n.Role == "follower" {
			lagRec = fmt.Sprintf("%d", n.LagRecords)
			lagBytes = fmt.Sprintf("%d", n.LagBytes)
		}
		wal := "-"
		if n.WALSeq != 0 {
			wal = fmt.Sprintf("%d:%d", n.WALSeq, n.WALOffset)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.1f\t%.2f\t%.2f\t%s\t%s\t%d\t%d\t%s\t%d\t%d\t%s\n",
			n.URL, n.Role, n.Status, n.QPS,
			n.P50Seconds*1000, n.P99Seconds*1000,
			lagRec, lagBytes,
			n.SnapshotEpoch, n.MVCCFolds, wal,
			n.RunsTotal, n.ErrorsTotal, fmtUptime(n.UptimeSeconds))
	}
	tw.Flush()

	if hist == nil || len(hist.Series) == 0 {
		return
	}
	rows := queryRows(hist)
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\nper-query (last %.0fs on %s)\n", hist.WindowSeconds, st.ReportedBy)
	tw = tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "QUERY\tQPS\tP50ms\tP90ms\tP99ms")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%.2f\t%.2f\n",
			r.name, r.qps, r.p50*1000, r.p90*1000, r.p99*1000)
	}
	tw.Flush()
}

type queryRow struct {
	name               string
	qps, p50, p90, p99 float64
}

// queryRows extracts the per-query latency series from a history
// document, sorted by rate descending then name.
func queryRows(hist *historyDoc) []queryRow {
	const prefix = `gsqld_query_latency_seconds{query="`
	var rows []queryRow
	for key, sr := range hist.Series {
		rest, ok := strings.CutPrefix(key, prefix)
		if !ok {
			continue
		}
		name, _, ok := strings.Cut(rest, `"`)
		if !ok || sr.Count == 0 {
			continue
		}
		rows = append(rows, queryRow{name: name, qps: sr.PerSecond, p50: sr.P50, p90: sr.P90, p99: sr.P99})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].qps != rows[b].qps {
			return rows[a].qps > rows[b].qps
		}
		return rows[a].name < rows[b].name
	})
	return rows
}

// fmtUptime renders seconds as 12s / 3m04s / 2h07m.
func fmtUptime(sec float64) string {
	s := int64(sec)
	switch {
	case s < 60:
		return fmt.Sprintf("%ds", s)
	case s < 3600:
		return fmt.Sprintf("%dm%02ds", s/60, s%60)
	default:
		return fmt.Sprintf("%dh%02dm", s/3600, (s%3600)/60)
	}
}
