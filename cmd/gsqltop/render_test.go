package main

import (
	"strings"
	"testing"
	"time"

	"gsqlgo/internal/cluster"
	"gsqlgo/internal/metrics"
)

// TestRenderGolden pins the exact -once frame for a fixed two-node
// cluster with a history breakdown — the contract the CI smoke test
// greps against.
func TestRenderGolden(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 30, 5, 0, time.UTC)
	st := &cluster.Status{
		ReportedBy: "http://127.0.0.1:18844",
		At:         at,
		Nodes: []cluster.NodeStatus{
			{
				URL: "http://127.0.0.1:18844", Role: "leader", Status: "ok",
				UptimeSeconds: 125, SnapshotEpoch: 120, MVCCFolds: 3,
				WALSeq: 2, WALOffset: 4096, RunsTotal: 5000,
				QPS: 123.45, P50Seconds: 0.00123, P99Seconds: 0.00456,
			},
			{
				URL: "http://127.0.0.1:18845", Role: "follower", Status: "ok",
				UptimeSeconds: 61, SnapshotEpoch: 120, MVCCFolds: 3,
				WALSeq: 2, WALOffset: 4096, RunsTotal: 4800, ErrorsTotal: 2,
				LeaderURL: "http://127.0.0.1:18844",
				QPS:       110.2, P50Seconds: 0.0015, P99Seconds: 0.0061,
			},
			{URL: "http://127.0.0.1:18846", Error: "connection refused"},
		},
	}
	hist := &historyDoc{
		Enabled:       true,
		WindowSeconds: 30,
		Series: map[string]metrics.SeriesRate{
			`gsqld_query_latency_seconds{query="IC6"}`: {
				Kind: "histogram", Count: 900, PerSecond: 30,
				P50: 0.001, P90: 0.002, P99: 0.004,
			},
			`gsqld_query_latency_seconds{query="IC3"}`: {
				Kind: "histogram", Count: 2700, PerSecond: 90,
				P50: 0.0008, P90: 0.0019, P99: 0.0035,
			},
			// Non-latency series must not leak into the breakdown.
			`gsqld_query_runs_total{query="IC3",status="ok"}`: {
				Kind: "counter", Last: 2700, PerSecond: 90,
			},
		},
	}

	var b strings.Builder
	render(&b, st, hist)
	got := b.String()

	want := strings.Join([]string{
		"gsqltop — 3 node(s), reported by http://127.0.0.1:18844 at 12:30:05",
		"",
		"NODE                    ROLE      STATUS  QPS    P50ms  P99ms  LAGrec  LAGbytes  EPOCH  FOLDS  WAL     RUNS  ERRS  UPTIME",
		"http://127.0.0.1:18844  leader    ok      123.5  1.23   4.56   -       -         120    3      2:4096  5000  0     2m05s",
		"http://127.0.0.1:18845  follower  ok      110.2  1.50   6.10   0       0         120    3      2:4096  4800  2     1m01s",
		"http://127.0.0.1:18846  unreachable: connection refused",
		"",
		"per-query (last 30s on http://127.0.0.1:18844)",
		"QUERY  QPS   P50ms  P90ms  P99ms",
		"IC3    90.0  0.80   1.90   3.50",
		"IC6    30.0  1.00   2.00   4.00",
		"",
	}, "\n")
	if got != want {
		t.Errorf("render mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderNoHistory keeps the frame valid when the polled node has
// the sampler off.
func TestRenderNoHistory(t *testing.T) {
	st := &cluster.Status{
		ReportedBy: "self",
		At:         time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC),
		Nodes: []cluster.NodeStatus{
			{URL: "self", Role: "standalone", Status: "ok", UptimeSeconds: 5, RunsTotal: 10, QPS: 2},
		},
	}
	var b strings.Builder
	render(&b, st, nil)
	out := b.String()
	for _, frag := range []string{"1 node(s)", "standalone", "UPTIME", "5s"} {
		if !strings.Contains(out, frag) {
			t.Errorf("frame missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "per-query") {
		t.Errorf("no-history frame must omit the per-query section:\n%s", out)
	}
}
