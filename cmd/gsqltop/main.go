// Command gsqltop is a live terminal dashboard for a gsqld cluster. It
// polls one node's GET /cluster/status — the node fans out to every
// peer it knows about and merges the reports — and renders a
// refreshing per-node table: role, QPS, latency quantiles, replication
// lag, MVCC epoch and fold count, WAL position. When the polled node
// samples metrics history (-metrics-history on gsqld), a per-query
// breakdown over the recent window is appended.
//
//	gsqltop -cluster http://localhost:8844
//	gsqltop -cluster http://localhost:8844 -once   # one plain-text frame
//
// -once renders a single frame without ANSI escapes and exits — the
// form CI smoke tests and scripts consume.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"gsqlgo/internal/cluster"
	"gsqlgo/internal/metrics"
)

func main() {
	var (
		base     = flag.String("cluster", "http://localhost:8844", "base URL of any cluster node; its /cluster/status fan-out defines the membership shown")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval in live mode")
		window   = flag.Duration("window", 30*time.Second, "metrics-history window for the per-query breakdown")
		once     = flag.Bool("once", false, "render one plain frame and exit (no ANSI escapes)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-poll HTTP timeout")
	)
	flag.Parse()
	client := &http.Client{Timeout: *timeout}

	if *once {
		if err := renderOnce(os.Stdout, client, *base, *window); err != nil {
			fmt.Fprintln(os.Stderr, "gsqltop:", err)
			os.Exit(1)
		}
		return
	}
	for {
		var buf []byte
		{
			var b bytesWriter
			if err := renderOnce(&b, client, *base, *window); err != nil {
				fmt.Fprintf(&b, "gsqltop: %v\n", err)
			}
			buf = b.data
		}
		// One write per frame, after clearing: no partial-frame flicker.
		fmt.Print("\033[H\033[2J")
		os.Stdout.Write(buf)
		time.Sleep(*interval)
	}
}

type bytesWriter struct{ data []byte }

func (b *bytesWriter) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// renderOnce polls one frame's worth of state and renders it.
func renderOnce(w io.Writer, client *http.Client, base string, window time.Duration) error {
	st, err := fetchStatus(client, base)
	if err != nil {
		return err
	}
	hist, _ := fetchHistory(client, base, window) // nil when unavailable; the node table still renders
	render(w, st, hist)
	return nil
}

func fetchStatus(client *http.Client, base string) (*cluster.Status, error) {
	resp, err := client.Get(base + "/cluster/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("%s/cluster/status: %s: %s", base, resp.Status, body)
	}
	var st cluster.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// historyDoc is the slice of GET /debug/metrics/history gsqltop needs.
type historyDoc struct {
	Enabled       bool                          `json:"enabled"`
	WindowSeconds float64                       `json:"window_seconds"`
	Series        map[string]metrics.SeriesRate `json:"series"`
}

func fetchHistory(client *http.Client, base string, window time.Duration) (*historyDoc, error) {
	resp, err := client.Get(fmt.Sprintf("%s/debug/metrics/history?window=%s", base, window))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("history: %s", resp.Status)
	}
	var doc historyDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&doc); err != nil {
		return nil, err
	}
	if !doc.Enabled {
		return nil, nil
	}
	return &doc, nil
}
