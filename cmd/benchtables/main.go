// Command benchtables regenerates every table and figure of the
// paper's evaluation:
//
//	benchtables -table 1     # Table 1: diamond-chain Q_n, three engines
//	benchtables -table snb   # Section 7.1: SNB IC queries, ASP vs NRE
//	benchtables -table appb  # Appendix B: Qgs vs Qacc speedups
//	benchtables -table sdmc  # Theorem 6.1 scaling evidence
//	benchtables -table ablation # Appendix A multiplicity shortcut
//	benchtables -table all
//
// Scale knobs (-maxn, -sf, -hops, -timeout) default to laptop-friendly
// sizes; raise them to approach the paper's ranges.
//
// -json FILE additionally runs a microbenchmark suite (-suite kernel,
// -suite server or -suite expand) and writes machine-readable results
// as {"meta": {go_version, gomaxprocs, num_cpu, commit, …},
// "benchmarks": {name: {ns_per_op, allocs_per_op, bytes_per_op}}} —
// the convention is `-json BENCH_csr.json` for the kernel suite,
// `-json BENCH_server.json -suite server` for the serving path,
// `-json BENCH_expand.json -suite expand` for the pattern-expansion
// pipeline, `-json BENCH_storage.json -suite storage` for the
// durability layer (snapshot codec MB/s, WAL append, recovery replay)
// `-json BENCH_trace.json -suite trace` for the tracing overhead
// guard (disabled vs enabled runs plus span primitives) and
// `-json BENCH_fusion.json -suite fusion` for the compiled ACCUM
// kernels and multi-accumulator fusion, all committed so the perf
// trajectory is tracked across PRs. An unknown -suite fails
// immediately, before any table work.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"gsqlgo/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1|snb|appb|sdmc|ablation|all")
	maxN := flag.Int("maxn", 24, "Table 1: maximum diamond count (paper: 30)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-cell timeout for enumeration engines (paper: 10m)")
	sfs := flag.String("sf", "0.3,1,3", "SNB/Appendix B scale factors, comma separated")
	hops := flag.String("hops", "2,3,4", "SNB KNOWS hop counts, comma separated")
	reps := flag.Int("reps", 5, "Appendix B repetitions per query (median reported)")
	seed := flag.Int64("seed", 7, "generator seed")
	jsonPath := flag.String("json", "", "write microbenchmarks (ns/op, allocs/op) as JSON to this file, e.g. BENCH_csr.json")
	suite := flag.String("suite", "kernel", "which -json suite to run: kernel | server | expand | storage | trace | fusion")
	flag.Parse()

	// Validate the suite name up front, whether or not -json was given:
	// a typo must fail loudly before minutes of table work (or a
	// truncated output file) hide it.
	jsonWrite := bench.WriteMicroJSON
	switch *suite {
	case "kernel":
	case "server":
		jsonWrite = bench.WriteServerJSON
	case "expand":
		jsonWrite = bench.WriteExpandJSON
	case "storage":
		jsonWrite = bench.WriteStorageJSON
	case "trace":
		jsonWrite = bench.WriteTraceJSON
	case "fusion":
		jsonWrite = bench.WriteFusionJSON
	default:
		log.Fatalf("unknown -suite %q (kernel|server|expand|storage|trace|fusion)", *suite)
	}

	sfList, err := parseFloats(*sfs)
	if err != nil {
		log.Fatalf("bad -sf: %v", err)
	}
	hopList, err := parseInts(*hops)
	if err != nil {
		log.Fatalf("bad -hops: %v", err)
	}

	run := func(name string, f func() error) {
		fmt.Printf("\n──────── %s ────────\n\n", name)
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	w := os.Stdout
	want := func(t string) bool { return *table == "all" || *table == t }

	if want("1") {
		run("Table 1 (Section 7.1, diamond chain)", func() error {
			return bench.Table1(w, bench.Table1Config{MaxN: *maxN, CellTimeout: *timeout})
		})
	}
	if want("snb") {
		run("Section 7.1 SNB IC table", func() error {
			return bench.SNBTable(w, bench.SNBConfig{SFs: sfList, Hops: hopList, Seed: *seed})
		})
	}
	if want("appb") {
		run("Appendix B (Qgs vs Qacc)", func() error {
			return bench.AppendixB(w, bench.AppendixBConfig{SFs: sfList, Reps: *reps, Seed: *seed})
		})
	}
	if want("sdmc") {
		run("SDMC scaling (Theorem 6.1)", func() error {
			return bench.SDMCScaling(w, nil)
		})
	}
	if want("ablation") {
		run("Appendix A multiplicity-shortcut ablation", func() error {
			return bench.ShortcutAblation(w, nil, *timeout)
		})
	}
	if *jsonPath != "" {
		fmt.Printf("\n──────── %s microbenchmarks → %s ────────\n\n", *suite, *jsonPath)
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatalf("microbench: %v", err)
		}
		if err := jsonWrite(bench.CurrentMeta(headCommit()), f, os.Stdout); err != nil {
			f.Close()
			log.Fatalf("microbench: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("microbench: %v", err)
		}
	}
}

// headCommit resolves the short HEAD hash for the meta stamp; empty
// when git (or a checkout) is unavailable — the artifact is still
// valid, just unpinned.
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
