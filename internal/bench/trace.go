package bench

import (
	"context"
	"io"
	"strings"
	"testing"

	"gsqlgo/internal/core"
	"gsqlgo/internal/ldbc"
	"gsqlgo/internal/trace"
)

// traceSuite quantifies what the observability layer costs. The
// headline pair is Trace/run/disabled vs Trace/run/enabled: the same
// engine, the same counted-hop query (the expand suite's FriendReach),
// once under a bare context (spans off — every instrumentation point
// degrades to a nil check) and once under a traced context (a full
// span tree built per run). The acceptance bar is disabled-vs-baseline
// overhead under 5%; since the only code the instrumentation added to
// the untraced path is nil-receiver branches, the disabled number IS
// the post-change baseline — compare it against the same workload in
// BENCH_expand.json (Expand/counted/warmcache) measured before and
// after. The span micro-cases price the primitives themselves.
func traceSuite() []benchCase {
	g := ldbc.Generate(ldbc.Config{SF: 0.2, Seed: 7})
	eng := expandEngine(g, core.Options{})
	// Prime so measured runs hit the count cache: steady-state serving
	// cost, where per-span overhead is proportionally largest.
	if _, err := eng.Run("FriendReach", nil); err != nil {
		panic(err)
	}
	bg := context.Background()
	runOnce := func(b *testing.B, ctx context.Context) {
		if _, err := eng.RunCtx(ctx, "FriendReach", nil); err != nil {
			b.Fatal(err)
		}
	}
	return []benchCase{
		{"Trace/run/disabled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runOnce(b, bg)
			}
		}},
		{"Trace/run/enabled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				root := trace.New("query")
				runOnce(b, trace.NewContext(bg, root))
				root.End()
			}
		}},
		{"Trace/span/startEnd", func(b *testing.B) {
			b.ReportAllocs()
			root := trace.New("root")
			for i := 0; i < b.N; i++ {
				sp := root.Start("op")
				sp.SetInt("rows", int64(i))
				sp.End()
			}
		}},
		{"Trace/span/nilStartEnd", func(b *testing.B) {
			b.ReportAllocs()
			var root *trace.Span
			for i := 0; i < b.N; i++ {
				sp := root.Start("op")
				sp.SetInt("rows", int64(i))
				sp.End()
			}
		}},
		{"Trace/json", func(b *testing.B) {
			b.ReportAllocs()
			root := trace.New("query")
			root.SetStr("query", "FriendReach")
			if _, err := eng.RunCtx(trace.NewContext(bg, root), "FriendReach", nil); err != nil {
				b.Fatal(err)
			}
			root.End()
			for i := 0; i < b.N; i++ {
				if _, err := root.MarshalJSON(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Trace/render", func(b *testing.B) {
			b.ReportAllocs()
			root := trace.New("query")
			if _, err := eng.RunCtx(trace.NewContext(bg, root), "FriendReach", nil); err != nil {
				b.Fatal(err)
			}
			root.End()
			for i := 0; i < b.N; i++ {
				var sb strings.Builder
				trace.Render(&sb, root)
			}
		}},
	}
}

// WriteTraceJSON runs the tracing-overhead benchmark suite and writes
// the stamped Report to w (cmd/benchtables -json -suite trace,
// conventionally BENCH_trace.json).
func WriteTraceJSON(meta RunMeta, w, progress io.Writer) error {
	meta.Notes = "Trace/run/disabled runs the same warm FriendReach workload as " +
		"Expand/counted/warmcache in BENCH_expand.json — comparing the two bounds " +
		"the overhead the instrumentation adds to untraced runs (acceptance: <5%). " +
		"Trace/run/enabled vs Trace/run/disabled prices a full span tree per run."
	return writeSuiteJSON(traceSuite(), meta, w, progress)
}
