package bench

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"gsqlgo/internal/core"
	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/ldbc"
	"gsqlgo/internal/match"
	"gsqlgo/internal/value"
)

// microSuite mirrors the allocation-sensitive benchmarks of
// bench_test.go (the SDMC kernel family and the Table 1 counting
// column, plus the full engine Q_n) as programmatically runnable
// cases.
func microSuite() []benchCase {
	snb := ldbc.Generate(ldbc.Config{SF: 0.2, Seed: 7})
	knows := darpe.MustCompile("Knows*1..3")
	diam := graph.BuildDiamondChain(20)
	dE := darpe.MustCompile("E>*")
	v0, _ := diam.VertexByKey("V", "v0")
	v20, _ := diam.VertexByKey("V", "v20")
	qnEngine := core.New(diam, core.Options{})
	if err := qnEngine.Install(qnSource); err != nil {
		panic(err)
	}
	qnArgs := map[string]value.Value{
		"srcName": value.NewString("v0"),
		"tgtName": value.NewString("v20"),
	}
	return []benchCase{
		{"SDMCAllPairs/sequential", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				match.CountASPAll(snb, knows)
			}
		}},
		{"SDMCAllPairs/parallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				match.CountASPAllParallel(snb, knows, 0)
			}
		}},
		{"SDMC/singleSource", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				match.CountASP(diam, dE, v0)
			}
		}},
		{"Table1ASPCount/n=20", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, mult, ok := match.CountASPPair(diam, dE, v0, v20); !ok || mult != 1<<20 {
					b.Fatalf("count %d", mult)
				}
			}
		}},
		{"Table1FullQn/n=20", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := qnEngine.Run("Qn", qnArgs); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// benchCase is one named programmatically runnable benchmark.
type benchCase struct {
	name string
	fn   func(b *testing.B)
}

// writeSuiteJSON runs a suite via testing.Benchmark and writes a
// Report ({"meta": …, "benchmarks": {name: measurement}}) to w.
// Progress goes to progress (nil for silent) since a full run takes
// several seconds.
func writeSuiteJSON(cases []benchCase, meta RunMeta, w, progress io.Writer) error {
	rep := Report{Meta: meta, Benchmarks: make(map[string]Micro)}
	for _, c := range cases {
		if progress != nil {
			fmt.Fprintf(progress, "  bench %s ...", c.name)
		}
		// Start each case from a settled heap: garbage carried over
		// from a previous case's iterations otherwise bills its GC
		// time to whichever case happens to trip the next cycle.
		runtime.GC()
		r := testing.Benchmark(c.fn)
		m := Micro{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			m.MBPerS = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
		}
		if len(r.Extra) > 0 {
			m.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				m.Extra[k] = v
			}
		}
		rep.Benchmarks[c.name] = m
		if progress != nil {
			fmt.Fprintf(progress, " %.0f ns/op, %d allocs/op\n", m.NsPerOp, m.AllocsPerOp)
		}
	}
	return rep.WriteJSON(w)
}

// WriteMicroJSON runs the kernel microbenchmark suite and writes the
// stamped Report to w (cmd/benchtables -json, conventionally
// BENCH_csr.json).
func WriteMicroJSON(meta RunMeta, w, progress io.Writer) error {
	return writeSuiteJSON(microSuite(), meta, w, progress)
}
