package bench

import "testing"

// BenchmarkMixedReadWrite is the MVCC snapshot-read acceptance
// benchmark: reader latency through the full serving path with and
// without concurrent writers hammering the mutation routes. Compare
// the reported p99-ns between the two sub-benchmarks — with lock-free
// snapshot reads the withWriters p99 stays within a small factor of
// the noWriters baseline (CPU contention, not lock exclusion, is the
// only coupling left). Under the old RWMutex discipline every insert
// stalled every reader for the insert's full WAL+apply latency.
func BenchmarkMixedReadWrite(b *testing.B) {
	b.Run("noWriters", mixedReadCase(0))
	b.Run("withWriters", mixedReadCase(2))
}

// BenchmarkServeHistorySampler is the E17 overhead check runnable
// standalone: the serving path with the metrics-history sampler ticking
// at 1s. Compare ns/op against BenchmarkMixedReadWrite/noWriters or
// the Serve/run row of BENCH_server.json — the sampler is off the
// request path and must cost nothing measurable per request.
func BenchmarkServeHistorySampler(b *testing.B) {
	historyRunCase(b)
}
