package bench

import (
	"io"
	"math/rand"
	"strconv"
	"testing"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/value"
)

// fusionGraph builds a random digraph whose vertex and edge
// attributes carry the int/float columns the kernels fold. The kernel
// pair uses a dense 500x40 instance (one single-edge hop = ~20k
// binding rows, ACCUM-dominated); the fusion trio uses a smaller
// instance whose counted-hop traversal is the dominant cost — the
// Qacc shape fusion amortizes.
func fusionGraph(nVerts, outDeg int) *graph.Graph {
	s := graph.NewSchema()
	if _, err := s.AddVertexType("N",
		graph.AttrDef{Name: "name", Type: graph.AttrString},
		graph.AttrDef{Name: "score", Type: graph.AttrInt},
		graph.AttrDef{Name: "weight", Type: graph.AttrFloat},
	); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("E", true, graph.AttrDef{Name: "w", Type: graph.AttrInt}); err != nil {
		panic(err)
	}
	g := graph.New(s)
	r := rand.New(rand.NewSource(11))
	ids := make([]graph.VID, nVerts)
	for i := range ids {
		v, err := g.AddVertex("N", strconv.Itoa(i), map[string]value.Value{
			"name":   value.NewString("n" + strconv.Itoa(i)),
			"score":  value.NewInt(int64(r.Intn(100))),
			"weight": value.NewFloat(float64(r.Intn(400)) / 8),
		})
		if err != nil {
			panic(err)
		}
		ids[i] = v
	}
	for _, src := range ids {
		for d := 0; d < outDeg; d++ {
			dst := ids[r.Intn(nVerts)]
			if dst == src {
				continue
			}
			if _, err := g.AddEdge("E", src, dst, map[string]value.Value{
				"w": value.NewInt(int64(r.Intn(10))),
			}); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// fusionQueries: KernelQ prices per-row statement dispatch (four
// scalar-accumulator statements with attribute reads and arithmetic in
// one block); OneAcc / FourAcc price the fusion contract — FourAcc is
// four SELECT blocks over the identical traversal, which the planner
// collapses into one expansion feeding one fused kernel pass.
const fusionQueries = `
CREATE QUERY KernelQ() {
  SumAccum<int> @@a;
  SumAccum<float> @@b;
  MaxAccum<int> @@c;
  MinAccum<float> @@d;
  R = SELECT t FROM N:s -(E>)- N:t
      ACCUM @@a += s.score + t.score, @@b += t.weight * 0.5,
            @@c += t.score, @@d += s.weight + t.weight;
}
CREATE QUERY OneAcc() {
  SumAccum<int> @@a;
  A = SELECT t FROM N:s -(E>*1..3)- N:t ACCUM @@a += s.score;
}
CREATE QUERY FourAcc() {
  SumAccum<int> @@a;
  SumAccum<float> @@b;
  MaxAccum<int> @@c;
  MinAccum<float> @@d;
  A = SELECT t FROM N:s -(E>*1..3)- N:t ACCUM @@a += s.score;
  B = SELECT t FROM N:s -(E>*1..3)- N:t ACCUM @@b += t.weight;
  C = SELECT t FROM N:s -(E>*1..3)- N:t ACCUM @@c += t.score;
  D = SELECT t FROM N:s -(E>*1..3)- N:t ACCUM @@d += s.weight;
}
`

func fusionEngine(g *graph.Graph, opts core.Options) *core.Engine {
	eng := core.New(g, opts)
	if err := eng.Install(fusionQueries); err != nil {
		panic(err)
	}
	return eng
}

// fusionSuite benchmarks the compiled-kernel tentpole. The headline
// pairs: Fusion/kernel/compiled vs Fusion/kernel/interpreted (same
// query, same engine shape, interpreter forced by option — acceptance
// >=1.5x), and Fusion/block/4acc_fused vs Fusion/block/1acc (four
// accumulators over one traversal must cost <=1.5x a single one —
// acceptance). Fusion/block/4acc_interpreted shows the unfused,
// interpreted cost of the same four blocks for scale. All cases report
// allocations so the pooled kernel scratch (sync.Pool'd bind frames
// and vertex delta slabs) shows up as the compiled-vs-interpreted
// allocs_per_op delta.
func fusionSuite() []benchCase {
	// Kernel pair: dense graph, statement dispatch dominates. Fusion
	// trio: counted-hop traversal with the count cache off, so every
	// run pays the real SDMC traversal the fused group shares.
	kg := fusionGraph(500, 40)
	fg := fusionGraph(200, 10)
	kCompiled := fusionEngine(kg, core.Options{})
	kInterp := fusionEngine(kg, core.Options{DisableAccumCompile: true})
	fCompiled := fusionEngine(fg, core.Options{CountCacheSize: -1})
	fInterp := fusionEngine(fg, core.Options{CountCacheSize: -1, DisableAccumCompile: true})
	runCase := func(eng *core.Engine, query string) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(query, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return []benchCase{
		{"Fusion/kernel/compiled", runCase(kCompiled, "KernelQ")},
		{"Fusion/kernel/interpreted", runCase(kInterp, "KernelQ")},
		{"Fusion/block/1acc", runCase(fCompiled, "OneAcc")},
		{"Fusion/block/4acc_fused", runCase(fCompiled, "FourAcc")},
		{"Fusion/block/4acc_interpreted", runCase(fInterp, "FourAcc")},
	}
}

// WriteFusionJSON runs the compiled-kernel / fusion benchmark suite
// and writes the stamped Report to w (cmd/benchtables -json -suite
// fusion, conventionally BENCH_fusion.json).
func WriteFusionJSON(meta RunMeta, w, progress io.Writer) error {
	meta.Notes = "Baselines: Fusion/kernel/interpreted is the tree-walking ACCUM loop " +
		"on the identical engine and graph (compilation disabled by option), and " +
		"Fusion/block/1acc is one single-accumulator block over the shared traversal. " +
		"Acceptance: Fusion/kernel/compiled >=1.5x faster than Fusion/kernel/interpreted; " +
		"Fusion/block/4acc_fused (four blocks, one fused pass) <=1.5x the cost of " +
		"Fusion/block/1acc. allocs_per_op: the sync.Pool'd kernel scratch (bind frames, " +
		"vertex delta slabs) holds the compiled path at the traversal's own allocation " +
		"footprint (kernel pair near-identical); fusion's alloc win is " +
		"Fusion/block/4acc_fused (one traversal) vs 4acc_interpreted (four)."
	return writeSuiteJSON(fusionSuite(), meta, w, progress)
}
