package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/ldbc"
	"gsqlgo/internal/storage"
	"gsqlgo/internal/value"
)

// storageSuite measures the durability layer: snapshot codec
// throughput (MB/s via b.SetBytes), per-mutation WAL append cost, and
// recovery time as a function of WAL length — the numbers behind
// EXPERIMENTS.md E11 and the data for sizing checkpoint cadence.
func storageSuite() []benchCase {
	snb := ldbc.Generate(ldbc.Config{SF: 0.2, Seed: 7})
	snap, err := storage.EncodeSnapshot(snb)
	if err != nil {
		panic(err)
	}

	// A store directory whose WAL holds walLen records, for replay
	// benchmarks. Built once per case and reopened every iteration.
	mkWALDir := func(walLen int) string {
		dir, err := os.MkdirTemp("", "gsqlgo-bench-wal")
		if err != nil {
			panic(err)
		}
		st, err := storage.Open(dir, storage.Options{Init: func() (*graph.Graph, error) {
			s := graph.NewSchema()
			if _, err := s.AddVertexType("V", graph.AttrDef{Name: "name", Type: graph.AttrString}); err != nil {
				return nil, err
			}
			return graph.New(s), nil
		}})
		if err != nil {
			panic(err)
		}
		for i := 0; i < walLen; i++ {
			if _, err := st.Graph().AddVertex("V", fmt.Sprintf("v%d", i), nil); err != nil {
				panic(err)
			}
		}
		if err := st.Close(); err != nil {
			panic(err)
		}
		return dir
	}

	replayCase := func(walLen int) benchCase {
		return benchCase{fmt.Sprintf("Recovery/replay/records=%d", walLen), func(b *testing.B) {
			dir := mkWALDir(walLen)
			defer os.RemoveAll(dir)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := storage.Open(dir, storage.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if got := st.Stats().ReplayedRecords; got != uint64(walLen) {
					b.Fatalf("replayed %d records, want %d", got, walLen)
				}
				st.Close()
			}
		}}
	}

	return []benchCase{
		{"Snapshot/encode", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(snap)))
			for i := 0; i < b.N; i++ {
				if _, err := storage.EncodeSnapshot(snb); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Snapshot/decode", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(snap)))
			for i := 0; i < b.N; i++ {
				if _, err := storage.DecodeSnapshot(snap); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Snapshot/save", func(b *testing.B) {
			dir := b.TempDir()
			b.SetBytes(int64(len(snap)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := storage.SaveSnapshot(filepath.Join(dir, "bench.gsnap"), snb); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"WAL/appendVertex", func(b *testing.B) {
			dir := b.TempDir()
			st, err := storage.Open(dir, storage.Options{Init: func() (*graph.Graph, error) {
				s := graph.NewSchema()
				if _, err := s.AddVertexType("V", graph.AttrDef{Name: "name", Type: graph.AttrString}); err != nil {
					return nil, err
				}
				return graph.New(s), nil
			}})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Graph().AddVertex("V", fmt.Sprintf("b%d", i), nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"WAL/appendSetAttr", func(b *testing.B) {
			dir := b.TempDir()
			st, err := storage.Open(dir, storage.Options{Init: func() (*graph.Graph, error) {
				s := graph.NewSchema()
				if _, err := s.AddVertexType("V", graph.AttrDef{Name: "name", Type: graph.AttrString}); err != nil {
					return nil, err
				}
				g := graph.New(s)
				_, err := g.AddVertex("V", "only", nil)
				return g, err
			}})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			v := value.NewString("x")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Graph().SetVertexAttr(0, "name", v); err != nil {
					b.Fatal(err)
				}
			}
		}},
		replayCase(1_000),
		replayCase(10_000),
		replayCase(50_000),
	}
}

// WriteStorageJSON runs the storage suite and writes the stamped
// Report to w (cmd/benchtables -suite storage, conventionally
// BENCH_storage.json).
func WriteStorageJSON(meta RunMeta, w, progress io.Writer) error {
	return writeSuiteJSON(storageSuite(), meta, w, progress)
}
