package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// The committed BENCH_*.json artifacts all share one schema — {"meta":
// RunMeta, "benchmarks": {name: Micro}} — whether they come from
// cmd/benchtables microbenchmark suites or cmd/gsqlbench sustained-load
// runs. This file is that schema's home: the measurement type, the
// reader/writer, structural validation, and the tolerance-gated
// comparison CI's regression jobs exit nonzero on.

// Micro is one machine-readable measurement. For microbenchmarks it
// tracks ns/op and allocation counts; load benchmarks reuse the same
// shape with mean latency in NsPerOp and throughput/percentiles in
// Extra. Compare ns_per_op (and the Extra percentiles) against the
// committed baseline before and after touching a hot path.
type Micro struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// MBPerS is throughput for cases that declare a payload size via
	// b.SetBytes (the storage codec suite); zero elsewhere.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// Extra carries custom per-case metrics: b.ReportMetric values from
	// testing benchmarks (the mixed read/write cases use p50-ns/p99-ns)
	// and the load suite's percentile/throughput columns (p50_ns,
	// p99_ns, p999_ns, ops_per_s, ops, errors).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the on-disk shape of a BENCH_*.json artifact: run metadata
// plus the measurements.
type Report struct {
	Meta       RunMeta          `json:"meta"`
	Benchmarks map[string]Micro `json:"benchmarks"`
}

// WriteJSON writes the report in the artifacts' canonical indented
// form.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReportFile loads a committed BENCH_*.json artifact.
func ReadReportFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("bench: %s: %w", path, err)
	}
	return r, nil
}

// Validate checks the structural invariants every committed artifact
// must hold: environment stamps present (without them the numbers are
// not comparable across machines), at least one benchmark, no negative
// measurements, and — where a case reports latency percentiles —
// monotone quantiles (p50 ≤ p99 ≤ p999).
func (r Report) Validate() error {
	if r.Meta.GoVersion == "" || r.Meta.GOOS == "" || r.Meta.GOARCH == "" {
		return fmt.Errorf("bench: meta missing environment stamps: %+v", r.Meta)
	}
	if r.Meta.GOMAXPROCS <= 0 || r.Meta.NumCPU <= 0 {
		return fmt.Errorf("bench: meta missing CPU stamps: %+v", r.Meta)
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("bench: report has no benchmarks")
	}
	for name, m := range r.Benchmarks {
		if m.NsPerOp < 0 || m.AllocsPerOp < 0 || m.BytesPerOp < 0 || m.MBPerS < 0 {
			return fmt.Errorf("bench: %s: negative measurement: %+v", name, m)
		}
		for k, v := range m.Extra {
			if v < 0 {
				return fmt.Errorf("bench: %s: negative extra metric %s=%v", name, k, v)
			}
		}
		p50, ok50 := m.Extra["p50_ns"]
		p99, ok99 := m.Extra["p99_ns"]
		p999, ok999 := m.Extra["p999_ns"]
		if ok50 && ok99 && p50 > p99 {
			return fmt.Errorf("bench: %s: p50 %v > p99 %v", name, p50, p99)
		}
		if ok99 && ok999 && p99 > p999 {
			return fmt.Errorf("bench: %s: p99 %v > p999 %v", name, p99, p999)
		}
	}
	return nil
}

// Regression is one comparison failure: a metric that moved past the
// tolerance in its bad direction, or a benchmark the current report
// lost entirely.
type Regression struct {
	Benchmark string
	Metric    string
	Base, Cur float64
	// Limit is the bound Cur crossed, already tolerance-adjusted.
	Limit float64
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline, missing from current report", r.Benchmark)
	}
	return fmt.Sprintf("%s: %s regressed: baseline %.0f, current %.0f (limit %.0f)",
		r.Benchmark, r.Metric, r.Base, r.Cur, r.Limit)
}

// metricDirection reports whether a metric regresses by going up
// (latency-like), down (throughput-like), or is informational only.
func metricDirection(name string) int {
	switch {
	case name == "ns_per_op" || strings.HasSuffix(name, "_ns") || strings.HasSuffix(name, "-ns"):
		return +1 // lower is better; regression when it inflates
	case name == "mb_per_s" || strings.HasSuffix(name, "_per_s"):
		return -1 // higher is better; regression when it collapses
	default:
		return 0 // counts (ops, errors, requests, lag) — not gated
	}
}

// CompareReports gates cur against base with a symmetric relative
// tolerance: a latency-like metric regresses when cur > base·(1+tol),
// a throughput-like metric when cur < base/(1+tol). Benchmarks only in
// cur are fine (coverage grew); benchmarks only in base are flagged
// (coverage silently lost is how regressions hide). Zero-valued
// baseline metrics are skipped — no ratio is meaningful. Returned
// regressions are sorted for stable CI output.
func CompareReports(base, cur Report, tol float64) []Regression {
	var out []Regression
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			out = append(out, Regression{Benchmark: name, Metric: "missing"})
			continue
		}
		check := func(metric string, bv, cv float64) {
			if bv <= 0 {
				return
			}
			switch metricDirection(metric) {
			case +1:
				if limit := bv * (1 + tol); cv > limit {
					out = append(out, Regression{name, metric, bv, cv, limit})
				}
			case -1:
				if limit := bv / (1 + tol); cv < limit {
					out = append(out, Regression{name, metric, bv, cv, limit})
				}
			}
		}
		check("ns_per_op", b.NsPerOp, c.NsPerOp)
		check("mb_per_s", b.MBPerS, c.MBPerS)
		keys := make([]string, 0, len(b.Extra))
		for k := range b.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if cv, ok := c.Extra[k]; ok {
				check(k, b.Extra[k], cv)
			}
		}
	}
	return out
}
