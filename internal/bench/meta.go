package bench

import (
	"runtime"
)

// RunMeta stamps a benchmark JSON artifact with the environment it was
// measured in. Without it a committed BENCH_*.json is not comparable
// across machines or toolchains — a regression can be a CPU-count
// change in disguise.
type RunMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Commit is the repo HEAD at measurement time (short hash; empty
	// when the caller could not resolve it).
	Commit string `json:"commit,omitempty"`
	// Notes is free-form suite-supplied context for readers of the
	// artifact (e.g. which committed baseline a case compares against).
	Notes string `json:"notes,omitempty"`
}

// CurrentMeta captures the running process's environment. The commit
// hash is the caller's to supply — this package cannot assume a git
// checkout.
func CurrentMeta(commit string) RunMeta {
	return RunMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Commit:     commit,
	}
}
