package bench

import (
	"fmt"
	"io"
	"testing"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/ldbc"
)

// friendReachSrc is the expansion suite's counted-hop workload: every
// Person is a source of a bounded KNOWS repetition, so one run issues
// |Person| single-source SDMC counts plus the row-expansion pass —
// exactly the pipeline the sharded expansion and the count cache
// accelerate.
const friendReachSrc = `
CREATE QUERY FriendReach () {
  SumAccum<int> @@pairs;
  R = SELECT t FROM Person:p -(Knows*1..3)- Person:t WHERE t <> p ACCUM @@pairs += 1;
  RETURN @@pairs;
}
`

// twoHopSrc exercises the single-hop shard path: two adjacency hops,
// no DARPE counting, so the cost is dominated by binding-row fan-out.
const twoHopSrc = `
CREATE QUERY TwoHop () {
  SumAccum<int> @@pairs;
  R = SELECT t FROM Person:p -(Knows)- Person:f -(Knows)- Person:t ACCUM @@pairs += 1;
  RETURN @@pairs;
}
`

// expandEngine builds an engine over the shared LDBC graph with both
// benchmark queries installed, panicking on any setup failure (bench
// suites run outside testing.T).
func expandEngine(g *graph.Graph, opts core.Options) *core.Engine {
	e := core.New(g, opts)
	for _, src := range []string{friendReachSrc, twoHopSrc} {
		if err := e.Install(src); err != nil {
			panic(err)
		}
	}
	return e
}

// expandSuite measures the pattern-expansion pipeline three ways on one
// LDBC SNB graph: serial (Workers 1, cache off) as the pre-parallelism
// baseline, parallel (Workers 8, cache off) to show the sharded
// speedup — pinned rather than GOMAXPROCS so the sharded code path is
// exercised even on a single-core host, where the same numbers bound
// the sharding overhead instead (meta records NumCPU for the reader) —
// and warm (default options, primed once) to show the
// mutation-invalidated count cache eliminating SDMC work entirely.
func expandSuite() []benchCase {
	g := ldbc.Generate(ldbc.Config{SF: 0.2, Seed: 7})

	serial := expandEngine(g, core.Options{Workers: 1, CountCacheSize: -1})
	parallel := expandEngine(g, core.Options{Workers: 8, CountCacheSize: -1})
	warm := expandEngine(g, core.Options{})

	run := func(b *testing.B, e *core.Engine, name string) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(name, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Prime the warm engine so measured iterations are pure cache hits.
	for _, name := range []string{"FriendReach", "TwoHop"} {
		if res, err := warm.Run(name, nil); err != nil {
			panic(err)
		} else if res.Stats.SDMCRuns == 0 && name == "FriendReach" {
			panic("prime run did no SDMC work — suite graph too small?")
		}
	}
	if res, err := warm.Run("FriendReach", nil); err != nil {
		panic(err)
	} else if res.Stats.SDMCRuns != 0 {
		panic(fmt.Sprintf("warm rerun still did %d SDMC runs — count cache broken", res.Stats.SDMCRuns))
	}

	return []benchCase{
		{"Expand/counted/serial", func(b *testing.B) { run(b, serial, "FriendReach") }},
		{"Expand/counted/parallel", func(b *testing.B) { run(b, parallel, "FriendReach") }},
		{"Expand/counted/warmcache", func(b *testing.B) { run(b, warm, "FriendReach") }},
		{"Expand/singlehop/serial", func(b *testing.B) { run(b, serial, "TwoHop") }},
		{"Expand/singlehop/parallel", func(b *testing.B) { run(b, parallel, "TwoHop") }},
	}
}

// WriteExpandJSON runs the expansion-pipeline benchmark suite and
// writes the stamped Report to w (cmd/benchtables -json -suite expand,
// conventionally BENCH_expand.json).
func WriteExpandJSON(meta RunMeta, w, progress io.Writer) error {
	return writeSuiteJSON(expandSuite(), meta, w, progress)
}
