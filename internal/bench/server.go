package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/server"
)

// recommenderSrc is the Figure 3 two-pass recommender — the serving
// suite's representative parameterized workload (vertex + int params,
// two SELECT blocks, ORDER BY/LIMIT).
const recommenderSrc = `
CREATE QUERY TopKToys (vertex<Customer> c, int k) FOR GRAPH SalesGraph {
  SumAccum<float> @lc, @inCommon, @rank;

  SELECT DISTINCT o INTO OthersWithCommonLikes
  FROM   Customer:c -(Likes>)- Product:t -(<Likes)- Customer:o
  WHERE  o <> c AND t.category == 'toy'
  ACCUM  o.@inCommon += 1
  POST_ACCUM o.@lc = log(1 + o.@inCommon);

  SELECT t.name, t.@rank AS rank INTO Recommended
  FROM   OthersWithCommonLikes:o -(Likes>)- Product:t
  WHERE  t.category == 'toy' AND c <> o
  ACCUM  t.@rank += o.@lc
  ORDER BY t.@rank DESC
  LIMIT k;

  RETURN Recommended;
}
`

// serverSuite measures the serving path end to end — request decode,
// admission, engine run, JSON encode, metrics record — by driving the
// HTTP handler in-process (handler.ServeHTTP against a recorder; no
// sockets, so the numbers isolate gsqld's own overhead).
func serverSuite() []benchCase {
	g := graph.BuildSalesGraph(graph.SalesGraphConfig{
		Customers: 200, Products: 60, Sales: 3000, Likes: 4000, Seed: 42,
	})
	eng := core.New(g, core.Options{})
	if err := eng.Install(recommenderSrc); err != nil {
		panic(err)
	}
	srv := server.New(server.Config{Engine: eng})
	doReq := func(method, path, body string) int {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		return w.Code
	}
	// Prime one run so /metrics exposition has series to render.
	if code := doReq("POST", "/queries/TopKToys/run", `{"params":{"c":"c0","k":5}}`); code != http.StatusOK {
		panic(fmt.Sprintf("prime run: HTTP %d", code))
	}
	return []benchCase{
		{"Serve/run", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				body := fmt.Sprintf(`{"params":{"c":"c%d","k":5}}`, i%200)
				if code := doReq("POST", "/queries/TopKToys/run", body); code != http.StatusOK {
					b.Fatalf("HTTP %d", code)
				}
			}
		}},
		{"Serve/run/parallel", func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					body := fmt.Sprintf(`{"params":{"c":"c%d","k":5}}`, i%200)
					if code := doReq("POST", "/queries/TopKToys/run", body); code != http.StatusOK {
						b.Fatalf("HTTP %d", code)
					}
				}
			})
		}},
		{"Serve/list", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if code := doReq("GET", "/queries", ""); code != http.StatusOK {
					b.Fatalf("HTTP %d", code)
				}
			}
		}},
		{"Serve/metrics", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if code := doReq("GET", "/metrics", ""); code != http.StatusOK {
					b.Fatalf("HTTP %d", code)
				}
			}
		}},
		{"Serve/rejected404", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if code := doReq("POST", "/queries/NoSuch/run", "{}"); code != http.StatusNotFound {
					b.Fatalf("HTTP %d", code)
				}
			}
		}},
	}
}

// WriteServerJSON runs the serving-path benchmark suite and writes the
// stamped Report to w (cmd/benchtables -json -suite server,
// conventionally BENCH_server.json).
func WriteServerJSON(meta RunMeta, w, progress io.Writer) error {
	return writeSuiteJSON(serverSuite(), meta, w, progress)
}
