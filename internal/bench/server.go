package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/server"
)

// recommenderSrc is the Figure 3 two-pass recommender — the serving
// suite's representative parameterized workload (vertex + int params,
// two SELECT blocks, ORDER BY/LIMIT).
const recommenderSrc = `
CREATE QUERY TopKToys (vertex<Customer> c, int k) FOR GRAPH SalesGraph {
  SumAccum<float> @lc, @inCommon, @rank;

  SELECT DISTINCT o INTO OthersWithCommonLikes
  FROM   Customer:c -(Likes>)- Product:t -(<Likes)- Customer:o
  WHERE  o <> c AND t.category == 'toy'
  ACCUM  o.@inCommon += 1
  POST_ACCUM o.@lc = log(1 + o.@inCommon);

  SELECT t.name, t.@rank AS rank INTO Recommended
  FROM   OthersWithCommonLikes:o -(Likes>)- Product:t
  WHERE  t.category == 'toy' AND c <> o
  ACCUM  t.@rank += o.@lc
  ORDER BY t.@rank DESC
  LIMIT k;

  RETURN Recommended;
}
`

// serverSuite measures the serving path end to end — request decode,
// admission, engine run, JSON encode, metrics record — by driving the
// HTTP handler in-process (handler.ServeHTTP against a recorder; no
// sockets, so the numbers isolate gsqld's own overhead).
func serverSuite() []benchCase {
	g := graph.BuildSalesGraph(graph.SalesGraphConfig{
		Customers: 200, Products: 60, Sales: 3000, Likes: 4000, Seed: 42,
	})
	eng := core.New(g, core.Options{})
	if err := eng.Install(recommenderSrc); err != nil {
		panic(err)
	}
	srv := server.New(server.Config{Engine: eng})
	doReq := func(method, path, body string) int {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		return w.Code
	}
	// Prime one run so /metrics exposition has series to render.
	if code := doReq("POST", "/queries/TopKToys/run", `{"params":{"c":"c0","k":5}}`); code != http.StatusOK {
		panic(fmt.Sprintf("prime run: HTTP %d", code))
	}
	return []benchCase{
		{"Serve/run", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				body := fmt.Sprintf(`{"params":{"c":"c%d","k":5}}`, i%200)
				if code := doReq("POST", "/queries/TopKToys/run", body); code != http.StatusOK {
					b.Fatalf("HTTP %d", code)
				}
			}
		}},
		{"Serve/run/parallel", func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					body := fmt.Sprintf(`{"params":{"c":"c%d","k":5}}`, i%200)
					if code := doReq("POST", "/queries/TopKToys/run", body); code != http.StatusOK {
						b.Fatalf("HTTP %d", code)
					}
				}
			})
		}},
		{"Serve/list", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if code := doReq("GET", "/queries", ""); code != http.StatusOK {
					b.Fatalf("HTTP %d", code)
				}
			}
		}},
		{"Serve/metrics", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if code := doReq("GET", "/metrics", ""); code != http.StatusOK {
					b.Fatalf("HTTP %d", code)
				}
			}
		}},
		{"Serve/rejected404", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if code := doReq("POST", "/queries/NoSuch/run", "{}"); code != http.StatusNotFound {
					b.Fatalf("HTTP %d", code)
				}
			}
		}},
		{"Serve/run/history1s", historyRunCase},
	}
}

// historyRunCase measures the serving path with the metrics-history
// sampler enabled at a 1s interval — the overhead comparison against
// the plain Serve/run case (EXPERIMENTS.md E17). The sampler never
// touches the request path (one background Gather per tick), so this
// must sit within noise of Serve/run; a gap here means the registry
// snapshot started contending with hot-path counter writes.
func historyRunCase(b *testing.B) {
	g := graph.BuildSalesGraph(graph.SalesGraphConfig{
		Customers: 200, Products: 60, Sales: 3000, Likes: 4000, Seed: 42,
	})
	eng := core.New(g, core.Options{})
	if err := eng.Install(recommenderSrc); err != nil {
		panic(err)
	}
	srv := server.New(server.Config{Engine: eng, MetricsHistory: time.Second})
	defer srv.History().Stop()
	doReq := func(method, path, body string) int {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		return w.Code
	}
	if code := doReq("POST", "/queries/TopKToys/run", `{"params":{"c":"c0","k":5}}`); code != http.StatusOK {
		panic(fmt.Sprintf("prime run: HTTP %d", code))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"params":{"c":"c%d","k":5}}`, i%200)
		if code := doReq("POST", "/queries/TopKToys/run", body); code != http.StatusOK {
			b.Fatalf("HTTP %d", code)
		}
	}
}

// mixedReadCase builds one MVCC mixed-workload case: b.N runs of the
// installed recommender through the full serving path while `writers`
// goroutines hammer vertex and edge inserts through the mutation
// routes for the whole measured window. Reader latency percentiles
// land in the result's Extra metrics (p50-ns, p99-ns); with snapshot
// reads the withWriters p99 must sit within a small factor of the
// noWriters baseline — writers never block the query path. Each case
// builds a private server so writer-grown graphs never leak into
// other cases' measurements.
func mixedReadCase(writers int) func(b *testing.B) {
	return func(b *testing.B) {
		g := graph.BuildSalesGraph(graph.SalesGraphConfig{
			Customers: 200, Products: 60, Sales: 3000, Likes: 4000, Seed: 42,
		})
		// Low enough that sustained writers fold mid-measurement: the
		// numbers include re-base hiccups, not just pure append load.
		g.SetFoldThreshold(256)
		eng := core.New(g, core.Options{})
		if err := eng.Install(recommenderSrc); err != nil {
			panic(err)
		}
		srv := server.New(server.Config{Engine: eng})
		doReq := func(method, path, body string) int {
			req := httptest.NewRequest(method, path, strings.NewReader(body))
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, req)
			return w.Code
		}
		if code := doReq("POST", "/queries/TopKToys/run", `{"params":{"c":"c0","k":5}}`); code != http.StatusOK {
			panic(fmt.Sprintf("prime run: HTTP %d", code))
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					// Writers grow a PRIVATE component (fresh customer +
					// fresh product + a Likes edge between them): full
					// epoch churn, snapshot publishes, folds, and CSR
					// invalidation — without inflating the measured
					// query's own result set, which would confound
					// isolation cost with workload growth. Paced at an
					// OLTP-ish rate so the graph stays comparable to the
					// baseline across the measured window.
					ck := fmt.Sprintf("w%d-%d", w, i)
					pk := fmt.Sprintf("wp%d-%d", w, i)
					if code := doReq("POST", "/graph/vertices",
						fmt.Sprintf(`{"type":"Customer","key":%q}`, ck)); code != http.StatusCreated {
						panic(fmt.Sprintf("writer insert: HTTP %d", code))
					}
					if code := doReq("POST", "/graph/vertices",
						fmt.Sprintf(`{"type":"Product","key":%q,"attrs":{"category":"toy"}}`, pk)); code != http.StatusCreated {
						panic(fmt.Sprintf("writer insert: HTTP %d", code))
					}
					if code := doReq("POST", "/graph/edges", fmt.Sprintf(
						`{"type":"Likes","src":{"type":"Customer","key":%q},"dst":{"type":"Product","key":%q}}`,
						ck, pk)); code != http.StatusCreated {
						panic(fmt.Sprintf("writer edge: HTTP %d", code))
					}
					time.Sleep(100 * time.Microsecond)
				}
			}(w)
		}
		lat := make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body := fmt.Sprintf(`{"params":{"c":"c%d","k":5}}`, i%200)
			t0 := time.Now()
			if code := doReq("POST", "/queries/TopKToys/run", body); code != http.StatusOK {
				b.Fatalf("HTTP %d", code)
			}
			lat = append(lat, time.Since(t0))
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(lat)-1))
			return float64(lat[i].Nanoseconds())
		}
		b.ReportMetric(pct(0.50), "p50-ns")
		b.ReportMetric(pct(0.99), "p99-ns")
	}
}

// mixedReadWriteCases pairs the no-writer baseline with the
// under-writers measurement (the acceptance comparison for MVCC
// snapshot reads).
func mixedReadWriteCases() []benchCase {
	return []benchCase{
		{"Serve/mixedRead/noWriters", mixedReadCase(0)},
		{"Serve/mixedRead/withWriters", mixedReadCase(2)},
	}
}

// WriteServerJSON runs the serving-path benchmark suite and writes the
// stamped Report to w (cmd/benchtables -json -suite server,
// conventionally BENCH_server.json).
func WriteServerJSON(meta RunMeta, w, progress io.Writer) error {
	return writeSuiteJSON(append(serverSuite(), mixedReadWriteCases()...), meta, w, progress)
}
