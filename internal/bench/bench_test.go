package bench

import (
	"strings"
	"testing"
	"time"
)

// The harness tests run each table generator with tiny parameters and
// check the output shape; the real regenerations live in the
// repository-root benchmarks and cmd/benchtables.

func TestTable1Small(t *testing.T) {
	var sb strings.Builder
	if err := Table1(&sb, Table1Config{MaxN: 8, CellTimeout: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "256") {
		t.Errorf("missing 2^8 path count:\n%s", out)
	}
	if !strings.Contains(out, "Full GSQL Q_8") {
		t.Errorf("missing engine measurement:\n%s", out)
	}
	if strings.Count(out, "\n") < 9 {
		t.Errorf("too few rows:\n%s", out)
	}
}

func TestSNBTableSmall(t *testing.T) {
	var sb strings.Builder
	err := SNBTable(&sb, SNBConfig{SFs: []float64{0.1}, Hops: []int{2}, Seed: 5, MaxSteps: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"all-shortest-paths", "non-repeated-edge", "ic3", "ic11"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestAppendixBSmall(t *testing.T) {
	var sb strings.Builder
	if err := AppendixB(&sb, AppendixBConfig{SFs: []float64{0.1}, Reps: 1, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "x") {
		t.Errorf("missing speedup column:\n%s", out)
	}
}

func TestSDMCScalingSmall(t *testing.T) {
	var sb strings.Builder
	if err := SDMCScaling(&sb, []int{5, 70}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "saturated") {
		t.Errorf("n=70 must saturate:\n%s", out)
	}
}

func TestShortcutAblationSmall(t *testing.T) {
	var sb strings.Builder
	if err := ShortcutAblation(&sb, []int{3, 6}, time.Second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "without shortcut") {
		t.Errorf("header missing:\n%s", sb.String())
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		1500 * time.Microsecond: "1.50ms",
		12 * time.Second:        "12.00s",
		90 * time.Second:        "1m30s",
		10 * time.Minute:        "10m00s",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	// Zero-valued configs pick the documented defaults; exercised with
	// tiny overrides where defaults would be slow.
	var sb strings.Builder
	if err := ShortcutAblation(&sb, []int{2}, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "n") {
		t.Error("ablation output empty")
	}
	sb.Reset()
	if err := SDMCScaling(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "60") {
		t.Error("SDMC default sizes missing n=60")
	}
}
