package bench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The harness tests run each table generator with tiny parameters and
// check the output shape; the real regenerations live in the
// repository-root benchmarks and cmd/benchtables.

func TestTable1Small(t *testing.T) {
	var sb strings.Builder
	if err := Table1(&sb, Table1Config{MaxN: 8, CellTimeout: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "256") {
		t.Errorf("missing 2^8 path count:\n%s", out)
	}
	if !strings.Contains(out, "Full GSQL Q_8") {
		t.Errorf("missing engine measurement:\n%s", out)
	}
	if strings.Count(out, "\n") < 9 {
		t.Errorf("too few rows:\n%s", out)
	}
}

func TestSNBTableSmall(t *testing.T) {
	var sb strings.Builder
	err := SNBTable(&sb, SNBConfig{SFs: []float64{0.1}, Hops: []int{2}, Seed: 5, MaxSteps: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"all-shortest-paths", "non-repeated-edge", "ic3", "ic11"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestAppendixBSmall(t *testing.T) {
	var sb strings.Builder
	if err := AppendixB(&sb, AppendixBConfig{SFs: []float64{0.1}, Reps: 1, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "x") {
		t.Errorf("missing speedup column:\n%s", out)
	}
}

func TestSDMCScalingSmall(t *testing.T) {
	var sb strings.Builder
	if err := SDMCScaling(&sb, []int{5, 70}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "saturated") {
		t.Errorf("n=70 must saturate:\n%s", out)
	}
}

func TestShortcutAblationSmall(t *testing.T) {
	var sb strings.Builder
	if err := ShortcutAblation(&sb, []int{3, 6}, time.Second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "without shortcut") {
		t.Errorf("header missing:\n%s", sb.String())
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		1500 * time.Microsecond: "1.50ms",
		12 * time.Second:        "12.00s",
		90 * time.Second:        "1m30s",
		10 * time.Minute:        "10m00s",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}

// TestCommittedReportsValidate holds every committed BENCH_*.json to
// the shared schema: environment stamps, non-negative measurements,
// monotone latency percentiles. A PR that commits a malformed artifact
// fails here, not in the next PR's comparison job.
func TestCommittedReportsValidate(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed BENCH_*.json artifacts found at the repo root")
	}
	for _, p := range paths {
		rep, err := ReadReportFile(p)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(p), err)
			continue
		}
		if err := rep.Validate(); err != nil {
			t.Errorf("%s: %v", filepath.Base(p), err)
		}
	}
}

func testReport(ns, p99, opsPerS float64) Report {
	return Report{
		Meta: CurrentMeta(""),
		Benchmarks: map[string]Micro{
			"load/closed/read": {
				NsPerOp: ns,
				Extra:   map[string]float64{"p99_ns": p99, "ops_per_s": opsPerS},
			},
		},
	}
}

func TestCompareReportsFlagsRegressions(t *testing.T) {
	base := testReport(1000, 5000, 200)

	// Within tolerance in both directions: clean.
	if regs := CompareReports(base, testReport(1400, 6900, 150), 0.5); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}
	// Injected latency regression: mean and p99 both blow the bound.
	regs := CompareReports(base, testReport(5000, 25000, 200), 0.5)
	if len(regs) != 2 {
		t.Fatalf("latency regression: got %v, want ns_per_op and p99_ns flagged", regs)
	}
	for _, r := range regs {
		if r.Metric != "ns_per_op" && r.Metric != "p99_ns" {
			t.Errorf("unexpected metric %q flagged", r.Metric)
		}
		if !strings.Contains(r.String(), "regressed") {
			t.Errorf("unhelpful regression message %q", r.String())
		}
	}
	// Throughput collapse regresses in the opposite direction.
	if regs := CompareReports(base, testReport(1000, 5000, 50), 0.5); len(regs) != 1 || regs[0].Metric != "ops_per_s" {
		t.Fatalf("throughput collapse: got %v", regs)
	}
	// A benchmark the current run lost entirely is a regression too.
	cur := testReport(1000, 5000, 200)
	delete(cur.Benchmarks, "load/closed/read")
	cur.Benchmarks["other"] = Micro{NsPerOp: 1}
	if regs := CompareReports(base, cur, 0.5); len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("missing benchmark: got %v", regs)
	}
	// Counters (ops, errors) are informational, never gated.
	base.Benchmarks["load/closed/read"] = Micro{Extra: map[string]float64{"errors": 1, "ops": 100}}
	cur = Report{Benchmarks: map[string]Micro{
		"load/closed/read": {Extra: map[string]float64{"errors": 50, "ops": 5}},
	}}
	if regs := CompareReports(base, cur, 0.5); len(regs) != 0 {
		t.Fatalf("counter metrics must not gate: %v", regs)
	}
}

func TestReportValidateRejectsBrokenPercentiles(t *testing.T) {
	rep := testReport(1000, 5000, 200)
	if err := rep.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	m := rep.Benchmarks["load/closed/read"]
	m.Extra["p50_ns"] = 9000 // above p99 — a histogram bug
	rep.Benchmarks["load/closed/read"] = m
	if err := rep.Validate(); err == nil {
		t.Fatal("non-monotone percentiles must fail validation")
	}
	rep = testReport(1000, 5000, 200)
	rep.Meta.GoVersion = ""
	if err := rep.Validate(); err == nil {
		t.Fatal("missing environment stamps must fail validation")
	}
}

func TestDefaultsApplied(t *testing.T) {
	// Zero-valued configs pick the documented defaults; exercised with
	// tiny overrides where defaults would be slow.
	var sb strings.Builder
	if err := ShortcutAblation(&sb, []int{2}, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "n") {
		t.Error("ablation output empty")
	}
	sb.Reset()
	if err := SDMCScaling(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "60") {
		t.Error("SDMC default sizes missing n=60")
	}
}
