// Package bench regenerates the paper's tables and figures:
//
//   - Table 1 (plus the accompanying TigerGraph measurement): diamond
//     chain path counting under all-shortest-paths counting vs
//     non-repeated-edge enumeration vs materializing all-shortest-paths
//     (Section 7.1).
//   - The Section 7.1 large-scale table: SNB IC queries at growing
//     scale factors and KNOWS hop counts under both semantics.
//   - The Appendix B table: accumulator-style (Qacc) vs
//     GROUPING-SET-style (Qgs) multi-aggregation with per-scale-factor
//     speedups.
//   - Supporting ablations: SDMC polynomial scaling and the Appendix A
//     multiplicity shortcut.
//
// Absolute milliseconds differ from the paper (different hardware and
// substrate); the shapes — who wins, growth rates, crossovers — are
// what reproduce.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"gsqlgo/internal/core"
	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/ldbc"
	"gsqlgo/internal/match"
	"gsqlgo/internal/value"
)

// fmtDur renders a duration like the paper's tables (ms below 10 s,
// m/s above).
func fmtDur(d time.Duration) string {
	switch {
	case d < 10*time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	}
}

// Table1Config bounds the Table 1 regeneration.
type Table1Config struct {
	// MaxN is the largest diamond count (the paper used 30).
	MaxN int
	// CellTimeout abandons a column once one of its cells exceeds it
	// (the paper used 10 minutes; benches default far lower).
	CellTimeout time.Duration
}

// Table1 regenerates Table 1 (Section 7.1): for each n, the number of
// v0→vn paths and the evaluation time under (a) polynomial ASP
// counting — the TigerGraph strategy, all sub-10ms in the paper —
// (b) non-repeated-edge enumeration — Neo4j's default, doubling per
// +1 n — and (c) materializing ASP — Neo4j's allShortestPaths mode,
// growing even faster.
func Table1(w io.Writer, cfg Table1Config) error {
	if cfg.MaxN <= 0 {
		cfg.MaxN = 30
	}
	if cfg.CellTimeout <= 0 {
		cfg.CellTimeout = 10 * time.Minute
	}
	g := graph.BuildDiamondChain(cfg.MaxN)
	d := darpe.MustCompile("E>*")
	v0, _ := g.VertexByKey("V", "v0")

	fmt.Fprintf(w, "Table 1 — diamond chain Q_n (n diamonds, 2^n paths), cell timeout %s\n", cfg.CellTimeout)
	fmt.Fprintf(w, "%4s  %12s  %14s  %14s  %14s\n", "n", "path count", "ASP-count", "NRE-enum", "ASP-materialize")

	nreDead, matDead := false, false
	for n := 1; n <= cfg.MaxN; n++ {
		vn, _ := g.VertexByKey("V", fmt.Sprintf("v%d", n))

		start := time.Now()
		_, mult, ok := match.CountASPPair(g, d, v0, vn)
		aspTime := time.Since(start)
		if !ok {
			return fmt.Errorf("bench: v%d unreachable", n)
		}

		nreCell, matCell := "-", "-"
		if !nreDead {
			start = time.Now()
			cnt, err := match.CountEnumPair(g, d, v0, vn, match.NonRepeatedEdge, match.EnumLimits{MaxSteps: 1 << 62})
			el := time.Since(start)
			if err != nil {
				nreCell = "err"
			} else {
				if cnt != mult {
					return fmt.Errorf("bench: NRE count %d != ASP count %d at n=%d", cnt, mult, n)
				}
				nreCell = fmtDur(el)
				if el > cfg.CellTimeout {
					nreDead = true
				}
			}
		}
		if !matDead {
			start = time.Now()
			_, cnt, err := match.CountASPMaterializedPair(g, d, v0, vn, match.EnumLimits{MaxSteps: 1 << 62})
			el := time.Since(start)
			if err != nil {
				matCell = "err"
			} else {
				if cnt != mult {
					return fmt.Errorf("bench: materialized count %d != ASP count %d at n=%d", cnt, mult, n)
				}
				matCell = fmtDur(el)
				if el > cfg.CellTimeout {
					matDead = true
				}
			}
		}
		fmt.Fprintf(w, "%4d  %12d  %14s  %14s  %14s\n", n, mult, fmtDur(aspTime), nreCell, matCell)
	}

	// The paper's companion measurement: the full GSQL Q_n through the
	// engine (WHERE-filtered over all sources) stays in milliseconds.
	e := core.New(g, core.Options{})
	if err := e.Install(qnSource); err != nil {
		return err
	}
	start := time.Now()
	res, err := e.Run("Qn", map[string]value.Value{
		"srcName": value.NewString("v0"),
		"tgtName": value.NewString(fmt.Sprintf("v%d", cfg.MaxN)),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nFull GSQL Q_%d through the engine (all-shortest-paths): count=%s in %s\n",
		cfg.MaxN, res.Printed[0].Rows[0][1], fmtDur(time.Since(start)))
	return nil
}

const qnSource = `
CREATE QUERY Qn(string srcName, string tgtName) {
  SumAccum<int> @pathCount;
  R = SELECT t
      FROM V:s -(E>*)- V:t
      WHERE s.name == srcName AND t.name == tgtName
      ACCUM t.@pathCount += 1;
  PRINT R[R.name, R.@pathCount];
}
`

// SNBConfig bounds the Section 7.1 SNB regeneration.
type SNBConfig struct {
	// SFs are the scale factors (persons ≈ 1000·SF each).
	SFs []float64
	// Hops are the KNOWS repetition bounds (the paper used 2, 3, 4).
	Hops []int
	// Seed feeds the generator.
	Seed int64
	// MaxSteps bounds each enumeration cell; exceeding it prints "-"
	// (the paper's Neo4j timeouts).
	MaxSteps uint64
}

// SNBTable regenerates the Section 7.1 two-part table: the IC query
// family at each scale factor and hop count, timed under
// all-shortest-paths counting (the TigerGraph half) and
// non-repeated-edge enumeration (the Neo4j half).
func SNBTable(w io.Writer, cfg SNBConfig) error {
	if len(cfg.SFs) == 0 {
		cfg.SFs = []float64{0.3, 1, 3}
	}
	if len(cfg.Hops) == 0 {
		cfg.Hops = []int{2, 3, 4}
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200_000_000
	}
	queries := []string{"ic3", "ic5", "ic6", "ic9", "ic11"}
	for _, part := range []struct {
		label string
		sem   match.Semantics
	}{
		{"all-shortest-paths (counting; TigerGraph's strategy)", match.AllShortestPaths},
		{"non-repeated-edge (enumeration; Neo4j's default)", match.NonRepeatedEdge},
	} {
		fmt.Fprintf(w, "\nSNB IC queries under %s\n", part.label)
		fmt.Fprintf(w, "%6s %5s", "SF", "hops")
		for _, q := range queries {
			fmt.Fprintf(w, " %12s", q)
		}
		fmt.Fprintln(w)
		for _, sf := range cfg.SFs {
			g := ldbc.Generate(ldbc.Config{SF: sf, Seed: cfg.Seed})
			p, _ := g.VertexByKey("Person", "person0")
			for _, h := range cfg.Hops {
				fmt.Fprintf(w, "%6.1f %5d", sf, h)
				for _, q := range queries {
					cell, err := runICCell(g, part.sem, q, h, p, cfg.MaxSteps)
					if err != nil {
						return err
					}
					fmt.Fprintf(w, " %12s", cell)
				}
				fmt.Fprintln(w)
			}
		}
	}
	return nil
}

func runICCell(g *graph.Graph, sem match.Semantics, short string, h int, p graph.VID, maxSteps uint64) (string, error) {
	e := core.New(g, core.Options{Semantics: sem, EnumLimits: match.EnumLimits{MaxSteps: maxSteps}})
	if err := e.Install(ldbc.ICQueries(h)[short]); err != nil {
		return "", err
	}
	args := icArgs(short, p)
	start := time.Now()
	_, err := e.Run(ldbc.ICName(short, h), args)
	if err != nil {
		// Budget exhaustion models the paper's timeouts.
		return "-", nil
	}
	return fmtDur(time.Since(start)), nil
}

func icArgs(short string, p graph.VID) map[string]value.Value {
	pv := value.NewVertex(int64(p))
	k := value.NewInt(20)
	switch short {
	case "ic3":
		return map[string]value.Value{"p": pv, "countryX": value.NewString("Country-1"), "countryY": value.NewString("Country-2"), "k": k}
	case "ic5":
		return map[string]value.Value{"p": pv, "minDate": graph.MustDatetime("2010-06-01"), "k": k}
	case "ic6":
		return map[string]value.Value{"p": pv, "tagName": value.NewString("Tag-3"), "k": k}
	case "ic9":
		return map[string]value.Value{"p": pv, "maxDate": graph.MustDatetime("2012-06-01"), "k": k}
	case "ic11":
		return map[string]value.Value{"p": pv, "countryName": value.NewString("Country-0"), "maxYear": value.NewInt(2010), "k": k}
	default:
		panic("unknown IC query " + short)
	}
}

// AppendixBConfig bounds the Appendix B regeneration.
type AppendixBConfig struct {
	// SFs are the scale factors to sweep (the paper used 1, 10, 100,
	// 1000 at 1 GB–1 TB; defaults here are laptop-scale).
	SFs []float64
	// Reps is the number of timed runs per query; the median is
	// reported (the paper used 5).
	Reps int
	// Seed feeds the generator.
	Seed int64
}

// AppendixB regenerates the Appendix B table: median running times of
// the GROUPING-SET-style Qgs and the accumulator-style Qacc per scale
// factor, and the speedup (the paper observed 2.48×–3.05×).
func AppendixB(w io.Writer, cfg AppendixBConfig) error {
	if len(cfg.SFs) == 0 {
		cfg.SFs = []float64{0.5, 1, 2}
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 5
	}
	args := map[string]value.Value{
		"lo": graph.MustDatetime("2010-01-01"),
		"hi": graph.MustDatetime("2012-12-31"),
	}
	fmt.Fprintf(w, "Appendix B — accumulator vs GROUPING-SET multi-aggregation (median of %d runs)\n", cfg.Reps)
	fmt.Fprintf(w, "%12s %14s %14s %9s\n", "scale factor", "Qgs median", "Qacc median", "speedup")
	for _, sf := range cfg.SFs {
		g := ldbc.Generate(ldbc.Config{SF: sf, Seed: cfg.Seed})
		gsTime, err := medianRun(g, ldbc.QGS(), "Qgs", args, cfg.Reps)
		if err != nil {
			return err
		}
		accTime, err := medianRun(g, ldbc.QACC(), "Qacc", args, cfg.Reps)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%12.1f %14s %14s %8.3fx\n", sf, fmtDur(gsTime), fmtDur(accTime),
			float64(gsTime)/float64(accTime))
	}
	return nil
}

func medianRun(g *graph.Graph, src, name string, args map[string]value.Value, reps int) (time.Duration, error) {
	e := core.New(g, core.Options{})
	if err := e.Install(src); err != nil {
		return 0, err
	}
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := e.Run(name, args); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// SDMCScaling demonstrates Theorem 6.1's polynomial scaling: the
// single-source SDMC time on diamond chains of growing size, where the
// path count grows exponentially but counting time grows linearly.
func SDMCScaling(w io.Writer, sizes []int) error {
	if len(sizes) == 0 {
		sizes = []int{10, 20, 30, 40, 50, 60}
	}
	d := darpe.MustCompile("E>*")
	fmt.Fprintln(w, "SDMC scaling (Theorem 6.1): single-source counting time vs graph size")
	fmt.Fprintf(w, "%6s %10s %10s %22s %12s\n", "n", "vertices", "edges", "paths v0->vn", "count time")
	for _, n := range sizes {
		g := graph.BuildDiamondChain(n)
		v0, _ := g.VertexByKey("V", "v0")
		vn, _ := g.VertexByKey("V", fmt.Sprintf("v%d", n))
		start := time.Now()
		c := match.CountASP(g, d, v0)
		el := time.Since(start)
		paths := fmt.Sprintf("%d", c.Mult[vn])
		if c.Saturated {
			paths = "2^" + fmt.Sprint(n) + " (saturated)"
		}
		fmt.Fprintf(w, "%6d %10d %10d %22s %12s\n", n, g.NumVertices(), g.NumEdges(), paths, fmtDur(el))
	}
	return nil
}

// ShortcutAblation times the same Q_n with and without the Appendix A
// multiplicity shortcut: without it, a binding of multiplicity 2^n
// executes the ACCUM clause 2^n times.
func ShortcutAblation(w io.Writer, ns []int, cellTimeout time.Duration) error {
	if len(ns) == 0 {
		ns = []int{4, 8, 12, 16, 20}
	}
	if cellTimeout <= 0 {
		cellTimeout = time.Minute
	}
	fmt.Fprintln(w, "Appendix A ablation: compressed binding table vs replicated acc-executions")
	fmt.Fprintf(w, "%4s %14s %18s\n", "n", "with shortcut", "without shortcut")
	dead := false
	for _, n := range ns {
		g := graph.BuildDiamondChain(n)
		withT, err := timeQn(g, n, false)
		if err != nil {
			return err
		}
		cell := "-"
		if !dead {
			withoutT, err := timeQn(g, n, true)
			if err != nil {
				return err
			}
			cell = fmtDur(withoutT)
			if withoutT > cellTimeout {
				dead = true
			}
		}
		fmt.Fprintf(w, "%4d %14s %18s\n", n, fmtDur(withT), cell)
	}
	return nil
}

func timeQn(g *graph.Graph, n int, noShortcut bool) (time.Duration, error) {
	e := core.New(g, core.Options{NoMultiplicityShortcut: noShortcut})
	if err := e.Install(qnSource); err != nil {
		return 0, err
	}
	args := map[string]value.Value{
		"srcName": value.NewString("v0"),
		"tgtName": value.NewString(fmt.Sprintf("v%d", n)),
	}
	start := time.Now()
	if _, err := e.Run("Qn", args); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
