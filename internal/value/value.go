// Package value implements the runtime value system of the GSQL
// interpreter: a compact tagged union covering the scalar types of the
// GSQL type system (bool, int, float, string, datetime), graph element
// references (vertex, edge), and the structured values produced by
// collection accumulators (tuple, list, set, map).
//
// Values are immutable once constructed. Structured values share
// underlying slices; callers that mutate must copy first.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind discriminates the dynamic type held by a Value.
type Kind uint8

// The kinds of runtime values.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDatetime // seconds since the Unix epoch, UTC
	KindVertex   // graph-global vertex id
	KindEdge     // graph-global edge id
	KindTuple    // fixed-arity heterogeneous sequence
	KindList     // variable-length sequence
	KindSet      // canonically sorted, deduplicated sequence
	KindMap      // canonically sorted key/value pairs
)

// String returns the GSQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDatetime:
		return "datetime"
	case KindVertex:
		return "vertex"
	case KindEdge:
		return "edge"
	case KindTuple:
		return "tuple"
	case KindList:
		return "list"
	case KindSet:
		return "set"
	case KindMap:
		return "map"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Pair is one entry of a map value.
type Pair struct {
	Key Value
	Val Value
}

// Value is a runtime value. The zero Value is the null value.
type Value struct {
	kind  Kind
	i     int64   // bool (0/1), int, datetime, vertex id, edge id
	f     float64 // float payload
	s     string  // string payload
	elems []Value // tuple/list/set payload
	pairs []Pair  // map payload
}

// Null is the null value.
var Null = Value{}

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewDatetime returns a datetime value from Unix seconds.
func NewDatetime(unixSec int64) Value { return Value{kind: KindDatetime, i: unixSec} }

// NewVertex returns a vertex reference for a graph-global vertex id.
func NewVertex(id int64) Value { return Value{kind: KindVertex, i: id} }

// NewEdge returns an edge reference for a graph-global edge id.
func NewEdge(id int64) Value { return Value{kind: KindEdge, i: id} }

// NewTuple returns a tuple value over the given fields. The slice is
// retained; the caller must not mutate it afterwards.
func NewTuple(fields []Value) Value { return Value{kind: KindTuple, elems: fields} }

// NewList returns a list value. The slice is retained.
func NewList(elems []Value) Value { return Value{kind: KindList, elems: elems} }

// NewSet returns a set value with canonical (sorted, deduplicated)
// element order. The input slice may be reordered in place.
func NewSet(elems []Value) Value {
	sort.Slice(elems, func(i, j int) bool { return Less(elems[i], elems[j]) })
	out := elems[:0]
	for i, e := range elems {
		if i == 0 || !Equal(e, elems[i-1]) {
			out = append(out, e)
		}
	}
	return Value{kind: KindSet, elems: out}
}

// NewMap returns a map value with canonical key order. The input slice
// may be reordered in place. Duplicate keys keep the last value.
func NewMap(pairs []Pair) Value {
	sort.SliceStable(pairs, func(i, j int) bool { return Less(pairs[i].Key, pairs[j].Key) })
	out := pairs[:0]
	for i, p := range pairs {
		if i > 0 && Equal(p.Key, out[len(out)-1].Key) {
			out[len(out)-1] = p
			_ = i
			continue
		}
		out = append(out, p)
	}
	return Value{kind: KindMap, pairs: out}
}

// Kind reports the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; it panics for other kinds.
func (v Value) Bool() bool {
	v.mustBe(KindBool)
	return v.i != 0
}

// Int returns the integer payload; it panics for other kinds.
func (v Value) Int() int64 {
	v.mustBe(KindInt)
	return v.i
}

// Float returns the floating-point payload; it panics for other kinds.
func (v Value) Float() float64 {
	v.mustBe(KindFloat)
	return v.f
}

// Str returns the string payload; it panics for other kinds.
func (v Value) Str() string {
	v.mustBe(KindString)
	return v.s
}

// Datetime returns the datetime payload in Unix seconds.
func (v Value) Datetime() int64 {
	v.mustBe(KindDatetime)
	return v.i
}

// VertexID returns the vertex id payload.
func (v Value) VertexID() int64 {
	v.mustBe(KindVertex)
	return v.i
}

// EdgeID returns the edge id payload.
func (v Value) EdgeID() int64 {
	v.mustBe(KindEdge)
	return v.i
}

// Elems returns the elements of a tuple, list or set value. The
// returned slice must not be mutated.
func (v Value) Elems() []Value {
	switch v.kind {
	case KindTuple, KindList, KindSet:
		return v.elems
	}
	panic(fmt.Sprintf("value: Elems on %s", v.kind))
}

// Pairs returns the entries of a map value in canonical key order. The
// returned slice must not be mutated.
func (v Value) Pairs() []Pair {
	v.mustBe(KindMap)
	return v.pairs
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("value: %s payload requested from %s value", k, v.kind))
	}
}

// IsNumeric reports whether the value is an int or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsFloat returns the value as a float64, coercing ints and datetimes.
// The second result is false if the value is not numeric.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt, KindDatetime:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	}
	return 0, false
}

// AsInt returns the value as an int64, truncating floats. The second
// result is false if the value is not numeric.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt, KindDatetime:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	}
	return 0, false
}

// TryInt returns the integer payload iff the kind is exactly int — no
// coercion (AsInt truncates floats; exact fold paths must not). The
// pointer receiver lets callers read a stored value in place without
// copying the full struct.
func (v *Value) TryInt() (int64, bool) {
	if v.kind != KindInt {
		return 0, false
	}
	return v.i, true
}

// TryFloat returns the float payload iff the kind is exactly float —
// the strict counterpart of AsFloat.
func (v *Value) TryFloat() (float64, bool) {
	if v.kind != KindFloat {
		return 0, false
	}
	return v.f, true
}

// Truthy reports whether the value is considered true in a condition:
// booleans by payload, numbers by non-zero, strings by non-empty, and
// null as false.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.i != 0
	case KindInt, KindDatetime:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	case KindNull:
		return false
	default:
		return true
	}
}

// Equal reports deep equality of two values. Int and float values
// compare numerically across kinds (1 == 1.0).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Less reports a < b under the total order implemented by Compare.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// Compare imposes a total order on values. Numeric kinds (int, float)
// compare numerically with each other; otherwise values of different
// kinds order by kind tag. Structured values compare lexicographically.
// Null orders before everything.
func Compare(a, b Value) int {
	if a.IsNumeric() && b.IsNumeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		// Exact int/int comparison avoids float rounding.
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			}
			return 0
		}
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindBool, KindInt, KindDatetime, KindVertex, KindEdge:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindTuple, KindList, KindSet:
		return compareSlices(a.elems, b.elems)
	case KindMap:
		n := len(a.pairs)
		if len(b.pairs) < n {
			n = len(b.pairs)
		}
		for i := 0; i < n; i++ {
			if c := Compare(a.pairs[i].Key, b.pairs[i].Key); c != 0 {
				return c
			}
			if c := Compare(a.pairs[i].Val, b.pairs[i].Val); c != 0 {
				return c
			}
		}
		switch {
		case len(a.pairs) < len(b.pairs):
			return -1
		case len(a.pairs) > len(b.pairs):
			return 1
		}
		return 0
	default:
		return 0
	}
}

func compareSlices(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Key returns a string that is equal for equal values and distinct for
// distinct values, suitable for use as a Go map key (e.g. grouping).
func (v Value) Key() string {
	var sb strings.Builder
	v.appendKey(&sb)
	return sb.String()
}

func (v Value) appendKey(sb *strings.Builder) {
	// Normalize int-valued floats so 1 and 1.0 share a key, matching
	// Compare's numeric cross-kind equality.
	if v.kind == KindFloat && v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && v.f >= -1<<62 && v.f <= 1<<62 {
		v = NewInt(int64(v.f))
	}
	sb.WriteByte(byte('A' + v.kind))
	switch v.kind {
	case KindNull:
	case KindBool, KindInt, KindDatetime, KindVertex, KindEdge:
		sb.WriteString(strconv.FormatInt(v.i, 36))
	case KindFloat:
		sb.WriteString(strconv.FormatUint(math.Float64bits(v.f), 36))
	case KindString:
		sb.WriteString(strconv.Itoa(len(v.s)))
		sb.WriteByte(':')
		sb.WriteString(v.s)
	case KindTuple, KindList, KindSet:
		sb.WriteString(strconv.Itoa(len(v.elems)))
		for _, e := range v.elems {
			sb.WriteByte('(')
			e.appendKey(sb)
			sb.WriteByte(')')
		}
	case KindMap:
		sb.WriteString(strconv.Itoa(len(v.pairs)))
		for _, p := range v.pairs {
			sb.WriteByte('[')
			p.Key.appendKey(sb)
			sb.WriteByte('=')
			p.Val.appendKey(sb)
			sb.WriteByte(']')
		}
	}
}

// Normalize int-kind key prefix: KindInt must serialize identically for
// int and int-valued float (see appendKey). This dummy reference keeps
// the invariant close to the code it documents.
var _ = KindInt

// String renders the value for display (PRINT output, test failures).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindDatetime:
		return time.Unix(v.i, 0).UTC().Format("2006-01-02 15:04:05")
	case KindVertex:
		return "vertex(" + strconv.FormatInt(v.i, 10) + ")"
	case KindEdge:
		return "edge(" + strconv.FormatInt(v.i, 10) + ")"
	case KindTuple, KindList, KindSet:
		open, close := "[", "]"
		if v.kind == KindTuple {
			open, close = "(", ")"
		} else if v.kind == KindSet {
			open, close = "{", "}"
		}
		parts := make([]string, len(v.elems))
		for i, e := range v.elems {
			parts[i] = e.String()
		}
		return open + strings.Join(parts, ", ") + close
	case KindMap:
		parts := make([]string, len(v.pairs))
		for i, p := range v.pairs {
			parts[i] = p.Key.String() + ": " + p.Val.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return "?"
	}
}
