package value

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, "null"},
		{NewBool(true), KindBool, "true"},
		{NewBool(false), KindBool, "false"},
		{NewInt(-42), KindInt, "-42"},
		{NewFloat(2.5), KindFloat, "2.5"},
		{NewString("abc"), KindString, "abc"},
		{NewDatetime(0), KindDatetime, "1970-01-01 00:00:00"},
		{NewVertex(7), KindVertex, "vertex(7)"},
		{NewEdge(9), KindEdge, "edge(9)"},
		{NewTuple([]Value{NewInt(1), NewString("x")}), KindTuple, "(1, x)"},
		{NewList([]Value{NewInt(2), NewInt(1)}), KindList, "[2, 1]"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v: got %s want %s", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String: got %q want %q", got, c.str)
		}
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool payload mismatch")
	}
	if NewInt(5).Int() != 5 || NewFloat(1.5).Float() != 1.5 {
		t.Error("numeric payload mismatch")
	}
	if NewString("s").Str() != "s" || NewDatetime(11).Datetime() != 11 {
		t.Error("string/datetime payload mismatch")
	}
	if NewVertex(3).VertexID() != 3 || NewEdge(4).EdgeID() != 4 {
		t.Error("graph ref payload mismatch")
	}
}

func TestSetCanonicalization(t *testing.T) {
	s := NewSet([]Value{NewInt(3), NewInt(1), NewInt(3), NewInt(2), NewInt(1)})
	want := []Value{NewInt(1), NewInt(2), NewInt(3)}
	if !reflect.DeepEqual(s.Elems(), want) {
		t.Fatalf("set canonical form: got %v want %v", s.Elems(), want)
	}
}

func TestMapCanonicalization(t *testing.T) {
	m := NewMap([]Pair{
		{NewString("b"), NewInt(2)},
		{NewString("a"), NewInt(1)},
		{NewString("b"), NewInt(3)}, // duplicate key keeps last value
	})
	ps := m.Pairs()
	if len(ps) != 2 {
		t.Fatalf("map size: got %d want 2", len(ps))
	}
	if ps[0].Key.Str() != "a" || ps[0].Val.Int() != 1 {
		t.Errorf("first pair: got %v=%v", ps[0].Key, ps[0].Val)
	}
	if ps[1].Key.Str() != "b" || ps[1].Val.Int() != 3 {
		t.Errorf("second pair: got %v=%v", ps[1].Key, ps[1].Val)
	}
}

func TestNumericCrossKindEquality(t *testing.T) {
	if !Equal(NewInt(1), NewFloat(1.0)) {
		t.Error("1 == 1.0 expected")
	}
	if Compare(NewInt(2), NewFloat(2.5)) != -1 {
		t.Error("2 < 2.5 expected")
	}
	if NewInt(1).Key() != NewFloat(1.0).Key() {
		t.Error("keys of equal numerics must agree")
	}
	if NewInt(1).Key() == NewFloat(1.25).Key() {
		t.Error("distinct numerics must have distinct keys")
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{NewBool(true), NewInt(1), NewFloat(-0.5), NewString("x"), NewList(nil)}
	falsy := []Value{Null, NewBool(false), NewInt(0), NewFloat(0), NewString("")}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustV(Add(NewInt(2), NewInt(3))); got.Int() != 5 {
		t.Errorf("2+3: %v", got)
	}
	if got := mustV(Add(NewInt(2), NewFloat(0.5))); got.Float() != 2.5 {
		t.Errorf("2+0.5: %v", got)
	}
	if got := mustV(Add(NewString("a"), NewString("b"))); got.Str() != "ab" {
		t.Errorf("string concat: %v", got)
	}
	if got := mustV(Sub(NewDatetime(100), NewDatetime(40))); got.Int() != 60 {
		t.Errorf("datetime diff: %v", got)
	}
	if got := mustV(Mul(NewInt(4), NewInt(5))); got.Int() != 20 {
		t.Errorf("4*5: %v", got)
	}
	if got := mustV(Div(NewInt(1), NewInt(2))); got.Float() != 0.5 {
		t.Errorf("1/2: %v", got)
	}
	if got := mustV(IntDiv(NewInt(7), NewInt(2))); got.Int() != 3 {
		t.Errorf("7 div 2: %v", got)
	}
	if got := mustV(Mod(NewInt(7), NewInt(3))); got.Int() != 1 {
		t.Errorf("7%%3: %v", got)
	}
	if got := mustV(Neg(NewFloat(2.5))); got.Float() != -2.5 {
		t.Errorf("-2.5: %v", got)
	}
	if got := mustV(Abs(NewInt(-9))); got.Int() != 9 {
		t.Errorf("abs(-9): %v", got)
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("int division by zero must error")
	}
	if _, err := Add(NewBool(true), NewInt(1)); err == nil {
		t.Error("bool+int must be a type error")
	}
}

// randomValue builds an arbitrary value of bounded depth for property
// tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(10)
	if depth <= 0 && k >= 7 {
		k = r.Intn(7)
	}
	switch k {
	case 0:
		return Null
	case 1:
		return NewBool(r.Intn(2) == 0)
	case 2:
		return NewInt(int64(r.Intn(2001) - 1000))
	case 3:
		return NewFloat(float64(r.Intn(2001)-1000) / 4)
	case 4:
		return NewString(string(rune('a' + r.Intn(26))))
	case 5:
		return NewDatetime(int64(r.Intn(1 << 20)))
	case 6:
		return NewVertex(int64(r.Intn(100)))
	case 7:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return NewTuple(elems)
	case 8:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return NewList(elems)
	default:
		n := r.Intn(4)
		pairs := make([]Pair, n)
		for i := range pairs {
			pairs[i] = Pair{randomValue(r, depth-1), randomValue(r, depth-1)}
		}
		return NewMap(pairs)
	}
}

func TestCompareTotalOrderProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	anti := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r, 2), randomValue(r, 2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(anti, cfg); err != nil {
		t.Error(err)
	}
	// Reflexivity: Compare(a,a) == 0.
	refl := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomValue(r, 2)
		return Compare(a, a) == 0
	}
	if err := quick.Check(refl, cfg); err != nil {
		t.Error(err)
	}
	// Transitivity via sortedness check.
	trans := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vs := make([]Value, 8)
		for i := range vs {
			vs[i] = randomValue(r, 2)
		}
		sort.Slice(vs, func(i, j int) bool { return Less(vs[i], vs[j]) })
		return sort.SliceIsSorted(vs, func(i, j int) bool { return Less(vs[i], vs[j]) })
	}
	if err := quick.Check(trans, cfg); err != nil {
		t.Error(err)
	}
}

func TestKeyConsistentWithEqual(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r, 2), randomValue(r, 2)
		if Equal(a, b) {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestMinMaxOf(t *testing.T) {
	a, b := NewInt(1), NewInt(2)
	if !Equal(MinOf(a, b), a) || !Equal(MaxOf(a, b), b) {
		t.Error("MinOf/MaxOf order wrong")
	}
}

func TestFloatKeyNonInteger(t *testing.T) {
	// Non-integer floats keep full precision in keys.
	a := NewFloat(1.5)
	b := NewFloat(math.Nextafter(1.5, 2))
	if a.Key() == b.Key() {
		t.Error("adjacent distinct floats must have distinct keys")
	}
}
