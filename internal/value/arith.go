package value

import (
	"errors"
	"fmt"
	"math"
)

// ErrType reports an operand of the wrong kind for an operation.
var ErrType = errors.New("value: type error")

func typeErr(op string, a, b Value) error {
	return fmt.Errorf("%w: %s %s %s", ErrType, a.Kind(), op, b.Kind())
}

// Add returns a + b. Numerics add (int+int stays int); strings
// concatenate; datetime + int shifts by seconds; lists concatenate.
func Add(a, b Value) (Value, error) {
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return NewInt(a.i + b.i), nil
	case a.IsNumeric() && b.IsNumeric():
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return NewFloat(af + bf), nil
	case a.kind == KindString && b.kind == KindString:
		return NewString(a.s + b.s), nil
	case a.kind == KindDatetime && b.kind == KindInt:
		return NewDatetime(a.i + b.i), nil
	case a.kind == KindInt && b.kind == KindDatetime:
		return NewDatetime(a.i + b.i), nil
	case a.kind == KindList && b.kind == KindList:
		out := make([]Value, 0, len(a.elems)+len(b.elems))
		out = append(out, a.elems...)
		out = append(out, b.elems...)
		return NewList(out), nil
	}
	return Null, typeErr("+", a, b)
}

// Sub returns a - b for numerics, and datetime - datetime (seconds) or
// datetime - int (shift).
func Sub(a, b Value) (Value, error) {
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return NewInt(a.i - b.i), nil
	case a.IsNumeric() && b.IsNumeric():
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return NewFloat(af - bf), nil
	case a.kind == KindDatetime && b.kind == KindDatetime:
		return NewInt(a.i - b.i), nil
	case a.kind == KindDatetime && b.kind == KindInt:
		return NewDatetime(a.i - b.i), nil
	}
	return Null, typeErr("-", a, b)
}

// Mul returns a * b for numerics.
func Mul(a, b Value) (Value, error) {
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return NewInt(a.i * b.i), nil
	case a.IsNumeric() && b.IsNumeric():
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return NewFloat(af * bf), nil
	}
	return Null, typeErr("*", a, b)
}

// Div returns a / b. Division always yields a float, mirroring GSQL's
// arithmetic on mixed expressions; integer division is the IntDiv
// helper. Division by zero yields an error for ints and ±Inf for
// floats (IEEE semantics).
func Div(a, b Value) (Value, error) {
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, typeErr("/", a, b)
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	if bf == 0 && a.kind == KindInt && b.kind == KindInt {
		return Null, errors.New("value: integer division by zero")
	}
	return NewFloat(af / bf), nil
}

// IntDiv returns a / b truncated toward zero for integer operands.
func IntDiv(a, b Value) (Value, error) {
	ai, aok := a.AsInt()
	bi, bok := b.AsInt()
	if !aok || !bok {
		return Null, typeErr("div", a, b)
	}
	if bi == 0 {
		return Null, errors.New("value: integer division by zero")
	}
	return NewInt(ai / bi), nil
}

// Mod returns a % b for integer operands.
func Mod(a, b Value) (Value, error) {
	if a.kind != KindInt || b.kind != KindInt {
		return Null, typeErr("%", a, b)
	}
	if b.i == 0 {
		return Null, errors.New("value: modulo by zero")
	}
	return NewInt(a.i % b.i), nil
}

// Neg returns -a for numerics.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindInt:
		return NewInt(-a.i), nil
	case KindFloat:
		return NewFloat(-a.f), nil
	}
	return Null, fmt.Errorf("%w: -%s", ErrType, a.Kind())
}

// Abs returns |a| for numerics, preserving the kind.
func Abs(a Value) (Value, error) {
	switch a.kind {
	case KindInt:
		if a.i < 0 {
			return NewInt(-a.i), nil
		}
		return a, nil
	case KindFloat:
		return NewFloat(math.Abs(a.f)), nil
	}
	return Null, fmt.Errorf("%w: abs(%s)", ErrType, a.Kind())
}

// MinOf returns the smaller of two values under Compare.
func MinOf(a, b Value) Value {
	if Compare(a, b) <= 0 {
		return a
	}
	return b
}

// MaxOf returns the larger of two values under Compare.
func MaxOf(a, b Value) Value {
	if Compare(a, b) >= 0 {
		return a
	}
	return b
}
