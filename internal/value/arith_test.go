package value

import (
	"math"
	"strings"
	"testing"
)

func TestKindNames(t *testing.T) {
	want := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int", KindFloat: "float",
		KindString: "string", KindDatetime: "datetime", KindVertex: "vertex",
		KindEdge: "edge", KindTuple: "tuple", KindList: "list", KindSet: "set",
		KindMap: "map",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), name)
		}
	}
	if !strings.Contains(Kind(99).String(), "kind(") {
		t.Error("unknown kind rendering wrong")
	}
}

func TestIsNullAndAsConversions(t *testing.T) {
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull wrong")
	}
	if f, ok := NewDatetime(5).AsFloat(); !ok || f != 5 {
		t.Error("datetime AsFloat")
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("string AsFloat must fail")
	}
	if i, ok := NewFloat(2.9).AsInt(); !ok || i != 2 {
		t.Error("float AsInt truncation")
	}
	if i, ok := NewDatetime(7).AsInt(); !ok || i != 7 {
		t.Error("datetime AsInt")
	}
	if _, ok := NewBool(true).AsInt(); ok {
		t.Error("bool AsInt must fail")
	}
}

func TestPayloadPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic on wrong kind", name)
			}
		}()
		f()
	}
	assertPanics("Bool", func() { NewInt(1).Bool() })
	assertPanics("Int", func() { NewString("x").Int() })
	assertPanics("Float", func() { NewInt(1).Float() })
	assertPanics("Str", func() { NewInt(1).Str() })
	assertPanics("Datetime", func() { NewInt(1).Datetime() })
	assertPanics("VertexID", func() { NewInt(1).VertexID() })
	assertPanics("EdgeID", func() { NewInt(1).EdgeID() })
	assertPanics("Elems", func() { NewInt(1).Elems() })
	assertPanics("Pairs", func() { NewInt(1).Pairs() })
}

func TestAddVariants(t *testing.T) {
	cases := []struct {
		a, b Value
		want Value
		ok   bool
	}{
		{NewInt(1), NewInt(2), NewInt(3), true},
		{NewFloat(1), NewInt(2), NewFloat(3), true},
		{NewString("a"), NewString("b"), NewString("ab"), true},
		{NewDatetime(10), NewInt(5), NewDatetime(15), true},
		{NewInt(5), NewDatetime(10), NewDatetime(15), true},
		{NewList([]Value{NewInt(1)}), NewList([]Value{NewInt(2)}),
			NewList([]Value{NewInt(1), NewInt(2)}), true},
		{NewBool(true), NewInt(1), Null, false},
		{NewString("a"), NewInt(1), Null, false},
	}
	for _, c := range cases {
		got, err := Add(c.a, c.b)
		if c.ok != (err == nil) {
			t.Errorf("Add(%v, %v): err=%v", c.a, c.b, err)
			continue
		}
		if err == nil && (got.Kind() != c.want.Kind() || !Equal(got, c.want)) {
			t.Errorf("Add(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSubMulVariants(t *testing.T) {
	if got, _ := Sub(NewInt(5), NewInt(3)); got.Int() != 2 {
		t.Errorf("Sub int: %v", got)
	}
	if got, _ := Sub(NewFloat(5), NewInt(3)); got.Float() != 2 {
		t.Errorf("Sub float: %v", got)
	}
	if got, _ := Sub(NewDatetime(100), NewInt(40)); got.Kind() != KindDatetime || got.Datetime() != 60 {
		t.Errorf("Sub datetime-int: %v", got)
	}
	if _, err := Sub(NewString("a"), NewInt(1)); err == nil {
		t.Error("Sub type error expected")
	}
	if got, _ := Mul(NewFloat(2), NewInt(3)); got.Float() != 6 {
		t.Errorf("Mul mixed: %v", got)
	}
	if _, err := Mul(NewString("a"), NewInt(2)); err == nil {
		t.Error("Mul type error expected")
	}
}

func TestDivModVariants(t *testing.T) {
	if got, _ := Div(NewFloat(1), NewFloat(0)); !math.IsInf(got.Float(), 1) {
		t.Errorf("float/0 = %v, want +Inf", got)
	}
	if _, err := Div(NewString("x"), NewInt(1)); err == nil {
		t.Error("Div type error expected")
	}
	if _, err := IntDiv(NewInt(1), NewInt(0)); err == nil {
		t.Error("IntDiv by zero must error")
	}
	if _, err := IntDiv(NewString("x"), NewInt(1)); err == nil {
		t.Error("IntDiv type error expected")
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Error("Mod by zero must error")
	}
	if _, err := Mod(NewFloat(1), NewInt(2)); err == nil {
		t.Error("Mod float must error")
	}
}

func TestNegAbsVariants(t *testing.T) {
	if got, _ := Neg(NewInt(3)); got.Int() != -3 {
		t.Errorf("Neg int: %v", got)
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("Neg type error expected")
	}
	if got, _ := Abs(NewInt(4)); got.Int() != 4 {
		t.Errorf("Abs positive: %v", got)
	}
	if got, _ := Abs(NewFloat(-2.5)); got.Float() != 2.5 {
		t.Errorf("Abs float: %v", got)
	}
	if _, err := Abs(NewBool(true)); err == nil {
		t.Error("Abs type error expected")
	}
}

func TestMinMaxOfBranches(t *testing.T) {
	a, b := NewInt(2), NewInt(1)
	if MinOf(a, b).Int() != 1 || MaxOf(b, a).Int() != 2 {
		t.Error("MinOf/MaxOf reversed operands wrong")
	}
}

func TestStringRenderings(t *testing.T) {
	cases := map[string]Value{
		"{1, 2}":        NewSet([]Value{NewInt(2), NewInt(1)}),
		"{a: 1}":        NewMap([]Pair{{NewString("a"), NewInt(1)}}),
		"(1, x)":        NewTuple([]Value{NewInt(1), NewString("x")}),
		"[ ]"[:1] + "]": NewList(nil),
		"0.5":           NewFloat(0.5),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v-kind) = %q, want %q", v.Kind(), got, want)
		}
	}
}

func TestCompareCrossKindsAndStructures(t *testing.T) {
	// Different non-numeric kinds order by kind tag, both directions.
	if Compare(NewBool(true), NewString("a")) >= 0 {
		t.Error("bool must order before string")
	}
	if Compare(NewString("a"), NewBool(true)) <= 0 {
		t.Error("string must order after bool")
	}
	// Structured comparisons: prefix ordering and element ordering.
	short := NewList([]Value{NewInt(1)})
	long := NewList([]Value{NewInt(1), NewInt(2)})
	if Compare(short, long) >= 0 || Compare(long, short) <= 0 {
		t.Error("list prefix ordering wrong")
	}
	m1 := NewMap([]Pair{{NewString("a"), NewInt(1)}})
	m2 := NewMap([]Pair{{NewString("a"), NewInt(2)}})
	m3 := NewMap([]Pair{{NewString("b"), NewInt(1)}})
	if Compare(m1, m2) >= 0 || Compare(m1, m3) >= 0 {
		t.Error("map ordering wrong")
	}
	m4 := NewMap([]Pair{{NewString("a"), NewInt(1)}, {NewString("b"), NewInt(1)}})
	if Compare(m1, m4) >= 0 {
		t.Error("shorter map must order first on shared prefix")
	}
	// Vertex/edge/datetime payload ordering.
	if Compare(NewVertex(1), NewVertex(2)) >= 0 || Compare(NewEdge(3), NewEdge(2)) <= 0 {
		t.Error("graph ref ordering wrong")
	}
	if Compare(NewDatetime(1), NewDatetime(2)) >= 0 {
		t.Error("datetime ordering wrong")
	}
	// Float ordering both ways.
	if Compare(NewFloat(1.5), NewFloat(2.5)) >= 0 || Compare(NewFloat(2.5), NewFloat(1.5)) <= 0 {
		t.Error("float ordering wrong")
	}
}
