// Package ldbc provides a deterministic synthetic social-network
// generator modelled on the LDBC Social Network Benchmark (SNB)
// schema the paper's large-scale experiments use (Section 7.1 and
// Appendix B), plus the adapted IC query family and the Appendix B
// multi-grouping workload.
//
// The paper ran the official SNB generator at scale factors 1–1000
// (1 GB–1 TB) on EC2/Azure clusters; this package substitutes a
// seeded generator with the same schema shape (persons with cities,
// countries, companies, forums, tags, posts, comments; KNOWS is
// undirected as in SNB) at laptop scale. Scale factor 1 ≈ 1000
// persons. The substitution preserves what the experiments measure:
// the relative growth of all-shortest-paths counting vs
// non-repeated-edge enumeration with KNOWS hop count, and the relative
// cost of accumulator-based vs GROUPING-SET-style multi-aggregation.
package ldbc

import (
	"fmt"
	"math/rand"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/value"
)

// Config parameterizes the generator.
type Config struct {
	// SF is the scale factor; persons ≈ 1000·SF.
	SF float64
	// Seed makes generation deterministic.
	Seed int64
	// AvgKnowsDegree sets the mean KNOWS degree (default 24 — enough
	// that bounded-hop enumeration shows its exponential growth).
	AvgKnowsDegree int
}

func (c Config) persons() int {
	n := int(1000 * c.SF)
	if n < 50 {
		n = 50
	}
	return n
}

// Persons reports how many Person vertices Generate will create for
// this config — keys are "person0" … "person{Persons()-1}". Exported so
// workload generators (internal/load) can address the generated key
// space without materializing a graph.
func (c Config) Persons() int { return c.persons() }

// Derived population sizes, shared by Generate and the mutation-stream
// generator (mutations.go) so streamed records only ever reference
// vertices Generate actually created. Keys follow the same "%s%d"
// convention: "country0", "tag12", "comment99", …
const (
	NumCountries = 12
	NumCities    = 40
	NumCompanies = 60
	NumTags      = 80
)

func (c Config) posts() int    { return c.persons() * 5 }
func (c Config) comments() int { return c.persons() * 10 }

func (c Config) forums() int {
	n := c.persons() / 10
	if n < 10 {
		n = 10
	}
	return n
}

func (c Config) knowsDegree() int {
	if c.AvgKnowsDegree > 0 {
		return c.AvgKnowsDegree
	}
	return 24
}

var browsers = []string{"Chrome", "Firefox", "Safari", "InternetExplorer", "Opera"}

// epoch2009 .. epoch2013 bound generated timestamps.
const (
	epoch2009 = 1230768000 // 2009-01-01
	epoch2013 = 1356998400 // 2013-01-01
	epoch1950 = -631152000 // 1950-01-01 (birthdays)
	epoch2000 = 946684800  // 2000-01-01
)

// Schema declares the SNB-like schema.
func Schema() *graph.Schema {
	s := graph.NewSchema()
	mustVT := func(name string, attrs ...graph.AttrDef) {
		if _, err := s.AddVertexType(name, attrs...); err != nil {
			panic(err)
		}
	}
	mustET := func(name string, directed bool, attrs ...graph.AttrDef) {
		if _, err := s.AddEdgeType(name, directed, attrs...); err != nil {
			panic(err)
		}
	}
	mustVT("Person",
		graph.AttrDef{Name: "firstName", Type: graph.AttrString},
		graph.AttrDef{Name: "lastName", Type: graph.AttrString},
		graph.AttrDef{Name: "gender", Type: graph.AttrString},
		graph.AttrDef{Name: "birthday", Type: graph.AttrDatetime},
		graph.AttrDef{Name: "browserUsed", Type: graph.AttrString},
	)
	mustVT("City", graph.AttrDef{Name: "name", Type: graph.AttrString})
	mustVT("Country", graph.AttrDef{Name: "name", Type: graph.AttrString})
	mustVT("Company", graph.AttrDef{Name: "name", Type: graph.AttrString})
	mustVT("Tag", graph.AttrDef{Name: "name", Type: graph.AttrString})
	mustVT("Forum",
		graph.AttrDef{Name: "title", Type: graph.AttrString},
		graph.AttrDef{Name: "creationDate", Type: graph.AttrDatetime},
	)
	mustVT("Post",
		graph.AttrDef{Name: "creationDate", Type: graph.AttrDatetime},
		graph.AttrDef{Name: "length", Type: graph.AttrInt},
		graph.AttrDef{Name: "browserUsed", Type: graph.AttrString},
	)
	mustVT("Comment",
		graph.AttrDef{Name: "creationDate", Type: graph.AttrDatetime},
		graph.AttrDef{Name: "length", Type: graph.AttrInt},
		graph.AttrDef{Name: "browserUsed", Type: graph.AttrString},
	)

	mustET("Knows", false, graph.AttrDef{Name: "creationDate", Type: graph.AttrDatetime}) // undirected, as in SNB
	mustET("PersonLocatedIn", true)
	mustET("PartOf", true)    // City -> Country
	mustET("CompanyIn", true) // Company -> Country
	mustET("WorkAt", true, graph.AttrDef{Name: "workFrom", Type: graph.AttrInt})
	mustET("HasMember", true, graph.AttrDef{Name: "joinDate", Type: graph.AttrDatetime}) // Forum -> Person
	mustET("PostHasCreator", true)                                                       // Post -> Person
	mustET("CommentHasCreator", true)                                                    // Comment -> Person
	mustET("PostHasTag", true)                                                           // Post -> Tag
	mustET("Likes", true, graph.AttrDef{Name: "creationDate", Type: graph.AttrDatetime}) // Person -> Comment
	mustET("CommentLocatedIn", true)                                                     // Comment -> Country
	return s
}

// Generate builds a deterministic SNB-like graph.
func Generate(cfg Config) *graph.Graph {
	g := graph.New(Schema())
	r := rand.New(rand.NewSource(cfg.Seed))
	nPersons := cfg.persons()
	nCountries := NumCountries
	nCities := NumCities
	nCompanies := NumCompanies
	nTags := NumTags
	nForums := cfg.forums()
	nPosts := cfg.posts()
	nComments := cfg.comments()

	addV := func(typ, key string, attrs map[string]value.Value) graph.VID {
		v, err := g.AddVertex(typ, key, attrs)
		if err != nil {
			panic(err)
		}
		return v
	}
	addE := func(typ string, s, d graph.VID, attrs map[string]value.Value) {
		if _, err := g.AddEdge(typ, s, d, attrs); err != nil {
			panic(err)
		}
	}
	dtBetween := func(lo, hi int64) value.Value {
		return value.NewDatetime(lo + r.Int63n(hi-lo))
	}

	countries := make([]graph.VID, nCountries)
	for i := range countries {
		countries[i] = addV("Country", fmt.Sprintf("country%d", i), map[string]value.Value{
			"name": value.NewString(fmt.Sprintf("Country-%d", i)),
		})
	}
	cities := make([]graph.VID, nCities)
	for i := range cities {
		cities[i] = addV("City", fmt.Sprintf("city%d", i), map[string]value.Value{
			"name": value.NewString(fmt.Sprintf("City-%d", i)),
		})
		addE("PartOf", cities[i], countries[i%nCountries], nil)
	}
	companies := make([]graph.VID, nCompanies)
	for i := range companies {
		companies[i] = addV("Company", fmt.Sprintf("company%d", i), map[string]value.Value{
			"name": value.NewString(fmt.Sprintf("Company-%d", i)),
		})
		addE("CompanyIn", companies[i], countries[i%nCountries], nil)
	}
	tags := make([]graph.VID, nTags)
	for i := range tags {
		tags[i] = addV("Tag", fmt.Sprintf("tag%d", i), map[string]value.Value{
			"name": value.NewString(fmt.Sprintf("Tag-%d", i)),
		})
	}

	persons := make([]graph.VID, nPersons)
	for i := range persons {
		gender := "male"
		if r.Intn(2) == 0 {
			gender = "female"
		}
		persons[i] = addV("Person", fmt.Sprintf("person%d", i), map[string]value.Value{
			"firstName":   value.NewString(fmt.Sprintf("First%d", i)),
			"lastName":    value.NewString(fmt.Sprintf("Last%d", i%997)),
			"gender":      value.NewString(gender),
			"birthday":    dtBetween(epoch1950, epoch2000),
			"browserUsed": value.NewString(browsers[r.Intn(len(browsers))]),
		})
		addE("PersonLocatedIn", persons[i], cities[r.Intn(nCities)], nil)
		addE("WorkAt", persons[i], companies[r.Intn(nCompanies)], map[string]value.Value{
			"workFrom": value.NewInt(int64(1990 + r.Intn(23))),
		})
	}

	// KNOWS with a skewed degree distribution (squared-uniform pick
	// biases toward low ids, giving hubs like a real social graph).
	skew := func() graph.VID {
		f := r.Float64()
		return persons[int(f*f*float64(nPersons))]
	}
	knowsSeen := map[[2]graph.VID]bool{}
	nKnows := nPersons * cfg.knowsDegree() / 2
	for i := 0; i < nKnows; i++ {
		a, b := skew(), persons[r.Intn(nPersons)]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if knowsSeen[[2]graph.VID{a, b}] {
			continue
		}
		knowsSeen[[2]graph.VID{a, b}] = true
		addE("Knows", a, b, map[string]value.Value{"creationDate": dtBetween(epoch2009, epoch2013)})
	}

	forums := make([]graph.VID, nForums)
	for i := range forums {
		forums[i] = addV("Forum", fmt.Sprintf("forum%d", i), map[string]value.Value{
			"title":        value.NewString(fmt.Sprintf("Forum-%d", i)),
			"creationDate": dtBetween(epoch2009, epoch2013),
		})
	}
	for _, p := range persons {
		for j := 0; j < 4; j++ {
			addE("HasMember", forums[r.Intn(nForums)], p, map[string]value.Value{
				"joinDate": dtBetween(epoch2009, epoch2013),
			})
		}
	}

	posts := make([]graph.VID, nPosts)
	for i := range posts {
		posts[i] = addV("Post", fmt.Sprintf("post%d", i), map[string]value.Value{
			"creationDate": dtBetween(epoch2009, epoch2013),
			"length":       value.NewInt(int64(1 + r.Intn(500))),
			"browserUsed":  value.NewString(browsers[r.Intn(len(browsers))]),
		})
		addE("PostHasCreator", posts[i], persons[r.Intn(nPersons)], nil)
		seen := map[int]bool{}
		for j := 0; j < 3; j++ {
			ti := r.Intn(nTags)
			if seen[ti] {
				continue
			}
			seen[ti] = true
			addE("PostHasTag", posts[i], tags[ti], nil)
		}
	}

	comments := make([]graph.VID, nComments)
	for i := range comments {
		comments[i] = addV("Comment", fmt.Sprintf("comment%d", i), map[string]value.Value{
			"creationDate": dtBetween(epoch2009, epoch2013),
			"length":       value.NewInt(int64(1 + r.Intn(500))),
			"browserUsed":  value.NewString(browsers[r.Intn(len(browsers))]),
		})
		addE("CommentHasCreator", comments[i], persons[r.Intn(nPersons)], nil)
		addE("CommentLocatedIn", comments[i], countries[r.Intn(nCountries)], nil)
	}

	nLikes := nPersons * 20
	likeSeen := map[[2]graph.VID]bool{}
	for i := 0; i < nLikes; i++ {
		p := persons[r.Intn(nPersons)]
		m := comments[r.Intn(nComments)]
		if likeSeen[[2]graph.VID{p, m}] {
			continue
		}
		likeSeen[[2]graph.VID{p, m}] = true
		addE("Likes", p, m, map[string]value.Value{"creationDate": dtBetween(epoch2009, epoch2013)})
	}
	return g
}
