package ldbc

import "fmt"

// This file holds the GSQL sources of the adapted LDBC SNB IC queries
// (Section 7.1's large-scale experiment: ic3, ic5, ic6, ic9, ic11 with
// the KNOWS hop count varied 2–4) and the Appendix B multi-grouping
// workload (Qgs vs Qacc).
//
// Each IC query finds the friend neighbourhood with a bounded KNOWS
// repetition -(Knows*1..h)- in a first block, collapses it to a
// DISTINCT vertex set (so the final results coincide under every path
// semantics, as the paper observes), and aggregates over it in
// subsequent blocks. The hop count is baked into the pattern text, so
// the sources are generated per h.

// IC3 counts, per friend within h hops, messages located in two given
// countries, returning friends active in both (adapted LDBC IC-3).
func IC3(h int) string {
	return fmt.Sprintf(`
CREATE QUERY ic3_h%[1]d (vertex<Person> p, string countryX, string countryY, int k) {
  SumAccum<int> @msgX, @msgY;

  F = SELECT f
      FROM Person:p -(Knows*1..%[1]d)- Person:f
      WHERE f <> p;

  MX = SELECT f
       FROM F:f -(<CommentHasCreator)- Comment:m -(CommentLocatedIn>)- Country:c
       WHERE c.name == countryX
       ACCUM f.@msgX += 1;

  MY = SELECT f
       FROM F:f -(<CommentHasCreator)- Comment:m -(CommentLocatedIn>)- Country:c
       WHERE c.name == countryY
       ACCUM f.@msgY += 1;

  SELECT f.id() AS person, f.@msgX AS xCount, f.@msgY AS yCount, f.@msgX + f.@msgY AS total INTO Res
  FROM F:f
  WHERE f.@msgX > 0 AND f.@msgY > 0
  ORDER BY f.@msgX + f.@msgY DESC, f.id() ASC
  LIMIT k;

  RETURN Res;
}
`, h)
}

// IC5 ranks forums that friends within h hops joined after a given
// date by the number of such memberships (adapted LDBC IC-5).
func IC5(h int) string {
	return fmt.Sprintf(`
CREATE QUERY ic5_h%[1]d (vertex<Person> p, datetime minDate, int k) {
  SumAccum<int> @joins;

  F = SELECT f
      FROM Person:p -(Knows*1..%[1]d)- Person:f
      WHERE f <> p;

  Fo = SELECT fo
       FROM F:f -(<HasMember:e)- Forum:fo
       WHERE e.joinDate > minDate
       ACCUM fo.@joins += 1;

  SELECT fo.title AS forum, fo.@joins AS joins INTO Res
  FROM Fo:fo
  ORDER BY fo.@joins DESC, fo.title ASC
  LIMIT k;

  RETURN Res;
}
`, h)
}

// IC6 finds tags co-occurring with a given tag on posts created by
// friends within h hops (adapted LDBC IC-6).
func IC6(h int) string {
	return fmt.Sprintf(`
CREATE QUERY ic6_h%[1]d (vertex<Person> p, string tagName, int k) {
  SumAccum<int> @cnt;
  OrAccum @hasTag;

  F = SELECT f
      FROM Person:p -(Knows*1..%[1]d)- Person:f
      WHERE f <> p;

  P1 = SELECT po
       FROM F:f -(<PostHasCreator)- Post:po -(PostHasTag>)- Tag:t
       WHERE t.name == tagName
       ACCUM po.@hasTag += true;

  T2 = SELECT t2
       FROM P1:po -(PostHasTag>)- Tag:t2
       WHERE t2.name != tagName AND po.@hasTag == true
       ACCUM t2.@cnt += 1;

  SELECT t2.name AS tag, t2.@cnt AS postCount INTO Res
  FROM T2:t2
  ORDER BY t2.@cnt DESC, t2.name ASC
  LIMIT k;

  RETURN Res;
}
`, h)
}

// IC9 returns the most recent messages created by friends within h
// hops before a given date, using a HeapAccum top-k (adapted LDBC
// IC-9).
func IC9(h int) string {
	return fmt.Sprintf(`
TYPEDEF TUPLE<creationDate datetime, id string> Msg;
CREATE QUERY ic9_h%[1]d (vertex<Person> p, datetime maxDate, int k) {
  HeapAccum<Msg>(20, creationDate DESC, id ASC) @@recent;

  F = SELECT f
      FROM Person:p -(Knows*1..%[1]d)- Person:f
      WHERE f <> p;

  M = SELECT m
      FROM F:f -(<CommentHasCreator)- Comment:m
      WHERE m.creationDate < maxDate
      ACCUM @@recent += (m.creationDate, m.id());

  PRINT @@recent;
}
`, h)
}

// IC11 finds friends within h hops who work at a company in a given
// country since before a given year (adapted LDBC IC-11).
func IC11(h int) string {
	return fmt.Sprintf(`
CREATE QUERY ic11_h%[1]d (vertex<Person> p, string countryName, int maxYear, int k) {
  F = SELECT f
      FROM Person:p -(Knows*1..%[1]d)- Person:f
      WHERE f <> p;

  SELECT f.id() AS person, co.name AS company, w.workFrom AS workFrom INTO Res
  FROM F:f -(WorkAt>:w)- Company:co -(CompanyIn>)- Country:c
  WHERE c.name == countryName AND w.workFrom < maxYear
  ORDER BY w.workFrom ASC, f.id() ASC
  LIMIT k;

  RETURN Res;
}
`, h)
}

// ICQueries returns the benchmark family keyed by short name.
func ICQueries(h int) map[string]string {
	return map[string]string{
		"ic3":  IC3(h),
		"ic5":  IC5(h),
		"ic6":  IC6(h),
		"ic9":  IC9(h),
		"ic11": IC11(h),
	}
}

// ICName returns the installed query name for a family member at a
// given hop count.
func ICName(short string, h int) string { return fmt.Sprintf("%s_h%d", short, h) }

// appendixBHeader declares the tuple types both Appendix B queries
// share: comment tuples sorted by date/length and author tuples sorted
// by author birthday.
const appendixBHeader = `
TYPEDEF TUPLE<creationDate datetime, length int, id string> CDT;
TYPEDEF TUPLE<birthday datetime, length int, id string> ADT;
`

// appendixBAggs is the full 8-aggregate list of the Appendix B
// workload: six top-k heaps, a count, and an average.
const appendixBAggs = `HeapAccum<CDT>(20, creationDate DESC, length DESC),
                 HeapAccum<CDT>(20, creationDate ASC, length DESC),
                 HeapAccum<CDT>(20, length DESC, creationDate DESC),
                 HeapAccum<CDT>(20, length ASC, creationDate DESC),
                 HeapAccum<ADT>(10, birthday ASC, length DESC),
                 HeapAccum<ADT>(10, birthday DESC, length DESC),
                 SumAccum<int>,
                 AvgAccum<float>`

// appendixBHeapAggs is the six-heap subset grouping set (i) actually
// wants.
const appendixBHeapAggs = `HeapAccum<CDT>(20, creationDate DESC, length DESC),
                 HeapAccum<CDT>(20, creationDate ASC, length DESC),
                 HeapAccum<CDT>(20, length DESC, creationDate DESC),
                 HeapAccum<CDT>(20, length ASC, creationDate DESC),
                 HeapAccum<ADT>(10, birthday ASC, length DESC),
                 HeapAccum<ADT>(10, birthday DESC, length DESC)`

// appendixBAllInputs feeds all 8 aggregates (GROUPING SET semantics:
// every aggregate is computed for every grouping set).
const appendixBAllInputs = `(m.creationDate, m.length, m.id()),
              (m.creationDate, m.length, m.id()),
              (m.creationDate, m.length, m.id()),
              (m.creationDate, m.length, m.id()),
              (author.birthday, m.length, m.id()),
              (author.birthday, m.length, m.id()),
              1,
              m.length`

// appendixBHeapInputs feeds only the six heaps.
const appendixBHeapInputs = `(m.creationDate, m.length, m.id()),
              (m.creationDate, m.length, m.id()),
              (m.creationDate, m.length, m.id()),
              (m.creationDate, m.length, m.id()),
              (author.birthday, m.length, m.id()),
              (author.birthday, m.length, m.id())`

// QGS is the Appendix B query in SQL GROUPING SETS style: one
// GroupByAccum per grouping set, each computing all eight aggregates —
// including the unwanted ones, exactly the waste Example 13 describes.
func QGS() string {
	return appendixBHeader + `
CREATE QUERY Qgs (datetime lo, datetime hi) {
  GroupByAccum<int year, ` + appendixBAggs + `> @@gs1;
  GroupByAccum<string city, string browser, int year, int month, int length, ` + appendixBAggs + `> @@gs2;
  GroupByAccum<string city, string gender, string browser, int year, int month, ` + appendixBAggs + `> @@gs3;

  S = SELECT p
      FROM Person:p -(Likes>)- Comment:m -(CommentHasCreator>)- Person:author,
           Person:p -(PersonLocatedIn>)- City:city
      WHERE m.creationDate >= lo AND m.creationDate <= hi
      ACCUM @@gs1 += (year(m.creationDate) -> ` + appendixBAllInputs + `),
            @@gs2 += (city.name, m.browserUsed, year(m.creationDate), month(m.creationDate), m.length -> ` + appendixBAllInputs + `),
            @@gs3 += (city.name, p.gender, m.browserUsed, year(m.creationDate), month(m.creationDate) -> ` + appendixBAllInputs + `);

  PRINT size(@@gs1), size(@@gs2), size(@@gs3);
}
`
}

// QACC is the Appendix B query in accumulator style: each grouping set
// gets a dedicated accumulator computing only the aggregates it needs
// (Example 13's fix).
func QACC() string {
	return appendixBHeader + `
CREATE QUERY Qacc (datetime lo, datetime hi) {
  GroupByAccum<int year, ` + appendixBHeapAggs + `> @@peryear;
  GroupByAccum<string city, string browser, int year, int month, int length, SumAccum<int>> @@counts;
  GroupByAccum<string city, string gender, string browser, int year, int month, AvgAccum<float>> @@avglen;

  S = SELECT p
      FROM Person:p -(Likes>)- Comment:m -(CommentHasCreator>)- Person:author,
           Person:p -(PersonLocatedIn>)- City:city
      WHERE m.creationDate >= lo AND m.creationDate <= hi
      ACCUM @@peryear += (year(m.creationDate) -> ` + appendixBHeapInputs + `),
            @@counts += (city.name, m.browserUsed, year(m.creationDate), month(m.creationDate), m.length -> 1),
            @@avglen += (city.name, p.gender, m.browserUsed, year(m.creationDate), month(m.creationDate) -> m.length);

  PRINT size(@@peryear), size(@@counts), size(@@avglen);
}
`
}
