package ldbc

import (
	"fmt"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/value"
)

// This file generates the write side of an SNB-shaped workload: a
// deterministic, seeded stream of AddVertex / AddEdge / SetVertexAttr
// mutations consistent with the schema and key space of Generate. The
// stream is *interleavable*: record i is a pure function of (config,
// seed, prefix, i), new vertices get keys in a caller-chosen namespace
// that cannot collide with Generate's, and edges and attribute updates
// only ever reference base-graph vertices — so any subset of records,
// applied concurrently in any order, succeeds against a graph built by
// Generate with the same Config. internal/load drives a running gsqld
// with it; cmd/snbgen -mutations writes it to disk for replay tools.

// Mutation op names, used both in the JSONL form snbgen emits and on
// the wire when a load generator replays records over HTTP.
const (
	OpAddVertex = "add_vertex"
	OpAddEdge   = "add_edge"
	OpSetAttr   = "set_attr"
)

// Mutation is one schema-consistent write. Attrs hold plain Go values
// (int64 for int and Unix-seconds datetime, float64, string, bool) so
// the record marshals to the exact JSON gsqld's mutation routes accept;
// Apply converts them by schema for in-process use.
type Mutation struct {
	Op   string `json:"op"`
	Type string `json:"type"`
	// Key addresses the vertex for add_vertex and set_attr.
	Key string `json:"key,omitempty"`
	// Src/Dst address the endpoints for add_edge.
	SrcType string `json:"src_type,omitempty"`
	SrcKey  string `json:"src_key,omitempty"`
	DstType string `json:"dst_type,omitempty"`
	DstKey  string `json:"dst_key,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// MutGen generates the mutation stream. The zero value is not useful;
// build one with NewMutGen.
type MutGen struct {
	seed     int64
	prefix   string
	persons  int
	comments int
}

// NewMutGen builds a generator for the graph Generate(cfg) produces.
// prefix namespaces the keys of added vertices ("" defaults to "mut");
// re-running a stream against the same durable store needs a fresh
// prefix, or the re-added keys 409.
func NewMutGen(cfg Config, seed int64, prefix string) *MutGen {
	if prefix == "" {
		prefix = "mut"
	}
	return &MutGen{
		seed:     seed,
		prefix:   prefix,
		persons:  cfg.persons(),
		comments: cfg.comments(),
	}
}

// mix64 is splitmix64's finalizer: a cheap, statistically solid way to
// turn (seed, index, salt) into independent pseudo-random draws without
// any shared generator state — which is what makes record i a pure
// function of i.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (g *MutGen) draw(i uint64, salt uint64) uint64 {
	return mix64(uint64(g.seed) ^ mix64(i) ^ salt)
}

// Mutation weights per 100 records: the stream leans toward vertex
// inserts (the cheap, always-safe op), keeps a realistic share of edge
// growth between existing persons, and sprinkles attribute updates —
// roughly the shape of SNB's update streams (new messages and persons,
// new KNOWS edges, profile changes).
const (
	wAddPerson  = 35 // add_vertex Person
	wAddComment = 15 // add_vertex Comment
	wKnows      = 30 // add_edge Knows between base persons
	wLikes      = 10 // add_edge Likes base person -> base comment
	wSetAttr    = 10 // set_attr on a base person
)

// At returns record i of the stream. Records are independent: edges and
// attribute updates reference only base-graph vertices, and added
// vertices get globally unique keys, so applying any subset in any
// order (or concurrently) succeeds.
func (g *MutGen) At(i uint64) Mutation {
	kind := g.draw(i, 0x6d757461) % 100
	switch {
	case kind < wAddPerson:
		gender := "male"
		if g.draw(i, 1)%2 == 0 {
			gender = "female"
		}
		return Mutation{
			Op:   OpAddVertex,
			Type: "Person",
			Key:  fmt.Sprintf("%s-p%d", g.prefix, i),
			Attrs: map[string]any{
				"firstName":   fmt.Sprintf("New%d", i),
				"lastName":    fmt.Sprintf("Last%d", g.draw(i, 2)%997),
				"gender":      gender,
				"birthday":    epoch1950 + int64(g.draw(i, 3)%uint64(epoch2000-epoch1950)),
				"browserUsed": browsers[g.draw(i, 4)%uint64(len(browsers))],
			},
		}
	case kind < wAddPerson+wAddComment:
		return Mutation{
			Op:   OpAddVertex,
			Type: "Comment",
			Key:  fmt.Sprintf("%s-c%d", g.prefix, i),
			Attrs: map[string]any{
				"creationDate": epoch2009 + int64(g.draw(i, 5)%uint64(epoch2013-epoch2009)),
				"length":       1 + int64(g.draw(i, 6)%500),
				"browserUsed":  browsers[g.draw(i, 7)%uint64(len(browsers))],
			},
		}
	case kind < wAddPerson+wAddComment+wKnows:
		a := g.draw(i, 8) % uint64(g.persons)
		b := g.draw(i, 9) % uint64(g.persons)
		if a == b {
			b = (b + 1) % uint64(g.persons)
		}
		return Mutation{
			Op:      OpAddEdge,
			Type:    "Knows",
			SrcType: "Person",
			SrcKey:  fmt.Sprintf("person%d", a),
			DstType: "Person",
			DstKey:  fmt.Sprintf("person%d", b),
			Attrs: map[string]any{
				"creationDate": epoch2009 + int64(g.draw(i, 10)%uint64(epoch2013-epoch2009)),
			},
		}
	case kind < wAddPerson+wAddComment+wKnows+wLikes:
		return Mutation{
			Op:      OpAddEdge,
			Type:    "Likes",
			SrcType: "Person",
			SrcKey:  fmt.Sprintf("person%d", g.draw(i, 11)%uint64(g.persons)),
			DstType: "Comment",
			DstKey:  fmt.Sprintf("comment%d", g.draw(i, 12)%uint64(g.comments)),
			Attrs: map[string]any{
				"creationDate": epoch2009 + int64(g.draw(i, 13)%uint64(epoch2013-epoch2009)),
			},
		}
	default:
		return Mutation{
			Op:    OpSetAttr,
			Type:  "Person",
			Key:   fmt.Sprintf("person%d", g.draw(i, 14)%uint64(g.persons)),
			Attrs: map[string]any{"browserUsed": browsers[g.draw(i, 15)%uint64(len(browsers))]},
		}
	}
}

// Mutations materializes the first n records of the stream — the form
// cmd/snbgen -mutations writes to disk.
func Mutations(cfg Config, n int, seed int64, prefix string) []Mutation {
	g := NewMutGen(cfg, seed, prefix)
	out := make([]Mutation, n)
	for i := range out {
		out[i] = g.At(uint64(i))
	}
	return out
}

// Apply executes one mutation against an in-process graph, converting
// Attrs by the schema's declared types — the same coercions gsqld's
// mutation routes perform on JSON bodies.
func Apply(g *graph.Graph, m Mutation) error {
	switch m.Op {
	case OpAddVertex:
		vt := g.Schema.VertexType(m.Type)
		if vt == nil {
			return fmt.Errorf("ldbc: unknown vertex type %q", m.Type)
		}
		attrs, err := coerceAttrs(vt.Attrs, m.Attrs)
		if err != nil {
			return err
		}
		_, err = g.AddVertex(m.Type, m.Key, attrs)
		return err
	case OpAddEdge:
		et := g.Schema.EdgeType(m.Type)
		if et == nil {
			return fmt.Errorf("ldbc: unknown edge type %q", m.Type)
		}
		attrs, err := coerceAttrs(et.Attrs, m.Attrs)
		if err != nil {
			return err
		}
		src, ok := g.VertexByKey(m.SrcType, m.SrcKey)
		if !ok {
			return fmt.Errorf("ldbc: no %s vertex %q", m.SrcType, m.SrcKey)
		}
		dst, ok := g.VertexByKey(m.DstType, m.DstKey)
		if !ok {
			return fmt.Errorf("ldbc: no %s vertex %q", m.DstType, m.DstKey)
		}
		_, err = g.AddEdge(m.Type, src, dst, attrs)
		return err
	case OpSetAttr:
		vt := g.Schema.VertexType(m.Type)
		if vt == nil {
			return fmt.Errorf("ldbc: unknown vertex type %q", m.Type)
		}
		attrs, err := coerceAttrs(vt.Attrs, m.Attrs)
		if err != nil {
			return err
		}
		v, ok := g.VertexByKey(m.Type, m.Key)
		if !ok {
			return fmt.Errorf("ldbc: no %s vertex %q", m.Type, m.Key)
		}
		for name, val := range attrs {
			if err := g.SetVertexAttr(v, name, val); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("ldbc: unknown mutation op %q", m.Op)
}

// coerceAttrs converts the stream's plain-Go attribute values into
// typed engine values, guided by the declared AttrDefs.
func coerceAttrs(defs []graph.AttrDef, raw map[string]any) (map[string]value.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	byName := make(map[string]graph.AttrType, len(defs))
	for _, d := range defs {
		byName[d.Name] = d.Type
	}
	out := make(map[string]value.Value, len(raw))
	for name, rv := range raw {
		at, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("ldbc: unknown attribute %q", name)
		}
		v, err := coerceAttr(at, rv)
		if err != nil {
			return nil, fmt.Errorf("ldbc: attribute %q: %w", name, err)
		}
		out[name] = v
	}
	return out, nil
}

func coerceAttr(at graph.AttrType, rv any) (value.Value, error) {
	switch at {
	case graph.AttrInt:
		if x, ok := rv.(int64); ok {
			return value.NewInt(x), nil
		}
	case graph.AttrFloat:
		if x, ok := rv.(float64); ok {
			return value.NewFloat(x), nil
		}
	case graph.AttrString:
		if x, ok := rv.(string); ok {
			return value.NewString(x), nil
		}
	case graph.AttrBool:
		if x, ok := rv.(bool); ok {
			return value.NewBool(x), nil
		}
	case graph.AttrDatetime:
		if x, ok := rv.(int64); ok {
			return value.NewDatetime(x), nil
		}
	}
	return value.Null, fmt.Errorf("cannot coerce %T to %v", rv, at)
}
