package ldbc

import (
	"testing"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/match"
	"gsqlgo/internal/value"
)

func smallGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return Generate(Config{SF: 0.2, Seed: 11})
}

func TestGenerateShapes(t *testing.T) {
	g := smallGraph(t)
	if n := len(g.VerticesOfType("Person")); n != 200 {
		t.Errorf("persons = %d, want 200", n)
	}
	for _, typ := range []string{"City", "Country", "Company", "Tag", "Forum", "Post", "Comment"} {
		if len(g.VerticesOfType(typ)) == 0 {
			t.Errorf("no %s vertices", typ)
		}
	}
	if g.Schema.EdgeType("Knows").Directed {
		t.Error("Knows must be undirected (SNB)")
	}
	// Determinism.
	g2 := Generate(Config{SF: 0.2, Seed: 11})
	if g.NumVertices() != g2.NumVertices() || g.NumEdges() != g2.NumEdges() {
		t.Error("generation must be deterministic per seed")
	}
	g3 := Generate(Config{SF: 0.2, Seed: 12})
	if g.NumEdges() == g3.NumEdges() {
		t.Log("different seeds produced the same edge count (possible but unlikely)")
	}
	// Every person has a city and a company.
	for _, p := range g.VerticesOfType("Person") {
		hasCity, hasCompany := false, false
		for _, h := range g.Neighbors(p) {
			switch g.EdgeTypeOf(h.Edge).Name {
			case "PersonLocatedIn":
				hasCity = true
			case "WorkAt":
				hasCompany = true
			}
		}
		if !hasCity || !hasCompany {
			t.Fatalf("person %d missing city/company", p)
		}
	}
}

// runIC installs and runs one IC query under the given semantics.
func runIC(t *testing.T, g *graph.Graph, sem match.Semantics, short string, h int, args map[string]value.Value) *core.Result {
	t.Helper()
	e := core.New(g, core.Options{Semantics: sem})
	if err := e.Install(ICQueries(h)[short]); err != nil {
		t.Fatalf("install %s h=%d: %v", short, h, err)
	}
	res, err := e.Run(ICName(short, h), args)
	if err != nil {
		t.Fatalf("run %s h=%d: %v", short, h, err)
	}
	return res
}

func seedPerson(t *testing.T, g *graph.Graph) value.Value {
	t.Helper()
	p, ok := g.VertexByKey("Person", "person0")
	if !ok {
		t.Fatal("person0 missing")
	}
	return value.NewVertex(int64(p))
}

// TestICQueriesAgreeAcrossSemantics reproduces the paper's observation
// that the IC results coincide under all-shortest-paths and
// non-repeated-edge semantics (the DISTINCT friend set is identical),
// while the evaluation strategies differ completely.
func TestICQueriesAgreeAcrossSemantics(t *testing.T) {
	g := smallGraph(t)
	p := seedPerson(t, g)
	k := value.NewInt(10)
	argsOf := map[string]map[string]value.Value{
		"ic3":  {"p": p, "countryX": value.NewString("Country-1"), "countryY": value.NewString("Country-2"), "k": k},
		"ic5":  {"p": p, "minDate": graph.MustDatetime("2010-06-01"), "k": k},
		"ic6":  {"p": p, "tagName": value.NewString("Tag-3"), "k": k},
		"ic9":  {"p": p, "maxDate": graph.MustDatetime("2012-06-01"), "k": k},
		"ic11": {"p": p, "countryName": value.NewString("Country-0"), "maxYear": value.NewInt(2005), "k": k},
	}
	for short, args := range argsOf {
		for _, h := range []int{2, 3} {
			asp := runIC(t, g, match.AllShortestPaths, short, h, args)
			nre := runIC(t, g, match.NonRepeatedEdge, short, h, args)
			ta, tn := resultTable(asp), resultTable(nre)
			if ta == nil || tn == nil {
				t.Fatalf("%s h=%d: missing result tables", short, h)
			}
			if len(ta.Rows) == 0 {
				t.Errorf("%s h=%d: empty result; widen the generator or parameters", short, h)
			}
			if !tablesEqual(ta, tn) {
				t.Errorf("%s h=%d: results differ between ASP and NRE:\n%s\nvs\n%s", short, h, ta, tn)
			}
		}
	}
}

func resultTable(r *core.Result) *core.Table {
	if r.Returned != nil {
		return r.Returned
	}
	if len(r.Printed) > 0 {
		return r.Printed[0]
	}
	return nil
}

func tablesEqual(a, b *core.Table) bool {
	if len(a.Rows) != len(b.Rows) || len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !value.Equal(a.Rows[i][j], b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestIC3Oracle validates ic3 against a native Go implementation.
func TestIC3Oracle(t *testing.T) {
	g := smallGraph(t)
	pv, _ := g.VertexByKey("Person", "person0")
	h := 3
	res := runIC(t, g, match.AllShortestPaths, "ic3", h, map[string]value.Value{
		"p":        value.NewVertex(int64(pv)),
		"countryX": value.NewString("Country-1"),
		"countryY": value.NewString("Country-2"),
		"k":        value.NewInt(1000),
	})
	// Oracle: BFS over Knows to depth h, then count located messages.
	friends := knowsWithin(g, pv, h)
	delete(friends, pv)
	wantRows := 0
	for f := range friends {
		x, y := 0, 0
		for _, hh := range g.Neighbors(f) {
			if g.EdgeTypeOf(hh.Edge).Name != "CommentHasCreator" || hh.Dir != graph.DirIn {
				continue
			}
			m := hh.To
			for _, h2 := range g.Neighbors(m) {
				if g.EdgeTypeOf(h2.Edge).Name != "CommentLocatedIn" || h2.Dir != graph.DirOut {
					continue
				}
				cn, _ := g.VertexAttr(h2.To, "name")
				switch cn.Str() {
				case "Country-1":
					x++
				case "Country-2":
					y++
				}
			}
		}
		if x > 0 && y > 0 {
			wantRows++
		}
	}
	if len(res.Returned.Rows) != wantRows {
		t.Errorf("ic3 rows = %d, oracle %d", len(res.Returned.Rows), wantRows)
	}
	if wantRows == 0 {
		t.Error("oracle found no qualifying friends; enlarge the generator")
	}
}

// knowsWithin is a BFS oracle over the undirected Knows edges.
func knowsWithin(g *graph.Graph, src graph.VID, h int) map[graph.VID]bool {
	seen := map[graph.VID]bool{src: true}
	frontier := []graph.VID{src}
	for d := 0; d < h; d++ {
		var next []graph.VID
		for _, v := range frontier {
			for _, hh := range g.Neighbors(v) {
				if g.EdgeTypeOf(hh.Edge).Name != "Knows" {
					continue
				}
				if !seen[hh.To] {
					seen[hh.To] = true
					next = append(next, hh.To)
				}
			}
		}
		frontier = next
	}
	return seen
}

// TestIC9HeapOrdering checks the HeapAccum top-k output is sorted by
// date descending and bounded.
func TestIC9HeapOrdering(t *testing.T) {
	g := smallGraph(t)
	p := seedPerson(t, g)
	res := runIC(t, g, match.AllShortestPaths, "ic9", 2, map[string]value.Value{
		"p": p, "maxDate": graph.MustDatetime("2012-06-01"), "k": value.NewInt(20),
	})
	tab := res.Printed[0]
	if len(tab.Rows) != 1 {
		t.Fatalf("ic9 print shape: %v", tab)
	}
	heap := tab.Rows[0][0]
	if heap.Kind() != value.KindList {
		t.Fatalf("heap value kind %v", heap.Kind())
	}
	msgs := heap.Elems()
	if len(msgs) == 0 || len(msgs) > 20 {
		t.Fatalf("heap size %d", len(msgs))
	}
	for i := 1; i < len(msgs); i++ {
		prev := msgs[i-1].Elems()[0].Datetime()
		cur := msgs[i].Elems()[0].Datetime()
		if cur > prev {
			t.Fatal("heap not sorted by creationDate DESC")
		}
	}
	limit := graph.MustDatetime("2012-06-01").Datetime()
	for _, m := range msgs {
		if m.Elems()[0].Datetime() >= limit {
			t.Fatal("message past maxDate in heap")
		}
	}
}

// TestAppendixBQueriesAgree verifies Qgs and Qacc produce the same
// group counts (the shared aggregates are identical; Qgs merely also
// computes unwanted ones).
func TestAppendixBQueriesAgree(t *testing.T) {
	g := Generate(Config{SF: 0.1, Seed: 3})
	args := map[string]value.Value{
		"lo": graph.MustDatetime("2010-01-01"),
		"hi": graph.MustDatetime("2012-12-31"),
	}
	egs := core.New(g, core.Options{})
	if err := egs.Install(QGS()); err != nil {
		t.Fatal(err)
	}
	rgs, err := egs.Run("Qgs", args)
	if err != nil {
		t.Fatal(err)
	}
	eacc := core.New(g, core.Options{})
	if err := eacc.Install(QACC()); err != nil {
		t.Fatal(err)
	}
	racc, err := eacc.Run("Qacc", args)
	if err != nil {
		t.Fatal(err)
	}
	// PRINT size(...) x3 — group counts per grouping set must agree.
	for i := 0; i < 3; i++ {
		a := rgs.Printed[i].Rows[0][0].Int()
		b := racc.Printed[i].Rows[0][0].Int()
		if a != b || a == 0 {
			t.Errorf("grouping set %d: Qgs groups %d vs Qacc groups %d", i+1, a, b)
		}
	}
	// The per-year heaps (wanted in both) must be identical.
	gsVal := rgs.Globals["gs1"]
	accVal := racc.Globals["peryear"]
	gsPairs := gsVal.Pairs()
	accPairs := accVal.Pairs()
	if len(gsPairs) != len(accPairs) {
		t.Fatalf("per-year groups differ: %d vs %d", len(gsPairs), len(accPairs))
	}
	for i := range gsPairs {
		if !value.Equal(gsPairs[i].Key, accPairs[i].Key) {
			t.Fatalf("group keys differ at %d", i)
		}
		// Qgs rows carry 8 aggregates, Qacc rows 6; the first six
		// (the heaps) must coincide.
		gv := gsPairs[i].Val.Elems()
		av := accPairs[i].Val.Elems()
		for j := 0; j < 6; j++ {
			if !value.Equal(gv[j], av[j]) {
				t.Errorf("year %v heap %d differs", gsPairs[i].Key, j)
			}
		}
	}
}
