package ldbc

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestMutationStreamDeterministic(t *testing.T) {
	cfg := Config{SF: 0.05, Seed: 7}
	a := Mutations(cfg, 200, 11, "mut")
	b := Mutations(cfg, 200, 11, "mut")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (cfg, seed, prefix) must generate identical streams")
	}
	c := Mutations(cfg, 200, 12, "mut")
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds must generate different streams")
	}
	// The mix hits every op kind within a modest window.
	seen := map[string]bool{}
	for _, m := range a {
		seen[m.Op] = true
	}
	for _, op := range []string{OpAddVertex, OpAddEdge, OpSetAttr} {
		if !seen[op] {
			t.Errorf("no %s record in the first 200", op)
		}
	}
}

// TestMutationStreamApplies proves schema- and key-space-consistency:
// every record of a long stream applies cleanly to the graph Generate
// built with the same Config.
func TestMutationStreamApplies(t *testing.T) {
	cfg := Config{SF: 0.05, Seed: 7}
	g := Generate(cfg)
	v0, e0 := g.NumVertices(), g.NumEdges()
	muts := Mutations(cfg, 500, 3, "t")
	for i, m := range muts {
		if err := Apply(g, m); err != nil {
			t.Fatalf("record %d (%+v): %v", i, m, err)
		}
	}
	if g.NumVertices() <= v0 || g.NumEdges() <= e0 {
		t.Fatalf("stream grew nothing: vertices %d->%d, edges %d->%d",
			v0, g.NumVertices(), e0, g.NumEdges())
	}
}

// TestMutationStreamInterleavable applies the same stream in a shuffled
// order: records must be order-independent (edges and attr updates only
// reference base vertices; added keys are unique), which is what lets a
// load generator fan them across concurrent workers.
func TestMutationStreamInterleavable(t *testing.T) {
	cfg := Config{SF: 0.05, Seed: 7}
	g := Generate(cfg)
	muts := Mutations(cfg, 300, 5, "t")
	rand.New(rand.NewSource(1)).Shuffle(len(muts), func(i, j int) {
		muts[i], muts[j] = muts[j], muts[i]
	})
	for i, m := range muts {
		if err := Apply(g, m); err != nil {
			t.Fatalf("shuffled record %d (%+v): %v", i, m, err)
		}
	}
}

// TestMutationPrefixNamespacing: distinct prefixes can never collide
// with each other or Generate's own key space.
func TestMutationPrefixNamespacing(t *testing.T) {
	cfg := Config{SF: 0.05, Seed: 7}
	g := Generate(cfg)
	for _, prefix := range []string{"a", "b"} {
		for _, m := range Mutations(cfg, 100, 9, prefix) {
			if err := Apply(g, m); err != nil {
				t.Fatalf("prefix %s: %v", prefix, err)
			}
		}
	}
}
