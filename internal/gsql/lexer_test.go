package gsql

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) ([]Token, error) {
	t.Helper()
	l := newLexer(src)
	var out []Token
	for {
		tok, err := l.next()
		if err != nil {
			return out, err
		}
		if tok.Kind == TokEOF {
			return out, nil
		}
		out = append(out, tok)
	}
}

func TestLexerErrors(t *testing.T) {
	bad := map[string]string{
		`"unterminated`:      "unterminated string",
		"\"line\nbreak\"":    "unterminated string",
		`"bad \q escape"`:    "unknown escape",
		`"trailing \`:        "unterminated string",
		"@;":                 "expected accumulator name",
		"@@ x":               "expected accumulator name",
		"\x01":               "unexpected character",
		"ident $":            "unexpected character",
		"CREATE QUERY q() {": "", // parser error, not lexer — just ensure lexing is fine
	}
	for src, want := range bad {
		_, err := lexAll(t, src)
		if want == "" {
			if err != nil {
				t.Errorf("lexAll(%q): unexpected error %v", src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("lexAll(%q): error %v must mention %q", src, err, want)
		}
	}
}

func TestLexerNumbersAndComments(t *testing.T) {
	toks, err := lexAll(t, `
// line comment
# hash comment
/* block
   comment */ 1.5e-3 2e10 7 3.14 1..3
`)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{}
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	want := []string{"1.5e-3", "2e10", "7", "3.14", "1", "..", "3"}
	if len(texts) != len(want) {
		t.Fatalf("tokens: %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexerUnterminatedBlockComment(t *testing.T) {
	// Unterminated block comments consume to EOF without hanging.
	toks, err := lexAll(t, "x /* never closed")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Text != "x" {
		t.Errorf("tokens: %v", toks)
	}
}

func TestLexerLineTracking(t *testing.T) {
	l := newLexer("a\nb\n  c")
	lines := []int{}
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
		lines = append(lines, tok.Line)
	}
	if len(lines) != 3 || lines[0] != 1 || lines[1] != 2 || lines[2] != 3 {
		t.Errorf("lines = %v", lines)
	}
	// setPos backwards recomputes the line.
	l2 := newLexer("a\nb")
	if _, err := l2.next(); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.next(); err != nil {
		t.Fatal(err)
	}
	l2.setPos(0)
	tok, err := l2.next()
	if err != nil {
		t.Fatal(err)
	}
	if tok.Text != "a" || tok.Line != 1 {
		t.Errorf("after rewind: %v line %d", tok, tok.Line)
	}
}

func TestTokenString(t *testing.T) {
	cases := map[string]Token{
		"end of input":   {Kind: TokEOF},
		`identifier "x"`: {Kind: TokIdent, Text: "x"},
		"number 5":       {Kind: TokNumber, Text: "5"},
		`string "s"`:     {Kind: TokString, Text: "s"},
		"@a":             {Kind: TokVAcc, Text: "a"},
		"@@b":            {Kind: TokGAcc, Text: "b"},
		`"+="`:           {Kind: TokPunct, Text: "+="},
	}
	for want, tok := range cases {
		if got := tok.String(); got != want {
			t.Errorf("Token.String() = %q, want %q", got, want)
		}
	}
}

func TestParserSpecErrors(t *testing.T) {
	bad := []struct{ src, want string }{
		{`CREATE QUERY q() { MapAccum<list, int> @@m; }`, "scalar type"},
		{`CREATE QUERY q() { GroupByAccum<SumAccum<int>, string k> @@g; }`, "keys must precede"},
		{`TYPEDEF TUPLE<a b> T;`, "scalar type"},
		{`TYPEDEF TUPLE<a int> T; CREATE QUERY q() { HeapAccum<T>(x, a) @@h; }`, "capacity"},
		{`CREATE QUERY q(bogus x) {}`, "unknown type"},
		{`CREATE QUERY q() { SumAccum<int> x; }`, "expected @name or @@name"},
		{`CREATE QUERY q() { PRINT POST; }`, ""}, // POST alone is a plain identifier
	}
	for _, c := range bad {
		_, err := Parse(c.src)
		if c.want == "" {
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q): error %v must mention %q", c.src, err, c.want)
		}
	}
	// TYPEDEF inside a query body registers the tuple for later decls.
	f, err := Parse(`
CREATE QUERY q() {
  TYPEDEF TUPLE<a int> Inner;
  HeapAccum<Inner>(2, a DESC) @@h;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Queries[0].Decls[0].Spec.Tuple.Name != "Inner" {
		t.Error("in-body typedef not visible to HeapAccum")
	}
}
