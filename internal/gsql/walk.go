package gsql

// WalkExpr calls fn on e and every expression nested inside it,
// depth-first, parents before children. A nil e is a no-op. SelectExpr
// operands (the S = SELECT form nested in expressions) are descended
// into via WalkSelectExpr so conservative analyses (the compile-stage
// fusion legality checks) see every identifier and accumulator
// reference a block can possibly touch.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *Lit, *Ident, *GlobalAccRef, *VSetLit:
	case *VertexAccRef:
		WalkExpr(n.Vertex, fn)
	case *AttrRef:
		WalkExpr(n.Obj, fn)
	case *Call:
		WalkExpr(n.Recv, fn)
		for _, a := range n.Args {
			WalkExpr(a, fn)
		}
	case *Binary:
		WalkExpr(n.L, fn)
		WalkExpr(n.R, fn)
	case *Unary:
		WalkExpr(n.X, fn)
	case *TupleExpr:
		for _, sub := range n.Elems {
			WalkExpr(sub, fn)
		}
	case *ArrowTuple:
		for _, sub := range n.Keys {
			WalkExpr(sub, fn)
		}
		for _, sub := range n.Vals {
			WalkExpr(sub, fn)
		}
	case *SetOpExpr:
		WalkExpr(n.L, fn)
		WalkExpr(n.R, fn)
	case *CaseExpr:
		for _, arm := range n.Whens {
			WalkExpr(arm.Cond, fn)
			WalkExpr(arm.Then, fn)
		}
		WalkExpr(n.Else, fn)
	case *SelectExpr:
		WalkSelectExpr(n, fn)
	}
}

// WalkAccStmt calls fn on every expression of an ACCUM / POST-ACCUM
// statement, recursing through conditional branches.
func WalkAccStmt(st *AccStmt, fn func(Expr)) {
	if st == nil {
		return
	}
	if st.Cond != nil {
		WalkExpr(st.Cond, fn)
		for i := range st.Then {
			WalkAccStmt(&st.Then[i], fn)
		}
		for i := range st.Else {
			WalkAccStmt(&st.Else[i], fn)
		}
		return
	}
	WalkExpr(st.Lhs, fn)
	WalkExpr(st.Rhs, fn)
}

// WalkSelectExpr calls fn on every expression appearing anywhere in a
// SELECT block: outputs, WHERE, ACCUM, POST-ACCUM, GROUP BY, HAVING,
// ORDER BY and LIMIT. The SelectExpr node itself is not passed to fn
// (WalkExpr does that when the block appears as an operand).
func WalkSelectExpr(sel *SelectExpr, fn func(Expr)) {
	if sel == nil {
		return
	}
	for _, out := range sel.Outputs {
		for _, item := range out.Items {
			WalkExpr(item.Expr, fn)
		}
	}
	WalkExpr(sel.Where, fn)
	for i := range sel.Accum {
		WalkAccStmt(&sel.Accum[i], fn)
	}
	for i := range sel.PostAccum {
		WalkAccStmt(&sel.PostAccum[i], fn)
	}
	for _, g := range sel.GroupBy {
		WalkExpr(g, fn)
	}
	WalkExpr(sel.Having, fn)
	for _, k := range sel.OrderBy {
		WalkExpr(k.Expr, fn)
	}
	WalkExpr(sel.Limit, fn)
}
