package gsql

import "gsqlgo/internal/value"

// ExprEqual reports structural equality of two expressions. The
// grouped-output evaluator uses it to match SELECT items against
// GROUP BY keys (needed for GROUPING SETS, where excluded keys read
// as null).
func ExprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case *Lit:
		y, ok := b.(*Lit)
		return ok && value.Equal(x.Val, y.Val)
	case *Ident:
		y, ok := b.(*Ident)
		return ok && x.Name == y.Name
	case *GlobalAccRef:
		y, ok := b.(*GlobalAccRef)
		return ok && x.Name == y.Name
	case *VertexAccRef:
		y, ok := b.(*VertexAccRef)
		return ok && x.Name == y.Name && x.Prev == y.Prev && ExprEqual(x.Vertex, y.Vertex)
	case *AttrRef:
		y, ok := b.(*AttrRef)
		return ok && x.Name == y.Name && ExprEqual(x.Obj, y.Obj)
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		if (x.Recv == nil) != (y.Recv == nil) {
			return false
		}
		if x.Recv != nil && !ExprEqual(x.Recv, y.Recv) {
			return false
		}
		return exprsEqual(x.Args, y.Args)
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && ExprEqual(x.X, y.X)
	case *TupleExpr:
		y, ok := b.(*TupleExpr)
		return ok && exprsEqual(x.Elems, y.Elems)
	case *ArrowTuple:
		y, ok := b.(*ArrowTuple)
		return ok && exprsEqual(x.Keys, y.Keys) && exprsEqual(x.Vals, y.Vals)
	case *VSetLit:
		y, ok := b.(*VSetLit)
		if !ok || len(x.Types) != len(y.Types) {
			return false
		}
		for i := range x.Types {
			if x.Types[i] != y.Types[i] {
				return false
			}
		}
		return true
	case *CaseExpr:
		y, ok := b.(*CaseExpr)
		if !ok || len(x.Whens) != len(y.Whens) {
			return false
		}
		for i := range x.Whens {
			if !ExprEqual(x.Whens[i].Cond, y.Whens[i].Cond) || !ExprEqual(x.Whens[i].Then, y.Whens[i].Then) {
				return false
			}
		}
		if (x.Else == nil) != (y.Else == nil) {
			return false
		}
		return x.Else == nil || ExprEqual(x.Else, y.Else)
	default:
		return false
	}
}

func exprsEqual(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ExprEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
