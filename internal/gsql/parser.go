package gsql

import (
	"fmt"
	"strconv"
	"strings"

	"gsqlgo/internal/accum"
	"gsqlgo/internal/darpe"
	"gsqlgo/internal/value"
)

// Parse parses a GSQL source file containing TYPEDEF TUPLE definitions
// and CREATE QUERY blocks.
func Parse(src string) (f *File, err error) {
	p := &parser{lex: newLexer(src), tuples: map[string]*accum.TupleType{}}
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(parseBail)
			if !ok {
				panic(r)
			}
			f, err = nil, pe.err
		}
	}()
	p.advance()
	f = &File{}
	for p.tok.Kind != TokEOF {
		switch {
		case p.isKw("TYPEDEF"):
			tt := p.parseTypedef()
			f.Typedefs = append(f.Typedefs, tt)
		case p.isKw("CREATE"):
			f.Queries = append(f.Queries, p.parseQuery())
		default:
			p.failf("expected TYPEDEF or CREATE QUERY, got %s", p.tok)
		}
	}
	return f, nil
}

type parseBail struct{ err error }

type parser struct {
	lex    *lexer
	tok    Token
	tuples map[string]*accum.TupleType
}

func (p *parser) failf(format string, args ...interface{}) {
	panic(parseBail{fmt.Errorf("gsql: line %d: %s", p.tok.Line, fmt.Sprintf(format, args...))})
}

func (p *parser) advance() {
	tok, err := p.lex.next()
	if err != nil {
		panic(parseBail{err})
	}
	p.tok = tok
}

// peek returns the next token without consuming it.
func (p *parser) peek() Token {
	saved := *p.lex
	tok, err := p.lex.next()
	*p.lex = saved
	if err != nil {
		panic(parseBail{err})
	}
	return tok
}

func (p *parser) isKw(kw string) bool {
	return p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, kw)
}

func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) {
	if !p.acceptKw(kw) {
		p.failf("expected %s, got %s", kw, p.tok)
	}
}

func (p *parser) acceptPunct(s string) bool {
	if p.tok.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) {
	if !p.acceptPunct(s) {
		p.failf("expected %q, got %s", s, p.tok)
	}
}

func (p *parser) expectIdent() string {
	if p.tok.Kind != TokIdent {
		p.failf("expected identifier, got %s", p.tok)
	}
	name := p.tok.Text
	p.advance()
	return name
}

// scalarKind maps a GSQL type keyword to a value kind.
func scalarKind(name string) (value.Kind, bool) {
	switch strings.ToLower(name) {
	case "int", "uint":
		return value.KindInt, true
	case "float", "double":
		return value.KindFloat, true
	case "string":
		return value.KindString, true
	case "bool":
		return value.KindBool, true
	case "datetime":
		return value.KindDatetime, true
	case "vertex":
		return value.KindVertex, true
	case "edge":
		return value.KindEdge, true
	}
	return 0, false
}

// ---- typedefs -----------------------------------------------------------------

// TYPEDEF TUPLE <name type, ...> Name ;
// (the field order "name type" and "type name" are both accepted)
func (p *parser) parseTypedef() *accum.TupleType {
	p.expectKw("TYPEDEF")
	p.expectKw("TUPLE")
	p.expectPunct("<")
	tt := &accum.TupleType{}
	for {
		first := p.expectIdent()
		second := p.expectIdent()
		// Either "name type" or "type name".
		if k, ok := scalarKind(second); ok {
			tt.Fields = append(tt.Fields, accum.TupleField{Name: first, Kind: k})
		} else if k, ok := scalarKind(first); ok {
			tt.Fields = append(tt.Fields, accum.TupleField{Name: second, Kind: k})
		} else {
			p.failf("tuple field needs a scalar type, got %q %q", first, second)
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	p.expectPunct(">")
	tt.Name = p.expectIdent()
	p.expectPunct(";")
	p.tuples[tt.Name] = tt
	return tt
}

// ---- queries --------------------------------------------------------------------

func (p *parser) parseQuery() *Query {
	p.expectKw("CREATE")
	p.expectKw("QUERY")
	q := &Query{Name: p.expectIdent()}
	p.expectPunct("(")
	for !p.tok.isPunct(")") {
		q.Params = append(q.Params, p.parseParam())
		if !p.acceptPunct(",") {
			break
		}
	}
	p.expectPunct(")")
	if p.acceptKw("FOR") {
		p.expectKw("GRAPH")
		q.GraphName = p.expectIdent()
	}
	// Per-query path-legality selection (the Section 6.1 extension):
	// CREATE QUERY q(...) SEMANTICS nre { ... }
	if p.acceptKw("SEMANTICS") {
		sem := strings.ToLower(p.expectIdent())
		switch sem {
		case "asp", "shortest", "nre", "non_repeated_edge", "nrv", "non_repeated_vertex", "exists":
			q.Semantics = sem
		default:
			p.failf("unknown semantics %q (asp|nre|nrv|exists)", sem)
		}
	}
	p.expectPunct("{")
	for !p.tok.isPunct("}") {
		p.parseBodyItem(q, &q.Stmts)
	}
	p.expectPunct("}")
	return q
}

func (p *parser) parseParam() Param {
	tr := p.parseTypeRef()
	return Param{Name: p.expectIdent(), Type: tr}
}

func (p *parser) parseTypeRef() TypeRef {
	name := p.expectIdent()
	k, ok := scalarKind(name)
	if !ok {
		p.failf("unknown type %q", name)
	}
	tr := TypeRef{Kind: k}
	if k == value.KindVertex && p.acceptPunct("<") {
		tr.VertexType = p.expectIdent()
		p.expectPunct(">")
	}
	return tr
}

// ---- body ------------------------------------------------------------------------

// isAccumTypeName reports whether an identifier begins an accumulator
// declaration.
func isAccumTypeName(name string) bool {
	if _, ok := accum.KindByName(name); ok {
		return true
	}
	// Custom accumulators follow the *Accum naming convention.
	return strings.HasSuffix(name, "Accum") && accum.CustomSpec(name).Validate() == nil
}

func (p *parser) parseBodyItem(q *Query, stmts *[]Stmt) {
	switch {
	case p.isKw("TYPEDEF"):
		p.parseTypedef() // registered in p.tuples for later HeapAccum use
	case p.tok.Kind == TokIdent && isAccumTypeName(p.tok.Text):
		q.Decls = append(q.Decls, p.parseAccumDecls()...)
	default:
		*stmts = append(*stmts, p.parseStmt())
	}
}

// SumAccum<float> @a = 1, @b; MaxAccum<float> @@m;
func (p *parser) parseAccumDecls() []*AccumDecl {
	spec := p.parseAccumSpec()
	var decls []*AccumDecl
	for {
		d := &AccumDecl{Spec: spec}
		switch p.tok.Kind {
		case TokVAcc:
			d.Name, d.Global = p.tok.Text, false
		case TokGAcc:
			d.Name, d.Global = p.tok.Text, true
		default:
			p.failf("expected @name or @@name in accumulator declaration, got %s", p.tok)
		}
		p.advance()
		if p.acceptPunct("=") {
			d.Init = p.parseExpr()
		}
		decls = append(decls, d)
		if !p.acceptPunct(",") {
			break
		}
	}
	p.expectPunct(";")
	return decls
}

func (p *parser) parseAccumSpec() *accum.Spec {
	name := p.expectIdent()
	kind, ok := accum.KindByName(name)
	if !ok {
		// registered custom accumulator
		return accum.CustomSpec(name)
	}
	switch kind {
	case accum.KindOr:
		return accum.OrSpec()
	case accum.KindAnd:
		return accum.AndSpec()
	case accum.KindBitwiseAnd:
		return accum.BitwiseAndSpec()
	case accum.KindBitwiseOr:
		return accum.BitwiseOrSpec()
	case accum.KindSum, accum.KindMin, accum.KindMax, accum.KindAvg,
		accum.KindSet, accum.KindBag, accum.KindList, accum.KindArray:
		p.expectPunct("<")
		elem := p.parseScalarKind()
		p.expectPunct(">")
		return &accum.Spec{Kind: kind, Elem: elem}
	case accum.KindMap:
		p.expectPunct("<")
		key := p.parseScalarKind()
		p.expectPunct(",")
		var nested *accum.Spec
		if p.tok.Kind == TokIdent && isAccumTypeName(p.tok.Text) {
			nested = p.parseAccumSpec()
		} else {
			// Scalar value types desugar to the natural aggregation:
			// += on colliding keys sums (numerics, strings).
			nested = accum.SumSpec(p.parseScalarKind())
		}
		p.expectPunct(">")
		return accum.MapSpec(key, nested)
	case accum.KindHeap:
		p.expectPunct("<")
		tname := p.expectIdent()
		tt, ok := p.tuples[tname]
		if !ok {
			p.failf("HeapAccum references undefined tuple type %q", tname)
		}
		p.expectPunct(">")
		p.expectPunct("(")
		capTok := p.tok
		if capTok.Kind != TokNumber {
			p.failf("HeapAccum capacity must be a number, got %s", capTok)
		}
		capacity, err := strconv.Atoi(capTok.Text)
		if err != nil {
			p.failf("bad HeapAccum capacity: %v", err)
		}
		p.advance()
		var sorts []accum.SortField
		for p.acceptPunct(",") {
			f := accum.SortField{Field: p.expectIdent()}
			if p.acceptKw("DESC") {
				f.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sorts = append(sorts, f)
		}
		p.expectPunct(")")
		return accum.HeapSpec(tt, capacity, sorts...)
	case accum.KindGroupBy:
		p.expectPunct("<")
		spec := &accum.Spec{Kind: accum.KindGroupBy}
		for {
			if p.tok.Kind == TokIdent && isAccumTypeName(p.tok.Text) {
				spec.Nested = append(spec.Nested, p.parseAccumSpec())
			} else {
				k := p.parseScalarKind()
				keyName := ""
				if p.tok.Kind == TokIdent && !isAccumTypeName(p.tok.Text) {
					keyName = p.expectIdent()
				}
				if len(spec.Nested) > 0 {
					p.failf("GroupByAccum keys must precede nested accumulators")
				}
				spec.Keys = append(spec.Keys, k)
				spec.KeyNames = append(spec.KeyNames, keyName)
			}
			if !p.acceptPunct(",") {
				break
			}
		}
		p.expectPunct(">")
		return spec
	default:
		p.failf("unsupported accumulator type %q", name)
		return nil
	}
}

func (p *parser) parseScalarKind() value.Kind {
	name := p.expectIdent()
	k, ok := scalarKind(name)
	if !ok {
		p.failf("expected a scalar type, got %q", name)
	}
	return k
}

// ---- statements --------------------------------------------------------------------

func (p *parser) parseStmt() Stmt {
	switch {
	case p.isKw("WHILE"):
		return p.parseWhile()
	case p.isKw("IF"):
		return p.parseIf()
	case p.isKw("FOREACH"):
		return p.parseForeach()
	case p.isKw("PRINT"):
		return p.parsePrint()
	case p.isKw("RETURN"):
		p.advance()
		s := &ReturnStmt{Expr: p.parseExpr()}
		p.expectPunct(";")
		return s
	case p.isKw("SELECT"):
		sel := p.parseSelect(false)
		p.expectPunct(";")
		return &SelectStmt{Sel: sel}
	case p.tok.Kind == TokGAcc:
		target := &GlobalAccRef{Name: p.tok.Text}
		p.advance()
		op := p.accumOp()
		s := &AccAssignStmt{Target: target, Op: op, Rhs: p.parseExpr()}
		p.expectPunct(";")
		return s
	case p.tok.Kind == TokIdent:
		name := p.expectIdent()
		p.expectPunct("=")
		var rhs Expr
		switch {
		case p.isKw("SELECT"):
			rhs = p.parseSelect(true)
		case p.tok.isPunct("{"):
			rhs = p.parseVSetLit()
		case p.tok.isPunct(":"):
			p.failf("path variables (p = :s -(...)- :t) are not supported: the tractable class of Theorem 7.1 excludes them")
			return nil
		default:
			rhs = p.parseExpr()
			// Vertex-set algebra: S = A UNION B MINUS C ...
			for p.isKw("UNION") || p.isKw("INTERSECT") || p.isKw("MINUS") {
				op := strings.ToLower(p.tok.Text)
				p.advance()
				rhs = &SetOpExpr{Op: op, L: rhs, R: p.parseExpr()}
			}
		}
		p.expectPunct(";")
		return &AssignStmt{Name: name, Rhs: rhs}
	default:
		p.failf("unexpected %s at statement start", p.tok)
		return nil
	}
}

func (p *parser) accumOp() string {
	if p.acceptPunct("+=") {
		return "+="
	}
	p.expectPunct("=")
	return "="
}

func (p *parser) parseVSetLit() Expr {
	p.expectPunct("{")
	lit := &VSetLit{}
	for {
		lit.Types = append(lit.Types, p.expectIdent())
		p.expectPunct(".")
		p.expectPunct("*")
		if !p.acceptPunct(",") {
			break
		}
	}
	p.expectPunct("}")
	return lit
}

func (p *parser) parseWhile() Stmt {
	p.expectKw("WHILE")
	s := &WhileStmt{Cond: p.parseExpr()}
	if p.acceptKw("LIMIT") {
		s.Limit = p.parseExpr()
	}
	p.expectKw("DO")
	for !p.isKw("END") {
		p.parseBodyItemInto(&s.Body)
	}
	p.expectKw("END")
	p.acceptPunct(";")
	return s
}

// FOREACH x IN expr DO body END
func (p *parser) parseForeach() Stmt {
	p.expectKw("FOREACH")
	s := &ForeachStmt{Var: p.expectIdent()}
	p.expectKw("IN")
	s.Coll = p.parseExpr()
	p.expectKw("DO")
	for !p.isKw("END") {
		p.parseBodyItemInto(&s.Body)
	}
	p.expectKw("END")
	p.acceptPunct(";")
	return s
}

func (p *parser) parseIf() Stmt {
	p.expectKw("IF")
	s := &IfStmt{Cond: p.parseExpr()}
	p.expectKw("THEN")
	for !p.isKw("ELSE") && !p.isKw("END") {
		p.parseBodyItemInto(&s.Then)
	}
	if p.acceptKw("ELSE") {
		for !p.isKw("END") {
			p.parseBodyItemInto(&s.Else)
		}
	}
	p.expectKw("END")
	p.acceptPunct(";")
	return s
}

// parseBodyItemInto parses nested statements (accumulator declarations
// are only legal at query top level).
func (p *parser) parseBodyItemInto(stmts *[]Stmt) {
	if p.tok.Kind == TokIdent && isAccumTypeName(p.tok.Text) {
		p.failf("accumulator declarations must appear at query top level")
	}
	*stmts = append(*stmts, p.parseStmt())
}

func (p *parser) parsePrint() Stmt {
	p.expectKw("PRINT")
	s := &PrintStmt{}
	for {
		item := PrintItem{Expr: p.parseExpr()}
		if _, isIdent := item.Expr.(*Ident); isIdent && p.tok.isPunct("[") {
			p.advance()
			for {
				item.Projections = append(item.Projections, p.parseSelectItem())
				if !p.acceptPunct(",") {
					break
				}
			}
			p.expectPunct("]")
		}
		s.Items = append(s.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	p.expectPunct(";")
	return s
}

// ---- SELECT ---------------------------------------------------------------------------

// parseSelect parses a SELECT block. assignForm marks use as the RHS
// of "S = SELECT ...", where the (single) output is a bare vertex
// alias instead of INTO fragments.
func (p *parser) parseSelect(assignForm bool) *SelectExpr {
	p.expectKw("SELECT")
	sel := &SelectExpr{}
	sel.Distinct = p.acceptKw("DISTINCT")
	for {
		out := SelectOutput{}
		for {
			out.Items = append(out.Items, p.parseSelectItem())
			if !p.acceptPunct(",") {
				break
			}
		}
		if p.acceptKw("INTO") {
			out.Into = p.expectIdent()
		}
		sel.Outputs = append(sel.Outputs, out)
		// Multi-output fragments are ';'-separated and the list ends
		// at FROM (Example 5).
		if p.tok.isPunct(";") && !assignForm {
			save := *p.lex
			savedTok := p.tok
			p.advance()
			if p.isKw("FROM") || p.tok.Kind == TokEOF {
				// That ';' terminated the statement elsewhere — undo.
				*p.lex = save
				p.tok = savedTok
				break
			}
			continue
		}
		break
	}
	p.expectKw("FROM")
	for {
		sel.From = append(sel.From, p.parsePath())
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		sel.Where = p.parseExpr()
	}
	if p.acceptKw("ACCUM") {
		sel.Accum = p.parseAccStmts()
	}
	if p.atPostAccum() {
		sel.PostAccum = p.parseAccStmts()
	}
	if p.isKw("GROUP") {
		p.advance()
		p.expectKw("BY")
		p.parseGroupBy(sel)
	}
	if p.acceptKw("HAVING") {
		sel.Having = p.parseExpr()
	}
	if p.isKw("ORDER") {
		p.advance()
		p.expectKw("BY")
		for {
			key := OrderKey{Expr: p.parseExpr()}
			if p.acceptKw("DESC") {
				key.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		sel.Limit = p.parseExpr()
	}
	if assignForm {
		if len(sel.Outputs) != 1 || len(sel.Outputs[0].Items) != 1 || sel.Outputs[0].Into != "" {
			p.failf("the assignment form S = SELECT ... takes a single bare vertex alias")
		}
		if _, ok := sel.Outputs[0].Items[0].Expr.(*Ident); !ok {
			p.failf("the assignment form S = SELECT ... takes a single bare vertex alias")
		}
	}
	return sel
}

// maxCubeKeys caps CUBE arity (2^m grouping sets).
const maxCubeKeys = 12

// parseGroupBy handles plain key lists plus the GROUPING SETS, CUBE
// and ROLLUP extensions of Example 12 (straightforward accumulator
// sugar, per the paper).
func (p *parser) parseGroupBy(sel *SelectExpr) {
	addKey := func(e Expr) int {
		for i, k := range sel.GroupBy {
			if ExprEqual(k, e) {
				return i
			}
		}
		sel.GroupBy = append(sel.GroupBy, e)
		return len(sel.GroupBy) - 1
	}
	switch {
	case p.isKw("GROUPING"):
		p.advance()
		p.expectKw("SETS")
		p.expectPunct("(")
		for {
			var set []int
			if p.acceptPunct("(") {
				if !p.tok.isPunct(")") {
					for {
						set = append(set, addKey(p.parseExpr()))
						if !p.acceptPunct(",") {
							break
						}
					}
				}
				p.expectPunct(")")
			} else {
				set = append(set, addKey(p.parseExpr()))
			}
			sel.GroupingSets = append(sel.GroupingSets, set)
			if !p.acceptPunct(",") {
				break
			}
		}
		p.expectPunct(")")
	case p.isKw("CUBE"):
		p.advance()
		keys := p.parseKeyList(addKey)
		if len(keys) > maxCubeKeys {
			p.failf("CUBE over %d keys would produce 2^%d grouping sets", len(keys), len(keys))
		}
		for mask := (1 << len(keys)) - 1; mask >= 0; mask-- {
			var set []int
			for i, k := range keys {
				if mask&(1<<i) != 0 {
					set = append(set, k)
				}
			}
			sel.GroupingSets = append(sel.GroupingSets, set)
		}
	case p.isKw("ROLLUP"):
		p.advance()
		keys := p.parseKeyList(addKey)
		for n := len(keys); n >= 0; n-- {
			sel.GroupingSets = append(sel.GroupingSets, append([]int(nil), keys[:n]...))
		}
	default:
		for {
			addKey(p.parseExpr())
			if !p.acceptPunct(",") {
				break
			}
		}
	}
}

func (p *parser) parseKeyList(addKey func(Expr) int) []int {
	p.expectPunct("(")
	var keys []int
	for {
		keys = append(keys, addKey(p.parseExpr()))
		if !p.acceptPunct(",") {
			break
		}
	}
	p.expectPunct(")")
	return keys
}

// atPostAccum consumes POST_ACCUM / POST-ACCUM if present.
func (p *parser) atPostAccum() bool {
	if p.isKw("POST_ACCUM") {
		p.advance()
		return true
	}
	if p.isKw("POST") && p.peek().isPunct("-") {
		p.advance() // POST
		p.advance() // -
		p.expectKw("ACCUM")
		return true
	}
	return false
}

func (p *parser) parseSelectItem() SelectItem {
	item := SelectItem{Expr: p.parseExpr()}
	if p.acceptKw("AS") {
		item.Alias = p.expectIdent()
	}
	return item
}

// parsePath parses Seed:alias ( -(DARPE[:edgeAlias])- Target:alias )*.
func (p *parser) parsePath() PathPattern {
	pat := PathPattern{Src: p.parseStepRef()}
	for p.tok.isPunct("-") {
		p.advance()
		if !p.tok.isPunct("(") {
			p.failf("expected '(' after '-' in path pattern, got %s", p.tok)
		}
		lparenPos := p.tok.Pos
		raw, closeIdx := p.extractParenRaw(lparenPos)
		darpeText, edgeAlias := splitTopLevelAlias(raw)
		expr, err := darpe.Parse(darpeText)
		if err != nil {
			p.failf("bad path expression %q: %v", darpeText, err)
		}
		if edgeAlias != "" {
			if _, single := expr.(*darpe.Symbol); !single {
				p.failf("edge alias %q: variables are only allowed on single-edge patterns (no variables under Kleene stars — Theorem 7.1 tractable class)", edgeAlias)
			}
		}
		// Resync the token stream past ')'.
		p.lex.setPos(closeIdx + 1)
		p.advance()
		p.expectPunct("-")
		hop := Hop{Darpe: expr, DarpeText: darpeText, EdgeAlias: edgeAlias, Target: p.parseStepRef()}
		pat.Hops = append(pat.Hops, hop)
	}
	return pat
}

// extractParenRaw returns the raw text between the '(' at lparenPos
// and its matching ')', plus the index of that ')'.
func (p *parser) extractParenRaw(lparenPos int) (string, int) {
	src := p.lex.src
	depth := 0
	for i := lparenPos; i < len(src); i++ {
		switch src[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return src[lparenPos+1 : i], i
			}
		}
	}
	p.failf("unbalanced '(' in path pattern")
	return "", 0
}

// splitTopLevelAlias splits "E>:e" into ("E>", "e"); a ':' nested in
// parentheses belongs to the DARPE (there is none in the grammar, but
// nesting-aware scanning is cheap insurance).
func splitTopLevelAlias(raw string) (string, string) {
	depth := 0
	for i := 0; i < len(raw); i++ {
		switch raw[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ':':
			if depth == 0 {
				return strings.TrimSpace(raw[:i]), strings.TrimSpace(raw[i+1:])
			}
		}
	}
	return strings.TrimSpace(raw), ""
}

func (p *parser) parseStepRef() StepRef {
	ref := StepRef{Name: p.expectIdent()}
	if p.acceptPunct(":") {
		ref.Alias = p.expectIdent()
	} else {
		ref.Alias = ref.Name
	}
	return ref
}

// ---- ACCUM statement lists ----------------------------------------------------------

func (p *parser) parseAccStmts() []AccStmt {
	var stmts []AccStmt
	for {
		stmts = append(stmts, p.parseAccStmt())
		if !p.acceptPunct(",") {
			break
		}
	}
	return stmts
}

func (p *parser) parseAccStmt() AccStmt {
	// Conditional block: IF cond THEN stmts [ELSE stmts] END
	if p.isKw("IF") {
		p.advance()
		st := AccStmt{Cond: p.parseExpr()}
		p.expectKw("THEN")
		st.Then = p.parseAccStmts()
		if p.acceptKw("ELSE") {
			st.Else = p.parseAccStmts()
		}
		p.expectKw("END")
		return st
	}
	// Typed local declaration: FLOAT salesPrice = expr
	if p.tok.Kind == TokIdent {
		if k, ok := scalarKind(p.tok.Text); ok && p.peek().Kind == TokIdent {
			p.advance()
			tr := TypeRef{Kind: k}
			name := p.expectIdent()
			p.expectPunct("=")
			return AccStmt{LocalType: &tr, Lhs: &Ident{Name: name}, Op: "=", Rhs: p.parseExpr()}
		}
	}
	lhs := p.parsePostfix()
	op := p.accumOp()
	return AccStmt{Lhs: lhs, Op: op, Rhs: p.parseExpr()}
}

// ---- expressions -----------------------------------------------------------------------

func (p *parser) parseExpr() Expr { return p.parseOr() }

func (p *parser) parseOr() Expr {
	e := p.parseAnd()
	for p.isKw("OR") {
		p.advance()
		e = &Binary{Op: "or", L: e, R: p.parseAnd()}
	}
	return e
}

func (p *parser) parseAnd() Expr {
	e := p.parseNot()
	for p.isKw("AND") {
		p.advance()
		e = &Binary{Op: "and", L: e, R: p.parseNot()}
	}
	return e
}

func (p *parser) parseNot() Expr {
	if p.isKw("NOT") {
		p.advance()
		return &Unary{Op: "not", X: p.parseNot()}
	}
	return p.parseCmp()
}

var cmpOps = map[string]string{
	"=": "==", "==": "==", "!=": "!=", "<>": "!=",
	"<": "<", "<=": "<=", ">": ">", ">=": ">=",
}

func (p *parser) parseCmp() Expr {
	e := p.parseAdd()
	if p.tok.Kind == TokPunct {
		if op, ok := cmpOps[p.tok.Text]; ok {
			p.advance()
			return &Binary{Op: op, L: e, R: p.parseAdd()}
		}
	}
	if p.isKw("IN") {
		p.advance()
		return &Binary{Op: "in", L: e, R: p.parseAdd()}
	}
	if p.isKw("NOT") && strings.EqualFold(p.peek().Text, "IN") {
		p.advance()
		p.advance()
		return &Unary{Op: "not", X: &Binary{Op: "in", L: e, R: p.parseAdd()}}
	}
	return e
}

func (p *parser) parseAdd() Expr {
	e := p.parseMul()
	for p.tok.isPunct("+") || p.tok.isPunct("-") {
		op := p.tok.Text
		p.advance()
		e = &Binary{Op: op, L: e, R: p.parseMul()}
	}
	return e
}

func (p *parser) parseMul() Expr {
	e := p.parseUnary()
	for p.tok.isPunct("*") || p.tok.isPunct("/") || p.tok.isPunct("%") {
		op := p.tok.Text
		p.advance()
		e = &Binary{Op: op, L: e, R: p.parseUnary()}
	}
	return e
}

func (p *parser) parseUnary() Expr {
	if p.tok.isPunct("-") {
		p.advance()
		return &Unary{Op: "-", X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() Expr {
	e := p.parsePrimary()
	for {
		switch {
		case p.tok.isPunct("."):
			p.advance()
			switch p.tok.Kind {
			case TokIdent:
				name := p.expectIdent()
				if p.tok.isPunct("(") {
					e = &Call{Recv: e, Name: name, Args: p.parseArgs()}
				} else {
					e = &AttrRef{Obj: e, Name: name}
				}
			case TokVAcc:
				ref := &VertexAccRef{Vertex: e, Name: p.tok.Text}
				p.advance()
				if p.acceptPunct("'") {
					ref.Prev = true
				}
				e = ref
			default:
				p.failf("expected attribute or @accumulator after '.', got %s", p.tok)
			}
		default:
			return e
		}
	}
}

func (p *parser) parseArgs() []Expr {
	p.expectPunct("(")
	var args []Expr
	if !p.tok.isPunct(")") {
		for {
			if p.tok.isPunct("*") { // count(*)
				p.advance()
				args = append(args, &Ident{Name: "*"})
			} else {
				args = append(args, p.parseExpr())
			}
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	p.expectPunct(")")
	return args
}

func (p *parser) parsePrimary() Expr {
	switch {
	case p.tok.Kind == TokNumber:
		text := p.tok.Text
		p.advance()
		if strings.ContainsAny(text, ".eE") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				p.failf("bad number %q: %v", text, err)
			}
			return &Lit{Val: value.NewFloat(f)}
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			p.failf("bad number %q: %v", text, err)
		}
		return &Lit{Val: value.NewInt(i)}
	case p.tok.Kind == TokString:
		v := value.NewString(p.tok.Text)
		p.advance()
		return &Lit{Val: v}
	case p.tok.Kind == TokGAcc:
		e := &GlobalAccRef{Name: p.tok.Text}
		p.advance()
		return e
	case p.isKw("TRUE"):
		p.advance()
		return &Lit{Val: value.NewBool(true)}
	case p.isKw("FALSE"):
		p.advance()
		return &Lit{Val: value.NewBool(false)}
	case p.isKw("CASE"):
		return p.parseCase()
	case p.tok.Kind == TokIdent:
		name := p.expectIdent()
		if p.tok.isPunct("(") {
			return &Call{Name: name, Args: p.parseArgs()}
		}
		return &Ident{Name: name}
	case p.tok.isPunct("("):
		return p.parseParenExpr()
	default:
		p.failf("unexpected %s in expression", p.tok)
		return nil
	}
}

// parseCase parses CASE WHEN c THEN e [WHEN ...]* [ELSE e] END.
func (p *parser) parseCase() Expr {
	p.expectKw("CASE")
	ce := &CaseExpr{}
	for p.isKw("WHEN") {
		p.advance()
		arm := CaseWhen{Cond: p.parseExpr()}
		p.expectKw("THEN")
		arm.Then = p.parseExpr()
		ce.Whens = append(ce.Whens, arm)
	}
	if len(ce.Whens) == 0 {
		p.failf("CASE requires at least one WHEN arm")
	}
	if p.acceptKw("ELSE") {
		ce.Else = p.parseExpr()
	}
	p.expectKw("END")
	return ce
}

// parseParenExpr parses (e), tuples (e1, e2) and the arrow-tuple
// grouped-input form (k1, k2 -> a1, a2). A "null" identifier inside an
// arrow tuple denotes a skipped key or aggregate (Example 12's
// GROUPING SETS simulation).
func (p *parser) parseParenExpr() Expr {
	p.expectPunct("(")
	var first []Expr
	for {
		first = append(first, p.parseExpr())
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptPunct("->") {
		var vals []Expr
		for {
			vals = append(vals, p.parseExpr())
			if !p.acceptPunct(",") {
				break
			}
		}
		p.expectPunct(")")
		return &ArrowTuple{Keys: first, Vals: vals}
	}
	p.expectPunct(")")
	if len(first) == 1 {
		return first[0]
	}
	return &TupleExpr{Elems: first}
}
