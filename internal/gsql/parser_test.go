package gsql

import (
	"strings"
	"testing"

	"gsqlgo/internal/accum"
	"gsqlgo/internal/darpe"
	"gsqlgo/internal/value"
)

// figure2 is the multi-grouping revenue query of Example 4 (Figure 2),
// reconstructed per the paper's description.
const figure2 = `
CREATE QUERY RevenuePerToyAndCustomer() FOR GRAPH SalesGraph {
  SumAccum<float> @@totalRevenue;
  SumAccum<float> @revenuePerToy;
  SumAccum<float> @revenuePerCust;

  S = SELECT c
      FROM Customer:c -(Bought>:e)- Product:p
      WHERE p.category == "toy"
      ACCUM float salesPrice = e.quantity * p.listPrice * (1.0 - e.discount),
            c.@revenuePerCust += salesPrice,
            p.@revenuePerToy += salesPrice,
            @@totalRevenue += salesPrice;
}
`

// figure3 is the two-pass recommender of Example 6 (Figure 3).
const figure3 = `
CREATE QUERY TopKToys (vertex<Customer> c, int k) FOR GRAPH SalesGraph {
  SumAccum<float> @lc, @inCommon, @rank;

  SELECT DISTINCT o INTO OthersWithCommonLikes
  FROM   Customer:c -(Likes>)- Product:t -(<Likes)- Customer:o
  WHERE  o <> c AND t.category == 'Toys'
  ACCUM  o.@inCommon += 1
  POST_ACCUM o.@lc = log(1 + o.@inCommon);

  SELECT t.name, t.@rank AS rank INTO Recommended
  FROM   OthersWithCommonLikes:o -(Likes>)- Product:t
  WHERE  t.category == 'Toys' AND c <> o
  ACCUM  t.@rank += o.@lc
  ORDER BY t.@rank DESC
  LIMIT k;

  RETURN Recommended;
}
`

// figure4 is the PageRank query of Example 7 (Figure 4), with the
// standard explicit initializer for @@maxDifference.
const figure4 = `
CREATE QUERY PageRank (float maxChange, int maxIteration, float dampingFactor) {
  MaxAccum<float> @@maxDifference = 9999;   // max score change in an iteration
  SumAccum<float> @received_score;          // sum of scores received from neighbors
  SumAccum<float> @score = 1;               // initial score for every vertex is 1.

  AllV = {Page.*};
  WHILE @@maxDifference > maxChange LIMIT maxIteration DO
     @@maxDifference = 0;
     S = SELECT v
         FROM       AllV:v -(LinkTo>)- Page:n
         ACCUM      n.@received_score += v.@score/v.outdegree()
         POST-ACCUM v.@score = 1-dampingFactor + dampingFactor * v.@received_score,
                    v.@received_score = 0,
                    @@maxDifference += abs(v.@score - v.@score');
  END;
}
`

// qnQuery is the diamond-chain path-counting query of Section 7.1.
const qnQuery = `
CREATE QUERY Qn(string srcName, string tgtName) {
  SumAccum<int> @pathCount;

  R = SELECT t
      FROM V:s -(E>*)- V:t
      WHERE s.name == srcName AND t.name == tgtName
      ACCUM t.@pathCount += 1;

  PRINT R[R.name, R.@pathCount];
}
`

// example5 exercises the multi-output SELECT of Example 5.
const example5 = `
CREATE QUERY RevenueTables() FOR GRAPH SalesGraph {
  SumAccum<float> @@totalRevenue;
  SumAccum<float> @revenuePerToy;
  SumAccum<float> @revenuePerCust;

  SELECT c.name, c.@revenuePerCust INTO PerCust;
         t.name, t.@revenuePerToy INTO PerToy;
         @@totalRevenue AS rev INTO Total
  FROM   Customer:c -(Bought>:e)- Product:t
  WHERE  t.category == "toy"
  ACCUM  float salesPrice = e.quantity * t.listPrice * (1.0 - e.discount),
         c.@revenuePerCust += salesPrice,
         t.@revenuePerToy += salesPrice,
         @@totalRevenue += salesPrice;
}
`

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseFigure2(t *testing.T) {
	f := mustParse(t, figure2)
	if len(f.Queries) != 1 {
		t.Fatalf("queries = %d", len(f.Queries))
	}
	q := f.Queries[0]
	if q.Name != "RevenuePerToyAndCustomer" || q.GraphName != "SalesGraph" {
		t.Errorf("header: %s / %s", q.Name, q.GraphName)
	}
	if len(q.Decls) != 3 {
		t.Fatalf("decls = %d", len(q.Decls))
	}
	if !q.Decls[0].Global || q.Decls[0].Name != "totalRevenue" {
		t.Error("first decl must be global @@totalRevenue")
	}
	if q.Decls[1].Global || q.Decls[1].Spec.Kind != accum.KindSum {
		t.Error("second decl must be vertex SumAccum")
	}
	if len(q.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(q.Stmts))
	}
	as, ok := q.Stmts[0].(*AssignStmt)
	if !ok || as.Name != "S" {
		t.Fatalf("statement: %T", q.Stmts[0])
	}
	sel := as.Rhs.(*SelectExpr)
	if len(sel.From) != 1 || len(sel.From[0].Hops) != 1 {
		t.Fatalf("from shape: %+v", sel.From)
	}
	hop := sel.From[0].Hops[0]
	if hop.EdgeAlias != "e" || hop.DarpeText != "Bought>" {
		t.Errorf("hop: %q alias %q", hop.DarpeText, hop.EdgeAlias)
	}
	if len(sel.Accum) != 4 {
		t.Fatalf("accum stmts = %d", len(sel.Accum))
	}
	if sel.Accum[0].LocalType == nil || sel.Accum[0].LocalType.Kind != value.KindFloat {
		t.Error("first accum stmt must be a typed local declaration")
	}
	if sel.Accum[3].Op != "+=" {
		t.Error("global accumulation must be +=")
	}
}

func TestParseFigure3(t *testing.T) {
	f := mustParse(t, figure3)
	q := f.Queries[0]
	if len(q.Params) != 2 {
		t.Fatalf("params = %d", len(q.Params))
	}
	if q.Params[0].Type.Kind != value.KindVertex || q.Params[0].Type.VertexType != "Customer" {
		t.Errorf("param 0: %+v", q.Params[0])
	}
	if len(q.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(q.Stmts))
	}
	sel1 := q.Stmts[0].(*SelectStmt).Sel
	if !sel1.Distinct || sel1.Outputs[0].Into != "OthersWithCommonLikes" {
		t.Errorf("block 1 outputs: %+v", sel1.Outputs)
	}
	if len(sel1.From[0].Hops) != 2 {
		t.Fatalf("block 1 hops = %d", len(sel1.From[0].Hops))
	}
	if sel1.From[0].Hops[1].DarpeText != "<Likes" {
		t.Errorf("reverse hop text %q", sel1.From[0].Hops[1].DarpeText)
	}
	if len(sel1.PostAccum) != 1 {
		t.Error("block 1 must have POST_ACCUM")
	}
	sel2 := q.Stmts[1].(*SelectStmt).Sel
	if len(sel2.OrderBy) != 1 || !sel2.OrderBy[0].Desc {
		t.Error("block 2 ORDER BY DESC missing")
	}
	if sel2.Limit == nil {
		t.Error("block 2 LIMIT missing")
	}
	if _, ok := q.Stmts[2].(*ReturnStmt); !ok {
		t.Error("third statement must be RETURN")
	}
}

func TestParseFigure4(t *testing.T) {
	f := mustParse(t, figure4)
	q := f.Queries[0]
	if len(q.Decls) != 3 {
		t.Fatalf("decls = %d", len(q.Decls))
	}
	if q.Decls[0].Init == nil || q.Decls[2].Init == nil {
		t.Error("initializers missing")
	}
	if len(q.Stmts) != 2 {
		t.Fatalf("stmts = %d: %#v", len(q.Stmts), q.Stmts)
	}
	if _, ok := q.Stmts[0].(*AssignStmt); !ok {
		t.Error("AllV assignment missing")
	}
	w, ok := q.Stmts[1].(*WhileStmt)
	if !ok {
		t.Fatalf("while: %T", q.Stmts[1])
	}
	if w.Limit == nil {
		t.Error("WHILE LIMIT missing")
	}
	if len(w.Body) != 2 {
		t.Fatalf("while body = %d", len(w.Body))
	}
	if _, ok := w.Body[0].(*AccAssignStmt); !ok {
		t.Errorf("expected @@maxDifference = 0, got %T", w.Body[0])
	}
	sel := w.Body[1].(*AssignStmt).Rhs.(*SelectExpr)
	if len(sel.PostAccum) != 3 {
		t.Fatalf("POST-ACCUM stmts = %d", len(sel.PostAccum))
	}
	// The hyphenated POST-ACCUM form parsed; the primed accumulator
	// reference appears in the third statement.
	prev := false
	var findPrev func(e Expr)
	findPrev = func(e Expr) {
		switch n := e.(type) {
		case *VertexAccRef:
			if n.Prev {
				prev = true
			}
		case *Binary:
			findPrev(n.L)
			findPrev(n.R)
		case *Unary:
			findPrev(n.X)
		case *Call:
			for _, a := range n.Args {
				findPrev(a)
			}
		}
	}
	findPrev(sel.PostAccum[2].Rhs)
	if !prev {
		t.Error("v.@score' (previous value) not parsed")
	}
}

func TestParseQn(t *testing.T) {
	f := mustParse(t, qnQuery)
	q := f.Queries[0]
	sel := q.Stmts[0].(*AssignStmt).Rhs.(*SelectExpr)
	hop := sel.From[0].Hops[0]
	if hop.DarpeText != "E>*" {
		t.Errorf("star hop text %q", hop.DarpeText)
	}
	if !darpe.HasKleene(hop.Darpe) {
		t.Error("hop must contain a Kleene star")
	}
	pr, ok := q.Stmts[1].(*PrintStmt)
	if !ok {
		t.Fatalf("print: %T", q.Stmts[1])
	}
	if len(pr.Items) != 1 || len(pr.Items[0].Projections) != 2 {
		t.Errorf("print projections: %+v", pr.Items)
	}
}

func TestParseExample5MultiOutput(t *testing.T) {
	f := mustParse(t, example5)
	sel := f.Queries[0].Stmts[0].(*SelectStmt).Sel
	if len(sel.Outputs) != 3 {
		t.Fatalf("outputs = %d", len(sel.Outputs))
	}
	into := []string{sel.Outputs[0].Into, sel.Outputs[1].Into, sel.Outputs[2].Into}
	if into[0] != "PerCust" || into[1] != "PerToy" || into[2] != "Total" {
		t.Errorf("INTO targets: %v", into)
	}
	if sel.Outputs[2].Items[0].Alias != "rev" {
		t.Error("AS rev alias missing")
	}
}

func TestParseTypedefAndHeap(t *testing.T) {
	src := `
TYPEDEF TUPLE<score float, name string> Scored;
CREATE QUERY TopComments(int k) {
  HeapAccum<Scored>(10, score DESC, name ASC) @@top;
  AndAccum @@all;
  OrAccum @@any;
  MapAccum<string, SumAccum<int>> @@byCity;
  MapAccum<int, int> @@sums;
  GroupByAccum<string city, int year, SumAccum<float>, AvgAccum<float>> @@gs;
  @@any += true;
}
`
	f := mustParse(t, src)
	if len(f.Typedefs) != 1 || f.Typedefs[0].Name != "Scored" {
		t.Fatalf("typedefs: %+v", f.Typedefs)
	}
	q := f.Queries[0]
	specs := map[string]*accum.Spec{}
	for _, d := range q.Decls {
		specs[d.Name] = d.Spec
	}
	if specs["top"].Kind != accum.KindHeap || specs["top"].Capacity != 10 || len(specs["top"].Sort) != 2 {
		t.Errorf("heap spec: %+v", specs["top"])
	}
	if !specs["top"].Sort[0].Desc || specs["top"].Sort[1].Desc {
		t.Error("heap sort directions wrong")
	}
	if specs["byCity"].Kind != accum.KindMap || specs["byCity"].Nested[0].Kind != accum.KindSum {
		t.Error("map spec wrong")
	}
	if specs["sums"].Nested[0].Kind != accum.KindSum {
		t.Error("scalar map value must desugar to SumAccum")
	}
	gs := specs["gs"]
	if gs.Kind != accum.KindGroupBy || len(gs.Keys) != 2 || len(gs.Nested) != 2 {
		t.Errorf("groupby spec: %+v", gs)
	}
	if gs.KeyNames[0] != "city" || gs.KeyNames[1] != "year" {
		t.Errorf("groupby key names: %v", gs.KeyNames)
	}
}

func TestParseArrowTuple(t *testing.T) {
	src := `
CREATE QUERY G() {
  GroupByAccum<string k1, SumAccum<float>> @@a;
  S = SELECT v FROM V:v
      ACCUM @@a += (v.name -> v.weight, v.height);
}
`
	f := mustParse(t, src)
	sel := f.Queries[0].Stmts[0].(*AssignStmt).Rhs.(*SelectExpr)
	at, ok := sel.Accum[0].Rhs.(*ArrowTuple)
	if !ok {
		t.Fatalf("rhs: %T", sel.Accum[0].Rhs)
	}
	if len(at.Keys) != 1 || len(at.Vals) != 2 {
		t.Errorf("arrow tuple arity: %d -> %d", len(at.Keys), len(at.Vals))
	}
}

func TestParseIfAndComparisons(t *testing.T) {
	src := `
CREATE QUERY C(int x) {
  SumAccum<int> @@n;
  IF x > 3 AND NOT x >= 10 OR x <> 0 THEN
    @@n += 1;
  ELSE
    @@n += 2;
  END;
}
`
	f := mustParse(t, src)
	ifs, ok := f.Queries[0].Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("if: %T", f.Queries[0].Stmts[0])
	}
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Error("if branches wrong")
	}
}

func TestParseGroupByHaving(t *testing.T) {
	src := `
CREATE QUERY G() {
  SELECT c.city, count(*) AS n, avg(c.age) INTO ByCity
  FROM Customer:c
  GROUP BY c.city
  HAVING count(*) > 2
  ORDER BY c.city ASC
  LIMIT 10;
}
`
	f := mustParse(t, src)
	sel := f.Queries[0].Stmts[0].(*SelectStmt).Sel
	if len(sel.GroupBy) != 1 || sel.Having == nil || len(sel.OrderBy) != 1 || sel.Limit == nil {
		t.Errorf("select clauses: %+v", sel)
	}
	call := sel.Outputs[0].Items[1].Expr.(*Call)
	if call.Name != "count" || len(call.Args) != 1 {
		t.Errorf("count(*): %+v", call)
	}
}

func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"CREATE FOO", "expected QUERY"},
		{"CREATE QUERY q() { p = :s -(E>)- :t; }", "path variables"},
		{"CREATE QUERY q() { S = SELECT v FROM V:v -(E>*:e)- V:t; }", "Kleene"},
		{"CREATE QUERY q() { S = SELECT v FROM V:v -(|E)- V:t; }", "bad path expression"},
		{"CREATE QUERY q() { SumAccum<bogus> @x; }", "scalar type"},
		{"CREATE QUERY q() { HeapAccum<NoSuchTuple>(3, a) @@h; }", "undefined tuple"},
		{"CREATE QUERY q(vertex<T> v) { WHILE true DO SumAccum<int> @x; END; }", "top level"},
		{"CREATE QUERY q() { S = SELECT a, b FROM V:v; }", "single bare vertex alias"},
		{"CREATE QUERY q() { x = 1 }", "expected \";\""},
		{"CREATE QUERY q() { @@x = ; }", "unexpected"},
		{"CREATE QUERY q() { PRINT 'unterminated ; }", "unterminated"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) must fail", c.src)
			continue
		}
		if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	l := newLexer(`foo 12 3.5 1e3 "s\"x" 'lit' @a @@b += <> .. // comment
/* block */ #! line`)
	var kinds []TokKind
	var texts []string
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"foo", "12", "3.5", "1e3", `s"x`, "lit", "a", "b", "+=", "<>", ".."}
	if len(texts) != len(want) {
		t.Fatalf("tokens: %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[4] != TokString || kinds[5] != TokString {
		t.Error("string kinds wrong")
	}
	if kinds[6] != TokVAcc || kinds[7] != TokGAcc {
		t.Error("accumulator token kinds wrong")
	}
}

func TestLexerPrimeAfterAccum(t *testing.T) {
	l := newLexer(`v.@score' x`)
	texts := []string{}
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	// v . @score ' x
	if len(texts) != 5 || texts[3] != "'" {
		t.Fatalf("tokens: %v", texts)
	}
}
