// Package gsql implements the front end of the GSQL subset described
// in the paper: a lexer, a recursive-descent parser and an abstract
// syntax tree covering CREATE QUERY with parameters, accumulator
// declarations (vertex-attached @ and global @@), multi-block bodies
// with SELECT / FROM / WHERE / ACCUM / POST-ACCUM clauses, multi-output
// SELECT ... INTO, SQL-borrowed GROUP BY / HAVING / ORDER BY / LIMIT,
// the control-flow primitives WHILE and IF of Section 5, TYPEDEF TUPLE
// for HeapAccum, PRINT and RETURN.
package gsql

import "fmt"

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber // integer or float literal
	TokString
	TokVAcc // @name
	TokGAcc // @@name
	TokPunct
)

// Token is one lexical token. Text holds the identifier/number/string
// payload or the punctuation spelling; for accumulator tokens it holds
// the bare name (without @/@@).
type Token struct {
	Kind TokKind
	Text string
	Pos  int // byte offset of the token start
	Line int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokNumber:
		return fmt.Sprintf("number %s", t.Text)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	case TokVAcc:
		return "@" + t.Text
	case TokGAcc:
		return "@@" + t.Text
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// isPunct reports whether the token is the given punctuation.
func (t Token) isPunct(s string) bool { return t.Kind == TokPunct && t.Text == s }
