package gsql

import (
	"strings"
	"testing"

	"gsqlgo/internal/accum"
	"gsqlgo/internal/value"
)

func TestParseSemanticsAnnotation(t *testing.T) {
	for src, want := range map[string]string{
		`CREATE QUERY q() SEMANTICS nre {}`:                      "nre",
		`CREATE QUERY q() FOR GRAPH g SEMANTICS asp {}`:          "asp",
		`CREATE QUERY q(int x) SEMANTICS non_repeated_vertex {}`: "non_repeated_vertex",
		`CREATE QUERY q() {}`:                                    "",
	} {
		f := mustParse(t, src)
		if got := f.Queries[0].Semantics; got != want {
			t.Errorf("%q: semantics %q, want %q", src, got, want)
		}
	}
	if _, err := Parse(`CREATE QUERY q() SEMANTICS martian {}`); err == nil || !strings.Contains(err.Error(), "unknown semantics") {
		t.Errorf("bad semantics error: %v", err)
	}
}

func TestParseConditionalAccum(t *testing.T) {
	src := `
CREATE QUERY q() {
  SumAccum<int> @@a, @@b;
  S = SELECT v FROM V:v -(E>)- V:w
      ACCUM IF v.x > 1 THEN
              @@a += 1, @@b += 2
            ELSE
              IF v.x == 0 THEN @@b += 3 END
            END,
            @@a += 10;
}
`
	f := mustParse(t, src)
	sel := f.Queries[0].Stmts[0].(*AssignStmt).Rhs.(*SelectExpr)
	if len(sel.Accum) != 2 {
		t.Fatalf("accum stmts = %d", len(sel.Accum))
	}
	cond := sel.Accum[0]
	if cond.Cond == nil || len(cond.Then) != 2 || len(cond.Else) != 1 {
		t.Fatalf("conditional shape: %+v", cond)
	}
	if cond.Else[0].Cond == nil {
		t.Error("nested conditional lost")
	}
	if sel.Accum[1].Cond != nil {
		t.Error("trailing plain statement misparsed")
	}
}

func TestParseCaseAndIn(t *testing.T) {
	src := `
CREATE QUERY q() {
  x = CASE WHEN 1 > 2 THEN "a" WHEN 2 > 1 THEN "b" ELSE "c" END;
  y = CASE WHEN true THEN 1 END;
  S = SELECT v FROM V:v WHERE v.name IN ("a", "b") AND NOT v.name IN ("z");
}
`
	f := mustParse(t, src)
	ce := f.Queries[0].Stmts[0].(*AssignStmt).Rhs.(*CaseExpr)
	if len(ce.Whens) != 2 || ce.Else == nil {
		t.Errorf("case shape: %+v", ce)
	}
	ce2 := f.Queries[0].Stmts[1].(*AssignStmt).Rhs.(*CaseExpr)
	if ce2.Else != nil {
		t.Error("ELSE-less case must have nil Else")
	}
	if _, err := Parse(`CREATE QUERY q() { x = CASE ELSE 1 END; }`); err == nil {
		t.Error("CASE without WHEN must fail")
	}
	where := f.Queries[0].Stmts[2].(*AssignStmt).Rhs.(*SelectExpr).Where
	and, ok := where.(*Binary)
	if !ok || and.Op != "and" {
		t.Fatalf("where shape: %T", where)
	}
	if in, ok := and.L.(*Binary); !ok || in.Op != "in" {
		t.Errorf("IN shape: %+v", and.L)
	}
	if not, ok := and.R.(*Unary); !ok || not.Op != "not" {
		t.Errorf("NOT IN shape: %+v", and.R)
	}
}

func TestParseForeach(t *testing.T) {
	src := `
CREATE QUERY q() {
  SetAccum<int> @@s;
  SumAccum<int> @@t;
  FOREACH x IN @@s DO
    @@t += x;
    FOREACH y IN @@s DO
      @@t += y;
    END;
  END;
}
`
	f := mustParse(t, src)
	fe := f.Queries[0].Stmts[0].(*ForeachStmt)
	if fe.Var != "x" || len(fe.Body) != 2 {
		t.Fatalf("foreach shape: %+v", fe)
	}
	if _, ok := fe.Body[1].(*ForeachStmt); !ok {
		t.Error("nested foreach lost")
	}
}

func TestParseGroupingSetsCubeRollup(t *testing.T) {
	parseSel := func(clause string) *SelectExpr {
		t.Helper()
		f := mustParse(t, `
CREATE QUERY q() {
  SELECT a.x, count(*) INTO T FROM V:a GROUP BY `+clause+`;
}`)
		return f.Queries[0].Stmts[0].(*SelectStmt).Sel
	}
	gs := parseSel("GROUPING SETS ((a.x, a.y), (a.z), ())")
	if len(gs.GroupBy) != 3 {
		t.Errorf("canonical keys = %d, want 3", len(gs.GroupBy))
	}
	if len(gs.GroupingSets) != 3 || len(gs.GroupingSets[0]) != 2 || len(gs.GroupingSets[1]) != 1 || len(gs.GroupingSets[2]) != 0 {
		t.Errorf("grouping sets = %v", gs.GroupingSets)
	}
	cube := parseSel("CUBE (a.x, a.y)")
	if len(cube.GroupingSets) != 4 {
		t.Errorf("cube sets = %d, want 4", len(cube.GroupingSets))
	}
	rollup := parseSel("ROLLUP (a.x, a.y, a.z)")
	if len(rollup.GroupingSets) != 4 {
		t.Errorf("rollup sets = %d, want 4", len(rollup.GroupingSets))
	}
	for i, set := range rollup.GroupingSets {
		if len(set) != 3-i {
			t.Errorf("rollup set %d size %d", i, len(set))
		}
	}
	plain := parseSel("a.x, a.y")
	if plain.GroupingSets != nil || len(plain.GroupBy) != 2 {
		t.Errorf("plain group by: %v / %v", plain.GroupBy, plain.GroupingSets)
	}
	// Shared keys dedupe in the canonical list.
	shared := parseSel("GROUPING SETS ((a.x, a.y), (a.x))")
	if len(shared.GroupBy) != 2 {
		t.Errorf("shared keys = %d, want 2", len(shared.GroupBy))
	}
	if _, err := Parse(`CREATE QUERY q() { SELECT count(*) INTO T FROM V:a GROUP BY CUBE (a.a1, a.a2, a.a3, a.a4, a.a5, a.a6, a.a7, a.a8, a.a9, a.b1, a.b2, a.b3, a.b4); }`); err == nil {
		t.Error("oversized CUBE must fail")
	}
}

func TestParseSetOps(t *testing.T) {
	f := mustParse(t, `
CREATE QUERY q() {
  S = A UNION B INTERSECT C MINUS D;
}`)
	so := f.Queries[0].Stmts[0].(*AssignStmt).Rhs.(*SetOpExpr)
	if so.Op != "minus" {
		t.Fatalf("outermost op %q", so.Op)
	}
	inner := so.L.(*SetOpExpr)
	if inner.Op != "intersect" || inner.L.(*SetOpExpr).Op != "union" {
		t.Error("set-op associativity wrong")
	}
}

func TestParseBitwiseDecls(t *testing.T) {
	f := mustParse(t, `
CREATE QUERY q() {
  BitwiseAndAccum @@a;
  BitwiseOrAccum @@o;
}`)
	decls := f.Queries[0].Decls
	if decls[0].Spec.Kind != accum.KindBitwiseAnd || decls[1].Spec.Kind != accum.KindBitwiseOr {
		t.Errorf("bitwise decl kinds: %v %v", decls[0].Spec.Kind, decls[1].Spec.Kind)
	}
}

func TestExprEqual(t *testing.T) {
	parse := func(src string) Expr {
		t.Helper()
		f := mustParse(t, "CREATE QUERY q() { x = "+src+"; }")
		return f.Queries[0].Stmts[0].(*AssignStmt).Rhs
	}
	same := [][2]string{
		{`a.x + 1`, `a.x + 1`},
		{`year(m.d)`, `year(m.d)`},
		{`CASE WHEN a.x THEN 1 ELSE 2 END`, `CASE WHEN a.x THEN 1 ELSE 2 END`},
		{`(1, 2)`, `(1, 2)`},
		{`- a.x`, `-a.x`},
	}
	diff := [][2]string{
		{`a.x + 1`, `a.x + 2`},
		{`a.x`, `a.y`},
		{`year(m.d)`, `month(m.d)`},
		{`a.x`, `1`},
		{`CASE WHEN a.x THEN 1 END`, `CASE WHEN a.x THEN 1 ELSE 2 END`},
	}
	for _, pair := range same {
		if !ExprEqual(parse(pair[0]), parse(pair[1])) {
			t.Errorf("ExprEqual(%q, %q) = false", pair[0], pair[1])
		}
	}
	for _, pair := range diff {
		if ExprEqual(parse(pair[0]), parse(pair[1])) {
			t.Errorf("ExprEqual(%q, %q) = true", pair[0], pair[1])
		}
	}
	// Accumulator references.
	sel := mustParse(t, `CREATE QUERY q() { S = SELECT v FROM V:v WHERE v.@a == v.@a' AND @@g == 0; }`)
	w := sel.Queries[0].Stmts[0].(*AssignStmt).Rhs.(*SelectExpr).Where.(*Binary)
	eq := w.L.(*Binary)
	if ExprEqual(eq.L, eq.R) {
		t.Error("v.@a and v.@a' must differ")
	}
	if !ExprEqual(eq.L, eq.L) {
		t.Error("self equality failed")
	}
}

func TestValueKindNamesInSpecs(t *testing.T) {
	// Regression: all scalar type names round-trip through the parser.
	src := `
CREATE QUERY q() {
  SumAccum<int> @@a;
  SumAccum<uint> @@b;
  SumAccum<float> @@c;
  SumAccum<double> @@d;
  SumAccum<string> @@e;
  MinAccum<datetime> @@f;
  MinAccum<bool> @@g;
  MinAccum<vertex> @@h;
}
`
	f := mustParse(t, src)
	kinds := []value.Kind{
		value.KindInt, value.KindInt, value.KindFloat, value.KindFloat,
		value.KindString, value.KindDatetime, value.KindBool, value.KindVertex,
	}
	for i, d := range f.Queries[0].Decls {
		if d.Spec.Elem != kinds[i] {
			t.Errorf("decl %d elem = %v, want %v", i, d.Spec.Elem, kinds[i])
		}
	}
}
