package gsql

import (
	"gsqlgo/internal/accum"
	"gsqlgo/internal/darpe"
	"gsqlgo/internal/value"
)

// File is a parsed GSQL source: tuple typedefs and queries.
type File struct {
	Typedefs []*accum.TupleType
	Queries  []*Query
}

// Query is one CREATE QUERY definition.
type Query struct {
	Name      string
	Params    []Param
	GraphName string // FOR GRAPH name; informational
	// Semantics optionally overrides the engine's path-legality flavor
	// for this query ("asp", "nre", "nrv", "exists") — the per-query
	// semantics selection Section 6.1 calls for.
	Semantics string
	Decls     []*AccumDecl
	Stmts     []Stmt
}

// Param is a query parameter.
type Param struct {
	Name string
	Type TypeRef
}

// TypeRef is a scalar or vertex parameter/local type.
type TypeRef struct {
	Kind       value.Kind // scalar kind; KindVertex for vertex params
	VertexType string     // constraint for vertex<T>; empty = any
}

// AccumDecl declares one accumulator name (the paper's "@" vertex
// accumulators — one instance per vertex — and "@@" globals).
type AccumDecl struct {
	Name   string
	Global bool
	Spec   *accum.Spec
	Init   Expr // optional initializer (e.g. SumAccum<float> @score = 1)
}

// ---- statements -------------------------------------------------------------

// Stmt is a query-body statement.
type Stmt interface{ stmtNode() }

// AssignStmt assigns a vertex set, table or scalar local: S = {T.*},
// S = SELECT ..., x = expr.
type AssignStmt struct {
	Name string
	Rhs  Expr // VSetLit, SelectExpr or scalar expression
}

func (*AssignStmt) stmtNode() {}

// AccAssignStmt updates an accumulator at statement level:
// @@acc = expr; or @@acc += expr;.
type AccAssignStmt struct {
	Target Expr // GlobalAccRef or VertexAccRef
	Op     string
	Rhs    Expr
}

func (*AccAssignStmt) stmtNode() {}

// SelectStmt is a standalone SELECT block (with INTO outputs).
type SelectStmt struct {
	Sel *SelectExpr
}

func (*SelectStmt) stmtNode() {}

// WhileStmt is WHILE cond [LIMIT n] DO body END.
type WhileStmt struct {
	Cond  Expr
	Limit Expr // optional iteration cap
	Body  []Stmt
}

func (*WhileStmt) stmtNode() {}

// IfStmt is IF cond THEN body [ELSE body] END.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (*IfStmt) stmtNode() {}

// PrintStmt emits values or projected vertex-set tables.
type PrintStmt struct {
	Items []PrintItem
}

func (*PrintStmt) stmtNode() {}

// PrintItem is one PRINT operand: an expression, or the projection
// form R[e1, e2, ...] over a vertex set R.
type PrintItem struct {
	Expr        Expr
	Projections []SelectItem // non-nil for the R[...] form
}

// ReturnStmt returns a value or named table from the query.
type ReturnStmt struct {
	Expr Expr
}

func (*ReturnStmt) stmtNode() {}

// ForeachStmt is FOREACH x IN expr DO body END: iterate over a list,
// set or map value (map entries bind as (key, value) tuples), binding
// the element to a local variable.
type ForeachStmt struct {
	Var  string
	Coll Expr
	Body []Stmt
}

func (*ForeachStmt) stmtNode() {}

// ---- SELECT structure --------------------------------------------------------

// SelectExpr is the full SELECT block. When used as the right-hand
// side of an assignment its first output must be a single bare vertex
// alias (the resulting vertex set).
type SelectExpr struct {
	Distinct  bool
	Outputs   []SelectOutput
	From      []PathPattern
	Where     Expr
	Accum     []AccStmt
	PostAccum []AccStmt
	GroupBy   []Expr
	// GroupingSets holds the grouping-attribute subsets of GROUP BY
	// GROUPING SETS / CUBE / ROLLUP (Example 12's SQL extensions,
	// expressible as accumulator sugar). Each inner slice indexes into
	// GroupBy; nil means a plain GROUP BY.
	GroupingSets [][]int
	Having       Expr
	OrderBy      []OrderKey
	Limit        Expr
}

// SelectOutput is one semicolon-separated output fragment of a
// multi-output SELECT (Example 5): items INTO table.
type SelectOutput struct {
	Items []SelectItem
	Into  string // empty for the assignment form
}

// SelectItem is one projected expression with optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderKey is one ORDER BY component.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// PathPattern is one FROM-clause conjunct: Seed:alias followed by
// hops -(DARPE[:edgeAlias])- Target:alias.
type PathPattern struct {
	Src  StepRef
	Hops []Hop
}

// StepRef names a pattern endpoint: a vertex type, a vertex-set
// variable, a vertex parameter — resolved at run time — plus its
// binding alias.
type StepRef struct {
	Name  string
	Alias string
}

// Hop is one -(DARPE[:alias])- Target step.
type Hop struct {
	Darpe     darpe.Expr
	DarpeText string // original text (diagnostics, plan display)
	EdgeAlias string // only valid for single-symbol DARPEs
	Target    StepRef
}

// AccStmt is one comma-separated statement of an ACCUM or POST-ACCUM
// clause: an assignment/input statement, or a conditional block
// (IF ... THEN stmts [ELSE stmts] END) when Cond is non-nil.
type AccStmt struct {
	// LocalType is set for typed local declarations
	// (FLOAT salesPrice = ...); Lhs is then an Ident.
	LocalType *TypeRef
	Lhs       Expr // Ident, VertexAccRef or GlobalAccRef
	Op        string
	Rhs       Expr

	// Conditional form.
	Cond Expr
	Then []AccStmt
	Else []AccStmt
}

// ---- expressions --------------------------------------------------------------

// Expr is an expression node.
type Expr interface{ exprNode() }

// Lit is a literal value.
type Lit struct {
	Val value.Value
}

func (*Lit) exprNode() {}

// Ident references a parameter, local variable, pattern alias or
// vertex-set / table name.
type Ident struct {
	Name string
}

func (*Ident) exprNode() {}

// GlobalAccRef references a global accumulator @@name.
type GlobalAccRef struct {
	Name string
}

func (*GlobalAccRef) exprNode() {}

// VertexAccRef references a vertex accumulator v.@name; Prev marks the
// primed form v.@name' (value at clause start / previous iteration).
type VertexAccRef struct {
	Vertex Expr
	Name   string
	Prev   bool
}

func (*VertexAccRef) exprNode() {}

// AttrRef is v.attr (vertex or edge attribute, or projection column).
type AttrRef struct {
	Obj  Expr
	Name string
}

func (*AttrRef) exprNode() {}

// Call is a function call name(args...) or method call recv.name(args).
type Call struct {
	Recv Expr // nil for plain functions
	Name string
	Args []Expr
}

func (*Call) exprNode() {}

// Binary is a binary operation; Op is one of + - * / % and the
// comparison and logical operators (==, !=, <, <=, >, >=, and, or).
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) exprNode() {}

// Unary is -x or not x.
type Unary struct {
	Op string
	X  Expr
}

func (*Unary) exprNode() {}

// TupleExpr is (e1, e2, ...) — heap inputs and composite values.
type TupleExpr struct {
	Elems []Expr
}

func (*TupleExpr) exprNode() {}

// ArrowTuple is the paper's grouped-input syntax
// (k1, k2 -> a1, a2) feeding MapAccum and GroupByAccum.
type ArrowTuple struct {
	Keys []Expr
	Vals []Expr
}

func (*ArrowTuple) exprNode() {}

// VSetLit is a vertex-set literal {T1.*, T2.*}.
type VSetLit struct {
	Types []string
}

func (*VSetLit) exprNode() {}

// SetOpExpr combines vertex sets: S = A UNION B, A INTERSECT B,
// A MINUS B. Valid only as an assignment right-hand side; operands are
// vertex-set names or nested set operations.
type SetOpExpr struct {
	Op   string // "union" | "intersect" | "minus"
	L, R Expr
}

func (*SetOpExpr) exprNode() {}

// CaseExpr is CASE WHEN c1 THEN e1 [WHEN c2 THEN e2]... [ELSE e] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // nil yields null when no branch matches
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*CaseExpr) exprNode() {}

// SelectExpr participates as the RHS of assignments.
func (*SelectExpr) exprNode() {}
