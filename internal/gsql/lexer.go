package gsql

import (
	"fmt"
	"strings"
)

// lexer tokenizes GSQL source on demand. The parser can reposition it
// (setPos) after extracting raw DARPE text from FROM-clause patterns.
type lexer struct {
	src  string
	pos  int
	line int
	// prevKind/prevEnd disambiguate "'" — immediately after a vertex
	// accumulator token it is the previous-value marker (v.@score'),
	// anywhere else it opens a string literal ('Toys').
	prevKind TokKind
	prevEnd  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// setPos repositions the lexer to a byte offset; line accounting scans
// forward from 0 only when moving backwards (which the parser never
// does, but correctness is cheap).
func (l *lexer) setPos(pos int) {
	if pos < l.pos {
		l.line = 1 + strings.Count(l.src[:pos], "\n")
	} else {
		l.line += strings.Count(l.src[l.pos:pos], "\n")
	}
	l.pos = pos
	l.prevKind = TokPunct // repositioning never lands right after @acc
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("gsql: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	tok, err := l.scan()
	l.prevKind = tok.Kind
	l.prevEnd = l.pos
	return tok, err
}

func (l *lexer) scan() (Token, error) {
	prevKind, prevEnd := l.prevKind, l.prevEnd
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start, Line: l.line}, nil
	}
	c := l.src[l.pos]
	if c == '\'' && prevKind == TokVAcc && prevEnd == l.pos {
		l.pos++
		return Token{Kind: TokPunct, Text: "'", Pos: start, Line: l.line}, nil
	}
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: start, Line: l.line}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '"' || c == '\'':
		return l.lexString(start, c)
	case c == '@':
		l.pos++
		kind := TokVAcc
		if l.pos < len(l.src) && l.src[l.pos] == '@' {
			l.pos++
			kind = TokGAcc
		}
		nameStart := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == nameStart {
			return Token{}, l.errf("expected accumulator name after '@'")
		}
		return Token{Kind: kind, Text: l.src[nameStart:l.pos], Pos: start, Line: l.line}, nil
	default:
		return l.lexPunct(start)
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func (l *lexer) lexNumber(start int) (Token, error) {
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	// A '.' begins a fraction only when followed by a digit — "1..3"
	// must not lex "1." as a float (DARPE bounds are extracted raw,
	// but LIMIT 3 .. style typos should still diagnose cleanly).
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	// Exponent.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		p := l.pos + 1
		if p < len(l.src) && (l.src[p] == '+' || l.src[p] == '-') {
			p++
		}
		if p < len(l.src) && l.src[p] >= '0' && l.src[p] <= '9' {
			l.pos = p
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
		}
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start, Line: l.line}, nil
}

func (l *lexer) lexString(start int, quote byte) (Token, error) {
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start, Line: l.line}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return Token{}, l.errf("unterminated string")
			}
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"', '\'':
				sb.WriteByte(l.src[l.pos])
			default:
				return Token{}, l.errf("unknown escape \\%c", l.src[l.pos])
			}
			l.pos++
		case '\n':
			return Token{}, l.errf("unterminated string")
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return Token{}, l.errf("unterminated string")
}

// multi-byte punctuation, longest first.
var puncts = []string{
	"+=", "==", "!=", "<>", "<=", ">=", "->", "..",
	"(", ")", "{", "}", "[", "]", ",", ";", ":", ".",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "|", "'",
}

func (l *lexer) lexPunct(start int) (Token, error) {
	rest := l.src[l.pos:]
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			l.pos += len(p)
			return Token{Kind: TokPunct, Text: p, Pos: start, Line: l.line}, nil
		}
	}
	return Token{}, l.errf("unexpected character %q", l.src[l.pos])
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
