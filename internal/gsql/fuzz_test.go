package gsql

import "testing"

// FuzzParse exercises the lexer and parser against arbitrary input:
// parsing must terminate, never panic outside the controlled bail, and
// accepted inputs must not crash validation-adjacent accessors. Run
// with: go test -fuzz FuzzParse ./internal/gsql
func FuzzParse(f *testing.F) {
	seeds := []string{
		figure2, figure3, figure4, qnQuery, example5,
		`CREATE QUERY q() {}`,
		`CREATE QUERY q(vertex<T> v, int k) SEMANTICS nre { SumAccum<int> @a = k; }`,
		`TYPEDEF TUPLE<a int, b string> T; CREATE QUERY q() { HeapAccum<T>(3, a DESC) @@h; }`,
		`CREATE QUERY q() { S = SELECT v FROM V:v -(E>*1..3)- V:t WHERE v.x == 'lit' ACCUM t.@a += 1 POST_ACCUM t.@a = t.@a' + 1; }`,
		`CREATE QUERY q() { SELECT a.x, count(*) INTO T FROM V:a GROUP BY CUBE (a.x, a.y) HAVING count(*) > 1 ORDER BY a.x LIMIT 3; }`,
		`CREATE QUERY q() { FOREACH x IN @@s DO @@t += x; END; }`,
		`CREATE QUERY q() { x = CASE WHEN 1 IN (1,2) THEN "a" ELSE 'b' END; }`,
		`CREATE QUERY q() { S = A UNION B MINUS {V.*}; }`,
		"CREATE QUERY q() { PRINT \"\\t\\n\\\\\"; }",
		`@@ @ -( )- .. ' "unterminated`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input: basic invariants hold.
		for _, q := range file.Queries {
			if q.Name == "" {
				t.Errorf("accepted query with empty name: %q", src)
			}
			for _, d := range q.Decls {
				if d.Spec == nil {
					t.Errorf("accepted declaration without a spec: %q", src)
				}
			}
		}
	})
}
