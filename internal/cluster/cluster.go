// Package cluster defines the wire types for cluster-wide status:
// what one gsqld reports about itself at GET /cluster/node, and the
// merged document the leader assembles at GET /cluster/status by
// fanning out to every node it knows about. cmd/gsqltop decodes the
// same types to render its dashboard, so the package stays pure data —
// no server imports, no HTTP.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// NodeStatus is one node's self-report. The zero value of any section
// means "not applicable to this role" (a standalone node has no lag; a
// follower has no served-replication counters).
type NodeStatus struct {
	URL           string  `json:"url"`
	Role          string  `json:"role"` // "leader" | "follower" | "standalone"
	Status        string  `json:"status"`
	Version       string  `json:"version,omitempty"`
	Commit        string  `json:"commit,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	// MVCC lineage of the serving graph.
	SnapshotEpoch uint64 `json:"snapshot_epoch"`
	MVCCFolds     uint64 `json:"mvcc_folds"`
	DeltaRecords  uint64 `json:"delta_records"`

	// Durable-store position (zero when serving purely in memory).
	WALSeq      uint64 `json:"wal_seq,omitempty"`
	WALOffset   int64  `json:"wal_offset,omitempty"`
	WALRecords  uint64 `json:"wal_records,omitempty"`
	WALBytes    uint64 `json:"wal_bytes,omitempty"`
	Checkpoints uint64 `json:"checkpoints,omitempty"`

	// Replication, follower side.
	LeaderURL  string `json:"leader_url,omitempty"`
	LagRecords int64  `json:"lag_records"`
	LagBytes   int64  `json:"lag_bytes"`

	// Query service.
	InstalledQueries int64   `json:"installed_queries"`
	Inflight         int64   `json:"inflight"`
	RunsTotal        uint64  `json:"runs_total"`
	ErrorsTotal      uint64  `json:"errors_total"`
	QPS              float64 `json:"qps"`
	P50Seconds       float64 `json:"p50_seconds"`
	P90Seconds       float64 `json:"p90_seconds"`
	P99Seconds       float64 `json:"p99_seconds"`
	// WindowSeconds is the span QPS and the quantiles were computed
	// over: a recent metrics-history window when the node samples
	// history, otherwise 0 meaning lifetime aggregates.
	WindowSeconds float64 `json:"window_seconds,omitempty"`

	// Error is set (with every other field zero except URL) when the
	// aggregating node could not scrape this peer.
	Error string `json:"error,omitempty"`
}

// Status is the merged cluster document: every reachable node's
// self-report, plus who assembled it and when.
type Status struct {
	ReportedBy string       `json:"reported_by"`
	At         time.Time    `json:"at"`
	Nodes      []NodeStatus `json:"nodes"`
}

// FetchNode scrapes one peer's GET /cluster/node. The returned
// NodeStatus always carries url; on failure Error is set instead of
// returning a Go error, because an unreachable node is a row in the
// merged document, not a reason to drop the document.
func FetchNode(ctx context.Context, client *http.Client, url string) NodeStatus {
	if client == nil {
		client = http.DefaultClient
	}
	fail := func(err error) NodeStatus {
		return NodeStatus{URL: url, Error: err.Error()}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/cluster/node", nil)
	if err != nil {
		return fail(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fail(fmt.Errorf("%s: %s", resp.Status, body))
	}
	var ns NodeStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ns); err != nil {
		return fail(err)
	}
	ns.URL = url // the scraped address wins over whatever the node advertised
	return ns
}
