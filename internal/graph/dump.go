package graph

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"gsqlgo/internal/value"
)

// JSON schema interchange, used by cmd/snbgen and cmd/gsql.

type attrJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type vertexTypeJSON struct {
	Name  string     `json:"name"`
	Attrs []attrJSON `json:"attrs,omitempty"`
}

type edgeTypeJSON struct {
	Name     string     `json:"name"`
	Directed bool       `json:"directed"`
	Attrs    []attrJSON `json:"attrs,omitempty"`
}

type schemaJSON struct {
	VertexTypes []vertexTypeJSON `json:"vertexTypes"`
	EdgeTypes   []edgeTypeJSON   `json:"edgeTypes"`
}

func attrTypeName(t AttrType) string { return t.String() }

func attrTypeByName(name string) (AttrType, error) {
	switch name {
	case "int":
		return AttrInt, nil
	case "float":
		return AttrFloat, nil
	case "string":
		return AttrString, nil
	case "bool":
		return AttrBool, nil
	case "datetime":
		return AttrDatetime, nil
	default:
		return 0, fmt.Errorf("graph: unknown attribute type %q", name)
	}
}

// MarshalSchemaJSON serializes a schema for interchange.
func MarshalSchemaJSON(s *Schema) ([]byte, error) {
	var out schemaJSON
	for _, vt := range s.VertexTypes() {
		j := vertexTypeJSON{Name: vt.Name}
		for _, a := range vt.Attrs {
			j.Attrs = append(j.Attrs, attrJSON{Name: a.Name, Type: attrTypeName(a.Type)})
		}
		out.VertexTypes = append(out.VertexTypes, j)
	}
	for _, et := range s.EdgeTypes() {
		j := edgeTypeJSON{Name: et.Name, Directed: et.Directed}
		for _, a := range et.Attrs {
			j.Attrs = append(j.Attrs, attrJSON{Name: a.Name, Type: attrTypeName(a.Type)})
		}
		out.EdgeTypes = append(out.EdgeTypes, j)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalSchemaJSON parses a schema interchange document.
func UnmarshalSchemaJSON(data []byte) (*Schema, error) {
	var in schemaJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("graph: parsing schema JSON: %w", err)
	}
	s := NewSchema()
	for _, vt := range in.VertexTypes {
		attrs, err := attrsFromJSON(vt.Attrs)
		if err != nil {
			return nil, err
		}
		if _, err := s.AddVertexType(vt.Name, attrs...); err != nil {
			return nil, err
		}
	}
	for _, et := range in.EdgeTypes {
		attrs, err := attrsFromJSON(et.Attrs)
		if err != nil {
			return nil, err
		}
		if _, err := s.AddEdgeType(et.Name, et.Directed, attrs...); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func attrsFromJSON(in []attrJSON) ([]AttrDef, error) {
	var out []AttrDef
	for _, a := range in {
		t, err := attrTypeByName(a.Type)
		if err != nil {
			return nil, err
		}
		out = append(out, AttrDef{Name: a.Name, Type: t})
	}
	return out, nil
}

// DumpCSV writes the graph to a directory: schema.json plus one
// <Type>.vertices.csv per vertex type and <Type>.edges.csv per edge
// type, in the exact layout LoadVerticesCSV/LoadEdgesCSV accept.
func (g *Graph) DumpCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	schemaBytes, err := MarshalSchemaJSON(g.Schema)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "schema.json"), schemaBytes, 0o644); err != nil {
		return err
	}
	for _, vt := range g.Schema.VertexTypes() {
		if err := g.dumpVertices(dir, vt); err != nil {
			return err
		}
	}
	for _, et := range g.Schema.EdgeTypes() {
		if err := g.dumpEdges(dir, et); err != nil {
			return err
		}
	}
	return nil
}

func csvField(v value.Value) string {
	switch v.Kind() {
	case value.KindDatetime:
		return strconv.FormatInt(v.Datetime(), 10)
	default:
		return v.String()
	}
}

func (g *Graph) dumpVertices(dir string, vt *VertexType) error {
	f, err := os.Create(filepath.Join(dir, vt.Name+".vertices.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"key"}
	for _, a := range vt.Attrs {
		header = append(header, a.Name)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, v := range g.VerticesOfType(vt.Name) {
		row[0] = g.vkeys[v]
		for i := range vt.Attrs {
			row[i+1] = csvField(g.VertexAttrAt(v, i))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func (g *Graph) dumpEdges(dir string, et *EdgeType) error {
	f, err := os.Create(filepath.Join(dir, et.Name+".edges.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	// The loader needs endpoint vertex types in the header; find the
	// first edge of this type to derive them (mixed endpoint types per
	// edge type are not dumpable to a single file).
	var srcType, dstType string
	for e := EID(0); int(e) < len(g.etype); e++ {
		if int(g.etype[e]) != et.ID {
			continue
		}
		sT := g.VertexTypeOf(g.esrc[e]).Name
		dT := g.VertexTypeOf(g.edst[e]).Name
		if srcType == "" {
			srcType, dstType = sT, dT
		} else if srcType != sT || dstType != dT {
			return fmt.Errorf("graph: edge type %s connects multiple vertex-type pairs; cannot dump to CSV", et.Name)
		}
	}
	if srcType == "" {
		// No edges of this type; write an empty placeholder that the
		// loader would reject — skip the file instead.
		w.Flush()
		return os.Remove(f.Name())
	}
	header := []string{"src:" + srcType, "dst:" + dstType}
	for _, a := range et.Attrs {
		header = append(header, a.Name)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for e := EID(0); int(e) < len(g.etype); e++ {
		if int(g.etype[e]) != et.ID {
			continue
		}
		row[0] = g.vkeys[g.esrc[e]]
		row[1] = g.vkeys[g.edst[e]]
		for i := range et.Attrs {
			row[i+2] = csvField(g.eattrs[e][i])
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// LoadCSVDir loads a directory produced by DumpCSV: schema.json plus
// per-type CSV files. It returns the loaded graph.
func LoadCSVDir(dir string) (*Graph, error) {
	schemaBytes, err := os.ReadFile(filepath.Join(dir, "schema.json"))
	if err != nil {
		return nil, err
	}
	s, err := UnmarshalSchemaJSON(schemaBytes)
	if err != nil {
		return nil, err
	}
	g := New(s)
	for _, vt := range s.VertexTypes() {
		path := filepath.Join(dir, vt.Name+".vertices.csv")
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		_, err = g.LoadVerticesCSV(vt.Name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	for _, et := range s.EdgeTypes() {
		path := filepath.Join(dir, et.Name+".edges.csv")
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		_, err = g.LoadEdgesCSV(et.Name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}
