package graph

import (
	"strings"
	"testing"

	"gsqlgo/internal/value"
)

func TestBuildLinkedInGraph(t *testing.T) {
	g := BuildLinkedInGraph(LinkedInConfig{Persons: 50, Connections: 200, Companies: 4, Seed: 2})
	if len(g.VerticesOfType("Person")) != 50 {
		t.Fatalf("persons = %d", len(g.VerticesOfType("Person")))
	}
	if g.Schema.EdgeType("Connected").Directed {
		t.Error("Connected must be undirected")
	}
	// Attributes populated; at least one ACME employee exists.
	acme := 0
	for _, v := range g.VerticesOfType("Person") {
		email, _ := g.VertexAttr(v, "email")
		if !strings.Contains(email.Str(), "@mail.example") {
			t.Fatalf("bad email %q", email.Str())
		}
		wf, _ := g.VertexAttr(v, "worksFor")
		if wf.Str() == "ACME" {
			acme++
		}
	}
	if acme == 0 {
		t.Error("no ACME employees generated")
	}
	// Edge dates in range and no self/duplicate connections.
	seen := map[[2]VID]bool{}
	for e := EID(0); int(e) < g.NumEdges(); e++ {
		s, d := g.EdgeEndpoints(e)
		if s == d {
			t.Fatal("self connection")
		}
		if s > d {
			s, d = d, s
		}
		if seen[[2]VID{s, d}] {
			t.Fatal("duplicate connection")
		}
		seen[[2]VID{s, d}] = true
		since, _ := g.EdgeAttr(e, "since")
		if since.Datetime() < 1388534400 {
			t.Fatal("connection date out of range")
		}
	}
	// Companies default kicks in below 2.
	g2 := BuildLinkedInGraph(LinkedInConfig{Persons: 10, Connections: 5, Seed: 2})
	if g2.NumVertices() != 10 {
		t.Error("default-company build failed")
	}
}

func TestBuildRandomMixedGraphShape(t *testing.T) {
	g := BuildRandomMixedGraph(6, 20, 3)
	if g.NumVertices() != 6 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Mixed edge kinds exist in the schema.
	if g.Schema.EdgeType("U").Directed || !g.Schema.EdgeType("D1").Directed {
		t.Error("edge kinds wrong")
	}
	// No self loops by construction.
	for e := EID(0); int(e) < g.NumEdges(); e++ {
		s, d := g.EdgeEndpoints(e)
		if s == d {
			t.Fatal("self loop generated")
		}
	}
	// Determinism.
	g2 := BuildRandomMixedGraph(6, 20, 3)
	if g.NumEdges() != g2.NumEdges() {
		t.Error("random mixed graph must be deterministic per seed")
	}
}

func TestDirString(t *testing.T) {
	if DirOut.String() != "out" || DirIn.String() != "in" || DirUndir.String() != "undir" {
		t.Error("Dir names wrong")
	}
	if Dir(9).String() != "dir?" {
		t.Error("unknown Dir rendering wrong")
	}
}

func TestAttrTypeStringAndSchemaCounts(t *testing.T) {
	names := map[AttrType]string{
		AttrInt: "int", AttrFloat: "float", AttrString: "string",
		AttrBool: "bool", AttrDatetime: "datetime",
	}
	for at, want := range names {
		if at.String() != want {
			t.Errorf("AttrType(%d) = %q, want %q", at, at.String(), want)
		}
	}
	if !strings.Contains(AttrType(77).String(), "attrtype(") {
		t.Error("unknown AttrType rendering wrong")
	}
	s := testSchema(t)
	if s.NumEdgeTypes() != 2 {
		t.Errorf("NumEdgeTypes = %d", s.NumEdgeTypes())
	}
	if len(s.VertexTypes()) != 2 || len(s.EdgeTypes()) != 2 {
		t.Error("type listings wrong")
	}
}

func TestParseAttrKinds(t *testing.T) {
	// Exercised through CSV loading of every attribute type.
	s := NewSchema()
	if _, err := s.AddVertexType("T",
		AttrDef{"i", AttrInt}, AttrDef{"f", AttrFloat}, AttrDef{"s", AttrString},
		AttrDef{"b", AttrBool}, AttrDef{"d", AttrDatetime}); err != nil {
		t.Fatal(err)
	}
	g := New(s)
	n, err := g.LoadVerticesCSV("T", strings.NewReader(
		"key,i,f,s,b,d\nk1,7,2.5,hello,true,2020-06-14\nk2,-3,0,world,false,1234\n"))
	if err != nil || n != 2 {
		t.Fatalf("load: %d %v", n, err)
	}
	v, _ := g.VertexByKey("T", "k1")
	checks := map[string]value.Value{
		"i": value.NewInt(7), "f": value.NewFloat(2.5), "s": value.NewString("hello"),
		"b": value.NewBool(true),
	}
	for name, want := range checks {
		if got, _ := g.VertexAttr(v, name); !value.Equal(got, want) {
			t.Errorf("attr %s = %v, want %v", name, got, want)
		}
	}
	v2, _ := g.VertexByKey("T", "k2")
	if d, _ := g.VertexAttr(v2, "d"); d.Datetime() != 1234 {
		t.Error("epoch datetime attr wrong")
	}
	// Parse failures per type.
	bad := []string{
		"key,i\nx,notint\n",
		"key,f\nx,notfloat\n",
		"key,b\nx,notbool\n",
		"key,d\nx,junk stamp\n",
	}
	for _, csv := range bad {
		g := New(s)
		if _, err := g.LoadVerticesCSV("T", strings.NewReader(csv)); err == nil {
			t.Errorf("LoadVerticesCSV(%q) must error", csv)
		}
	}
}
