// Package graph implements the in-memory property graph substrate the
// GSQL engine runs on: a schema of vertex and edge types (edge types
// may be directed or undirected, and both kinds coexist in one graph,
// as required by the paper's DARPE formalism), vertex/edge attribute
// storage, and adjacency lists that expose each incident edge together
// with its traversal direction.
package graph

import (
	"fmt"

	"gsqlgo/internal/value"
)

// AttrType is the declared type of a vertex or edge attribute.
type AttrType uint8

// Attribute types supported by the schema.
const (
	AttrInt AttrType = iota
	AttrFloat
	AttrString
	AttrBool
	AttrDatetime
)

// String returns the GSQL name of the attribute type.
func (t AttrType) String() string {
	switch t {
	case AttrInt:
		return "int"
	case AttrFloat:
		return "float"
	case AttrString:
		return "string"
	case AttrBool:
		return "bool"
	case AttrDatetime:
		return "datetime"
	default:
		return fmt.Sprintf("attrtype(%d)", uint8(t))
	}
}

// Zero returns the zero value of the attribute type.
func (t AttrType) Zero() value.Value {
	switch t {
	case AttrInt:
		return value.NewInt(0)
	case AttrFloat:
		return value.NewFloat(0)
	case AttrString:
		return value.NewString("")
	case AttrBool:
		return value.NewBool(false)
	case AttrDatetime:
		return value.NewDatetime(0)
	default:
		return value.Null
	}
}

// Accepts reports whether a runtime value is storable in an attribute
// of this type. Ints are accepted into float attributes (widening).
func (t AttrType) Accepts(v value.Value) bool {
	switch t {
	case AttrInt:
		return v.Kind() == value.KindInt
	case AttrFloat:
		return v.Kind() == value.KindFloat || v.Kind() == value.KindInt
	case AttrString:
		return v.Kind() == value.KindString
	case AttrBool:
		return v.Kind() == value.KindBool
	case AttrDatetime:
		return v.Kind() == value.KindDatetime || v.Kind() == value.KindInt
	default:
		return false
	}
}

// coerce converts v to the canonical representation for the type.
func (t AttrType) coerce(v value.Value) value.Value {
	switch t {
	case AttrFloat:
		if v.Kind() == value.KindInt {
			return value.NewFloat(float64(v.Int()))
		}
	case AttrDatetime:
		if v.Kind() == value.KindInt {
			return value.NewDatetime(v.Int())
		}
	}
	return v
}

// AttrDef declares one attribute of a vertex or edge type.
type AttrDef struct {
	Name string
	Type AttrType
}

// VertexType describes one vertex type of the schema.
type VertexType struct {
	ID      int
	Name    string
	Attrs   []AttrDef
	attrIdx map[string]int
}

// AttrIndex returns the position of the named attribute, or -1.
func (vt *VertexType) AttrIndex(name string) int {
	if i, ok := vt.attrIdx[name]; ok {
		return i
	}
	return -1
}

// EdgeType describes one edge type of the schema. Directed reports the
// edge kind; a graph freely mixes directed and undirected edge types.
type EdgeType struct {
	ID       int
	Name     string
	Directed bool
	Attrs    []AttrDef
	attrIdx  map[string]int
}

// AttrIndex returns the position of the named attribute, or -1.
func (et *EdgeType) AttrIndex(name string) int {
	if i, ok := et.attrIdx[name]; ok {
		return i
	}
	return -1
}

// Schema is the catalog of vertex and edge types of a graph.
type Schema struct {
	vertexTypes []*VertexType
	edgeTypes   []*EdgeType
	vtByName    map[string]*VertexType
	etByName    map[string]*EdgeType
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		vtByName: make(map[string]*VertexType),
		etByName: make(map[string]*EdgeType),
	}
}

// AddVertexType declares a vertex type with the given attributes.
func (s *Schema) AddVertexType(name string, attrs ...AttrDef) (*VertexType, error) {
	if _, dup := s.vtByName[name]; dup {
		return nil, fmt.Errorf("graph: duplicate vertex type %q", name)
	}
	vt := &VertexType{ID: len(s.vertexTypes), Name: name, Attrs: attrs, attrIdx: attrIndex(attrs)}
	s.vertexTypes = append(s.vertexTypes, vt)
	s.vtByName[name] = vt
	return vt, nil
}

// AddEdgeType declares an edge type. directed selects the edge kind.
func (s *Schema) AddEdgeType(name string, directed bool, attrs ...AttrDef) (*EdgeType, error) {
	if _, dup := s.etByName[name]; dup {
		return nil, fmt.Errorf("graph: duplicate edge type %q", name)
	}
	et := &EdgeType{ID: len(s.edgeTypes), Name: name, Directed: directed, Attrs: attrs, attrIdx: attrIndex(attrs)}
	s.edgeTypes = append(s.edgeTypes, et)
	s.etByName[name] = et
	return et, nil
}

func attrIndex(attrs []AttrDef) map[string]int {
	m := make(map[string]int, len(attrs))
	for i, a := range attrs {
		m[a.Name] = i
	}
	return m
}

// VertexType returns the named vertex type, or nil.
func (s *Schema) VertexType(name string) *VertexType { return s.vtByName[name] }

// EdgeType returns the named edge type, or nil.
func (s *Schema) EdgeType(name string) *EdgeType { return s.etByName[name] }

// VertexTypes returns all vertex types in declaration order.
func (s *Schema) VertexTypes() []*VertexType { return s.vertexTypes }

// EdgeTypes returns all edge types in declaration order.
func (s *Schema) EdgeTypes() []*EdgeType { return s.edgeTypes }

// NumEdgeTypes returns the count of declared edge types.
func (s *Schema) NumEdgeTypes() int { return len(s.edgeTypes) }
