package graph

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gsqlgo/internal/value"
)

// LoadVerticesCSV bulk-loads vertices of one type from CSV. The first
// header column must be "key"; the remaining header columns name
// attributes of the vertex type. Returns the number of vertices added.
func (g *Graph) LoadVerticesCSV(typeName string, r io.Reader) (int, error) {
	vt := g.Schema.VertexType(typeName)
	if vt == nil {
		return 0, fmt.Errorf("graph: unknown vertex type %q", typeName)
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("graph: reading CSV header: %w", err)
	}
	if len(header) == 0 || strings.TrimSpace(header[0]) != "key" {
		return 0, fmt.Errorf("graph: vertex CSV for %s must start with a 'key' column", typeName)
	}
	cols := make([]int, len(header)) // header position -> attr index
	types := make([]AttrType, len(header))
	for i := 1; i < len(header); i++ {
		name := strings.TrimSpace(header[i])
		ai := vt.AttrIndex(name)
		if ai < 0 {
			return 0, fmt.Errorf("graph: vertex type %s has no attribute %q", typeName, name)
		}
		cols[i] = ai
		types[i] = vt.Attrs[ai].Type
	}
	n := 0
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("graph: CSV line %d: %w", line, err)
		}
		attrs := make(map[string]value.Value, len(rec)-1)
		for i := 1; i < len(rec) && i < len(header); i++ {
			v, err := parseAttr(types[i], rec[i])
			if err != nil {
				return n, fmt.Errorf("graph: CSV line %d column %q: %w", line, header[i], err)
			}
			attrs[vt.Attrs[cols[i]].Name] = v
		}
		if _, err := g.AddVertex(typeName, rec[0], attrs); err != nil {
			return n, fmt.Errorf("graph: CSV line %d: %w", line, err)
		}
		n++
	}
	return n, nil
}

// LoadEdgesCSV bulk-loads edges of one type from CSV. The header must
// start with "src:<VertexType>,dst:<VertexType>"; remaining columns
// name edge attributes. Endpoint columns hold vertex primary keys.
func (g *Graph) LoadEdgesCSV(typeName string, r io.Reader) (int, error) {
	et := g.Schema.EdgeType(typeName)
	if et == nil {
		return 0, fmt.Errorf("graph: unknown edge type %q", typeName)
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("graph: reading CSV header: %w", err)
	}
	if len(header) < 2 || !strings.HasPrefix(header[0], "src:") || !strings.HasPrefix(header[1], "dst:") {
		return 0, fmt.Errorf("graph: edge CSV for %s must start with src:<Type>,dst:<Type> columns", typeName)
	}
	srcType := strings.TrimPrefix(strings.TrimSpace(header[0]), "src:")
	dstType := strings.TrimPrefix(strings.TrimSpace(header[1]), "dst:")
	cols := make([]int, len(header))
	types := make([]AttrType, len(header))
	for i := 2; i < len(header); i++ {
		name := strings.TrimSpace(header[i])
		ai := et.AttrIndex(name)
		if ai < 0 {
			return 0, fmt.Errorf("graph: edge type %s has no attribute %q", typeName, name)
		}
		cols[i] = ai
		types[i] = et.Attrs[ai].Type
	}
	n := 0
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("graph: CSV line %d: %w", line, err)
		}
		src, ok := g.VertexByKey(srcType, rec[0])
		if !ok {
			return n, fmt.Errorf("graph: CSV line %d: unknown %s vertex %q", line, srcType, rec[0])
		}
		dst, ok := g.VertexByKey(dstType, rec[1])
		if !ok {
			return n, fmt.Errorf("graph: CSV line %d: unknown %s vertex %q", line, dstType, rec[1])
		}
		attrs := make(map[string]value.Value, len(rec)-2)
		for i := 2; i < len(rec) && i < len(header); i++ {
			v, err := parseAttr(types[i], rec[i])
			if err != nil {
				return n, fmt.Errorf("graph: CSV line %d column %q: %w", line, header[i], err)
			}
			attrs[et.Attrs[cols[i]].Name] = v
		}
		if _, err := g.AddEdge(typeName, src, dst, attrs); err != nil {
			return n, fmt.Errorf("graph: CSV line %d: %w", line, err)
		}
		n++
	}
	return n, nil
}

func parseAttr(t AttrType, s string) (value.Value, error) {
	s = strings.TrimSpace(s)
	switch t {
	case AttrInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(i), nil
	case AttrFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewFloat(f), nil
	case AttrString:
		return value.NewString(s), nil
	case AttrBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(b), nil
	case AttrDatetime:
		// Accept Unix seconds or "YYYY-MM-DD[ HH:MM:SS]".
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return value.NewDatetime(i), nil
		}
		return ParseDatetime(s)
	default:
		return value.Null, fmt.Errorf("unsupported attribute type %v", t)
	}
}
