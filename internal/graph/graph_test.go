package graph

import (
	"strings"
	"testing"

	"gsqlgo/internal/value"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	if _, err := s.AddVertexType("Person", AttrDef{"name", AttrString}, AttrDef{"age", AttrInt}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddVertexType("City", AttrDef{"name", AttrString}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("Knows", false, AttrDef{"since", AttrDatetime}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("LivesIn", true); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.VertexType("Person") == nil || s.VertexType("Nope") != nil {
		t.Error("VertexType lookup wrong")
	}
	if s.EdgeType("Knows") == nil || s.EdgeType("Knows").Directed {
		t.Error("Knows must exist and be undirected")
	}
	if !s.EdgeType("LivesIn").Directed {
		t.Error("LivesIn must be directed")
	}
	if _, err := s.AddVertexType("Person"); err == nil {
		t.Error("duplicate vertex type must error")
	}
	if _, err := s.AddEdgeType("Knows", true); err == nil {
		t.Error("duplicate edge type must error")
	}
	if got := s.VertexType("Person").AttrIndex("age"); got != 1 {
		t.Errorf("AttrIndex(age) = %d, want 1", got)
	}
	if got := s.VertexType("Person").AttrIndex("zip"); got != -1 {
		t.Errorf("AttrIndex(zip) = %d, want -1", got)
	}
}

func TestVertexAndEdgeCRUD(t *testing.T) {
	g := New(testSchema(t))
	alice, err := g.AddVertex("Person", "alice", map[string]value.Value{
		"name": value.NewString("Alice"), "age": value.NewInt(31),
	})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := g.AddVertex("Person", "bob", map[string]value.Value{"name": value.NewString("Bob")})
	if err != nil {
		t.Fatal(err)
	}
	nyc, err := g.AddVertex("City", "nyc", map[string]value.Value{"name": value.NewString("NYC")})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
	// Defaulted attribute.
	if v, ok := g.VertexAttr(bob, "age"); !ok || v.Int() != 0 {
		t.Errorf("bob.age default: %v %v", v, ok)
	}
	// Errors.
	if _, err := g.AddVertex("Nope", "x", nil); err == nil {
		t.Error("unknown vertex type must error")
	}
	if _, err := g.AddVertex("Person", "alice", nil); err == nil {
		t.Error("duplicate key must error")
	}
	if _, err := g.AddVertex("Person", "x", map[string]value.Value{"zip": value.NewInt(1)}); err == nil {
		t.Error("unknown attribute must error")
	}
	if _, err := g.AddVertex("Person", "y", map[string]value.Value{"age": value.NewString("old")}); err == nil {
		t.Error("mistyped attribute must error")
	}

	if _, err := g.AddEdge("Knows", alice, bob, map[string]value.Value{"since": value.NewDatetime(1000)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("LivesIn", alice, nyc, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("LivesIn", bob, nyc, nil); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if _, err := g.AddEdge("Nope", alice, bob, nil); err == nil {
		t.Error("unknown edge type must error")
	}
	if _, err := g.AddEdge("Knows", alice, VID(99), nil); err == nil {
		t.Error("out-of-range endpoint must error")
	}

	// Undirected edge appears in both adjacency lists with DirUndir.
	foundAtAlice, foundAtBob := false, false
	for _, h := range g.Neighbors(alice) {
		if h.Dir == DirUndir && h.To == bob {
			foundAtAlice = true
		}
	}
	for _, h := range g.Neighbors(bob) {
		if h.Dir == DirUndir && h.To == alice {
			foundAtBob = true
		}
	}
	if !foundAtAlice || !foundAtBob {
		t.Error("undirected edge must be visible from both endpoints")
	}

	// Directed edge: DirOut at source, DirIn at target.
	outOK, inOK := false, false
	for _, h := range g.Neighbors(alice) {
		if h.Dir == DirOut && h.To == nyc {
			outOK = true
		}
	}
	for _, h := range g.Neighbors(nyc) {
		if h.Dir == DirIn && h.To == alice {
			inOK = true
		}
	}
	if !outOK || !inOK {
		t.Error("directed edge direction bookkeeping wrong")
	}

	// Degrees: alice has 1 undirected Knows + 1 outgoing LivesIn.
	if d := g.OutDegree(alice); d != 2 {
		t.Errorf("OutDegree(alice) = %d, want 2", d)
	}
	if d := g.OutDegreeByType(alice, "LivesIn"); d != 1 {
		t.Errorf("OutDegreeByType(alice, LivesIn) = %d, want 1", d)
	}
	if d := g.OutDegree(nyc); d != 0 {
		t.Errorf("OutDegree(nyc) = %d, want 0 (only incoming)", d)
	}
	if d := g.Degree(nyc); d != 2 {
		t.Errorf("Degree(nyc) = %d, want 2", d)
	}

	// Lookup and attributes.
	if id, ok := g.VertexByKey("Person", "alice"); !ok || id != alice {
		t.Error("VertexByKey failed")
	}
	if _, ok := g.VertexByKey("Person", "zed"); ok {
		t.Error("VertexByKey must miss for unknown key")
	}
	if g.VertexKey(alice) != "alice" || g.VertexTypeOf(alice).Name != "Person" {
		t.Error("vertex metadata wrong")
	}
	if vs := g.VerticesOfType("Person"); len(vs) != 2 {
		t.Errorf("VerticesOfType(Person) = %d, want 2", len(vs))
	}
	if err := g.SetVertexAttr(bob, "age", value.NewInt(44)); err != nil {
		t.Fatal(err)
	}
	if v, _ := g.VertexAttr(bob, "age"); v.Int() != 44 {
		t.Error("SetVertexAttr not visible")
	}
	if err := g.SetVertexAttr(bob, "zip", value.NewInt(1)); err == nil {
		t.Error("SetVertexAttr unknown attr must error")
	}
}

func TestEdgeAttributesAndEndpoints(t *testing.T) {
	g := New(testSchema(t))
	a, _ := g.AddVertex("Person", "a", nil)
	b, _ := g.AddVertex("Person", "b", nil)
	e, err := g.AddEdge("Knows", a, b, map[string]value.Value{"since": value.NewDatetime(77)})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := g.EdgeAttr(e, "since"); !ok || v.Datetime() != 77 {
		t.Errorf("EdgeAttr(since) = %v %v", v, ok)
	}
	if _, ok := g.EdgeAttr(e, "nope"); ok {
		t.Error("EdgeAttr must miss for unknown attr")
	}
	s, d := g.EdgeEndpoints(e)
	if s != a || d != b {
		t.Error("EdgeEndpoints wrong")
	}
	if g.EdgeTypeOf(e).Name != "Knows" {
		t.Error("EdgeTypeOf wrong")
	}
}

func TestIntWideningIntoFloatAndDatetime(t *testing.T) {
	s := NewSchema()
	if _, err := s.AddVertexType("T", AttrDef{"f", AttrFloat}, AttrDef{"d", AttrDatetime}); err != nil {
		t.Fatal(err)
	}
	g := New(s)
	v, err := g.AddVertex("T", "x", map[string]value.Value{"f": value.NewInt(3), "d": value.NewInt(5)})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := g.VertexAttr(v, "f"); got.Kind() != value.KindFloat || got.Float() != 3 {
		t.Errorf("int->float widening: %v", got)
	}
	if got, _ := g.VertexAttr(v, "d"); got.Kind() != value.KindDatetime || got.Datetime() != 5 {
		t.Errorf("int->datetime widening: %v", got)
	}
}

func TestBuildDiamondChain(t *testing.T) {
	g := BuildDiamondChain(30)
	if g.NumVertices() != 91 {
		t.Errorf("diamond chain vertices = %d, want 91 (paper)", g.NumVertices())
	}
	if g.NumEdges() != 120 {
		t.Errorf("diamond chain edges = %d, want 120 (paper)", g.NumEdges())
	}
	if _, ok := g.VertexByKey("V", "v0"); !ok {
		t.Error("v0 missing")
	}
	if _, ok := g.VertexByKey("V", "v30"); !ok {
		t.Error("v30 missing")
	}
}

func TestBuildG1G2Shapes(t *testing.T) {
	g1 := BuildG1()
	if g1.NumVertices() != 12 || g1.NumEdges() != 14 {
		t.Errorf("G1 shape: %dV %dE", g1.NumVertices(), g1.NumEdges())
	}
	g2 := BuildG2()
	if g2.NumVertices() != 6 || g2.NumEdges() != 6 {
		t.Errorf("G2 shape: %dV %dE", g2.NumVertices(), g2.NumEdges())
	}
	cyc := BuildABCCycle()
	if cyc.NumVertices() != 3 || cyc.NumEdges() != 3 {
		t.Errorf("ABC cycle shape: %dV %dE", cyc.NumVertices(), cyc.NumEdges())
	}
}

func TestBuildSalesGraphDeterministic(t *testing.T) {
	cfg := SalesGraphConfig{Customers: 20, Products: 10, Sales: 50, Likes: 60, Seed: 7}
	g1 := BuildSalesGraph(cfg)
	g2 := BuildSalesGraph(cfg)
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Error("SalesGraph generation must be deterministic per seed")
	}
	if len(g1.VerticesOfType("Customer")) != 20 || len(g1.VerticesOfType("Product")) != 10 {
		t.Error("SalesGraph cardinalities wrong")
	}
}

func TestBuildLinkGraph(t *testing.T) {
	g := BuildLinkGraph(50, 4, 1)
	if len(g.VerticesOfType("Page")) != 50 {
		t.Error("LinkGraph page count wrong")
	}
	if g.NumEdges() == 0 {
		t.Error("LinkGraph must have edges")
	}
	// No self-links by construction.
	for e := EID(0); int(e) < g.NumEdges(); e++ {
		s, d := g.EdgeEndpoints(e)
		if s == d {
			t.Fatalf("self-link at edge %d", e)
		}
	}
}

func TestLoadCSV(t *testing.T) {
	g := New(testSchema(t))
	nv, err := g.LoadVerticesCSV("Person", strings.NewReader("key,name,age\np1,Ann,30\np2,Ben,40\n"))
	if err != nil || nv != 2 {
		t.Fatalf("LoadVerticesCSV: %d %v", nv, err)
	}
	if _, err := g.LoadVerticesCSV("City", strings.NewReader("key,name\nnyc,NYC\n")); err != nil {
		t.Fatal(err)
	}
	ne, err := g.LoadEdgesCSV("Knows", strings.NewReader("src:Person,dst:Person,since\np1,p2,2016-01-02\n"))
	if err != nil || ne != 1 {
		t.Fatalf("LoadEdgesCSV: %d %v", ne, err)
	}
	ne, err = g.LoadEdgesCSV("LivesIn", strings.NewReader("src:Person,dst:City\np1,nyc\np2,nyc\n"))
	if err != nil || ne != 2 {
		t.Fatalf("LoadEdgesCSV LivesIn: %d %v", ne, err)
	}
	p1, _ := g.VertexByKey("Person", "p1")
	if v, _ := g.VertexAttr(p1, "age"); v.Int() != 30 {
		t.Error("CSV-loaded attribute wrong")
	}
	// since attribute parsed as a date
	for _, h := range g.Neighbors(p1) {
		if g.EdgeTypeOf(h.Edge).Name == "Knows" {
			v, _ := g.EdgeAttr(h.Edge, "since")
			if v.Kind() != value.KindDatetime || v.Datetime() == 0 {
				t.Errorf("since attr: %v", v)
			}
		}
	}
	// Error paths.
	if _, err := g.LoadVerticesCSV("Nope", strings.NewReader("key\n")); err == nil {
		t.Error("unknown type must error")
	}
	if _, err := g.LoadVerticesCSV("Person", strings.NewReader("name\nx\n")); err == nil {
		t.Error("missing key column must error")
	}
	if _, err := g.LoadVerticesCSV("Person", strings.NewReader("key,zip\nx,1\n")); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := g.LoadEdgesCSV("Knows", strings.NewReader("src:Person,dst:Person\nzed,p1\n")); err == nil {
		t.Error("unknown endpoint key must error")
	}
	if _, err := g.LoadEdgesCSV("Knows", strings.NewReader("whatever\nx\n")); err == nil {
		t.Error("bad edge header must error")
	}
}

func TestParseDatetime(t *testing.T) {
	for _, ok := range []string{"2020-06-14", "2020-06-14 12:00:01", "2020-06-14T12:00:01"} {
		if _, err := ParseDatetime(ok); err != nil {
			t.Errorf("ParseDatetime(%q): %v", ok, err)
		}
	}
	if _, err := ParseDatetime("June 14"); err == nil {
		t.Error("bad datetime must error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDatetime must panic on bad input")
		}
	}()
	MustDatetime("bogus")
}

// TestEpochTracksTopologyMutation pins the invalidation contract the
// engine-level count cache relies on: the epoch advances on every
// AddVertex/AddEdge (the events that clear the frozen CSR) and on
// nothing else — attribute updates leave it, and topology-derived
// caches stamped with it, alone.
func TestEpochTracksTopologyMutation(t *testing.T) {
	s := NewSchema()
	if _, err := s.AddVertexType("V", AttrDef{Name: "name", Type: AttrString}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("E", true); err != nil {
		t.Fatal(err)
	}
	g := New(s)
	e0 := g.Epoch()
	a, err := g.AddVertex("V", "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.AddVertex("V", "b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != e0+2 {
		t.Fatalf("epoch after 2 AddVertex: %d, want %d", g.Epoch(), e0+2)
	}
	if _, err := g.AddEdge("E", a, b, nil); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != e0+3 {
		t.Fatalf("epoch after AddEdge: %d, want %d", g.Epoch(), e0+3)
	}
	// Attribute updates are not topology: epoch (like the frozen CSR)
	// is untouched.
	g.Freeze()
	before := g.Epoch()
	if err := g.SetVertexAttr(a, "name", value.NewString("renamed")); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != before {
		t.Errorf("SetVertexAttr moved the epoch %d -> %d", before, g.Epoch())
	}
}
