package graph

import (
	"testing"

	"gsqlgo/internal/value"
)

func TestSchemaJSONRoundTrip(t *testing.T) {
	s := testSchema(t)
	data, err := MarshalSchemaJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := UnmarshalSchemaJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.VertexTypes()) != len(s.VertexTypes()) || len(s2.EdgeTypes()) != len(s.EdgeTypes()) {
		t.Fatal("type counts differ after round trip")
	}
	if s2.EdgeType("Knows").Directed != s.EdgeType("Knows").Directed {
		t.Error("directedness lost")
	}
	p := s2.VertexType("Person")
	if p.AttrIndex("age") != 1 || p.Attrs[1].Type != AttrInt {
		t.Error("attributes lost")
	}
	if _, err := UnmarshalSchemaJSON([]byte(`{"vertexTypes":[{"name":"X","attrs":[{"name":"a","type":"blob"}]}]}`)); err == nil {
		t.Error("unknown attr type must error")
	}
	if _, err := UnmarshalSchemaJSON([]byte("{")); err == nil {
		t.Error("malformed JSON must error")
	}
}

func TestDumpAndLoadCSVDir(t *testing.T) {
	g := New(testSchema(t))
	a, _ := g.AddVertex("Person", "a", map[string]value.Value{"name": value.NewString("Ann"), "age": value.NewInt(3)})
	b, _ := g.AddVertex("Person", "b", map[string]value.Value{"name": value.NewString("Ben")})
	nyc, _ := g.AddVertex("City", "nyc", map[string]value.Value{"name": value.NewString("NYC")})
	if _, err := g.AddEdge("Knows", a, b, map[string]value.Value{"since": value.NewDatetime(1234)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("LivesIn", a, nyc, nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := g.DumpCSV(dir); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %dV %dE vs %dV %dE", g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	a2, ok := g2.VertexByKey("Person", "a")
	if !ok {
		t.Fatal("vertex a lost")
	}
	if v, _ := g2.VertexAttr(a2, "age"); v.Int() != 3 {
		t.Error("attribute lost")
	}
	found := false
	for _, h := range g2.Neighbors(a2) {
		if g2.EdgeTypeOf(h.Edge).Name == "Knows" {
			if v, _ := g2.EdgeAttr(h.Edge, "since"); v.Datetime() == 1234 {
				found = true
			}
		}
	}
	if !found {
		t.Error("edge attribute lost")
	}
}
