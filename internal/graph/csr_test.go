package graph

import (
	"math/rand"
	"testing"

	"gsqlgo/internal/value"
)

// csrInvariants checks the structural invariants of a CSR against the
// adjacency it was frozen from: same half-edge multiset per vertex,
// (Type, Dir)-sorted layout within the base and ext spans, and
// segments that tile each span exactly. It accepts both canonical and
// patched (base + ext) CSRs.
func csrInvariants(t *testing.T, g *Graph, c *CSR) {
	t.Helper()
	if c.NumVertices() != g.NumVertices() {
		t.Fatalf("CSR has %d vertices, graph has %d", c.NumVertices(), g.NumVertices())
	}
	totalHalves := 0
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Neighbors(VID(v))
		flat := c.Neighbors(VID(v))
		totalHalves += len(flat)
		if len(flat) != len(adj) {
			t.Fatalf("v%d: CSR degree %d, adj degree %d", v, len(flat), len(adj))
		}
		// Multiset equality: every (To, Edge, Type, Dir) of adj appears
		// exactly once in the CSR slice.
		seen := make(map[HalfEdge]int, len(adj))
		for _, h := range adj {
			seen[h]++
		}
		for _, h := range flat {
			seen[h]--
			if seen[h] < 0 {
				t.Fatalf("v%d: CSR half-edge %+v not in adjacency", v, h)
			}
		}
		// Per-span checks: base, then the patched-CSR ext span if any.
		type span struct {
			name       string
			halves     []HalfEdge
			segs       []Seg
			start, end int32
			resolve    func(Seg) []HalfEdge
		}
		spans := []span{}
		if int(v) < len(c.offsets)-1 {
			spans = append(spans, span{"base", c.halves[c.offsets[v]:c.offsets[v+1]], c.Segments(VID(v)), c.offsets[v], c.offsets[v+1], c.HalfEdges})
		} else if len(c.Segments(VID(v))) != 0 {
			t.Fatalf("v%d: beyond base horizon but has base segments", v)
		}
		if c.HasExt() {
			spans = append(spans, span{"ext", c.extHalves[c.extOff[v]:c.extOff[v+1]], c.ExtSegments(VID(v)), c.extOff[v], c.extOff[v+1], c.ExtHalfEdges})
		}
		for _, sp := range spans {
			// Sortedness by (Type, Dir) within the span.
			for i := 1; i < len(sp.halves); i++ {
				a, b := sp.halves[i-1], sp.halves[i]
				if a.Type > b.Type || (a.Type == b.Type && a.Dir > b.Dir) {
					t.Fatalf("v%d: %s span not (Type, Dir)-sorted at %d: %+v then %+v", v, sp.name, i, a, b)
				}
			}
			// Segments tile the span and are homogeneous.
			want := sp.start
			for _, s := range sp.segs {
				if s.Start != want {
					t.Fatalf("v%d: %s segment starts at %d, want %d", v, sp.name, s.Start, want)
				}
				if s.End <= s.Start {
					t.Fatalf("v%d: empty %s segment %+v", v, sp.name, s)
				}
				for _, h := range sp.resolve(s) {
					if h.Type != s.Type || h.Dir != s.Dir {
						t.Fatalf("v%d: half-edge %+v in %s segment %+v", v, h, sp.name, s)
					}
				}
				want = s.End
			}
			if want != sp.end {
				t.Fatalf("v%d: %s segments end at %d, span ends at %d", v, sp.name, want, sp.end)
			}
			// Adjacent segments differ (maximality).
			for i := 1; i < len(sp.segs); i++ {
				if sp.segs[i-1].Type == sp.segs[i].Type && sp.segs[i-1].Dir == sp.segs[i].Dir {
					t.Fatalf("v%d: %s segments %d and %d not maximal", v, sp.name, i-1, i)
				}
			}
		}
	}
	if c.NumHalfEdges() != totalHalves {
		t.Fatalf("NumHalfEdges %d, summed %d", c.NumHalfEdges(), totalHalves)
	}
}

func TestFreezeInvariants(t *testing.T) {
	for name, g := range map[string]*Graph{
		"G1":      BuildG1(),
		"G2":      BuildG2(),
		"cycle":   BuildABCCycle(),
		"diamond": BuildDiamondChain(8),
		"sales": BuildSalesGraph(SalesGraphConfig{
			Customers: 30, Products: 10, Sales: 200, Likes: 50, Seed: 3,
		}),
	} {
		csrInvariants(t, g, g.Freeze())
		_ = name
	}
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := BuildRandomMixedGraph(2+r.Intn(8), 1+r.Intn(20), seed)
		csrInvariants(t, g, g.Freeze())
	}
}

func TestFreezeCachesAndInvalidates(t *testing.T) {
	g := BuildDiamondChain(3)
	c1 := g.Freeze()
	if g.Freeze() != c1 {
		t.Fatal("Freeze must cache between mutations")
	}
	// Topology mutation invalidates; the old snapshot stays intact.
	a, _ := g.VertexByKey("V", "v0")
	b, _ := g.VertexByKey("V", "v3")
	oldDeg := len(c1.Neighbors(a))
	if _, err := g.AddEdge("E", a, b, nil); err != nil {
		t.Fatal(err)
	}
	c2 := g.Freeze()
	if c2 == c1 {
		t.Fatal("AddEdge must invalidate the frozen CSR")
	}
	if len(c1.Neighbors(a)) != oldDeg {
		t.Fatal("old snapshot mutated")
	}
	if len(c2.Neighbors(a)) != oldDeg+1 {
		t.Fatalf("new snapshot degree %d, want %d", len(c2.Neighbors(a)), oldDeg+1)
	}
	csrInvariants(t, g, c2)
	// AddVertex also invalidates (offsets must grow).
	if _, err := g.AddVertex("V", "extra", nil); err != nil {
		t.Fatal(err)
	}
	c3 := g.Freeze()
	if c3 == c2 {
		t.Fatal("AddVertex must invalidate the frozen CSR")
	}
	if c3.NumVertices() != g.NumVertices() {
		t.Fatalf("rebuilt CSR has %d vertices, want %d", c3.NumVertices(), g.NumVertices())
	}
	csrInvariants(t, g, c3)
	// Attribute updates are not topology: the snapshot survives.
	if err := g.SetVertexAttr(a, "name", value.NewString("renamed")); err != nil {
		t.Fatal(err)
	}
	if g.Freeze() != c3 {
		t.Fatal("SetVertexAttr must not invalidate the frozen CSR")
	}
}

func TestFreezeEmptyGraph(t *testing.T) {
	s := NewSchema()
	if _, err := s.AddVertexType("V"); err != nil {
		t.Fatal(err)
	}
	g := New(s)
	c := g.Freeze()
	if c.NumVertices() != 0 || c.NumHalfEdges() != 0 {
		t.Fatalf("empty graph CSR: %d vertices, %d halves", c.NumVertices(), c.NumHalfEdges())
	}
}
