package graph

import (
	"fmt"
	"time"

	"gsqlgo/internal/value"
)

// datetime layouts accepted by ParseDatetime, most specific first.
var datetimeLayouts = []string{
	"2006-01-02 15:04:05",
	"2006-01-02T15:04:05",
	"2006-01-02",
}

// ParseDatetime parses a datetime literal in one of the accepted
// layouts (UTC) into a datetime value.
func ParseDatetime(s string) (value.Value, error) {
	for _, layout := range datetimeLayouts {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return value.NewDatetime(t.Unix()), nil
		}
	}
	return value.Null, fmt.Errorf("graph: cannot parse datetime %q", s)
}

// MustDatetime is ParseDatetime for trusted literals; it panics on
// malformed input.
func MustDatetime(s string) value.Value {
	v, err := ParseDatetime(s)
	if err != nil {
		panic(err)
	}
	return v
}
