package graph

import (
	"sync"
	"sync/atomic"

	"gsqlgo/internal/value"
)

// This file holds the MVCC machinery behind Graph: shared append-only
// storage, per-vertex atomic cells, snapshot publication, and the fold
// step that re-bases attribute version chains and the CSR.
//
// The design in one paragraph: a *Graph is a cheap view struct over
// storage owned by a shared hub. Columns (vtype, vkeys, etype, esrc,
// edst, eattrs, and the outer cell arrays) are append-only, so a view
// is just the slice headers captured at publish time — a reader with a
// header of length n never touches index ≥ n, and the single writer
// only ever writes at index ≥ n of the same backing array (or into a
// fresh backing after a realloc, which leaves the old one untouched).
// The two places the old representation mutated in place — a vertex's
// adjacency list header and its attribute row — become per-vertex
// cells holding an atomic pointer to immutable state: adjacency cells
// point at a full-prefix half-edge list (views trim by edge horizon),
// attribute cells point at a version-chained row (views walk the chain
// to the newest version at or below their attr horizon). After every
// mutation the writer publishes a fresh view via one atomic pointer
// store; Snapshot() is one atomic load. Once enough delta has
// accumulated past the last fold point, the writer folds: attribute
// chains are cut (new cells, so pinned readers keep their versions)
// and the fold point moves, which re-bases the patched CSR that
// Freeze() builds for post-fold snapshots.

// DefaultFoldThreshold is the number of delta records (vertices +
// edges + attribute sets since the last fold point) that triggers an
// automatic fold. See Graph.SetFoldThreshold.
const DefaultFoldThreshold = 4096

// shared is the hub owned by one Graph lineage: the head and every
// snapshot view of it point at the same shared.
type shared struct {
	// epoch counts topology mutations; attrSeq counts attribute sets.
	// Together with the fold point they define how much delta the
	// current head carries.
	epoch   atomic.Uint64
	attrSeq atomic.Uint64

	// current is the most recently published snapshot view.
	current atomic.Pointer[Graph]

	// fold is the snapshot view captured at the last fold point; the
	// base CSR is built at exactly its horizons so newer snapshots can
	// patch instead of rebuild.
	fold  atomic.Pointer[Graph]
	folds atomic.Uint64

	// foldThreshold: 0 means DefaultFoldThreshold, < 0 disables
	// automatic folds (tests fold manually).
	foldThreshold atomic.Int64

	// csr caches the most recently built snapshot CSR (any horizon);
	// base caches the canonical CSR at the fold point.
	csr  atomic.Pointer[csrCache]
	base atomic.Pointer[csrCache]
}

func (sh *shared) threshold() int64 {
	t := sh.foldThreshold.Load()
	if t == 0 {
		return DefaultFoldThreshold
	}
	return t
}

// csrCache pairs a built CSR with the exact horizons it covers.
type csrCache struct {
	nV, nE int
	c      *CSR
}

// adjCell is one vertex's adjacency slot. The pointed-at list is the
// full head-side prefix; views trim trailing half-edges whose Edge id
// is at or beyond their edge horizon (edge ids ascend within a list,
// so visibility is a suffix truncation). The cell is a pointer-sized
// struct (rather than an inline atomic in the outer slice) so the
// outer array can be appended to and copied without tripping vet's
// copylocks check.
type adjCell struct {
	p atomic.Pointer[[]HalfEdge]
}

// attrCell is one vertex's attribute slot: an atomic pointer to the
// newest version of its row. Older versions hang off prev; a view
// walks the chain until it finds a version at or below its attribute
// horizon. Rows are immutable once stored.
type attrCell struct {
	p atomic.Pointer[attrRow]
}

type attrRow struct {
	vals []value.Value // the row's attribute values, immutable once stored
	ver  uint64        // attrSeq at which this version was set (0 for the insert row)
	prev *attrRow      // next-older version, nil once folded
}

// keyMap is one vertex type's primary-key index. sync.Map fits the
// single-writer/many-reader discipline exactly: the writer Stores on
// insert, readers Load lock-free and filter by vertex horizon.
type keyMap struct {
	m sync.Map // string key -> VID
}

// vidList is one vertex type's by-type index: an atomic pointer to the
// full-prefix ascending VID list; views trim by vertex horizon.
type vidList struct {
	p atomic.Pointer[[]VID]
}

// Snapshot returns an immutable view of the graph as of the last
// published mutation. The view is itself a *Graph — every read method
// works on it unchanged — but it is frozen: its contents never change
// no matter how the head graph is mutated afterwards, its Epoch() is
// pinned, and mutating it panics. Snapshots are cheap (one atomic
// load; the view struct is shared, not copied) and safe to hold for
// arbitrarily long. Calling Snapshot on a snapshot returns it
// unchanged.
func (g *Graph) Snapshot() *Graph {
	if !g.head {
		return g
	}
	return g.sh.current.Load()
}

// IsSnapshot reports whether g is an immutable snapshot view rather
// than the mutable head.
func (g *Graph) IsSnapshot() bool { return !g.head }

// publish captures the head's current slice headers and horizons as a
// fresh immutable view and makes it the lineage's current snapshot.
// Called by the writer after every applied mutation.
func (g *Graph) publish() {
	v := *g
	v.head = false
	v.observer = nil
	v.epochAt = g.sh.epoch.Load()
	g.sh.current.Store(&v)
}

// MVCCStats is a point-in-time summary of the lineage's MVCC state,
// read lock-free from the head (or any snapshot).
type MVCCStats struct {
	Epoch        uint64 // topology mutations applied
	AttrSets     uint64 // attribute sets applied
	Folds        uint64 // folds performed
	DeltaRecords uint64 // mutations since the last fold point
	BaseVertices int    // vertex horizon of the fold point
	BaseEdges    int    // edge horizon of the fold point
}

// MVCCStats returns current MVCC counters for the graph's lineage.
func (g *Graph) MVCCStats() MVCCStats {
	sh := g.sh
	st := MVCCStats{
		Epoch:    sh.epoch.Load(),
		AttrSets: sh.attrSeq.Load(),
		Folds:    sh.folds.Load(),
	}
	if fp := sh.fold.Load(); fp != nil {
		st.DeltaRecords = (st.Epoch - fp.epochAt) + (st.AttrSets - fp.attrVer)
		st.BaseVertices = len(fp.vtype)
		st.BaseEdges = len(fp.etype)
	}
	return st
}

// SetFoldThreshold tunes when the writer folds accumulated deltas into
// a fresh base: after any mutation that leaves at least n delta
// records (vertices + edges + attribute sets since the last fold
// point), the mutation folds before returning. n == 0 restores
// DefaultFoldThreshold; n < 0 disables automatic folds entirely
// (Fold may still be called explicitly).
func (g *Graph) SetFoldThreshold(n int) {
	if n == 0 {
		g.sh.foldThreshold.Store(0)
		return
	}
	g.sh.foldThreshold.Store(int64(n))
}

// deltaRecords returns the mutation count since the last fold point.
func (g *Graph) deltaRecords() uint64 {
	fp := g.sh.fold.Load()
	return (g.sh.epoch.Load() - fp.epochAt) + (g.sh.attrSeq.Load() - fp.attrVer)
}

func (g *Graph) maybeFold() {
	if t := g.sh.threshold(); t > 0 && g.deltaRecords() >= uint64(t) {
		g.Fold()
	}
}

// Fold advances the lineage's fold point to the current head state:
// attribute version chains are cut (readers pinned on older snapshots
// keep their versions — the cut allocates fresh cells rather than
// truncating shared ones) and the snapshot CSR re-bases here, so the
// next Freeze builds one canonical CSR at this horizon and later
// snapshots patch it with their delta edges instead of rebuilding.
// Fold is a writer-side operation: it must only be called on the head,
// serialized with mutations.
func (g *Graph) Fold() {
	g.mutableOnly("Fold")
	fp := g.sh.fold.Load()
	if fp == nil || g.attrVer > fp.attrVer {
		g.cutAttrChains()
	}
	g.publish()
	g.sh.fold.Store(g.sh.current.Load())
	g.sh.folds.Add(1)
}

// cutAttrChains rebuilds the head's attribute cell array so that every
// cell whose row carries history holds a fresh single-version row.
// Cells without history are shared with the old array; readers pinned
// on pre-fold snapshots keep the old array and its chained rows.
func (g *Graph) cutAttrChains() {
	changed := false
	next := make([]*attrCell, len(g.vattr), cap(g.vattr))
	copy(next, g.vattr)
	for i, cell := range next {
		row := cell.p.Load()
		if row.prev == nil {
			continue
		}
		nc := &attrCell{}
		nc.p.Store(&attrRow{vals: row.vals, ver: row.ver})
		next[i] = nc
		changed = true
	}
	if changed {
		g.vattr = next
	}
}

func (g *Graph) mutableOnly(op string) {
	if !g.head {
		panic("graph: " + op + " called on an immutable snapshot")
	}
}
