package graph

import (
	"errors"
	"fmt"
	"sync/atomic"

	"gsqlgo/internal/value"
)

// ErrDuplicateKey reports an AddVertex whose (typeName, key) pair is
// already present. Rejecting duplicates (rather than silently inserting
// a second vertex unreachable via VertexByKey) is load-bearing for
// durability: WAL replay re-issues the original mutation sequence and
// must reach the exact same state, so inserts have to be deterministic
// and key-unique. Match with errors.Is; it is always returned wrapped.
var ErrDuplicateKey = errors.New("duplicate vertex key")

// VID identifies a vertex within a Graph.
type VID int32

// EID identifies an edge within a Graph.
type EID int32

// Dir is the traversal direction of a half-edge relative to the vertex
// whose adjacency list contains it. It corresponds one-to-one to the
// paper's direction-adorned alphabet: an E-edge traversed via DirOut
// spells the symbol "E>", via DirIn the symbol "<E", and via DirUndir
// the symbol "E".
type Dir uint8

// Half-edge traversal directions.
const (
	DirOut   Dir = iota // directed edge leaving this vertex
	DirIn               // directed edge arriving at this vertex
	DirUndir            // undirected edge
)

// String returns a short name for the direction.
func (d Dir) String() string {
	switch d {
	case DirOut:
		return "out"
	case DirIn:
		return "in"
	case DirUndir:
		return "undir"
	default:
		return "dir?"
	}
}

// HalfEdge is one entry of a vertex's adjacency list.
type HalfEdge struct {
	To   VID   // the other endpoint
	Edge EID   // the underlying edge
	Type int16 // edge type id
	Dir  Dir   // traversal direction from the owning vertex
}

// Graph is an in-memory property graph. It is safe for concurrent
// reads once loading has finished; mutation is not synchronized.
type Graph struct {
	Schema *Schema

	vtype    []int16         // vertex type id per vertex
	vattrs   [][]value.Value // attribute values per vertex
	vkeys    []string        // primary key per vertex
	keyIndex []map[string]VID
	byType   [][]VID // vertices per vertex type

	adj [][]HalfEdge

	etype  []int16
	esrc   []VID
	edst   []VID
	eattrs [][]value.Value

	// frozen caches the CSR snapshot of adj (see Freeze); topology
	// mutation clears it so the next Freeze rebuilds.
	frozen atomic.Pointer[CSR]
	// observer, when attached, is notified of every mutation after
	// validation and before apply (see MutationObserver).
	observer MutationObserver

	// epoch counts topology mutations (AddVertex/AddEdge). Every
	// topology-derived cache outside this package — most prominently
	// the engine-level SDMC count cache in internal/core — stamps its
	// entries with the epoch it observed and treats a mismatch as
	// invalidation, exactly mirroring how mutation invalidates the
	// frozen CSR. Attribute updates do not advance it: like the CSR,
	// epoch-guarded caches hold topology-derived state only.
	epoch atomic.Uint64
}

// New returns an empty graph over the given schema.
func New(s *Schema) *Graph {
	g := &Graph{Schema: s}
	g.keyIndex = make([]map[string]VID, len(s.vertexTypes))
	g.byType = make([][]VID, len(s.vertexTypes))
	for i := range g.keyIndex {
		g.keyIndex[i] = make(map[string]VID)
	}
	return g
}

// Epoch returns the current topology-mutation epoch. It advances on
// every AddVertex/AddEdge — the same events that invalidate the frozen
// CSR — so callers can stamp topology-derived caches with the epoch
// they computed under and discard them when it moves. Attribute
// updates (SetVertexAttr) leave the epoch unchanged.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.vtype) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.etype) }

// AddVertex inserts a vertex of the named type with the given primary
// key and attributes. Missing attributes default to their type's zero
// value; unknown attribute names or mistyped values are errors.
func (g *Graph) AddVertex(typeName, key string, attrs map[string]value.Value) (VID, error) {
	vt := g.Schema.VertexType(typeName)
	if vt == nil {
		return 0, fmt.Errorf("graph: unknown vertex type %q", typeName)
	}
	if _, dup := g.keyIndex[vt.ID][key]; dup {
		return 0, fmt.Errorf("graph: %w: %s %q", ErrDuplicateKey, typeName, key)
	}
	row, err := buildAttrRow(vt.Attrs, vt.attrIdx, attrs, "vertex "+typeName)
	if err != nil {
		return 0, err
	}
	id := VID(len(g.vtype))
	if g.observer != nil {
		if err := g.observer.OnAddVertex(id, typeName, key, row); err != nil {
			return 0, fmt.Errorf("graph: persisting vertex %s %q: %w", typeName, key, err)
		}
	}
	g.vtype = append(g.vtype, int16(vt.ID))
	g.vattrs = append(g.vattrs, row)
	g.vkeys = append(g.vkeys, key)
	g.adj = append(g.adj, nil)
	g.keyIndex[vt.ID][key] = id
	g.byType[vt.ID] = append(g.byType[vt.ID], id)
	g.frozen.Store(nil)
	g.epoch.Add(1)
	return id, nil
}

// AddEdge inserts an edge of the named type between two vertices. For
// an undirected edge type the (src, dst) order is immaterial.
func (g *Graph) AddEdge(typeName string, src, dst VID, attrs map[string]value.Value) (EID, error) {
	et := g.Schema.EdgeType(typeName)
	if et == nil {
		return 0, fmt.Errorf("graph: unknown edge type %q", typeName)
	}
	if int(src) >= len(g.vtype) || int(dst) >= len(g.vtype) || src < 0 || dst < 0 {
		return 0, fmt.Errorf("graph: edge %s endpoints out of range (%d, %d)", typeName, src, dst)
	}
	row, err := buildAttrRow(et.Attrs, et.attrIdx, attrs, "edge "+typeName)
	if err != nil {
		return 0, err
	}
	id := EID(len(g.etype))
	if g.observer != nil {
		if err := g.observer.OnAddEdge(id, typeName, src, dst, row); err != nil {
			return 0, fmt.Errorf("graph: persisting edge %s (%d, %d): %w", typeName, src, dst, err)
		}
	}
	g.etype = append(g.etype, int16(et.ID))
	g.esrc = append(g.esrc, src)
	g.edst = append(g.edst, dst)
	g.eattrs = append(g.eattrs, row)
	if et.Directed {
		g.adj[src] = append(g.adj[src], HalfEdge{To: dst, Edge: id, Type: int16(et.ID), Dir: DirOut})
		g.adj[dst] = append(g.adj[dst], HalfEdge{To: src, Edge: id, Type: int16(et.ID), Dir: DirIn})
	} else {
		g.adj[src] = append(g.adj[src], HalfEdge{To: dst, Edge: id, Type: int16(et.ID), Dir: DirUndir})
		if src != dst {
			g.adj[dst] = append(g.adj[dst], HalfEdge{To: src, Edge: id, Type: int16(et.ID), Dir: DirUndir})
		}
	}
	g.frozen.Store(nil)
	g.epoch.Add(1)
	return id, nil
}

func buildAttrRow(defs []AttrDef, idx map[string]int, attrs map[string]value.Value, what string) ([]value.Value, error) {
	row := make([]value.Value, len(defs))
	for i, d := range defs {
		row[i] = d.Type.Zero()
	}
	for name, v := range attrs {
		i, ok := idx[name]
		if !ok {
			return nil, fmt.Errorf("graph: %s has no attribute %q", what, name)
		}
		if !defs[i].Type.Accepts(v) {
			return nil, fmt.Errorf("graph: %s attribute %q: cannot store %s into %s", what, name, v.Kind(), defs[i].Type)
		}
		row[i] = defs[i].Type.coerce(v)
	}
	return row, nil
}

// VertexByKey resolves a vertex by type name and primary key.
func (g *Graph) VertexByKey(typeName, key string) (VID, bool) {
	vt := g.Schema.VertexType(typeName)
	if vt == nil {
		return 0, false
	}
	id, ok := g.keyIndex[vt.ID][key]
	return id, ok
}

// VertexKey returns the primary key of a vertex.
func (g *Graph) VertexKey(v VID) string { return g.vkeys[v] }

// VertexTypeOf returns the type of a vertex.
func (g *Graph) VertexTypeOf(v VID) *VertexType { return g.Schema.vertexTypes[g.vtype[v]] }

// VertexTypeID returns the schema index of a vertex's type — the key
// compiled accumulator kernels use to index pre-resolved attribute
// offset tables without touching the schema's name maps.
func (g *Graph) VertexTypeID(v VID) int { return int(g.vtype[v]) }

// VertexAttrAt returns a vertex attribute by pre-resolved column
// offset (see VertexType.AttrIndex). The offset must be valid for the
// vertex's type; compiled kernels guarantee that by resolving offsets
// per type id at install time.
func (g *Graph) VertexAttrAt(v VID, i int) value.Value { return g.vattrs[v][i] }

// VertexAttrIntAt / VertexAttrFloatAt read a pre-resolved column as a
// machine scalar without materializing a Value copy; ok is false when
// the stored kind differs (compiled kernels then fall back to their
// boxed path).
func (g *Graph) VertexAttrIntAt(v VID, i int) (int64, bool)     { return g.vattrs[v][i].TryInt() }
func (g *Graph) VertexAttrFloatAt(v VID, i int) (float64, bool) { return g.vattrs[v][i].TryFloat() }

// VerticesOfType returns all vertices of the named type (nil if the
// type is unknown). The returned slice must not be mutated.
func (g *Graph) VerticesOfType(typeName string) []VID {
	vt := g.Schema.VertexType(typeName)
	if vt == nil {
		return nil
	}
	return g.byType[vt.ID]
}

// VertexAttr returns the named attribute of a vertex.
func (g *Graph) VertexAttr(v VID, name string) (value.Value, bool) {
	vt := g.VertexTypeOf(v)
	i := vt.AttrIndex(name)
	if i < 0 {
		return value.Null, false
	}
	return g.vattrs[v][i], true
}

// SetVertexAttr updates the named attribute of a vertex.
func (g *Graph) SetVertexAttr(v VID, name string, val value.Value) error {
	vt := g.VertexTypeOf(v)
	i := vt.AttrIndex(name)
	if i < 0 {
		return fmt.Errorf("graph: vertex type %s has no attribute %q", vt.Name, name)
	}
	if !vt.Attrs[i].Type.Accepts(val) {
		return fmt.Errorf("graph: attribute %q: cannot store %s into %s", name, val.Kind(), vt.Attrs[i].Type)
	}
	coerced := vt.Attrs[i].Type.coerce(val)
	if g.observer != nil {
		if err := g.observer.OnSetVertexAttr(v, name, coerced); err != nil {
			return fmt.Errorf("graph: persisting attribute %q of vertex %d: %w", name, v, err)
		}
	}
	g.vattrs[v][i] = coerced
	return nil
}

// EdgeTypeOf returns the type of an edge.
func (g *Graph) EdgeTypeOf(e EID) *EdgeType { return g.Schema.edgeTypes[g.etype[e]] }

// EdgeTypeID returns the schema index of an edge's type (the edge
// counterpart of VertexTypeID).
func (g *Graph) EdgeTypeID(e EID) int { return int(g.etype[e]) }

// EdgeAttrAt returns an edge attribute by pre-resolved column offset
// (the edge counterpart of VertexAttrAt).
func (g *Graph) EdgeAttrAt(e EID, i int) value.Value { return g.eattrs[e][i] }

// EdgeAttrIntAt / EdgeAttrFloatAt are the edge counterparts of the
// typed vertex column reads.
func (g *Graph) EdgeAttrIntAt(e EID, i int) (int64, bool)     { return g.eattrs[e][i].TryInt() }
func (g *Graph) EdgeAttrFloatAt(e EID, i int) (float64, bool) { return g.eattrs[e][i].TryFloat() }

// EdgeEndpoints returns the (source, destination) pair of an edge as
// stored; for undirected edges the order is insertion order.
func (g *Graph) EdgeEndpoints(e EID) (VID, VID) { return g.esrc[e], g.edst[e] }

// EdgeAttr returns the named attribute of an edge.
func (g *Graph) EdgeAttr(e EID, name string) (value.Value, bool) {
	et := g.EdgeTypeOf(e)
	i := et.AttrIndex(name)
	if i < 0 {
		return value.Null, false
	}
	return g.eattrs[e][i], true
}

// Neighbors returns the adjacency list of a vertex: one HalfEdge per
// incident edge, with the traversal direction seen from v. The slice
// must not be mutated.
func (g *Graph) Neighbors(v VID) []HalfEdge { return g.adj[v] }

// OutDegree returns the number of edges leaving v: outgoing directed
// edges plus incident undirected edges (TigerGraph's outdegree()).
func (g *Graph) OutDegree(v VID) int {
	n := 0
	for _, h := range g.adj[v] {
		if h.Dir == DirOut || h.Dir == DirUndir {
			n++
		}
	}
	return n
}

// OutDegreeByType is OutDegree restricted to one edge type.
func (g *Graph) OutDegreeByType(v VID, edgeType string) int {
	et := g.Schema.EdgeType(edgeType)
	if et == nil {
		return 0
	}
	n := 0
	for _, h := range g.adj[v] {
		if int(h.Type) == et.ID && (h.Dir == DirOut || h.Dir == DirUndir) {
			n++
		}
	}
	return n
}

// Degree returns the total number of incident half-edges of v.
func (g *Graph) Degree(v VID) int { return len(g.adj[v]) }
