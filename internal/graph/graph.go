package graph

import (
	"errors"
	"fmt"

	"gsqlgo/internal/value"
)

// ErrDuplicateKey reports an AddVertex whose (typeName, key) pair is
// already present. Rejecting duplicates (rather than silently inserting
// a second vertex unreachable via VertexByKey) is load-bearing for
// durability: WAL replay re-issues the original mutation sequence and
// must reach the exact same state, so inserts have to be deterministic
// and key-unique. Match with errors.Is; it is always returned wrapped.
var ErrDuplicateKey = errors.New("duplicate vertex key")

// VID identifies a vertex within a Graph.
type VID int32

// EID identifies an edge within a Graph.
type EID int32

// Dir is the traversal direction of a half-edge relative to the vertex
// whose adjacency list contains it. It corresponds one-to-one to the
// paper's direction-adorned alphabet: an E-edge traversed via DirOut
// spells the symbol "E>", via DirIn the symbol "<E", and via DirUndir
// the symbol "E".
type Dir uint8

// Half-edge traversal directions.
const (
	DirOut   Dir = iota // directed edge leaving this vertex
	DirIn               // directed edge arriving at this vertex
	DirUndir            // undirected edge
)

// String returns a short name for the direction.
func (d Dir) String() string {
	switch d {
	case DirOut:
		return "out"
	case DirIn:
		return "in"
	case DirUndir:
		return "undir"
	default:
		return "dir?"
	}
}

// HalfEdge is one entry of a vertex's adjacency list.
type HalfEdge struct {
	To   VID   // the other endpoint
	Edge EID   // the underlying edge
	Type int16 // edge type id
	Dir  Dir   // traversal direction from the owning vertex
}

// Graph is an in-memory property graph with MVCC snapshot reads. A
// Graph value is either the mutable *head* of a lineage or an
// immutable *snapshot view* of it (see Snapshot); both expose the same
// read API. The head accepts mutations from one writer at a time
// (external serialization required, e.g. the server's writer mutex)
// and publishes a fresh snapshot after every applied mutation; any
// number of readers may hold and read snapshots concurrently with the
// writer, lock-free, and each snapshot observes exactly the mutations
// published before it was taken — never a half-applied batch.
//
// Storage is append-only and structurally shared: a snapshot captures
// slice-header prefixes plus visibility horizons rather than copying
// data, so taking one is O(1) and holding one pins only the versions
// it can see.
type Graph struct {
	Schema *Schema

	sh   *shared // the lineage hub; same object for head and all views
	head bool    // true only for the mutable head

	// Append-only columns. A view's visibility horizons are the header
	// lengths themselves: len(vtype) vertices and len(etype) edges.
	vtype  []int16     // vertex type id per vertex
	vkeys  []string    // primary key per vertex
	vattr  []*attrCell // version-chained attribute rows per vertex
	adjc   []*adjCell  // atomic full-prefix adjacency per vertex
	etype  []int16
	esrc   []VID
	edst   []VID
	eattrs [][]value.Value

	// Schema-fixed shared indexes (one slot per vertex type, the outer
	// slice never reallocates); reads filter by the view's vertex
	// horizon.
	keys   []*keyMap
	byType []*vidList

	// Horizons. attrVer is the newest visible attribute version: the
	// head keeps it equal to sh.attrSeq, a view freezes it at publish.
	// epochAt is a view's pinned topology epoch (the head reads the
	// live counter instead).
	attrVer uint64
	epochAt uint64

	// observer, when attached, is notified of every mutation after
	// validation and before apply (see MutationObserver). Head only.
	observer MutationObserver
}

// New returns an empty graph over the given schema: the mutable head
// of a fresh lineage, with an empty snapshot already published.
func New(s *Schema) *Graph {
	g := &Graph{Schema: s, sh: &shared{}, head: true}
	g.keys = make([]*keyMap, len(s.vertexTypes))
	g.byType = make([]*vidList, len(s.vertexTypes))
	for i := range g.keys {
		g.keys[i] = &keyMap{}
		g.byType[i] = &vidList{}
	}
	g.publish()
	g.sh.fold.Store(g.sh.current.Load())
	return g
}

// Epoch returns the topology-mutation epoch: the head reports the live
// counter, a snapshot its pinned value. The epoch advances on every
// AddVertex/AddEdge — the same events that re-base the CSR — so
// callers can stamp topology-derived caches with the epoch they
// computed under and discard them when it moves. Attribute updates
// (SetVertexAttr) leave the epoch unchanged.
func (g *Graph) Epoch() uint64 {
	if g.head {
		return g.sh.epoch.Load()
	}
	return g.epochAt
}

// NumVertices returns the number of vertices visible to g.
func (g *Graph) NumVertices() int { return len(g.vtype) }

// NumEdges returns the number of edges visible to g.
func (g *Graph) NumEdges() int { return len(g.etype) }

// AddVertex inserts a vertex of the named type with the given primary
// key and attributes. Missing attributes default to their type's zero
// value; unknown attribute names or mistyped values are errors. Head
// only; mutating a snapshot panics.
func (g *Graph) AddVertex(typeName, key string, attrs map[string]value.Value) (VID, error) {
	g.mutableOnly("AddVertex")
	vt := g.Schema.VertexType(typeName)
	if vt == nil {
		return 0, fmt.Errorf("graph: unknown vertex type %q", typeName)
	}
	if _, dup := g.keys[vt.ID].m.Load(key); dup {
		return 0, fmt.Errorf("graph: %w: %s %q", ErrDuplicateKey, typeName, key)
	}
	row, err := buildAttrRow(vt.Attrs, vt.attrIdx, attrs, "vertex "+typeName)
	if err != nil {
		return 0, err
	}
	id := VID(len(g.vtype))
	if g.observer != nil {
		if err := g.observer.OnAddVertex(id, typeName, key, row); err != nil {
			return 0, fmt.Errorf("graph: persisting vertex %s %q: %w", typeName, key, err)
		}
	}
	ac := &attrCell{}
	ac.p.Store(&attrRow{vals: row})
	g.vtype = append(g.vtype, int16(vt.ID))
	g.vkeys = append(g.vkeys, key)
	g.vattr = append(g.vattr, ac)
	g.adjc = append(g.adjc, &adjCell{})
	g.keys[vt.ID].m.Store(key, id)
	bl := g.byType[vt.ID]
	var vs []VID
	if p := bl.p.Load(); p != nil {
		vs = *p
	}
	vs = append(vs, id)
	bl.p.Store(&vs)
	g.sh.epoch.Add(1)
	g.publish()
	g.maybeFold()
	return id, nil
}

// AddEdge inserts an edge of the named type between two vertices. For
// an undirected edge type the (src, dst) order is immaterial. Head
// only; mutating a snapshot panics.
func (g *Graph) AddEdge(typeName string, src, dst VID, attrs map[string]value.Value) (EID, error) {
	g.mutableOnly("AddEdge")
	et := g.Schema.EdgeType(typeName)
	if et == nil {
		return 0, fmt.Errorf("graph: unknown edge type %q", typeName)
	}
	if int(src) >= len(g.vtype) || int(dst) >= len(g.vtype) || src < 0 || dst < 0 {
		return 0, fmt.Errorf("graph: edge %s endpoints out of range (%d, %d)", typeName, src, dst)
	}
	row, err := buildAttrRow(et.Attrs, et.attrIdx, attrs, "edge "+typeName)
	if err != nil {
		return 0, err
	}
	id := EID(len(g.etype))
	if g.observer != nil {
		if err := g.observer.OnAddEdge(id, typeName, src, dst, row); err != nil {
			return 0, fmt.Errorf("graph: persisting edge %s (%d, %d): %w", typeName, src, dst, err)
		}
	}
	g.etype = append(g.etype, int16(et.ID))
	g.esrc = append(g.esrc, src)
	g.edst = append(g.edst, dst)
	g.eattrs = append(g.eattrs, row)
	if et.Directed {
		g.adjc[src].appendHalf(HalfEdge{To: dst, Edge: id, Type: int16(et.ID), Dir: DirOut})
		g.adjc[dst].appendHalf(HalfEdge{To: src, Edge: id, Type: int16(et.ID), Dir: DirIn})
	} else {
		g.adjc[src].appendHalf(HalfEdge{To: dst, Edge: id, Type: int16(et.ID), Dir: DirUndir})
		if src != dst {
			g.adjc[dst].appendHalf(HalfEdge{To: src, Edge: id, Type: int16(et.ID), Dir: DirUndir})
		}
	}
	g.sh.epoch.Add(1)
	g.publish()
	g.maybeFold()
	return id, nil
}

// appendHalf appends one half-edge to a cell's full-prefix list. The
// store publishes the longer header; readers holding the shorter
// header never touch the appended slot, and a realloc leaves their
// backing array intact.
func (c *adjCell) appendHalf(h HalfEdge) {
	var hs []HalfEdge
	if p := c.p.Load(); p != nil {
		hs = *p
	}
	hs = append(hs, h)
	c.p.Store(&hs)
}

func buildAttrRow(defs []AttrDef, idx map[string]int, attrs map[string]value.Value, what string) ([]value.Value, error) {
	row := make([]value.Value, len(defs))
	for i, d := range defs {
		row[i] = d.Type.Zero()
	}
	for name, v := range attrs {
		i, ok := idx[name]
		if !ok {
			return nil, fmt.Errorf("graph: %s has no attribute %q", what, name)
		}
		if !defs[i].Type.Accepts(v) {
			return nil, fmt.Errorf("graph: %s attribute %q: cannot store %s into %s", what, name, v.Kind(), defs[i].Type)
		}
		row[i] = defs[i].Type.coerce(v)
	}
	return row, nil
}

// VertexByKey resolves a vertex by type name and primary key among the
// vertices visible to g.
func (g *Graph) VertexByKey(typeName, key string) (VID, bool) {
	vt := g.Schema.VertexType(typeName)
	if vt == nil {
		return 0, false
	}
	x, ok := g.keys[vt.ID].m.Load(key)
	if !ok {
		return 0, false
	}
	id := x.(VID)
	if int(id) >= len(g.vtype) {
		return 0, false // inserted after this snapshot was taken
	}
	return id, true
}

// VertexKey returns the primary key of a vertex.
func (g *Graph) VertexKey(v VID) string { return g.vkeys[v] }

// VertexTypeOf returns the type of a vertex.
func (g *Graph) VertexTypeOf(v VID) *VertexType { return g.Schema.vertexTypes[g.vtype[v]] }

// VertexTypeID returns the schema index of a vertex's type — the key
// compiled accumulator kernels use to index pre-resolved attribute
// offset tables without touching the schema's name maps.
func (g *Graph) VertexTypeID(v VID) int { return int(g.vtype[v]) }

// attrRowOf returns the newest version of v's attribute row visible to
// g. The chain always bottoms out at the insert row (ver 0), which is
// visible to every view that can see the vertex at all.
func (g *Graph) attrRowOf(v VID) []value.Value {
	r := g.vattr[v].p.Load()
	for r.ver > g.attrVer {
		r = r.prev
	}
	return r.vals
}

// VertexAttrAt returns a vertex attribute by pre-resolved column
// offset (see VertexType.AttrIndex). The offset must be valid for the
// vertex's type; compiled kernels guarantee that by resolving offsets
// per type id at install time.
func (g *Graph) VertexAttrAt(v VID, i int) value.Value { return g.attrRowOf(v)[i] }

// VertexAttrIntAt / VertexAttrFloatAt read a pre-resolved column as a
// machine scalar without materializing a Value copy; ok is false when
// the stored kind differs (compiled kernels then fall back to their
// boxed path).
func (g *Graph) VertexAttrIntAt(v VID, i int) (int64, bool)     { return g.attrRowOf(v)[i].TryInt() }
func (g *Graph) VertexAttrFloatAt(v VID, i int) (float64, bool) { return g.attrRowOf(v)[i].TryFloat() }

// VerticesOfType returns all vertices of the named type visible to g
// (nil if the type is unknown). The returned slice must not be
// mutated.
func (g *Graph) VerticesOfType(typeName string) []VID {
	vt := g.Schema.VertexType(typeName)
	if vt == nil {
		return nil
	}
	p := g.byType[vt.ID].p.Load()
	if p == nil {
		return nil
	}
	vs := *p
	// VIDs ascend within the list, so visibility is suffix truncation.
	for len(vs) > 0 && int(vs[len(vs)-1]) >= len(g.vtype) {
		vs = vs[:len(vs)-1]
	}
	return vs
}

// VertexAttr returns the named attribute of a vertex.
func (g *Graph) VertexAttr(v VID, name string) (value.Value, bool) {
	vt := g.VertexTypeOf(v)
	i := vt.AttrIndex(name)
	if i < 0 {
		return value.Null, false
	}
	return g.attrRowOf(v)[i], true
}

// SetVertexAttr updates the named attribute of a vertex by prepending
// a fresh version to its row chain; snapshots taken earlier keep
// reading the version they pinned. Head only; mutating a snapshot
// panics.
func (g *Graph) SetVertexAttr(v VID, name string, val value.Value) error {
	g.mutableOnly("SetVertexAttr")
	vt := g.VertexTypeOf(v)
	i := vt.AttrIndex(name)
	if i < 0 {
		return fmt.Errorf("graph: vertex type %s has no attribute %q", vt.Name, name)
	}
	if !vt.Attrs[i].Type.Accepts(val) {
		return fmt.Errorf("graph: attribute %q: cannot store %s into %s", name, val.Kind(), vt.Attrs[i].Type)
	}
	coerced := vt.Attrs[i].Type.coerce(val)
	if g.observer != nil {
		if err := g.observer.OnSetVertexAttr(v, name, coerced); err != nil {
			return fmt.Errorf("graph: persisting attribute %q of vertex %d: %w", name, v, err)
		}
	}
	cell := g.vattr[v]
	cur := cell.p.Load()
	vals := make([]value.Value, len(cur.vals))
	copy(vals, cur.vals)
	vals[i] = coerced
	ver := g.sh.attrSeq.Add(1)
	cell.p.Store(&attrRow{vals: vals, ver: ver, prev: cur})
	g.attrVer = ver
	g.publish()
	g.maybeFold()
	return nil
}

// EdgeTypeOf returns the type of an edge.
func (g *Graph) EdgeTypeOf(e EID) *EdgeType { return g.Schema.edgeTypes[g.etype[e]] }

// EdgeTypeID returns the schema index of an edge's type (the edge
// counterpart of VertexTypeID).
func (g *Graph) EdgeTypeID(e EID) int { return int(g.etype[e]) }

// EdgeAttrAt returns an edge attribute by pre-resolved column offset
// (the edge counterpart of VertexAttrAt). Edge attributes are
// immutable after insert, so no version chain is needed.
func (g *Graph) EdgeAttrAt(e EID, i int) value.Value { return g.eattrs[e][i] }

// EdgeAttrIntAt / EdgeAttrFloatAt are the edge counterparts of the
// typed vertex column reads.
func (g *Graph) EdgeAttrIntAt(e EID, i int) (int64, bool)     { return g.eattrs[e][i].TryInt() }
func (g *Graph) EdgeAttrFloatAt(e EID, i int) (float64, bool) { return g.eattrs[e][i].TryFloat() }

// EdgeEndpoints returns the (source, destination) pair of an edge as
// stored; for undirected edges the order is insertion order.
func (g *Graph) EdgeEndpoints(e EID) (VID, VID) { return g.esrc[e], g.edst[e] }

// EdgeAttr returns the named attribute of an edge.
func (g *Graph) EdgeAttr(e EID, name string) (value.Value, bool) {
	et := g.EdgeTypeOf(e)
	i := et.AttrIndex(name)
	if i < 0 {
		return value.Null, false
	}
	return g.eattrs[e][i], true
}

// Neighbors returns the adjacency list of a vertex visible to g: one
// HalfEdge per incident edge, with the traversal direction seen from
// v, in insertion order. The slice must not be mutated.
func (g *Graph) Neighbors(v VID) []HalfEdge {
	p := g.adjc[v].p.Load()
	if p == nil {
		return nil
	}
	hs := *p
	// Edge ids ascend within a list, so a view's visibility is suffix
	// truncation at its edge horizon. For the head (and any snapshot
	// at the newest horizon) the loop exits immediately.
	limit := EID(len(g.etype))
	for len(hs) > 0 && hs[len(hs)-1].Edge >= limit {
		hs = hs[:len(hs)-1]
	}
	return hs
}

// OutDegree returns the number of edges leaving v: outgoing directed
// edges plus incident undirected edges (TigerGraph's outdegree()).
func (g *Graph) OutDegree(v VID) int {
	n := 0
	for _, h := range g.Neighbors(v) {
		if h.Dir == DirOut || h.Dir == DirUndir {
			n++
		}
	}
	return n
}

// OutDegreeByType is OutDegree restricted to one edge type.
func (g *Graph) OutDegreeByType(v VID, edgeType string) int {
	et := g.Schema.EdgeType(edgeType)
	if et == nil {
		return 0
	}
	n := 0
	for _, h := range g.Neighbors(v) {
		if int(h.Type) == et.ID && (h.Dir == DirOut || h.Dir == DirUndir) {
			n++
		}
	}
	return n
}

// Degree returns the total number of incident half-edges of v.
func (g *Graph) Degree(v VID) int { return len(g.Neighbors(v)) }
