package graph

import (
	"slices"
)

// CSR is a frozen compressed-sparse-row view of a graph's adjacency:
// every half-edge of every vertex in one flat array, grouped by vertex
// and, within a vertex, sorted by (Type, Dir). It exists for the hot
// traversal kernels (the SDMC counter of internal/match): a flat array
// walks sequentially through memory where per-vertex adjacency lists
// chase one pointer per vertex, and the (Type, Dir) sort lets a kernel
// resolve one DFA transition per segment instead of one per half-edge.
//
// A CSR is immutable once built and safe for concurrent readers. Under
// MVCC a CSR belongs to one snapshot horizon. To avoid rebuilding the
// whole array on every mutation, a lineage keeps one canonical *base*
// CSR built at the last fold point; a snapshot taken past the fold
// point gets a *patched* CSR that shares the base arrays untouched and
// adds dense ext arrays covering only the delta edges. Kernels iterate
// base segments first, then (when HasExt reports true) ext segments —
// the counts they produce are order-independent, so the split run is
// equivalent to a canonical build.
type CSR struct {
	offsets []int32    // len baseV+1; halves[offsets[v]:offsets[v+1]] is v's base adjacency
	halves  []HalfEdge // base half-edges, grouped by vertex, (Type, Dir)-sorted per vertex
	segOff  []int32    // len baseV+1; segs[segOff[v]:segOff[v+1]] are v's base segments
	segs    []Seg      // per-vertex runs of equal (Type, Dir)

	nV int // vertices in the snapshot this CSR serves (≥ baseV)

	// Patched-CSR extension (nil for a canonical build): half-edges of
	// edges inserted after the base horizon, laid out exactly like the
	// base arrays but over all nV vertices.
	extOff    []int32
	extHalves []HalfEdge
	extSegOff []int32
	extSegs   []Seg
}

// Seg is one maximal run of half-edges of a single vertex sharing the
// same (Type, Dir): the half-edges c.HalfEdges(s) can all be traversed
// by the same DFA transition.
type Seg struct {
	Type  int16 // edge type id
	Dir   Dir   // traversal direction
	Start int32 // into the owning flat half-edge array (base or ext)
	End   int32
}

// NumVertices returns the number of vertices in the snapshot.
func (c *CSR) NumVertices() int { return c.nV }

// NumHalfEdges returns the total number of half-edges.
func (c *CSR) NumHalfEdges() int { return len(c.halves) + len(c.extHalves) }

// HasExt reports whether this CSR carries a delta extension (a patched
// CSR); kernels then also walk ExtSegments.
func (c *CSR) HasExt() bool { return c.extOff != nil }

// Neighbors returns v's adjacency sorted by (Type, Dir). For a
// canonical CSR this is a subslice of the flat array; for a patched
// CSR with delta half-edges at v it allocates a concatenation. The
// result must not be mutated.
func (c *CSR) Neighbors(v VID) []HalfEdge {
	var base []HalfEdge
	if int(v) < len(c.offsets)-1 {
		base = c.halves[c.offsets[v]:c.offsets[v+1]]
	}
	if c.extOff == nil {
		return base
	}
	ext := c.extHalves[c.extOff[v]:c.extOff[v+1]]
	if len(ext) == 0 {
		return base
	}
	if len(base) == 0 {
		return ext
	}
	out := make([]HalfEdge, 0, len(base)+len(ext))
	return append(append(out, base...), ext...)
}

// Segments returns v's (Type, Dir) runs over the base half-edges; use
// HalfEdges to resolve them. The slice must not be mutated. Vertices
// inserted after the base horizon have no base segments.
func (c *CSR) Segments(v VID) []Seg {
	if int(v) >= len(c.segOff)-1 {
		return nil
	}
	return c.segs[c.segOff[v]:c.segOff[v+1]]
}

// HalfEdges returns the base half-edges covered by one base segment.
func (c *CSR) HalfEdges(s Seg) []HalfEdge { return c.halves[s.Start:s.End] }

// ExtSegments returns v's (Type, Dir) runs over the delta half-edges
// of a patched CSR (nil for a canonical CSR); use ExtHalfEdges to
// resolve them.
func (c *CSR) ExtSegments(v VID) []Seg {
	if c.extSegOff == nil {
		return nil
	}
	return c.extSegs[c.extSegOff[v]:c.extSegOff[v+1]]
}

// ExtHalfEdges returns the delta half-edges covered by one ext
// segment.
func (c *CSR) ExtHalfEdges(s Seg) []HalfEdge { return c.extHalves[s.Start:s.End] }

// Freeze returns the CSR for g's snapshot horizon, building it on
// first use. The lineage caches two CSRs: the canonical base at the
// last fold point and the most recently built snapshot CSR. A
// snapshot at the fold point returns the base; a snapshot past it
// returns a patched CSR (base arrays shared, delta edges in dense ext
// arrays) built in O(delta); a snapshot pinned before the current fold
// point — a long-running reader that outlived a fold — gets a private
// canonical build.
//
// Freeze is safe to call from concurrent readers (the query path calls
// it lazily); concurrent first calls may build the same snapshot CSR
// more than once, which is wasteful but correct since all builds are
// identical.
func (g *Graph) Freeze() *CSR {
	v := g.Snapshot() // the head freezes its current published horizon
	sh := v.sh
	nV, nE := len(v.vtype), len(v.etype)
	if cc := sh.csr.Load(); cc != nil && cc.nV == nV && cc.nE == nE {
		return cc.c
	}
	bc := sh.base.Load()
	if bc != nil && bc.nV == nV && bc.nE == nE {
		return bc.c
	}
	fp := sh.fold.Load()
	if bc == nil || bc.nV != len(fp.vtype) || bc.nE != len(fp.etype) {
		// The fold point moved since the base was built (or it never
		// was): rebuild the canonical base at the fold horizon.
		bc = &csrCache{nV: len(fp.vtype), nE: len(fp.etype), c: buildCSR(fp)}
		sh.base.Store(bc)
		if bc.nV == nV && bc.nE == nE {
			return bc.c
		}
	}
	if nV < bc.nV || nE < bc.nE {
		// Snapshot pinned before the fold point: private canonical
		// build, not cached (the shared slots track newer horizons).
		return buildCSR(v)
	}
	var c *CSR
	if nE-bc.nE > bc.nE {
		// The delta dominates the base (e.g. a freshly built graph that
		// never folded): a canonical build reads faster than a patch.
		c = buildCSR(v)
	} else {
		c = buildPatchedCSR(bc.c, bc.nE, v)
	}
	sh.csr.Store(&csrCache{nV: nV, nE: nE, c: c})
	return c
}

func buildCSR(g *Graph) *CSR {
	nV := g.NumVertices()
	c := &CSR{
		offsets: make([]int32, nV+1),
		segOff:  make([]int32, nV+1),
		nV:      nV,
	}
	total := 0
	for v := 0; v < nV; v++ {
		total += len(g.Neighbors(VID(v)))
	}
	c.halves = make([]HalfEdge, 0, total)
	c.segs = make([]Seg, 0, nV) // ≥1 segment per non-isolated vertex
	for v := 0; v < nV; v++ {
		start := len(c.halves)
		c.halves = append(c.halves, g.Neighbors(VID(v))...)
		own := c.halves[start:]
		sortHalves(own)
		appendSegs(&c.segs, own, start)
		c.offsets[v+1] = int32(len(c.halves))
		c.segOff[v+1] = int32(len(c.segs))
	}
	return c
}

// buildPatchedCSR layers the half-edges of edges [baseE, nE) over a
// canonical base CSR. Cost is O(nV + delta): the base arrays are
// shared by reference, only the dense ext offset/segment arrays and
// the delta half-edges are allocated.
func buildPatchedCSR(base *CSR, baseE int, v *Graph) *CSR {
	nV, nE := len(v.vtype), len(v.etype)
	c := &CSR{
		offsets: base.offsets,
		halves:  base.halves,
		segOff:  base.segOff,
		segs:    base.segs,
		nV:      nV,
	}
	c.extOff = make([]int32, nV+1)
	for e := baseE; e < nE; e++ {
		et := v.Schema.edgeTypes[v.etype[e]]
		s, d := v.esrc[e], v.edst[e]
		c.extOff[s+1]++
		if et.Directed || s != d {
			c.extOff[d+1]++
		}
	}
	for i := 1; i <= nV; i++ {
		c.extOff[i] += c.extOff[i-1]
	}
	c.extHalves = make([]HalfEdge, c.extOff[nV])
	cursor := make([]int32, nV)
	copy(cursor, c.extOff[:nV])
	put := func(at VID, h HalfEdge) {
		c.extHalves[cursor[at]] = h
		cursor[at]++
	}
	for e := baseE; e < nE; e++ {
		et := v.Schema.edgeTypes[v.etype[e]]
		s, d := v.esrc[e], v.edst[e]
		id, tid := EID(e), int16(et.ID)
		if et.Directed {
			put(s, HalfEdge{To: d, Edge: id, Type: tid, Dir: DirOut})
			put(d, HalfEdge{To: s, Edge: id, Type: tid, Dir: DirIn})
		} else {
			put(s, HalfEdge{To: d, Edge: id, Type: tid, Dir: DirUndir})
			if s != d {
				put(d, HalfEdge{To: s, Edge: id, Type: tid, Dir: DirUndir})
			}
		}
	}
	c.extSegOff = make([]int32, nV+1)
	c.extSegs = make([]Seg, 0, 8)
	for vv := 0; vv < nV; vv++ {
		own := c.extHalves[c.extOff[vv]:c.extOff[vv+1]]
		sortHalves(own)
		appendSegs(&c.extSegs, own, int(c.extOff[vv]))
		c.extSegOff[vv+1] = int32(len(c.extSegs))
	}
	return c
}

// sortHalves orders one vertex's half-edges canonically: by (Type,
// Dir), then by endpoint and edge id for a deterministic layout.
func sortHalves(own []HalfEdge) {
	slices.SortFunc(own, func(a, b HalfEdge) int {
		if a.Type != b.Type {
			return int(a.Type) - int(b.Type)
		}
		if a.Dir != b.Dir {
			return int(a.Dir) - int(b.Dir)
		}
		if a.To != b.To {
			return int(a.To) - int(b.To)
		}
		return int(a.Edge) - int(b.Edge)
	})
}

// appendSegs appends the (Type, Dir) runs of one sorted per-vertex
// span to segs; start is the span's offset in its flat array.
func appendSegs(segs *[]Seg, own []HalfEdge, start int) {
	for i := 0; i < len(own); {
		j := i + 1
		for j < len(own) && own[j].Type == own[i].Type && own[j].Dir == own[i].Dir {
			j++
		}
		*segs = append(*segs, Seg{
			Type:  own[i].Type,
			Dir:   own[i].Dir,
			Start: int32(start + i),
			End:   int32(start + j),
		})
		i = j
	}
}
