package graph

import (
	"slices"
)

// CSR is a frozen compressed-sparse-row view of a graph's adjacency:
// every half-edge of every vertex in one flat array, grouped by vertex
// and, within a vertex, sorted by (Type, Dir). It exists for the hot
// traversal kernels (the SDMC counter of internal/match): a flat array
// walks sequentially through memory where the mutable [][]HalfEdge
// adjacency chases one pointer per vertex, and the (Type, Dir) sort
// lets a kernel resolve one DFA transition per segment instead of one
// per half-edge.
//
// A CSR is immutable once built and safe for concurrent readers. It is
// a snapshot: mutating the graph after Freeze does not change an
// already-obtained CSR, it only invalidates the graph's cached one so
// the next Freeze rebuilds.
type CSR struct {
	offsets []int32    // len V+1; halves[offsets[v]:offsets[v+1]] is v's adjacency
	halves  []HalfEdge // all half-edges, grouped by vertex, (Type, Dir)-sorted per vertex
	segOff  []int32    // len V+1; segs[segOff[v]:segOff[v+1]] are v's segments
	segs    []Seg      // per-vertex runs of equal (Type, Dir)
}

// Seg is one maximal run of half-edges of a single vertex sharing the
// same (Type, Dir): the half-edges c.HalfEdges(s) can all be traversed
// by the same DFA transition.
type Seg struct {
	Type  int16 // edge type id
	Dir   Dir   // traversal direction
	Start int32 // into the CSR's flat half-edge array
	End   int32
}

// NumVertices returns the number of vertices in the snapshot.
func (c *CSR) NumVertices() int { return len(c.offsets) - 1 }

// NumHalfEdges returns the total number of half-edges.
func (c *CSR) NumHalfEdges() int { return len(c.halves) }

// Neighbors returns v's adjacency as a subslice of the flat array,
// sorted by (Type, Dir). The slice must not be mutated.
func (c *CSR) Neighbors(v VID) []HalfEdge { return c.halves[c.offsets[v]:c.offsets[v+1]] }

// Segments returns v's (Type, Dir) runs. The slice must not be
// mutated.
func (c *CSR) Segments(v VID) []Seg { return c.segs[c.segOff[v]:c.segOff[v+1]] }

// HalfEdges returns the half-edges covered by one segment.
func (c *CSR) HalfEdges(s Seg) []HalfEdge { return c.halves[s.Start:s.End] }

// Freeze returns the CSR view of the graph, building it on first use
// and caching it until the next topology mutation (AddVertex/AddEdge),
// which invalidates the cache so a later Freeze rebuilds. Attribute
// updates do not invalidate: the CSR holds topology only.
//
// Freeze is safe to call from concurrent readers (the query path calls
// it lazily); concurrent first calls may build the snapshot more than
// once, which is wasteful but correct since all builds are identical.
// As everywhere else, topology mutation must not race with queries.
func (g *Graph) Freeze() *CSR {
	if c := g.frozen.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	g.frozen.Store(c)
	return c
}

func buildCSR(g *Graph) *CSR {
	nV := len(g.adj)
	c := &CSR{
		offsets: make([]int32, nV+1),
		segOff:  make([]int32, nV+1),
	}
	total := 0
	for _, hs := range g.adj {
		total += len(hs)
	}
	c.halves = make([]HalfEdge, 0, total)
	c.segs = make([]Seg, 0, nV) // ≥1 segment per non-isolated vertex
	for v, hs := range g.adj {
		start := len(c.halves)
		c.halves = append(c.halves, hs...)
		own := c.halves[start:]
		slices.SortFunc(own, func(a, b HalfEdge) int {
			if a.Type != b.Type {
				return int(a.Type) - int(b.Type)
			}
			if a.Dir != b.Dir {
				return int(a.Dir) - int(b.Dir)
			}
			if a.To != b.To { // deterministic layout: tie-break by endpoint, then edge
				return int(a.To) - int(b.To)
			}
			return int(a.Edge) - int(b.Edge)
		})
		for i := 0; i < len(own); {
			j := i + 1
			for j < len(own) && own[j].Type == own[i].Type && own[j].Dir == own[i].Dir {
				j++
			}
			c.segs = append(c.segs, Seg{
				Type:  own[i].Type,
				Dir:   own[i].Dir,
				Start: int32(start + i),
				End:   int32(start + j),
			})
			i = j
		}
		c.offsets[v+1] = int32(len(c.halves))
		c.segOff[v+1] = int32(len(c.segs))
	}
	return c
}
