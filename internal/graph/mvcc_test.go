package graph

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gsqlgo/internal/value"
)

// TestSnapshotIsolation pins snapshots across every mutation kind and
// checks each one keeps seeing exactly the state at its capture.
func TestSnapshotIsolation(t *testing.T) {
	s := NewSchema()
	if _, err := s.AddVertexType("V", AttrDef{Name: "n", Type: AttrInt}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("E", true); err != nil {
		t.Fatal(err)
	}
	g := New(s)

	s0 := g.Snapshot()
	if s0.NumVertices() != 0 || s0.NumEdges() != 0 {
		t.Fatalf("empty snapshot: %d vertices %d edges", s0.NumVertices(), s0.NumEdges())
	}

	a := mustVID(g.AddVertex("V", "a", map[string]value.Value{"n": value.NewInt(1)}))
	b := mustVID(g.AddVertex("V", "b", nil))
	s1 := g.Snapshot()

	if _, err := g.AddEdge("E", a, b, nil); err != nil {
		t.Fatal(err)
	}
	s2 := g.Snapshot()

	if err := g.SetVertexAttr(a, "n", value.NewInt(42)); err != nil {
		t.Fatal(err)
	}
	s3 := g.Snapshot()

	c := mustVID(g.AddVertex("V", "c", nil))
	if _, err := g.AddEdge("E", b, c, nil); err != nil {
		t.Fatal(err)
	}

	// s0: nothing visible, not even via indexes.
	if _, ok := s0.VertexByKey("V", "a"); ok {
		t.Fatal("s0 sees vertex a")
	}
	if got := s0.VerticesOfType("V"); len(got) != 0 {
		t.Fatalf("s0 VerticesOfType = %v", got)
	}

	// s1: both vertices, no edges, original attr.
	if s1.NumVertices() != 2 || s1.NumEdges() != 0 {
		t.Fatalf("s1: %d vertices %d edges", s1.NumVertices(), s1.NumEdges())
	}
	if got := s1.Neighbors(a); len(got) != 0 {
		t.Fatalf("s1 Neighbors(a) = %v", got)
	}
	if v, _ := s1.VertexAttr(a, "n"); v.Int() != 1 {
		t.Fatalf("s1 attr n = %v, want 1", v)
	}
	if _, ok := s1.VertexByKey("V", "c"); ok {
		t.Fatal("s1 sees vertex c")
	}

	// s2: the first edge, still the original attr.
	if s2.NumEdges() != 1 || s2.OutDegree(a) != 1 || s2.Degree(b) != 1 {
		t.Fatalf("s2: edges=%d outdeg(a)=%d deg(b)=%d", s2.NumEdges(), s2.OutDegree(a), s2.Degree(b))
	}
	if v, _ := s2.VertexAttr(a, "n"); v.Int() != 1 {
		t.Fatalf("s2 attr n = %v, want 1", v)
	}

	// s3: the new attr version, still one edge.
	if v, _ := s3.VertexAttr(a, "n"); v.Int() != 42 {
		t.Fatalf("s3 attr n = %v, want 42", v)
	}
	if s3.NumEdges() != 1 {
		t.Fatalf("s3 edges = %d", s3.NumEdges())
	}

	// Head sees everything.
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("head: %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if got := g.VerticesOfType("V"); len(got) != 3 {
		t.Fatalf("head VerticesOfType = %v", got)
	}

	// Epochs are pinned on views, live on the head.
	if s1.Epoch() >= s2.Epoch() || s2.Epoch() != s3.Epoch() || g.Epoch() <= s3.Epoch() {
		t.Fatalf("epochs: s1=%d s2=%d s3=%d head=%d", s1.Epoch(), s2.Epoch(), s3.Epoch(), g.Epoch())
	}

	// Snapshot of a snapshot is itself; mutating a snapshot panics.
	if s2.Snapshot() != s2 {
		t.Fatal("Snapshot of a snapshot must be identity")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AddVertex on a snapshot must panic")
			}
		}()
		_, _ = s2.AddVertex("V", "z", nil)
	}()
}

// TestSnapshotSurvivesFold pins a snapshot, folds (cutting attribute
// chains), keeps mutating, and checks the pinned snapshot still reads
// its own attribute versions and topology.
func TestSnapshotSurvivesFold(t *testing.T) {
	s := NewSchema()
	if _, err := s.AddVertexType("V", AttrDef{Name: "n", Type: AttrInt}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("E", true); err != nil {
		t.Fatal(err)
	}
	g := New(s)
	a := mustVID(g.AddVertex("V", "a", nil))
	for i := 0; i < 5; i++ {
		if err := g.SetVertexAttr(a, "n", value.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	pinned := g.Snapshot() // sees n=4
	preFoldCSR := pinned.Freeze()

	if err := g.SetVertexAttr(a, "n", value.NewInt(100)); err != nil {
		t.Fatal(err)
	}
	folds0 := g.MVCCStats().Folds
	g.Fold()
	if got := g.MVCCStats().Folds; got != folds0+1 {
		t.Fatalf("folds = %d, want %d", got, folds0+1)
	}
	if got := g.MVCCStats().DeltaRecords; got != 0 {
		t.Fatalf("delta records after fold = %d", got)
	}
	if err := g.SetVertexAttr(a, "n", value.NewInt(200)); err != nil {
		t.Fatal(err)
	}
	b := mustVID(g.AddVertex("V", "b", nil))
	if _, err := g.AddEdge("E", a, b, nil); err != nil {
		t.Fatal(err)
	}

	if v, _ := pinned.VertexAttr(a, "n"); v.Int() != 4 {
		t.Fatalf("pinned attr n = %v, want 4", v)
	}
	if pinned.NumVertices() != 1 || pinned.NumEdges() != 0 {
		t.Fatalf("pinned: %d vertices %d edges", pinned.NumVertices(), pinned.NumEdges())
	}
	// Freezing the pre-fold snapshot after the fold point moved still
	// reflects its own horizon.
	c := pinned.Freeze()
	if c.NumVertices() != 1 || c.NumHalfEdges() != 0 {
		t.Fatalf("pinned CSR: %d vertices %d halves", c.NumVertices(), c.NumHalfEdges())
	}
	_ = preFoldCSR
	if v, _ := g.Snapshot().VertexAttr(a, "n"); v.Int() != 200 {
		t.Fatalf("head attr n = %v, want 200", v)
	}
}

// TestAutoFoldThreshold checks that mutations past the configured
// threshold fold automatically.
func TestAutoFoldThreshold(t *testing.T) {
	s := NewSchema()
	if _, err := s.AddVertexType("V"); err != nil {
		t.Fatal(err)
	}
	g := New(s)
	g.SetFoldThreshold(10)
	for i := 0; i < 25; i++ {
		mustVID(g.AddVertex("V", fmt.Sprintf("v%d", i), nil))
	}
	st := g.MVCCStats()
	if st.Folds != 2 {
		t.Fatalf("folds = %d, want 2 after 25 mutations at threshold 10", st.Folds)
	}
	if st.BaseVertices != 20 {
		t.Fatalf("base vertices = %d, want 20", st.BaseVertices)
	}
	if st.DeltaRecords != 5 {
		t.Fatalf("delta records = %d, want 5", st.DeltaRecords)
	}
	g.SetFoldThreshold(-1)
	for i := 25; i < 60; i++ {
		mustVID(g.AddVertex("V", fmt.Sprintf("v%d", i), nil))
	}
	if got := g.MVCCStats().Folds; got != 2 {
		t.Fatalf("folds = %d after disabling, want 2", got)
	}
}

// TestPatchedCSRMatchesCanonical builds random graphs, folds at an
// arbitrary point, keeps mutating, and verifies the patched CSR of the
// final snapshot carries exactly the same half-edge multisets and
// invariants as a canonical rebuild.
func TestPatchedCSRMatchesCanonical(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := BuildRandomMixedGraph(4+r.Intn(8), 30+r.Intn(30), seed)
		g.Fold()
		// Mutate past the fold point with a delta smaller than the base
		// (so Freeze patches rather than falling back to a canonical
		// rebuild).
		nTypes := len(g.Schema.VertexTypes())
		for i := 0; i < 1+r.Intn(5); i++ {
			vt := g.Schema.VertexTypes()[r.Intn(nTypes)]
			mustVID(g.AddVertex(vt.Name, fmt.Sprintf("mvcc-%d-%d", seed, i), nil))
		}
		for i := 0; i < 1+r.Intn(10); i++ {
			et := g.Schema.EdgeTypes()[r.Intn(len(g.Schema.EdgeTypes()))]
			src := VID(r.Intn(g.NumVertices()))
			dst := VID(r.Intn(g.NumVertices()))
			if _, err := g.AddEdge(et.Name, src, dst, nil); err != nil {
				t.Fatal(err)
			}
		}
		snap := g.Snapshot()
		c := snap.Freeze()
		if !c.HasExt() {
			t.Fatalf("seed %d: expected a patched CSR after fold + delta", seed)
		}
		csrInvariants(t, snap, c)
		// Same-horizon Freeze calls share the cached patched CSR.
		if snap.Freeze() != c {
			t.Fatalf("seed %d: snapshot CSR not cached", seed)
		}
	}
}

// TestConcurrentReadersWriter hammers one writer against many pinned
// readers under -race: every reader checks its snapshot's invariant
// (edges == vertices-1 in a growing chain) while the writer keeps
// appending and folding.
func TestConcurrentReadersWriter(t *testing.T) {
	s := NewSchema()
	if _, err := s.AddVertexType("V", AttrDef{Name: "n", Type: AttrInt}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("E", true); err != nil {
		t.Fatal(err)
	}
	g := New(s)
	g.SetFoldThreshold(64) // fold often to exercise chain cuts under load
	root := mustVID(g.AddVertex("V", "v0", nil))
	_ = root

	const writerOps = 1500
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				snap := g.Snapshot()
				nv, ne := snap.NumVertices(), snap.NumEdges()
				// Writer appends vertex k then edge (k-1)->k: any
				// published state satisfies ne ∈ {nv-1, nv-2}... but the
				// initial lone vertex means ne == nv-1 exactly after each
				// edge, nv-2 between vertex and edge.
				if ne != nv-1 && ne != nv-2 {
					t.Errorf("worker %d: snapshot saw %d vertices / %d edges", worker, nv, ne)
					return
				}
				// Deep-read the snapshot: degrees, attrs, CSR.
				total := 0
				for v := 0; v < nv; v++ {
					total += len(snap.Neighbors(VID(v)))
				}
				if total != 2*ne {
					t.Errorf("worker %d: %d half-edges for %d edges", worker, total, ne)
					return
				}
				if nv > 0 {
					if _, ok := snap.VertexAttr(VID(nv-1), "n"); !ok {
						t.Errorf("worker %d: missing attr on newest vertex", worker)
						return
					}
					if _, ok := snap.VertexByKey("V", fmt.Sprintf("v%d", nv-1)); !ok {
						t.Errorf("worker %d: newest vertex not in key index", worker)
						return
					}
				}
				if i%16 == 0 {
					c := snap.Freeze()
					if c.NumVertices() != nv || c.NumHalfEdges() != total {
						t.Errorf("worker %d: CSR %d/%d vs snapshot %d/%d", worker, c.NumVertices(), c.NumHalfEdges(), nv, total)
						return
					}
				}
			}
		}(r)
	}
	for i := 1; i <= writerOps; i++ {
		v := mustVID(g.AddVertex("V", fmt.Sprintf("v%d", i), map[string]value.Value{"n": value.NewInt(int64(i))}))
		if _, err := g.AddEdge("E", v-1, v, nil); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if err := g.SetVertexAttr(v, "n", value.NewInt(int64(-i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	wg.Wait()
	if g.MVCCStats().Folds == 0 {
		t.Fatal("expected automatic folds during the stress run")
	}
}
