package graph

import (
	"errors"
	"fmt"
	"testing"

	"gsqlgo/internal/value"
)

// recordingObserver logs every notification it receives and can be
// armed to fail, exercising the write-ahead contract.
type recordingObserver struct {
	events []string
	fail   error
}

func (r *recordingObserver) OnAddVertex(v VID, typeName, key string, attrs []value.Value) error {
	r.events = append(r.events, fmt.Sprintf("v %d %s %s %v", v, typeName, key, attrs))
	return r.fail
}

func (r *recordingObserver) OnAddEdge(e EID, typeName string, src, dst VID, attrs []value.Value) error {
	r.events = append(r.events, fmt.Sprintf("e %d %s %d %d %v", e, typeName, src, dst, attrs))
	return r.fail
}

func (r *recordingObserver) OnSetVertexAttr(v VID, name string, val value.Value) error {
	r.events = append(r.events, fmt.Sprintf("a %d %s %s", v, name, val))
	return r.fail
}

func obsSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	if _, err := s.AddVertexType("V", AttrDef{"name", AttrString}, AttrDef{"score", AttrFloat}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("E", true, AttrDef{"w", AttrInt}); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAddVertexRejectsDuplicateKey pins the insert contract the WAL
// replay path depends on: a second AddVertex with the same (typeName,
// key) fails with ErrDuplicateKey and leaves the graph untouched — it
// must not silently insert a second vertex unreachable via VertexByKey.
func TestAddVertexRejectsDuplicateKey(t *testing.T) {
	g := New(obsSchema(t))
	a, err := g.AddVertex("V", "a", map[string]value.Value{"name": value.NewString("first")})
	if err != nil {
		t.Fatal(err)
	}
	epoch := g.Epoch()
	if _, err := g.AddVertex("V", "a", map[string]value.Value{"name": value.NewString("second")}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate AddVertex: err = %v, want ErrDuplicateKey", err)
	}
	if g.NumVertices() != 1 {
		t.Fatalf("duplicate AddVertex inserted: %d vertices", g.NumVertices())
	}
	if g.Epoch() != epoch {
		t.Fatalf("failed insert moved the epoch %d -> %d", epoch, g.Epoch())
	}
	if id, ok := g.VertexByKey("V", "a"); !ok || id != a {
		t.Fatalf("VertexByKey after duplicate attempt: %d, %v", id, ok)
	}
	if v, _ := g.VertexAttr(a, "name"); v.Str() != "first" {
		t.Fatalf("original vertex clobbered: name = %s", v)
	}
}

// TestObserverSeesMutations verifies the observer receives every
// mutation with assigned ids and the coerced schema-order row.
func TestObserverSeesMutations(t *testing.T) {
	g := New(obsSchema(t))
	obs := &recordingObserver{}
	g.SetObserver(obs)
	if g.Observer() != obs {
		t.Fatal("Observer() did not return the registered observer")
	}
	a, err := g.AddVertex("V", "a", map[string]value.Value{"score": value.NewInt(3)}) // int widens to float
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.AddVertex("V", "b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("E", a, b, map[string]value.Value{"w": value.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetVertexAttr(b, "name", value.NewString("bee")); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"v 0 V a [ 3]",
		"v 1 V b [ 0]",
		"e 0 E 0 1 [7]",
		"a 1 name bee",
	}
	if len(obs.events) != len(want) {
		t.Fatalf("events = %v, want %d entries", obs.events, len(want))
	}
	for i, w := range want {
		if obs.events[i] != w {
			t.Errorf("event[%d] = %q, want %q", i, obs.events[i], w)
		}
	}
	// Detach: further mutations are unobserved.
	g.SetObserver(nil)
	if _, err := g.AddVertex("V", "c", nil); err != nil {
		t.Fatal(err)
	}
	if len(obs.events) != len(want) {
		t.Fatalf("detached observer still notified: %v", obs.events)
	}
}

// TestObserverErrorAbortsMutation verifies write-ahead semantics: an
// observer error leaves the in-memory graph unchanged.
func TestObserverErrorAbortsMutation(t *testing.T) {
	g := New(obsSchema(t))
	a, _ := g.AddVertex("V", "a", nil)
	b, _ := g.AddVertex("V", "b", nil)
	sentinel := errors.New("disk on fire")
	obs := &recordingObserver{fail: sentinel}
	g.SetObserver(obs)

	epoch := g.Epoch()
	if _, err := g.AddVertex("V", "c", nil); !errors.Is(err, sentinel) {
		t.Fatalf("AddVertex err = %v, want wrapped sentinel", err)
	}
	if g.NumVertices() != 2 {
		t.Fatalf("aborted AddVertex applied: %d vertices", g.NumVertices())
	}
	if _, ok := g.VertexByKey("V", "c"); ok {
		t.Fatal("aborted vertex reachable via VertexByKey")
	}
	if _, err := g.AddEdge("E", a, b, nil); !errors.Is(err, sentinel) {
		t.Fatalf("AddEdge err = %v, want wrapped sentinel", err)
	}
	if g.NumEdges() != 0 || g.Degree(a) != 0 {
		t.Fatalf("aborted AddEdge applied: %d edges, deg(a)=%d", g.NumEdges(), g.Degree(a))
	}
	if err := g.SetVertexAttr(a, "name", value.NewString("x")); !errors.Is(err, sentinel) {
		t.Fatalf("SetVertexAttr err = %v, want wrapped sentinel", err)
	}
	if v, _ := g.VertexAttr(a, "name"); v.Str() != "" {
		t.Fatalf("aborted SetVertexAttr applied: name = %q", v.Str())
	}
	if g.Epoch() != epoch {
		t.Fatalf("aborted mutations moved the epoch %d -> %d", epoch, g.Epoch())
	}
}
