package graph

import "gsqlgo/internal/value"

// MutationObserver receives every graph mutation, in commit order, at
// the same call sites that advance Epoch() and invalidate the frozen
// CSR. It is the durability hook: internal/storage registers one to
// write-ahead-log mutations without the engine layers (core, match)
// knowing storage exists.
//
// Notification is write-ahead: the observer runs after the mutation has
// been fully validated (type known, key unique, attribute row coerced)
// but before it is applied to the in-memory graph. An observer error
// aborts the mutation — the graph is left unchanged and the error is
// returned (wrapped) to the mutating caller — so a mutation is never
// visible in memory unless its log record was durably accepted.
//
// The attrs slice is the coerced attribute row in schema declaration
// order (one value per AttrDef of the type, zero-filled for attributes
// the caller omitted). Observers must not retain or mutate it beyond
// the call. Observers are invoked under the graph's external mutation
// discipline (mutation is not synchronized); they need their own
// locking only if they are shared across graphs.
type MutationObserver interface {
	// OnAddVertex is notified before vertex v (the id the insert will
	// assign) of the named type is inserted with the given key and row.
	OnAddVertex(v VID, typeName, key string, attrs []value.Value) error
	// OnAddEdge is notified before edge e of the named type is inserted
	// between src and dst with the given row.
	OnAddEdge(e EID, typeName string, src, dst VID, attrs []value.Value) error
	// OnSetVertexAttr is notified before the named attribute of v is
	// set to val (already coerced to the declared attribute type).
	OnSetVertexAttr(v VID, name string, val value.Value) error
}

// SetObserver registers the mutation observer (nil to detach). At most
// one observer is attached at a time; storage recovery detaches it
// while replaying so replayed mutations are not re-logged.
func (g *Graph) SetObserver(o MutationObserver) { g.observer = o }

// Observer returns the currently attached mutation observer, if any.
func (g *Graph) Observer() MutationObserver { return g.observer }
