package graph

import (
	"fmt"
	"math/rand"
	"strconv"

	"gsqlgo/internal/value"
)

// mustVID panics on error; builders construct well-formed graphs by
// construction, so failures are programming errors.
func mustVID(v VID, err error) VID {
	if err != nil {
		panic(err)
	}
	return v
}

func mustEID(e EID, err error) EID {
	if err != nil {
		panic(err)
	}
	return e
}

// BuildDiamondChain constructs the diamond-chain graph of Example 11
// (Figure 7): a chain of n diamonds connecting vertex v0 to vertex vn,
// where diamond i joins v(i) to v(i+1) through two length-2 branches.
// All vertices have type V with a single "name" attribute ("v0".."vn"
// for the spine, "ai"/"bi" for branch midpoints) and all edges have
// the directed type E. For every 1 <= k <= n there are exactly 2^k
// paths from v0 to vk, and the non-repeated-vertex, non-repeated-edge
// and all-shortest-paths semantics coincide on this graph.
func BuildDiamondChain(n int) *Graph {
	s := NewSchema()
	if _, err := s.AddVertexType("V", AttrDef{"name", AttrString}); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("E", true); err != nil {
		panic(err)
	}
	g := New(s)
	spine := make([]VID, n+1)
	for i := 0; i <= n; i++ {
		spine[i] = mustVID(g.AddVertex("V", "v"+strconv.Itoa(i), map[string]value.Value{
			"name": value.NewString("v" + strconv.Itoa(i)),
		}))
	}
	for i := 0; i < n; i++ {
		a := mustVID(g.AddVertex("V", "a"+strconv.Itoa(i), map[string]value.Value{
			"name": value.NewString("a" + strconv.Itoa(i)),
		}))
		b := mustVID(g.AddVertex("V", "b"+strconv.Itoa(i), map[string]value.Value{
			"name": value.NewString("b" + strconv.Itoa(i)),
		}))
		mustEID(g.AddEdge("E", spine[i], a, nil))
		mustEID(g.AddEdge("E", a, spine[i+1], nil))
		mustEID(g.AddEdge("E", spine[i], b, nil))
		mustEID(g.AddEdge("E", b, spine[i+1], nil))
	}
	return g
}

// BuildG1 constructs graph G1 of Example 9 (Figure 5): 12 vertices
// named "1".."12", all edges directed with type E. Among the paths
// from vertex 1 to vertex 5 satisfying the DARPE "E>*" there are three
// non-repeated-vertex paths, four non-repeated-edge paths (one goes
// around the 3-7-8-3 cycle), and two shortest paths.
func BuildG1() *Graph {
	return buildNamedDigraph(12, [][2]int{
		{1, 2}, {2, 3}, {3, 4}, {4, 5}, // spine
		{2, 6}, {6, 4}, // short detour
		{2, 9}, {9, 10}, {10, 11}, {11, 12}, {12, 4}, // long detour
		{3, 7}, {7, 8}, {8, 3}, // cycle through 3
	})
}

// BuildG2 constructs graph G2 of Example 10 (Figure 6). The pattern
// ":s -(E>*.F>.E>*)- :t" matches no path from vertex 1 to vertex 4
// under non-repeated-vertex or non-repeated-edge semantics, but
// matches exactly one path (1-2-3-5-6-2-3-4) under all-shortest-paths
// semantics.
func BuildG2() *Graph {
	s := NewSchema()
	if _, err := s.AddVertexType("V", AttrDef{"name", AttrString}); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("E", true); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("F", true); err != nil {
		panic(err)
	}
	g := New(s)
	ids := make([]VID, 7)
	for i := 1; i <= 6; i++ {
		ids[i] = mustVID(g.AddVertex("V", strconv.Itoa(i), map[string]value.Value{
			"name": value.NewString(strconv.Itoa(i)),
		}))
	}
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}, {3, 5}, {6, 2}} {
		mustEID(g.AddEdge("E", ids[e[0]], ids[e[1]], nil))
	}
	mustEID(g.AddEdge("F", ids[5], ids[6], nil))
	return g
}

// BuildABCCycle constructs the 3-cycle v -A-> u -B-> w -C-> v used in
// Section 6.1's fixed-unique-length discussion. Vertices are named
// "v", "u", "w"; a spare directed edge type D exists in the schema so
// patterns may mention it.
func BuildABCCycle() *Graph {
	s := NewSchema()
	if _, err := s.AddVertexType("V", AttrDef{"name", AttrString}); err != nil {
		panic(err)
	}
	for _, et := range []string{"A", "B", "C", "D"} {
		if _, err := s.AddEdgeType(et, true); err != nil {
			panic(err)
		}
	}
	g := New(s)
	v := mustVID(g.AddVertex("V", "v", map[string]value.Value{"name": value.NewString("v")}))
	u := mustVID(g.AddVertex("V", "u", map[string]value.Value{"name": value.NewString("u")}))
	w := mustVID(g.AddVertex("V", "w", map[string]value.Value{"name": value.NewString("w")}))
	mustEID(g.AddEdge("A", v, u, nil))
	mustEID(g.AddEdge("B", u, w, nil))
	mustEID(g.AddEdge("C", w, v, nil))
	return g
}

func buildNamedDigraph(n int, edges [][2]int) *Graph {
	s := NewSchema()
	if _, err := s.AddVertexType("V", AttrDef{"name", AttrString}); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("E", true); err != nil {
		panic(err)
	}
	g := New(s)
	ids := make([]VID, n+1)
	for i := 1; i <= n; i++ {
		ids[i] = mustVID(g.AddVertex("V", strconv.Itoa(i), map[string]value.Value{
			"name": value.NewString(strconv.Itoa(i)),
		}))
	}
	for _, e := range edges {
		mustEID(g.AddEdge("E", ids[e[0]], ids[e[1]], nil))
	}
	return g
}

// SalesGraphConfig parameterizes BuildSalesGraph.
type SalesGraphConfig struct {
	Customers int
	Products  int
	Sales     int // Bought edges
	Likes     int // Likes edges
	Seed      int64
}

// BuildSalesGraph constructs the SalesGraph of Examples 3-6 (Figures
// 2, 3): Customer and Product vertices, directed Bought edges carrying
// quantity and discount, and directed Likes edges. Roughly half the
// products belong to the "toy" category. Generation is deterministic
// for a given seed.
func BuildSalesGraph(cfg SalesGraphConfig) *Graph {
	s := NewSchema()
	if _, err := s.AddVertexType("Customer", AttrDef{"name", AttrString}); err != nil {
		panic(err)
	}
	if _, err := s.AddVertexType("Product",
		AttrDef{"name", AttrString},
		AttrDef{"category", AttrString},
		AttrDef{"listPrice", AttrFloat},
	); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("Bought", true,
		AttrDef{"quantity", AttrInt},
		AttrDef{"discount", AttrFloat},
	); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("Likes", true); err != nil {
		panic(err)
	}
	g := New(s)
	r := rand.New(rand.NewSource(cfg.Seed))
	custs := make([]VID, cfg.Customers)
	for i := range custs {
		custs[i] = mustVID(g.AddVertex("Customer", fmt.Sprintf("c%d", i), map[string]value.Value{
			"name": value.NewString(fmt.Sprintf("customer-%d", i)),
		}))
	}
	prods := make([]VID, cfg.Products)
	for i := range prods {
		cat := "toy"
		if i%2 == 1 {
			cat = "grocery"
		}
		prods[i] = mustVID(g.AddVertex("Product", fmt.Sprintf("p%d", i), map[string]value.Value{
			"name":      value.NewString(fmt.Sprintf("product-%d", i)),
			"category":  value.NewString(cat),
			"listPrice": value.NewFloat(1 + float64(r.Intn(9900))/100),
		}))
	}
	for i := 0; i < cfg.Sales; i++ {
		c := custs[r.Intn(len(custs))]
		p := prods[r.Intn(len(prods))]
		mustEID(g.AddEdge("Bought", c, p, map[string]value.Value{
			"quantity": value.NewInt(int64(1 + r.Intn(5))),
			"discount": value.NewFloat(float64(r.Intn(30)) / 100),
		}))
	}
	likeSeen := make(map[[2]VID]bool)
	for i := 0; i < cfg.Likes; i++ {
		c := custs[r.Intn(len(custs))]
		p := prods[r.Intn(len(prods))]
		if likeSeen[[2]VID{c, p}] {
			continue
		}
		likeSeen[[2]VID{c, p}] = true
		mustEID(g.AddEdge("Likes", c, p, nil))
	}
	return g
}

// BuildLinkGraph constructs a random Page/LinkTo web graph for the
// PageRank workload of Figure 4: n Page vertices, with outDeg random
// distinct outgoing LinkTo edges per page. Deterministic per seed.
func BuildLinkGraph(n, outDeg int, seed int64) *Graph {
	s := NewSchema()
	if _, err := s.AddVertexType("Page", AttrDef{"name", AttrString}); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("LinkTo", true); err != nil {
		panic(err)
	}
	g := New(s)
	r := rand.New(rand.NewSource(seed))
	pages := make([]VID, n)
	for i := range pages {
		pages[i] = mustVID(g.AddVertex("Page", fmt.Sprintf("page%d", i), map[string]value.Value{
			"name": value.NewString(fmt.Sprintf("page%d", i)),
		}))
	}
	for i, p := range pages {
		seen := map[int]bool{i: true}
		for d := 0; d < outDeg && len(seen) <= n; d++ {
			j := r.Intn(n)
			if seen[j] {
				continue
			}
			seen[j] = true
			mustEID(g.AddEdge("LinkTo", p, pages[j], nil))
		}
	}
	return g
}

// LinkedInConfig parameterizes BuildLinkedInGraph.
type LinkedInConfig struct {
	Persons     int
	Connections int
	Companies   int // company 0 is "ACME"
	Seed        int64
}

// BuildLinkedInGraph constructs the professional network of Example 1
// (Figure 1): Person vertices carrying email and employer, and
// undirected Connected edges carrying a connection date. Person i has
// email "personI@mail.example"; employers are "ACME" plus generated
// names. Deterministic per seed.
func BuildLinkedInGraph(cfg LinkedInConfig) *Graph {
	s := NewSchema()
	if _, err := s.AddVertexType("Person",
		AttrDef{"email", AttrString},
		AttrDef{"worksFor", AttrString},
	); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("Connected", false, AttrDef{"since", AttrDatetime}); err != nil {
		panic(err)
	}
	g := New(s)
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Companies < 2 {
		cfg.Companies = 5
	}
	company := func(i int) string {
		if i == 0 {
			return "ACME"
		}
		return fmt.Sprintf("Corp-%d", i)
	}
	persons := make([]VID, cfg.Persons)
	for i := range persons {
		persons[i] = mustVID(g.AddVertex("Person", fmt.Sprintf("person%d", i), map[string]value.Value{
			"email":    value.NewString(fmt.Sprintf("person%d@mail.example", i)),
			"worksFor": value.NewString(company(r.Intn(cfg.Companies))),
		}))
	}
	seen := map[[2]VID]bool{}
	for i := 0; i < cfg.Connections; i++ {
		a := persons[r.Intn(cfg.Persons)]
		b := persons[r.Intn(cfg.Persons)]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]VID{a, b}] {
			continue
		}
		seen[[2]VID{a, b}] = true
		// Connection dates span 2014-2020.
		since := int64(1388534400 + r.Int63n(189302400))
		mustEID(g.AddEdge("Connected", a, b, map[string]value.Value{
			"since": value.NewDatetime(since),
		}))
	}
	return g
}

// BuildRandomMixedGraph constructs a random graph mixing directed and
// undirected edge types, used by property tests that compare the
// polynomial path-counting engine against brute-force enumeration.
// Vertex type V; directed edge types D1, D2; undirected edge type U.
func BuildRandomMixedGraph(n, edges int, seed int64) *Graph {
	s := NewSchema()
	if _, err := s.AddVertexType("V", AttrDef{"name", AttrString}); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("D1", true); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("D2", true); err != nil {
		panic(err)
	}
	if _, err := s.AddEdgeType("U", false); err != nil {
		panic(err)
	}
	g := New(s)
	r := rand.New(rand.NewSource(seed))
	ids := make([]VID, n)
	for i := range ids {
		ids[i] = mustVID(g.AddVertex("V", strconv.Itoa(i), map[string]value.Value{
			"name": value.NewString(strconv.Itoa(i)),
		}))
	}
	types := []string{"D1", "D2", "U"}
	for i := 0; i < edges; i++ {
		a := ids[r.Intn(n)]
		b := ids[r.Intn(n)]
		if a == b {
			continue // keep property-test paths loop-free at the edge level
		}
		mustEID(g.AddEdge(types[r.Intn(len(types))], a, b, nil))
	}
	return g
}
