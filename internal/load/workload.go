package load

import (
	"fmt"

	"gsqlgo/internal/ldbc"
)

// Workload generates the op stream: installed-query reads over the IC
// family and mutations from the ldbc mutation stream, both pure
// functions of (config, seed, index) so closed- and open-loop runs —
// and reruns — issue the same requests in the same order.
type Workload struct {
	cfg     ldbc.Config
	seed    int64
	hops    int
	queries []string // short names, e.g. "ic5"
	muts    *ldbc.MutGen
}

// Epoch bounds of the generated creationDate range (2009-01-01 and
// 2013-01-01 UTC), matching internal/ldbc/gen.go.
const (
	epochLo = 1230768000
	epochHi = 1356998400
)

// NewWorkload builds a workload against a graph generated with cfg.
// queries picks the IC subset to exercise (nil → all five); prefix
// namespaces the keys of vertices the write stream adds, so separate
// runs against one durable server don't collide.
func NewWorkload(cfg ldbc.Config, seed int64, hops int, queries []string, prefix string) (*Workload, error) {
	if len(queries) == 0 {
		queries = []string{"ic3", "ic5", "ic6", "ic9", "ic11"}
	}
	family := ldbc.ICQueries(hops)
	for _, q := range queries {
		if _, ok := family[q]; !ok {
			return nil, fmt.Errorf("unknown query %q (have ic3, ic5, ic6, ic9, ic11)", q)
		}
	}
	return &Workload{
		cfg:     cfg,
		seed:    seed,
		hops:    hops,
		queries: queries,
		muts:    ldbc.NewMutGen(cfg, seed, prefix),
	}, nil
}

// InstallSources returns the GSQL sources to install before the run,
// keyed by installed name.
func (w *Workload) InstallSources() map[string]string {
	family := ldbc.ICQueries(w.hops)
	out := make(map[string]string, len(w.queries))
	for _, q := range w.queries {
		out[ldbc.ICName(q, w.hops)] = family[q]
	}
	return out
}

// mix64 is the splitmix64 finalizer — the same bijective mixer the
// ldbc mutation stream uses for its draws.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rnd derives a per-(read-op, salt) pseudo-random value.
func (w *Workload) rnd(i uint64, salt uint64) uint64 {
	return mix64(uint64(w.seed) ^ mix64(i*2654435761+salt))
}

// Read returns the installed query name and parameter map for read op
// i. Parameters are drawn from the generated key spaces: start persons
// cycle over the whole population, countries and tags over their full
// ranges, datetimes over the generated creationDate window.
func (w *Workload) Read(i uint64) (name string, params map[string]any) {
	short := w.queries[i%uint64(len(w.queries))]
	person := fmt.Sprintf("person%d", w.rnd(i, 1)%uint64(w.cfg.Persons()))
	date := int64(epochLo + w.rnd(i, 2)%(epochHi-epochLo))
	p := map[string]any{"p": person, "k": 20}
	switch short {
	case "ic3":
		cx := w.rnd(i, 3) % ldbc.NumCountries
		p["countryX"] = fmt.Sprintf("Country-%d", cx)
		p["countryY"] = fmt.Sprintf("Country-%d", (cx+1+w.rnd(i, 4)%(ldbc.NumCountries-1))%ldbc.NumCountries)
	case "ic5":
		p["minDate"] = date
	case "ic6":
		p["tagName"] = fmt.Sprintf("Tag-%d", w.rnd(i, 5)%ldbc.NumTags)
	case "ic9":
		p["maxDate"] = date
	case "ic11":
		p["countryName"] = fmt.Sprintf("Country-%d", w.rnd(i, 6)%ldbc.NumCountries)
		p["maxYear"] = 2005 + int(w.rnd(i, 7)%10)
	}
	return ldbc.ICName(short, w.hops), p
}

// Write returns mutation i of the stream.
func (w *Workload) Write(i uint64) ldbc.Mutation { return w.muts.At(i) }
