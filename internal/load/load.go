package load

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Mode selects how load is offered.
type Mode string

const (
	// ModeClosed runs a fixed number of workers, each issuing its next
	// op as soon as the previous one returns: throughput floats with
	// server latency. The classic "N concurrent clients" benchmark.
	ModeClosed Mode = "closed"
	// ModeOpen offers ops at a fixed arrival rate regardless of how the
	// server keeps up, and measures each latency from the op's intended
	// send time — so a server stall shows up as queueing delay in the
	// percentiles instead of silently slowing the arrival process
	// (coordinated omission).
	ModeOpen Mode = "open"
)

// Op classes reported separately.
const (
	ClassRead       = "read"
	ClassWrite      = "write"
	ClassCheckpoint = "checkpoint"
)

// Config parameterises one run.
type Config struct {
	Client   *Client
	Workload *Workload
	Mode     Mode
	Duration time.Duration // wall-clock budget (ignored if MaxOps set and hit first)
	MaxOps   uint64        // exact op count; 0 = run until Duration

	Concurrency int // closed-loop worker count / open-loop pool size

	Rate float64 // open loop only: target arrival rate, ops/sec

	// Mix weights per op class. Op i's class is i mod (R+W+C) against
	// the cumulative weights, so a MaxOps run hits the ratios exactly —
	// MaxOps=300 at 8:1:1 is exactly 240 reads, 30 writes, 30
	// checkpoints, which the e2e test asserts.
	MixRead, MixWrite, MixCheckpoint int
}

// ClassStats aggregates one op class across all workers.
type ClassStats struct {
	Ops    uint64
	Errors uint64
	Hist   Hist // successful ops only
}

// Result is one run's outcome.
type Result struct {
	Mode    Mode
	Elapsed time.Duration
	Classes map[string]*ClassStats
	Targets []TargetStats
}

// classIndex numbers the classes for array-indexed per-worker locals.
const (
	ciRead = iota
	ciWrite
	ciCheckpoint
	numClasses
)

var classNames = [numClasses]string{ClassRead, ClassWrite, ClassCheckpoint}

// schedule maps global op index → (class, per-class sequence) from the
// mix weights alone: block b covers ops [b·sum, (b+1)·sum), the first
// R of a block are reads numbered b·R+offset, and so on. Pure
// arithmetic — no shared counters, identical across modes and reruns.
type schedule struct {
	r, w, c int
	sum     uint64
}

func newSchedule(cfg Config) (schedule, error) {
	s := schedule{r: cfg.MixRead, w: cfg.MixWrite, c: cfg.MixCheckpoint}
	if s.r < 0 || s.w < 0 || s.c < 0 {
		return s, fmt.Errorf("load: negative mix weight")
	}
	s.sum = uint64(s.r + s.w + s.c)
	if s.sum == 0 {
		return s, fmt.Errorf("load: mix is 0:0:0")
	}
	return s, nil
}

func (s schedule) at(i uint64) (class int, seq uint64) {
	block, off := i/s.sum, i%s.sum
	switch {
	case off < uint64(s.r):
		return ciRead, block*uint64(s.r) + off
	case off < uint64(s.r+s.w):
		return ciWrite, block*uint64(s.w) + (off - uint64(s.r))
	default:
		return ciCheckpoint, block*uint64(s.c) + (off - uint64(s.r+s.w))
	}
}

// workerStats is one worker's private accumulator, merged at the end;
// no cross-worker synchronisation on the hot path.
type workerStats struct {
	ops    [numClasses]uint64
	errors [numClasses]uint64
	hists  [numClasses]Hist
}

// execute runs op i and returns whether it succeeded. Latency is the
// caller's concern (the two modes measure different spans).
func execute(cfg Config, sched schedule, i uint64) (class int, err error) {
	class, seq := sched.at(i)
	switch class {
	case ciRead:
		name, params := cfg.Workload.Read(seq)
		err = cfg.Client.RunQuery(name, params)
	case ciWrite:
		err = cfg.Client.Mutate(cfg.Workload.Write(seq))
	default:
		err = cfg.Client.Checkpoint()
	}
	return class, err
}

// Run offers the workload per cfg and returns merged stats. The first
// few op errors are returned via Result (counted per class); Run
// itself errors only on bad configuration.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	sched, err := newSchedule(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.MaxOps == 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: need MaxOps or Duration")
	}
	if cfg.Mode == ModeOpen && cfg.Rate <= 0 {
		return nil, fmt.Errorf("load: open loop needs a positive -rate")
	}

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	start := time.Now()
	var stats []*workerStats
	switch cfg.Mode {
	case ModeClosed:
		stats = runClosed(ctx, cfg, sched)
	case ModeOpen:
		stats = runOpen(ctx, cfg, sched)
	default:
		return nil, fmt.Errorf("load: unknown mode %q", cfg.Mode)
	}
	elapsed := time.Since(start)

	res := &Result{
		Mode:    cfg.Mode,
		Elapsed: elapsed,
		Classes: map[string]*ClassStats{},
		Targets: cfg.Client.Lag(),
	}
	for ci, name := range classNames {
		cs := &ClassStats{}
		for _, ws := range stats {
			cs.Ops += ws.ops[ci]
			cs.Errors += ws.errors[ci]
			cs.Hist.Merge(&ws.hists[ci])
		}
		if cs.Ops > 0 {
			res.Classes[name] = cs
		}
	}
	return res, nil
}

// runClosed: Concurrency workers pull indices off a shared cursor and
// issue back-to-back. Latency is the call's own duration.
func runClosed(ctx context.Context, cfg Config, sched schedule) []*workerStats {
	var (
		mu   sync.Mutex
		next uint64
	)
	take := func() (uint64, bool) {
		mu.Lock()
		defer mu.Unlock()
		if cfg.MaxOps > 0 && next >= cfg.MaxOps {
			return 0, false
		}
		i := next
		next++
		return i, true
	}

	stats := make([]*workerStats, cfg.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		ws := &workerStats{}
		stats[w] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil && cfg.MaxOps == 0 {
					return
				}
				i, ok := take()
				if !ok {
					return
				}
				t0 := time.Now()
				class, err := execute(cfg, sched, i)
				ws.ops[class]++
				if err != nil {
					ws.errors[class]++
				} else {
					ws.hists[class].Record(time.Since(t0))
				}
			}
		}()
	}
	wg.Wait()
	return stats
}

// openOp is one scheduled arrival.
type openOp struct {
	i        uint64
	intended time.Time
}

// runOpen: a pacer emits op i at start + i/Rate into a buffer deep
// enough to hold the whole run, so the arrival process never slows
// down when the server lags (that slowdown is what coordinated
// omission hides). Workers record latency from the intended time —
// queueing delay counts.
func runOpen(ctx context.Context, cfg Config, sched schedule) []*workerStats {
	total := cfg.MaxOps
	if total == 0 {
		total = uint64(cfg.Rate*cfg.Duration.Seconds()) + uint64(cfg.Concurrency) + 1
	}
	ops := make(chan openOp, total)
	interval := time.Duration(float64(time.Second) / cfg.Rate)

	go func() {
		defer close(ops)
		start := time.Now()
		for i := uint64(0); i < total; i++ {
			intended := start.Add(time.Duration(i) * interval)
			if d := time.Until(intended); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					if cfg.MaxOps == 0 {
						return
					}
					// With an exact op count requested, keep emitting —
					// the buffer absorbs the rest instantly.
				}
			}
			if cfg.MaxOps == 0 && ctx.Err() != nil {
				return
			}
			ops <- openOp{i: i, intended: intended}
		}
	}()

	stats := make([]*workerStats, cfg.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		ws := &workerStats{}
		stats[w] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range ops {
				class, err := execute(cfg, sched, op.i)
				ws.ops[class]++
				if err != nil {
					ws.errors[class]++
				} else {
					ws.hists[class].Record(time.Since(op.intended))
				}
			}
		}()
	}
	wg.Wait()
	return stats
}
