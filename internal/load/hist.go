// Package load is the sustained-load benchmark subsystem: it drives a
// real running gsqld (or several — a leader plus read replicas) over
// HTTP with a mixed LDBC-SNB-shaped workload and reports throughput
// and latency percentiles per operation class. cmd/gsqlbench is the
// CLI; the committed BENCH_load.json artifact and the load-smoke CI
// job gate regressions against it.
//
// The package is dependency-free by design (stdlib only), like the
// rest of the repo: the histogram below replaces an HDR-histogram
// dependency, and the client is plain net/http.
package load

import (
	"math/bits"
	"time"
)

// Hist is a log-bucketed latency histogram: 32 linear sub-buckets per
// power of two, giving a worst-case relative error of 1/32 ≈ 3.1% on
// any quantile (1.6% with the midpoint representative Quantile uses) —
// the classic HDR-histogram layout, sized for nanosecond latencies up
// to ~292 years in a flat 15 KB array. Recording is two shifts and an
// increment; no allocation, no locks (each worker owns one and merges
// at the end).
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
	sum    int64
	max    int64
}

const (
	histSubBits = 5
	histSub     = 1 << histSubBits // 32 sub-buckets per octave
	histMaxExp  = 64 - histSubBits // highest dropped-bit count
	histBuckets = (histMaxExp + 1) * histSub
)

// bucketIndex maps a non-negative value to its bucket. Values below 32
// get exact unit buckets; above, the top 6 significant bits select
// (octave, sub-bucket). Index is monotone in v, which is what makes
// every quantile scan monotone by construction.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - histSubBits // how many low bits the bucket drops, +1
	return exp*histSub + int(u>>uint(exp-1)) - histSub
}

// bucketBounds returns the inclusive value range bucket i covers.
func bucketBounds(i int) (lo, hi int64) {
	if i < histSub {
		return int64(i), int64(i)
	}
	exp := i / histSub
	sub := i % histSub
	width := int64(1) << uint(exp-1)
	lo = (histSub + int64(sub)) << uint(exp-1)
	return lo, lo + width - 1
}

// Record adds one duration.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)]++
	h.n++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns how many durations were recorded.
func (h *Hist) Count() uint64 { return h.n }

// Mean returns the exact arithmetic mean (the sum is tracked exactly,
// only quantiles are bucketed).
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.n))
}

// Max returns the exact maximum recorded duration.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the q-quantile (q in [0,1]) as the midpoint of the
// bucket holding the rank-⌈q·n⌉ sample. Quantiles from one histogram
// are monotone in q: the scan is over the same cumulative counts.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			lo, hi := bucketBounds(i)
			return time.Duration(lo + (hi-lo)/2)
		}
	}
	return time.Duration(h.max) // unreachable; counts sum to n
}
