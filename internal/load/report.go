package load

import (
	"fmt"
	"sort"
	"strings"

	"gsqlgo/internal/bench"
)

// Reportify folds one or more run results into the shared BENCH_*.json
// schema so gsqlbench artifacts travel through the exact machinery
// (Validate, CompareReports) the microbenchmark suites use. Per-class
// entries are named load/{mode}/{class} with mean latency in ns_per_op
// and percentiles/throughput in Extra — all metric names chosen so the
// comparison gates latency and throughput but treats the raw counters
// (ops, errors, requests, lag) as informational.
func Reportify(meta bench.RunMeta, results ...*Result) bench.Report {
	rep := bench.Report{Meta: meta, Benchmarks: map[string]bench.Micro{}}
	for _, res := range results {
		for class, cs := range res.Classes {
			name := fmt.Sprintf("load/%s/%s", res.Mode, class)
			m := bench.Micro{
				NsPerOp: float64(cs.Hist.Mean()),
				Extra: map[string]float64{
					"p50_ns":  float64(cs.Hist.Quantile(0.50)),
					"p99_ns":  float64(cs.Hist.Quantile(0.99)),
					"p999_ns": float64(cs.Hist.Quantile(0.999)),
					"ops":     float64(cs.Ops),
					"errors":  float64(cs.Errors),
				},
			}
			if res.Elapsed > 0 {
				m.Extra["ops_per_s"] = float64(cs.Ops) / res.Elapsed.Seconds()
			}
			rep.Benchmarks[name] = m
		}
		for i, t := range res.Targets {
			extra := map[string]float64{
				"requests": float64(t.Requests),
				"errors":   float64(t.Errors),
			}
			if t.LagRecords >= 0 {
				extra["lag_records"] = float64(t.LagRecords)
			}
			rep.Benchmarks[fmt.Sprintf("load/%s/target%d", res.Mode, i)] = bench.Micro{Extra: extra}
		}
	}
	return rep
}

// Summary renders a run as the human-readable table gsqlbench prints.
func Summary(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s elapsed=%s\n", res.Mode, res.Elapsed.Round(1e6))
	classes := make([]string, 0, len(res.Classes))
	for c := range res.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		cs := res.Classes[c]
		fmt.Fprintf(&b, "  %-10s ops=%-7d err=%-4d %7.1f op/s  mean=%-10s p50=%-10s p99=%-10s p999=%s\n",
			c, cs.Ops, cs.Errors,
			float64(cs.Ops)/res.Elapsed.Seconds(),
			cs.Hist.Mean(), cs.Hist.Quantile(0.50), cs.Hist.Quantile(0.99), cs.Hist.Quantile(0.999))
	}
	for _, t := range res.Targets {
		lag := "n/a"
		if t.LagRecords >= 0 {
			lag = fmt.Sprint(t.LagRecords)
		}
		fmt.Fprintf(&b, "  target %-28s requests=%-7d errors=%-4d lag_records=%s\n",
			t.URL, t.Requests, t.Errors, lag)
	}
	return b.String()
}
