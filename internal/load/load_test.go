package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gsqlgo/internal/bench"
	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/ldbc"
	"gsqlgo/internal/server"
	"gsqlgo/internal/storage"
)

var testCfg = ldbc.Config{SF: 0.05, Seed: 7}

// startGsqld boots a real leader gsqld on loopback over a freshly
// generated SNB graph — the same wiring cmd/gsqld does, minus flags.
func startGsqld(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := storage.Open(t.TempDir(), storage.Options{
		Init: func() (*graph.Graph, error) { return ldbc.Generate(testCfg), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Engine: core.New(st.Graph(), core.Options{Workers: 2}), Store: st})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
		_ = st.Close()
	})
	return ts
}

func newTestWorkload(t *testing.T, prefix string) *Workload {
	t.Helper()
	w, err := NewWorkload(testCfg, 7, 2, []string{"ic5", "ic11"}, prefix)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func newTestClient(t *testing.T, w *Workload, urls ...string) *Client {
	t.Helper()
	c, err := NewClient(urls, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallAll(w.InstallSources()); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClosedLoopEndToEnd is the subsystem's acceptance test: a real
// gsqld takes a 300-op closed-loop mixed run and the result must show
// zero errors, the exact 8:1:1 per-class counts the deterministic
// schedule promises, and monotone latency percentiles.
func TestClosedLoopEndToEnd(t *testing.T) {
	ts := startGsqld(t)
	w := newTestWorkload(t, "e2e-closed")
	c := newTestClient(t, w, ts.URL)

	res, err := Run(context.Background(), Config{
		Client: c, Workload: w,
		Mode: ModeClosed, MaxOps: 300, Concurrency: 4,
		MixRead: 8, MixWrite: 1, MixCheckpoint: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	want := map[string]uint64{ClassRead: 240, ClassWrite: 30, ClassCheckpoint: 30}
	for class, n := range want {
		cs := res.Classes[class]
		if cs == nil {
			t.Fatalf("class %s missing from result", class)
		}
		if cs.Ops != n {
			t.Errorf("class %s: %d ops, want exactly %d", class, cs.Ops, n)
		}
		if cs.Errors != 0 {
			t.Errorf("class %s: %d errors, want 0", class, cs.Errors)
		}
		p50, p99, p999 := cs.Hist.Quantile(0.50), cs.Hist.Quantile(0.99), cs.Hist.Quantile(0.999)
		if p50 <= 0 || p50 > p99 || p99 > p999 {
			t.Errorf("class %s: percentiles not monotone positive: p50=%v p99=%v p999=%v",
				class, p50, p99, p999)
		}
	}

	// The run folds into a committed-artifact-shaped report that passes
	// the shared structural validation.
	rep := Reportify(bench.CurrentMeta(""), res)
	if err := rep.Validate(); err != nil {
		t.Fatalf("report validation: %v", err)
	}
	if _, ok := rep.Benchmarks["load/closed/read"]; !ok {
		t.Fatalf("report missing load/closed/read: %v", rep.Benchmarks)
	}
	if m := rep.Benchmarks["load/closed/read"]; m.Extra["ops_per_s"] <= 0 {
		t.Fatalf("read ops_per_s = %v, want > 0", m.Extra["ops_per_s"])
	}
	if !strings.Contains(Summary(res), "read") {
		t.Fatal("summary missing read row")
	}
}

// TestOpenLoopEndToEnd drives the same server at a fixed arrival rate
// and checks the coordinated-omission-safe path produces the same
// exact class accounting.
func TestOpenLoopEndToEnd(t *testing.T) {
	ts := startGsqld(t)
	w := newTestWorkload(t, "e2e-open")
	c := newTestClient(t, w, ts.URL)

	res, err := Run(context.Background(), Config{
		Client: c, Workload: w,
		Mode: ModeOpen, MaxOps: 120, Concurrency: 4, Rate: 400,
		MixRead: 10, MixWrite: 1, MixCheckpoint: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{ClassRead: 100, ClassWrite: 10, ClassCheckpoint: 10}
	for class, n := range want {
		cs := res.Classes[class]
		if cs == nil || cs.Ops != n || cs.Errors != 0 {
			t.Fatalf("class %s: got %+v, want %d ops 0 errors", class, cs, n)
		}
	}
	// At 400/s the run takes ≥ 120/400 = 300ms of paced arrivals.
	if res.Elapsed < 250*time.Millisecond {
		t.Fatalf("open loop finished in %v — pacing did not happen", res.Elapsed)
	}
}

// TestReadsRoundRobinAcrossTargets checks the replica fan-out: with
// two targets, reads alternate and both serve a meaningful share.
func TestReadsRoundRobinAcrossTargets(t *testing.T) {
	a, b := startGsqld(t), startGsqld(t)
	w := newTestWorkload(t, "e2e-rr")
	c := newTestClient(t, w, a.URL, b.URL)

	res, err := Run(context.Background(), Config{
		Client: c, Workload: w,
		Mode: ModeClosed, MaxOps: 40, Concurrency: 2,
		MixRead: 1, MixWrite: 0, MixCheckpoint: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Classes[ClassRead].Ops; got != 40 {
		t.Fatalf("read ops = %d, want 40", got)
	}
	if len(res.Targets) != 2 {
		t.Fatalf("got %d targets, want 2", len(res.Targets))
	}
	// Each target took its half of the 40 reads (installs add 2 more
	// requests per target; both servers here are leaders so no lag
	// gauge is exported).
	for _, tgt := range res.Targets {
		if tgt.Requests < 20 {
			t.Errorf("target %s got %d requests, want ≥ 20", tgt.URL, tgt.Requests)
		}
		if tgt.Errors != 0 {
			t.Errorf("target %s: %d errors", tgt.URL, tgt.Errors)
		}
		if tgt.LagRecords != -1 {
			t.Errorf("leader target %s exports lag %d, want -1 (absent)", tgt.URL, tgt.LagRecords)
		}
	}
}

// TestWriteRedirectFollowsLeaderHeader: when the write target answers
// 403 read_only with a Leader header (what a follower does), the
// client retries against the advertised leader and pins writes there.
func TestWriteRedirectFollowsLeaderHeader(t *testing.T) {
	leader := startGsqld(t)

	// Stub follower: rejects writes the way internal/server does —
	// 403 + Leader header — without booting a whole replication pair.
	var followerWrites int
	follower := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method == "POST" && strings.HasPrefix(r.URL.Path, "/graph/") {
			followerWrites++
			rw.Header().Set("Leader", leader.URL)
			rw.WriteHeader(http.StatusForbidden)
			rw.Write([]byte(`{"error":"replica is read-only","code":"read_only","leader":"` + leader.URL + `"}`))
			return
		}
		rw.WriteHeader(http.StatusCreated)
		rw.Write([]byte("{}"))
	}))
	defer follower.Close()

	w := newTestWorkload(t, "e2e-redirect")
	c, err := NewClient([]string{follower.URL, leader.URL}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Install only on the real leader; the stub accepts anything.
	if err := c.InstallAll(w.InstallSources()); err != nil {
		t.Fatal(err)
	}

	// First write hits the stub follower, gets 403+Leader, retries on
	// the leader, succeeds.
	if err := c.Mutate(w.Write(0)); err != nil {
		t.Fatalf("redirected write failed: %v", err)
	}
	if followerWrites != 1 {
		t.Fatalf("follower saw %d writes, want 1", followerWrites)
	}
	// Subsequent writes go straight to the leader — the cursor moved.
	if err := c.Mutate(w.Write(1)); err != nil {
		t.Fatal(err)
	}
	if followerWrites != 1 {
		t.Fatalf("follower saw %d writes after redirect, want still 1", followerWrites)
	}
}
