package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gsqlgo/internal/ldbc"
	"gsqlgo/internal/trace"
)

// Client fans the workload out over one or more gsqld targets. Reads
// round-robin across every target (leader plus `-follow` replicas —
// the replica read-scaling story); writes and checkpoints go to the
// current write target, which starts at targets[0] and follows the
// Leader header whenever a follower answers 403 read_only. Per-target
// request and error counters are atomics so every worker shares one
// Client.
type Client struct {
	targets []*target
	http    *http.Client
	next    atomic.Uint64 // round-robin cursor for reads
	writeTo atomic.Int64  // index of the current write target

	// Cross-process trace sampling (SetTraceSampling): every Nth read
	// carries a fresh client-minted X-Trace-Id, and the id is recorded
	// with the served target and observed latency so the caller can
	// fetch the matching server span tree afterwards.
	sampleEvery int
	sampleMax   int
	reads       atomic.Uint64
	sampleMu    sync.Mutex
	samples     []TraceSample
}

// TraceSample records one sampled read: the client-minted trace id,
// what ran where, and the client-observed latency. The server's span
// tree for it is at {Target}/debug/traces?trace_id={ID}.
type TraceSample struct {
	ID        string  `json:"id"`
	Query     string  `json:"query"`
	Target    string  `json:"target"`
	LatencyMS float64 `json:"latency_ms"`
	Err       bool    `json:"err,omitempty"`
}

// SetTraceSampling tags every Nth read with a fresh X-Trace-Id
// (every <= 0 disables sampling), retaining at most maxSamples sampled
// reads (<= 0 = 256). Call before the run starts.
func (c *Client) SetTraceSampling(every, maxSamples int) {
	if maxSamples <= 0 {
		maxSamples = 256
	}
	c.sampleEvery, c.sampleMax = every, maxSamples
}

// TraceSamples returns the sampled reads recorded so far.
func (c *Client) TraceSamples() []TraceSample {
	c.sampleMu.Lock()
	defer c.sampleMu.Unlock()
	return append([]TraceSample(nil), c.samples...)
}

// sampleTraceID decides whether this read is sampled, minting its
// trace id if so ("" otherwise). Sampling stops once the retention cap
// is reached — an id we can't retain would tag a trace nobody fetches.
func (c *Client) sampleTraceID() string {
	if c.sampleEvery <= 0 || c.reads.Add(1)%uint64(c.sampleEvery) != 0 {
		return ""
	}
	c.sampleMu.Lock()
	full := len(c.samples) >= c.sampleMax
	c.sampleMu.Unlock()
	if full {
		return ""
	}
	return trace.NewID()
}

func (c *Client) recordSample(s TraceSample) {
	c.sampleMu.Lock()
	if len(c.samples) < c.sampleMax {
		c.samples = append(c.samples, s)
	}
	c.sampleMu.Unlock()
}

type target struct {
	url      string
	requests atomic.Uint64
	errors   atomic.Uint64
}

// TargetStats is the per-target slice of a run's Result.
type TargetStats struct {
	URL        string `json:"url"`
	Requests   uint64 `json:"requests"`
	Errors     uint64 `json:"errors"`
	LagRecords int64  `json:"lag_records"` // -1 when the target exports no lag gauge (a leader)
}

// NewClient builds a client over the given base URLs (no trailing
// slash needed; one is trimmed if present).
func NewClient(urls []string, timeout time.Duration) (*Client, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("load: no targets")
	}
	c := &Client{http: &http.Client{Timeout: timeout}}
	for _, u := range urls {
		c.targets = append(c.targets, &target{url: strings.TrimRight(u, "/")})
	}
	return c, nil
}

// Targets returns the configured base URLs in order.
func (c *Client) Targets() []string {
	out := make([]string, len(c.targets))
	for i, t := range c.targets {
		out[i] = t.url
	}
	return out
}

// post sends body to tgt at path and returns (status, response body).
// The target's request counter is bumped here; error accounting is the
// caller's call — a 403 on a follower is protocol, not failure.
// traceID, when non-empty, rides as the X-Trace-Id header.
func (c *Client) post(tgt *target, path string, body []byte, contentType, traceID string) (int, []byte, http.Header, error) {
	tgt.requests.Add(1)
	req, err := http.NewRequest("POST", tgt.url+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, nil, resp.Header, err
	}
	return resp.StatusCode, rb, resp.Header, nil
}

// InstallAll installs the given GSQL sources on every target (each
// gsqld keeps its own catalog; followers accept installs — only graph
// mutations are read-only). 409 duplicate_query is treated as success
// so reruns against a durable server are idempotent.
func (c *Client) InstallAll(sources map[string]string) error {
	for _, t := range c.targets {
		for name, src := range sources {
			status, body, _, err := c.post(t, "/queries", []byte(src), "text/plain", "")
			if err != nil {
				return fmt.Errorf("install %s on %s: %w", name, t.url, err)
			}
			if status != http.StatusCreated && status != http.StatusConflict {
				return fmt.Errorf("install %s on %s: %d %s", name, t.url, status, body)
			}
		}
	}
	return nil
}

// RunQuery runs an installed query on the next read target in
// round-robin order. Any non-200 counts as a target error.
func (c *Client) RunQuery(name string, params map[string]any) error {
	t := c.targets[c.next.Add(1)%uint64(len(c.targets))]
	body, err := json.Marshal(map[string]any{"params": params})
	if err != nil {
		return err
	}
	tid := c.sampleTraceID()
	start := time.Now()
	status, rb, _, err := c.post(t, "/queries/"+name+"/run", body, "application/json", tid)
	if tid != "" {
		c.recordSample(TraceSample{
			ID: tid, Query: name, Target: t.url,
			LatencyMS: float64(time.Since(start).Microseconds()) / 1000,
			Err:       err != nil || status != http.StatusOK,
		})
	}
	if err != nil {
		t.errors.Add(1)
		return fmt.Errorf("run %s on %s: %w", name, t.url, err)
	}
	if status != http.StatusOK {
		t.errors.Add(1)
		return fmt.Errorf("run %s on %s: %d %s", name, t.url, status, rb)
	}
	return nil
}

// Mutate applies one mutation record to the write target. When a
// follower answers 403 read_only, the advertised Leader header
// switches the write target and the op is retried there once — the
// fan-out needs no out-of-band leader configuration.
func (c *Client) Mutate(m ldbc.Mutation) error {
	path, body, err := mutationRequest(m)
	if err != nil {
		return err
	}
	return c.postWrite(path, body)
}

// Checkpoint asks the write target to checkpoint.
func (c *Client) Checkpoint() error {
	return c.postWrite("/admin/checkpoint", []byte("{}"))
}

func (c *Client) postWrite(path string, body []byte) error {
	for attempt := 0; ; attempt++ {
		idx := int(c.writeTo.Load())
		t := c.targets[idx]
		status, rb, hdr, err := c.post(t, path, body, "application/json", "")
		if err != nil {
			t.errors.Add(1)
			return fmt.Errorf("write %s to %s: %w", path, t.url, err)
		}
		if status == http.StatusForbidden && attempt == 0 {
			if leader := c.redirectWrite(idx, hdr.Get("Leader")); leader {
				continue
			}
		}
		if status != http.StatusOK && status != http.StatusCreated {
			t.errors.Add(1)
			return fmt.Errorf("write %s to %s: %d %s", path, t.url, status, rb)
		}
		return nil
	}
}

// redirectWrite moves the write cursor to the target matching the
// advertised leader URL, returning whether a retry makes sense. An
// advertised leader outside the target set is added on the fly.
func (c *Client) redirectWrite(from int, leader string) bool {
	if leader == "" {
		return false
	}
	leader = strings.TrimRight(leader, "/")
	for i, t := range c.targets {
		if t.url == leader {
			c.writeTo.CompareAndSwap(int64(from), int64(i))
			return true
		}
	}
	return false
}

// FetchTrace fetches the server span trees recorded under a sampled
// trace id from target's /debug/traces ring — the retrieve half of
// cross-process trace propagation. An empty slice means the trace has
// already aged out of the ring (or never armed).
func (c *Client) FetchTrace(target, traceID string) ([]*trace.SpanJSON, error) {
	resp, err := c.http.Get(strings.TrimRight(target, "/") + "/debug/traces?trace_id=" + traceID)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("load: fetching trace %s from %s: %d %s", traceID, target, resp.StatusCode, body)
	}
	var out struct {
		Traces []*trace.SpanJSON `json:"traces"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// Lag probes each target's /metrics for the replication lag gauge and
// returns the per-target stats snapshot. Call once at end of run —
// it issues one extra GET per target.
func (c *Client) Lag() []TargetStats {
	out := make([]TargetStats, len(c.targets))
	for i, t := range c.targets {
		out[i] = TargetStats{
			URL:        t.url,
			Requests:   t.requests.Load(),
			Errors:     t.errors.Load(),
			LagRecords: -1,
		}
		resp, err := c.http.Get(t.url + "/metrics")
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		for _, line := range strings.Split(string(body), "\n") {
			if v, ok := strings.CutPrefix(line, "gsqld_replication_lag_records "); ok {
				if n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64); err == nil {
					out[i].LagRecords = n
				}
			}
		}
	}
	return out
}

// mutationRequest maps a mutation record onto the gsqld write API.
func mutationRequest(m ldbc.Mutation) (path string, body []byte, err error) {
	switch m.Op {
	case ldbc.OpAddVertex:
		path = "/graph/vertices"
		body, err = json.Marshal(map[string]any{"type": m.Type, "key": m.Key, "attrs": m.Attrs})
	case ldbc.OpAddEdge:
		path = "/graph/edges"
		body, err = json.Marshal(map[string]any{
			"type":  m.Type,
			"src":   map[string]string{"type": m.SrcType, "key": m.SrcKey},
			"dst":   map[string]string{"type": m.DstType, "key": m.DstKey},
			"attrs": m.Attrs,
		})
	case ldbc.OpSetAttr:
		path = "/graph/vertices/attrs"
		body, err = json.Marshal(map[string]any{"type": m.Type, "key": m.Key, "attrs": m.Attrs})
	default:
		return "", nil, fmt.Errorf("load: unknown mutation op %q", m.Op)
	}
	return path, body, err
}
