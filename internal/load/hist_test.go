package load

import (
	"math"
	"sort"
	"testing"
	"time"
)

// TestHistBucketMath checks every value lands in a bucket that
// contains it and whose width honours the 1/32 relative-error bound.
func TestHistBucketMath(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 4096,
		1e6, 1e9, 123456789, math.MaxInt64 / 2, math.MaxInt64}
	// Dense sweep over the small range plus a pseudo-random spray.
	for v := int64(0); v < 5000; v++ {
		vals = append(vals, v)
	}
	for i := uint64(0); i < 5000; i++ {
		vals = append(vals, int64(mix64(i)>>1))
	}
	prevIdx := -1
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if idx < prevIdx {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prevIdx)
		}
		prevIdx = idx
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d]", v, idx, lo, hi)
		}
		if lo > 0 {
			if rel := float64(hi-lo) / float64(lo); rel > 1.0/32+1e-9 {
				t.Fatalf("bucket %d width %d too wide for lo %d (rel %.4f)", idx, hi-lo, lo, rel)
			}
		}
	}
}

// TestHistQuantilesVsExact records a deterministic heavy-tailed sample
// and compares the bucketed quantiles against the exact (sorted)
// answers: within the histogram's ~3.1% relative error bound plus the
// midpoint's half-bucket.
func TestHistQuantilesVsExact(t *testing.T) {
	const n = 200_000
	var h Hist
	exact := make([]int64, n)
	for i := uint64(0); i < n; i++ {
		// Latency-shaped: ~1µs body with a 1% tail two decades up.
		v := int64(1000 + mix64(i)%9000)
		if mix64(i^0x7a11)%100 == 0 {
			v *= 100
		}
		exact[i] = v
		h.Record(time.Duration(v))
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })

	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	var sum int64
	for _, v := range exact {
		sum += v
	}
	if got, want := int64(h.Mean()), sum/n; got != want {
		t.Fatalf("mean = %d, want exact %d", got, want)
	}
	if got, want := int64(h.Max()), exact[n-1]; got != want {
		t.Fatalf("max = %d, want exact %d", got, want)
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.99, 0.999} {
		rank := int(q * n)
		if rank < 1 {
			rank = 1
		}
		want := exact[rank-1]
		got := int64(h.Quantile(q))
		if rel := math.Abs(float64(got-want)) / float64(want); rel > 0.05 {
			t.Errorf("q%.3f = %d, exact %d (rel err %.4f > 5%%)", q, got, want, rel)
		}
	}

	// Monotone in q by construction.
	prev := time.Duration(0)
	for q := 0.01; q <= 1.0; q += 0.01 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantiles not monotone: q=%.2f gives %v < %v", q, cur, prev)
		}
		prev = cur
	}
}

// TestHistMerge checks split-then-merge equals recording everything
// into one histogram.
func TestHistMerge(t *testing.T) {
	var whole, a, b Hist
	for i := uint64(0); i < 10_000; i++ {
		d := time.Duration(mix64(i) % 1e7)
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Mean() != whole.Mean() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: count %d/%d mean %v/%v max %v/%v",
			a.Count(), whole.Count(), a.Mean(), whole.Mean(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%.3f: merged %v, whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestHistEmpty: zero-value histogram is usable.
func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}
