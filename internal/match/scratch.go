package match

import (
	"sync"

	"gsqlgo/internal/graph"
)

// scratch is the reusable working set of one SDMC kernel run over a
// product space of n = V·Q nodes: per-product-node distance and count
// arrays plus the two BFS frontier buffers. Reuse works through
// epoch-stamped visitation — dist[i] and cnt[i] are meaningful only
// when stamp[i] equals the current epoch — so starting the next
// per-source run costs one epoch increment instead of an O(V·Q)
// re-clear, and the steady-state kernel allocates nothing.
type scratch struct {
	n     int // product-space size this scratch serves (the pool key)
	epoch uint32
	stamp []uint32 // visitation epoch per product node
	dist  []int32  // BFS layer; valid iff stamp matches epoch
	cnt   []uint64 // shortest-walk count; valid iff stamp matches epoch
	// frontier/next are the current and next BFS layers, swapped each
	// step; kept here so their grown capacity survives across runs.
	frontier []int32
	next     []int32
	// reached collects matched targets during a run (then sorted and
	// copied into Counts.Reached); kept here for the same reason.
	reached []graph.VID
}

// scratchPools pools scratches by product-space size class, so
// concurrent queries over differently sized (graph, DFA) pairs never
// hand each other under-sized buffers: map[int]*sync.Pool.
var scratchPools sync.Map

func poolFor(n int) *sync.Pool {
	if p, ok := scratchPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := scratchPools.LoadOrStore(n, &sync.Pool{})
	return p.(*sync.Pool)
}

// getScratch fetches (or makes) a scratch for an n-node product space.
func getScratch(n int) *scratch {
	if s, ok := poolFor(n).Get().(*scratch); ok {
		return s
	}
	return &scratch{
		n:     n,
		stamp: make([]uint32, n),
		dist:  make([]int32, n),
		cnt:   make([]uint64, n),
	}
}

// putScratch returns a scratch to its size class for reuse.
func putScratch(s *scratch) { poolFor(s.n).Put(s) }

// nextEpoch opens a fresh visitation epoch, invalidating every stamp
// at once. On uint32 wraparound the stamps are cleared for real so a
// stale stamp from 2^32 runs ago cannot read as current.
func (s *scratch) nextEpoch() uint32 {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	return s.epoch
}
