// Package match implements pattern-match semantics for DARPE patterns
// (Section 6 of the paper).
//
// The default, all-shortest-paths (ASP) semantics counts — without
// materializing — the shortest paths satisfying a DARPE between vertex
// pairs, in polynomial time (the SDMC problem, Theorem 6.1). The
// counting runs a BFS over the implicit product of the graph with the
// DARPE's DFA; because the automaton is deterministic, product walks
// correspond one-to-one to graph paths and per-layer count propagation
// yields exact shortest-path counts.
//
// The package also implements the competing path-legality flavors the
// paper contrasts against (Section 6.1): non-repeated-edge (Cypher's
// default), non-repeated-vertex (Gremlin tutorial style), SparQL-style
// existence semantics, and a deliberately materializing ASP evaluator
// modelling engines that support ASP suboptimally (the paper's Neo4j
// allShortestPaths observation). All of those except existence are
// exponential in the worst case — that asymmetry is exactly what the
// Table 1 experiment demonstrates.
package match

import (
	"errors"
	"math"

	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
)

// Semantics selects a path-legality flavor.
type Semantics int

// The path-legality flavors of Section 6.1.
const (
	// AllShortestPaths: legal paths are the shortest satisfying ones
	// per (source, target) pair; multiplicities are their counts.
	// Polynomial via counting (GSQL's default).
	AllShortestPaths Semantics = iota
	// NonRepeatedEdge: legal paths never traverse an edge twice
	// (Cypher's default). Exponential enumeration.
	NonRepeatedEdge
	// NonRepeatedVertex: legal paths never visit a vertex twice
	// (Gremlin tutorial style). Exponential enumeration.
	NonRepeatedVertex
	// ShortestExists: SparQL-style boolean reachability; every
	// reachable pair has multiplicity 1.
	ShortestExists
	// UnrestrictedBounded: all paths up to a caller-supplied length
	// bound (Gremlin's default semantics is unbounded and may not
	// terminate; the bound makes it usable for fixed-length patterns).
	UnrestrictedBounded
)

// String names the semantics.
func (s Semantics) String() string {
	switch s {
	case AllShortestPaths:
		return "all-shortest-paths"
	case NonRepeatedEdge:
		return "non-repeated-edge"
	case NonRepeatedVertex:
		return "non-repeated-vertex"
	case ShortestExists:
		return "shortest-exists"
	case UnrestrictedBounded:
		return "unrestricted-bounded"
	default:
		return "semantics?"
	}
}

// ErrBudget reports that an enumeration exceeded its step budget. The
// polynomial counting engine never returns it.
var ErrBudget = errors.New("match: enumeration step budget exceeded")

// adornOf maps a traversal direction to the DARPE adornment it spells.
func adornOf(d graph.Dir) darpe.Adorn {
	switch d {
	case graph.DirOut:
		return darpe.AdornFwd
	case graph.DirIn:
		return darpe.AdornRev
	default:
		return darpe.AdornUnd
	}
}

// typeResolver maps the graph's edge-type ids to DFA symbol indices.
func typeResolver(g *graph.Graph, d *darpe.DFA) []int {
	ets := g.Schema.EdgeTypes()
	out := make([]int, len(ets))
	for i, et := range ets {
		out[i] = d.TypeIndexFor(et.Name)
	}
	return out
}

// Counts holds per-target results of a single-source match: for every
// vertex t with Dist[t] >= 0, Dist[t] is the length of the shortest
// legal satisfying path from the source and Mult[t] the number of
// legal satisfying paths (shortest ones under ASP; all of them under
// the enumeration semantics). Counts saturate at MaxMult.
//
// Reached lists exactly the vertices with Dist >= 0, sorted by VID, so
// consumers can walk the result sparsely instead of scanning all V
// Dist entries per source. The sort makes the order independent of BFS
// discovery order — identical to what an ascending dense scan yields.
type Counts struct {
	Dist      []int32 // per vertex; -1 = no match
	Mult      []uint64
	Reached   []graph.VID // matched targets, ascending
	Saturated bool
}

// MaxMult is the saturation ceiling for path multiplicities.
const MaxMult = math.MaxUint64

func newCounts(n int) *Counts {
	c := &Counts{Dist: make([]int32, n), Mult: make([]uint64, n)}
	for i := range c.Dist {
		c.Dist[i] = -1
	}
	return c
}

// satAdd adds b into *a, saturating at MaxMult.
func (c *Counts) satAdd(a *uint64, b uint64) {
	s := *a + b
	if s < *a {
		s = MaxMult
		c.Saturated = true
	}
	*a = s
}

// HasPath reports whether target t has any legal satisfying path.
func (c *Counts) HasPath(t graph.VID) bool { return c.Dist[t] >= 0 }
