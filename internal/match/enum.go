package match

import (
	"context"
	"fmt"
	"slices"

	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
)

// EnumLimits bounds an enumeration run. Zero values select defaults.
type EnumLimits struct {
	// MaxSteps aborts the enumeration (ErrBudget) after this many DFS
	// edge traversals. Default 50 million.
	MaxSteps uint64
	// MaxLen bounds path length. Mandatory (>0) for
	// UnrestrictedBounded; ignored as "no bound" (graph-size bound
	// still applies) for the non-repeating semantics, whose paths are
	// finite by definition.
	MaxLen int
}

func (l EnumLimits) maxSteps() uint64 {
	if l.MaxSteps == 0 {
		return 50_000_000
	}
	return l.MaxSteps
}

// CountEnum counts satisfying legal paths from src to every target by
// explicit enumeration under the selected semantics. It implements the
// reference behaviour of the non-repeating flavors (exponential in the
// worst case — this is the point of the paper's Table 1 comparison).
// Supported semantics: NonRepeatedEdge, NonRepeatedVertex,
// UnrestrictedBounded. Dist reports the shortest counted length per
// target; Mult counts all legal satisfying paths (not only shortest).
func CountEnum(g *graph.Graph, d *darpe.DFA, src graph.VID, sem Semantics, limits EnumLimits) (*Counts, error) {
	return countEnum(g, d, src, sem, limits, nil, nil)
}

// CountEnumCtx is CountEnum under a context: the DFS polls ctx.Done()
// on a step stride, so deadlines bound the exponential enumeration
// baselines the same way they bound the polynomial kernel.
func CountEnumCtx(ctx context.Context, g *graph.Graph, d *darpe.DFA, src graph.VID, sem Semantics, limits EnumLimits) (*Counts, error) {
	return countEnum(g, d, src, sem, limits, ctx.Done(), ctx)
}

func countEnum(g *graph.Graph, d *darpe.DFA, src graph.VID, sem Semantics, limits EnumLimits, done <-chan struct{}, ctx context.Context) (*Counts, error) {
	switch sem {
	case NonRepeatedEdge, NonRepeatedVertex, UnrestrictedBounded:
	default:
		return nil, fmt.Errorf("match: CountEnum does not implement %v; use CountASP/CountExists", sem)
	}
	if sem == UnrestrictedBounded && limits.MaxLen <= 0 {
		return nil, fmt.Errorf("match: UnrestrictedBounded requires MaxLen > 0")
	}
	e := &enumerator{
		g:      g,
		d:      d,
		types:  typeResolver(g, d),
		sem:    sem,
		res:    newCounts(g.NumVertices()),
		budget: limits.maxSteps(),
		maxLen: limits.MaxLen,
		done:   done,
		ctx:    ctx,
	}
	if sem == NonRepeatedEdge {
		e.usedEdges = newBitset(g.NumEdges())
	}
	if sem == NonRepeatedVertex {
		e.usedVerts = newBitset(g.NumVertices())
		e.usedVerts.set(int(src))
	}
	if err := e.walk(src, d.Start(), 0); err != nil {
		return nil, err
	}
	slices.Sort(e.res.Reached)
	return e.res, nil
}

type enumerator struct {
	g         *graph.Graph
	d         *darpe.DFA
	types     []int
	sem       Semantics
	res       *Counts
	budget    uint64
	steps     uint64
	maxLen    int
	usedEdges bitset
	usedVerts bitset
	canReach  bitset // optional target-reachability pruning
	done      <-chan struct{}
	ctx       context.Context
}

func (e *enumerator) record(v graph.VID, length int32) {
	if e.res.Dist[v] < 0 {
		e.res.Reached = append(e.res.Reached, v)
	}
	if e.res.Dist[v] < 0 || length < e.res.Dist[v] {
		e.res.Dist[v] = length
	}
	e.res.satAdd(&e.res.Mult[v], 1)
}

func (e *enumerator) walk(v graph.VID, q int, length int32) error {
	if e.d.Accepting(q) {
		e.record(v, length)
	}
	if e.maxLen > 0 && int(length) >= e.maxLen {
		return nil
	}
	for _, h := range e.g.Neighbors(v) {
		q2 := e.d.StepIdx(q, e.types[h.Type], adornOf(h.Dir))
		if q2 < 0 {
			continue
		}
		if e.canReach != nil && !e.canReach.get(int(h.To)) {
			continue
		}
		switch e.sem {
		case NonRepeatedEdge:
			if e.usedEdges.get(int(h.Edge)) {
				continue
			}
			e.usedEdges.set(int(h.Edge))
		case NonRepeatedVertex:
			if e.usedVerts.get(int(h.To)) {
				continue
			}
			e.usedVerts.set(int(h.To))
		}
		if e.budget == 0 {
			return ErrBudget
		}
		e.budget--
		e.steps++
		if e.done != nil && e.steps&8191 == 0 {
			select {
			case <-e.done:
				return ctxErr(e.ctx)
			default:
			}
		}
		err := e.walk(h.To, q2, length+1)
		switch e.sem {
		case NonRepeatedEdge:
			e.usedEdges.clear(int(h.Edge))
		case NonRepeatedVertex:
			e.usedVerts.clear(int(h.To))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// CountEnumPair counts legal satisfying src→dst paths by enumeration.
// Like a real anchored-pattern engine, it prunes DFS branches at
// vertices that cannot reach dst under any traversal kind the pattern
// uses, so the cost is proportional to the paths actually matched (the
// Table 1 behaviour: Neo4j's time doubles with the match count), not
// to all paths leaving src.
func CountEnumPair(g *graph.Graph, d *darpe.DFA, src, dst graph.VID, sem Semantics, limits EnumLimits) (mult uint64, err error) {
	switch sem {
	case NonRepeatedEdge, NonRepeatedVertex, UnrestrictedBounded:
	default:
		return 0, fmt.Errorf("match: CountEnumPair does not implement %v; use CountASPPair", sem)
	}
	if sem == UnrestrictedBounded && limits.MaxLen <= 0 {
		return 0, fmt.Errorf("match: UnrestrictedBounded requires MaxLen > 0")
	}
	e := &enumerator{
		g:        g,
		d:        d,
		types:    typeResolver(g, d),
		sem:      sem,
		res:      newCounts(g.NumVertices()),
		budget:   limits.maxSteps(),
		maxLen:   limits.MaxLen,
		canReach: reverseReachable(g, d, dst),
	}
	if sem == NonRepeatedEdge {
		e.usedEdges = newBitset(g.NumEdges())
	}
	if sem == NonRepeatedVertex {
		e.usedVerts = newBitset(g.NumVertices())
		e.usedVerts.set(int(src))
	}
	if !e.canReach.get(int(src)) {
		return 0, nil
	}
	if err := e.walk(src, d.Start(), 0); err != nil {
		return 0, err
	}
	return e.res.Mult[dst], nil
}

// reverseReachable marks the vertices from which dst is reachable via
// traversal kinds the pattern can consume (a sound overapproximation
// ignoring automaton state).
func reverseReachable(g *graph.Graph, d *darpe.DFA, dst graph.VID) bitset {
	can := newBitset(g.NumVertices())
	can.set(int(dst))
	frontier := []graph.VID{dst}
	useFwd := d.UsesAdorn(darpe.AdornFwd)
	useRev := d.UsesAdorn(darpe.AdornRev)
	useUnd := d.UsesAdorn(darpe.AdornUnd)
	for len(frontier) > 0 {
		var next []graph.VID
		for _, y := range frontier {
			for _, h := range g.Neighbors(y) {
				// A step x→y exists iff, seen from y, the half-edge
				// points back at x with the inverse direction.
				ok := false
				switch h.Dir {
				case graph.DirIn:
					ok = useFwd
				case graph.DirOut:
					ok = useRev
				case graph.DirUndir:
					ok = useUnd
				}
				if ok && !can.get(int(h.To)) {
					can.set(int(h.To))
					next = append(next, h.To)
				}
			}
		}
		frontier = next
	}
	return can
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << uint(i&63) }
