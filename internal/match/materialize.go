package match

import (
	"gsqlgo/internal/graph"

	"gsqlgo/internal/darpe"
)

// CountASPMaterializedPair counts the shortest satisfying src→dst
// paths the way an engine without the counting insight does it: a
// level-synchronous BFS that materializes every partial path (as
// parent-pointer records) and, at the first level where dst is reached
// in an accepting state, counts the accepting path records.
//
// This is deliberately exponential when exponentially many shortest
// paths exist — it models the behaviour the paper observed in Neo4j's
// allShortestPaths mode (Section 7.1), in contrast to CountASPPair's
// polynomial counting. Levels are capped at V·Q (a shortest accepting
// product walk never repeats a product node); MaxSteps bounds the
// number of materialized records.
func CountASPMaterializedPair(g *graph.Graph, d *darpe.DFA, src, dst graph.VID, limits EnumLimits) (dist int, mult uint64, err error) {
	types := typeResolver(g, d)
	budget := limits.maxSteps()

	type rec struct {
		v      graph.VID
		q      int32
		parent int32 // index into previous level; kept to model real path materialization
		edge   graph.EID
	}
	level := []rec{{v: src, q: int32(d.Start()), parent: -1, edge: -1}}
	if d.Accepting(d.Start()) && src == dst {
		return 0, 1, nil
	}
	maxLevels := g.NumVertices() * d.NumStates()
	var res Counts
	for depth := 1; depth <= maxLevels; depth++ {
		var next []rec
		for i, r := range level {
			for _, h := range g.Neighbors(r.v) {
				q2 := d.StepIdx(int(r.q), types[h.Type], adornOf(h.Dir))
				if q2 < 0 {
					continue
				}
				if budget == 0 {
					return 0, 0, ErrBudget
				}
				budget--
				next = append(next, rec{v: h.To, q: int32(q2), parent: int32(i), edge: h.Edge})
			}
		}
		var count uint64
		for _, r := range next {
			if r.v == dst && d.Accepting(int(r.q)) {
				res.satAdd(&count, 1)
			}
		}
		if count > 0 {
			return depth, count, nil
		}
		if len(next) == 0 {
			break
		}
		level = next
	}
	return 0, 0, nil
}
