package match

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
)

// TestCtxVariantsMatchPlain: the ctx-accepting kernels must be
// bit-identical to the plain ones under a live context.
func TestCtxVariantsMatchPlain(t *testing.T) {
	g := graph.BuildLinkGraph(300, 5, 3)
	d := darpe.MustCompile("LinkTo>*1..4")
	ctx := context.Background()
	src := graph.VID(0)

	want := CountASP(g, d, src)
	got, err := CountASPCtx(ctx, g, d, src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("CountASPCtx diverges from CountASP")
	}

	wantAll := CountASPAll(g, d)
	gotAll, err := CountASPAllCtx(ctx, g, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantAll, gotAll) {
		t.Error("CountASPAllCtx diverges from CountASPAll")
	}

	gotPar, err := CountASPAllParallelCtx(ctx, g, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantAll, gotPar) {
		t.Error("CountASPAllParallelCtx diverges from CountASPAll")
	}

	wantEx := CountExists(g, d, src)
	gotEx, err := CountExistsCtx(ctx, g, d, src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantEx, gotEx) {
		t.Error("CountExistsCtx diverges from CountExists")
	}
}

// TestCtxCancelledStopsKernels: a dead context aborts every kernel
// with a context-wrapping error instead of running to completion.
func TestCtxCancelledStopsKernels(t *testing.T) {
	g := graph.BuildLinkGraph(2000, 8, 3)
	d := darpe.MustCompile("LinkTo>*")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := CountASPCtx(ctx, g, d, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("CountASPCtx err = %v, want context.Canceled", err)
	}
	if _, err := CountASPAllCtx(ctx, g, d); !errors.Is(err, context.Canceled) {
		t.Errorf("CountASPAllCtx err = %v, want context.Canceled", err)
	}
	if _, err := CountASPAllParallelCtx(ctx, g, d, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("CountASPAllParallelCtx err = %v, want context.Canceled", err)
	}
	if _, err := CountExistsCtx(ctx, g, d, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("CountExistsCtx err = %v, want context.Canceled", err)
	}
	if _, err := CountEnumCtx(ctx, g, d, 0, NonRepeatedEdge, EnumLimits{}); !errors.Is(err, context.Canceled) {
		t.Errorf("CountEnumCtx err = %v, want context.Canceled", err)
	}
}

// TestCtxDeadlineMidFlight: a deadline landing mid-sweep stops the
// all-pairs kernels promptly.
func TestCtxDeadlineMidFlight(t *testing.T) {
	g := graph.BuildLinkGraph(3000, 8, 9)
	d := darpe.MustCompile("LinkTo>*")
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := CountASPAllParallelCtx(ctx, g, d, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v; cancellation checkpoints not firing", elapsed)
	}
}
