package match

import (
	"fmt"
	"math/rand"
	"testing"

	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
)

// assertSameCounts asserts two single-source results are bit-identical.
func assertSameCounts(t *testing.T, label string, ref, got *Counts) {
	t.Helper()
	if len(ref.Dist) != len(got.Dist) {
		t.Fatalf("%s: result size %d vs %d", label, len(got.Dist), len(ref.Dist))
	}
	for v := range ref.Dist {
		if ref.Dist[v] != got.Dist[v] || ref.Mult[v] != got.Mult[v] {
			t.Fatalf("%s: v%d: CSR (dist=%d mult=%d), reference (dist=%d mult=%d)",
				label, v, got.Dist[v], got.Mult[v], ref.Dist[v], ref.Mult[v])
		}
	}
	if ref.Saturated != got.Saturated {
		t.Fatalf("%s: Saturated CSR=%v reference=%v", label, got.Saturated, ref.Saturated)
	}
}

// diffFixture is one (graph, patterns) differential case. The fixtures
// mirror every graph/pattern combination the match tests exercise.
type diffFixture struct {
	name     string
	g        *graph.Graph
	patterns []string
}

func diffFixtures(t *testing.T) []diffFixture {
	t.Helper()
	undirected := func() *graph.Graph {
		s := graph.NewSchema()
		if _, err := s.AddVertexType("V", graph.AttrDef{Name: "name", Type: graph.AttrString}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddEdgeType("K", false); err != nil {
			t.Fatal(err)
		}
		g := graph.New(s)
		a, _ := g.AddVertex("V", "a", nil)
		b, _ := g.AddVertex("V", "b", nil)
		c, _ := g.AddVertex("V", "c", nil)
		mustEdge(t, g, "K", a, b)
		mustEdge(t, g, "K", c, b)
		return g
	}
	parallelEdges := func() *graph.Graph {
		s := graph.NewSchema()
		if _, err := s.AddVertexType("V", graph.AttrDef{Name: "name", Type: graph.AttrString}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddEdgeType("E", true); err != nil {
			t.Fatal(err)
		}
		g := graph.New(s)
		a, _ := g.AddVertex("V", "a", nil)
		b, _ := g.AddVertex("V", "b", nil)
		for i := 0; i < 3; i++ {
			mustEdge(t, g, "E", a, b)
		}
		return g
	}
	return []diffFixture{
		{"G1", graph.BuildG1(), []string{"E>*", "E>", "<E*", "_*1..4"}},
		{"G2", graph.BuildG2(), []string{"E>*.F>.E>*", "E>*", "F>"}},
		{"ABCCycle", graph.BuildABCCycle(), []string{"A>.(B>|D>)._>.A>", "_*"}},
		{"Diamond12", graph.BuildDiamondChain(12), []string{"E>*", "E>*1..3"}},
		{"Diamond70-saturating", graph.BuildDiamondChain(70), []string{"E>*"}},
		{"Undirected", undirected(), []string{"K*1..2", "K>", "K"}},
		{"ParallelEdges", parallelEdges(), []string{"E>", "E>*"}},
	}
}

func mustEdge(t *testing.T, g *graph.Graph, typ string, a, b graph.VID) {
	t.Helper()
	if _, err := g.AddEdge(typ, a, b, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCSRKernelMatchesReference runs every fixture through both the
// old slice-of-slices implementation (countASPReference) and the CSR
// kernel, from every source vertex, asserting bit-identical
// Dist/Mult/Saturated — the differential guarantee that the layout and
// scratch-reuse rework changed performance only.
func TestCSRKernelMatchesReference(t *testing.T) {
	for _, fx := range diffFixtures(t) {
		for _, pat := range fx.patterns {
			d := darpe.MustCompile(pat)
			for v := 0; v < fx.g.NumVertices(); v++ {
				src := graph.VID(v)
				ref := countASPReference(fx.g, d, src)
				got := CountASP(fx.g, d, src)
				assertSameCounts(t, fmt.Sprintf("%s %q src=%d", fx.name, pat, v), ref, got)
			}
			// The all-paths flavors reuse one scratch across sources —
			// the epoch logic must isolate runs just as well.
			refAll := make([]*Counts, fx.g.NumVertices())
			for v := range refAll {
				refAll[v] = countASPReference(fx.g, d, graph.VID(v))
			}
			for flavor, all := range map[string][]*Counts{
				"CountASPAll":         CountASPAll(fx.g, d),
				"CountASPAllParallel": CountASPAllParallel(fx.g, d, 4),
			} {
				for v := range refAll {
					assertSameCounts(t, fmt.Sprintf("%s %s %q src=%d", fx.name, flavor, pat, v), refAll[v], all[v])
				}
			}
		}
	}
}

// TestCSRKernelMatchesReferenceRandom property-checks the differential
// on random mixed graphs (directed/undirected/parallel/self-loop
// edges) across the same pattern set the brute-force oracle test uses.
func TestCSRKernelMatchesReferenceRandom(t *testing.T) {
	patterns := []string{
		"D1>", "D1>.D2>", "D1>*", "(D1>|D2>)*", "U*", "(D1>|U)*",
		"D1>*1..3", "<D1.D2>", "(D1>.D2>)*", "_*1..4", "D1>.(U|<D2)*",
	}
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := graph.BuildRandomMixedGraph(2+r.Intn(8), 1+r.Intn(16), seed)
		d := darpe.MustCompile(patterns[r.Intn(len(patterns))])
		for v := 0; v < g.NumVertices(); v++ {
			src := graph.VID(v)
			ref := countASPReference(g, d, src)
			got := CountASP(g, d, src)
			assertSameCounts(t, fmt.Sprintf("seed=%d src=%d", seed, v), ref, got)
		}
	}
}

// TestCountASPAfterMutationRefreezes asserts the query path sees a
// mutation made after a frozen query: the graph re-freezes lazily and
// the counts change accordingly.
func TestCountASPAfterMutationRefreezes(t *testing.T) {
	g := graph.BuildDiamondChain(4)
	d := darpe.MustCompile("E>*")
	v0, _ := g.VertexByKey("V", "v0")
	v4, _ := g.VertexByKey("V", "v4")

	if _, mult, ok := CountASPPair(g, d, v0, v4); !ok || mult != 16 {
		t.Fatalf("before mutation: mult=%d ok=%v, want 16", mult, ok)
	}
	// A direct v0→v4 edge makes the shortest path length 1, unique.
	mustEdge(t, g, "E", v0, v4)
	dist, mult, ok := CountASPPair(g, d, v0, v4)
	if !ok || dist != 1 || mult != 1 {
		t.Fatalf("after mutation: dist=%d mult=%d ok=%v, want 1/1/true", dist, mult, ok)
	}
	// And the differential still holds on the mutated, re-frozen graph.
	ref := countASPReference(g, d, v0)
	got := CountASP(g, d, v0)
	assertSameCounts(t, "mutated diamond", ref, got)
}
