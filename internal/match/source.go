package match

import (
	"math"

	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
)

// SourceCounter amortizes repeated single-source SDMC runs over one
// (graph, DFA) pair: the frozen CSR, the DFA's edge-type table and one
// pooled kernel scratch are resolved at construction and shared across
// every Count call, so a call allocates only its returned Counts. This
// is the per-source entry point the engine's parallel counted-hop
// expansion drives — one SourceCounter per worker goroutine, mirroring
// the per-worker scratch ownership of CountASPAllParallel.
//
// A SourceCounter is NOT safe for concurrent use (the scratch is
// exclusive); Close returns the scratch to the pool. Semantics beyond
// plain ASP (existence, enumeration) stay with the CountExists/
// CountEnum entry points — this type serves the counting kernel only.
type SourceCounter struct {
	g     *graph.Graph
	d     *darpe.DFA
	c     *graph.CSR
	types []int
	s     *scratch
	ref   bool // product space exceeds int32 ids: reference fallback
}

// NewSourceCounter prepares a counter for repeated single-source runs.
func NewSourceCounter(g *graph.Graph, d *darpe.DFA) *SourceCounter {
	sc := &SourceCounter{g: g, d: d}
	nV := g.NumVertices()
	if nV == 0 {
		return sc
	}
	if int64(nV)*int64(d.NumStates()) > math.MaxInt32 {
		sc.ref = true
		return sc
	}
	sc.c = g.Freeze()
	sc.types = typeResolver(g, d)
	sc.s = getScratch(nV * d.NumStates())
	return sc
}

// Count runs one single-source SDMC BFS. done (nil = never) is polled
// on the kernel's cancellation stride; ok is false when the run was
// aborted that way, in which case the Counts must be discarded.
func (sc *SourceCounter) Count(src graph.VID, done <-chan struct{}) (*Counts, bool) {
	nV := sc.g.NumVertices()
	res := newCounts(nV)
	if nV == 0 {
		return res, true
	}
	if sc.ref {
		return countASPReferenceDone(sc.g, sc.d, src, done)
	}
	ok := countASPInto(sc.c, sc.d, sc.types, src, sc.s, res, done)
	return res, ok
}

// Close releases the pooled scratch. The counter must not be used
// afterwards.
func (sc *SourceCounter) Close() {
	if sc.s != nil {
		putScratch(sc.s)
		sc.s = nil
	}
}
