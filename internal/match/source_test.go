package match

import (
	"math/rand"
	"testing"

	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
)

// TestReachedMatchesDenseScan checks the sparse Reached list against
// the dense definition — exactly the vertices with Dist >= 0, in
// ascending VID order — across kernel, reference and enumeration
// producers on random graphs.
func TestReachedMatchesDenseScan(t *testing.T) {
	patterns := []string{"D1>*", "(D1>|U)*", "D2>*1..3", "_*1..2"}
	check := func(c *Counts, what string, seed int64) {
		t.Helper()
		var want []graph.VID
		for v := range c.Dist {
			if c.Dist[v] >= 0 {
				want = append(want, graph.VID(v))
			}
		}
		if len(want) != len(c.Reached) {
			t.Fatalf("seed %d %s: Reached has %d entries, dense scan %d", seed, what, len(c.Reached), len(want))
		}
		for i := range want {
			if c.Reached[i] != want[i] {
				t.Fatalf("seed %d %s: Reached[%d]=%d, want %d (ascending)", seed, what, i, c.Reached[i], want[i])
			}
		}
	}
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := graph.BuildRandomMixedGraph(2+r.Intn(8), 1+r.Intn(16), seed)
		d := darpe.MustCompile(patterns[int(seed)%len(patterns)])
		src := graph.VID(r.Intn(g.NumVertices()))
		check(CountASP(g, d, src), "kernel", seed)
		ref, ok := countASPReferenceDone(g, d, src, nil)
		if !ok {
			t.Fatal("reference aborted without done channel")
		}
		check(ref, "reference", seed)
		en, err := CountEnum(g, d, src, NonRepeatedEdge, EnumLimits{})
		if err != nil {
			t.Fatal(err)
		}
		check(en, "enum", seed)
	}
}

// TestSourceCounterMatchesCountASP checks the amortized per-source
// entry point returns bit-identical results to the one-shot API, and
// that Existsify collapses multiplicities.
func TestSourceCounterMatchesCountASP(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := graph.BuildRandomMixedGraph(3+r.Intn(6), 2+r.Intn(12), seed)
		d := darpe.MustCompile("(D1>|D2>)*")
		sc := NewSourceCounter(g, d)
		for v := 0; v < g.NumVertices(); v++ {
			want := CountASP(g, d, graph.VID(v))
			got, ok := sc.Count(graph.VID(v), nil)
			if !ok {
				t.Fatal("SourceCounter aborted without done channel")
			}
			assertSameCounts(t, "SourceCounter", want, got)
		}
		sc.Close()
	}
	// Existsify: every reached target drops to multiplicity 1.
	g := graph.BuildDiamondChain(4)
	d := darpe.MustCompile("E>*")
	sc := NewSourceCounter(g, d)
	defer sc.Close()
	c, _ := sc.Count(0, nil)
	Existsify(c)
	for _, tgt := range c.Reached {
		if c.Mult[tgt] != 1 {
			t.Fatalf("Existsify left Mult[%d]=%d", tgt, c.Mult[tgt])
		}
	}
	if len(c.Reached) == 0 {
		t.Fatal("diamond chain source reaches nothing?")
	}
}

// TestSourceCounterCancellation: a closed done channel aborts the run
// at the kernel's stride poll.
func TestSourceCounterCancellation(t *testing.T) {
	g := graph.BuildRandomMixedGraph(10, 30, 2)
	sc := NewSourceCounter(g, darpe.MustCompile("_*"))
	defer sc.Close()
	done := make(chan struct{})
	close(done)
	if _, ok := sc.Count(0, done); ok {
		t.Error("closed done channel must abort the count")
	}
}
