package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
)

func vid(t *testing.T, g *graph.Graph, typ, key string) graph.VID {
	t.Helper()
	v, ok := g.VertexByKey(typ, key)
	if !ok {
		t.Fatalf("vertex %s/%s not found", typ, key)
	}
	return v
}

// TestExample9LegalityFlavors reproduces Example 9 of the paper: on
// graph G1 with pattern E>*, the multiplicity of the binding (1, 5) is
// 3, 4, 2 and 1 under non-repeated-vertex, non-repeated-edge,
// all-shortest-paths and SparQL-existence semantics respectively.
func TestExample9LegalityFlavors(t *testing.T) {
	g := graph.BuildG1()
	d := darpe.MustCompile("E>*")
	src, dst := vid(t, g, "V", "1"), vid(t, g, "V", "5")

	dist, mult, ok := CountASPPair(g, d, src, dst)
	if !ok || mult != 2 || dist != 4 {
		t.Errorf("ASP: dist=%d mult=%d ok=%v, want dist=4 mult=2", dist, mult, ok)
	}
	nre, err := CountEnumPair(g, d, src, dst, NonRepeatedEdge, EnumLimits{})
	if err != nil || nre != 4 {
		t.Errorf("NRE: mult=%d err=%v, want 4", nre, err)
	}
	nrv, err := CountEnumPair(g, d, src, dst, NonRepeatedVertex, EnumLimits{})
	if err != nil || nrv != 3 {
		t.Errorf("NRV: mult=%d err=%v, want 3", nrv, err)
	}
	ex := CountExists(g, d, src)
	if ex.Mult[dst] != 1 {
		t.Errorf("Exists: mult=%d, want 1", ex.Mult[dst])
	}
}

// TestExample10ShortestBeyondNonRepeating reproduces Example 10: on
// graph G2 with pattern E>*.F>.E>*, no path from 1 to 4 is legal under
// either non-repeating semantics, but exactly one (which repeats both
// a vertex and an edge) is legal under all-shortest-paths.
func TestExample10ShortestBeyondNonRepeating(t *testing.T) {
	g := graph.BuildG2()
	d := darpe.MustCompile("E>*.F>.E>*")
	src, dst := vid(t, g, "V", "1"), vid(t, g, "V", "4")

	dist, mult, ok := CountASPPair(g, d, src, dst)
	if !ok || mult != 1 || dist != 7 {
		t.Errorf("ASP: dist=%d mult=%d ok=%v, want dist=7 mult=1", dist, mult, ok)
	}
	if n, err := CountEnumPair(g, d, src, dst, NonRepeatedEdge, EnumLimits{}); err != nil || n != 0 {
		t.Errorf("NRE: %d %v, want 0", n, err)
	}
	if n, err := CountEnumPair(g, d, src, dst, NonRepeatedVertex, EnumLimits{}); err != nil || n != 0 {
		t.Errorf("NRV: %d %v, want 0", n, err)
	}
}

// TestFixedUniqueLengthCycle reproduces the Section 6.1 cycle example:
// the fixed-length pattern A>.(B>|D>)._>.A> applied to the 3-cycle
// v-A->u-B->w-C->v matches (v, u) under all-shortest-paths (the path
// wraps the cycle, revisiting vertex v and the A edge) but matches
// nothing under the non-repeating flavors.
func TestFixedUniqueLengthCycle(t *testing.T) {
	g := graph.BuildABCCycle()
	d := darpe.MustCompile("A>.(B>|D>)._>.A>")
	v, u := vid(t, g, "V", "v"), vid(t, g, "V", "u")

	dist, mult, ok := CountASPPair(g, d, v, u)
	if !ok || dist != 4 || mult != 1 {
		t.Errorf("ASP: dist=%d mult=%d ok=%v, want dist=4 mult=1", dist, mult, ok)
	}
	if n, _ := CountEnumPair(g, d, v, u, NonRepeatedEdge, EnumLimits{}); n != 0 {
		t.Errorf("NRE found %d matches, want 0", n)
	}
	if n, _ := CountEnumPair(g, d, v, u, NonRepeatedVertex, EnumLimits{}); n != 0 {
		t.Errorf("NRV found %d matches, want 0", n)
	}
	// Fixed-unique-length patterns: ASP equals unrestricted semantics.
	fl, fixed := darpe.FixedLength(darpe.MustParse("A>.(B>|D>)._>.A>"))
	if !fixed || fl != 4 {
		t.Fatalf("FixedLength = %d,%v", fl, fixed)
	}
	unr, err := CountEnumPair(g, d, v, u, UnrestrictedBounded, EnumLimits{MaxLen: fl})
	if err != nil || unr != 1 {
		t.Errorf("unrestricted: %d %v, want 1", unr, err)
	}
}

// TestDiamondChainCounts reproduces Example 11: on the diamond chain,
// all three semantics coincide and Q_k counts 2^k paths from v0 to vk.
func TestDiamondChainCounts(t *testing.T) {
	g := graph.BuildDiamondChain(12)
	d := darpe.MustCompile("E>*")
	v0 := vid(t, g, "V", "v0")
	c := CountASP(g, d, v0)
	for k := 1; k <= 12; k++ {
		vk := vid(t, g, "V", "v"+itoa(k))
		want := uint64(1) << uint(k)
		if c.Mult[vk] != want || c.Dist[vk] != int32(2*k) {
			t.Errorf("ASP v%d: dist=%d mult=%d, want dist=%d mult=%d", k, c.Dist[vk], c.Mult[vk], 2*k, want)
		}
	}
	// Cross-check a few against the enumerators.
	for _, k := range []int{1, 4, 8} {
		vk := vid(t, g, "V", "v"+itoa(k))
		want := uint64(1) << uint(k)
		if n, err := CountEnumPair(g, d, v0, vk, NonRepeatedEdge, EnumLimits{}); err != nil || n != want {
			t.Errorf("NRE v%d: %d %v, want %d", k, n, err, want)
		}
		if n, err := CountEnumPair(g, d, v0, vk, NonRepeatedVertex, EnumLimits{}); err != nil || n != want {
			t.Errorf("NRV v%d: %d %v, want %d", k, n, err, want)
		}
		dist, mult, err := CountASPMaterializedPair(g, d, v0, vk, EnumLimits{})
		if err != nil || mult != want || dist != 2*k {
			t.Errorf("ASP-mat v%d: dist=%d mult=%d err=%v, want dist=%d mult=%d", k, dist, mult, err, 2*k, want)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestEmptyPathMatchesKleene(t *testing.T) {
	g := graph.BuildDiamondChain(2)
	d := darpe.MustCompile("E>*")
	v0 := vid(t, g, "V", "v0")
	dist, mult, ok := CountASPPair(g, d, v0, v0)
	if !ok || dist != 0 || mult != 1 {
		t.Errorf("empty path: dist=%d mult=%d ok=%v, want 0/1/true", dist, mult, ok)
	}
}

func TestUndirectedTraversal(t *testing.T) {
	// Undirected edges satisfy the bare-type symbol in both
	// directions, and a Kleene over it can bounce back and forth.
	s := graph.NewSchema()
	if _, err := s.AddVertexType("V", graph.AttrDef{Name: "name", Type: graph.AttrString}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("K", false); err != nil {
		t.Fatal(err)
	}
	g := graph.New(s)
	a, _ := g.AddVertex("V", "a", nil)
	b, _ := g.AddVertex("V", "b", nil)
	c, _ := g.AddVertex("V", "c", nil)
	if _, err := g.AddEdge("K", a, b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("K", c, b, nil); err != nil { // note reversed insertion order
		t.Fatal(err)
	}
	d := darpe.MustCompile("K*1..2")
	cnt := CountASP(g, d, a)
	if cnt.Dist[b] != 1 || cnt.Mult[b] != 1 {
		t.Errorf("a~b: dist=%d mult=%d", cnt.Dist[b], cnt.Mult[b])
	}
	if cnt.Dist[c] != 2 || cnt.Mult[c] != 1 {
		t.Errorf("a~c: dist=%d mult=%d", cnt.Dist[c], cnt.Mult[c])
	}
	// Directed adornments never match undirected edges.
	dd := darpe.MustCompile("K>")
	cnt = CountASP(g, dd, a)
	if cnt.HasPath(b) {
		t.Error("K> must not match an undirected K edge")
	}
}

func TestParallelEdgesCountSeparately(t *testing.T) {
	s := graph.NewSchema()
	if _, err := s.AddVertexType("V", graph.AttrDef{Name: "name", Type: graph.AttrString}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("E", true); err != nil {
		t.Fatal(err)
	}
	g := graph.New(s)
	a, _ := g.AddVertex("V", "a", nil)
	b, _ := g.AddVertex("V", "b", nil)
	for i := 0; i < 3; i++ {
		if _, err := g.AddEdge("E", a, b, nil); err != nil {
			t.Fatal(err)
		}
	}
	d := darpe.MustCompile("E>")
	_, mult, ok := CountASPPair(g, d, a, b)
	if !ok || mult != 3 {
		t.Errorf("parallel edges: mult=%d ok=%v, want 3", mult, ok)
	}
	if n, err := CountEnumPair(g, d, a, b, NonRepeatedEdge, EnumLimits{}); err != nil || n != 3 {
		t.Errorf("NRE parallel: %d %v", n, err)
	}
}

func TestSaturation(t *testing.T) {
	g := graph.BuildDiamondChain(70) // 2^70 shortest paths > MaxUint64
	d := darpe.MustCompile("E>*")
	v0, _ := g.VertexByKey("V", "v0")
	c := CountASP(g, d, v0)
	if !c.Saturated {
		t.Error("counting 2^70 paths must saturate")
	}
	v70, _ := g.VertexByKey("V", "v70")
	if c.Mult[v70] != MaxMult {
		t.Errorf("saturated mult = %d, want MaxMult", c.Mult[v70])
	}
}

func TestEnumBudget(t *testing.T) {
	g := graph.BuildDiamondChain(25)
	d := darpe.MustCompile("E>*")
	v0, _ := g.VertexByKey("V", "v0")
	if _, err := CountEnum(g, d, v0, NonRepeatedEdge, EnumLimits{MaxSteps: 1000}); err != ErrBudget {
		t.Errorf("tiny budget must yield ErrBudget, got %v", err)
	}
	v25, _ := g.VertexByKey("V", "v25")
	if _, _, err := CountASPMaterializedPair(g, d, v0, v25, EnumLimits{MaxSteps: 10}); err != ErrBudget {
		t.Errorf("materialized with tiny budget must yield ErrBudget, got %v", err)
	}
}

func TestCountEnumRejectsWrongSemantics(t *testing.T) {
	g := graph.BuildDiamondChain(1)
	d := darpe.MustCompile("E>*")
	if _, err := CountEnum(g, d, 0, AllShortestPaths, EnumLimits{}); err == nil {
		t.Error("CountEnum must reject AllShortestPaths")
	}
	if _, err := CountEnum(g, d, 0, UnrestrictedBounded, EnumLimits{}); err == nil {
		t.Error("UnrestrictedBounded without MaxLen must error")
	}
}

func TestCountASPAll(t *testing.T) {
	g := graph.BuildDiamondChain(3)
	d := darpe.MustCompile("E>*")
	all := CountASPAll(g, d)
	if len(all) != g.NumVertices() {
		t.Fatalf("CountASPAll size %d", len(all))
	}
	v0, _ := g.VertexByKey("V", "v0")
	v3, _ := g.VertexByKey("V", "v3")
	if all[v0].Mult[v3] != 8 {
		t.Errorf("all-paths flavor v0->v3 = %d, want 8", all[v0].Mult[v3])
	}
}

// bruteCountByLength counts satisfying walks from src grouped by
// (target, length) via naive DFS up to maxLen — an independent oracle
// for CountASP on small graphs.
func bruteCountByLength(g *graph.Graph, d *darpe.DFA, src graph.VID, maxLen int) map[graph.VID]map[int]uint64 {
	res := make(map[graph.VID]map[int]uint64)
	types := make(map[int16]int)
	for _, et := range g.Schema.EdgeTypes() {
		types[int16(et.ID)] = d.TypeIndexFor(et.Name)
	}
	var walk func(v graph.VID, q int, length int)
	walk = func(v graph.VID, q int, length int) {
		if d.Accepting(q) {
			m := res[v]
			if m == nil {
				m = make(map[int]uint64)
				res[v] = m
			}
			m[length]++
		}
		if length == maxLen {
			return
		}
		for _, h := range g.Neighbors(v) {
			var a darpe.Adorn
			switch h.Dir {
			case graph.DirOut:
				a = darpe.AdornFwd
			case graph.DirIn:
				a = darpe.AdornRev
			default:
				a = darpe.AdornUnd
			}
			if q2 := d.StepIdx(q, types[h.Type], a); q2 >= 0 {
				walk(h.To, q2, length+1)
			}
		}
	}
	walk(src, d.Start(), 0)
	return res
}

// TestCountASPAgainstBruteForce property-checks the polynomial SDMC
// counter against naive walk enumeration on random mixed graphs and
// random patterns (Theorem 6.1 correctness).
func TestCountASPAgainstBruteForce(t *testing.T) {
	patterns := []string{
		"D1>", "D1>.D2>", "D1>*", "(D1>|D2>)*", "U*", "(D1>|U)*",
		"D1>*1..3", "<D1.D2>", "(D1>.D2>)*", "_*1..4", "D1>.(U|<D2)*",
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.BuildRandomMixedGraph(2+r.Intn(6), 1+r.Intn(12), seed)
		d := darpe.MustCompile(patterns[r.Intn(len(patterns))])
		src := graph.VID(r.Intn(g.NumVertices()))
		got := CountASP(g, d, src)
		maxLen := 6
		oracle := bruteCountByLength(g, d, src, maxLen)
		for v := 0; v < g.NumVertices(); v++ {
			byLen := oracle[graph.VID(v)]
			// Oracle's shortest within the bound.
			oDist := -1
			for l := 0; l <= maxLen; l++ {
				if byLen[l] > 0 {
					oDist = l
					break
				}
			}
			gDist := int(got.Dist[v])
			if oDist == -1 {
				// ASP may find a longer-than-bound match; only check
				// that it does not report one within the bound.
				if gDist >= 0 && gDist <= maxLen {
					t.Logf("seed %d: v%d ASP dist %d but oracle found none <= %d", seed, v, gDist, maxLen)
					return false
				}
				continue
			}
			if gDist != oDist || got.Mult[v] != byLen[oDist] {
				t.Logf("seed %d: v%d ASP (dist=%d mult=%d) oracle (dist=%d mult=%d)",
					seed, v, gDist, got.Mult[v], oDist, byLen[oDist])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMaterializedAgainstCounting property-checks that the
// materializing ASP evaluator agrees with the counting evaluator.
func TestMaterializedAgainstCounting(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.BuildRandomMixedGraph(2+r.Intn(5), 1+r.Intn(10), seed)
		d := darpe.MustCompile("(D1>|D2>|U)*")
		src := graph.VID(r.Intn(g.NumVertices()))
		dst := graph.VID(r.Intn(g.NumVertices()))
		if src == dst {
			return true
		}
		cd, cm, cok := CountASPPair(g, d, src, dst)
		md, mm, err := CountASPMaterializedPair(g, d, src, dst, EnumLimits{MaxSteps: 200_000})
		if err != nil {
			return true // budget; irrelevant for tiny graphs but be safe
		}
		mok := mm > 0
		if cok != mok {
			t.Logf("seed %d: reached mismatch count=%v mat=%v", seed, cok, mok)
			return false
		}
		if cok && (cd != md || cm != mm) {
			t.Logf("seed %d: count (%d,%d) vs materialized (%d,%d)", seed, cd, cm, md, mm)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSemanticsString(t *testing.T) {
	for s, want := range map[Semantics]string{
		AllShortestPaths:    "all-shortest-paths",
		NonRepeatedEdge:     "non-repeated-edge",
		NonRepeatedVertex:   "non-repeated-vertex",
		ShortestExists:      "shortest-exists",
		UnrestrictedBounded: "unrestricted-bounded",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestCountASPAllParallelAgreesWithSequential(t *testing.T) {
	g := graph.BuildDiamondChain(8)
	d := darpe.MustCompile("E>*")
	seq := CountASPAll(g, d)
	for _, workers := range []int{0, 1, 3, 16} {
		par := CountASPAllParallel(g, d, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: length %d", workers, len(par))
		}
		for v := range seq {
			for u := range seq[v].Mult {
				if seq[v].Mult[u] != par[v].Mult[u] || seq[v].Dist[u] != par[v].Dist[u] {
					t.Fatalf("workers=%d: mismatch at src %d dst %d", workers, v, u)
				}
			}
		}
	}
}
