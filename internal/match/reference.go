package match

import (
	"slices"

	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
)

// countASPReference is the pre-CSR single-source SDMC counter: a
// layered BFS over the implicit (vertex, DFA state) product graph that
// walks the mutable [][]HalfEdge adjacency and allocates its dist/cnt
// arrays per call. It is kept verbatim for two reasons:
//
//   - it is the oracle of the differential tests, which assert the
//     zero-allocation CSR kernel returns bit-identical
//     Dist/Mult/Saturated on every fixture;
//   - it is the fallback for product spaces larger than the CSR
//     kernel's int32 product-node ids can address (V·Q > MaxInt32).
//
// Saturating addition makes the result order-independent (the
// saturated sum of non-negative terms is min(true sum, MaxMult) under
// any addition order, and the Saturated flag fires iff the true sum
// exceeds MaxMult), so both kernels agree exactly even though they
// expand half-edges in different orders.
func countASPReference(g *graph.Graph, d *darpe.DFA, src graph.VID) *Counts {
	res, _ := countASPReferenceDone(g, d, src, nil)
	return res
}

// countASPReferenceDone is the reference kernel with the same
// cooperative cancellation contract as countASPInto: done (nil =
// never) is polled per BFS layer and every cancelStride frontier
// nodes; a false return means the run aborted.
func countASPReferenceDone(g *graph.Graph, d *darpe.DFA, src graph.VID, done <-chan struct{}) (*Counts, bool) {
	nV := g.NumVertices()
	nQ := d.NumStates()
	res := newCounts(nV)
	if nV == 0 {
		return res, true
	}
	types := typeResolver(g, d)

	dist := make([]int32, nV*nQ)
	for i := range dist {
		dist[i] = -1
	}
	cnt := make([]uint64, nV*nQ)
	node := func(v graph.VID, q int) int { return int(v)*nQ + q }

	start := node(src, d.Start())
	dist[start] = 0
	cnt[start] = 1
	frontier := []int{start}

	// bestDist[t] is fixed the first time an accepting product node
	// lands on t; later layers cannot improve it (BFS monotonicity).
	finish := func(layer []int, layerDist int32) {
		for _, n := range layer {
			q := n % nQ
			if !d.Accepting(q) {
				continue
			}
			t := graph.VID(n / nQ)
			if res.Dist[t] < 0 {
				res.Dist[t] = layerDist
				res.Reached = append(res.Reached, t)
			}
			if res.Dist[t] == layerDist {
				res.satAdd(&res.Mult[t], cnt[n])
			}
		}
	}

	layerDist := int32(0)
	finish(frontier, layerDist)
	for len(frontier) > 0 {
		var next []int
		for i, n := range frontier {
			if done != nil && i%cancelStride == 0 {
				select {
				case <-done:
					return res, false
				default:
				}
			}
			v := graph.VID(n / nQ)
			q := n % nQ
			c := cnt[n]
			for _, h := range g.Neighbors(v) {
				q2 := d.StepIdx(q, types[h.Type], adornOf(h.Dir))
				if q2 < 0 {
					continue
				}
				m := node(h.To, q2)
				if dist[m] < 0 {
					dist[m] = layerDist + 1
					next = append(next, m)
				}
				if dist[m] == layerDist+1 {
					res.satAdd(&cnt[m], c)
				}
			}
		}
		layerDist++
		finish(next, layerDist)
		frontier = next
	}
	slices.Sort(res.Reached)
	return res, true
}
