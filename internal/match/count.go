package match

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
)

// cancelStride is how many frontier nodes a BFS expands between polls
// of the done channel: frequent enough that a 1ms deadline stops a
// large-graph run promptly, rare enough to be invisible in the kernel
// profile.
const cancelStride = 2048

// ctxErr wraps the context's cause as this package's cancellation
// error. Callers above (internal/core) re-map it onto their own typed
// taxonomy.
func ctxErr(ctx context.Context) error {
	return fmt.Errorf("match: cancelled: %w", context.Cause(ctx))
}

// CountASP solves the single-source SDMC problem (Theorem 6.1): for
// every vertex t it computes the length of the shortest path from src
// to t satisfying the DARPE, and the exact number of such shortest
// paths, in time O(V·Q + E·Q) for a Q-state DFA — polynomial in the
// graph, never materializing paths.
//
// The algorithm is a layered BFS over the implicit product graph whose
// nodes are (vertex, DFA state) pairs. Because the automaton is
// deterministic, each graph path has exactly one product walk, so
// per-layer count propagation counts graph paths exactly; parallel
// edges contribute separately because expansion iterates half-edges,
// not neighbors.
//
// The hot loop runs on the graph's frozen CSR adjacency (freezing it
// on first use) with pooled scratch buffers; per call it allocates
// only the returned Counts.
func CountASP(g *graph.Graph, d *darpe.DFA, src graph.VID) *Counts {
	res, _ := countASP(g, d, src, nil)
	return res
}

// CountASPCtx is CountASP under a context: the BFS frontier loop polls
// ctx.Done() on a stride and aborts with the context's error, so
// serving-layer deadlines stop kernel work mid-run.
func CountASPCtx(ctx context.Context, g *graph.Graph, d *darpe.DFA, src graph.VID) (*Counts, error) {
	res, ok := countASP(g, d, src, ctx.Done())
	if !ok {
		return nil, ctxErr(ctx)
	}
	return res, nil
}

// countASP dispatches between the CSR kernel and the reference
// fallback; done == nil disables cancellation.
func countASP(g *graph.Graph, d *darpe.DFA, src graph.VID, done <-chan struct{}) (*Counts, bool) {
	nV := g.NumVertices()
	res := newCounts(nV)
	if nV == 0 {
		return res, true
	}
	nQ := d.NumStates()
	if int64(nV)*int64(nQ) > math.MaxInt32 {
		// Product space exceeds the CSR kernel's int32 node ids.
		return countASPReferenceDone(g, d, src, done)
	}
	s := getScratch(nV * nQ)
	ok := countASPInto(g.Freeze(), d, typeResolver(g, d), src, s, res, done)
	putScratch(s)
	return res, ok
}

// countASPInto is the zero-allocation SDMC kernel: one single-source
// layered BFS over the (vertex, DFA state) product, reading adjacency
// from the CSR and working entirely in the pooled scratch. Results
// accumulate into res, whose Dist must be -1-filled and Mult zeroed.
//
// The CSR's (Type, Dir) segments let the kernel resolve one DFA
// transition per segment and then stream the segment's half-edges
// without further automaton work; epoch stamps make dist/cnt reuse
// free of O(V·Q) clears between sources.
//
// done (nil = never) is polled every cancelStride frontier nodes; a
// false return means the BFS aborted and res holds partial garbage.
func countASPInto(c *graph.CSR, d *darpe.DFA, types []int, src graph.VID, s *scratch, res *Counts, done <-chan struct{}) bool {
	nQ := d.NumStates()
	hasExt := c.HasExt()
	epoch := s.nextEpoch()
	stamp, dist, cnt := s.stamp, s.dist, s.cnt

	start := int32(int(src)*nQ + d.Start())
	stamp[start] = epoch
	dist[start] = 0
	cnt[start] = 1
	frontier := append(s.frontier[:0], start)
	next := s.next[:0]
	reached := s.reached[:0]

	for layerDist := int32(0); ; layerDist++ {
		// Finish the current layer: the first accepting product node
		// landing on t fixes Dist[t]; later layers cannot improve it
		// (BFS monotonicity), and every accepting node of the fixing
		// layer contributes its count.
		for _, n := range frontier {
			q := int(n) % nQ
			if !d.Accepting(q) {
				continue
			}
			t := graph.VID(int(n) / nQ)
			if res.Dist[t] < 0 {
				res.Dist[t] = layerDist
				reached = append(reached, t)
			}
			if res.Dist[t] == layerDist {
				res.satAdd(&res.Mult[t], cnt[n])
			}
		}
		if len(frontier) == 0 {
			break
		}
		// Expand into the next layer.
		next = next[:0]
		for i, n := range frontier {
			if done != nil && i%cancelStride == 0 {
				select {
				case <-done:
					s.frontier, s.next, s.reached = frontier, next, reached
					return false
				default:
				}
			}
			v := graph.VID(int(n) / nQ)
			q := int(n) % nQ
			c0 := cnt[n]
			for _, sg := range c.Segments(v) {
				q2 := d.StepIdx(q, types[sg.Type], adornOf(sg.Dir))
				if q2 < 0 {
					continue
				}
				for _, h := range c.HalfEdges(sg) {
					m := int32(int(h.To)*nQ + q2)
					if stamp[m] != epoch {
						stamp[m] = epoch
						dist[m] = layerDist + 1
						cnt[m] = c0
						next = append(next, m)
					} else if dist[m] == layerDist+1 {
						res.satAdd(&cnt[m], c0)
					}
				}
			}
			if !hasExt {
				continue
			}
			// Patched-CSR snapshots keep post-fold delta edges in ext
			// segments; counts are order-independent sums (and Reached is
			// sorted below), so walking them as a second pass is
			// equivalent to a canonical layout.
			for _, sg := range c.ExtSegments(v) {
				q2 := d.StepIdx(q, types[sg.Type], adornOf(sg.Dir))
				if q2 < 0 {
					continue
				}
				for _, h := range c.ExtHalfEdges(sg) {
					m := int32(int(h.To)*nQ + q2)
					if stamp[m] != epoch {
						stamp[m] = epoch
						dist[m] = layerDist + 1
						cnt[m] = c0
						next = append(next, m)
					} else if dist[m] == layerDist+1 {
						res.satAdd(&cnt[m], c0)
					}
				}
			}
		}
		frontier, next = next, frontier
	}
	s.frontier, s.next = frontier, next // keep grown capacity pooled
	// Targets were fixed in BFS discovery order; sort in the pooled
	// buffer, then copy out exactly once — the kernel's only per-run
	// allocation besides the caller's Counts.
	slices.Sort(reached)
	res.Reached = append(res.Reached[:0], reached...)
	s.reached = reached
	return true
}

// CountASPPair solves the single-pair SDMC flavor. ok is false when no
// satisfying path exists.
func CountASPPair(g *graph.Graph, d *darpe.DFA, src, dst graph.VID) (dist int, mult uint64, ok bool) {
	if src == dst && d.Accepting(d.Start()) {
		// The empty path is the unique length-0 path and no shorter
		// one exists: answer without running the BFS.
		return 0, 1, true
	}
	c := CountASP(g, d, src)
	if !c.HasPath(dst) {
		return 0, 0, false
	}
	return int(c.Dist[dst]), c.Mult[dst], true
}

// allCounts carves the result set of an all-pairs run out of three
// bulk allocations (structs, Dist slab, Mult slab) instead of 3·V
// little ones; sources write disjoint regions, so parallel workers
// share it safely.
func allCounts(nV int) ([]*Counts, []Counts) {
	out := make([]*Counts, nV)
	counts := make([]Counts, nV)
	distSlab := make([]int32, nV*nV)
	for i := range distSlab {
		distSlab[i] = -1
	}
	multSlab := make([]uint64, nV*nV)
	for v := 0; v < nV; v++ {
		counts[v].Dist = distSlab[v*nV : (v+1)*nV : (v+1)*nV]
		counts[v].Mult = multSlab[v*nV : (v+1)*nV : (v+1)*nV]
		out[v] = &counts[v]
	}
	return out, counts
}

// CountASPAll solves the all-paths SDMC flavor: one single-source run
// per vertex. The result is indexed by source vertex. The CSR, the
// DFA's type table and the kernel scratch are set up once and shared
// across all V runs.
func CountASPAll(g *graph.Graph, d *darpe.DFA) []*Counts {
	out, _ := countASPAll(g, d, nil)
	return out
}

// CountASPAllCtx is CountASPAll under a context: cancellation is
// checked between per-source runs and inside each run's frontier loop.
func CountASPAllCtx(ctx context.Context, g *graph.Graph, d *darpe.DFA) ([]*Counts, error) {
	out, ok := countASPAll(g, d, ctx.Done())
	if !ok {
		return nil, ctxErr(ctx)
	}
	return out, nil
}

func countASPAll(g *graph.Graph, d *darpe.DFA, done <-chan struct{}) ([]*Counts, bool) {
	nV := g.NumVertices()
	if nV == 0 {
		return nil, true
	}
	nQ := d.NumStates()
	if int64(nV)*int64(nQ) > math.MaxInt32 {
		out := make([]*Counts, nV)
		for v := 0; v < nV; v++ {
			res, ok := countASPReferenceDone(g, d, graph.VID(v), done)
			if !ok {
				return nil, false
			}
			out[v] = res
		}
		return out, true
	}
	c := g.Freeze()
	types := typeResolver(g, d)
	out, counts := allCounts(nV)
	s := getScratch(nV * nQ)
	defer putScratch(s)
	for v := 0; v < nV; v++ {
		if !countASPInto(c, d, types, graph.VID(v), s, &counts[v], done) {
			return nil, false
		}
	}
	return out, true
}

// CountASPAllParallel is CountASPAll with the independent per-source
// BFS runs spread over the given number of workers (0 = GOMAXPROCS).
// Sources are embarrassingly parallel — the paper's "particularly
// well-suited to parallel graph processing" observation applies to the
// counting itself, not only to accumulation. Each worker owns one
// pooled scratch for its whole run.
func CountASPAllParallel(g *graph.Graph, d *darpe.DFA, workers int) []*Counts {
	out, _ := countASPAllParallel(g, d, workers, nil)
	return out
}

// CountASPAllParallelCtx is CountASPAllParallel under a context. On
// cancellation every worker exits at its next frontier-stride poll (or
// next source pickup), so no goroutines outlive the call.
func CountASPAllParallelCtx(ctx context.Context, g *graph.Graph, d *darpe.DFA, workers int) ([]*Counts, error) {
	out, ok := countASPAllParallel(g, d, workers, ctx.Done())
	if !ok {
		return nil, ctxErr(ctx)
	}
	return out, nil
}

func countASPAllParallel(g *graph.Graph, d *darpe.DFA, workers int, done <-chan struct{}) ([]*Counts, bool) {
	nV := g.NumVertices()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nV {
		workers = nV
	}
	nQ := d.NumStates()
	if workers <= 1 || int64(nV)*int64(nQ) > math.MaxInt32 {
		return countASPAll(g, d, done)
	}
	c := g.Freeze()
	types := typeResolver(g, d)
	out, counts := allCounts(nV)
	var nextSrc int64 = -1
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := getScratch(nV * nQ)
			defer putScratch(s)
			for {
				v := atomic.AddInt64(&nextSrc, 1)
				if v >= int64(nV) || cancelled.Load() {
					return
				}
				if !countASPInto(c, d, types, graph.VID(v), s, &counts[v], done) {
					cancelled.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return nil, false
	}
	return out, true
}

// CountExists implements the SparQL-style existence semantics: every
// vertex reachable through a satisfying path gets multiplicity 1, with
// Dist reporting the shortest satisfying length.
func CountExists(g *graph.Graph, d *darpe.DFA, src graph.VID) *Counts {
	c := CountASP(g, d, src)
	existsify(c)
	return c
}

// CountExistsCtx is CountExists under a context (see CountASPCtx).
func CountExistsCtx(ctx context.Context, g *graph.Graph, d *darpe.DFA, src graph.VID) (*Counts, error) {
	c, err := CountASPCtx(ctx, g, d, src)
	if err != nil {
		return nil, err
	}
	existsify(c)
	return c, nil
}

// Existsify collapses ASP counts to the existence semantics in place:
// every reached target's multiplicity becomes 1 (and saturation is
// moot). It lets callers who already ran the counting kernel (e.g. via
// SourceCounter) derive ShortestExists results without a second BFS.
func Existsify(c *Counts) { existsify(c) }

func existsify(c *Counts) {
	for t := range c.Mult {
		if c.Dist[t] >= 0 {
			c.Mult[t] = 1
		}
	}
	c.Saturated = false
}
