package match

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
)

// CountASP solves the single-source SDMC problem (Theorem 6.1): for
// every vertex t it computes the length of the shortest path from src
// to t satisfying the DARPE, and the exact number of such shortest
// paths, in time O((V·Q + E·Q) ) for a Q-state DFA — polynomial in the
// graph, never materializing paths.
//
// The algorithm is a layered BFS over the implicit product graph whose
// nodes are (vertex, DFA state) pairs. Because the automaton is
// deterministic, each graph path has exactly one product walk, so
// per-layer count propagation counts graph paths exactly; parallel
// edges contribute separately because expansion iterates half-edges,
// not neighbors.
func CountASP(g *graph.Graph, d *darpe.DFA, src graph.VID) *Counts {
	nV := g.NumVertices()
	nQ := d.NumStates()
	res := newCounts(nV)
	if nV == 0 {
		return res
	}
	types := typeResolver(g, d)

	dist := make([]int32, nV*nQ)
	for i := range dist {
		dist[i] = -1
	}
	cnt := make([]uint64, nV*nQ)
	node := func(v graph.VID, q int) int { return int(v)*nQ + q }

	start := node(src, d.Start())
	dist[start] = 0
	cnt[start] = 1
	frontier := []int{start}

	// bestDist[t] is fixed the first time an accepting product node
	// lands on t; later layers cannot improve it (BFS monotonicity).
	finish := func(layer []int, layerDist int32) {
		for _, n := range layer {
			q := n % nQ
			if !d.Accepting(q) {
				continue
			}
			t := graph.VID(n / nQ)
			if res.Dist[t] < 0 {
				res.Dist[t] = layerDist
			}
			if res.Dist[t] == layerDist {
				res.satAdd(&res.Mult[t], cnt[n])
			}
		}
	}

	layerDist := int32(0)
	finish(frontier, layerDist)
	for len(frontier) > 0 {
		var next []int
		for _, n := range frontier {
			v := graph.VID(n / nQ)
			q := n % nQ
			c := cnt[n]
			for _, h := range g.Neighbors(v) {
				q2 := d.StepIdx(q, types[h.Type], adornOf(h.Dir))
				if q2 < 0 {
					continue
				}
				m := node(h.To, q2)
				if dist[m] < 0 {
					dist[m] = layerDist + 1
					next = append(next, m)
				}
				if dist[m] == layerDist+1 {
					res.satAdd(&cnt[m], c)
				}
			}
		}
		layerDist++
		finish(next, layerDist)
		frontier = next
	}
	return res
}

// CountASPPair solves the single-pair SDMC flavor. ok is false when no
// satisfying path exists.
func CountASPPair(g *graph.Graph, d *darpe.DFA, src, dst graph.VID) (dist int, mult uint64, ok bool) {
	c := CountASP(g, d, src)
	if !c.Reached(dst) {
		return 0, 0, false
	}
	return int(c.Dist[dst]), c.Mult[dst], true
}

// CountASPAll solves the all-paths SDMC flavor: one single-source run
// per vertex. The result is indexed by source vertex.
func CountASPAll(g *graph.Graph, d *darpe.DFA) []*Counts {
	out := make([]*Counts, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		out[v] = CountASP(g, d, graph.VID(v))
	}
	return out
}

// CountASPAllParallel is CountASPAll with the independent per-source
// BFS runs spread over the given number of workers (0 = GOMAXPROCS).
// Sources are embarrassingly parallel — the paper's "particularly
// well-suited to parallel graph processing" observation applies to the
// counting itself, not only to accumulation.
func CountASPAllParallel(g *graph.Graph, d *darpe.DFA, workers int) []*Counts {
	n := g.NumVertices()
	out := make([]*Counts, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return CountASPAll(g, d)
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := atomic.AddInt64(&next, 1)
				if v >= int64(n) {
					return
				}
				out[v] = CountASP(g, d, graph.VID(v))
			}
		}()
	}
	wg.Wait()
	return out
}

// CountExists implements the SparQL-style existence semantics: every
// vertex reachable through a satisfying path gets multiplicity 1, with
// Dist reporting the shortest satisfying length.
func CountExists(g *graph.Graph, d *darpe.DFA, src graph.VID) *Counts {
	c := CountASP(g, d, src)
	for t := range c.Mult {
		if c.Dist[t] >= 0 {
			c.Mult[t] = 1
		}
	}
	c.Saturated = false
	return c
}
