package darpe

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// maxBoundedRepeat caps explicit repetition bounds; larger bounds would
// blow up the Thompson construction.
const maxBoundedRepeat = 1024

// Parse parses a DARPE from its textual form, e.g.
// "E>.(F>|<G)*.H.<J" (Example 2) or "Knows*1..3".
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	p.skipSpace()
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("darpe: trailing input at offset %d in %q", p.pos, src)
	}
	return e, nil
}

// MustParse is Parse for trusted literals; it panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("darpe: %s (offset %d in %q)", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// alt := concat ('|' concat)*
func (p *parser) parseAlt() (Expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []Expr{first}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	if len(alts) == 1 {
		return alts[0], nil
	}
	return &Alt{Alts: alts}, nil
}

// concat := postfix ('.' postfix)*
func (p *parser) parseConcat() (Expr, error) {
	first, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	parts := []Expr{first}
	for {
		p.skipSpace()
		// A '.' starts a concatenation unless it is the ".." of a
		// bounds spec, which parsePostfix already consumed.
		if p.peek() != '.' {
			break
		}
		p.pos++
		next, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &Concat{Parts: parts}, nil
}

// postfix := primary ('*' bounds?)*
func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '*' {
			return e, nil
		}
		p.pos++
		min, max, err := p.parseBounds()
		if err != nil {
			return nil, err
		}
		e = &Repeat{Sub: e, Min: min, Max: max}
	}
}

// bounds := (N? '..' N?)?   attached directly after '*'.
// Absent bounds mean 0..unbounded. "N.." means N..unbounded; "..N"
// means 0..N.
func (p *parser) parseBounds() (int, int, error) {
	min, max := 0, -1
	p.skipSpace()
	hasLow := false
	if isDigit(p.peek()) {
		n, err := p.parseNumber()
		if err != nil {
			return 0, 0, err
		}
		min, hasLow = n, true
	}
	if strings.HasPrefix(p.src[p.pos:], "..") {
		p.pos += 2
		p.skipSpace()
		if isDigit(p.peek()) {
			n, err := p.parseNumber()
			if err != nil {
				return 0, 0, err
			}
			max = n
		}
	} else if hasLow {
		// "*N" without "..": exactly N repetitions.
		max = min
	}
	if max >= 0 && max < min {
		return 0, 0, p.errf("repetition bounds %d..%d are inverted", min, max)
	}
	if min > maxBoundedRepeat || max > maxBoundedRepeat {
		return 0, 0, p.errf("repetition bound exceeds %d", maxBoundedRepeat)
	}
	return min, max, nil
}

func (p *parser) parseNumber() (int, error) {
	start := p.pos
	for p.pos < len(p.src) && isDigit(p.src[p.pos]) {
		p.pos++
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		return 0, p.errf("bad number: %v", err)
	}
	return n, nil
}

// primary := '(' alt ')' | '<' name | name '>'? | '_' '>'?
func (p *parser) parsePrimary() (Expr, error) {
	p.skipSpace()
	switch {
	case p.peek() == '(':
		p.pos++
		e, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		return e, nil
	case p.peek() == '<':
		p.pos++
		name, wild, err := p.parseName()
		if err != nil {
			return nil, err
		}
		if wild {
			return &Symbol{EdgeType: "", Dir: AdornRev}, nil
		}
		return &Symbol{EdgeType: name, Dir: AdornRev}, nil
	default:
		name, wild, err := p.parseName()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() == '>' {
			p.pos++
			if wild {
				return &Symbol{EdgeType: "", Dir: AdornFwd}, nil
			}
			return &Symbol{EdgeType: name, Dir: AdornFwd}, nil
		}
		if wild {
			// Bare wildcard: any edge type, any traversal kind.
			return &Symbol{EdgeType: "", Dir: AdornAny}, nil
		}
		// Bare edge type: undirected edge (paper Section 2).
		return &Symbol{EdgeType: name, Dir: AdornUnd}, nil
	}
}

// parseName consumes an edge-type name or the "_" wildcard.
func (p *parser) parseName() (name string, wildcard bool, err error) {
	p.skipSpace()
	if p.peek() == '_' && (p.pos+1 >= len(p.src) || !isIdentByte(p.src[p.pos+1])) {
		p.pos++
		return "", true, nil
	}
	start := p.pos
	for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", false, p.errf("expected edge type, '(' or '_'")
	}
	return p.src[start:p.pos], false, nil
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isIdentByte(b byte) bool {
	return b == '_' || b >= '0' && b <= '9' || unicode.IsLetter(rune(b))
}
