package darpe

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// sym is a concrete direction-adorned word symbol for tests.
type sym struct {
	t string
	a Adorn
}

// run simulates the DFA over a word of concrete symbols.
func run(d *DFA, word []sym) bool {
	st := d.Start()
	for _, s := range word {
		st = d.Step(st, s.t, s.a)
		if st < 0 {
			return false
		}
	}
	return d.Accepting(st)
}

// accepts is a reference matcher implemented directly on the AST by
// recursive descent over word splits. Deliberately naive: it serves as
// an independent oracle for the DFA.
func accepts(e Expr, word []sym) bool {
	switch n := e.(type) {
	case *Symbol:
		if len(word) != 1 {
			return false
		}
		w := word[0]
		if n.EdgeType != "" && n.EdgeType != w.t {
			return false
		}
		return n.Dir == AdornAny || n.Dir == w.a
	case *Concat:
		return acceptsSeq(n.Parts, word)
	case *Alt:
		for _, alt := range n.Alts {
			if accepts(alt, word) {
				return true
			}
		}
		return false
	case *Repeat:
		return acceptsRepeat(n, word, 0)
	}
	return false
}

func acceptsSeq(parts []Expr, word []sym) bool {
	if len(parts) == 0 {
		return len(word) == 0
	}
	for cut := 0; cut <= len(word); cut++ {
		if accepts(parts[0], word[:cut]) && acceptsSeq(parts[1:], word[cut:]) {
			return true
		}
	}
	return false
}

func acceptsRepeat(r *Repeat, word []sym, done int) bool {
	if len(word) == 0 {
		// Accept if enough repetitions were consumed, or if the
		// operand itself matches the empty word (remaining mandatory
		// repetitions can then consume nothing).
		return done >= r.Min || accepts(r.Sub, nil)
	}
	if r.Max >= 0 && done == r.Max {
		return false
	}
	// Try consuming one more occurrence (non-empty split to guarantee
	// termination; empty matches of Sub only matter for len(word)==0,
	// handled above).
	for cut := 1; cut <= len(word); cut++ {
		if accepts(r.Sub, word[:cut]) && acceptsRepeat(r, word[cut:], done+1) {
			return true
		}
	}
	return false
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"E>", "E>"},
		{"<E", "<E"},
		{"E", "E"},
		{"_", "_"},
		{"_>", "_>"},
		{"<_", "<_"},
		{"E>*", "E>*"},
		{"E>.F>", "E>.F>"},
		{"E>|F>", "E>|F>"},
		{"E>.(F>|<G)*.H.<J", "E>.(F>|<G)*.H.<J"},
		{"Knows*1..3", "Knows*1..3"},
		{"Knows*2", "Knows*2..2"},
		{"Knows*2..", "Knows*2.."},
		{"Knows*..3", "Knows*0..3"},
		{"(A>.B>)*", "(A>.B>)*"},
		{" E> . F> ", "E>.F>"},
		{"A>.(B>|D>)._>.A>", "A>.(B>|D>)._>.A>"},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
		// Round-trip: re-parsing the rendering is stable.
		e2, err := Parse(e.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", e.String(), err)
			continue
		}
		if e2.String() != e.String() {
			t.Errorf("round trip unstable: %q -> %q", e.String(), e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "(", "(E>", "E> F>", "|E", "E>|", "E>.", ".E>", "E>*3..1",
		"E>*99999", ">E", "E>)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on bad input")
		}
	}()
	MustParse("(")
}

func TestLengthsAndFixedLength(t *testing.T) {
	cases := []struct {
		src      string
		min, max int
		fixed    bool
	}{
		{"E>", 1, 1, true},
		{"E>.F>", 2, 2, true},
		{"E>|F>.G>", 1, 2, false},
		{"E>*", 0, -1, false},
		{"E>*2..5", 2, 5, false},
		{"A>.(B>|D>)._>.A>", 4, 4, true},
		{"(A>.B>)*3", 6, 6, true},
		{"E>*1..", 1, -1, false},
	}
	for _, c := range cases {
		e := MustParse(c.src)
		min, max := Lengths(e)
		if min != c.min || max != c.max {
			t.Errorf("Lengths(%q) = (%d,%d), want (%d,%d)", c.src, min, max, c.min, c.max)
		}
		n, fixed := FixedLength(e)
		if fixed != c.fixed {
			t.Errorf("FixedLength(%q) fixed = %v, want %v", c.src, fixed, c.fixed)
		}
		if fixed && n != c.min {
			t.Errorf("FixedLength(%q) = %d, want %d", c.src, n, c.min)
		}
	}
}

func TestHasKleeneAndEdgeTypes(t *testing.T) {
	e := MustParse("E>.(F>|<G)*.H.<J")
	if !HasKleene(e) {
		t.Error("HasKleene must be true")
	}
	if HasKleene(MustParse("E>.F>*1..3")) {
		t.Error("bounded repeat is not Kleene")
	}
	got := EdgeTypes(e)
	for _, want := range []string{"E", "F", "G", "H", "J"} {
		if !got[want] {
			t.Errorf("EdgeTypes missing %s", want)
		}
	}
	if got["_"] || got[""] {
		t.Error("wildcard must not appear in EdgeTypes")
	}
}

func TestDFAExamples(t *testing.T) {
	// Example 2 of the paper: E>.(F>|<G)*.H.<J
	d := MustCompile("E>.(F>|<G)*.H.<J")
	yes := [][]sym{
		{{"E", AdornFwd}, {"H", AdornUnd}, {"J", AdornRev}},
		{{"E", AdornFwd}, {"F", AdornFwd}, {"H", AdornUnd}, {"J", AdornRev}},
		{{"E", AdornFwd}, {"G", AdornRev}, {"F", AdornFwd}, {"H", AdornUnd}, {"J", AdornRev}},
	}
	no := [][]sym{
		{},
		{{"E", AdornFwd}},
		{{"E", AdornRev}, {"H", AdornUnd}, {"J", AdornRev}},                  // wrong direction
		{{"E", AdornFwd}, {"H", AdornFwd}, {"J", AdornRev}},                  // H must be undirected
		{{"E", AdornFwd}, {"G", AdornFwd}, {"H", AdornUnd}, {"J", AdornRev}}, // G must be reverse
		{{"E", AdornFwd}, {"H", AdornUnd}, {"J", AdornRev}, {"J", AdornRev}},
	}
	for i, w := range yes {
		if !run(d, w) {
			t.Errorf("accept case %d rejected", i)
		}
	}
	for i, w := range no {
		if run(d, w) {
			t.Errorf("reject case %d accepted", i)
		}
	}

	// Kleene star accepts the empty path.
	star := MustCompile("E>*")
	if !star.Accepting(star.Start()) {
		t.Error("E>* must accept the empty path")
	}
	if !run(star, []sym{{"E", AdornFwd}, {"E", AdornFwd}}) {
		t.Error("E>* must accept EE")
	}
	if run(star, []sym{{"F", AdornFwd}}) {
		t.Error("E>* must reject F")
	}

	// Wildcard matches unmentioned types in any direction.
	wild := MustCompile("_")
	for _, a := range []Adorn{AdornFwd, AdornRev, AdornUnd} {
		if !run(wild, []sym{{"Zzz", a}}) {
			t.Errorf("wildcard must match unmentioned type with adorn %d", a)
		}
	}
	// Directed wildcard restricts the traversal kind.
	fwdWild := MustCompile("_>")
	if !run(fwdWild, []sym{{"Zzz", AdornFwd}}) || run(fwdWild, []sym{{"Zzz", AdornRev}}) {
		t.Error("_> must match forward traversals only")
	}

	// Bounds.
	b := MustCompile("K*2..3")
	if run(b, []sym{{"K", AdornUnd}}) {
		t.Error("K*2..3 must reject length 1")
	}
	if !run(b, []sym{{"K", AdornUnd}, {"K", AdornUnd}}) {
		t.Error("K*2..3 must accept length 2")
	}
	if !run(b, []sym{{"K", AdornUnd}, {"K", AdornUnd}, {"K", AdornUnd}}) {
		t.Error("K*2..3 must accept length 3")
	}
	if run(b, []sym{{"K", AdornUnd}, {"K", AdornUnd}, {"K", AdornUnd}, {"K", AdornUnd}}) {
		t.Error("K*2..3 must reject length 4")
	}
}

// randomExpr builds a random DARPE over types {A, B} (plus wildcard)
// of bounded depth.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		return randomSymbol(r)
	}
	switch r.Intn(5) {
	case 0, 1:
		return randomSymbol(r)
	case 2:
		n := 2 + r.Intn(2)
		parts := make([]Expr, n)
		for i := range parts {
			parts[i] = randomExpr(r, depth-1)
		}
		return &Concat{Parts: parts}
	case 3:
		n := 2 + r.Intn(2)
		alts := make([]Expr, n)
		for i := range alts {
			alts[i] = randomExpr(r, depth-1)
		}
		return &Alt{Alts: alts}
	default:
		min := r.Intn(2)
		max := -1
		if r.Intn(2) == 0 {
			max = min + r.Intn(3)
		}
		return &Repeat{Sub: randomExpr(r, depth-1), Min: min, Max: max}
	}
}

func randomSymbol(r *rand.Rand) Expr {
	types := []string{"A", "B", ""}
	tname := types[r.Intn(len(types))]
	var a Adorn
	if tname == "" {
		a = []Adorn{AdornFwd, AdornRev, AdornUnd, AdornAny}[r.Intn(4)]
	} else {
		a = []Adorn{AdornFwd, AdornRev, AdornUnd}[r.Intn(3)]
	}
	return &Symbol{EdgeType: tname, Dir: a}
}

// TestDFAAgainstASTOracle cross-checks the compiled DFA against the
// naive AST matcher on every word up to length 3 over a 3-type
// alphabet (one type the expression never mentions).
func TestDFAAgainstASTOracle(t *testing.T) {
	alphabet := []sym{}
	for _, tn := range []string{"A", "B", "X"} {
		for _, a := range []Adorn{AdornFwd, AdornRev, AdornUnd} {
			alphabet = append(alphabet, sym{tn, a})
		}
	}
	var words [][]sym
	words = append(words, []sym{})
	frontier := [][]sym{{}}
	for l := 0; l < 3; l++ {
		var next [][]sym
		for _, w := range frontier {
			for _, s := range alphabet {
				nw := append(append([]sym{}, w...), s)
				next = append(next, nw)
				words = append(words, nw)
			}
		}
		frontier = next
	}

	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 2)
		d, err := CompileDFA(e)
		if err != nil {
			t.Logf("compile error for %s: %v", e, err)
			return false
		}
		for _, w := range words {
			if run(d, w) != accepts(e, w) {
				t.Logf("mismatch for %s on %v: dfa=%v oracle=%v", e, w, run(d, w), accepts(e, w))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestParseStringRoundTripProperty checks Parse∘String is the identity
// on rendered random expressions.
func TestParseStringRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 3)
		s := e.String()
		e2, err := Parse(s)
		if err != nil {
			t.Logf("Parse(%q): %v", s, err)
			return false
		}
		return e2.String() == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDFAStringAndStateCount(t *testing.T) {
	d := MustCompile("E>*")
	if d.NumStates() == 0 {
		t.Error("DFA must have states")
	}
	if !strings.Contains(d.String(), "E>*") {
		t.Errorf("DFA.String() = %q", d.String())
	}
}
