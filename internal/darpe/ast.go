// Package darpe implements Direction-Aware Regular Path Expressions
// (Section 2 of the paper): regular expressions over an alphabet of
// direction-adorned edge types. For each edge type E the alphabet
// contains E> (directed edge traversed forward), <E (directed edge
// traversed backward) and E (undirected edge); the wildcard "_"
// denotes any edge type. Expressions compose by concatenation ".",
// alternation "|" and Kleene repetition "*" with optional bounds
// "m..n".
//
// The package provides a parser, an ε-free NFA, and a DFA obtained by
// subset construction. The DFA is what the path-counting machinery in
// package match requires: with a deterministic automaton, runs of the
// product construction correspond one-to-one to graph paths, so
// counting product paths counts graph paths without double-counting
// (Theorem 6.1's proof device).
package darpe

import (
	"fmt"
	"strconv"
	"strings"
)

// Adorn is the direction adornment of an edge-type symbol.
type Adorn uint8

// Adornments. AdornAny appears only on the wildcard "_" and matches
// any traversal of any edge kind.
const (
	AdornFwd Adorn = iota // E>  : directed edge, traversed source→target
	AdornRev              // <E  : directed edge, traversed target→source
	AdornUnd              // E   : undirected edge
	AdornAny              // _   : any edge, any traversal
)

// String renders the adornment applied to an edge-type name.
func (a Adorn) decorate(name string) string {
	switch a {
	case AdornFwd:
		return name + ">"
	case AdornRev:
		return "<" + name
	case AdornUnd, AdornAny:
		return name
	default:
		return name + "?"
	}
}

// Expr is a DARPE abstract syntax tree node.
type Expr interface {
	fmt.Stringer
	// lengths returns the (min, max) path length matched; max < 0
	// means unbounded.
	lengths() (int, int)
	isExpr()
}

// Symbol matches the traversal of a single edge. An empty EdgeType is
// the wildcard "_".
type Symbol struct {
	EdgeType string
	Dir      Adorn
}

func (s *Symbol) isExpr() {}

// String renders the symbol in DARPE syntax.
func (s *Symbol) String() string {
	name := s.EdgeType
	if name == "" {
		name = "_"
	}
	return s.Dir.decorate(name)
}

func (s *Symbol) lengths() (int, int) { return 1, 1 }

// Concat matches the concatenation of its parts.
type Concat struct {
	Parts []Expr
}

func (c *Concat) isExpr() {}

// String renders the concatenation with "." separators.
func (c *Concat) String() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		if alt, ok := p.(*Alt); ok {
			parts[i] = "(" + alt.String() + ")"
		} else {
			parts[i] = p.String()
		}
	}
	return strings.Join(parts, ".")
}

func (c *Concat) lengths() (int, int) {
	minL, maxL := 0, 0
	for _, p := range c.Parts {
		lo, hi := p.lengths()
		minL += lo
		if maxL < 0 || hi < 0 {
			maxL = -1
		} else {
			maxL += hi
		}
	}
	return minL, maxL
}

// Alt matches any one of its alternatives.
type Alt struct {
	Alts []Expr
}

func (a *Alt) isExpr() {}

// String renders the alternation with "|" separators.
func (a *Alt) String() string {
	parts := make([]string, len(a.Alts))
	for i, p := range a.Alts {
		parts[i] = p.String()
	}
	return strings.Join(parts, "|")
}

func (a *Alt) lengths() (int, int) {
	minL, maxL := -1, 0
	for _, p := range a.Alts {
		lo, hi := p.lengths()
		if minL < 0 || lo < minL {
			minL = lo
		}
		if maxL < 0 || hi < 0 {
			maxL = -1
		} else if hi > maxL {
			maxL = hi
		}
	}
	if minL < 0 {
		minL = 0
	}
	return minL, maxL
}

// Repeat matches Min..Max repetitions of its operand; Max < 0 means
// unbounded. A bare Kleene star is Repeat{Min: 0, Max: -1}.
type Repeat struct {
	Sub Expr
	Min int
	Max int
}

func (r *Repeat) isExpr() {}

// String renders the repetition in DARPE syntax.
func (r *Repeat) String() string {
	sub := r.Sub.String()
	switch r.Sub.(type) {
	case *Alt, *Concat, *Repeat:
		sub = "(" + sub + ")"
	}
	if r.Min == 0 && r.Max < 0 {
		return sub + "*"
	}
	if r.Max < 0 {
		return sub + "*" + strconv.Itoa(r.Min) + ".."
	}
	return sub + "*" + strconv.Itoa(r.Min) + ".." + strconv.Itoa(r.Max)
}

func (r *Repeat) lengths() (int, int) {
	lo, hi := r.Sub.lengths()
	minL := lo * r.Min
	if r.Max < 0 || hi < 0 {
		if hi == 0 && r.Max >= 0 { // repeating an empty expr stays empty
			return minL, 0
		}
		return minL, -1
	}
	return minL, hi * r.Max
}

// Lengths returns the minimum and maximum path length the expression
// can match; max < 0 means unbounded.
func Lengths(e Expr) (min, max int) { return e.lengths() }

// FixedLength reports whether the expression belongs to the paper's
// fixed-unique-length class (Section 6.1): Kleene-free expressions all
// of whose matches have one single length, readable from the pattern.
// For such patterns all-shortest-paths semantics coincides with
// unrestricted semantics. The length is returned when fixed.
func FixedLength(e Expr) (int, bool) {
	lo, hi := e.lengths()
	if hi >= 0 && lo == hi {
		return lo, true
	}
	return 0, false
}

// HasKleene reports whether the expression contains an unbounded
// repetition.
func HasKleene(e Expr) bool {
	switch n := e.(type) {
	case *Symbol:
		return false
	case *Concat:
		for _, p := range n.Parts {
			if HasKleene(p) {
				return true
			}
		}
		return false
	case *Alt:
		for _, p := range n.Alts {
			if HasKleene(p) {
				return true
			}
		}
		return false
	case *Repeat:
		return n.Max < 0 || HasKleene(n.Sub)
	default:
		return false
	}
}

// EdgeTypes returns the set of edge-type names mentioned by the
// expression (the wildcard contributes nothing).
func EdgeTypes(e Expr) map[string]bool {
	out := make(map[string]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *Symbol:
			if n.EdgeType != "" {
				out[n.EdgeType] = true
			}
		case *Concat:
			for _, p := range n.Parts {
				walk(p)
			}
		case *Alt:
			for _, p := range n.Alts {
				walk(p)
			}
		case *Repeat:
			walk(n.Sub)
		}
	}
	walk(e)
	return out
}
