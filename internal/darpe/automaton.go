package darpe

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// maxDFAStates caps subset construction; DARPEs are tiny compared to
// graphs, so hitting this indicates a pathological expression.
const maxDFAStates = 1 << 16

// DFA is a deterministic finite automaton over the direction-adorned
// edge alphabet. Determinism is essential for path counting: with a
// DFA, accepting runs of the (graph × automaton) product correspond
// one-to-one to graph paths, so shortest-path counts in the product
// equal shortest-path counts in the graph (Theorem 6.1).
//
// The concrete alphabet is {mentioned edge types + OTHER} × {Fwd, Rev,
// Und}, where OTHER stands for any edge type the expression does not
// mention (reachable only through wildcard transitions).
type DFA struct {
	typeIdx   map[string]int // edge type name -> index; OTHER is len(typeIdx)
	numTypes  int            // including OTHER
	start     int
	accept    []bool
	trans     [][]int32 // [state][typeIdx*3+adorn] -> next state, -1 = dead
	usedKinds [3]bool   // whether any transition consumes Fwd/Rev/Und
	exprImage string
}

// UsesAdorn reports whether any transition consumes the given
// traversal kind — a sound overapproximation used for reachability
// pruning in enumeration.
func (d *DFA) UsesAdorn(a Adorn) bool { return d.usedKinds[a] }

// thompson is the intermediate ε-NFA.
type thompson struct {
	trans []map[int]Symbol // state -> target -> symbol (one per pair suffices)
	eps   [][]int
}

func (t *thompson) newState() int {
	t.trans = append(t.trans, nil)
	t.eps = append(t.eps, nil)
	return len(t.trans) - 1
}

func (t *thompson) addEps(from, to int) { t.eps[from] = append(t.eps[from], to) }

func (t *thompson) addSym(from, to int, s Symbol) {
	if t.trans[from] == nil {
		t.trans[from] = make(map[int]Symbol)
	}
	t.trans[from][to] = s
}

type frag struct{ start, accept int }

func (t *thompson) build(e Expr) frag {
	switch n := e.(type) {
	case *Symbol:
		s, a := t.newState(), t.newState()
		t.addSym(s, a, *n)
		return frag{s, a}
	case *Concat:
		if len(n.Parts) == 0 {
			return t.emptyFrag()
		}
		f := t.build(n.Parts[0])
		for _, p := range n.Parts[1:] {
			g := t.build(p)
			t.addEps(f.accept, g.start)
			f.accept = g.accept
		}
		return f
	case *Alt:
		s, a := t.newState(), t.newState()
		for _, p := range n.Alts {
			g := t.build(p)
			t.addEps(s, g.start)
			t.addEps(g.accept, a)
		}
		return frag{s, a}
	case *Repeat:
		f := t.emptyFrag()
		for i := 0; i < n.Min; i++ {
			g := t.build(n.Sub)
			t.addEps(f.accept, g.start)
			f.accept = g.accept
		}
		if n.Max < 0 {
			g := t.build(n.Sub)
			s, a := t.newState(), t.newState()
			t.addEps(s, g.start)
			t.addEps(s, a)
			t.addEps(g.accept, g.start)
			t.addEps(g.accept, a)
			t.addEps(f.accept, s)
			f.accept = a
		} else {
			for i := n.Min; i < n.Max; i++ {
				g := t.build(n.Sub)
				s, a := t.newState(), t.newState()
				t.addEps(s, g.start)
				t.addEps(s, a)
				t.addEps(g.accept, a)
				t.addEps(f.accept, s)
				f.accept = a
			}
		}
		return f
	default:
		panic(fmt.Sprintf("darpe: unknown AST node %T", e))
	}
}

func (t *thompson) emptyFrag() frag {
	s := t.newState()
	return frag{s, s}
}

// closure expands a sorted state set with ε-reachability, returning a
// sorted deduplicated set.
func (t *thompson) closure(set []int) []int {
	seen := make(map[int]bool, len(set))
	stack := append([]int(nil), set...)
	for _, s := range set {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nxt := range t.eps[s] {
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func setKey(set []int) string {
	var sb strings.Builder
	for _, s := range set {
		sb.WriteString(strconv.Itoa(s))
		sb.WriteByte(',')
	}
	return sb.String()
}

// CompileDFA compiles the expression into a DFA via Thompson
// construction and subset construction.
func CompileDFA(e Expr) (*DFA, error) {
	t := &thompson{}
	f := t.build(e)

	// Alphabet.
	names := make([]string, 0)
	for name := range EdgeTypes(e) {
		names = append(names, name)
	}
	sort.Strings(names)
	typeIdx := make(map[string]int, len(names))
	for i, n := range names {
		typeIdx[n] = i
	}
	numTypes := len(names) + 1 // plus OTHER
	otherIdx := len(names)

	d := &DFA{typeIdx: typeIdx, numTypes: numTypes, exprImage: e.String()}

	// symbol matcher: does pred match concrete (typeIdx ti, adorn a)?
	matches := func(pred Symbol, ti int, a Adorn) bool {
		if pred.EdgeType != "" {
			pi, ok := typeIdx[pred.EdgeType]
			if !ok || pi != ti {
				return false
			}
		} else if ti == otherIdx {
			// wildcard is the only way to reach OTHER — fallthrough
		}
		switch pred.Dir {
		case AdornAny:
			return true
		default:
			return pred.Dir == a
		}
	}

	startSet := t.closure([]int{f.start})
	states := map[string]int{setKey(startSet): 0}
	sets := [][]int{startSet}
	d.start = 0
	numSyms := numTypes * 3
	for si := 0; si < len(sets); si++ {
		set := sets[si]
		row := make([]int32, numSyms)
		for i := range row {
			row[i] = -1
		}
		acc := false
		for _, s := range set {
			if s == f.accept {
				acc = true
			}
		}
		for ti := 0; ti < numTypes; ti++ {
			for a := AdornFwd; a <= AdornUnd; a++ {
				var next []int
				for _, s := range set {
					for to, pred := range t.trans[s] {
						if matches(pred, ti, a) {
							next = append(next, to)
						}
					}
				}
				if len(next) == 0 {
					continue
				}
				sort.Ints(next)
				next = dedupSorted(next)
				next = t.closure(next)
				key := setKey(next)
				id, ok := states[key]
				if !ok {
					id = len(sets)
					if id >= maxDFAStates {
						return nil, fmt.Errorf("darpe: DFA exceeds %d states for %q", maxDFAStates, e)
					}
					states[key] = id
					sets = append(sets, next)
				}
				row[ti*3+int(a)] = int32(id)
				d.usedKinds[a] = true
			}
		}
		d.trans = append(d.trans, row)
		d.accept = append(d.accept, acc)
	}
	return d, nil
}

func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Compile parses and compiles in one step.
func Compile(src string) (*DFA, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileDFA(e)
}

// MustCompile is Compile for trusted literals.
func MustCompile(src string) *DFA {
	d, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return d
}

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.trans) }

// Start returns the start state.
func (d *DFA) Start() int { return d.start }

// Accepting reports whether the state is accepting; Accepting(Start())
// means the expression matches the empty path.
func (d *DFA) Accepting(state int) bool { return d.accept[state] }

// Step advances the automaton over the traversal of one edge of the
// given type, adorned Fwd, Rev or Und. It returns the next state or -1
// if the run dies.
func (d *DFA) Step(state int, edgeType string, a Adorn) int {
	ti, ok := d.typeIdx[edgeType]
	if !ok {
		ti = d.numTypes - 1 // OTHER
	}
	return int(d.trans[state][ti*3+int(a)])
}

// TypeIndexFor resolves an edge-type name to the DFA's internal symbol
// type index (the OTHER index for unmentioned types). Resolving once
// per edge type and stepping with StepIdx avoids per-edge map lookups
// on hot paths.
func (d *DFA) TypeIndexFor(name string) int {
	if i, ok := d.typeIdx[name]; ok {
		return i
	}
	return d.numTypes - 1
}

// StepIdx is Step with a pre-resolved type index.
func (d *DFA) StepIdx(state, typeIdx int, a Adorn) int {
	return int(d.trans[state][typeIdx*3+int(a)])
}

// String identifies the DFA by its source expression.
func (d *DFA) String() string {
	return fmt.Sprintf("DFA(%s, %d states)", d.exprImage, len(d.trans))
}
