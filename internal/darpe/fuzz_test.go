package darpe

import "testing"

// FuzzParse checks the DARPE parser and compiler terminate without
// panicking on arbitrary input, and that accepted expressions
// round-trip through their rendering and compile to a DFA. Run with:
// go test -fuzz FuzzParse ./internal/darpe
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"E>", "<E", "E", "_", "_>", "<_",
		"E>.(F>|<G)*.H.<J", "Knows*1..3", "(A>.B>)*", "A>.(B>|D>)._>.A>",
		"E>*0..0", "((((E))))", "E>**", "E>|F>|G>",
		"", "(", "*", "..", "E>*9..1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		// Rendering must re-parse to the same rendering.
		s := e.String()
		e2, err := Parse(s)
		if err != nil {
			t.Fatalf("accepted %q rendered as unparseable %q: %v", src, s, err)
		}
		if e2.String() != s {
			t.Fatalf("unstable round trip: %q -> %q -> %q", src, s, e2.String())
		}
		// Accepted expressions compile (the state cap may reject
		// pathological ones, which is fine).
		if d, err := CompileDFA(e); err == nil {
			if d.NumStates() == 0 {
				t.Fatalf("compiled DFA with zero states for %q", s)
			}
			// Length metadata is consistent.
			lo, hi := Lengths(e)
			if hi >= 0 && lo > hi {
				t.Fatalf("Lengths(%q) inverted: %d..%d", s, lo, hi)
			}
		}
	})
}
