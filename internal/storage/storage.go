// Package storage is the durability subsystem: it pairs the in-memory
// graph.Graph working set with an on-disk representation so a gsqld (or
// library) restart preserves the catalog's data and every mutation made
// since start — the piece the paper's compile-once/run-many serving
// model assumes but the in-memory engine alone cannot provide.
//
// Two file kinds live in a store directory, named by a checkpoint
// sequence number:
//
//	snap-<seq>.gsnap   versioned binary snapshot of the full graph
//	                   (schema + vertices + edges), length-prefixed
//	                   CRC32-guarded sections, written to a temp file
//	                   and atomically renamed into place
//	wal-<seq>.wal      append-only mutation log: one checksummed
//	                   record per AddVertex / AddEdge / SetVertexAttr
//	                   issued after snapshot <seq> was taken
//
// Store.Open recovers by loading the newest snapshot that passes its
// checksums (falling back to the previous generation on corruption),
// replaying the WAL records that postdate it, and truncating any torn
// tail record left by a crash mid-append. Checkpoint() writes a fresh
// snapshot and rotates to a new WAL; Close() syncs and detaches.
//
// The store hooks into the graph via graph.MutationObserver: mutations
// are validated, then logged (write-ahead), then applied in memory, so
// a mutation is never visible unless its record reached the log. The
// engine layers (core, match) are untouched.
package storage

import "errors"

// ErrCorrupt reports on-disk state that is structurally invalid beyond
// what crash-tolerant recovery repairs: a snapshot whose checksum or
// layout is wrong with no older generation to fall back to, or a WAL
// record that passes its CRC yet cannot be decoded or re-applied. A
// torn tail record (short write, checksum mismatch at the end of the
// log) is NOT corruption — recovery truncates it and succeeds, since
// that is exactly the residue an append interrupted by a crash leaves.
// Match with errors.Is; it is always returned wrapped.
var ErrCorrupt = errors.New("storage: corrupt data")

// Stats are the store's monotonic operation counters, exported by the
// serving layer as gsqld_storage_*_total metrics.
type Stats struct {
	// WALRecords counts mutation records appended to the WAL.
	WALRecords uint64
	// WALBytes counts bytes appended to the WAL (records incl. framing).
	WALBytes uint64
	// Checkpoints counts successful Checkpoint() calls (the initial
	// snapshot of a fresh store counts as one).
	Checkpoints uint64
	// Recoveries is 1 when Open found existing state and recovered it,
	// 0 for a fresh store.
	Recoveries uint64
	// ReplayedRecords counts WAL records re-applied during recovery.
	ReplayedRecords uint64
}
