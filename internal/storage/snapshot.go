package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/value"
)

// Snapshot file layout (all integers little-endian):
//
//	[8]byte  magic "GSQLSNP1"
//	u32      format version (currently 1)
//	3 sections, in order: schema, vertices, edges
//	  u8   section tag (1 schema, 2 vertices, 3 edges)
//	  u64  payload length
//	  []byte payload
//	  u32  CRC32 (IEEE) of the payload
//
// The schema payload is the JSON interchange form (MarshalSchemaJSON)
// — one codec for CSV dumps, snapshots and the wire keeps the formats
// from drifting. Vertices and edges are recorded in id order, so
// decoding re-inserts them through the ordinary AddVertex/AddEdge path
// and reproduces bit-identical VIDs, EIDs, key indexes and adjacency
// ordering. Encoding a decoded graph yields byte-identical output,
// which the crash tests exploit as a canonical graph signature.

const (
	snapMagic   = "GSQLSNP1"
	snapVersion = 1

	secSchema   = 1
	secVertices = 2
	secEdges    = 3
)

// EncodeSnapshot serializes the full graph into the snapshot format.
func EncodeSnapshot(g *graph.Graph) ([]byte, error) {
	out := &enc{}
	out.b = append(out.b, snapMagic...)
	out.u32(snapVersion)

	schemaJSON, err := graph.MarshalSchemaJSON(g.Schema)
	if err != nil {
		return nil, fmt.Errorf("storage: encoding schema: %w", err)
	}
	appendSection(out, secSchema, schemaJSON)

	verts := &enc{}
	verts.u32(uint32(g.NumVertices()))
	for v := graph.VID(0); int(v) < g.NumVertices(); v++ {
		vt := g.VertexTypeOf(v)
		verts.u16(uint16(vt.ID))
		verts.str(g.VertexKey(v))
		verts.u16(uint16(len(vt.Attrs)))
		for _, a := range vt.Attrs {
			av, _ := g.VertexAttr(v, a.Name)
			if err := verts.val(av); err != nil {
				return nil, err
			}
		}
	}
	appendSection(out, secVertices, verts.b)

	edges := &enc{}
	edges.u32(uint32(g.NumEdges()))
	for e := graph.EID(0); int(e) < g.NumEdges(); e++ {
		et := g.EdgeTypeOf(e)
		src, dst := g.EdgeEndpoints(e)
		edges.u16(uint16(et.ID))
		edges.u32(uint32(src))
		edges.u32(uint32(dst))
		edges.u16(uint16(len(et.Attrs)))
		for _, a := range et.Attrs {
			av, _ := g.EdgeAttr(e, a.Name)
			if err := edges.val(av); err != nil {
				return nil, err
			}
		}
	}
	appendSection(out, secEdges, edges.b)
	return out.b, nil
}

func appendSection(out *enc, tag uint8, payload []byte) {
	out.u8(tag)
	out.u64(uint64(len(payload)))
	out.b = append(out.b, payload...)
	out.u32(crc32.ChecksumIEEE(payload))
}

// DecodeSnapshot rebuilds a graph from snapshot bytes. Any structural
// or checksum violation returns an error matching ErrCorrupt.
func DecodeSnapshot(data []byte) (*graph.Graph, error) {
	d := &dec{b: data}
	if string(d.take(len(snapMagic), "magic")) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	if v := d.u32("version"); d.err == nil && v != snapVersion {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, v)
	}
	schemaJSON, err := readSection(d, secSchema, "schema")
	if err != nil {
		return nil, err
	}
	vertPayload, err := readSection(d, secVertices, "vertices")
	if err != nil {
		return nil, err
	}
	edgePayload, err := readSection(d, secEdges, "edges")
	if err != nil {
		return nil, err
	}
	if err := d.done("snapshot"); err != nil {
		return nil, err
	}

	schema, err := graph.UnmarshalSchemaJSON(schemaJSON)
	if err != nil {
		return nil, fmt.Errorf("%w: schema section: %v", ErrCorrupt, err)
	}
	g := graph.New(schema)
	if err := decodeVertices(g, vertPayload); err != nil {
		return nil, err
	}
	if err := decodeEdges(g, edgePayload); err != nil {
		return nil, err
	}
	return g, nil
}

func readSection(d *dec, wantTag uint8, what string) ([]byte, error) {
	tag := d.u8(what + " tag")
	n := d.u64(what + " length")
	payload := d.take(int(n), what+" payload")
	sum := d.u32(what + " checksum")
	if d.err != nil {
		return nil, d.err
	}
	if tag != wantTag {
		return nil, fmt.Errorf("%w: expected %s section (tag %d), found tag %d", ErrCorrupt, what, wantTag, tag)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: %s section checksum mismatch", ErrCorrupt, what)
	}
	return payload, nil
}

// attrMap pairs a decoded row with its type's declarations for
// re-insertion through the public mutation API.
func attrMap(defs []graph.AttrDef, row []value.Value) map[string]value.Value {
	if len(defs) == 0 {
		return nil
	}
	m := make(map[string]value.Value, len(defs))
	for i, a := range defs {
		m[a.Name] = row[i]
	}
	return m
}

func decodeVertices(g *graph.Graph, payload []byte) error {
	d := &dec{b: payload}
	n := int(d.u32("vertex count"))
	types := g.Schema.VertexTypes()
	for i := 0; i < n; i++ {
		tid := int(d.u16("vertex type"))
		key := d.str("vertex key")
		na := int(d.u16("vertex attr count"))
		if d.err != nil {
			return d.err
		}
		if tid >= len(types) {
			return fmt.Errorf("%w: vertex %d has unknown type id %d", ErrCorrupt, i, tid)
		}
		vt := types[tid]
		if na != len(vt.Attrs) {
			return fmt.Errorf("%w: vertex %d has %d attrs, type %s declares %d", ErrCorrupt, i, na, vt.Name, len(vt.Attrs))
		}
		row := make([]value.Value, na)
		for j := range row {
			row[j] = d.val("vertex attr")
		}
		if d.err != nil {
			return d.err
		}
		id, err := g.AddVertex(vt.Name, key, attrMap(vt.Attrs, row))
		if err != nil {
			return fmt.Errorf("%w: re-inserting vertex %d: %v", ErrCorrupt, i, err)
		}
		if int(id) != i {
			return fmt.Errorf("%w: vertex %d re-inserted as id %d", ErrCorrupt, i, id)
		}
	}
	return d.done("vertices section")
}

func decodeEdges(g *graph.Graph, payload []byte) error {
	d := &dec{b: payload}
	n := int(d.u32("edge count"))
	types := g.Schema.EdgeTypes()
	for i := 0; i < n; i++ {
		tid := int(d.u16("edge type"))
		src := graph.VID(d.u32("edge src"))
		dst := graph.VID(d.u32("edge dst"))
		na := int(d.u16("edge attr count"))
		if d.err != nil {
			return d.err
		}
		if tid >= len(types) {
			return fmt.Errorf("%w: edge %d has unknown type id %d", ErrCorrupt, i, tid)
		}
		et := types[tid]
		if na != len(et.Attrs) {
			return fmt.Errorf("%w: edge %d has %d attrs, type %s declares %d", ErrCorrupt, i, na, et.Name, len(et.Attrs))
		}
		row := make([]value.Value, na)
		for j := range row {
			row[j] = d.val("edge attr")
		}
		if d.err != nil {
			return d.err
		}
		id, err := g.AddEdge(et.Name, src, dst, attrMap(et.Attrs, row))
		if err != nil {
			return fmt.Errorf("%w: re-inserting edge %d: %v", ErrCorrupt, i, err)
		}
		if int(id) != i {
			return fmt.Errorf("%w: edge %d re-inserted as id %d", ErrCorrupt, i, id)
		}
	}
	return d.done("edges section")
}

// SaveSnapshot writes a snapshot of g to path atomically: the bytes go
// to a temp file in the same directory, are fsynced, and are renamed
// into place, so a crash never leaves a half-written snapshot under the
// final name. Used directly by the gsql CLI's \save and by Checkpoint.
func SaveSnapshot(path string, g *graph.Graph) error {
	data, err := EncodeSnapshot(g)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// LoadSnapshot reads one snapshot file back into a graph.
func LoadSnapshot(path string) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// syncDir fsyncs a directory so a rename into it is durable. Some
// filesystems refuse fsync on directories; that is not fatal.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
