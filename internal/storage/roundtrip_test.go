package storage

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
)

// fixtureQueries is a small suite over the BuildRandomMixedGraph schema
// (vertex type V; directed D1/D2; undirected U) exercising adjacency
// expansion, polynomial path counting and cycle-closing rebinds — the
// evaluation machinery whose results must be bit-identical on a decoded
// graph.
var fixtureQueries = []string{
	`CREATE QUERY Q1() {
	  SumAccum<int> @n;
	  R = SELECT t FROM V:s -(D1>:e)- V:m -(U)- V:t ACCUM t.@n += 1;
	  PRINT R[R.name, R.@n];
	}`,
	`CREATE QUERY Q2() {
	  SumAccum<int> @n;
	  R = SELECT t FROM V:s -(D1>*)- V:t ACCUM t.@n += 1;
	  PRINT R[R.name, R.@n];
	}`,
	`CREATE QUERY Q3() {
	  SumAccum<int> @n;
	  R = SELECT t FROM V:s -((D1>|U)*1..3)- V:t ACCUM t.@n += 1;
	  PRINT R[R.name, R.@n];
	}`,
	`CREATE QUERY Q4() {
	  SumAccum<int> @n;
	  R = SELECT s FROM V:s -(D1>)- V:m -(D2>*)- V:s ACCUM s.@n += 1;
	  PRINT R[R.name, R.@n];
	}`,
}

// runSuite installs and runs every fixture query, concatenating the
// printed tables into one comparable signature.
func runSuite(t *testing.T, g *graph.Graph) string {
	t.Helper()
	e := core.New(g, core.Options{})
	var sb strings.Builder
	for _, src := range fixtureQueries {
		res, err := e.InstallAndRun(src, nil)
		if err != nil {
			t.Fatalf("suite: %v", err)
		}
		for _, tbl := range res.Printed {
			sb.WriteString(tbl.String())
		}
	}
	return sb.String()
}

// TestSnapshotRoundTripProperty is the satellite round-trip property:
// for ~50 random mixed graphs, encode → decode must preserve the graph
// bit-identically — same re-encoded bytes, same query-suite results —
// and the decoded graph's Epoch()/Freeze() machinery must behave like a
// freshly built graph's (frozen CSR usable, epoch advancing on
// mutation, caches invalidated).
func TestSnapshotRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := graph.BuildRandomMixedGraph(2+r.Intn(8), 1+r.Intn(16), seed)
		data, err := EncodeSnapshot(g)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		g2, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		// Re-encoding the decoded graph is byte-identical: the codec is
		// canonical, so snapshot bytes double as a graph signature.
		data2, err := EncodeSnapshot(g2)
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("seed %d: decode∘encode is not the identity", seed)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("seed %d: size mismatch", seed)
		}
		want := runSuite(t, g)
		if got := runSuite(t, g2); got != want {
			t.Fatalf("seed %d: query suite diverged\noriginal:\n%s\ndecoded:\n%s", seed, want, got)
		}

		// Epoch/Freeze interaction after recovery: freezing the decoded
		// graph must not disturb results, and a topology mutation must
		// advance the epoch (invalidating epoch-stamped caches exactly
		// as on a natively built graph).
		if csr := g2.Freeze(); csr == nil {
			t.Fatalf("seed %d: Freeze returned nil", seed)
		}
		if got := runSuite(t, g2); got != want {
			t.Fatalf("seed %d: results diverged after Freeze", seed)
		}
		before := g2.Epoch()
		if _, err := g2.AddVertex("V", "fresh-after-decode", nil); err != nil {
			t.Fatalf("seed %d: mutating decoded graph: %v", seed, err)
		}
		if g2.Epoch() != before+1 {
			t.Fatalf("seed %d: epoch did not advance on decoded graph (%d -> %d)", seed, before, g2.Epoch())
		}
	}
}

// TestStoreRecoveryQueryIdentical runs the suite through a full store
// lifecycle (fresh open with random graph, WAL-logged mutations,
// crash-style reopen) and demands identical query results before and
// after recovery.
func TestStoreRecoveryQueryIdentical(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		dir := t.TempDir()
		st, err := Open(dir, Options{Init: func() (*graph.Graph, error) {
			return graph.BuildRandomMixedGraph(2+r.Intn(6), 1+r.Intn(10), seed), nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		g := st.Graph()
		// Grow it further through the observed mutation path.
		n := g.NumVertices()
		for i := 0; i < 4; i++ {
			if _, err := g.AddVertex("V", "extra"+string(rune('a'+i)), nil); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 6; i++ {
			src := graph.VID(r.Intn(n + 4))
			dst := graph.VID(r.Intn(n + 4))
			if src == dst {
				continue
			}
			if _, err := g.AddEdge([]string{"D1", "D2", "U"}[i%3], src, dst, nil); err != nil {
				t.Fatal(err)
			}
		}
		want := runSuite(t, g)
		// No Close: simulate a crash with the WAL as the writer left it.
		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		if got := runSuite(t, st2.Graph()); got != want {
			t.Fatalf("seed %d: post-recovery query results diverged", seed)
		}
		st2.Close()
	}
}
