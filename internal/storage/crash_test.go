package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"gsqlgo/internal/value"
)

// copyDir clones a store directory so each injected crash starts from
// the same on-disk state.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// recordBoundaries scans a WAL's framing and returns the byte offset
// just past each complete record (boundary[0] is the header end).
func recordBoundaries(t *testing.T, walData []byte) []int {
	t.Helper()
	bounds := []int{len(walMagic)}
	off := len(walMagic)
	for off < len(walData) {
		plen := int(binary.LittleEndian.Uint32(walData[off:]))
		off += 8 + plen
		if off > len(walData) {
			t.Fatalf("reference WAL is itself torn at %d", off)
		}
		bounds = append(bounds, off)
	}
	return bounds
}

// TestCrashRecoveryAtEveryWALOffset is the crash-injection core of the
// subsystem: writing a mutation history, then simulating a writer
// killed at EVERY byte offset of the WAL. Recovery must (a) succeed,
// (b) produce exactly the graph obtained by replaying the longest fully
// persisted mutation prefix, and (c) leave the store appendable so the
// lost tail can be re-issued.
func TestCrashRecoveryAtEveryWALOffset(t *testing.T) {
	base := t.TempDir()
	st, err := Open(base, Options{Init: emptyInit(t)})
	if err != nil {
		t.Fatal(err)
	}
	hist := mutationHistory()
	for i, m := range hist {
		if err := m(st.Graph()); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	// Simulated crash: the store is abandoned, never Closed. (Appends
	// go through single Write calls, so the file content is already
	// what a killed process would leave behind.)
	walPath := filepath.Join(base, walName(1))
	walData, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBoundaries(t, walData)
	if len(bounds) != len(hist)+1 {
		t.Fatalf("WAL has %d records, history has %d", len(bounds)-1, len(hist))
	}

	// Precompute the expected signature for every surviving prefix.
	wantSig := make([][]byte, len(hist)+1)
	for k := 0; k <= len(hist); k++ {
		wantSig[k] = graphSig(t, applyPrefix(t, k))
	}

	for cut := 0; cut <= len(walData); cut++ {
		dir := copyDir(t, base)
		path := filepath.Join(dir, walName(1))
		if err := os.Truncate(path, int64(cut)); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		// Records surviving the cut: complete frames fully below it.
		k := 0
		for k+1 < len(bounds) && bounds[k+1] <= cut {
			k++
		}
		if got := rec.Stats().ReplayedRecords; got != uint64(k) {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, got, k)
		}
		if got := graphSig(t, rec.Graph()); !bytes.Equal(got, wantSig[k]) {
			t.Fatalf("cut %d: recovered graph != %d-mutation prefix", cut, k)
		}
		// The truncated tail is gone from disk and the log accepts the
		// re-issued remainder of the history.
		for i, m := range hist[k:] {
			if err := m(rec.Graph()); err != nil {
				t.Fatalf("cut %d: re-issuing mutation %d: %v", cut, k+i, err)
			}
		}
		if got := graphSig(t, rec.Graph()); !bytes.Equal(got, wantSig[len(hist)]) {
			t.Fatalf("cut %d: re-issued history diverged", cut)
		}
		rec.Close()
	}
}

// TestCrashRecoveryCorruptMidRecord flips one byte inside each record
// in turn: recovery treats the damaged record as the torn tail,
// keeping every record before it and dropping it and everything after.
func TestCrashRecoveryCorruptMidRecord(t *testing.T) {
	base := t.TempDir()
	st, err := Open(base, Options{Init: emptyInit(t)})
	if err != nil {
		t.Fatal(err)
	}
	hist := mutationHistory()
	for _, m := range hist {
		if err := m(st.Graph()); err != nil {
			t.Fatal(err)
		}
	}
	walData, err := os.ReadFile(filepath.Join(base, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBoundaries(t, walData)

	for k := 0; k < len(hist); k++ {
		dir := copyDir(t, base)
		path := filepath.Join(dir, walName(1))
		data := append([]byte(nil), walData...)
		// Flip a payload byte of record k (skip the 8-byte frame header
		// so the length field stays sane and the CRC does the catching).
		data[bounds[k]+8] ^= 0x5A
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("record %d corrupt: Open: %v", k, err)
		}
		if got := rec.Stats().ReplayedRecords; got != uint64(k) {
			t.Fatalf("record %d corrupt: replayed %d, want %d", k, got, k)
		}
		if got := graphSig(t, rec.Graph()); !bytes.Equal(got, graphSig(t, applyPrefix(t, k))) {
			t.Fatalf("record %d corrupt: recovered graph != %d-mutation prefix", k, k)
		}
		rec.Close()
	}
}

// TestTornNonActiveWALRefusesRecovery: a torn tail is only legitimate
// in the newest WAL (the one being appended at crash time). When the
// newest snapshot is rotted and fallback replay crosses an OLDER log
// with a torn tail, records are missing from the middle of history —
// recovery must refuse with ErrCorrupt rather than splice the later
// generation onto the intact prefix and present a state that never
// existed.
func TestTornNonActiveWALRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: emptyInit(t)})
	if err != nil {
		t.Fatal(err)
	}
	hist := mutationHistory()
	half := len(hist) / 2
	for _, m := range hist[:half] {
		if err := m(st.Graph()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil { // snapshot 2; wal-2 gets the tail
		t.Fatal(err)
	}
	for _, m := range hist[half:] {
		if err := m(st.Graph()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil { // snapshot 3, empty wal-3
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Rot snapshot 3 so recovery falls back to snapshot 2 and must
	// replay wal-2 (non-active) then wal-3 (active).
	snap3 := filepath.Join(dir, snapName(3))
	data, err := os.ReadFile(snap3)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data)/2+8 && i < len(data); i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(snap3, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Tear wal-2's last record mid-frame.
	wal2 := filepath.Join(dir, walName(2))
	walData, err := os.ReadFile(wal2)
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBoundaries(t, walData)
	if len(bounds) < 2 {
		t.Fatalf("wal-2 has no records to tear")
	}
	if err := os.Truncate(wal2, int64(bounds[len(bounds)-1]-3)); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn non-active WAL: err = %v, want ErrCorrupt", err)
	}
}

// TestReplayRejectsSemanticallyImpossibleRecord: a record whose frame
// and CRC are intact but whose content cannot be re-applied (here: a
// duplicate key insert that the original writer could never have
// logged) is corruption, not a torn tail — replay must say so rather
// than silently drop it and keep going.
func TestReplayRejectsSemanticallyImpossibleRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: emptyInit(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Graph().AddVertex("City", "rome", nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Forge a CRC-valid duplicate of the insert and append it.
	payload, err := encodeAddVertex("City", "rome", []value.Value{value.NewString("")})
	if err != nil {
		t.Fatal(err)
	}
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	path := filepath.Join(dir, walName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of impossible record: err = %v, want ErrCorrupt", err)
	}
}
