package storage

import (
	"fmt"
	"sync"
	"testing"

	"gsqlgo/internal/value"
)

// personPayload encodes an AddVertex record for a distinct Person key
// — a replayable payload the group-commit tests can append directly
// through logAppend (the observer path minus the graph mutation, which
// would need caller serialization the tests are deliberately avoiding:
// logAppend itself must be safe for concurrent use).
func personPayload(t testing.TB, key string, age int64) []byte {
	t.Helper()
	payload, err := encodeAddVertex("Person", key, []value.Value{
		value.NewString("n-" + key),
		value.NewInt(age),
		value.NewFloat(float64(age) / 3),
		value.NewDatetime(1500000000 + age),
		value.NewBool(age%2 == 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestGroupCommitConcurrentAppendsDurable drives concurrent appenders
// through the Fsync path and proves every acknowledged record survives
// a reopen: the group-commit ledger may batch many appends into one
// fsync, but no append may return before its bytes are covered.
func TestGroupCommitConcurrentAppendsDurable(t *testing.T) {
	const goroutines, perG = 8, 40
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: emptyInit(t), Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p := personPayload(t, fmt.Sprintf("p-%d-%d", w, i), int64(20+i))
				if err := st.logAppend(p); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	if got := st.ActiveRecords(); got != goroutines*perG {
		t.Fatalf("ActiveRecords = %d, want %d", got, goroutines*perG)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Graph().NumVertices(); got != goroutines*perG {
		t.Fatalf("recovered %d vertices, want %d", got, goroutines*perG)
	}
	if got := re.ActiveRecords(); got != goroutines*perG {
		t.Fatalf("recovered ActiveRecords = %d, want %d", got, goroutines*perG)
	}
}

// TestGroupCommitSurvivesConcurrentCheckpoint races appenders against
// WAL rotations: a checkpoint closes the file an in-flight fsync may
// target, so the rotation must wait it out and then release appenders
// still parked on the old segment. A bug here deadlocks or crashes;
// completion plus a consistent final position is the assertion.
func TestGroupCommitSurvivesConcurrentCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: emptyInit(t), Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const goroutines, perG, rotations = 4, 30, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines+1)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p := personPayload(t, fmt.Sprintf("c-%d-%d", w, i), int64(30+i))
				if err := st.logAppend(p); err != nil {
					errs <- fmt.Errorf("append: %w", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The checkpointer snapshots s.g, which nobody mutates here —
		// the appenders write records directly, so Checkpoint's
		// no-concurrent-graph-mutation contract holds.
		for i := 0; i < rotations; i++ {
			if err := st.Checkpoint(); err != nil {
				errs <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	seq, off := st.Position()
	if seq != 1+rotations {
		t.Fatalf("final seq = %d, want %d", seq, 1+rotations)
	}
	if off < WALHeaderSize {
		t.Fatalf("final offset %d below header", off)
	}
}

// BenchmarkWALAppendFsync measures the satellite's claim: under
// -fsync, group commit (concurrent appenders sharing flushes) beats
// the one-barrier-per-append baseline it replaced. Run with
//
//	go test -bench=WALAppendFsync -benchtime=2s ./internal/storage/
//
// The interesting comparison is group/parallel vs baseline/parallel —
// on the serial variants the two protocols degenerate to the same one
// fsync per append.
func BenchmarkWALAppendFsync(b *testing.B) {
	payload := personPayload(b, "bench", 40)
	for _, mode := range []struct {
		name            string
		syncEveryAppend bool
	}{
		{"group", false},
		{"baseline", true},
	} {
		for _, par := range []bool{false, true} {
			name := mode.name + "/serial"
			if par {
				name = mode.name + "/parallel"
			}
			b.Run(name, func(b *testing.B) {
				st, err := Open(b.TempDir(), Options{
					Init:            emptyInit(b),
					Fsync:           true,
					syncEveryAppend: mode.syncEveryAppend,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				b.SetBytes(int64(8 + len(payload)))
				b.ResetTimer()
				if par {
					// Appenders block in fsync, not on a core, so the
					// cohort size is goroutines — not GOMAXPROCS. Force
					// real concurrency even on single-CPU CI runners.
					b.SetParallelism(8)
					b.RunParallel(func(pb *testing.PB) {
						for pb.Next() {
							if err := st.logAppend(payload); err != nil {
								b.Error(err)
								return
							}
						}
					})
				} else {
					for i := 0; i < b.N; i++ {
						if err := st.logAppend(payload); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}
