package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/value"
)

// WAL file layout:
//
//	[8]byte magic "GSQLWAL1"
//	records, back to back:
//	  u32 payload length
//	  u32 CRC32 (IEEE) of the payload
//	  []byte payload — u8 opcode, then opcode-specific fields
//
// A record is the unit of atomicity. Replay scans records in order and
// stops at the first frame that is short, oversized or fails its CRC —
// the torn tail a crash mid-append leaves — truncating the file back to
// the last intact record. A record that passes its CRC but cannot be
// decoded or re-applied is a different animal entirely (real corruption
// or a bug) and surfaces as ErrCorrupt rather than silent data loss.

const (
	walMagic = "GSQLWAL1"

	opAddVertex     = 1
	opAddEdge       = 2
	opSetVertexAttr = 3

	// maxWALRecord bounds a single record's payload; a length field
	// beyond it is treated as torn framing, not an allocation request.
	maxWALRecord = 1 << 28
)

// ---- record encoding ------------------------------------------------------

func encodeAddVertex(typeName, key string, row []value.Value) ([]byte, error) {
	e := &enc{}
	e.u8(opAddVertex)
	e.str(typeName)
	e.str(key)
	e.u16(uint16(len(row)))
	for _, v := range row {
		if err := e.val(v); err != nil {
			return nil, err
		}
	}
	return e.b, nil
}

func encodeAddEdge(typeName string, src, dst graph.VID, row []value.Value) ([]byte, error) {
	e := &enc{}
	e.u8(opAddEdge)
	e.str(typeName)
	e.u32(uint32(src))
	e.u32(uint32(dst))
	e.u16(uint16(len(row)))
	for _, v := range row {
		if err := e.val(v); err != nil {
			return nil, err
		}
	}
	return e.b, nil
}

func encodeSetVertexAttr(v graph.VID, name string, val value.Value) ([]byte, error) {
	e := &enc{}
	e.u8(opSetVertexAttr)
	e.u32(uint32(v))
	e.str(name)
	if err := e.val(val); err != nil {
		return nil, err
	}
	return e.b, nil
}

// applyRecord decodes one CRC-valid payload and re-applies it to g.
// Every failure is ErrCorrupt: the frame was intact, so the content
// must be as well.
func applyRecord(g *graph.Graph, payload []byte) error {
	d := &dec{b: payload}
	switch op := d.u8("opcode"); op {
	case opAddVertex:
		typeName := d.str("vertex type name")
		key := d.str("vertex key")
		n := int(d.u16("attr count"))
		if d.err != nil {
			return d.err
		}
		vt := g.Schema.VertexType(typeName)
		if vt == nil {
			return fmt.Errorf("%w: AddVertex record names unknown type %q", ErrCorrupt, typeName)
		}
		if n != len(vt.Attrs) {
			return fmt.Errorf("%w: AddVertex record has %d attrs, type %s declares %d", ErrCorrupt, n, typeName, len(vt.Attrs))
		}
		row := make([]value.Value, n)
		for i := range row {
			row[i] = d.val("vertex attr")
		}
		if err := d.done("AddVertex record"); err != nil {
			return err
		}
		if _, err := g.AddVertex(typeName, key, attrMap(vt.Attrs, row)); err != nil {
			return fmt.Errorf("%w: replaying AddVertex %s %q: %v", ErrCorrupt, typeName, key, err)
		}
	case opAddEdge:
		typeName := d.str("edge type name")
		src := graph.VID(d.u32("edge src"))
		dst := graph.VID(d.u32("edge dst"))
		n := int(d.u16("attr count"))
		if d.err != nil {
			return d.err
		}
		et := g.Schema.EdgeType(typeName)
		if et == nil {
			return fmt.Errorf("%w: AddEdge record names unknown type %q", ErrCorrupt, typeName)
		}
		if n != len(et.Attrs) {
			return fmt.Errorf("%w: AddEdge record has %d attrs, type %s declares %d", ErrCorrupt, n, typeName, len(et.Attrs))
		}
		row := make([]value.Value, n)
		for i := range row {
			row[i] = d.val("edge attr")
		}
		if err := d.done("AddEdge record"); err != nil {
			return err
		}
		if _, err := g.AddEdge(typeName, src, dst, attrMap(et.Attrs, row)); err != nil {
			return fmt.Errorf("%w: replaying AddEdge %s (%d, %d): %v", ErrCorrupt, typeName, src, dst, err)
		}
	case opSetVertexAttr:
		v := graph.VID(d.u32("vertex id"))
		name := d.str("attr name")
		val := d.val("attr value")
		if err := d.done("SetVertexAttr record"); err != nil {
			return err
		}
		if v < 0 || int(v) >= g.NumVertices() {
			return fmt.Errorf("%w: SetVertexAttr record targets vertex %d of %d", ErrCorrupt, v, g.NumVertices())
		}
		if err := g.SetVertexAttr(v, name, val); err != nil {
			return fmt.Errorf("%w: replaying SetVertexAttr %d.%s: %v", ErrCorrupt, v, name, err)
		}
	default:
		return fmt.Errorf("%w: unknown WAL opcode %d", ErrCorrupt, op)
	}
	return nil
}

// ---- replay ---------------------------------------------------------------

// walScan is the outcome of replaying one WAL file.
type walScan struct {
	records  int   // intact records applied
	validLen int64 // file offset just past the last intact record
	torn     bool  // a torn tail was found (and stops the scan)
}

// replayWAL applies every intact record of the WAL at path to g and
// reports how far the intact prefix extends. A missing file counts as
// an empty log. The file is not modified; the caller decides whether
// to truncate (only the active, newest log is).
func replayWAL(path string, g *graph.Graph) (walScan, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return walScan{validLen: int64(len(walMagic))}, nil
	}
	if err != nil {
		return walScan{}, err
	}
	if len(data) < len(walMagic) {
		// Crash before the header hit the disk: an empty log.
		return walScan{validLen: int64(len(walMagic)), torn: true}, nil
	}
	if string(data[:len(walMagic)]) != walMagic {
		return walScan{}, fmt.Errorf("%w: %s: bad WAL magic", ErrCorrupt, path)
	}
	scan := walScan{validLen: int64(len(walMagic))}
	off := len(walMagic)
	for off < len(data) {
		if len(data)-off < 8 {
			scan.torn = true
			return scan, nil
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if plen > maxWALRecord || len(data)-off-8 < plen {
			scan.torn = true
			return scan, nil
		}
		payload := data[off+8 : off+8+plen]
		if crc32.ChecksumIEEE(payload) != sum {
			scan.torn = true
			return scan, nil
		}
		if err := applyRecord(g, payload); err != nil {
			return scan, fmt.Errorf("%s record %d: %w", path, scan.records, err)
		}
		off += 8 + plen
		scan.records++
		scan.validLen = int64(off)
	}
	return scan, nil
}

// ---- frame parsing (exported for replication) -----------------------------

// ParseFrame reads the first WAL frame of b and returns its payload
// and total encoded size (header + payload). It fails when the frame
// is incomplete (fewer bytes than the header promises) or its CRC does
// not match — both wrapped in ErrCorrupt, because the callers that use
// it (the replication wire, chunk trimming) only ever hand it byte
// ranges that are supposed to hold whole intact frames; torn-tail
// tolerance is WAL recovery's business, not ParseFrame's.
func ParseFrame(b []byte) (payload []byte, size int, err error) {
	if len(b) < 8 {
		return nil, 0, fmt.Errorf("%w: short frame header (%d bytes)", ErrCorrupt, len(b))
	}
	plen := int(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint32(b[4:])
	if plen > maxWALRecord {
		return nil, 0, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, plen)
	}
	if len(b)-8 < plen {
		return nil, 0, fmt.Errorf("%w: frame truncated (%d of %d payload bytes)", ErrCorrupt, len(b)-8, plen)
	}
	payload = b[8 : 8+plen]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	return payload, 8 + plen, nil
}

// ApplyRecord decodes one CRC-valid WAL record payload and applies it
// to g. Exported for the replication follower, which receives shipped
// frames and applies them through the same path recovery uses; when g
// carries a mutation observer the apply is re-logged, which is exactly
// how a follower persists its copy of the leader's log.
func ApplyRecord(g *graph.Graph, payload []byte) error {
	return applyRecord(g, payload)
}

// ---- writer ---------------------------------------------------------------

// walWriter appends framed records to an open WAL file. Each record is
// written with a single Write call so the kernel sees whole frames;
// durability beyond the OS cache is the Store's business — per-append
// group commit under Options.Fsync, sync() at checkpoint/close.
type walWriter struct {
	f *os.File
}

// createWAL creates a fresh log at path (failing if one exists — the
// rotation scheme never reuses a sequence number) and syncs its header.
func createWAL(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f}, nil
}

// openWAL opens an existing log for appending after recovery truncated
// it to validLen (which includes the magic header). A log whose header
// never made it to disk is rebuilt in place.
func openWAL(path string, validLen int64) (*walWriter, int64, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if st.Size() < int64(len(walMagic)) {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, 0, err
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return nil, 0, err
		}
		validLen = int64(len(walMagic))
	} else if st.Size() > validLen {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, 0, err
		}
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, 0, err
	}
	return &walWriter{f: f}, validLen, nil
}

// append frames and writes one record payload, returning the bytes
// added to the file.
func (w *walWriter) append(payload []byte) (int, error) {
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		return 0, err
	}
	return len(frame), nil
}

func (w *walWriter) sync() error  { return w.f.Sync() }
func (w *walWriter) close() error { return w.f.Close() }
