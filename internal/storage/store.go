package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/value"
)

// Options configures a Store.
type Options struct {
	// Init builds the starting graph when the directory holds no
	// existing store (fresh open). It is not called when Open recovers
	// persisted state — the snapshot's schema and data win, so a
	// seeding flag like gsqld's -builtin only matters on first boot.
	Init func() (*graph.Graph, error)
	// Fsync, when set, fsyncs the WAL after every append, making each
	// mutation durable against power loss rather than only against
	// process crash. Concurrent appenders share fsyncs (group commit):
	// the first caller into the sync path flushes once for every frame
	// written so far, and the cohort that queued up behind it is
	// covered by the next flush. Off by default: the paper's serving
	// workloads are read-heavy, and Checkpoint/Close always sync.
	Fsync bool
	// DeferSync, meaningful only with Fsync, moves the durability wait
	// out of the append: logAppend returns as soon as the frame is
	// written, and the caller makes it durable later with
	// WaitDurable(Position()) — after releasing whatever writer lock it
	// holds. That keeps the disk barrier outside the mutation critical
	// section, so concurrent HTTP writers form group-commit cohorts
	// instead of serializing one fsync each under the lock.
	DeferSync bool
	// Retain is how many snapshot/WAL generations Checkpoint keeps on
	// disk, minimum (and default) 2 — enough for recovery to fall back
	// across one snapshot's bit rot. Raise it on a replication leader
	// so slow followers can keep tailing across checkpoints instead of
	// finding their segment pruned and re-bootstrapping.
	Retain int

	// syncEveryAppend restores the pre-group-commit behavior (one
	// fsync per append, performed under the store mutex). Unexported:
	// it exists only so the group-commit benchmark can measure the
	// baseline it replaced.
	syncEveryAppend bool
}

func (o Options) retain() uint64 {
	if o.Retain < 2 {
		return 2
	}
	return uint64(o.Retain)
}

// Store couples a live graph with its durable representation. All
// methods are safe for concurrent use with each other; mutations to
// the underlying graph follow the graph's own discipline (the caller
// serializes mutation against mutation and against Checkpoint — the
// serving layer uses a writer mutex, single-threaded callers need
// nothing; reads need no coordination at all, they pin MVCC snapshots).
type Store struct {
	dir  string
	opts Options
	g    *graph.Graph

	mu        sync.Mutex // guards wal, seq, walOff, walRecs, notify, closed, failed
	wal       *walWriter
	seq       uint64
	walOff    int64  // end offset of the active segment (header + frames)
	walRecs   uint64 // records in the active segment (replayed + appended)
	notify    chan struct{}
	closed    bool
	failed    error // sticky first append failure; poisons later mutations
	recovered bool

	gc walSyncState // group-commit state for Options.Fsync

	nWALRecords atomic.Uint64
	nWALBytes   atomic.Uint64
	nCheckpts   atomic.Uint64
	nRecoveries atomic.Uint64
	nReplayed   atomic.Uint64
}

// walSyncState is the group-commit ledger: which segment the sync
// watermark belongs to, how far it has been flushed, and whether a
// flush is in flight. Appenders record their frame's end offset as
// pending, and whoever finds no flush in flight performs one fsync
// that covers every pending byte — concurrent appenders under -fsync
// share flushes instead of queueing one disk barrier each.
type walSyncState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File // active segment's file (mirrors Store.wal under gc.mu)
	seq     uint64   // segment the watermark refers to
	synced  int64    // durable end offset within seq
	pending int64    // highest offset any appender has asked to be synced
	syncing bool
	err     error // sticky fsync failure
}

func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.gsnap", seq) }
func walName(seq uint64) string  { return fmt.Sprintf("wal-%08d.wal", seq) }

// scanDir lists the sequence numbers of snapshots and WALs in dir.
func scanDir(dir string) (snaps, wals []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "snap-%d.gsnap", &seq); n == 1 && e.Name() == snapName(seq) {
			snaps = append(snaps, seq)
		}
		if n, _ := fmt.Sscanf(e.Name(), "wal-%d.wal", &seq); n == 1 && e.Name() == walName(seq) {
			wals = append(wals, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}

// Open opens (or creates) the store in dir and returns it with its
// graph recovered: newest valid snapshot loaded, WAL tail replayed,
// torn tail truncated, and the store registered as the graph's
// mutation observer so every subsequent mutation is logged.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, notify: make(chan struct{})}
	s.gc.cond = sync.NewCond(&s.gc.mu)
	if len(snaps) == 0 {
		if len(wals) > 0 {
			return nil, fmt.Errorf("%w: %s has WAL files but no snapshot to replay them onto", ErrCorrupt, dir)
		}
		if err := s.initFresh(); err != nil {
			return nil, err
		}
	} else if err := s.recover(snaps, wals); err != nil {
		return nil, err
	}
	s.gc.f = s.wal.f
	s.gc.seq = s.seq
	s.gc.synced = s.walOff // createWAL/openWAL both end with an fsync
	s.gc.pending = s.walOff
	s.g.SetObserver(s)
	return s, nil
}

// initFresh seeds an empty directory: build the initial graph, persist
// it as snapshot 1, and start WAL 1.
func (s *Store) initFresh() error {
	if s.opts.Init == nil {
		return fmt.Errorf("storage: %s holds no store and Options.Init is nil", s.dir)
	}
	g, err := s.opts.Init()
	if err != nil {
		return fmt.Errorf("storage: building initial graph: %w", err)
	}
	if g == nil {
		return errors.New("storage: Options.Init returned a nil graph")
	}
	s.g, s.seq = g, 1
	if err := SaveSnapshot(filepath.Join(s.dir, snapName(1)), g); err != nil {
		return err
	}
	wal, err := createWAL(filepath.Join(s.dir, walName(1)))
	if err != nil {
		return err
	}
	s.wal = wal
	s.walOff = int64(len(walMagic))
	s.nCheckpts.Add(1)
	return nil
}

// recover loads the newest snapshot that passes its checksums, replays
// every WAL from that generation forward, and reopens the newest WAL
// for appending with any torn tail truncated.
func (s *Store) recover(snaps, wals []uint64) error {
	var base uint64
	var g *graph.Graph
	var lastErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		g, lastErr = LoadSnapshot(filepath.Join(s.dir, snapName(snaps[i])))
		if lastErr == nil {
			base = snaps[i]
			break
		}
		if !errors.Is(lastErr, ErrCorrupt) {
			return lastErr // I/O trouble, not bit rot: don't mask it
		}
	}
	if g == nil {
		return fmt.Errorf("storage: no loadable snapshot in %s: %w", s.dir, lastErr)
	}
	s.g = g

	// Replay generations base..newest in ascending order. Only the
	// newest log may legitimately carry a torn tail (it was the active
	// one when the process died); recovery truncates that tail before
	// appending resumes.
	active := base
	for _, w := range wals {
		if w > active {
			active = w
		}
	}
	activeScan := walScan{validLen: int64(len(walMagic))}
	for _, w := range wals {
		if w < base {
			continue
		}
		scan, err := replayWAL(filepath.Join(s.dir, walName(w)), g)
		if err != nil {
			return err
		}
		if scan.torn && w != active {
			// A non-newest log was sealed by a checkpoint's sync before
			// its successor existed, so a torn tail here means records
			// were lost from the *middle* of history. Replaying later
			// generations on top would fabricate a merged state that
			// never existed; refuse instead.
			return fmt.Errorf("%w: %s: torn record in a non-active WAL (generation %d, newest is %d)",
				ErrCorrupt, filepath.Join(s.dir, walName(w)), w, active)
		}
		s.nReplayed.Add(uint64(scan.records))
		if w == active {
			activeScan = scan
		}
	}
	wal, validLen, err := openWAL(filepath.Join(s.dir, walName(active)), activeScan.validLen)
	if err != nil {
		return err
	}
	s.wal = wal
	s.seq = active
	s.walOff = validLen
	s.walRecs = uint64(activeScan.records)
	s.recovered = true
	s.nRecoveries.Add(1)
	return nil
}

// Graph returns the live graph the store persists.
func (s *Store) Graph() *graph.Graph { return s.g }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Recovered reports whether Open found and recovered existing state.
func (s *Store) Recovered() bool { return s.recovered }

// Position returns the store's replication position: the active WAL
// segment and the byte offset just past its last complete record. A
// follower that has applied everything up to an identical position
// holds an identical graph.
func (s *Store) Position() (seq uint64, off int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq, s.walOff
}

// ActiveRecords returns how many records the active WAL segment holds
// (records replayed into it at recovery plus records appended since).
func (s *Store) ActiveRecords() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecs
}

// WALNotify returns a channel that is closed on the next WAL append or
// segment rotation — the long-poll coupling point for replication
// tailers. Callers grab the channel, re-check the position, and only
// then block on it.
func (s *Store) WALNotify() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.notify
}

// notifyLocked wakes WAL watchers. Caller holds s.mu.
func (s *Store) notifyLocked() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// Stats returns a snapshot of the store's monotonic counters.
func (s *Store) Stats() Stats {
	return Stats{
		WALRecords:      s.nWALRecords.Load(),
		WALBytes:        s.nWALBytes.Load(),
		Checkpoints:     s.nCheckpts.Load(),
		Recoveries:      s.nRecoveries.Load(),
		ReplayedRecords: s.nReplayed.Load(),
	}
}

// ---- MutationObserver -----------------------------------------------------

// OnAddVertex write-ahead-logs a vertex insert.
func (s *Store) OnAddVertex(v graph.VID, typeName, key string, attrs []value.Value) error {
	payload, err := encodeAddVertex(typeName, key, attrs)
	if err != nil {
		return err
	}
	return s.logAppend(payload)
}

// OnAddEdge write-ahead-logs an edge insert.
func (s *Store) OnAddEdge(e graph.EID, typeName string, src, dst graph.VID, attrs []value.Value) error {
	payload, err := encodeAddEdge(typeName, src, dst, attrs)
	if err != nil {
		return err
	}
	return s.logAppend(payload)
}

// OnSetVertexAttr write-ahead-logs an attribute update.
func (s *Store) OnSetVertexAttr(v graph.VID, name string, val value.Value) error {
	payload, err := encodeSetVertexAttr(v, name, val)
	if err != nil {
		return err
	}
	return s.logAppend(payload)
}

func (s *Store) logAppend(payload []byte) error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	if s.closed {
		s.mu.Unlock()
		return errors.New("storage: store is closed")
	}
	n, err := s.wal.append(payload)
	if err != nil {
		// Poison the store: the log may hold a partial frame, so
		// accepting further mutations would interleave good records
		// after a torn middle. Recovery on restart truncates cleanly.
		s.failed = fmt.Errorf("storage: WAL append: %w", err)
		err = s.failed
		s.mu.Unlock()
		return err
	}
	s.walOff += int64(n)
	s.walRecs++
	s.nWALRecords.Add(1)
	s.nWALBytes.Add(uint64(n))
	s.notifyLocked()
	if s.opts.Fsync && s.opts.syncEveryAppend {
		// Benchmark baseline: one barrier per append, serialized under
		// the store mutex — what group commit replaced.
		if err := s.wal.sync(); err != nil {
			s.failed = fmt.Errorf("storage: WAL fsync: %w", err)
			err = s.failed
			s.mu.Unlock()
			return err
		}
		s.mu.Unlock()
		return nil
	}
	seq, end := s.seq, s.walOff
	s.mu.Unlock()
	if !s.opts.Fsync || s.opts.DeferSync {
		// DeferSync: the caller owns the durability wait (WaitDurable
		// after its writer lock is released).
		return nil
	}
	return s.waitDurable(seq, end)
}

// WaitDurable blocks until byte offset end of WAL segment seq — as
// returned by Position() — is durable on disk. It is the DeferSync
// caller's half of group commit: append under the writer lock, release
// it, then wait here, so concurrent writers waiting together share one
// fsync. A no-op when the store does not fsync at all.
func (s *Store) WaitDurable(seq uint64, end int64) error {
	if !s.opts.Fsync {
		return nil
	}
	return s.waitDurable(seq, end)
}

// waitDurable runs syncWAL and records its failure as the store's
// sticky poison (further mutations refuse rather than interleave after
// an unflushed tail).
func (s *Store) waitDurable(seq uint64, end int64) error {
	if err := s.syncWAL(seq, end); err != nil {
		s.mu.Lock()
		if s.failed == nil {
			s.failed = err
		}
		s.mu.Unlock()
		return err
	}
	return nil
}

// syncWAL blocks until byte offset end of segment seq is durable —
// the group-commit core. The frame at (seq, end) was already written
// under s.mu, so the file holds every byte this call is asked to
// flush. Whoever arrives while no flush is in flight performs one
// fsync covering all currently-pending offsets; everyone else waits
// and re-checks the watermark. A rotation advancing gc.seq past seq
// means the old segment was fully synced by Checkpoint — durable too.
func (s *Store) syncWAL(seq uint64, end int64) error {
	gc := &s.gc
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if gc.seq == seq && end > gc.pending {
		gc.pending = end
	}
	for {
		if gc.err != nil {
			return gc.err
		}
		if gc.seq > seq || (gc.seq == seq && gc.synced >= end) {
			return nil
		}
		if gc.syncing {
			gc.cond.Wait()
			continue
		}
		f, goal := gc.f, gc.pending
		gc.syncing = true
		gc.mu.Unlock()
		err := f.Sync()
		gc.mu.Lock()
		gc.syncing = false
		if err != nil {
			gc.err = fmt.Errorf("storage: WAL fsync: %w", err)
		} else if gc.seq == seq && goal > gc.synced {
			gc.synced = goal
		}
		gc.cond.Broadcast()
	}
}

// ---- checkpoint / close ---------------------------------------------------

// Checkpoint writes a fresh snapshot of the current graph, rotates to a
// new WAL generation, and prunes generations older than the retention
// floor (Options.Retain, default 2, so recovery can fall back across
// one snapshot's bit rot). Must not run concurrently with graph
// mutations (see Store).
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("storage: store is closed")
	}
	if s.failed != nil {
		return s.failed
	}
	return s.checkpointTo(s.seq + 1)
}

// AdvanceSegment rotates a replica store to the leader's next WAL
// generation: it snapshots the current graph as generation newSeq and
// starts an empty wal-newSeq, exactly what the leader's own Checkpoint
// produced at this point in the log — so the replica's files mirror
// the leader's layout and its recovery-derived Position stays a valid
// leader position. newSeq must exceed the current generation. Like
// Checkpoint, it must not run concurrently with graph mutations.
func (s *Store) AdvanceSegment(newSeq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("storage: store is closed")
	}
	if s.failed != nil {
		return s.failed
	}
	if newSeq <= s.seq {
		return fmt.Errorf("storage: AdvanceSegment to %d from %d: generations only grow", newSeq, s.seq)
	}
	return s.checkpointTo(newSeq)
}

// checkpointTo writes snapshot newSeq, rotates the WAL to wal-newSeq,
// and prunes history past the retention floor. Caller holds s.mu.
func (s *Store) checkpointTo(newSeq uint64) error {
	snapPath := filepath.Join(s.dir, snapName(newSeq))
	if err := SaveSnapshot(snapPath, s.g); err != nil {
		return err
	}
	wal, err := createWAL(filepath.Join(s.dir, walName(newSeq)))
	if err != nil {
		// Roll back the snapshot so recovery never prefers a generation
		// whose log the still-active old WAL is quietly outrunning.
		os.Remove(snapPath)
		return err
	}
	if err := s.wal.sync(); err != nil {
		wal.close()
		os.Remove(filepath.Join(s.dir, walName(newSeq)))
		os.Remove(snapPath)
		return err
	}
	// Swap under the group-commit lock: wait out any in-flight fsync on
	// the old file before closing it, then advance the watermark so
	// appenders still waiting on the old segment see gc.seq move past
	// them (their bytes were covered by the sync above).
	gc := &s.gc
	gc.mu.Lock()
	for gc.syncing {
		gc.cond.Wait()
	}
	s.wal.close()
	s.wal = wal
	s.seq = newSeq
	s.walOff = int64(len(walMagic))
	s.walRecs = 0
	gc.f = wal.f
	gc.seq = newSeq
	gc.synced = s.walOff
	gc.pending = s.walOff
	gc.cond.Broadcast()
	gc.mu.Unlock()
	keep := uint64(1)
	if retain := s.opts.retain(); newSeq > retain {
		keep = newSeq - retain + 1
	}
	s.pruneBelow(keep)
	s.nCheckpts.Add(1)
	s.notifyLocked()
	return nil
}

// pruneBelow best-effort removes snapshot/WAL generations older than
// keep (errors are ignored: stale files cost disk, not correctness).
func (s *Store) pruneBelow(keep uint64) {
	snaps, wals, err := scanDir(s.dir)
	if err != nil {
		return
	}
	for _, q := range snaps {
		if q < keep {
			os.Remove(filepath.Join(s.dir, snapName(q)))
		}
	}
	for _, q := range wals {
		if q < keep {
			os.Remove(filepath.Join(s.dir, walName(q)))
		}
	}
}

// Close syncs and closes the WAL and detaches the store from the
// graph. The graph stays usable in memory; further mutations are
// simply no longer persisted.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.g.SetObserver(nil)
	gc := &s.gc
	gc.mu.Lock()
	for gc.syncing {
		gc.cond.Wait()
	}
	gc.mu.Unlock()
	err := s.wal.sync()
	if err == nil {
		// Late syncWAL stragglers see their bytes durable instead of
		// racing an fsync against the close below.
		gc.mu.Lock()
		if gc.seq == s.seq && s.walOff > gc.synced {
			gc.synced = s.walOff
		}
		gc.cond.Broadcast()
		gc.mu.Unlock()
	}
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	return err
}
