package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/value"
)

// Options configures a Store.
type Options struct {
	// Init builds the starting graph when the directory holds no
	// existing store (fresh open). It is not called when Open recovers
	// persisted state — the snapshot's schema and data win, so a
	// seeding flag like gsqld's -builtin only matters on first boot.
	Init func() (*graph.Graph, error)
	// Fsync, when set, fsyncs the WAL after every append, making each
	// mutation durable against power loss rather than only against
	// process crash. Off by default: the paper's serving workloads are
	// read-heavy, and Checkpoint/Close always sync.
	Fsync bool
}

// Store couples a live graph with its durable representation. All
// methods are safe for concurrent use with each other; mutations to
// the underlying graph follow the graph's own discipline (the caller
// serializes mutation against reads AND against Checkpoint — the
// serving layer uses an RWMutex, single-threaded callers need nothing).
type Store struct {
	dir  string
	opts Options
	g    *graph.Graph

	mu        sync.Mutex // guards wal, seq, closed, failed
	wal       *walWriter
	seq       uint64
	closed    bool
	failed    error // sticky first append failure; poisons later mutations
	recovered bool

	nWALRecords atomic.Uint64
	nWALBytes   atomic.Uint64
	nCheckpts   atomic.Uint64
	nRecoveries atomic.Uint64
	nReplayed   atomic.Uint64
}

func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.gsnap", seq) }
func walName(seq uint64) string  { return fmt.Sprintf("wal-%08d.wal", seq) }

// scanDir lists the sequence numbers of snapshots and WALs in dir.
func scanDir(dir string) (snaps, wals []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "snap-%d.gsnap", &seq); n == 1 && e.Name() == snapName(seq) {
			snaps = append(snaps, seq)
		}
		if n, _ := fmt.Sscanf(e.Name(), "wal-%d.wal", &seq); n == 1 && e.Name() == walName(seq) {
			wals = append(wals, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}

// Open opens (or creates) the store in dir and returns it with its
// graph recovered: newest valid snapshot loaded, WAL tail replayed,
// torn tail truncated, and the store registered as the graph's
// mutation observer so every subsequent mutation is logged.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}
	if len(snaps) == 0 {
		if len(wals) > 0 {
			return nil, fmt.Errorf("%w: %s has WAL files but no snapshot to replay them onto", ErrCorrupt, dir)
		}
		if err := s.initFresh(); err != nil {
			return nil, err
		}
	} else if err := s.recover(snaps, wals); err != nil {
		return nil, err
	}
	s.g.SetObserver(s)
	return s, nil
}

// initFresh seeds an empty directory: build the initial graph, persist
// it as snapshot 1, and start WAL 1.
func (s *Store) initFresh() error {
	if s.opts.Init == nil {
		return fmt.Errorf("storage: %s holds no store and Options.Init is nil", s.dir)
	}
	g, err := s.opts.Init()
	if err != nil {
		return fmt.Errorf("storage: building initial graph: %w", err)
	}
	if g == nil {
		return errors.New("storage: Options.Init returned a nil graph")
	}
	s.g, s.seq = g, 1
	if err := SaveSnapshot(filepath.Join(s.dir, snapName(1)), g); err != nil {
		return err
	}
	wal, err := createWAL(filepath.Join(s.dir, walName(1)), s.opts.Fsync)
	if err != nil {
		return err
	}
	s.wal = wal
	s.nCheckpts.Add(1)
	return nil
}

// recover loads the newest snapshot that passes its checksums, replays
// every WAL from that generation forward, and reopens the newest WAL
// for appending with any torn tail truncated.
func (s *Store) recover(snaps, wals []uint64) error {
	var base uint64
	var g *graph.Graph
	var lastErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		g, lastErr = LoadSnapshot(filepath.Join(s.dir, snapName(snaps[i])))
		if lastErr == nil {
			base = snaps[i]
			break
		}
		if !errors.Is(lastErr, ErrCorrupt) {
			return lastErr // I/O trouble, not bit rot: don't mask it
		}
	}
	if g == nil {
		return fmt.Errorf("storage: no loadable snapshot in %s: %w", s.dir, lastErr)
	}
	s.g = g

	// Replay generations base..newest in ascending order. Only the
	// newest log may legitimately carry a torn tail (it was the active
	// one when the process died); recovery truncates that tail before
	// appending resumes.
	active := base
	for _, w := range wals {
		if w > active {
			active = w
		}
	}
	activeScan := walScan{validLen: int64(len(walMagic))}
	for _, w := range wals {
		if w < base {
			continue
		}
		scan, err := replayWAL(filepath.Join(s.dir, walName(w)), g)
		if err != nil {
			return err
		}
		if scan.torn && w != active {
			// A non-newest log was sealed by a checkpoint's sync before
			// its successor existed, so a torn tail here means records
			// were lost from the *middle* of history. Replaying later
			// generations on top would fabricate a merged state that
			// never existed; refuse instead.
			return fmt.Errorf("%w: %s: torn record in a non-active WAL (generation %d, newest is %d)",
				ErrCorrupt, filepath.Join(s.dir, walName(w)), w, active)
		}
		s.nReplayed.Add(uint64(scan.records))
		if w == active {
			activeScan = scan
		}
	}
	wal, err := openWAL(filepath.Join(s.dir, walName(active)), activeScan.validLen, s.opts.Fsync)
	if err != nil {
		return err
	}
	s.wal = wal
	s.seq = active
	s.recovered = true
	s.nRecoveries.Add(1)
	return nil
}

// Graph returns the live graph the store persists.
func (s *Store) Graph() *graph.Graph { return s.g }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Recovered reports whether Open found and recovered existing state.
func (s *Store) Recovered() bool { return s.recovered }

// Stats returns a snapshot of the store's monotonic counters.
func (s *Store) Stats() Stats {
	return Stats{
		WALRecords:      s.nWALRecords.Load(),
		WALBytes:        s.nWALBytes.Load(),
		Checkpoints:     s.nCheckpts.Load(),
		Recoveries:      s.nRecoveries.Load(),
		ReplayedRecords: s.nReplayed.Load(),
	}
}

// ---- MutationObserver -----------------------------------------------------

// OnAddVertex write-ahead-logs a vertex insert.
func (s *Store) OnAddVertex(v graph.VID, typeName, key string, attrs []value.Value) error {
	payload, err := encodeAddVertex(typeName, key, attrs)
	if err != nil {
		return err
	}
	return s.logAppend(payload)
}

// OnAddEdge write-ahead-logs an edge insert.
func (s *Store) OnAddEdge(e graph.EID, typeName string, src, dst graph.VID, attrs []value.Value) error {
	payload, err := encodeAddEdge(typeName, src, dst, attrs)
	if err != nil {
		return err
	}
	return s.logAppend(payload)
}

// OnSetVertexAttr write-ahead-logs an attribute update.
func (s *Store) OnSetVertexAttr(v graph.VID, name string, val value.Value) error {
	payload, err := encodeSetVertexAttr(v, name, val)
	if err != nil {
		return err
	}
	return s.logAppend(payload)
}

func (s *Store) logAppend(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if s.closed {
		return errors.New("storage: store is closed")
	}
	n, err := s.wal.append(payload)
	if err != nil {
		// Poison the store: the log may hold a partial frame, so
		// accepting further mutations would interleave good records
		// after a torn middle. Recovery on restart truncates cleanly.
		s.failed = fmt.Errorf("storage: WAL append: %w", err)
		return s.failed
	}
	s.nWALRecords.Add(1)
	s.nWALBytes.Add(uint64(n))
	return nil
}

// ---- checkpoint / close ---------------------------------------------------

// Checkpoint writes a fresh snapshot of the current graph, rotates to a
// new WAL generation, and prunes files older than the previous
// generation (two generations are retained so recovery can fall back
// across one snapshot's bit rot). Must not run concurrently with graph
// mutations (see Store).
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("storage: store is closed")
	}
	if s.failed != nil {
		return s.failed
	}
	newSeq := s.seq + 1
	snapPath := filepath.Join(s.dir, snapName(newSeq))
	if err := SaveSnapshot(snapPath, s.g); err != nil {
		return err
	}
	wal, err := createWAL(filepath.Join(s.dir, walName(newSeq)), s.opts.Fsync)
	if err != nil {
		// Roll back the snapshot so recovery never prefers a generation
		// whose log the still-active old WAL is quietly outrunning.
		os.Remove(snapPath)
		return err
	}
	if err := s.wal.sync(); err != nil {
		wal.close()
		os.Remove(filepath.Join(s.dir, walName(newSeq)))
		os.Remove(snapPath)
		return err
	}
	s.wal.close()
	s.wal = wal
	oldSeq := s.seq
	s.seq = newSeq
	s.pruneBelow(oldSeq)
	s.nCheckpts.Add(1)
	return nil
}

// pruneBelow best-effort removes snapshot/WAL generations older than
// keep (errors are ignored: stale files cost disk, not correctness).
func (s *Store) pruneBelow(keep uint64) {
	snaps, wals, err := scanDir(s.dir)
	if err != nil {
		return
	}
	for _, q := range snaps {
		if q < keep {
			os.Remove(filepath.Join(s.dir, snapName(q)))
		}
	}
	for _, q := range wals {
		if q < keep {
			os.Remove(filepath.Join(s.dir, walName(q)))
		}
	}
}

// Close syncs and closes the WAL and detaches the store from the
// graph. The graph stays usable in memory; further mutations are
// simply no longer persisted.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.g.SetObserver(nil)
	err := s.wal.sync()
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	return err
}
