package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Read-side API for WAL shipping. A replication leader serves two
// things: the snapshot that opens the current generation (follower
// bootstrap) and position-addressed reads of WAL frames (follower
// tailing). Positions are (segment sequence, byte offset) pairs; every
// boundary the writer ever exposes — Position(), segment ends, chunk
// ends — is a frame boundary, so a follower resuming from a recovered
// position always lands on the start of a record.

// ErrSegmentGone reports a WAL read position the store can no longer
// serve: the segment was pruned past the retention floor, the offset
// lies beyond the segment's end (a follower ahead of a leader that
// lost un-synced tail in a crash), or the frames at that position do
// not parse (offset off a frame boundary, or leader-side bit rot —
// either way the position is useless and the follower's only safe move
// is a fresh snapshot bootstrap). Match with errors.Is; always
// returned wrapped.
var ErrSegmentGone = errors.New("storage: WAL position not retained")

// WALHeaderSize is the byte offset of the first record in every WAL
// segment — the position a follower tails a fresh generation from.
const WALHeaderSize = int64(len(walMagic))

// WALChunk is one position-addressed read of WAL frames.
type WALChunk struct {
	// Data holds zero or more complete frames starting at the
	// requested offset (never a partial frame).
	Data []byte
	// SegEnd is the segment's end offset at read time: its final size
	// for a sealed segment, the append watermark for the active one.
	SegEnd int64
	// Sealed reports that the segment is no longer the active one —
	// its SegEnd is final.
	Sealed bool
	// NextSeq is the generation to tail next. Nonzero exactly when the
	// read exhausted a sealed segment (from+len(Data) == SegEnd):
	// rotation numbers generations densely, so it is always seq+1.
	NextSeq uint64
}

// ReadWALChunk reads up to maxBytes of complete frames from segment
// seq starting at byte offset from (maxBytes <= 0 picks a default of
// 1 MiB; a single frame larger than the budget is served whole). It
// never serves bytes past the append watermark, so a concurrent
// appender can not expose a half-written frame. Reads from positions
// the store cannot serve fail with ErrSegmentGone.
func (s *Store) ReadWALChunk(seq uint64, from int64, maxBytes int) (WALChunk, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	s.mu.Lock()
	active, activeEnd := s.seq, s.walOff
	s.mu.Unlock()
	if seq > active || seq == 0 {
		return WALChunk{}, fmt.Errorf("%w: segment %d (active is %d)", ErrSegmentGone, seq, active)
	}
	chunk := WALChunk{Sealed: seq < active, SegEnd: activeEnd}
	f, err := os.Open(filepath.Join(s.dir, walName(seq)))
	if err != nil {
		if os.IsNotExist(err) {
			return WALChunk{}, fmt.Errorf("%w: segment %d pruned", ErrSegmentGone, seq)
		}
		return WALChunk{}, err
	}
	defer f.Close()
	if chunk.Sealed {
		st, err := f.Stat()
		if err != nil {
			return WALChunk{}, err
		}
		chunk.SegEnd = st.Size()
	}
	if from < WALHeaderSize || from > chunk.SegEnd {
		return WALChunk{}, fmt.Errorf("%w: offset %d outside segment %d (end %d)", ErrSegmentGone, from, seq, chunk.SegEnd)
	}
	if from == chunk.SegEnd {
		if chunk.Sealed {
			chunk.NextSeq = seq + 1
		}
		return chunk, nil
	}
	want := chunk.SegEnd - from
	if want > int64(maxBytes) {
		want = int64(maxBytes)
	}
	buf := make([]byte, want)
	if _, err := io.ReadFull(io.NewSectionReader(f, from, want), buf); err != nil {
		return WALChunk{}, fmt.Errorf("storage: reading %s at %d: %w", walName(seq), from, err)
	}
	// Trim to the last complete frame in the window, validating CRCs on
	// the way out — a leader never ships bytes it cannot vouch for.
	valid := 0
	for valid < len(buf) {
		_, n, err := ParseFrame(buf[valid:])
		if err != nil {
			if valid == 0 {
				if first := s.readWholeFrame(f, from, chunk.SegEnd); first != nil {
					chunk.Data = first
					return chunk, nil
				}
				return WALChunk{}, fmt.Errorf("%w: no frame at segment %d offset %d", ErrSegmentGone, seq, from)
			}
			break
		}
		valid += n
	}
	chunk.Data = buf[:valid]
	if chunk.Sealed && from+int64(valid) == chunk.SegEnd {
		chunk.NextSeq = seq + 1
	}
	return chunk, nil
}

// readWholeFrame handles a frame bigger than the chunk budget: read
// its header, then the exact frame, bounded by the segment end. Nil
// when the bytes at from do not form a complete valid frame.
func (s *Store) readWholeFrame(f *os.File, from, segEnd int64) []byte {
	var hdr [8]byte
	if _, err := io.ReadFull(io.NewSectionReader(f, from, 8), hdr[:]); err != nil {
		return nil
	}
	plen := int64(binary.LittleEndian.Uint32(hdr[:]))
	if plen > maxWALRecord || from+8+plen > segEnd {
		return nil
	}
	buf := make([]byte, 8+plen)
	if _, err := io.ReadFull(io.NewSectionReader(f, from, 8+plen), buf); err != nil {
		return nil
	}
	if _, _, err := ParseFrame(buf); err != nil {
		return nil
	}
	return buf
}

// BootstrapSnapshot returns the newest snapshot generation that decodes
// cleanly, at or below the current one, together with its raw bytes. A
// follower bootstraps by installing these bytes as its own generation
// seq and tailing wal-seq from WALHeaderSize. Validation matters: the
// file is read back and decoded before serving, so a bit-rotted
// snapshot falls back a generation here instead of failing on every
// follower that downloads it.
func (s *Store) BootstrapSnapshot() (seq uint64, data []byte, err error) {
	s.mu.Lock()
	top := s.seq
	s.mu.Unlock()
	snaps, _, err := scanDir(s.dir)
	if err != nil {
		return 0, nil, err
	}
	var lastErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		if snaps[i] > top {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, snapName(snaps[i])))
		if err != nil {
			lastErr = err
			continue
		}
		if _, err := DecodeSnapshot(data); err != nil {
			lastErr = err
			continue
		}
		return snaps[i], data, nil
	}
	return 0, nil, fmt.Errorf("storage: no servable snapshot in %s: %w", s.dir, lastErr)
}

// WriteBootstrapSnapshot installs downloaded snapshot bytes as
// generation seq of the store directory dir (atomic temp+rename, like
// SaveSnapshot), after verifying they decode — a follower never
// installs bytes it could not recover from. The caller opens the
// directory with Open afterwards, which replays (or creates) wal-seq
// next to it.
func WriteBootstrapSnapshot(dir string, seq uint64, data []byte) error {
	if seq == 0 {
		return fmt.Errorf("storage: bootstrap snapshot needs a nonzero generation")
	}
	if _, err := DecodeSnapshot(data); err != nil {
		return fmt.Errorf("storage: bootstrap snapshot does not decode: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, snapName(seq))
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// HasStore reports whether dir already holds store files (any snapshot
// generation). A follower uses it to decide between recovering its
// local state and bootstrapping from the leader.
func HasStore(dir string) (bool, error) {
	snaps, _, err := scanDir(dir)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return len(snaps) > 0, nil
}

// WipeStore removes every snapshot and WAL file from dir (used by a
// follower re-bootstrapping after its position aged out of the
// leader's retention). Other files are left alone.
func WipeStore(dir string) error {
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return err
	}
	for _, q := range snaps {
		if err := os.Remove(filepath.Join(dir, snapName(q))); err != nil {
			return err
		}
	}
	for _, q := range wals {
		if err := os.Remove(filepath.Join(dir, walName(q))); err != nil {
			return err
		}
	}
	return nil
}
