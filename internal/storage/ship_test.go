package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gsqlgo/internal/graph"
)

// openHistoryStore opens a store and applies the first n history
// mutations through the observer path, checkpointing after every
// checkpointEvery mutations (0 = never).
func openHistoryStore(t *testing.T, dir string, opts Options, n, checkpointEvery int) *Store {
	t.Helper()
	opts.Init = emptyInit(t)
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range mutationHistory()[:n] {
		if err := m(st.Graph()); err != nil {
			t.Fatalf("history[%d]: %v", i, err)
		}
		if checkpointEvery > 0 && (i+1)%checkpointEvery == 0 {
			if err := st.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after history[%d]: %v", i, err)
			}
		}
	}
	return st
}

// tailStore replays a leader store's WAL through the shipping API —
// ReadWALChunk from (startSeq, WALHeaderSize), following NextSeq
// across sealed segments — onto g, returning the records applied.
// maxBytes is deliberately tiny in callers so multi-chunk and
// chunk-boundary paths get exercised.
func tailStore(t *testing.T, st *Store, g *graph.Graph, startSeq uint64, maxBytes int) int {
	t.Helper()
	seq, from := startSeq, WALHeaderSize
	leaderSeq, leaderOff := st.Position()
	records := 0
	for {
		chunk, err := st.ReadWALChunk(seq, from, maxBytes)
		if err != nil {
			t.Fatalf("ReadWALChunk(%d, %d): %v", seq, from, err)
		}
		data := chunk.Data
		for len(data) > 0 {
			payload, n, err := ParseFrame(data)
			if err != nil {
				t.Fatalf("ParseFrame at (%d, %d): %v", seq, from, err)
			}
			if err := ApplyRecord(g, payload); err != nil {
				t.Fatalf("ApplyRecord at (%d, %d): %v", seq, from, err)
			}
			data = data[n:]
			from += int64(n)
			records++
		}
		if chunk.NextSeq != 0 {
			seq, from = chunk.NextSeq, WALHeaderSize
			continue
		}
		if seq == leaderSeq && from == leaderOff {
			return records
		}
		if len(chunk.Data) == 0 {
			t.Fatalf("tail stalled at (%d, %d), leader at (%d, %d)", seq, from, leaderSeq, leaderOff)
		}
	}
}

// TestRetainKeepsGenerationsForTailers is the retention-bugfix
// satellite at the storage level: with Options.Retain raised, a slow
// follower that is still on generation 1 can tail the entire history
// across several checkpoints and reach a bit-identical graph; with the
// default retention the same read cleanly fails with ErrSegmentGone
// (re-bootstrap), never with garbage.
func TestRetainKeepsGenerationsForTailers(t *testing.T) {
	n := len(mutationHistory())

	// Retain: 8 comfortably covers every generation the 5 checkpoints
	// create — the slow follower tails from the very beginning.
	leader := openHistoryStore(t, t.TempDir(), Options{Retain: 8}, n, 5)
	defer leader.Close()
	follower := graph.New(testSchema(t))
	got := tailStore(t, leader, follower, 1, 64) // tiny chunks on purpose
	if got != n {
		t.Fatalf("tailed %d records, want %d", got, n)
	}
	if !bytes.Equal(graphSig(t, follower), graphSig(t, leader.Graph())) {
		t.Fatal("follower graph signature diverged from leader")
	}

	// Default retention prunes generation 1 after a few checkpoints; a
	// follower parked there must get the typed gone error.
	pruned := openHistoryStore(t, t.TempDir(), Options{}, n, 5)
	defer pruned.Close()
	if _, err := pruned.ReadWALChunk(1, WALHeaderSize, 0); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("pruned segment read: got %v, want ErrSegmentGone", err)
	}
}

// TestReadWALChunkPositionValidation: every way a position can be
// unservable answers ErrSegmentGone, and chunk reads never serve a
// partial frame.
func TestReadWALChunkPositionValidation(t *testing.T) {
	st := openHistoryStore(t, t.TempDir(), Options{}, 10, 0)
	defer st.Close()
	seq, off := st.Position()

	for _, tc := range []struct {
		name string
		seq  uint64
		from int64
	}{
		{"future segment", seq + 1, WALHeaderSize},
		{"segment zero", 0, WALHeaderSize},
		{"offset before header", seq, 0},
		{"offset past end", seq, off + 1},
		{"offset off a frame boundary", seq, WALHeaderSize + 1},
	} {
		if _, err := st.ReadWALChunk(tc.seq, tc.from, 0); !errors.Is(err, ErrSegmentGone) {
			t.Errorf("%s: got %v, want ErrSegmentGone", tc.name, err)
		}
	}

	// At the watermark: a valid empty read, not an error.
	chunk, err := st.ReadWALChunk(seq, off, 0)
	if err != nil || len(chunk.Data) != 0 || chunk.NextSeq != 0 {
		t.Fatalf("read at watermark: chunk %+v, err %v", chunk, err)
	}

	// A maxBytes smaller than the first frame still serves that frame
	// whole rather than stalling the tail forever.
	chunk, err = st.ReadWALChunk(seq, WALHeaderSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseFrame(chunk.Data); err != nil {
		t.Fatalf("oversized-frame read is not a whole frame: %v", err)
	}
}

// TestBootstrapSnapshotFallsBackPastBitRot mirrors recovery's
// corruption fallback on the serving side: a flipped byte in the
// newest snapshot must push BootstrapSnapshot to the older decodable
// generation, never serve bytes that will fail on every follower.
func TestBootstrapSnapshotFallsBackPastBitRot(t *testing.T) {
	dir := t.TempDir()
	st := openHistoryStore(t, dir, Options{}, 12, 6) // generations 1..3
	defer st.Close()
	topSeq, _, err := st.BootstrapSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if topSeq != 3 {
		t.Fatalf("newest bootstrap generation = %d, want 3", topSeq)
	}
	path := filepath.Join(dir, snapName(3))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, snap, err := st.BootstrapSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("bootstrap fell back to generation %d, want 2", seq)
	}
	if _, err := DecodeSnapshot(snap); err != nil {
		t.Fatalf("served snapshot does not decode: %v", err)
	}
}

// TestWriteBootstrapSnapshotRoundTrip: installed bytes open as a
// working store; garbage is rejected before touching the directory.
func TestWriteBootstrapSnapshotRoundTrip(t *testing.T) {
	leader := openHistoryStore(t, t.TempDir(), Options{}, 15, 0)
	defer leader.Close()
	seq, data, err := leader.BootstrapSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := WriteBootstrapSnapshot(dir, 0, data); err == nil {
		t.Fatal("WriteBootstrapSnapshot accepted generation 0")
	}
	if err := WriteBootstrapSnapshot(dir, seq, []byte("junk")); err == nil {
		t.Fatal("WriteBootstrapSnapshot accepted undecodable bytes")
	}
	if has, err := HasStore(dir); err != nil || has {
		t.Fatalf("HasStore after rejected installs = (%v, %v), want (false, nil)", has, err)
	}
	if err := WriteBootstrapSnapshot(dir, seq, data); err != nil {
		t.Fatal(err)
	}
	if has, err := HasStore(dir); err != nil || !has {
		t.Fatalf("HasStore after install = (%v, %v), want (true, nil)", has, err)
	}
	st, err := Open(dir, Options{}) // no Init: the snapshot is the seed
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if gotSeq, _ := st.Position(); gotSeq != seq {
		t.Fatalf("installed store opened at generation %d, want %d", gotSeq, seq)
	}
	// The snapshot encoding is canonical, so the installed store's
	// graph signature equals the leader's snapshot bytes.
	if !bytes.Equal(graphSig(t, st.Graph()), data) {
		t.Fatal("installed graph signature differs from bootstrap snapshot")
	}
	if err := WipeStore(dir); err != nil {
		t.Fatal(err)
	}
	if has, _ := HasStore(dir); has {
		t.Fatal("HasStore true after WipeStore")
	}
}
