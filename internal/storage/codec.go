package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"gsqlgo/internal/value"
)

// Binary primitives shared by the snapshot codec and the WAL record
// codec. Everything is little-endian and length-prefixed; there is no
// varint layer — graphs are bounded by int32 ids, so fixed-width
// framing keeps the torn-tail scanner trivial to reason about.

// enc is an append-only byte encoder.
type enc struct{ b []byte }

func (e *enc) u8(x uint8)   { e.b = append(e.b, x) }
func (e *enc) u16(x uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, x) }
func (e *enc) u32(x uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, x) }
func (e *enc) u64(x uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, x) }

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// val encodes a scalar runtime value (the kinds storable in vertex and
// edge attributes, plus null). Structured kinds are rejected: the
// schema cannot declare them, so their appearance is a program bug.
func (e *enc) val(v value.Value) error {
	e.u8(uint8(v.Kind()))
	switch v.Kind() {
	case value.KindNull:
	case value.KindBool:
		if v.Bool() {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case value.KindInt:
		e.u64(uint64(v.Int()))
	case value.KindDatetime:
		e.u64(uint64(v.Datetime()))
	case value.KindFloat:
		e.u64(math.Float64bits(v.Float()))
	case value.KindString:
		e.str(v.Str())
	default:
		return fmt.Errorf("storage: cannot encode %s value", v.Kind())
	}
	return nil
}

// dec is a cursor over an encoded byte slice. Reads past the end set
// err instead of panicking; callers check err once at the end (or at
// natural boundaries) rather than after every field.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *dec) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail(what)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *dec) u8(what string) uint8 {
	b := d.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16(what string) uint16 {
	b := d.take(2, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *dec) u32(what string) uint32 {
	b := d.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64(what string) uint64 {
	b := d.take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) str(what string) string {
	n := d.u32(what + " length")
	return string(d.take(int(n), what))
}

func (d *dec) val(what string) value.Value {
	kind := value.Kind(d.u8(what + " kind"))
	switch kind {
	case value.KindNull:
		return value.Null
	case value.KindBool:
		return value.NewBool(d.u8(what) != 0)
	case value.KindInt:
		return value.NewInt(int64(d.u64(what)))
	case value.KindDatetime:
		return value.NewDatetime(int64(d.u64(what)))
	case value.KindFloat:
		return value.NewFloat(math.Float64frombits(d.u64(what)))
	case value.KindString:
		return value.NewString(d.str(what))
	default:
		if d.err == nil {
			d.err = fmt.Errorf("%w: %s has unencodable kind %d at offset %d", ErrCorrupt, what, kind, d.off)
		}
		return value.Null
	}
}

// done reports successful exhaustion: no decode error and no trailing
// garbage.
func (d *dec) done(what string) error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes after %s", ErrCorrupt, len(d.b)-d.off, what)
	}
	return nil
}
