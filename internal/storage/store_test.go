package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/value"
)

// testSchema covers every attribute type on both vertices and edges.
func testSchema(t testing.TB) *graph.Schema {
	t.Helper()
	s := graph.NewSchema()
	if _, err := s.AddVertexType("Person",
		graph.AttrDef{Name: "name", Type: graph.AttrString},
		graph.AttrDef{Name: "age", Type: graph.AttrInt},
		graph.AttrDef{Name: "score", Type: graph.AttrFloat},
		graph.AttrDef{Name: "joined", Type: graph.AttrDatetime},
		graph.AttrDef{Name: "active", Type: graph.AttrBool},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddVertexType("City", graph.AttrDef{Name: "name", Type: graph.AttrString}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("Knows", true, graph.AttrDef{Name: "since", Type: graph.AttrInt}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("Near", false); err != nil {
		t.Fatal(err)
	}
	return s
}

func emptyInit(t testing.TB) func() (*graph.Graph, error) {
	return func() (*graph.Graph, error) { return graph.New(testSchema(t)), nil }
}

// mutation is one replayable graph operation; the crash tests re-apply
// prefixes of a mutation history to compute the expected post-recovery
// state.
type mutation func(g *graph.Graph) error

// mutationHistory is a fixed mixed workload over testSchema: vertex
// inserts of both types, directed and undirected edges (incl. a self
// loop), and attribute updates.
func mutationHistory() []mutation {
	var ms []mutation
	addPerson := func(key string, age int64) mutation {
		return func(g *graph.Graph) error {
			_, err := g.AddVertex("Person", key, map[string]value.Value{
				"name":   value.NewString("n-" + key),
				"age":    value.NewInt(age),
				"score":  value.NewFloat(float64(age) / 3),
				"joined": value.NewDatetime(1500000000 + age),
				"active": value.NewBool(age%2 == 0),
			})
			return err
		}
	}
	addCity := func(key string) mutation {
		return func(g *graph.Graph) error {
			_, err := g.AddVertex("City", key, map[string]value.Value{"name": value.NewString(key)})
			return err
		}
	}
	knows := func(a, b graph.VID, since int64) mutation {
		return func(g *graph.Graph) error {
			_, err := g.AddEdge("Knows", a, b, map[string]value.Value{"since": value.NewInt(since)})
			return err
		}
	}
	near := func(a, b graph.VID) mutation {
		return func(g *graph.Graph) error {
			_, err := g.AddEdge("Near", a, b, nil)
			return err
		}
	}
	setAttr := func(v graph.VID, name string, val value.Value) mutation {
		return func(g *graph.Graph) error { return g.SetVertexAttr(v, name, val) }
	}
	for i, key := range []string{"ann", "bob", "cid", "dee", "eve"} {
		ms = append(ms, addPerson(key, int64(20+i)))
	}
	ms = append(ms,
		addCity("rome"), addCity("oslo"),
		knows(0, 1, 2001), knows(1, 2, 2002), knows(2, 0, 2003), knows(3, 4, 2004),
		near(5, 6), near(6, 5), near(5, 5), // incl. parallel + self loop
		setAttr(0, "name", value.NewString("Ann Renamed")),
		setAttr(1, "age", value.NewInt(99)),
		setAttr(2, "score", value.NewFloat(3.75)),
		setAttr(3, "active", value.NewBool(true)),
		setAttr(4, "joined", value.NewDatetime(1700000000)),
		knows(4, 0, 2005),
		addPerson("fay", 31),
		knows(7, 7, 2006), // self loop, directed
		setAttr(7, "name", value.NewString("Fay")),
	)
	return ms
}

// applyPrefix replays the first n history mutations onto a fresh graph.
func applyPrefix(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g := graph.New(testSchema(t))
	for i, m := range mutationHistory()[:n] {
		if err := m(g); err != nil {
			t.Fatalf("history[%d]: %v", i, err)
		}
	}
	return g
}

// graphSig returns a canonical byte signature of the full graph state —
// the snapshot encoding, which covers schema, every vertex (type, key,
// attrs in order) and every edge (type, endpoints, attrs in order).
func graphSig(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	data, err := EncodeSnapshot(g)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFreshOpenPersistsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: emptyInit(t)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered() {
		t.Error("fresh store reports Recovered")
	}
	hist := mutationHistory()
	for i, m := range hist {
		if err := m(st.Graph()); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	stats := st.Stats()
	if stats.WALRecords != uint64(len(hist)) {
		t.Errorf("WALRecords = %d, want %d", stats.WALRecords, len(hist))
	}
	if stats.WALBytes == 0 || stats.Checkpoints != 1 || stats.Recoveries != 0 {
		t.Errorf("stats = %+v", stats)
	}
	want := graphSig(t, st.Graph())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{Init: func() (*graph.Graph, error) {
		t.Fatal("Init called on recovery")
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !st2.Recovered() {
		t.Error("reopen did not report Recovered")
	}
	if s2 := st2.Stats(); s2.Recoveries != 1 || s2.ReplayedRecords != uint64(len(hist)) {
		t.Errorf("recovery stats = %+v, want %d replayed", s2, len(hist))
	}
	if got := graphSig(t, st2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("recovered graph differs from pre-close graph")
	}
	// The recovered graph keeps accepting and persisting mutations.
	if _, err := st2.Graph().AddVertex("City", "kyiv", nil); err != nil {
		t.Fatal(err)
	}
	if st2.Stats().WALRecords != 1 {
		t.Errorf("post-recovery WALRecords = %d, want 1", st2.Stats().WALRecords)
	}
}

func TestCheckpointRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: emptyInit(t)})
	if err != nil {
		t.Fatal(err)
	}
	hist := mutationHistory()
	half := len(hist) / 2
	for _, m := range hist[:half] {
		if err := m(st.Graph()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, m := range hist[half:] {
		if err := m(st.Graph()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Checkpoints; got != 3 { // initial + 2 explicit
		t.Errorf("Checkpoints = %d, want 3", got)
	}
	want := graphSig(t, st.Graph())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Two generations retained (2 and 3); generation 1 pruned.
	snaps, wals, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0] != 2 || snaps[1] != 3 {
		t.Errorf("snapshots after prune: %v, want [2 3]", snaps)
	}
	if len(wals) != 2 || wals[0] != 2 || wals[1] != 3 {
		t.Errorf("WALs after prune: %v, want [2 3]", wals)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// Everything is in snapshot 3; nothing to replay.
	if s := st2.Stats(); s.ReplayedRecords != 0 {
		t.Errorf("replayed %d records after clean checkpoint", s.ReplayedRecords)
	}
	if got := graphSig(t, st2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("recovered graph differs after checkpointed close")
	}
}

// TestCorruptNewestSnapshotFallsBack flips bytes in the newest snapshot
// and expects recovery to fall back one generation, replaying both that
// generation's WAL and the newer one to reach the identical state.
func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: emptyInit(t)})
	if err != nil {
		t.Fatal(err)
	}
	hist := mutationHistory()
	half := len(hist) / 2
	for _, m := range hist[:half] {
		if err := m(st.Graph()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil { // snapshot 2
		t.Fatal(err)
	}
	for _, m := range hist[half:] {
		if err := m(st.Graph()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil { // snapshot 3, empty wal-3
		t.Fatal(err)
	}
	want := graphSig(t, st.Graph())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Rot the newest snapshot's midsection.
	snap3 := filepath.Join(dir, snapName(3))
	data, err := os.ReadFile(snap3)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data)/2+8 && i < len(data); i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(snap3, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if s := st2.Stats(); s.ReplayedRecords != uint64(len(hist)-half) {
		t.Errorf("replayed %d records, want %d (wal-2 tail)", s.ReplayedRecords, len(hist)-half)
	}
	if got := graphSig(t, st2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("fallback recovery diverged from pre-crash state")
	}
}

func TestOpenValidation(t *testing.T) {
	// Fresh directory without Init.
	if _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Error("fresh open without Init must error")
	}
	// WAL present without any snapshot → corrupt.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName(1)), []byte(walMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Init: emptyInit(t)}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("WAL-only dir: err = %v, want ErrCorrupt", err)
	}
	// All snapshots corrupt with no fallback → corrupt.
	dir2 := t.TempDir()
	st, err := Open(dir2, Options{Init: emptyInit(t)})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := os.WriteFile(filepath.Join(dir2, snapName(1)), []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("hopeless dir: err = %v, want ErrCorrupt", err)
	}
}

func TestClosedStoreRefusesCheckpoint(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Init: emptyInit(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err == nil {
		t.Error("Checkpoint after Close must error")
	}
	if err := st.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	// The graph remains usable in memory, just unpersisted.
	if _, err := st.Graph().AddVertex("City", "lima", nil); err != nil {
		t.Errorf("in-memory mutation after Close: %v", err)
	}
}

func TestFsyncOptionRoundTrips(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: emptyInit(t), Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mutationHistory()[:5] {
		if err := m(st.Graph()); err != nil {
			t.Fatal(err)
		}
	}
	want := graphSig(t, st.Graph())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := graphSig(t, st2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("fsync store did not round-trip")
	}
}
