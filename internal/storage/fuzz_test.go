package storage

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/value"
)

// fuzzWALSeedBytes builds a realistic WAL (magic + a few framed
// records over testSchema) for the fuzzer to mutate.
func fuzzWALSeedBytes(t testing.TB) []byte {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: emptyInit(t)})
	if err != nil {
		t.Fatal(err)
	}
	g := st.Graph()
	if _, err := g.AddVertex("Person", "ada", map[string]value.Value{"age": value.NewInt(36)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddVertex("City", "london", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("Near", 0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.SetVertexAttr(0, "name", value.NewString("Ada")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	data, err := os.ReadFile(filepath.Join(dir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzWALReplay is the satellite fuzz target: for arbitrary WAL file
// bytes, replay onto a fresh graph must never panic and must either
// succeed (torn tails are tolerated by design) or fail with the typed
// ErrCorrupt. Any other error class means the scanner trusted
// unvalidated input.
func FuzzWALReplay(f *testing.F) {
	seed := fuzzWALSeedBytes(f)
	f.Add(seed)
	f.Add([]byte(walMagic))
	f.Add([]byte{})
	f.Add([]byte("GSQLWAL2 wrong magic"))
	// Truncations at a few interior offsets (torn tails).
	for _, cut := range []int{len(walMagic) + 3, len(seed) / 2, len(seed) - 1} {
		if cut > 0 && cut < len(seed) {
			f.Add(append([]byte(nil), seed[:cut]...))
		}
	}
	// Bit flips in the header, a frame header and a payload.
	for _, pos := range []int{0, len(walMagic) + 1, len(walMagic) + 9} {
		if pos < len(seed) {
			mut := append([]byte(nil), seed...)
			mut[pos] ^= 0x40
			f.Add(mut)
		}
	}
	// A CRC-valid frame whose payload is garbage: exercises applyRecord's
	// validation rather than just the frame scanner.
	bogus := []byte{0xFF, 0x01, 0x02}
	frame := binary.LittleEndian.AppendUint32([]byte(walMagic), uint32(len(bogus)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(bogus))
	f.Add(append(frame, bogus...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), walName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		g := graph.New(testSchema(t))
		scan, err := replayWAL(path, g)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("replayWAL: non-ErrCorrupt failure %v", err)
			}
			return
		}
		if scan.validLen < int64(len(walMagic)) || scan.validLen > int64(len(data))+int64(len(walMagic)) {
			t.Fatalf("replayWAL: validLen %d out of range for %d input bytes", scan.validLen, len(data))
		}
	})
}

// FuzzSnapshotDecode: arbitrary snapshot bytes must decode, or fail
// with ErrCorrupt — never panic, never return a half-built graph with
// a nil error.
func FuzzSnapshotDecode(f *testing.F) {
	g := graph.BuildRandomMixedGraph(5, 12, 42)
	snap, err := EncodeSnapshot(g)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add([]byte{})
	f.Add([]byte(snapMagic))
	for _, cut := range []int{len(snapMagic) + 2, len(snap) / 2, len(snap) - 1} {
		if cut > 0 && cut < len(snap) {
			f.Add(append([]byte(nil), snap[:cut]...))
		}
	}
	for _, pos := range []int{3, len(snapMagic) + 5, len(snap) / 3, 2 * len(snap) / 3} {
		if pos < len(snap) {
			mut := append([]byte(nil), snap...)
			mut[pos] ^= 0x10
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeSnapshot: non-ErrCorrupt failure %v", err)
			}
			return
		}
		if g == nil {
			t.Fatal("DecodeSnapshot: nil graph with nil error")
		}
	})
}
