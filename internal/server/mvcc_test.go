package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gsqlgo/internal/core"
	"gsqlgo/internal/storage"
)

// censusQuery reports the pinned snapshot's vertex count and summed
// Knows degree in ONE select block — both numbers come from the same
// epoch by construction, so a torn pair proves an isolation bug. For
// the undirected Knows type the degree sum is exactly 2·edges.
const censusQuery = `CREATE QUERY Census() {
  SumAccum<int> @@v;
  SumAccum<int> @@d;
  S = SELECT p FROM Person:p ACCUM @@v += 1, @@d += p.outdegree("Knows");
  PRINT @@v, @@d;
}`

const holdQuery = `CREATE QUERY Hold(int n) {
  SumAccum<int> @@x;
  WHILE true LIMIT n DO @@x += 1; END;
  RETURN @@x;
}`

// metricValue scrapes one unlabeled metric off GET /metrics.
func metricValue(s *Server, name string) (float64, bool) {
	for _, line := range strings.Split(do(s, "GET", "/metrics", "").Body.String(), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return 0, false
			}
			return f, true
		}
	}
	return 0, false
}

// TestMVCCMetricsAndTraceEpoch is the observability e2e for snapshot
// reads: the three gsqld_mvcc_* series are exported with live values
// (the pinned gauge visibly rises during a run and returns to zero,
// folds accumulate, delta tracks the graph), and a traced run's root
// span carries the snapshot_epoch it pinned.
func TestMVCCMetricsAndTraceEpoch(t *testing.T) {
	g, _ := socialInit()
	g.SetFoldThreshold(4) // tiny threshold so HTTP mutations fold visibly
	eng := core.New(g, core.Options{Workers: 2})
	srv := New(Config{Engine: eng})
	for _, src := range []string{censusQuery, holdQuery} {
		if w := do(srv, "POST", "/queries", src); w.Code != http.StatusCreated {
			t.Fatalf("install: %d %s", w.Code, w.Body)
		}
	}

	// Mutations over HTTP advance the epoch and cross the fold threshold.
	for i := 0; i < 10; i++ {
		addPerson(t, srv, fmt.Sprintf("p%d", i), 20+i)
		if i > 0 {
			addKnows(t, srv, fmt.Sprintf("p%d", i), fmt.Sprintf("p%d", i-1), 2000+i)
		}
	}
	st := g.MVCCStats()
	if st.Folds == 0 {
		t.Fatalf("no folds after 19 mutations at threshold 4: %+v", st)
	}

	// The pinned gauge rises while a run holds its snapshot...
	holdDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		holdDone <- do(srv, "POST", "/queries/Hold/run",
			`{"params":{"n":2000000000},"timeout_ms":2000}`)
	}()
	sawPinned := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if v, ok := metricValue(srv, "gsqld_mvcc_snapshots_pinned"); ok && v >= 1 {
			sawPinned = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawPinned {
		t.Fatal("gsqld_mvcc_snapshots_pinned never rose during a run")
	}
	<-holdDone // 200 or 408, either way the snapshot is released
	// ...and returns to zero once the run releases it.
	if v, ok := metricValue(srv, "gsqld_mvcc_snapshots_pinned"); !ok || v != 0 {
		t.Fatalf("gsqld_mvcc_snapshots_pinned = %v (present=%v), want 0", v, ok)
	}

	// Folds counter and delta gauge mirror the graph's MVCC stats.
	if v, ok := metricValue(srv, "gsqld_mvcc_folds_total"); !ok || uint64(v) != st.Folds {
		t.Fatalf("gsqld_mvcc_folds_total = %v (present=%v), want %d", v, ok, st.Folds)
	}
	if v, ok := metricValue(srv, "gsqld_mvcc_delta_records"); !ok || uint64(v) != g.MVCCStats().DeltaRecords {
		t.Fatalf("gsqld_mvcc_delta_records = %v (present=%v), want %d", v, ok, g.MVCCStats().DeltaRecords)
	}

	// A traced run records which epoch it pinned.
	w := do(srv, "POST", "/queries/Census/run?trace=1", "{}")
	if w.Code != http.StatusOK {
		t.Fatalf("traced run: %d %s", w.Code, w.Body)
	}
	resp := decode[struct {
		Trace struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		} `json:"trace"`
	}](t, w)
	got, ok := resp.Trace.Attrs["snapshot_epoch"].(float64)
	if !ok {
		t.Fatalf("trace root has no snapshot_epoch attr: %+v", resp.Trace.Attrs)
	}
	if uint64(got) != g.Epoch() {
		t.Fatalf("snapshot_epoch = %d, want head epoch %d", uint64(got), g.Epoch())
	}
}

// censusPair runs Census and returns the (vertices, degree-sum) pair
// its pinned snapshot saw.
func censusPair(t *testing.T, s *Server) (int, int) {
	t.Helper()
	w := do(s, "POST", "/queries/Census/run", "{}")
	if w.Code != http.StatusOK {
		t.Fatalf("census run: %d %s", w.Code, w.Body)
	}
	// PRINT @@v, @@d renders one single-cell table per expression.
	resp := decode[struct {
		Printed []tableJSON `json:"printed"`
	}](t, w)
	if len(resp.Printed) != 2 ||
		len(resp.Printed[0].Rows) == 0 || len(resp.Printed[0].Rows[0]) == 0 ||
		len(resp.Printed[1].Rows) == 0 || len(resp.Printed[1].Rows[0]) == 0 {
		t.Fatalf("census shape: %+v", resp.Printed)
	}
	return int(resp.Printed[0].Rows[0][0].(float64)), int(resp.Printed[1].Rows[0][0].(float64))
}

// TestMVCCStressSerialEpochOrder is the whole-system isolation stress
// (run it under -race): one writer grows a Person chain over HTTP
// (vertex k, then edge k→k−1), concurrent readers run Census on the
// leader AND on a bound replication follower, and a checkpointer
// rotates the WAL throughout. Every result must be bit-identical to
// some serial epoch order: the chain makes that checkable — a snapshot
// between the two halves of step k sees degreeSum = 2·(v−2), one at a
// step boundary sees 2·(v−1), and NOTHING else exists in any serial
// order. Readers also check snapshots never travel backwards, and the
// follower must converge to a bit-identical graph at the end.
func TestMVCCStressSerialEpochOrder(t *testing.T) {
	leaderDir, replicaDir := t.TempDir(), t.TempDir()
	st, err := storage.Open(leaderDir, storage.Options{Init: socialInit})
	if err != nil {
		t.Fatal(err)
	}
	st.Graph().SetFoldThreshold(64) // folds happen mid-traffic, not just at the end
	leader := New(Config{Engine: core.New(st.Graph(), core.Options{Workers: 2}), Store: st})
	ts := httptest.NewServer(leader)
	defer ts.Close()
	if w := do(leader, "POST", "/queries", censusQuery); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	addPerson(t, leader, "p0", 20)
	if w := do(leader, "POST", "/admin/checkpoint", "{}"); w.Code != http.StatusOK {
		t.Fatalf("seed checkpoint: %d %s", w.Code, w.Body)
	}

	rep := startReplica(t, ts.URL, replicaDir)
	if w := do(rep.srv, "POST", "/queries", censusQuery); w.Code != http.StatusCreated {
		t.Fatalf("follower install: %d %s", w.Code, w.Body)
	}

	const steps = 300
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 1; i <= steps; i++ {
			addPerson(t, leader, fmt.Sprintf("p%d", i), 20+i%60)
			addKnows(t, leader, fmt.Sprintf("p%d", i), fmt.Sprintf("p%d", i-1), 2000+i)
		}
	}()

	// checkConsistent asserts a census pair could have come from SOME
	// epoch of the serial mutation order, and that epochs only advance
	// within one reader's sequence of runs.
	checkConsistent := func(who string, v, d, lastV int) (int, error) {
		if v < lastV {
			return v, fmt.Errorf("%s: snapshot went backwards: %d vertices after %d", who, v, lastV)
		}
		if d != 2*(v-1) && !(v >= 2 && d == 2*(v-2)) {
			return v, fmt.Errorf("%s: torn snapshot: %d vertices with degree sum %d "+
				"(no serial epoch order produces this pair)", who, v, d)
		}
		return v, nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	reader := func(who string, s *Server) {
		defer wg.Done()
		lastV := 0
		for done := false; !done; {
			select {
			case <-writerDone:
				done = true
			default:
			}
			v, d := censusPair(t, s)
			var err error
			if lastV, err = checkConsistent(who, v, d, lastV); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}
	wg.Add(3)
	go reader("leader-1", leader)
	go reader("leader-2", leader)
	go reader("follower", rep.srv)
	wg.Add(1)
	go func() { // checkpointer: WAL rotations race the readers and the writer
		defer wg.Done()
		for done := false; !done; {
			select {
			case <-writerDone:
				done = true
			default:
			}
			if w := do(leader, "POST", "/admin/checkpoint", "{}"); w.Code != http.StatusOK {
				errs <- fmt.Errorf("checkpoint: %d %s", w.Code, w.Body)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		errs <- nil
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The leader folded mid-traffic, and folding never broke a reader.
	if folds := st.Graph().MVCCStats().Folds; folds == 0 {
		t.Fatalf("no folds during %d mutations at threshold 64", 2*steps)
	}

	// Quiescent convergence: the follower's graph is bit-identical to
	// the leader's (canonical snapshot encodings match), so concurrent
	// apply-under-wmu never raced a snapshot reader into divergence.
	waitReplicaCaughtUp(t, rep, st)
	if !bytes.Equal(snapshotSig(t, st.Graph()), snapshotSig(t, rep.fw.Graph())) {
		t.Fatal("follower snapshot signature diverged from leader under stress")
	}
	v, d := censusPair(t, leader)
	if v != steps+1 || d != 2*steps {
		t.Fatalf("final census = (%d, %d), want (%d, %d)", v, d, steps+1, 2*steps)
	}

	rep.stop(t)
	_ = leader.Shutdown(context.Background())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
