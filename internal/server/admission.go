package server

import (
	"context"
	"fmt"
	"time"

	"gsqlgo/internal/core"
)

// admission is the serving layer's admission controller: a weighted
// semaphore of run slots sized from the engine's worker budget, with a
// bounded wait queue in front of it. A request either holds a queue
// slot (bounded, rejected immediately with ErrOverload when full),
// then a run slot (bounded wait, rejected with ErrOverload on
// timeout), or it never touches the engine — overload sheds load at
// the door instead of stacking goroutines.
type admission struct {
	running chan struct{} // run slots; capacity = max concurrent runs
	queued  chan struct{} // admitted incl. waiting; capacity = running + queue depth
	maxWait time.Duration // longest a request may wait for a run slot
}

func newAdmission(maxConcurrent, maxQueue int, maxWait time.Duration) *admission {
	return &admission{
		running: make(chan struct{}, maxConcurrent),
		queued:  make(chan struct{}, maxConcurrent+maxQueue),
		maxWait: maxWait,
	}
}

// acquire admits one request or fails typed: ErrOverload (queue full /
// slot wait timeout) or ErrCancelled (the request's own context died
// while queued). On nil return the caller must release().
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.queued <- struct{}{}:
	default:
		return fmt.Errorf("%w: admission queue full (%d waiting)", core.ErrOverload, cap(a.queued)-cap(a.running))
	}
	// Fast path: a run slot is free right now.
	select {
	case a.running <- struct{}{}:
		return nil
	default:
	}
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.running <- struct{}{}:
		return nil
	case <-timer.C:
		<-a.queued
		return fmt.Errorf("%w: no run slot within %v", core.ErrOverload, a.maxWait)
	case <-ctx.Done():
		<-a.queued
		return fmt.Errorf("%w: %v", core.ErrCancelled, context.Cause(ctx))
	}
}

// release returns both slots.
func (a *admission) release() {
	<-a.running
	<-a.queued
}
