package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/storage"
	"gsqlgo/internal/trace"
	"gsqlgo/internal/value"
)

// Mutation and durability routes. These exist only in the serving
// layer: the engine's read path stays oblivious to persistence, and
// the graph's own mutation methods stay single-writer. The server
// enforces that discipline with wmu — mutation handlers, checkpoints,
// and a bound follower's apply loop hold it exclusively — while runs
// never touch it: each pins an MVCC snapshot and reads lock-free.
// Under -fsync the disk barrier happens AFTER wmu is released
// (storage.Options.DeferSync + Store.WaitDurable), so concurrent HTTP
// writers share group-commit fsync cohorts instead of serializing one
// barrier each inside the lock.

type vertexRef struct {
	Type string `json:"type"`
	Key  string `json:"key"`
}

type addVertexRequest struct {
	Type  string                     `json:"type"`
	Key   string                     `json:"key"`
	Attrs map[string]json.RawMessage `json:"attrs"`
}

type addEdgeRequest struct {
	Type  string                     `json:"type"`
	Src   vertexRef                  `json:"src"`
	Dst   vertexRef                  `json:"dst"`
	Attrs map[string]json.RawMessage `json:"attrs"`
}

type mutationResponse struct {
	ID       int64  `json:"id"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Epoch    uint64 `json:"epoch"`
}

type checkpointResponse struct {
	Dir         string `json:"dir"`
	Checkpoints uint64 `json:"checkpoints"`
	WALRecords  uint64 `json:"wal_records"`
	WALBytes    uint64 `json:"wal_bytes"`
}

// decodeAttrs converts a JSON attrs object into a graph attribute map,
// guided by the type's declared AttrDefs (same encodings decodeParam
// accepts for query parameters). Unknown names are rejected here so
// the client hears about typos; missing names fall to the graph's
// zero-value defaulting.
func decodeAttrs(defs []graph.AttrDef, raw map[string]json.RawMessage) (map[string]value.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	byName := make(map[string]graph.AttrType, len(defs))
	for _, d := range defs {
		byName[d.Name] = d.Type
	}
	out := make(map[string]value.Value, len(raw))
	for name, msg := range raw {
		at, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown attribute %q", name)
		}
		v, err := decodeAttrValue(at, msg)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %w", name, err)
		}
		out[name] = v
	}
	return out, nil
}

func decodeAttrValue(at graph.AttrType, msg json.RawMessage) (value.Value, error) {
	dec := json.NewDecoder(strings.NewReader(string(msg)))
	dec.UseNumber()
	var rv any
	if err := dec.Decode(&rv); err != nil {
		return value.Null, err
	}
	switch at {
	case graph.AttrInt:
		if x, ok := rv.(json.Number); ok {
			i, err := x.Int64()
			if err != nil {
				return value.Null, fmt.Errorf("expected integer, got %v", x)
			}
			return value.NewInt(i), nil
		}
		return value.Null, fmt.Errorf("expected integer, got %T", rv)
	case graph.AttrFloat:
		if x, ok := rv.(json.Number); ok {
			f, err := x.Float64()
			if err != nil {
				return value.Null, err
			}
			return value.NewFloat(f), nil
		}
		return value.Null, fmt.Errorf("expected number, got %T", rv)
	case graph.AttrString:
		if x, ok := rv.(string); ok {
			return value.NewString(x), nil
		}
		return value.Null, fmt.Errorf("expected string, got %T", rv)
	case graph.AttrBool:
		if x, ok := rv.(bool); ok {
			return value.NewBool(x), nil
		}
		return value.Null, fmt.Errorf("expected bool, got %T", rv)
	case graph.AttrDatetime:
		switch x := rv.(type) {
		case string:
			return graph.ParseDatetime(x)
		case json.Number:
			i, err := x.Int64()
			if err != nil {
				return value.Null, err
			}
			return value.NewDatetime(i), nil
		}
		return value.Null, fmt.Errorf("expected datetime string or Unix seconds, got %T", rv)
	}
	return value.Null, fmt.Errorf("unsupported attribute type %v", at)
}

func readMutationBody(w http.ResponseWriter, r *http.Request, into any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "reading body: " + err.Error(), Code: "bad_request"})
		return false
	}
	if err := json.Unmarshal(body, into); err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "decoding JSON body: " + err.Error(), Code: "bad_request"})
		return false
	}
	return true
}

// handleAddVertex inserts one vertex: {"type","key","attrs"} → 201
// with the assigned id. Duplicate (type,key) is 409. When a store is
// attached the insert hits the WAL before the response is written.
func (s *Server) handleAddVertex(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) || s.rejectReadOnly(w) {
		return
	}
	var req addVertexRequest
	if !readMutationBody(w, r, &req) {
		return
	}
	g := s.eng.Graph()
	vt := g.Schema.VertexType(req.Type)
	if vt == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("unknown vertex type %q", req.Type), Code: "unknown_type"})
		return
	}
	attrs, err := decodeAttrs(vt.Attrs, req.Attrs)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Code: "bad_attrs"})
		return
	}
	done := s.traceMutation(r, "add_vertex")
	s.wmu.Lock()
	id, err := g.AddVertex(req.Type, req.Key, attrs)
	resp := mutationResponse{ID: int64(id),
		Vertices: g.NumVertices(), Edges: g.NumEdges(), Epoch: g.Epoch()}
	seq, off := s.mutationPosition(err)
	s.wmu.Unlock()
	err = s.awaitDurable(err, seq, off)
	done(err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

// mutationPosition captures the WAL position a just-applied mutation
// reached. Called under wmu so the position is exactly this mutation's
// frame end; (0, 0) when there is nothing to make durable.
func (s *Server) mutationPosition(err error) (uint64, int64) {
	if err != nil || s.cfg.Store == nil {
		return 0, 0
	}
	return s.cfg.Store.Position()
}

// awaitDurable blocks until the captured WAL position is on disk —
// OUTSIDE wmu, so writers waiting here together share one fsync
// (group commit) while further mutations and every read proceed. A
// no-op when the mutation failed, no store is attached, or the store
// does not fsync.
func (s *Server) awaitDurable(err error, seq uint64, off int64) error {
	if err != nil || s.cfg.Store == nil || (seq == 0 && off == 0) {
		return err
	}
	return s.cfg.Store.WaitDurable(seq, off)
}

type setAttrsRequest struct {
	Type  string                     `json:"type"`
	Key   string                     `json:"key"`
	Attrs map[string]json.RawMessage `json:"attrs"`
}

// handleSetVertexAttrs updates attributes of one key-addressed vertex:
// {"type","key","attrs":{...}} → 200 with the vertex id. Each update is
// WAL-logged individually through the observer path, exactly like the
// in-process SetVertexAttr call sites — the SNB-shaped update stream's
// set_attr records land here.
func (s *Server) handleSetVertexAttrs(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) || s.rejectReadOnly(w) {
		return
	}
	var req setAttrsRequest
	if !readMutationBody(w, r, &req) {
		return
	}
	g := s.eng.Graph()
	vt := g.Schema.VertexType(req.Type)
	if vt == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("unknown vertex type %q", req.Type), Code: "unknown_type"})
		return
	}
	attrs, err := decodeAttrs(vt.Attrs, req.Attrs)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Code: "bad_attrs"})
		return
	}
	if len(attrs) == 0 {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "attrs must name at least one attribute", Code: "bad_attrs"})
		return
	}
	// Key resolution and the updates share one exclusive section for the
	// same reason handleAddEdge's endpoint lookups do: the key index is
	// written by concurrent vertex POSTs.
	done := s.traceMutation(r, "set_attr")
	s.wmu.Lock()
	id, ok := g.VertexByKey(req.Type, req.Key)
	if !ok {
		s.wmu.Unlock()
		done(nil)
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("no %s vertex with key %q", req.Type, req.Key), Code: "unknown_vertex"})
		return
	}
	for name, val := range attrs {
		if err = g.SetVertexAttr(id, name, val); err != nil {
			break
		}
	}
	resp := mutationResponse{ID: int64(id),
		Vertices: g.NumVertices(), Edges: g.NumEdges(), Epoch: g.Epoch()}
	seq, off := s.mutationPosition(err)
	s.wmu.Unlock()
	err = s.awaitDurable(err, seq, off)
	done(err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAddEdge inserts one edge between key-addressed endpoints:
// {"type","src":{"type","key"},"dst":{...},"attrs"} → 201 with the
// assigned id. Unknown endpoints are 404.
func (s *Server) handleAddEdge(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) || s.rejectReadOnly(w) {
		return
	}
	var req addEdgeRequest
	if !readMutationBody(w, r, &req) {
		return
	}
	g := s.eng.Graph()
	et := g.Schema.EdgeType(req.Type)
	if et == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("unknown edge type %q", req.Type), Code: "unknown_type"})
		return
	}
	attrs, err := decodeAttrs(et.Attrs, req.Attrs)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Code: "bad_attrs"})
		return
	}
	// Endpoint resolution reads the key index, which handleAddVertex
	// writes; both lookups and the insert share one exclusive section so
	// the resolved VIDs and the insert observe one writer serialization
	// point (a concurrent vertex POST lands wholly before or after).
	done := s.traceMutation(r, "add_edge")
	s.wmu.Lock()
	src, ok := g.VertexByKey(req.Src.Type, req.Src.Key)
	if !ok {
		s.wmu.Unlock()
		done(nil)
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("no %s vertex with key %q", req.Src.Type, req.Src.Key), Code: "unknown_vertex"})
		return
	}
	dst, ok := g.VertexByKey(req.Dst.Type, req.Dst.Key)
	if !ok {
		s.wmu.Unlock()
		done(nil)
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("no %s vertex with key %q", req.Dst.Type, req.Dst.Key), Code: "unknown_vertex"})
		return
	}
	id, err := g.AddEdge(req.Type, src, dst, attrs)
	resp := mutationResponse{ID: int64(id),
		Vertices: g.NumVertices(), Edges: g.NumEdges(), Epoch: g.Epoch()}
	seq, off := s.mutationPosition(err)
	s.wmu.Unlock()
	err = s.awaitDurable(err, seq, off)
	done(err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

// traceMutation begins a span tree for a traced mutation request
// (?trace=1 or a cross-process X-Trace-Id) — a "mutation" root (op +
// request id + trace id) with a "wal_append" child bracketing the
// logged mutation: validate → WAL append → apply, the WAL write
// dominating once fsync is on ("apply" when no store is attached and
// nothing hits a log). The returned func finishes the trace and
// retains it in the /debug/traces ring; for an untraced request it is
// a no-op, so call sites stay branch-free.
func (s *Server) traceMutation(r *http.Request, op string) func(err error) {
	if !traceWanted(r) && traceID(r.Context()) == "" {
		return func(error) {}
	}
	root := startTrace("mutation", r)
	root.SetStr("op", op)
	root.SetBool("durable", s.cfg.Store != nil)
	name := "apply"
	var before uint64
	if st := s.cfg.Store; st != nil {
		name = "wal_append"
		before = st.Stats().WALBytes
	}
	wsp := root.Start(name)
	return func(err error) {
		if st := s.cfg.Store; st != nil {
			wsp.SetInt("bytes", int64(st.Stats().WALBytes-before))
		}
		wsp.End()
		if err != nil {
			root.SetStr("error", err.Error())
		}
		root.End()
		s.ring.Add(root)
	}
}

// handleCheckpoint snapshots the graph and rotates the WAL. It holds
// wmu — a checkpoint must see a graph consistent with the WAL position
// it seals, so mutations are excluded — but runs proceed untouched on
// their pinned snapshots.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) || s.rejectReadOnly(w) {
		return
	}
	st := s.cfg.Store
	if st == nil {
		writeJSON(w, http.StatusConflict,
			errorResponse{Error: "server has no durable store attached (-data-dir)", Code: "no_store"})
		return
	}
	var root *trace.Span
	if traceWanted(r) {
		root = startTrace("checkpoint", r)
	}
	csp := root.Start("snapshot_write")
	s.wmu.Lock()
	err := st.Checkpoint()
	s.wmu.Unlock()
	csp.End()
	stats := st.Stats()
	if root != nil {
		root.SetInt("checkpoints", int64(stats.Checkpoints))
		root.SetInt("wal_records", int64(stats.WALRecords))
		root.SetInt("wal_bytes", int64(stats.WALBytes))
		if err != nil {
			root.SetStr("error", err.Error())
		}
		root.End()
		s.ring.Add(root)
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError,
			errorResponse{Error: err.Error(), Code: "checkpoint_failed"})
		return
	}
	writeJSON(w, http.StatusOK, checkpointResponse{
		Dir:         st.Dir(),
		Checkpoints: stats.Checkpoints,
		WALRecords:  stats.WALRecords,
		WALBytes:    stats.WALBytes,
	})
}

// syncStorageMetrics folds the store's monotonic counters into the
// registry by delta (the registry has no callback gauges, and the
// counters must also reflect WAL records written by gsql replays
// outside any handler). In follower mode the store is the follower's
// current one, and a re-bootstrap replaces it with a fresh store whose
// counters restart from zero — a counter that went backwards marks
// that swap, and the delta baseline resets with it.
func (s *Server) syncStorageMetrics() {
	st := s.store()
	if st == nil {
		return
	}
	now := st.Stats()
	s.storageMu.Lock()
	last := s.lastStorage
	if now.WALRecords < last.WALRecords || now.WALBytes < last.WALBytes ||
		now.Checkpoints < last.Checkpoints || now.Recoveries < last.Recoveries {
		last = storage.Stats{}
	}
	s.lastStorage = now
	s.storageMu.Unlock()
	s.mWALRecords.Add(now.WALRecords - last.WALRecords)
	s.mWALBytes.Add(now.WALBytes - last.WALBytes)
	s.mCheckpoints.Add(now.Checkpoints - last.Checkpoints)
	s.mRecoveries.Add(now.Recoveries - last.Recoveries)
}

// syncReplicationMetrics folds the follower's counters into the
// registry and refreshes the lag gauges (no-op outside follower mode).
// Follower counters live on the Follower, not its store, so they never
// reset across a re-bootstrap.
func (s *Server) syncReplicationMetrics() {
	fw := s.cfg.Follower
	if fw == nil {
		return
	}
	now := fw.Stats()
	s.replMu.Lock()
	last := s.lastRepl
	s.lastRepl = now
	s.replMu.Unlock()
	s.mReplApplied.Add(now.RecordsApplied - last.RecordsApplied)
	s.mReplBytes.Add(now.BytesApplied - last.BytesApplied)
	s.mReplBootstraps.Add(now.Bootstraps - last.Bootstraps)
	s.mReplReconnects.Add(now.Reconnects - last.Reconnects)
	s.mReplLagRecords.Set(now.LagRecords)
	s.mReplLagBytes.Set(now.LagBytes)
}

// syncMVCCMetrics refreshes the MVCC gauges and folds the graph's fold
// counter into the registry by delta. The delta-records gauge is read
// straight off the live graph's fold point; a follower re-bootstrap
// swaps in a fresh graph whose counters restart, which shows up as a
// fold count going backwards — the baseline resets with it.
func (s *Server) syncMVCCMetrics() {
	st := s.eng.Graph().MVCCStats()
	s.mvccMu.Lock()
	last := s.lastFolds
	if st.Folds < last {
		last = 0
	}
	s.lastFolds = st.Folds
	s.mvccMu.Unlock()
	s.mMVCCFolds.Add(st.Folds - last)
	s.mMVCCDelta.Set(int64(st.DeltaRecords))
}
