package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/replication"
	"gsqlgo/internal/storage"
)

// replicaHarness is one follower process life: store + engine + server
// + the Run goroutine, wired exactly the way cmd/gsqld wires them.
type replicaHarness struct {
	fw     *replication.Follower
	eng    *core.Engine
	srv    *Server
	cancel context.CancelFunc
	done   chan error
}

func startReplica(t *testing.T, leaderURL, dir string) *replicaHarness {
	t.Helper()
	fw, err := replication.OpenFollower(context.Background(), replication.FollowerConfig{
		LeaderURL: leaderURL,
		Dir:       dir,
		// Small chunks and a short poll so catch-up takes many fetches —
		// the lag gauge gets observable intermediate values.
		PollWait: 50 * time.Millisecond,
		MaxChunk: 2048,
		Backoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(fw.Graph(), core.Options{Workers: 2})
	srv := New(Config{Engine: eng, Follower: fw})
	fw.Bind(srv.ReplicationLock(), func(st *storage.Store) { eng.SetGraph(st.Graph()) }, srv.AddTrace)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fw.Run(ctx) }()
	return &replicaHarness{fw: fw, eng: eng, srv: srv, cancel: cancel, done: done}
}

func (h *replicaHarness) stop(t *testing.T) {
	t.Helper()
	h.cancel()
	select {
	case err := <-h.done:
		if err != nil {
			t.Fatalf("follower run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower did not stop within 10s")
	}
	if err := h.fw.Close(); err != nil {
		t.Fatal(err)
	}
}

// waitReplicaCaughtUp polls until the follower's position reaches the
// leader's current one. Call with the leader quiescent.
func waitReplicaCaughtUp(t *testing.T, h *replicaHarness, leader *storage.Store) {
	t.Helper()
	wantSeq, wantOff := leader.Position()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		seq, off := h.fw.Position()
		if seq == wantSeq && off == wantOff {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	seq, off := h.fw.Position()
	t.Fatalf("follower stuck at (%d, %d), leader at (%d, %d)", seq, off, wantSeq, wantOff)
}

// lagGauge scrapes gsqld_replication_lag_records off the follower's
// /metrics endpoint. Returns (value, true) or (0, false) if absent.
func lagGauge(s *Server) (int64, bool) {
	for _, line := range strings.Split(do(s, "GET", "/metrics", "").Body.String(), "\n") {
		if v, ok := strings.CutPrefix(line, "gsqld_replication_lag_records "); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return 0, false
			}
			return n, true
		}
	}
	return 0, false
}

func snapshotSig(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	data, err := storage.EncodeSnapshot(g)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func addPerson(t *testing.T, s *Server, key string, age int) {
	t.Helper()
	body := fmt.Sprintf(`{"type":"Person","key":%q,"attrs":{"name":%q,"age":%d}}`,
		key, "n-"+key, age)
	if w := do(s, "POST", "/graph/vertices", body); w.Code != http.StatusCreated {
		t.Fatalf("add vertex %s: %d %s", key, w.Code, w.Body)
	}
}

func addKnows(t *testing.T, s *Server, src, dst string, since int) {
	t.Helper()
	body := fmt.Sprintf(`{"type":"Knows","src":{"type":"Person","key":%q},"dst":{"type":"Person","key":%q},"attrs":{"since":%d}}`,
		src, dst, since)
	if w := do(s, "POST", "/graph/edges", body); w.Code != http.StatusCreated {
		t.Fatalf("add edge %s-%s: %d %s", src, dst, w.Code, w.Body)
	}
}

func installDegree(t *testing.T, s *Server) {
	t.Helper()
	// do() sends no Content-Type, so the install route reads raw GSQL.
	if w := do(s, "POST", "/queries", degreeQuery); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
}

func healthRole(t *testing.T, s *Server) string {
	t.Helper()
	return decode[map[string]string](t, do(s, "GET", "/healthz", ""))["role"]
}

// TestReplicationEndToEnd is the acceptance test for the replication
// subsystem at the serving layer: a leader takes >10k mutations over
// HTTP while a follower bootstraps, tails, serves installed read
// queries throughout, rejects writes with 403 read_only, survives a
// restart mid-tail, and converges to a bit-identical graph — with the
// lag gauge going visibly nonzero during catch-up and exactly zero
// after.
func TestReplicationEndToEnd(t *testing.T) {
	leaderDir, replicaDir := t.TempDir(), t.TempDir()
	st, err := storage.Open(leaderDir, storage.Options{Init: socialInit})
	if err != nil {
		t.Fatal(err)
	}
	leader := New(Config{Engine: core.New(st.Graph(), core.Options{Workers: 2}), Store: st})
	ts := httptest.NewServer(leader)
	defer ts.Close()
	if role := healthRole(t, leader); role != "leader" {
		t.Fatalf("leader role = %q", role)
	}

	// Seed data, then checkpoint so the follower's bootstrap snapshot
	// actually carries state (not just the empty seed generation).
	installDegree(t, leader)
	const seed = 100
	for i := 0; i < seed; i++ {
		addPerson(t, leader, fmt.Sprintf("seed-%d", i), 20+i%50)
	}
	if w := do(leader, "POST", "/admin/checkpoint", "{}"); w.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", w.Code, w.Body)
	}

	// ---- follower process one: bootstrap + tail under live writes ----
	rep := startReplica(t, ts.URL, replicaDir)
	if role := healthRole(t, rep.srv); role != "follower" {
		t.Fatalf("follower role = %q", role)
	}
	installDegree(t, rep.srv)

	// Mutations and checkpoints are refused with the typed read-only
	// error; reads keep working. The rejection advertises the leader in
	// both the Leader header and the body so a client (gsqlbench's load
	// client does exactly this) can redirect the write with no
	// out-of-band configuration.
	for _, route := range []string{"/graph/vertices", "/graph/vertices/attrs", "/graph/edges", "/admin/checkpoint"} {
		w := do(rep.srv, "POST", route, `{"type":"Person","key":"x"}`)
		if w.Code != http.StatusForbidden {
			t.Fatalf("follower POST %s: %d, want 403", route, w.Code)
		}
		if got := w.Header().Get("Leader"); got != ts.URL {
			t.Fatalf("follower POST %s: Leader header %q, want %q", route, got, ts.URL)
		}
		resp := decode[errorResponse](t, w)
		if resp.Code != "read_only" {
			t.Fatalf("follower POST %s: code %q, want read_only", route, resp.Code)
		}
		if resp.Leader != ts.URL {
			t.Fatalf("follower POST %s: body leader %q, want %q", route, resp.Leader, ts.URL)
		}
	}

	// Phase A: 5k+ writes on the leader while the main goroutine keeps
	// reading from the follower and sampling its lag gauge.
	const phaseA = 5000
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < phaseA; i++ {
			addPerson(t, leader, fmt.Sprintf("a-%d", i), i%80)
			if i%500 == 499 {
				addKnows(t, leader, fmt.Sprintf("a-%d", i), fmt.Sprintf("a-%d", i-1), 2000+i)
			}
		}
	}()
	var maxLag int64
	reads := 0
	for done := false; !done; {
		select {
		case <-writerDone:
			done = true
		default:
		}
		if w := do(rep.srv, "POST", "/queries/Degree/run", "{}"); w.Code != http.StatusOK {
			t.Fatalf("follower read during tail: %d %s", w.Code, w.Body)
		}
		reads++
		if lag, ok := lagGauge(rep.srv); ok && lag > maxLag {
			maxLag = lag
		}
	}
	if reads == 0 {
		t.Fatal("no follower reads ran during the write phase")
	}

	// Stop the follower mid-tail — phase B happens while it is down.
	rep.stop(t)

	// Phase B: more writes and a WAL rotation for process two to cross.
	const phaseB = 5000
	for i := 0; i < phaseB; i++ {
		addPerson(t, leader, fmt.Sprintf("b-%d", i), i%80)
	}
	if w := do(leader, "POST", "/admin/checkpoint", "{}"); w.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", w.Code, w.Body)
	}
	for i := 0; i < 500; i++ {
		addPerson(t, leader, fmt.Sprintf("b2-%d", i), i%80)
	}

	// ---- follower process two: resume from local store, converge ----
	rep2 := startReplica(t, ts.URL, replicaDir)
	installDegree(t, rep2.srv)
	waitReplicaCaughtUp(t, rep2, st)

	// Resumed, not re-bootstrapped: the position came from the local
	// store, so no snapshot fetch happened in this process life.
	stats := rep2.fw.Stats()
	if stats.Bootstraps != 0 {
		t.Fatalf("restart re-bootstrapped %d times, want 0", stats.Bootstraps)
	}
	if stats.RecordsApplied == 0 {
		t.Fatal("restarted follower applied no records")
	}

	// Lag went nonzero under load and settles to exactly zero once
	// caught up against a quiescent leader.
	if maxLag == 0 {
		t.Fatal("lag gauge never went nonzero during catch-up")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		lag, ok := lagGauge(rep2.srv)
		if ok && lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag gauge stuck at %d (present=%v), want 0", lag, ok)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Bit-identical convergence: canonical snapshot encodings match.
	if !bytes.Equal(snapshotSig(t, st.Graph()), snapshotSig(t, rep2.fw.Graph())) {
		t.Fatal("follower snapshot signature diverged from leader")
	}
	wantV := seed + phaseA + phaseB + 500
	if got := rep2.fw.Graph().NumVertices(); got != wantV {
		t.Fatalf("follower has %d vertices, want %d", got, wantV)
	}

	// Crossing the phase-B checkpoint left a rotation span in the
	// follower's trace ring.
	if traces := do(rep2.srv, "GET", "/debug/traces", "").Body.String(); !strings.Contains(traces, "replication.rotate") {
		t.Fatalf("follower traces missing replication.rotate:\n%s", traces)
	}

	// Replication counters are exported on the follower's /metrics.
	mbody := do(rep2.srv, "GET", "/metrics", "").Body.String()
	for _, m := range []string{
		"gsqld_replication_records_applied_total",
		"gsqld_replication_bytes_total",
		"gsqld_replication_bootstraps_total 0",
		"gsqld_replication_lag_records 0",
	} {
		if !strings.Contains(mbody, m) {
			t.Fatalf("follower metrics missing %q:\n%s", m, mbody)
		}
	}

	// Reads still serve the converged graph.
	if w := do(rep2.srv, "POST", "/queries/Degree/run", "{}"); w.Code != http.StatusOK {
		t.Fatalf("follower read after convergence: %d %s", w.Code, w.Body)
	}

	rep2.stop(t)
	_ = leader.Shutdown(context.Background())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
