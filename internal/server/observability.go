package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"gsqlgo/internal/trace"
)

// Observability plumbing for the serving layer: per-request ids, the
// bounded ring of recent traces behind GET /debug/traces, the
// slow-query log, and build metadata. The engine-side span tree comes
// from internal/trace; this file decides when a request carries one
// and what happens to it afterwards.

// ---- request ids ----------------------------------------------------------

type ridKey struct{}
type tidKey struct{}

// requestID returns the id assigned to this request ("" outside the
// middleware, e.g. direct handler tests).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// traceID returns the client-supplied cross-process trace id ("" when
// the request carried none). Unlike request ids, trace ids are never
// minted server-side: an id only means something if the caller holds
// the same one, so an absent header stays absent.
func traceID(ctx context.Context) string {
	id, _ := ctx.Value(tidKey{}).(string)
	return id
}

// newRequestID mints "pppppppp-N": a per-process random prefix plus a
// monotonic counter — unique across restarts without coordination, and
// cheap enough for every request.
func (s *Server) newRequestID() string {
	return s.ridPrefix + "-" + strconv.FormatUint(s.ridCounter.Add(1), 10)
}

func randPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; ids degrade to the
		// counter alone rather than taking the server down.
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// withRequestID is the outermost middleware: honor a caller-supplied
// X-Request-Id (so ids correlate across proxies), mint one otherwise,
// echo it on the response, and stash it in the context for handlers,
// logs and traces. A caller-supplied X-Trace-Id (W3C traceparent-style
// hex; see trace.ValidID) rides the same middleware: it is echoed and
// stashed but never minted — its presence is what arms cross-process
// trace collection for the request, so the caller can fetch the span
// tree that served it at /debug/traces?trace_id= afterwards.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = s.newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ctx := context.WithValue(r.Context(), ridKey{}, id)
		if tid := r.Header.Get("X-Trace-Id"); trace.ValidID(tid) {
			w.Header().Set("X-Trace-Id", tid)
			ctx = context.WithValue(ctx, tidKey{}, tid)
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// ---- trace plumbing -------------------------------------------------------

// traceWanted reports whether the request asked for an inline trace
// (?trace=1 or ?trace=true).
func traceWanted(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true":
		return true
	}
	return false
}

// startTrace builds a trace root for one request, pre-tagged with the
// operation, request id, and (when the caller sent one) trace id.
func startTrace(op string, r *http.Request) *trace.Span {
	sp := trace.New(op)
	if rid := requestID(r.Context()); rid != "" {
		sp.SetStr("request_id", rid)
	}
	if tid := traceID(r.Context()); tid != "" {
		sp.SetStr("trace_id", tid)
	}
	return sp
}

// handleTraces serves the ring of recent traces, newest first.
// ?trace_id= narrows the response to traces whose root span carries
// that client-supplied id — the fetch-by-id half of cross-process
// propagation (the X-Trace-Id middleware is the inject half).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	spans := s.ring.Snapshot()
	if tid := r.URL.Query().Get("trace_id"); tid != "" {
		matched := spans[:0:0]
		for _, sp := range spans {
			if v, ok := sp.Attr("trace_id"); ok && v == tid {
				matched = append(matched, sp)
			}
		}
		spans = matched
	}
	out := struct {
		Total  uint64        `json:"total"`
		Traces []*trace.Span `json:"traces"`
	}{Total: s.ring.Total(), Traces: spans}
	writeJSON(w, http.StatusOK, out)
}

// ---- slow-query log -------------------------------------------------------

// paramsHash fingerprints a run's parameters (FNV-1a over the
// canonically-ordered raw JSON) so the slow-query log can group
// recurring invocations without logging the values themselves.
func paramsHash(params map[string]json.RawMessage) string {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	write := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
		h = (h ^ 0xff) * prime64 // separator
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		write(k)
		write(string(params[k]))
	}
	return fmt.Sprintf("%016x", h)
}

// stageSummary flattens a finished trace into "stage=duration" pairs
// (name-aggregated over the whole tree, sorted by name) — the
// per-stage timing field of a slow-query record.
func stageSummary(sp *trace.Span) string {
	if sp == nil {
		return ""
	}
	totals := sp.StageTotals()
	delete(totals, sp.Name()) // the root duplicates the elapsed field
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", n, totals[n].Round(time.Microsecond))
	}
	return b.String()
}

// logSlowQuery emits the structured one-line slow-query record and
// retains the trace in the ring (slow runs are traced even when the
// client did not ask, precisely so this record has stages to report).
func (s *Server) logSlowQuery(r *http.Request, name string, req runRequest, elapsed time.Duration, status string, sp *trace.Span) {
	s.mSlowQueries.Inc()
	s.log.Warn("slow query",
		"query", name,
		"request_id", requestID(r.Context()),
		"trace_id", traceID(r.Context()),
		"params_hash", paramsHash(req.Params),
		"elapsed_ms", float64(elapsed.Microseconds())/1000,
		"threshold_ms", float64(s.cfg.SlowQueryThreshold.Microseconds())/1000,
		"status", status,
		"stages", stageSummary(sp),
	)
}

// ---- build info -----------------------------------------------------------

// buildInfo resolves (version, commit) from the binary's embedded
// build metadata: module version, and the VCS revision stamped by the
// Go toolchain when building inside a checkout. "unknown" when absent
// (go test binaries, source-only builds).
func buildInfo() (version, commit string) {
	version, commit = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, commit
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
			commit = kv.Value[:12]
		}
	}
	return version, commit
}

// registerBuildInfo publishes the gsqld_build_info gauge: constant 1,
// with the build identity carried in labels (the Prometheus
// *_build_info convention, joinable against any other series).
func (s *Server) registerBuildInfo() {
	version, commit := buildInfo()
	s.buildVersion, s.buildCommit = version, commit
	s.reg.GaugeVec("gsqld_build_info",
		"Build metadata; constant 1 with the identity in labels.",
		"go_version", "commit", "version").
		With(runtime.Version(), commit, version).Set(1)
}
