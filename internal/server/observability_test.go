package server

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gsqlgo/internal/trace"
)

// wanderSrc exercises every engine phase tracing instruments: a
// counted hop (DFA compile, SDMC kernel runs, count cache) plus ACCUM.
const wanderSrc = `CREATE QUERY Wander () FOR GRAPH SalesGraph {
  SumAccum<int> @n;
  SELECT DISTINCT t INTO R FROM Customer:s -((Likes>|<Likes)*1..2)- Customer:t ACCUM t.@n += 1;
  RETURN R;
}`

// tracedRunResponse mirrors runResponse but decodes the trace into its
// wire form (a *trace.Span only marshals).
type tracedRunResponse struct {
	Query     string          `json:"query"`
	RequestID string          `json:"request_id"`
	Trace     *trace.SpanJSON `json:"trace"`
}

// findSpan walks a decoded span tree depth-first for the first span
// with the given name.
func findSpan(j *trace.SpanJSON, name string) *trace.SpanJSON {
	if j == nil {
		return nil
	}
	if j.Name == name {
		return j
	}
	for _, c := range j.Children {
		if hit := findSpan(c, name); hit != nil {
			return hit
		}
	}
	return nil
}

func countSpans(j *trace.SpanJSON, name string) int {
	if j == nil {
		return 0
	}
	n := 0
	if j.Name == name {
		n++
	}
	for _, c := range j.Children {
		n += countSpans(c, name)
	}
	return n
}

// TestTracedRunSpans is the tentpole's coverage acceptance: a ?trace=1
// run of a counted-hop query must emit spans for parse, bind, the
// select, the hop (with cache and shard attributes), the DFA
// compile/cache lookup, the SDMC kernel invocations, and the ACCUM
// phase — and the inline trace must carry the request id.
func TestTracedRunSpans(t *testing.T) {
	s := salesServer(t, Config{})
	if w := do(s, "POST", "/queries", wanderSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	w := do(s, "POST", "/queries/Wander/run?trace=1", "{}")
	if w.Code != http.StatusOK {
		t.Fatalf("run: %d %s", w.Code, w.Body)
	}
	res := decode[tracedRunResponse](t, w)
	if res.Trace == nil {
		t.Fatal("?trace=1 run returned no trace")
	}
	if res.Trace.Name != "query" {
		t.Fatalf("root span %q, want query", res.Trace.Name)
	}
	if rid, ok := res.Trace.Attrs["request_id"].(string); !ok || rid != res.RequestID {
		t.Errorf("trace request_id = %v, response request_id = %q", res.Trace.Attrs["request_id"], res.RequestID)
	}
	for _, name := range []string{"parse", "bind", "select", "hop", "dfa", "sdmc", "accum", "output"} {
		if findSpan(res.Trace, name) == nil {
			t.Errorf("trace missing %q span", name)
		}
	}
	hop := findSpan(res.Trace, "hop")
	if kind, _ := hop.Attrs["kind"].(string); kind != "counted" {
		t.Errorf("hop kind = %v, want counted", hop.Attrs["kind"])
	}
	for _, attr := range []string{"shards", "cache_hits", "cache_misses", "sdmc_runs", "rows_in", "rows_out"} {
		if _, ok := hop.Attrs[attr]; !ok {
			t.Errorf("hop span missing %q attr (have %v)", attr, hop.Attrs)
		}
	}
	if dfa := findSpan(res.Trace, "dfa"); dfa.Attrs["cached"] != false {
		t.Errorf("cold dfa span cached = %v, want false", dfa.Attrs["cached"])
	}
	if n := countSpans(res.Trace, "sdmc"); n < 1 {
		t.Errorf("no sdmc kernel spans recorded")
	}

	// Warm run: the count cache serves every source, so the hop reports
	// hits and the DFA lookup reports cached=true.
	w = do(s, "POST", "/queries/Wander/run?trace=1", "{}")
	warm := decode[tracedRunResponse](t, w)
	if dfa := findSpan(warm.Trace, "dfa"); dfa.Attrs["cached"] != true {
		t.Errorf("warm dfa span cached = %v, want true", dfa.Attrs["cached"])
	}
	hop = findSpan(warm.Trace, "hop")
	if hits, _ := hop.Attrs["cache_hits"].(float64); hits == 0 {
		t.Errorf("warm hop cache_hits = %v, want > 0", hop.Attrs["cache_hits"])
	}

	// An untraced run must not carry a trace.
	plain := decode[tracedRunResponse](t, do(s, "POST", "/queries/Wander/run", "{}"))
	if plain.Trace != nil {
		t.Error("untraced run returned a trace")
	}
}

// TestDebugTracesRing: traced runs land in GET /debug/traces newest
// first, bounded by TraceRingSize; untraced runs do not.
func TestDebugTracesRing(t *testing.T) {
	s := salesServer(t, Config{TraceRingSize: 2})
	if w := do(s, "POST", "/queries", wanderSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	do(s, "POST", "/queries/Wander/run", "{}") // untraced: not retained
	for i := 0; i < 3; i++ {
		if w := do(s, "POST", "/queries/Wander/run?trace=1", "{}"); w.Code != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, w.Code, w.Body)
		}
	}
	w := do(s, "GET", "/debug/traces", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/traces: %d", w.Code)
	}
	out := decode[struct {
		Total  uint64            `json:"total"`
		Traces []*trace.SpanJSON `json:"traces"`
	}](t, w)
	if out.Total != 3 {
		t.Errorf("total = %d, want 3 (untraced runs must not count)", out.Total)
	}
	if len(out.Traces) != 2 {
		t.Fatalf("ring retained %d traces, want 2", len(out.Traces))
	}
	for _, tr := range out.Traces {
		if tr.Name != "query" || findSpan(tr, "select") == nil {
			t.Errorf("ring trace malformed: root %q", tr.Name)
		}
	}
}

// TestSlowQueryLogExactness is the slow-query acceptance: with the
// threshold armed low every run is logged; with it armed high none
// are — and the log record carries the query name, request id, params
// hash and per-stage timings.
func TestSlowQueryLogExactness(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := salesServer(t, Config{SlowQueryThreshold: time.Nanosecond, Logger: logger})
	if w := do(s, "POST", "/queries", wanderSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	const runs = 3
	for i := 0; i < runs; i++ {
		if w := do(s, "POST", "/queries/Wander/run", "{}"); w.Code != http.StatusOK {
			t.Fatalf("run: %d %s", w.Code, w.Body)
		}
	}
	logs := buf.String()
	if got := strings.Count(logs, "slow query"); got != runs {
		t.Fatalf("slow-query records = %d, want %d\n%s", got, runs, logs)
	}
	for _, want := range []string{"query=Wander", "request_id=", "params_hash=", "elapsed_ms=", "stages="} {
		if !strings.Contains(logs, want) {
			t.Errorf("slow-query record missing %q:\n%s", want, logs)
		}
	}
	// Per-stage timings name the phases the trace recorded.
	if !strings.Contains(logs, "select=") || !strings.Contains(logs, "hop=") {
		t.Errorf("stage summary missing engine phases:\n%s", logs)
	}
	if body := do(s, "GET", "/metrics", "").Body.String(); !strings.Contains(body, "gsqld_slow_queries_total 3") {
		t.Errorf("gsqld_slow_queries_total != 3 in:\n%s", body)
	}
	// Slow runs are retained in the ring even though no client asked
	// for a trace.
	if out := decode[struct {
		Total uint64 `json:"total"`
	}](t, do(s, "GET", "/debug/traces", "")); out.Total != runs {
		t.Errorf("ring total = %d, want %d (slow runs retained)", out.Total, runs)
	}

	// High threshold: same traffic, zero records.
	var quiet bytes.Buffer
	s2 := salesServer(t, Config{SlowQueryThreshold: time.Hour, Logger: slog.New(slog.NewTextHandler(&quiet, nil))})
	if w := do(s2, "POST", "/queries", wanderSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	for i := 0; i < runs; i++ {
		do(s2, "POST", "/queries/Wander/run", "{}")
	}
	if strings.Contains(quiet.String(), "slow query") {
		t.Errorf("sub-threshold runs were logged:\n%s", quiet.String())
	}
	if body := do(s2, "GET", "/metrics", "").Body.String(); !strings.Contains(body, "gsqld_slow_queries_total 0") {
		t.Errorf("gsqld_slow_queries_total != 0 in quiet server")
	}
}

// TestRequestIDPropagation: the server mints an id (echoed on the
// response header and body), and honors a caller-supplied one.
func TestRequestIDPropagation(t *testing.T) {
	s := salesServer(t, Config{})
	if w := do(s, "POST", "/queries", wanderSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	w := do(s, "POST", "/queries/Wander/run", "{}")
	hdr := w.Header().Get("X-Request-Id")
	if hdr == "" {
		t.Fatal("no X-Request-Id on response")
	}
	if res := decode[tracedRunResponse](t, w); res.RequestID != hdr {
		t.Errorf("body request_id %q != header %q", res.RequestID, hdr)
	}
	w2 := do(s, "POST", "/queries/Wander/run", "{}")
	if w2.Header().Get("X-Request-Id") == hdr {
		t.Error("two requests shared one minted id")
	}

	req := httptest.NewRequest("POST", "/queries/Wander/run?trace=1", strings.NewReader("{}"))
	req.Header.Set("X-Request-Id", "caller-7")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Header().Get("X-Request-Id") != "caller-7" {
		t.Errorf("caller-supplied id not echoed: %q", rec.Header().Get("X-Request-Id"))
	}
	if res := decode[tracedRunResponse](t, rec); res.RequestID != "caller-7" ||
		res.Trace.Attrs["request_id"] != "caller-7" {
		t.Errorf("caller id not propagated: body %q trace %v", res.RequestID, res.Trace.Attrs["request_id"])
	}
}

// TestBuildInfoMetric: /metrics exposes gsqld_build_info with the
// go_version label, and /healthz reports the same identity.
func TestBuildInfoMetric(t *testing.T) {
	s := salesServer(t, Config{})
	body := do(s, "GET", "/metrics", "").Body.String()
	if !strings.Contains(body, "gsqld_build_info{") || !strings.Contains(body, `go_version="go1.`) {
		t.Errorf("/metrics missing build info:\n%s", body)
	}
	w := do(s, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", w.Code)
	}
	h := decode[map[string]string](t, w)
	if h["status"] != "ok" || h["version"] == "" || h["commit"] == "" {
		t.Errorf("healthz = %v", h)
	}
}

// TestMutationTrace: a ?trace=1 mutation returns through the ring with
// the op attr and the WAL/apply child span.
func TestMutationTrace(t *testing.T) {
	srv, _, ts := newStorageServer(t, t.TempDir())
	resp, body := postJSON(t, ts.URL+"/graph/vertices?trace=1",
		addVertexRequest{Type: "Person", Key: "ada"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add vertex: %d %s", resp.StatusCode, body)
	}
	w := do(srv, "GET", "/debug/traces", "")
	out := decode[struct {
		Traces []*trace.SpanJSON `json:"traces"`
	}](t, w)
	if len(out.Traces) != 1 {
		t.Fatalf("ring has %d traces, want 1", len(out.Traces))
	}
	mut := out.Traces[0]
	if mut.Name != "mutation" || mut.Attrs["op"] != "add_vertex" || mut.Attrs["durable"] != true {
		t.Fatalf("mutation trace = %v %v", mut.Name, mut.Attrs)
	}
	wal := findSpan(mut, "wal_append")
	if wal == nil {
		t.Fatal("mutation trace has no wal_append span")
	}
	if b, _ := wal.Attrs["bytes"].(float64); b <= 0 {
		t.Errorf("wal_append bytes = %v, want > 0", wal.Attrs["bytes"])
	}

	// Checkpoint trace.
	resp, body = postJSON(t, ts.URL+"/admin/checkpoint?trace=1", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, body)
	}
	out = decode[struct {
		Traces []*trace.SpanJSON `json:"traces"`
	}](t, do(srv, "GET", "/debug/traces", ""))
	cp := out.Traces[0]
	if cp.Name != "checkpoint" || findSpan(cp, "snapshot_write") == nil {
		t.Fatalf("checkpoint trace malformed: %v", cp.Name)
	}
	if v, _ := cp.Attrs["checkpoints"].(float64); v < 1 {
		t.Errorf("checkpoint trace attrs = %v", cp.Attrs)
	}
}
