package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
)

const topKToysSrc = `
CREATE QUERY TopKToys (vertex<Customer> c, int k) FOR GRAPH SalesGraph {
  SumAccum<float> @lc, @inCommon, @rank;

  SELECT DISTINCT o INTO OthersWithCommonLikes
  FROM   Customer:c -(Likes>)- Product:t -(<Likes)- Customer:o
  WHERE  o <> c AND t.category == 'toy'
  ACCUM  o.@inCommon += 1
  POST_ACCUM o.@lc = log(1 + o.@inCommon);

  SELECT t.name, t.@rank AS rank INTO Recommended
  FROM   OthersWithCommonLikes:o -(Likes>)- Product:t
  WHERE  t.category == 'toy' AND c <> o
  ACCUM  t.@rank += o.@lc
  ORDER BY t.@rank DESC
  LIMIT k;

  RETURN Recommended;
}
`

const spinSrc = `
CREATE QUERY Spin (int n) FOR GRAPH SalesGraph {
  SumAccum<int> @@x;
  WHILE true LIMIT n DO
    @@x += 1;
  END;
  RETURN @@x;
}
`

func salesServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	g := graph.BuildSalesGraph(graph.SalesGraphConfig{
		Customers: 25, Products: 12, Sales: 200, Likes: 150, Seed: 42,
	})
	cfg.Engine = core.New(g, core.Options{Workers: 2})
	return New(cfg)
}

// do drives the handler in-process (no sockets, no client goroutines).
func do(s *Server, method, path, body string) *httptest.ResponseRecorder {
	return doCtx(context.Background(), s, method, path, body)
}

func doCtx(ctx context.Context, s *Server, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

// TestServerE2E walks the full installed-query workflow over HTTP:
// install GSQL source, list the catalog, run with typed JSON
// parameters, and read the latency histogram back from /metrics.
func TestServerE2E(t *testing.T) {
	s := salesServer(t, Config{})

	// Install.
	w := do(s, "POST", "/queries", topKToysSrc)
	if w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	inst := decode[installResponse](t, w)
	if len(inst.Installed) != 1 || inst.Installed[0] != "TopKToys" {
		t.Fatalf("installed = %v", inst.Installed)
	}

	// List: typed signature comes back.
	w = do(s, "GET", "/queries", "")
	if w.Code != http.StatusOK {
		t.Fatalf("list: %d %s", w.Code, w.Body)
	}
	var list struct {
		Queries []queryInfo `json:"queries"`
	}
	list = decode[struct {
		Queries []queryInfo `json:"queries"`
	}](t, w)
	if len(list.Queries) != 1 || list.Queries[0].Name != "TopKToys" {
		t.Fatalf("catalog = %+v", list.Queries)
	}
	wantParams := []paramInfo{{Name: "c", Type: "vertex<Customer>"}, {Name: "k", Type: "int"}}
	for i, p := range list.Queries[0].Params {
		if p != wantParams[i] {
			t.Errorf("param[%d] = %+v, want %+v", i, p, wantParams[i])
		}
	}

	// Run with parameters.
	w = do(s, "POST", "/queries/TopKToys/run", `{"params":{"c":"c0","k":3}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("run: %d %s", w.Code, w.Body)
	}
	res := decode[runResponse](t, w)
	if res.Query != "TopKToys" || res.Returned == nil {
		t.Fatalf("run response = %+v", res)
	}
	if len(res.Returned.Rows) == 0 || len(res.Returned.Rows) > 3 {
		t.Errorf("returned %d rows, want 1..3", len(res.Returned.Rows))
	}
	if res.Stats.Selects != 2 || res.Stats.BindingRows <= 0 {
		t.Errorf("stats = %+v", res.Stats)
	}

	// Metrics: latency histogram and ok-counter for this query.
	w = do(s, "GET", "/metrics", "")
	body := w.Body.String()
	for _, want := range []string{
		`gsqld_query_runs_total{query="TopKToys",status="ok"} 1`,
		`gsqld_query_latency_seconds_bucket{query="TopKToys",le="+Inf"} 1`,
		`gsqld_query_latency_seconds_count{query="TopKToys"} 1`,
		`gsqld_query_binding_rows_count{query="TopKToys"} 1`,
		`gsqld_installed_queries 1`,
		`gsqld_inflight_queries 0`,
		"# TYPE gsqld_query_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Error taxonomy over HTTP.
	if w := do(s, "POST", "/queries/NoSuch/run", "{}"); w.Code != http.StatusNotFound {
		t.Errorf("unknown query: %d, want 404", w.Code)
	}
	if w := do(s, "POST", "/queries", "CREATE QUERY {"); w.Code != http.StatusBadRequest {
		t.Errorf("parse error: %d, want 400", w.Code)
	}
	if w := do(s, "POST", "/queries", topKToysSrc); w.Code != http.StatusConflict {
		t.Errorf("duplicate install: %d, want 409", w.Code)
	}
	if w := do(s, "POST", "/queries/TopKToys/run", `{"params":{"c":"zzz","k":1}}`); w.Code != http.StatusBadRequest {
		t.Errorf("bad vertex key: %d, want 400", w.Code)
	}
	if w := do(s, "POST", "/queries/TopKToys/run", `{"params":{"k":"x"}}`); w.Code != http.StatusBadRequest {
		t.Errorf("bad int: %d, want 400", w.Code)
	}
}

// TestServerInstallJSONBody: the JSON {"source": ...} install form.
func TestServerInstallJSONBody(t *testing.T) {
	s := salesServer(t, Config{})
	body, _ := json.Marshal(installRequest{Source: spinSrc})
	req := httptest.NewRequest("POST", "/queries", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	if inst := decode[installResponse](t, w); len(inst.Installed) != 1 || inst.Installed[0] != "Spin" {
		t.Fatalf("installed = %v", inst.Installed)
	}
}

// TestServerDeadlineCancelsRun: a 1ms-deadline request against a large
// random graph comes back as a typed cancellation (408) — and the
// aborted run leaks no goroutines.
func TestServerDeadlineCancelsRun(t *testing.T) {
	g := graph.BuildRandomMixedGraph(4000, 32000, 5)
	eng := core.New(g, core.Options{Workers: 4})
	s := New(Config{Engine: eng})
	w := do(s, "POST", "/queries", `CREATE QUERY Sweep() {
  SumAccum<int> @@n;
  S = SELECT t FROM V:s -((D1>|D2>|U)*)- V:t ACCUM @@n += 1;
  RETURN @@n;
}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}

	before := runtime.NumGoroutine()
	w = do(s, "POST", "/queries/Sweep/run", `{"timeout_ms":1}`)
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("run: %d %s, want 408", w.Code, w.Body)
	}
	if er := decode[errorResponse](t, w); er.Code != "cancelled" {
		t.Errorf("code = %q, want cancelled", er.Code)
	}
	// The cancelled run's workers must wind down; allow the runtime a
	// moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d now=%d — leak after cancellation",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if w := do(s, "GET", "/metrics", ""); !strings.Contains(w.Body.String(),
		`gsqld_query_runs_total{query="Sweep",status="cancelled"} 1`) {
		t.Error("/metrics missing cancelled counter")
	}
}

// startBlockedRun launches Spin(huge n) in the background and waits
// until it is executing (inflight gauge = 1). Returns a cancel that
// aborts it and a channel with its final status code.
func startBlockedRun(t *testing.T, s *Server) (cancel context.CancelFunc, done <-chan int) {
	t.Helper()
	ctx, cf := context.WithCancel(context.Background())
	ch := make(chan int, 1)
	go func() {
		w := doCtx(ctx, s, "POST", "/queries/Spin/run",
			`{"params":{"n":2000000000},"timeout_ms":60000}`)
		ch <- w.Code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.mInflight.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocked run never started")
		}
		time.Sleep(time.Millisecond)
	}
	return cf, ch
}

// TestServerOverload: MaxConcurrent=1 with no queue sheds the second
// concurrent run with a typed 429 and counts the rejection.
func TestServerOverload(t *testing.T) {
	s := salesServer(t, Config{MaxConcurrent: 1, MaxQueue: -1, QueueWait: 10 * time.Millisecond})
	if w := do(s, "POST", "/queries", spinSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	cancel, done := startBlockedRun(t, s)
	defer cancel()

	w := do(s, "POST", "/queries/Spin/run", `{"params":{"n":1}}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second run: %d %s, want 429", w.Code, w.Body)
	}
	if er := decode[errorResponse](t, w); er.Code != "overload" {
		t.Errorf("code = %q, want overload", er.Code)
	}
	if !strings.Contains(do(s, "GET", "/metrics", "").Body.String(),
		`gsqld_rejected_total{reason="overload"} 1`) {
		t.Error("/metrics missing overload rejection")
	}

	cancel()
	if code := <-done; code != http.StatusRequestTimeout {
		t.Errorf("blocked run finished %d, want 408 after cancel", code)
	}
	// Slot is free again: the same request now runs.
	if w := do(s, "POST", "/queries/Spin/run", `{"params":{"n":1}}`); w.Code != http.StatusOK {
		t.Errorf("after release: %d %s, want 200", w.Code, w.Body)
	}
}

// TestServerShutdownDrains: Shutdown lets the in-flight run finish
// (200) while refusing new work with 503, then returns.
func TestServerShutdownDrains(t *testing.T) {
	s := salesServer(t, Config{MaxConcurrent: 2})
	if w := do(s, "POST", "/queries", spinSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	cancel, done := startBlockedRun(t, s)
	defer cancel()

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cf := context.WithTimeout(context.Background(), 10*time.Second)
		defer cf()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Draining flag flips before the drain wait; poll until visible.
	deadline := time.Now().Add(5 * time.Second)
	for do(s, "GET", "/healthz", "").Code != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	if w := do(s, "POST", "/queries/Spin/run", `{"params":{"n":1}}`); w.Code != http.StatusServiceUnavailable {
		t.Errorf("run while draining: %d, want 503", w.Code)
	}
	if w := do(s, "POST", "/queries", "CREATE QUERY Другая() { RETURN 1; }"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("install while draining: %d, want 503", w.Code)
	}

	// Let the in-flight run finish; the drain must then complete.
	cancel()
	if code := <-done; code != http.StatusRequestTimeout {
		t.Errorf("in-flight run finished %d", code)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerShutdownTimeout: a drain that cannot finish in time
// reports the deadline instead of hanging.
func TestServerShutdownTimeout(t *testing.T) {
	s := salesServer(t, Config{})
	if w := do(s, "POST", "/queries", spinSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	cancel, done := startBlockedRun(t, s)
	defer cancel()

	ctx, cf := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cf()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("shutdown returned nil with a run still in flight")
	}
	cancel()
	<-done
}

// TestConcurrentRunsThroughServer drives many simultaneous runs end to
// end — under -race this exercises handler, admission, metrics and
// engine together.
func TestConcurrentRunsThroughServer(t *testing.T) {
	s := salesServer(t, Config{MaxConcurrent: 4})
	if w := do(s, "POST", "/queries", topKToysSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	const n = 16
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			body := fmt.Sprintf(`{"params":{"c":"c%d","k":3}}`, i%25)
			codes <- do(s, "POST", "/queries/TopKToys/run", body).Code
		}(i)
	}
	for i := 0; i < n; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("run %d: code %d", i, code)
		}
	}
	if got := s.mRuns.With("TopKToys", "ok").Value(); got != n {
		t.Errorf("ok runs = %d, want %d", got, n)
	}
}

// TestServerExpandMetrics: the counted-hop pipeline counters are
// exported through /metrics and advance across runs — a cold run
// records misses plus SDMC work, a warm re-run records hits and zero
// new SDMC runs — and the per-run stats surface in the JSON response.
func TestServerExpandMetrics(t *testing.T) {
	s := salesServer(t, Config{})
	const src = `CREATE QUERY Wander () FOR GRAPH SalesGraph {
  SumAccum<int> @n;
  SELECT DISTINCT t INTO R FROM Customer:s -((Likes>|<Likes)*1..2)- Customer:t ACCUM t.@n += 1;
  RETURN R;
}`
	if w := do(s, "POST", "/queries", src); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	w := do(s, "POST", "/queries/Wander/run", "{}")
	if w.Code != http.StatusOK {
		t.Fatalf("cold run: %d %s", w.Code, w.Body)
	}
	cold := decode[runResponse](t, w)
	if cold.Stats.CountCacheMisses == 0 || cold.Stats.SDMCRuns == 0 {
		t.Fatalf("cold run stats = %+v, want cache misses and SDMC runs", cold.Stats)
	}
	w = do(s, "POST", "/queries/Wander/run", "{}")
	if w.Code != http.StatusOK {
		t.Fatalf("warm run: %d %s", w.Code, w.Body)
	}
	warm := decode[runResponse](t, w)
	if warm.Stats.SDMCRuns != 0 || warm.Stats.CountCacheHits == 0 {
		t.Fatalf("warm run stats = %+v, want cache hits and zero SDMC runs", warm.Stats)
	}

	body := do(s, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		fmt.Sprintf("gsqld_expand_count_cache_hits_total %d", warm.Stats.CountCacheHits),
		fmt.Sprintf("gsqld_expand_count_cache_misses_total %d", cold.Stats.CountCacheMisses),
		fmt.Sprintf("gsqld_expand_sdmc_runs_total %d", cold.Stats.SDMCRuns+warm.Stats.SDMCRuns),
		"gsqld_expand_shards_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerAccumCompileMetrics: the compiled-kernel and fusion
// counters surface in both the per-run stats JSON and /metrics — a
// fusable query reports compiled statements plus fused blocks, while a
// clause the compiler declines reports interpreted statements.
func TestServerAccumCompileMetrics(t *testing.T) {
	s := salesServer(t, Config{})
	const fusedSrc = `CREATE QUERY Fused () FOR GRAPH SalesGraph {
  SumAccum<int> @@a;
  SumAccum<int> @@b;
  X = SELECT t FROM Customer:s -(Likes>)- Product:t ACCUM @@a += 1;
  Y = SELECT t FROM Customer:s -(Likes>)- Product:t ACCUM @@b += 1;
}`
	const interpSrc = `CREATE QUERY Interp () FOR GRAPH SalesGraph {
  SumAccum<int> @@a;
  X = SELECT s FROM Customer:s;
  Y = SELECT t FROM Customer:s -(Likes>)- Product:t ACCUM @@a += X.size();
}`
	for _, src := range []string{fusedSrc, interpSrc} {
		if w := do(s, "POST", "/queries", src); w.Code != http.StatusCreated {
			t.Fatalf("install: %d %s", w.Code, w.Body)
		}
	}
	w := do(s, "POST", "/queries/Fused/run", "{}")
	if w.Code != http.StatusOK {
		t.Fatalf("fused run: %d %s", w.Code, w.Body)
	}
	fused := decode[runResponse](t, w)
	if fused.Stats.AccumCompiledStmts != 2 || fused.Stats.FusionBlocksFused != 2 ||
		fused.Stats.AccumInterpretedStmts != 0 {
		t.Fatalf("fused run stats = %+v, want 2 compiled stmts, 2 fused blocks", fused.Stats)
	}
	w = do(s, "POST", "/queries/Interp/run", "{}")
	if w.Code != http.StatusOK {
		t.Fatalf("interp run: %d %s", w.Code, w.Body)
	}
	interp := decode[runResponse](t, w)
	if interp.Stats.AccumInterpretedStmts != 1 || interp.Stats.FusionBlocksFused != 0 {
		t.Fatalf("interp run stats = %+v, want 1 interpreted stmt, 0 fused", interp.Stats)
	}

	body := do(s, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		fmt.Sprintf("gsqld_accum_compiled_stmts_total %d", fused.Stats.AccumCompiledStmts+interp.Stats.AccumCompiledStmts),
		fmt.Sprintf("gsqld_accum_interpreted_stmts_total %d", interp.Stats.AccumInterpretedStmts),
		fmt.Sprintf("gsqld_fusion_blocks_fused_total %d", fused.Stats.FusionBlocksFused),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
