// Package server is gsqld's serving layer: an HTTP JSON facade over
// core.Engine that mirrors the paper's installed-query model. Queries
// are installed once (POST /queries, GSQL source in the body) and then
// invoked by name with JSON parameters (POST /queries/{name}/run) —
// the same two-phase workflow TigerGraph exposes through CREATE/
// INSTALL QUERY plus its generated REST endpoints.
//
// The layer adds what a long-running service needs and the library
// deliberately omits: per-request deadlines that propagate as
// cooperative cancellation into the ACCUM shard loops and SDMC BFS
// kernels, an admission controller that sheds load with typed 429s
// instead of stacking goroutines, graceful shutdown that drains
// in-flight runs, and a metrics registry exported in Prometheus text
// format (GET /metrics) and expvar JSON (GET /debug/vars).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/gsql"
	"gsqlgo/internal/metrics"
	"gsqlgo/internal/replication"
	"gsqlgo/internal/storage"
	"gsqlgo/internal/trace"
)

// Config tunes a Server. The zero value of every field except Engine
// picks a sensible default.
type Config struct {
	// Engine executes the queries. Required.
	Engine *core.Engine

	// Store, when set, is the durable store backing the engine's graph:
	// mutation routes persist through its WAL, POST /admin/checkpoint
	// rotates it, Shutdown checkpoints it after the drain, and the
	// gsqld_storage_* metrics reflect its counters. Nil serves the
	// graph purely in memory (mutation routes still work, unlogged).
	// A server with a Store and no Follower also serves the
	// /replication/* routes, so any durable gsqld can act as a
	// replication leader.
	Store *storage.Store

	// Follower, when set, puts the server in read replica mode: the
	// engine's graph is the follower's, mutation and checkpoint routes
	// answer 403 (replication.ErrReadOnly), Shutdown skips the drain
	// checkpoint (a follower's generations must keep mirroring the
	// leader's), and the gsqld_replication_* metrics reflect the
	// follower's counters and lag gauges. Leave Store nil; storage
	// metrics come from the follower's own store. The caller binds the
	// follower to the server (Follower.Bind with ReplicationLock and
	// AddTrace) and runs its tail loop.
	Follower *replication.Follower

	// DefaultTimeout caps a run when the request does not ask for a
	// deadline (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps what a request may ask for via timeout_ms
	// (default 5m).
	MaxTimeout time.Duration

	// MaxConcurrent bounds simultaneously executing runs (default:
	// the engine's worker budget).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a run slot; further
	// arrivals get 429 immediately (default 4×MaxConcurrent;
	// negative disables queueing entirely).
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a run
	// slot before 429 (default 1s).
	QueueWait time.Duration

	// Logger receives the server's structured log records (default
	// slog.Default()). Every record about a request carries its
	// request_id.
	Logger *slog.Logger
	// SlowQueryThreshold, when positive, turns on the slow-query log:
	// every run is traced, and runs whose end-to-end latency meets or
	// exceeds the threshold emit a structured warn record (query name,
	// params hash, per-stage timings) and land in the trace ring.
	// Zero disables it.
	SlowQueryThreshold time.Duration
	// TraceRingSize bounds the in-memory ring of recent traces served
	// at GET /debug/traces (default 64).
	TraceRingSize int

	// MetricsHistory, when positive, turns on the metrics history
	// sampler: every counter, gauge and histogram is snapshotted into a
	// bounded in-memory ring at this interval, served with computed
	// rates at GET /debug/metrics/history. Zero (the default) disables
	// the sampler entirely — no goroutine, no allocation, no overhead.
	MetricsHistory time.Duration
	// MetricsHistorySize bounds retained samples (default 600 — ten
	// minutes at a one-second interval).
	MetricsHistorySize int

	// AdvertiseURL is this node's own base URL as peers should reach it
	// — the node's identity in GET /cluster/status. A follower should
	// also set replication.FollowerConfig.AdvertiseURL to the same
	// value so the leader learns it from replication traffic.
	AdvertiseURL string
	// Peers lists other nodes' base URLs for the /cluster/status
	// fan-out, joined with peers learned from replication traffic.
	Peers []string
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = c.Engine.Workers()
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.TraceRingSize <= 0 {
		c.TraceRingSize = 64
	}
	return c
}

// Server is the HTTP query service.
type Server struct {
	cfg  Config
	eng  *core.Engine
	adm  *admission
	mux  *http.ServeMux
	root http.Handler // mux wrapped in the request-id middleware
	reg  *metrics.Registry
	log  *slog.Logger
	ring *trace.Ring

	// leader is set when this node serves the /replication/* routes —
	// its learned-peer map feeds the /cluster/status fan-out.
	leader *replication.Leader
	// hist is the metrics history sampler (nil unless
	// Config.MetricsHistory is positive).
	hist    *metrics.History
	started time.Time

	ridPrefix  string
	ridCounter atomic.Uint64

	buildVersion string
	buildCommit  string

	draining atomic.Bool
	inflight sync.WaitGroup

	// wmu serializes graph mutation against graph mutation: the mutation
	// routes, checkpoints, and a bound follower's apply loop hold it
	// exclusively. Readers never take it — a run pins an immutable MVCC
	// snapshot (graph.Snapshot) at admission and executes lock-free, so
	// writers never block the query path. The graph's own methods supply
	// the reader-side safety (epoch-stamped views over append-only
	// columns); this mutex supplies only the single-writer discipline
	// those methods still demand.
	wmu sync.Mutex

	storageMu   sync.Mutex    // guards lastStorage delta-sync
	lastStorage storage.Stats // counters already folded into the registry

	mvccMu    sync.Mutex // guards lastFolds delta-sync
	lastFolds uint64     // fold count already folded into the registry

	replMu   sync.Mutex                // guards lastRepl delta-sync
	lastRepl replication.FollowerStats // counters already folded into the registry

	mRuns      *metrics.CounterVec   // gsqld_query_runs_total{query,status}
	mLatency   *metrics.HistogramVec // gsqld_query_latency_seconds{query}
	mRows      *metrics.HistogramVec // gsqld_query_binding_rows{query}
	mInflight  *metrics.Gauge        // gsqld_inflight_queries
	mRejected  *metrics.CounterVec   // gsqld_rejected_total{reason}
	mInstalled *metrics.Gauge        // gsqld_installed_queries

	mCacheHits   *metrics.Counter // gsqld_expand_count_cache_hits_total
	mCacheMisses *metrics.Counter // gsqld_expand_count_cache_misses_total
	mSDMCRuns    *metrics.Counter // gsqld_expand_sdmc_runs_total
	mShards      *metrics.Counter // gsqld_expand_shards_total

	mAccumCompiled    *metrics.Counter // gsqld_accum_compiled_stmts_total
	mAccumInterpreted *metrics.Counter // gsqld_accum_interpreted_stmts_total
	mFusedBlocks      *metrics.Counter // gsqld_fusion_blocks_fused_total

	mWALRecords  *metrics.Counter // gsqld_storage_wal_records_total
	mWALBytes    *metrics.Counter // gsqld_storage_wal_bytes_total
	mCheckpoints *metrics.Counter // gsqld_storage_checkpoints_total
	mRecoveries  *metrics.Counter // gsqld_storage_recoveries_total

	mTracedRuns  *metrics.Counter // gsqld_traced_runs_total
	mSlowQueries *metrics.Counter // gsqld_slow_queries_total

	mMVCCPinned *metrics.Gauge   // gsqld_mvcc_snapshots_pinned
	mMVCCDelta  *metrics.Gauge   // gsqld_mvcc_delta_records
	mMVCCFolds  *metrics.Counter // gsqld_mvcc_folds_total

	// Follower-mode metrics (registered only when cfg.Follower is set).
	mReplApplied    *metrics.Counter // gsqld_replication_records_applied_total
	mReplBytes      *metrics.Counter // gsqld_replication_bytes_total
	mReplBootstraps *metrics.Counter // gsqld_replication_bootstraps_total
	mReplReconnects *metrics.Counter // gsqld_replication_reconnects_total
	mReplLagRecords *metrics.Gauge   // gsqld_replication_lag_records
	mReplLagBytes   *metrics.Gauge   // gsqld_replication_lag_bytes
}

// New builds a Server over cfg.Engine. It panics if Engine is nil.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		eng:       cfg.Engine,
		adm:       newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueWait),
		reg:       metrics.NewRegistry(),
		log:       cfg.Logger,
		ring:      trace.NewRing(cfg.TraceRingSize),
		ridPrefix: randPrefix(),
		started:   time.Now(),
	}
	s.mRuns = s.reg.CounterVec("gsqld_query_runs_total",
		"Completed query runs by query name and outcome.", "query", "status")
	s.mLatency = s.reg.HistogramVec("gsqld_query_latency_seconds",
		"End-to-end run latency per query.", metrics.DefLatencyBuckets, "query")
	s.mRows = s.reg.HistogramVec("gsqld_query_binding_rows",
		"Compressed binding-table rows produced per run.", metrics.DefSizeBuckets, "query")
	s.mInflight = s.reg.Gauge("gsqld_inflight_queries",
		"Runs currently executing or queued for a slot.")
	s.mRejected = s.reg.CounterVec("gsqld_rejected_total",
		"Requests rejected before execution, by reason.", "reason")
	s.mInstalled = s.reg.Gauge("gsqld_installed_queries",
		"Queries currently installed in the catalog.")
	s.mInstalled.Set(int64(len(s.eng.Queries())))
	s.mCacheHits = s.reg.Counter("gsqld_expand_count_cache_hits_total",
		"Counted-hop sources served from the engine's SDMC count cache.")
	s.mCacheMisses = s.reg.Counter("gsqld_expand_count_cache_misses_total",
		"Counted-hop sources that missed the SDMC count cache.")
	s.mSDMCRuns = s.reg.Counter("gsqld_expand_sdmc_runs_total",
		"Single-source SDMC count runs (BFS or enumeration) executed.")
	s.mShards = s.reg.Counter("gsqld_expand_shards_total",
		"Shards FROM-clause hop expansion was split into, summed over hops.")
	s.mAccumCompiled = s.reg.Counter("gsqld_accum_compiled_stmts_total",
		"ACCUM/POST-ACCUM statements executed on the compiled kernel path.")
	s.mAccumInterpreted = s.reg.Counter("gsqld_accum_interpreted_stmts_total",
		"ACCUM/POST-ACCUM statements executed by the tree-walking interpreter.")
	s.mFusedBlocks = s.reg.Counter("gsqld_fusion_blocks_fused_total",
		"SELECT blocks executed inside a fused group sharing one traversal.")
	s.mWALRecords = s.reg.Counter("gsqld_storage_wal_records_total",
		"Mutation records appended to the write-ahead log.")
	s.mWALBytes = s.reg.Counter("gsqld_storage_wal_bytes_total",
		"Bytes appended to the write-ahead log, frames included.")
	s.mCheckpoints = s.reg.Counter("gsqld_storage_checkpoints_total",
		"Snapshots written (initial persist, /admin/checkpoint, drain).")
	s.mRecoveries = s.reg.Counter("gsqld_storage_recoveries_total",
		"Opens that recovered persisted state (snapshot load + WAL replay).")
	s.mTracedRuns = s.reg.Counter("gsqld_traced_runs_total",
		"Runs executed with a span trace attached (?trace=1 or slow-query log).")
	s.mSlowQueries = s.reg.Counter("gsqld_slow_queries_total",
		"Runs at or above the slow-query threshold.")
	s.mMVCCPinned = s.reg.Gauge("gsqld_mvcc_snapshots_pinned",
		"Runs currently executing against a pinned graph snapshot.")
	s.mMVCCDelta = s.reg.Gauge("gsqld_mvcc_delta_records",
		"Mutation records accumulated since the graph's last fold point.")
	s.mMVCCFolds = s.reg.Counter("gsqld_mvcc_folds_total",
		"Delta folds re-basing the graph's canonical representation.")
	if cfg.Follower != nil {
		s.mReplApplied = s.reg.Counter("gsqld_replication_records_applied_total",
			"WAL records shipped from the leader and applied locally.")
		s.mReplBytes = s.reg.Counter("gsqld_replication_bytes_total",
			"WAL bytes shipped from the leader and applied, frames included.")
		s.mReplBootstraps = s.reg.Counter("gsqld_replication_bootstraps_total",
			"Snapshot bootstraps (initial and after falling past leader retention).")
		s.mReplReconnects = s.reg.Counter("gsqld_replication_reconnects_total",
			"Tail-loop reconnects after a failed or rejected leader fetch.")
		s.mReplLagRecords = s.reg.Gauge("gsqld_replication_lag_records",
			"Records behind the leader at the last fetch (lower bound across a segment rotation).")
		s.mReplLagBytes = s.reg.Gauge("gsqld_replication_lag_bytes",
			"WAL bytes behind the leader at the last fetch (lower bound across a segment rotation).")
	}
	s.registerBuildInfo()
	s.syncStorageMetrics() // fold in recovery/initial-persist counts from Open
	s.syncReplicationMetrics()
	s.syncMVCCMetrics() // folds from WAL replay before the server existed

	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.handleInstall)
	mux.HandleFunc("GET /queries", s.handleList)
	mux.HandleFunc("POST /queries/{name}/run", s.handleRun)
	mux.HandleFunc("POST /graph/vertices", s.handleAddVertex)
	mux.HandleFunc("POST /graph/vertices/attrs", s.handleSetVertexAttrs)
	mux.HandleFunc("POST /graph/edges", s.handleAddEdge)
	mux.HandleFunc("POST /admin/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/metrics/history", s.handleMetricsHistory)
	mux.HandleFunc("GET /cluster/node", s.handleClusterNode)
	mux.HandleFunc("GET /cluster/status", s.handleClusterStatus)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if cfg.Store != nil && cfg.Follower == nil {
		// Any durable non-follower gsqld can lead: the replication
		// routes are read-only views of the store, safe to expose
		// unconditionally next to the query routes.
		s.leader = replication.NewLeader(cfg.Store, s.log)
		s.leader.Register(mux)
	}
	if cfg.MetricsHistory > 0 {
		s.hist = metrics.NewHistory(s.reg, cfg.MetricsHistory, cfg.MetricsHistorySize)
		// Samples must see the same values a scrape would, so fold the
		// externally-owned counters in before each Gather.
		s.hist.PreSample = func() {
			s.syncStorageMetrics()
			s.syncReplicationMetrics()
			s.syncMVCCMetrics()
		}
		s.hist.Start()
	}
	s.mux = mux
	s.root = s.withRequestID(mux)
	return s
}

// History exposes the metrics history sampler (nil when disabled).
func (s *Server) History() *metrics.History { return s.hist }

// Handler returns the root http.Handler (request-id middleware
// included).
func (s *Server) Handler() http.Handler { return s.root }

// ServeHTTP makes Server itself an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.root.ServeHTTP(w, r) }

// Registry exposes the metrics registry (tests, expvar publication).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// ReplicationLock exposes the writer mutex for a follower to bind
// (replication.Follower.Bind holds it around each applied record, so
// shipped records land with the same exclusion the mutation routes
// get; reads stay lock-free on pinned snapshots either way).
func (s *Server) ReplicationLock() sync.Locker { return &s.wmu }

// AddTrace retains a span in the /debug/traces ring — the follower's
// bootstrap and rotation spans land next to query and mutation traces.
func (s *Server) AddTrace(sp *trace.Span) { s.ring.Add(sp) }

// store returns the store whose counters the storage metrics reflect:
// the configured one, or in follower mode the follower's current store
// (which a re-bootstrap may have replaced since the last call).
func (s *Server) store() *storage.Store {
	if s.cfg.Follower != nil {
		return s.cfg.Follower.Store()
	}
	return s.cfg.Store
}

// PublishExpvar publishes the registry under name in the process-wide
// expvar namespace, so GET /debug/vars includes the gsqld metrics next
// to memstats. Publishing is process-global and panics on duplicate
// names, so it is an explicit step the binary takes once rather than a
// side effect of New (tests build many Servers per process).
func (s *Server) PublishExpvar(name string) {
	s.reg.PublishExpvar(name)
}

// Shutdown stops admitting work, waits for in-flight runs to drain or
// for ctx to expire, then — when a Store is attached and the drain
// completed — checkpoints it, so a graceful stop leaves a fresh
// snapshot and an empty WAL for the next boot to open instantly. New
// requests get 503 while draining.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.hist != nil {
		s.hist.Stop()
	}
	s.log.Info("draining", "reason", "shutdown")
	start := time.Now()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.log.Error("shutdown drain timed out", "waited", time.Since(start))
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
	// A follower never checkpoints on its own: its snapshot/WAL
	// generations must keep mirroring the leader's, and its position is
	// already continuously durable (every applied record is re-logged).
	if s.cfg.Store != nil && s.cfg.Follower == nil {
		s.wmu.Lock()
		err := s.cfg.Store.Checkpoint()
		s.wmu.Unlock()
		if err != nil {
			return fmt.Errorf("server: checkpoint on drain: %w", err)
		}
	}
	s.log.Info("drained", "waited", time.Since(start),
		"checkpointed", s.cfg.Store != nil && s.cfg.Follower == nil)
	return nil
}

// ---- request/response shapes ---------------------------------------------

type installRequest struct {
	Source string `json:"source"`
}

type installResponse struct {
	Installed []string `json:"installed"`
}

type runRequest struct {
	Params    map[string]json.RawMessage `json:"params"`
	TimeoutMs int64                      `json:"timeout_ms"`
}

type runResponse struct {
	Query     string                `json:"query"`
	RequestID string                `json:"request_id,omitempty"`
	ElapsedMs float64               `json:"elapsed_ms"`
	Tables    map[string]*tableJSON `json:"tables,omitempty"`
	Printed   []*tableJSON          `json:"printed,omitempty"`
	Returned  *tableJSON            `json:"returned,omitempty"`
	Stats     runStatsJSON          `json:"stats"`
	// Trace is the run's span tree, present only when the request
	// asked for it with ?trace=1.
	Trace *trace.Span `json:"trace,omitempty"`
}

type runStatsJSON struct {
	BindingRows           int64 `json:"binding_rows"`
	Selects               int64 `json:"selects"`
	CountCacheHits        int64 `json:"count_cache_hits"`
	CountCacheMisses      int64 `json:"count_cache_misses"`
	SDMCRuns              int64 `json:"sdmc_runs"`
	ExpandShards          int64 `json:"expand_shards"`
	AccumCompiledStmts    int64 `json:"accum_compiled_stmts"`
	AccumInterpretedStmts int64 `json:"accum_interpreted_stmts"`
	FusionBlocksFused     int64 `json:"fusion_blocks_fused"`
}

type queryInfo struct {
	Name   string      `json:"name"`
	Params []paramInfo `json:"params"`
}

type paramInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// Leader carries the leader's base URL on a follower's read_only
	// rejection (alongside the Leader response header), so load
	// generators and clients can redirect the mutation without
	// out-of-band configuration.
	Leader string `json:"leader,omitempty"`
}

// ---- error mapping --------------------------------------------------------

// httpStatus maps the core error taxonomy onto HTTP statuses:
// ErrParse 400, ErrUnknownQuery 404, ErrDuplicateQuery and
// ErrDuplicateKey 409, ErrCancelled 408, ErrOverload 429; anything
// else is a 500.
func httpStatus(err error) (int, string) {
	switch {
	case errors.Is(err, core.ErrParse):
		return http.StatusBadRequest, "parse_error"
	case errors.Is(err, core.ErrUnknownQuery):
		return http.StatusNotFound, "unknown_query"
	case errors.Is(err, core.ErrDuplicateQuery):
		return http.StatusConflict, "duplicate_query"
	case errors.Is(err, graph.ErrDuplicateKey):
		return http.StatusConflict, "duplicate_key"
	case errors.Is(err, core.ErrCancelled):
		return http.StatusRequestTimeout, "cancelled"
	case errors.Is(err, core.ErrOverload):
		return http.StatusTooManyRequests, "overload"
	case errors.Is(err, replication.ErrReadOnly):
		return http.StatusForbidden, "read_only"
	}
	return http.StatusInternalServerError, "internal"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status, code := httpStatus(err)
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
}

// ---- handlers -------------------------------------------------------------

func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.mRejected.With("draining").Inc()
	writeJSON(w, http.StatusServiceUnavailable,
		errorResponse{Error: "server is draining", Code: "draining"})
	return true
}

// rejectReadOnly 403s mutation routes on a follower, advertising the
// leader's base URL in a Leader response header and the JSON body so
// the client can redirect the write itself.
func (s *Server) rejectReadOnly(w http.ResponseWriter) bool {
	if s.cfg.Follower == nil {
		return false
	}
	s.mRejected.With("read_only").Inc()
	leader := s.cfg.Follower.LeaderURL()
	if leader != "" {
		w.Header().Set("Leader", leader)
	}
	writeJSON(w, http.StatusForbidden, errorResponse{
		Error:  fmt.Sprintf("%v (mutate the leader at %s)", replication.ErrReadOnly, leader),
		Code:   "read_only",
		Leader: leader,
	})
	return true
}

// handleInstall accepts GSQL source — raw text, or JSON
// {"source": "..."} when Content-Type is application/json — parses and
// installs every query in it, and echoes the installed names.
func (s *Server) handleInstall(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "reading body: " + err.Error(), Code: "bad_request"})
		return
	}
	src := string(body)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req installRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: "decoding JSON body: " + err.Error(), Code: "bad_request"})
			return
		}
		src = req.Source
	}
	f, err := gsql.Parse(src)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %w", core.ErrParse, err))
		return
	}
	// Install validates queries against the graph's schema. The engine
	// loads its graph pointer atomically, so a follower re-bootstrap
	// swapping the graph mid-install is safe without any lock here —
	// the schema is immutable per graph.
	err = s.eng.Install(src)
	if err != nil {
		writeError(w, err)
		return
	}
	names := make([]string, len(f.Queries))
	for i, q := range f.Queries {
		names[i] = q.Name
	}
	s.mInstalled.Set(int64(len(s.eng.Queries())))
	s.log.Info("queries installed",
		"request_id", requestID(r.Context()),
		"trace_id", traceID(r.Context()),
		"queries", names,
		"catalog_size", len(s.eng.Queries()))
	writeJSON(w, http.StatusCreated, installResponse{Installed: names})
}

// handleList returns the catalog with each query's typed signature.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names := s.eng.Queries()
	out := make([]queryInfo, 0, len(names))
	for _, name := range names {
		specs, err := s.eng.QueryParams(name)
		if err != nil {
			continue // raced with nothing — catalog only grows
		}
		qi := queryInfo{Name: name, Params: make([]paramInfo, len(specs))}
		for i, p := range specs {
			qi.Params[i] = paramInfo{Name: p.Name, Type: typeString(p.Type)}
		}
		out = append(out, qi)
	}
	writeJSON(w, http.StatusOK, map[string]any{"queries": out})
}

func typeString(t gsql.TypeRef) string {
	if t.VertexType != "" {
		return "vertex<" + t.VertexType + ">"
	}
	return t.Kind.String()
}

// handleRun executes an installed query under an admission slot and a
// deadline, recording latency and binding-row histograms.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	name := r.PathValue("name")
	specs, err := s.eng.QueryParams(name)
	if err != nil {
		writeError(w, err) // 404 before burning an admission slot
		return
	}
	var req runRequest
	if r.Body != nil {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: "reading body: " + err.Error(), Code: "bad_request"})
			return
		}
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				writeJSON(w, http.StatusBadRequest,
					errorResponse{Error: "decoding JSON body: " + err.Error(), Code: "bad_request"})
				return
			}
		}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = min(time.Duration(req.TimeoutMs)*time.Millisecond, s.cfg.MaxTimeout)
	}

	if err := s.adm.acquire(r.Context()); err != nil {
		if errors.Is(err, core.ErrOverload) {
			s.mRejected.With("overload").Inc()
		}
		writeError(w, err)
		return
	}
	defer s.adm.release()
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.mInflight.Inc()
	defer s.mInflight.Dec()

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// A span tree is collected when the client asks for it inline
	// (?trace=1), the request carries a cross-process X-Trace-Id (the
	// caller intends to fetch the tree by id later), or the slow-query
	// log is armed — in the latter case every run traces, because by
	// the time a run proves slow it is too late to start instrumenting
	// it.
	wantTrace := traceWanted(r)
	tid := traceID(r.Context())
	var root *trace.Span
	if wantTrace || tid != "" || s.cfg.SlowQueryThreshold > 0 {
		root = startTrace("query", r)
		ctx = trace.NewContext(ctx, root)
		s.mTracedRuns.Inc()
	}
	// Everything that reads the graph — parameter decoding (vertex
	// params resolve keys), execution, and response rendering (tables
	// hold VIDs that render as keys) — runs against ONE pinned snapshot,
	// taken here at admission. Concurrent mutations, a follower applying
	// shipped records, even a delta fold re-basing the graph: none of
	// them touch this run, and the run takes no lock. The response is
	// internally consistent at the snapshot's epoch by construction.
	snap := s.eng.Graph().Snapshot()
	root.SetInt("snapshot_epoch", int64(snap.Epoch()))
	s.mMVCCPinned.Inc()
	defer s.mMVCCPinned.Dec()
	start := time.Now()
	args, err := decodeParams(snap, specs, req.Params)
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: err.Error(), Code: "bad_params"})
		return
	}
	res, err := s.eng.RunOn(ctx, snap, name, args)
	elapsed := time.Since(start)
	root.End()
	s.mLatency.With(name).Observe(elapsed.Seconds())
	slow := s.cfg.SlowQueryThreshold > 0 && elapsed >= s.cfg.SlowQueryThreshold
	if err != nil {
		status := "error"
		if errors.Is(err, core.ErrCancelled) {
			status = "cancelled"
		}
		root.SetStr("error", err.Error())
		if wantTrace || tid != "" || slow {
			s.ring.Add(root)
		}
		if slow {
			s.logSlowQuery(r, name, req, elapsed, status, root)
		}
		s.mRuns.With(name, status).Inc()
		writeError(w, err)
		return
	}
	if wantTrace || tid != "" || slow {
		s.ring.Add(root)
	}
	if slow {
		s.logSlowQuery(r, name, req, elapsed, "ok", root)
	}
	s.mRuns.With(name, "ok").Inc()
	s.mRows.With(name).Observe(float64(res.Stats.BindingRows))
	s.mCacheHits.Add(uint64(res.Stats.CountCacheHits))
	s.mCacheMisses.Add(uint64(res.Stats.CountCacheMisses))
	s.mSDMCRuns.Add(uint64(res.Stats.SDMCRuns))
	s.mShards.Add(uint64(res.Stats.ExpandShards))
	s.mAccumCompiled.Add(uint64(res.Stats.AccumCompiledStmts))
	s.mAccumInterpreted.Add(uint64(res.Stats.AccumInterpretedStmts))
	s.mFusedBlocks.Add(uint64(res.Stats.FusionBlocksFused))

	resp := runResponse{
		Query:     name,
		RequestID: requestID(r.Context()),
		ElapsedMs: float64(elapsed.Microseconds()) / 1000,
		Stats: runStatsJSON{
			BindingRows:           res.Stats.BindingRows,
			Selects:               res.Stats.Selects,
			CountCacheHits:        res.Stats.CountCacheHits,
			CountCacheMisses:      res.Stats.CountCacheMisses,
			SDMCRuns:              res.Stats.SDMCRuns,
			ExpandShards:          res.Stats.ExpandShards,
			AccumCompiledStmts:    res.Stats.AccumCompiledStmts,
			AccumInterpretedStmts: res.Stats.AccumInterpretedStmts,
			FusionBlocksFused:     res.Stats.FusionBlocksFused,
		},
	}
	if len(res.Tables) > 0 {
		resp.Tables = make(map[string]*tableJSON, len(res.Tables))
		for tn, t := range res.Tables {
			resp.Tables[tn] = toTableJSON(snap, t)
		}
	}
	for _, t := range res.Printed {
		resp.Printed = append(resp.Printed, toTableJSON(snap, t))
	}
	if res.Returned != nil {
		resp.Returned = toTableJSON(snap, res.Returned)
	}
	if wantTrace {
		resp.Trace = root
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncStorageMetrics()
	s.syncReplicationMetrics()
	s.syncMVCCMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// 503 while draining so load balancers and scrapes agree the
		// instance is on its way out (runs still in flight complete).
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{
		"status":  status,
		"role":    s.role(),
		"version": s.buildVersion,
		"commit":  s.buildCommit,
	})
}
