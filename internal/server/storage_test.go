package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/storage"
	"gsqlgo/internal/value"
)

func socialInit() (*graph.Graph, error) {
	s := graph.NewSchema()
	s.AddVertexType("Person",
		graph.AttrDef{Name: "name", Type: graph.AttrString},
		graph.AttrDef{Name: "age", Type: graph.AttrInt})
	s.AddEdgeType("Knows", false, graph.AttrDef{Name: "since", Type: graph.AttrInt})
	return graph.New(s), nil
}

// newStorageServer opens (or reopens) a store in dir and builds a
// Server over it — one simulated gsqld process life.
func newStorageServer(t *testing.T, dir string) (*Server, *storage.Store, *httptest.Server) {
	t.Helper()
	st, err := storage.Open(dir, storage.Options{Init: socialInit})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(st.Graph(), core.Options{Workers: 2})
	srv := New(Config{Engine: eng, Store: st})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, st, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

const degreeQuery = `CREATE QUERY Degree() {
  SumAccum<int> @deg;
  R = SELECT p FROM Person:p -(Knows)- Person:q ACCUM p.@deg += 1;
  PRINT R[R.name, R.@deg];
}`

func runDegree(t *testing.T, baseURL string) string {
	t.Helper()
	resp, body := postJSON(t, baseURL+"/queries/Degree/run", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	return string(body)
}

// TestSetVertexAttrsRoute: POST /graph/vertices/attrs updates a
// key-addressed vertex, WAL-logs the change, and rejects unknown
// types, vertices, and attributes with the usual taxonomy.
func TestSetVertexAttrsRoute(t *testing.T) {
	dir := t.TempDir()
	_, st, ts := newStorageServer(t, dir)
	resp, body := postJSON(t, ts.URL+"/graph/vertices", map[string]any{
		"type": "Person", "key": "ada",
		"attrs": map[string]any{"name": "Ada", "age": 36},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add vertex: %d %s", resp.StatusCode, body)
	}
	walBefore := st.Stats().WALRecords

	resp, body = postJSON(t, ts.URL+"/graph/vertices/attrs", map[string]any{
		"type": "Person", "key": "ada",
		"attrs": map[string]any{"age": 37},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("set attrs: %d %s", resp.StatusCode, body)
	}
	g := st.Graph()
	id, _ := g.VertexByKey("Person", "ada")
	if v, ok := g.VertexAttr(id, "age"); !ok || v.Int() != 37 {
		t.Fatalf("age after update: %v", v)
	}
	if got := st.Stats().WALRecords; got != walBefore+1 {
		t.Fatalf("WAL records %d, want %d (update must be logged)", got, walBefore+1)
	}

	for _, bad := range []struct {
		body map[string]any
		want int
	}{
		{map[string]any{"type": "Robot", "key": "ada", "attrs": map[string]any{"age": 1}}, http.StatusNotFound},
		{map[string]any{"type": "Person", "key": "nobody", "attrs": map[string]any{"age": 1}}, http.StatusNotFound},
		{map[string]any{"type": "Person", "key": "ada", "attrs": map[string]any{"shoeSize": 1}}, http.StatusBadRequest},
		{map[string]any{"type": "Person", "key": "ada"}, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, ts.URL+"/graph/vertices/attrs", bad.body)
		if resp.StatusCode != bad.want {
			t.Errorf("set attrs %v: %d %s, want %d", bad.body, resp.StatusCode, body, bad.want)
		}
	}
}

// TestServerMutationsSurviveRestart is the serving-layer acceptance
// test: mutate over HTTP, stop the server (graceful drain +
// checkpoint), start a fresh server over the same directory, and see
// identical data and query results.
func TestServerMutationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	srv, st, ts := newStorageServer(t, dir)

	// Install the query and build a little graph over the wire.
	resp, body := postJSON(t, ts.URL+"/queries", map[string]string{"source": degreeQuery})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("install: %d %s", resp.StatusCode, body)
	}
	for i, p := range []struct {
		key  string
		name string
		age  int
	}{{"ada", "Ada", 36}, {"bob", "Bob", 41}, {"cyd", "Cyd", 28}} {
		resp, body := postJSON(t, ts.URL+"/graph/vertices", map[string]any{
			"type": "Person", "key": p.key,
			"attrs": map[string]any{"name": p.name, "age": p.age},
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("add vertex: %d %s", resp.StatusCode, body)
		}
		var mr mutationResponse
		if err := json.Unmarshal(body, &mr); err != nil {
			t.Fatal(err)
		}
		if mr.ID != int64(i) || mr.Vertices != i+1 {
			t.Fatalf("vertex %d: response %+v", i, mr)
		}
	}
	for _, e := range [][2]string{{"ada", "bob"}, {"bob", "cyd"}} {
		resp, body := postJSON(t, ts.URL+"/graph/edges", map[string]any{
			"type":  "Knows",
			"src":   map[string]string{"type": "Person", "key": e[0]},
			"dst":   map[string]string{"type": "Person", "key": e[1]},
			"attrs": map[string]any{"since": 2020},
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("add edge %v: %d %s", e, resp.StatusCode, body)
		}
	}

	// Error surface: duplicate key 409, unknown endpoint 404, bad attr 400.
	resp, _ = postJSON(t, ts.URL+"/graph/vertices", map[string]any{"type": "Person", "key": "ada"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate vertex: %d, want 409", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/graph/edges", map[string]any{
		"type": "Knows",
		"src":  map[string]string{"type": "Person", "key": "nobody"},
		"dst":  map[string]string{"type": "Person", "key": "ada"},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("edge from unknown vertex: %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/graph/vertices", map[string]any{
		"type": "Person", "key": "dee", "attrs": map[string]any{"age": "not a number"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad attr: %d, want 400", resp.StatusCode)
	}

	want := runDegree(t, ts.URL)

	// Storage metrics are exported.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, m := range []string{
		"gsqld_storage_wal_records_total 5",
		"gsqld_storage_checkpoints_total 1",
		"gsqld_storage_recoveries_total 0",
	} {
		if !strings.Contains(string(mbody), m) {
			t.Fatalf("metrics missing %q:\n%s", m, mbody)
		}
	}

	// Stop process one: graceful drain checkpoints, then the store closes.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Process two.
	srv2, st2, ts2 := newStorageServer(t, dir)
	if !st2.Recovered() {
		t.Fatal("restart did not recover")
	}
	if n := st2.Stats().ReplayedRecords; n != 0 {
		t.Fatalf("clean shutdown left %d WAL records to replay, want 0", n)
	}
	g := st2.Graph()
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("recovered %d vertices / %d edges, want 3 / 2", g.NumVertices(), g.NumEdges())
	}
	if v, ok := g.VertexByKey("Person", "bob"); !ok {
		t.Fatal("bob did not survive the restart")
	} else if got, _ := g.VertexAttr(v, "age"); !value.Equal(got, value.NewInt(41)) {
		t.Fatalf("bob's age after restart: %v", got)
	}
	resp, body = postJSON(t, ts2.URL+"/queries", map[string]string{"source": degreeQuery})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("reinstall: %d %s", resp.StatusCode, body)
	}
	got := runDegree(t, ts2.URL)
	// elapsed_ms and request_id differ between runs; compare
	// everything else.
	stripElapsed := func(s string) string {
		var m map[string]any
		if err := json.Unmarshal([]byte(s), &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "elapsed_ms")
		delete(m, "request_id")
		out, _ := json.Marshal(m)
		return string(out)
	}
	if stripElapsed(got) != stripElapsed(want) {
		t.Fatalf("post-restart results differ:\n%s\nwant:\n%s", got, want)
	}

	// Recovery metric reflects the reopen.
	mresp2, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody2, _ := io.ReadAll(mresp2.Body)
	mresp2.Body.Close()
	if !strings.Contains(string(mbody2), "gsqld_storage_recoveries_total 1") {
		t.Fatalf("metrics missing recovery count:\n%s", mbody2)
	}

	_ = srv2.Shutdown(context.Background())
	_ = st2.Close()
}

// TestCheckpointEndpoint drives POST /admin/checkpoint and the
// no-store 409.
func TestCheckpointEndpoint(t *testing.T) {
	dir := t.TempDir()
	srv, st, ts := newStorageServer(t, dir)
	if _, err := st.Graph().AddVertex("Person", "ada", nil); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/admin/checkpoint", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, body)
	}
	var cr checkpointResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Checkpoints != 2 || cr.WALRecords != 1 {
		t.Fatalf("checkpoint response %+v, want 2 checkpoints / 1 WAL record", cr)
	}
	_ = srv.Shutdown(context.Background())
	_ = st.Close()

	// A server without a store refuses.
	g, _ := socialInit()
	plain := New(Config{Engine: core.New(g, core.Options{Workers: 1})})
	ts2 := httptest.NewServer(plain)
	defer ts2.Close()
	resp, body = postJSON(t, ts2.URL+"/admin/checkpoint", map[string]any{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint without store: %d %s", resp.StatusCode, body)
	}
}

// TestConcurrentMutationsAndRuns hammers mutation and run routes
// concurrently; under -race this checks the writer-mutex discipline
// and the lock-free snapshot read path against each other.
func TestConcurrentMutationsAndRuns(t *testing.T) {
	dir := t.TempDir()
	srv, st, ts := newStorageServer(t, dir)
	resp, body := postJSON(t, ts.URL+"/queries", map[string]string{"source": degreeQuery})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("install: %d %s", resp.StatusCode, body)
	}
	if _, err := st.Graph().AddVertex("Person", "seed", nil); err != nil {
		t.Fatal(err)
	}

	const writers, edgers, readers, perWorker = 4, 2, 4, 20
	errs := make(chan error, writers+edgers+readers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				resp, body := postJSON(t, ts.URL+"/graph/vertices", map[string]any{
					"type": "Person", "key": fmt.Sprintf("p%d-%d", w, i),
				})
				if resp.StatusCode != http.StatusCreated {
					errs <- fmt.Errorf("writer %d: %d %s", w, resp.StatusCode, body)
					return
				}
			}
			errs <- nil
		}(w)
	}
	// Edge inserts resolve endpoints through the key index the vertex
	// writers are growing — the lookup-vs-insert race lives (lived) here.
	for w := 0; w < edgers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				resp, body := postJSON(t, ts.URL+"/graph/edges", map[string]any{
					"type":  "Knows",
					"src":   map[string]string{"type": "Person", "key": "seed"},
					"dst":   map[string]string{"type": "Person", "key": "seed"},
					"attrs": map[string]any{"since": i},
				})
				if resp.StatusCode != http.StatusCreated {
					errs <- fmt.Errorf("edger %d: %d %s", w, resp.StatusCode, body)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for r := 0; r < readers; r++ {
		go func(r int) {
			for i := 0; i < perWorker; i++ {
				resp, body := postJSON(t, ts.URL+"/queries/Degree/run", map[string]any{})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: %d %s", r, resp.StatusCode, body)
					return
				}
			}
			errs <- nil
		}(r)
	}
	for i := 0; i < writers+edgers+readers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Graph().NumVertices(); got != 1+writers*perWorker {
		t.Fatalf("graph has %d vertices, want %d", got, 1+writers*perWorker)
	}
	if got := st.Graph().NumEdges(); got != edgers*perWorker {
		t.Fatalf("graph has %d edges, want %d", got, edgers*perWorker)
	}
	_ = srv.Shutdown(context.Background())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything written under concurrency is recoverable.
	st2, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Graph().NumVertices(); got != 1+writers*perWorker {
		t.Fatalf("recovered %d vertices, want %d", got, 1+writers*perWorker)
	}
	if got := st2.Graph().NumEdges(); got != edgers*perWorker {
		t.Fatalf("recovered %d edges, want %d", got, edgers*perWorker)
	}
}
