package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gsqlgo/internal/cluster"
	"gsqlgo/internal/core"
	"gsqlgo/internal/replication"
	"gsqlgo/internal/storage"
	"gsqlgo/internal/trace"
)

// doHdr is do() with extra request headers (pairs).
func doHdr(s *Server, method, path, body string, hdr ...string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestTraceIDRoundTrip is the in-process half of cross-process trace
// propagation: a client-supplied X-Trace-Id is echoed on the response,
// arms span collection for the run, lands as the root span's trace_id
// attribute, and the trace is fetchable by that exact id afterwards.
func TestTraceIDRoundTrip(t *testing.T) {
	s := salesServer(t, Config{})
	if w := do(s, "POST", "/queries", topKToysSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}

	tid := trace.NewID()
	w := doHdr(s, "POST", "/queries/TopKToys/run", `{"params":{"c":"c0","k":3}}`,
		"X-Trace-Id", tid)
	if w.Code != http.StatusOK {
		t.Fatalf("run: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Trace-Id"); got != tid {
		t.Fatalf("echoed X-Trace-Id = %q, want %q", got, tid)
	}
	// The trace must NOT be inlined — only ?trace=1 does that.
	if resp := decode[runResponse](t, w); resp.Trace != nil {
		t.Fatal("X-Trace-Id alone must not inline the trace in the response")
	}

	// An unrelated run (no id) so the ring holds more than our trace.
	if w := do(s, "POST", "/queries/TopKToys/run", `{"params":{"c":"c1","k":3}}`); w.Code != http.StatusOK {
		t.Fatalf("unsampled run: %d %s", w.Code, w.Body)
	}

	var traces struct {
		Traces []*trace.SpanJSON `json:"traces"`
	}
	traces = decode[struct {
		Traces []*trace.SpanJSON `json:"traces"`
	}](t, do(s, "GET", "/debug/traces?trace_id="+tid, ""))
	if len(traces.Traces) != 1 {
		t.Fatalf("fetch by id returned %d traces, want exactly 1", len(traces.Traces))
	}
	root := traces.Traces[0]
	if root.Name != "query" {
		t.Errorf("root span = %q, want query", root.Name)
	}
	if got := root.Attrs["trace_id"]; got != tid {
		t.Errorf("root trace_id attr = %v, want %q", got, tid)
	}
	if len(root.Children) == 0 {
		t.Error("root span has no children — execution stages missing")
	}

	// A different id matches nothing.
	miss := decode[struct {
		Traces []*trace.SpanJSON `json:"traces"`
	}](t, do(s, "GET", "/debug/traces?trace_id="+trace.NewID(), ""))
	if len(miss.Traces) != 0 {
		t.Fatalf("unknown id matched %d traces", len(miss.Traces))
	}

	// A malformed header is ignored, not echoed.
	w = doHdr(s, "POST", "/queries/TopKToys/run", `{"params":{"c":"c0","k":3}}`,
		"X-Trace-Id", "not hex!")
	if got := w.Header().Get("X-Trace-Id"); got != "" {
		t.Fatalf("malformed id echoed as %q", got)
	}
}

// TestMetricsHistoryEndpoint drives the sampler by hand and reads the
// computed rates back through the HTTP surface.
func TestMetricsHistoryEndpoint(t *testing.T) {
	// Disabled server: the endpoint self-describes rather than 404ing.
	off := salesServer(t, Config{})
	if doc := decode[map[string]any](t, do(off, "GET", "/debug/metrics/history", "")); doc["enabled"] != false {
		t.Fatalf("disabled doc = %v", doc)
	}

	// Enabled, but with an hour-long interval so only SampleNow drives
	// the ring — the test owns the timeline.
	s := salesServer(t, Config{MetricsHistory: time.Hour})
	defer s.History().Stop()
	if w := do(s, "POST", "/queries", topKToysSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	for i := 0; i < 3; i++ {
		if w := do(s, "POST", "/queries/TopKToys/run", `{"params":{"c":"c0","k":3}}`); w.Code != http.StatusOK {
			t.Fatalf("run: %d %s", w.Code, w.Body)
		}
	}
	time.Sleep(5 * time.Millisecond) // Start() took sample 0 at boot; give the window width
	s.History().SampleNow()

	type doc struct {
		Enabled         bool                   `json:"enabled"`
		IntervalSeconds float64                `json:"interval_seconds"`
		Samples         int                    `json:"samples"`
		WindowSeconds   float64                `json:"window_seconds"`
		Series          map[string]seriesRateJ `json:"series"`
	}
	d := decode[doc](t, do(s, "GET", "/debug/metrics/history", ""))
	if !d.Enabled || d.Samples < 2 || d.WindowSeconds <= 0 {
		t.Fatalf("history doc = %+v", d)
	}
	runs := d.Series[`gsqld_query_runs_total{query="TopKToys",status="ok"}`]
	if runs.Delta != 3 || runs.PerSecond <= 0 {
		t.Errorf("runs series = %+v, want delta 3 with positive rate", runs)
	}
	lat := d.Series[`gsqld_query_latency_seconds{query="TopKToys"}`]
	if lat.Count != 3 || lat.P50 <= 0 || lat.P99 < lat.P50 {
		t.Errorf("latency series = %+v, want 3 window obs with ordered quantiles", lat)
	}

	if w := do(s, "GET", "/debug/metrics/history?window=bogus", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("bad window: %d", w.Code)
	}
}

type seriesRateJ struct {
	Kind      string  `json:"kind"`
	Last      float64 `json:"last"`
	Delta     float64 `json:"delta"`
	PerSecond float64 `json:"per_second"`
	Count     uint64  `json:"count"`
	P50       float64 `json:"p50"`
	P90       float64 `json:"p90"`
	P99       float64 `json:"p99"`
}

// TestClusterNodeStandalone: the self-report of a plain in-memory node.
func TestClusterNodeStandalone(t *testing.T) {
	s := salesServer(t, Config{})
	if w := do(s, "POST", "/queries", topKToysSrc); w.Code != http.StatusCreated {
		t.Fatalf("install: %d %s", w.Code, w.Body)
	}
	for i := 0; i < 2; i++ {
		if w := do(s, "POST", "/queries/TopKToys/run", `{"params":{"c":"c0","k":3}}`); w.Code != http.StatusOK {
			t.Fatalf("run: %d %s", w.Code, w.Body)
		}
	}
	ns := decode[cluster.NodeStatus](t, do(s, "GET", "/cluster/node", ""))
	if ns.Role != "standalone" || ns.Status != "ok" || ns.URL != "self" {
		t.Fatalf("node status = %+v", ns)
	}
	if ns.RunsTotal != 2 || ns.ErrorsTotal != 0 || ns.InstalledQueries != 1 {
		t.Errorf("counters = runs %d errs %d installed %d", ns.RunsTotal, ns.ErrorsTotal, ns.InstalledQueries)
	}
	if ns.QPS <= 0 || ns.P50Seconds <= 0 {
		t.Errorf("rates = qps %g p50 %g, want positive lifetime fallbacks", ns.QPS, ns.P50Seconds)
	}
	if ns.WALSeq != 0 {
		t.Errorf("in-memory node reports WAL seq %d", ns.WALSeq)
	}

	// A cluster/status with no peers is just the self row.
	st := decode[cluster.Status](t, do(s, "GET", "/cluster/status", ""))
	if len(st.Nodes) != 1 || st.Nodes[0].Role != "standalone" || st.ReportedBy != "self" {
		t.Fatalf("cluster status = %+v", st)
	}
}

// listenURL reserves a real port so a node can know its advertised URL
// before the server handling it exists.
func listenURL(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln, "http://" + ln.Addr().String()
}

func serveOn(ln net.Listener, s *Server) *httptest.Server {
	ts := &httptest.Server{Listener: ln, Config: &http.Server{Handler: s}}
	ts.Start()
	return ts
}

// TestClusterStatusEndToEnd boots a real leader and follower on real
// sockets, replicates live writes, and asserts the leader's merged
// /cluster/status sees both nodes with exact roles and drained lag —
// the follower having been learned from replication traffic alone (no
// -peers configuration anywhere).
func TestClusterStatusEndToEnd(t *testing.T) {
	leaderLn, leaderURL := listenURL(t)
	followerLn, followerURL := listenURL(t)

	st, err := storage.Open(t.TempDir(), storage.Options{Init: socialInit})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	leader := New(Config{
		Engine:       core.New(st.Graph(), core.Options{Workers: 2}),
		Store:        st,
		AdvertiseURL: leaderURL,
	})
	lts := serveOn(leaderLn, leader)
	defer lts.Close()

	installDegree(t, leader)
	for i := 0; i < 50; i++ {
		addPerson(t, leader, fmt.Sprintf("p-%d", i), 20+i)
	}
	if w := do(leader, "POST", "/admin/checkpoint", "{}"); w.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", w.Code, w.Body)
	}

	fw, err := replication.OpenFollower(context.Background(), replication.FollowerConfig{
		LeaderURL:    leaderURL,
		Dir:          t.TempDir(),
		AdvertiseURL: followerURL,
		PollWait:     20 * time.Millisecond,
		Backoff:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(fw.Graph(), core.Options{Workers: 2})
	follower := New(Config{Engine: eng, Follower: fw, AdvertiseURL: followerURL})
	fw.Bind(follower.ReplicationLock(), func(st *storage.Store) { eng.SetGraph(st.Graph()) }, follower.AddTrace)
	fts := serveOn(followerLn, follower)
	defer fts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fw.Run(ctx) }()
	defer func() {
		cancel()
		<-done
		fw.Close()
	}()

	// More writes while the follower tails — including a checkpoint, so
	// the tail loop crosses a WAL rotation and records a rotate span
	// under the follower's lifetime trace id. Then wait for convergence.
	for i := 50; i < 100; i++ {
		addPerson(t, leader, fmt.Sprintf("p-%d", i), 20+i%60)
	}
	if w := do(leader, "POST", "/admin/checkpoint", "{}"); w.Code != http.StatusOK {
		t.Fatalf("mid-tail checkpoint: %d %s", w.Code, w.Body)
	}
	for i := 100; i < 120; i++ {
		addPerson(t, leader, fmt.Sprintf("p-%d", i), 20+i%60)
	}
	for i := 0; i < 4; i++ {
		if w := do(leader, "POST", "/queries/Degree/run", "{}"); w.Code != http.StatusOK {
			t.Fatalf("leader read: %d %s", w.Code, w.Body)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		wantSeq, wantOff := st.Position()
		seq, off := fw.Position()
		if seq == wantSeq && off == wantOff && fw.Stats().LagRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at (%d,%d) lag %d, leader at (%d,%d)",
				seq, off, fw.Stats().LagRecords, wantSeq, wantOff)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The leader learned the follower purely from HdrReplicaURL.
	doc := decode[cluster.Status](t, do(leader, "GET", "/cluster/status", ""))
	if doc.ReportedBy != leaderURL {
		t.Fatalf("reported_by = %q, want %q", doc.ReportedBy, leaderURL)
	}
	if len(doc.Nodes) != 2 {
		t.Fatalf("cluster sees %d nodes, want 2: %+v", len(doc.Nodes), doc.Nodes)
	}
	byRole := map[string]cluster.NodeStatus{}
	for _, n := range doc.Nodes {
		if n.Error != "" {
			t.Fatalf("node %s unreachable: %s", n.URL, n.Error)
		}
		byRole[n.Role] = n
	}
	l, ok := byRole["leader"]
	if !ok {
		t.Fatalf("no leader row: %+v", doc.Nodes)
	}
	f, ok := byRole["follower"]
	if !ok {
		t.Fatalf("no follower row: %+v", doc.Nodes)
	}
	if l.URL != leaderURL || f.URL != followerURL {
		t.Errorf("urls = leader %q follower %q, want %q / %q", l.URL, f.URL, leaderURL, followerURL)
	}
	if f.LeaderURL != leaderURL {
		t.Errorf("follower leader_url = %q, want %q", f.LeaderURL, leaderURL)
	}
	if f.LagRecords != 0 || f.LagBytes != 0 {
		t.Errorf("follower lag = %d records %d bytes, want 0/0 after convergence", f.LagRecords, f.LagBytes)
	}
	if l.WALSeq == 0 || l.WALSeq != f.WALSeq || l.WALOffset != f.WALOffset {
		t.Errorf("WAL positions: leader (%d,%d) follower (%d,%d), want equal and nonzero",
			l.WALSeq, l.WALOffset, f.WALSeq, f.WALOffset)
	}
	if l.SnapshotEpoch != f.SnapshotEpoch {
		t.Errorf("epochs: leader %d follower %d, want equal", l.SnapshotEpoch, f.SnapshotEpoch)
	}
	if l.RunsTotal != 4 {
		t.Errorf("leader runs_total = %d, want the 4 Degree runs", l.RunsTotal)
	}

	// The follower's own status fans out to the leader (learned from
	// its -follow target) and sees both rows too.
	fdoc := decode[cluster.Status](t, do(follower, "GET", "/cluster/status", ""))
	if len(fdoc.Nodes) != 2 {
		t.Fatalf("follower-side cluster sees %d nodes, want 2", len(fdoc.Nodes))
	}

	// The follower's lifetime trace id stitches its replication spans
	// into its /debug/traces ring.
	ftr := decode[struct {
		Traces []*trace.SpanJSON `json:"traces"`
	}](t, do(follower, "GET", "/debug/traces?trace_id="+fw.TraceID(), ""))
	if len(ftr.Traces) == 0 {
		t.Error("follower ring holds no spans under its lifetime trace id")
	}
}
