package server

import (
	"context"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"gsqlgo/internal/cluster"
	"gsqlgo/internal/metrics"
)

// Cluster-wide status: every gsqld self-reports at GET /cluster/node,
// and GET /cluster/status fans out to every peer the node knows about
// — the explicit -peers list, followers learned from replication
// traffic (leader side), and the leader being tailed (follower side) —
// merging the reports into one cluster.Status document. The fan-out is
// best-effort by design: an unreachable peer becomes a row with its
// Error field set, never a failed request.

// peerMaxAge bounds how stale a replication-learned peer may be before
// /cluster/status stops fanning out to it. Followers long-poll with a
// 10s default wait, so anything silent for this long is gone or stuck.
const peerMaxAge = 90 * time.Second

// clusterFanoutTimeout caps the whole peer fan-out.
const clusterFanoutTimeout = 2 * time.Second

// clusterClient performs peer scrapes; its timeout backstops the
// fan-out context for connections that stall mid-body.
var clusterClient = &http.Client{Timeout: clusterFanoutTimeout + time.Second}

// role names this node's replication role, as /healthz reports it.
func (s *Server) role() string {
	switch {
	case s.cfg.Follower != nil:
		return "follower"
	case s.cfg.Store != nil:
		return "leader"
	}
	return "standalone"
}

// peerURLs assembles every known peer base URL: configured peers, plus
// followers seen recently on the replication routes, plus (on a
// follower) the leader itself. Self-advertised URL excluded, "/"
// suffixes normalized, sorted for stable fan-out order.
func (s *Server) peerURLs() []string {
	self := strings.TrimSuffix(s.cfg.AdvertiseURL, "/")
	seen := map[string]bool{}
	var out []string
	add := func(u string) {
		u = strings.TrimSuffix(u, "/")
		if u == "" || u == self || seen[u] {
			return
		}
		seen[u] = true
		out = append(out, u)
	}
	for _, u := range s.cfg.Peers {
		add(u)
	}
	if s.leader != nil {
		for _, u := range s.leader.Peers(peerMaxAge) {
			add(u)
		}
	}
	if s.cfg.Follower != nil {
		add(s.cfg.Follower.LeaderURL())
	}
	sort.Strings(out)
	return out
}

// nodeStatus assembles this node's self-report from live state: role
// and build identity, the serving graph's MVCC lineage, the durable
// store's WAL position, replication lag (follower), and query-service
// rates — window-local when the metrics history is sampling, lifetime
// otherwise.
func (s *Server) nodeStatus() cluster.NodeStatus {
	ns := cluster.NodeStatus{
		URL:           strings.TrimSuffix(s.cfg.AdvertiseURL, "/"),
		Role:          s.role(),
		Status:        "ok",
		Version:       s.buildVersion,
		Commit:        s.buildCommit,
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	if ns.URL == "" {
		ns.URL = "self"
	}
	if s.draining.Load() {
		ns.Status = "draining"
	}
	mv := s.eng.Graph().MVCCStats()
	ns.SnapshotEpoch, ns.MVCCFolds, ns.DeltaRecords = mv.Epoch, mv.Folds, mv.DeltaRecords
	if st := s.store(); st != nil {
		seq, off := st.Position()
		stats := st.Stats()
		ns.WALSeq, ns.WALOffset = seq, off
		ns.WALRecords, ns.WALBytes = stats.WALRecords, stats.WALBytes
		ns.Checkpoints = stats.Checkpoints
	}
	if f := s.cfg.Follower; f != nil {
		fs := f.Stats()
		ns.LeaderURL = f.LeaderURL()
		ns.LagRecords, ns.LagBytes = fs.LagRecords, fs.LagBytes
	}
	ns.InstalledQueries = s.mInstalled.Value()
	ns.Inflight = s.mInflight.Value()

	var latBounds []float64
	var latMerged []uint64
	for _, p := range s.reg.Gather() {
		switch p.Name {
		case "gsqld_query_runs_total":
			ns.RunsTotal += uint64(p.Value)
			if !strings.Contains(p.Labels, `status="ok"`) {
				ns.ErrorsTotal += uint64(p.Value)
			}
		case "gsqld_query_latency_seconds":
			if latBounds == nil {
				latBounds = p.Bounds
				latMerged = make([]uint64, len(p.Buckets))
			}
			for i, c := range p.Buckets {
				if i < len(latMerged) {
					latMerged[i] += c
				}
			}
		}
	}
	if w, qps, p50, p90, p99, ok := s.windowStats(30 * time.Second); ok {
		ns.WindowSeconds = w
		ns.QPS, ns.P50Seconds, ns.P90Seconds, ns.P99Seconds = qps, p50, p90, p99
	} else {
		if ns.UptimeSeconds > 0 {
			ns.QPS = float64(ns.RunsTotal) / ns.UptimeSeconds
		}
		ns.P50Seconds = metrics.QuantileFromBuckets(latBounds, latMerged, 0.5)
		ns.P90Seconds = metrics.QuantileFromBuckets(latBounds, latMerged, 0.9)
		ns.P99Seconds = metrics.QuantileFromBuckets(latBounds, latMerged, 0.99)
	}
	return ns
}

// windowStats computes QPS and latency quantiles over the most recent
// history window: run-counter deltas for the rate, latency bucket
// deltas merged across queries for the quantiles. ok is false when the
// history is off or holds fewer than two samples in the window —
// callers fall back to lifetime aggregates.
func (s *Server) windowStats(window time.Duration) (w, qps, p50, p90, p99 float64, ok bool) {
	if s.hist == nil {
		return
	}
	samples := s.hist.Snapshot(window)
	if len(samples) < 2 {
		return
	}
	first, last := samples[0], samples[len(samples)-1]
	w = last.At.Sub(first.At).Seconds()
	if w <= 0 {
		return
	}
	base := make(map[string]metrics.Point, len(first.Points))
	for _, p := range first.Points {
		base[p.Key()] = p
	}
	var runsDelta float64
	var bounds []float64
	var deltas []uint64
	for _, p := range last.Points {
		b := base[p.Key()] // zero Point for series created mid-window
		switch p.Name {
		case "gsqld_query_runs_total":
			d := p.Value - b.Value
			if d < 0 {
				d = p.Value // counter reset
			}
			runsDelta += d
		case "gsqld_query_latency_seconds":
			if bounds == nil {
				bounds = p.Bounds
				deltas = make([]uint64, len(p.Buckets))
			}
			for i, c := range p.Buckets {
				var prev uint64
				if i < len(b.Buckets) {
					prev = b.Buckets[i]
				}
				if c >= prev && i < len(deltas) {
					deltas[i] += c - prev
				}
			}
		}
	}
	qps = runsDelta / w
	p50 = metrics.QuantileFromBuckets(bounds, deltas, 0.5)
	p90 = metrics.QuantileFromBuckets(bounds, deltas, 0.9)
	p99 = metrics.QuantileFromBuckets(bounds, deltas, 0.99)
	return w, qps, p50, p90, p99, true
}

// handleClusterNode serves this node's self-report.
func (s *Server) handleClusterNode(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.nodeStatus())
}

// handleClusterStatus serves the merged cluster document: this node's
// self-report first, then every known peer scraped concurrently.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), clusterFanoutTimeout)
	defer cancel()
	self := s.nodeStatus()
	peers := s.peerURLs()
	nodes := make([]cluster.NodeStatus, len(peers))
	var wg sync.WaitGroup
	for i, u := range peers {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			nodes[i] = cluster.FetchNode(ctx, clusterClient, u)
		}(i, u)
	}
	wg.Wait()
	out := cluster.Status{
		ReportedBy: self.URL,
		At:         time.Now().UTC(),
		Nodes:      append([]cluster.NodeStatus{self}, nodes...),
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetricsHistory serves the sampled time-series ring with
// computed per-series rates over ?window= (default: everything
// retained). ?raw=1 appends the raw samples. When the sampler is off
// the endpoint answers {"enabled": false} rather than 404, so probes
// can tell "disabled" from "old binary".
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	if s.hist == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	var window time.Duration
	if v := r.URL.Query().Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: "bad window: " + err.Error(), Code: "bad_request"})
			return
		}
		window = d
	}
	samples := s.hist.Snapshot(window)
	winSec, rates := metrics.RatesOver(samples)
	out := map[string]any{
		"enabled":          true,
		"interval_seconds": s.hist.Interval().Seconds(),
		"samples":          len(samples),
		"window_seconds":   winSec,
		"series":           rates,
	}
	if r.URL.Query().Get("raw") == "1" {
		out["raw"] = samples
	}
	writeJSON(w, http.StatusOK, out)
}
