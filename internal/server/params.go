package server

import (
	"encoding/json"
	"fmt"
	"strings"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/gsql"
	"gsqlgo/internal/value"
)

// decodeParams converts the JSON "params" object of a run request into
// engine argument values, guided by the installed query's declared
// parameter types (the paper's installed-query model: parameters are
// typed at install time, REST payloads are plain JSON).
//
// Accepted encodings per declared type:
//
//	int      JSON number (integral) or string of digits
//	float    JSON number
//	string   JSON string
//	bool     JSON bool
//	datetime JSON string "YYYY-MM-DD[ HH:MM:SS]" or number (Unix sec)
//	vertex<T> JSON string with the vertex key; bare "key" when the
//	         parameter is type-constrained, "Type:key" otherwise
func decodeParams(g *graph.Graph, specs []gsql.Param, raw map[string]json.RawMessage) (map[string]value.Value, error) {
	out := make(map[string]value.Value, len(raw))
	byName := make(map[string]gsql.Param, len(specs))
	for _, p := range specs {
		byName[p.Name] = p
	}
	for name, msg := range raw {
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown parameter %q", name)
		}
		v, err := decodeParam(g, p, msg)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", name, err)
		}
		out[name] = v
	}
	return out, nil
}

func decodeParam(g *graph.Graph, p gsql.Param, msg json.RawMessage) (value.Value, error) {
	dec := json.NewDecoder(strings.NewReader(string(msg)))
	dec.UseNumber()
	var rv any
	if err := dec.Decode(&rv); err != nil {
		return value.Null, err
	}
	switch p.Type.Kind {
	case value.KindInt:
		switch x := rv.(type) {
		case json.Number:
			i, err := x.Int64()
			if err != nil {
				return value.Null, fmt.Errorf("expected integer, got %v", x)
			}
			return value.NewInt(i), nil
		case string:
			var i int64
			if _, err := fmt.Sscanf(x, "%d", &i); err != nil {
				return value.Null, fmt.Errorf("expected integer, got %q", x)
			}
			return value.NewInt(i), nil
		}
		return value.Null, fmt.Errorf("expected integer, got %T", rv)
	case value.KindFloat:
		if x, ok := rv.(json.Number); ok {
			f, err := x.Float64()
			if err != nil {
				return value.Null, err
			}
			return value.NewFloat(f), nil
		}
		return value.Null, fmt.Errorf("expected number, got %T", rv)
	case value.KindString:
		if x, ok := rv.(string); ok {
			return value.NewString(x), nil
		}
		return value.Null, fmt.Errorf("expected string, got %T", rv)
	case value.KindBool:
		if x, ok := rv.(bool); ok {
			return value.NewBool(x), nil
		}
		return value.Null, fmt.Errorf("expected bool, got %T", rv)
	case value.KindDatetime:
		switch x := rv.(type) {
		case string:
			return graph.ParseDatetime(x)
		case json.Number:
			i, err := x.Int64()
			if err != nil {
				return value.Null, err
			}
			return value.NewDatetime(i), nil
		}
		return value.Null, fmt.Errorf("expected datetime string or Unix seconds, got %T", rv)
	case value.KindVertex:
		x, ok := rv.(string)
		if !ok {
			return value.Null, fmt.Errorf("expected vertex key string, got %T", rv)
		}
		vt := p.Type.VertexType
		key := x
		if vt == "" {
			var found bool
			vt, key, found = strings.Cut(x, ":")
			if !found {
				return value.Null, fmt.Errorf("untyped vertex parameter needs \"Type:key\", got %q", x)
			}
		}
		id, found := g.VertexByKey(vt, key)
		if !found {
			return value.Null, fmt.Errorf("no %s vertex with key %q", vt, key)
		}
		return value.NewVertex(int64(id)), nil
	}
	return value.Null, fmt.Errorf("unsupported parameter type %s", p.Type.Kind)
}

// valueJSON renders an engine value as a JSON-marshalable Go value.
// Vertices render as their stable string key (REST clients have no use
// for internal ids), datetimes via their canonical string form,
// maps as objects keyed by the key's string form.
func valueJSON(g *graph.Graph, v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.Bool()
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindString:
		return v.Str()
	case value.KindDatetime:
		return v.String()
	case value.KindVertex:
		return g.VertexKey(graph.VID(v.VertexID()))
	case value.KindEdge:
		return v.EdgeID()
	case value.KindTuple, value.KindList, value.KindSet:
		elems := v.Elems()
		out := make([]any, len(elems))
		for i, e := range elems {
			out[i] = valueJSON(g, e)
		}
		return out
	case value.KindMap:
		out := map[string]any{}
		for _, p := range v.Pairs() {
			out[p.Key.String()] = valueJSON(g, p.Val)
		}
		return out
	default:
		return v.String()
	}
}

// tableJSON is the wire form of a result table.
type tableJSON struct {
	Name string   `json:"name,omitempty"`
	Cols []string `json:"cols"`
	Rows [][]any  `json:"rows"`
}

func toTableJSON(g *graph.Graph, t *core.Table) *tableJSON {
	out := &tableJSON{Name: t.Name, Cols: t.Cols, Rows: make([][]any, len(t.Rows))}
	for i, row := range t.Rows {
		r := make([]any, len(row))
		for j, v := range row {
			r[j] = valueJSON(g, v)
		}
		out.Rows[i] = r
	}
	return out
}
