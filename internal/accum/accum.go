package accum

import (
	"errors"
	"fmt"
	"math"

	"gsqlgo/internal/value"
)

// maxReplication caps the replication of inputs into order-sensitive
// accumulators when a binding carries a large multiplicity. Queries in
// the tractable class never hit this (they may not use such types).
const maxReplication = 1 << 20

// ErrReplication reports an order-sensitive accumulator receiving an
// input with a multiplicity too large to replicate.
var ErrReplication = errors.New("accum: multiplicity too large for order-sensitive accumulator")

// Accumulator is a mutable accumulator instance.
//
// Input implements "+=" with an explicit multiplicity mult >= 1: the
// effect must equal mult repetitions of a plain input (Appendix A's
// multiplicity shortcut makes this a single O(1)-ish operation for
// order-invariant types). Assign implements "=". Merge folds another
// instance of the same spec into this one (parallel reduce). Value
// snapshots the internal value. Clone deep-copies.
type Accumulator interface {
	Spec() *Spec
	Input(v value.Value, mult uint64) error
	Assign(v value.Value) error
	Merge(other Accumulator) error
	Value() value.Value
	Clone() Accumulator
}

// New creates an accumulator with its default ("empty") internal
// value: 0 for Sum/Avg, empty collections, false for Or, true for And,
// and "no value yet" for Min/Max.
func New(s *Spec) (Accumulator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindSum:
		if s.Elem == value.KindString {
			return &sumString{spec: s}, nil
		}
		return &sumNum{spec: s}, nil
	case KindMin, KindMax:
		return &minMax{spec: s, max: s.Kind == KindMax}, nil
	case KindAvg:
		return &avg{spec: s}, nil
	case KindOr:
		return &boolAcc{spec: s}, nil
	case KindAnd:
		return &boolAcc{spec: s, val: true}, nil
	case KindBitwiseAnd:
		return &bitwise{spec: s, val: ^int64(0)}, nil
	case KindBitwiseOr:
		return &bitwise{spec: s}, nil
	case KindSet:
		return &set{spec: s, elems: map[string]value.Value{}}, nil
	case KindBag:
		return &bag{spec: s, elems: map[string]bagEntry{}}, nil
	case KindList, KindArray:
		return &list{spec: s}, nil
	case KindMap:
		return &mapAcc{spec: s, entries: map[string]*mapEntry{}}, nil
	case KindHeap:
		return newHeap(s), nil
	case KindGroupBy:
		return &groupBy{spec: s, groups: map[string]*group{}}, nil
	case KindCustom:
		c, _ := lookupCustom(s.CustomName)
		return c.New(s), nil
	default:
		return nil, fmt.Errorf("accum: unknown accumulator kind %d", s.Kind)
	}
}

// MustNew is New for trusted specs.
func MustNew(s *Spec) Accumulator {
	a, err := New(s)
	if err != nil {
		panic(err)
	}
	return a
}

func mismatch(s *Spec, v value.Value) error {
	return fmt.Errorf("accum: %s cannot accept input of kind %s", s, v.Kind())
}

func mergeMismatch(s *Spec, other Accumulator) error {
	return fmt.Errorf("accum: cannot merge %s into %s", other.Spec(), s)
}

// numericInput extracts a float from a numeric input.
func numericInput(s *Spec, v value.Value) (float64, error) {
	f, ok := v.AsFloat()
	if !ok {
		return 0, mismatch(s, v)
	}
	return f, nil
}

// ---- SumAccum over numerics -------------------------------------------------

type sumNum struct {
	spec *Spec
	// Exact integer sums stay in i while Elem is int; float sums in f.
	i int64
	f float64
}

func (a *sumNum) Spec() *Spec { return a.spec }

func (a *sumNum) Input(v value.Value, mult uint64) error {
	if a.spec.Elem == value.KindInt {
		iv, ok := v.AsInt()
		if !ok || v.Kind() == value.KindFloat {
			return mismatch(a.spec, v)
		}
		a.i += iv * int64(mult)
		return nil
	}
	f, err := numericInput(a.spec, v)
	if err != nil {
		return err
	}
	a.f += f * float64(mult)
	return nil
}

func (a *sumNum) Assign(v value.Value) error {
	if a.spec.Elem == value.KindInt {
		iv, ok := v.AsInt()
		if !ok || v.Kind() == value.KindFloat {
			return mismatch(a.spec, v)
		}
		a.i = iv
		return nil
	}
	f, err := numericInput(a.spec, v)
	if err != nil {
		return err
	}
	a.f = f
	return nil
}

func (a *sumNum) Merge(other Accumulator) error {
	o, ok := other.(*sumNum)
	if !ok || o.spec.Elem != a.spec.Elem {
		return mergeMismatch(a.spec, other)
	}
	a.i += o.i
	a.f += o.f
	return nil
}

func (a *sumNum) Value() value.Value {
	if a.spec.Elem == value.KindInt {
		return value.NewInt(a.i)
	}
	return value.NewFloat(a.f)
}

func (a *sumNum) Clone() Accumulator { c := *a; return &c }

// ---- SumAccum<string> (order-sensitive concatenation) ----------------------

type sumString struct {
	spec *Spec
	s    string
}

func (a *sumString) Spec() *Spec { return a.spec }

func (a *sumString) Input(v value.Value, mult uint64) error {
	if v.Kind() != value.KindString {
		return mismatch(a.spec, v)
	}
	if mult > maxReplication {
		return ErrReplication
	}
	for i := uint64(0); i < mult; i++ {
		a.s += v.Str()
	}
	return nil
}

func (a *sumString) Assign(v value.Value) error {
	if v.Kind() != value.KindString {
		return mismatch(a.spec, v)
	}
	a.s = v.Str()
	return nil
}

func (a *sumString) Merge(other Accumulator) error {
	o, ok := other.(*sumString)
	if !ok {
		return mergeMismatch(a.spec, other)
	}
	a.s += o.s
	return nil
}

func (a *sumString) Value() value.Value { return value.NewString(a.s) }

func (a *sumString) Clone() Accumulator { c := *a; return &c }

// ---- Min/MaxAccum -----------------------------------------------------------

type minMax struct {
	spec *Spec
	max  bool
	has  bool
	val  value.Value
}

func (a *minMax) Spec() *Spec { return a.spec }

// emptyExtreme is the value reported before any input: the identity of
// the combiner (GSQL reports type extremes for numeric Min/Max).
func (a *minMax) emptyExtreme() value.Value {
	switch a.spec.Elem {
	case value.KindInt:
		if a.max {
			return value.NewInt(math.MinInt64)
		}
		return value.NewInt(math.MaxInt64)
	case value.KindFloat:
		if a.max {
			return value.NewFloat(math.Inf(-1))
		}
		return value.NewFloat(math.Inf(1))
	default:
		return value.Null
	}
}

func (a *minMax) accepts(v value.Value) bool {
	if v.Kind() == a.spec.Elem {
		return true
	}
	// ints flow into float accumulators
	return a.spec.Elem == value.KindFloat && v.Kind() == value.KindInt
}

func (a *minMax) Input(v value.Value, mult uint64) error {
	if !a.accepts(v) {
		return mismatch(a.spec, v)
	}
	if !a.has {
		a.has = true
		a.val = v
		return nil
	}
	if a.max {
		a.val = value.MaxOf(a.val, v)
	} else {
		a.val = value.MinOf(a.val, v)
	}
	return nil
}

func (a *minMax) Assign(v value.Value) error {
	if !a.accepts(v) {
		return mismatch(a.spec, v)
	}
	a.has = true
	a.val = v
	return nil
}

func (a *minMax) Merge(other Accumulator) error {
	o, ok := other.(*minMax)
	if !ok || o.max != a.max || o.spec.Elem != a.spec.Elem {
		return mergeMismatch(a.spec, other)
	}
	if o.has {
		return a.Input(o.val, 1)
	}
	return nil
}

func (a *minMax) Value() value.Value {
	if !a.has {
		return a.emptyExtreme()
	}
	return a.val
}

func (a *minMax) Clone() Accumulator { c := *a; return &c }

// ---- AvgAccum ---------------------------------------------------------------

// avg keeps (sum, count) internally, making the average order- and
// multiplicity-shortcut-invariant, exactly as the paper describes.
type avg struct {
	spec  *Spec
	sum   float64
	count uint64
}

func (a *avg) Spec() *Spec { return a.spec }

func (a *avg) Input(v value.Value, mult uint64) error {
	f, err := numericInput(a.spec, v)
	if err != nil {
		return err
	}
	a.sum += f * float64(mult)
	a.count += mult
	return nil
}

func (a *avg) Assign(v value.Value) error {
	f, err := numericInput(a.spec, v)
	if err != nil {
		return err
	}
	a.sum, a.count = f, 1
	return nil
}

func (a *avg) Merge(other Accumulator) error {
	o, ok := other.(*avg)
	if !ok {
		return mergeMismatch(a.spec, other)
	}
	a.sum += o.sum
	a.count += o.count
	return nil
}

func (a *avg) Value() value.Value {
	if a.count == 0 {
		return value.NewFloat(0)
	}
	return value.NewFloat(a.sum / float64(a.count))
}

func (a *avg) Clone() Accumulator { c := *a; return &c }

// ---- Or/AndAccum ------------------------------------------------------------

type boolAcc struct {
	spec *Spec
	val  bool
}

func (a *boolAcc) Spec() *Spec { return a.spec }

func (a *boolAcc) Input(v value.Value, mult uint64) error {
	if v.Kind() != value.KindBool {
		return mismatch(a.spec, v)
	}
	if a.spec.Kind == KindOr {
		a.val = a.val || v.Bool()
	} else {
		a.val = a.val && v.Bool()
	}
	return nil
}

func (a *boolAcc) Assign(v value.Value) error {
	if v.Kind() != value.KindBool {
		return mismatch(a.spec, v)
	}
	a.val = v.Bool()
	return nil
}

func (a *boolAcc) Merge(other Accumulator) error {
	o, ok := other.(*boolAcc)
	if !ok || o.spec.Kind != a.spec.Kind {
		return mergeMismatch(a.spec, other)
	}
	// Merge folds the other's value in with the combiner. The neutral
	// element of each combiner makes merging untouched deltas a no-op.
	return a.Input(value.NewBool(o.val), 1)
}

func (a *boolAcc) Value() value.Value { return value.NewBool(a.val) }

func (a *boolAcc) Clone() Accumulator { c := *a; return &c }

// ---- Bitwise accumulators ----------------------------------------------------

// bitwise folds integer inputs with & (identity ^0) or | (identity 0),
// TigerGraph's BitwiseAnd/BitwiseOrAccum. Both combiners are
// commutative, associative and idempotent, so multiplicity is
// irrelevant and the types sit inside the tractable class.
type bitwise struct {
	spec *Spec
	val  int64
}

func (a *bitwise) Spec() *Spec { return a.spec }

func (a *bitwise) Input(v value.Value, mult uint64) error {
	if v.Kind() != value.KindInt {
		return mismatch(a.spec, v)
	}
	if a.spec.Kind == KindBitwiseAnd {
		a.val &= v.Int()
	} else {
		a.val |= v.Int()
	}
	return nil
}

func (a *bitwise) Assign(v value.Value) error {
	if v.Kind() != value.KindInt {
		return mismatch(a.spec, v)
	}
	a.val = v.Int()
	return nil
}

func (a *bitwise) Merge(other Accumulator) error {
	o, ok := other.(*bitwise)
	if !ok || o.spec.Kind != a.spec.Kind {
		return mergeMismatch(a.spec, other)
	}
	return a.Input(value.NewInt(o.val), 1)
}

func (a *bitwise) Value() value.Value { return value.NewInt(a.val) }

func (a *bitwise) Clone() Accumulator { c := *a; return &c }
