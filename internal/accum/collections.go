package accum

import (
	"sort"

	"gsqlgo/internal/value"
)

// ---- SetAccum ---------------------------------------------------------------

// set deduplicates inputs; multiplicity is irrelevant by definition.
type set struct {
	spec  *Spec
	elems map[string]value.Value
}

func (a *set) Spec() *Spec { return a.spec }

func (a *set) Input(v value.Value, mult uint64) error {
	if v.Kind() != a.spec.Elem && !(a.spec.Elem == value.KindFloat && v.Kind() == value.KindInt) {
		return mismatch(a.spec, v)
	}
	a.elems[v.Key()] = v
	return nil
}

func (a *set) Assign(v value.Value) error {
	switch v.Kind() {
	case value.KindSet, value.KindList:
		fresh := make(map[string]value.Value, len(v.Elems()))
		for _, e := range v.Elems() {
			fresh[e.Key()] = e
		}
		a.elems = fresh
		return nil
	}
	return mismatch(a.spec, v)
}

func (a *set) Merge(other Accumulator) error {
	o, ok := other.(*set)
	if !ok {
		return mergeMismatch(a.spec, other)
	}
	for k, v := range o.elems {
		a.elems[k] = v
	}
	return nil
}

func (a *set) Value() value.Value {
	out := make([]value.Value, 0, len(a.elems))
	for _, v := range a.elems {
		out = append(out, v)
	}
	return value.NewSet(out)
}

func (a *set) Clone() Accumulator {
	c := &set{spec: a.spec, elems: make(map[string]value.Value, len(a.elems))}
	for k, v := range a.elems {
		c.elems[k] = v
	}
	return c
}

// ---- BagAccum ---------------------------------------------------------------

type bagEntry struct {
	v     value.Value
	count uint64
}

// bag keeps element counts, so a multiplicity-μ input is a single
// count update (the Appendix A shortcut for bags).
type bag struct {
	spec  *Spec
	elems map[string]bagEntry
}

func (a *bag) Spec() *Spec { return a.spec }

func (a *bag) Input(v value.Value, mult uint64) error {
	if v.Kind() != a.spec.Elem && !(a.spec.Elem == value.KindFloat && v.Kind() == value.KindInt) {
		return mismatch(a.spec, v)
	}
	k := v.Key()
	e := a.elems[k]
	e.v = v
	e.count += mult
	a.elems[k] = e
	return nil
}

func (a *bag) Assign(v value.Value) error {
	switch v.Kind() {
	case value.KindSet, value.KindList:
		fresh := make(map[string]bagEntry)
		for _, e := range v.Elems() {
			k := e.Key()
			en := fresh[k]
			en.v = e
			en.count++
			fresh[k] = en
		}
		a.elems = fresh
		return nil
	}
	return mismatch(a.spec, v)
}

func (a *bag) Merge(other Accumulator) error {
	o, ok := other.(*bag)
	if !ok {
		return mergeMismatch(a.spec, other)
	}
	for k, oe := range o.elems {
		e := a.elems[k]
		e.v = oe.v
		e.count += oe.count
		a.elems[k] = e
	}
	return nil
}

// Value renders the bag as a map from element to count; materializing
// duplicate elements would be exponential under large multiplicities.
func (a *bag) Value() value.Value {
	pairs := make([]value.Pair, 0, len(a.elems))
	for _, e := range a.elems {
		pairs = append(pairs, value.Pair{Key: e.v, Val: value.NewInt(int64(e.count))})
	}
	return value.NewMap(pairs)
}

func (a *bag) Clone() Accumulator {
	c := &bag{spec: a.spec, elems: make(map[string]bagEntry, len(a.elems))}
	for k, v := range a.elems {
		c.elems[k] = v
	}
	return c
}

// ---- List/ArrayAccum (order-sensitive) --------------------------------------

type list struct {
	spec  *Spec
	elems []value.Value
}

func (a *list) Spec() *Spec { return a.spec }

func (a *list) Input(v value.Value, mult uint64) error {
	if v.Kind() != a.spec.Elem && !(a.spec.Elem == value.KindFloat && v.Kind() == value.KindInt) {
		return mismatch(a.spec, v)
	}
	if mult > maxReplication || uint64(len(a.elems))+mult > maxReplication {
		return ErrReplication
	}
	for i := uint64(0); i < mult; i++ {
		a.elems = append(a.elems, v)
	}
	return nil
}

func (a *list) Assign(v value.Value) error {
	switch v.Kind() {
	case value.KindList, value.KindSet:
		a.elems = append([]value.Value(nil), v.Elems()...)
		return nil
	}
	return mismatch(a.spec, v)
}

func (a *list) Merge(other Accumulator) error {
	o, ok := other.(*list)
	if !ok {
		return mergeMismatch(a.spec, other)
	}
	a.elems = append(a.elems, o.elems...)
	return nil
}

func (a *list) Value() value.Value {
	return value.NewList(append([]value.Value(nil), a.elems...))
}

func (a *list) Clone() Accumulator {
	return &list{spec: a.spec, elems: append([]value.Value(nil), a.elems...)}
}

// ---- MapAccum ---------------------------------------------------------------

type mapEntry struct {
	key value.Value
	acc Accumulator
}

// mapAcc maps keys to nested accumulators; inputs are (key -> input)
// tuples and route the input into the key's nested accumulator,
// exactly the paper's "V can itself be an accumulator type".
type mapAcc struct {
	spec    *Spec
	entries map[string]*mapEntry
}

func (a *mapAcc) Spec() *Spec { return a.spec }

func (a *mapAcc) Input(v value.Value, mult uint64) error {
	if v.Kind() != value.KindTuple || len(v.Elems()) != 2 {
		return mismatch(a.spec, v)
	}
	key, in := v.Elems()[0], v.Elems()[1]
	k := key.Key()
	e := a.entries[k]
	if e == nil {
		nested, err := New(a.spec.Nested[0])
		if err != nil {
			return err
		}
		e = &mapEntry{key: key, acc: nested}
		a.entries[k] = e
	}
	return e.acc.Input(in, mult)
}

func (a *mapAcc) Assign(v value.Value) error {
	if v.Kind() != value.KindMap {
		return mismatch(a.spec, v)
	}
	fresh := make(map[string]*mapEntry, len(v.Pairs()))
	for _, p := range v.Pairs() {
		nested, err := New(a.spec.Nested[0])
		if err != nil {
			return err
		}
		if err := nested.Assign(p.Val); err != nil {
			// Scalars assign; collections assign; if the nested type
			// rejects, fall back to a single input.
			if err2 := nested.Input(p.Val, 1); err2 != nil {
				return err
			}
		}
		fresh[p.Key.Key()] = &mapEntry{key: p.Key, acc: nested}
	}
	a.entries = fresh
	return nil
}

func (a *mapAcc) Merge(other Accumulator) error {
	o, ok := other.(*mapAcc)
	if !ok {
		return mergeMismatch(a.spec, other)
	}
	for k, oe := range o.entries {
		e := a.entries[k]
		if e == nil {
			a.entries[k] = &mapEntry{key: oe.key, acc: oe.acc.Clone()}
			continue
		}
		if err := e.acc.Merge(oe.acc); err != nil {
			return err
		}
	}
	return nil
}

func (a *mapAcc) Value() value.Value {
	pairs := make([]value.Pair, 0, len(a.entries))
	for _, e := range a.entries {
		pairs = append(pairs, value.Pair{Key: e.key, Val: e.acc.Value()})
	}
	return value.NewMap(pairs)
}

func (a *mapAcc) Clone() Accumulator {
	c := &mapAcc{spec: a.spec, entries: make(map[string]*mapEntry, len(a.entries))}
	for k, e := range a.entries {
		c.entries[k] = &mapEntry{key: e.key, acc: e.acc.Clone()}
	}
	return c
}

// sortedKeys is a test/debug helper listing map keys in canonical
// order.
func (a *mapAcc) sortedKeys() []value.Value {
	out := make([]value.Value, 0, len(a.entries))
	for _, e := range a.entries {
		out = append(out, e.key)
	}
	sort.Slice(out, func(i, j int) bool { return value.Less(out[i], out[j]) })
	return out
}
