package accum

import (
	"fmt"
	"strings"

	"gsqlgo/internal/value"
)

// group is one grouping-key entry of a GroupByAccum.
type group struct {
	keys []value.Value
	accs []Accumulator
}

// groupBy implements GroupByAccum<k1, ..., km, A1, ..., An>: a map
// from composite keys to a row of nested accumulators. Inputs are the
// paper's arrow tuples "(k1, ..., km -> a1, ..., an)", represented as
// a flat tuple of m keys followed by n aggregate inputs; a Null
// aggregate input skips that nested accumulator (used to express
// per-grouping-set aggregate selection as in Example 13).
type groupBy struct {
	spec   *Spec
	groups map[string]*group
}

func (a *groupBy) Spec() *Spec { return a.spec }

func (a *groupBy) arity() (int, int) { return len(a.spec.Keys), len(a.spec.Nested) }

func (a *groupBy) Input(v value.Value, mult uint64) error {
	nk, na := a.arity()
	if v.Kind() != value.KindTuple || len(v.Elems()) != nk+na {
		return fmt.Errorf("accum: %s expects a (%d keys -> %d inputs) tuple, got %s",
			a.spec, nk, na, v)
	}
	elems := v.Elems()
	keys := elems[:nk]
	var kb strings.Builder
	for _, k := range keys {
		kb.WriteString(k.Key())
		kb.WriteByte('|')
	}
	gk := kb.String()
	g := a.groups[gk]
	if g == nil {
		g = &group{keys: append([]value.Value(nil), keys...), accs: make([]Accumulator, na)}
		for i, ns := range a.spec.Nested {
			nested, err := New(ns)
			if err != nil {
				return err
			}
			g.accs[i] = nested
		}
		a.groups[gk] = g
	}
	for i := 0; i < na; i++ {
		in := elems[nk+i]
		if in.IsNull() {
			continue // aggregate not requested for this grouping set
		}
		if err := g.accs[i].Input(in, mult); err != nil {
			return err
		}
	}
	return nil
}

func (a *groupBy) Assign(v value.Value) error { return mismatch(a.spec, v) }

func (a *groupBy) Merge(other Accumulator) error {
	o, ok := other.(*groupBy)
	if !ok {
		return mergeMismatch(a.spec, other)
	}
	for gk, og := range o.groups {
		g := a.groups[gk]
		if g == nil {
			cl := &group{keys: og.keys, accs: make([]Accumulator, len(og.accs))}
			for i, acc := range og.accs {
				cl.accs[i] = acc.Clone()
			}
			a.groups[gk] = cl
			continue
		}
		for i, acc := range og.accs {
			if err := g.accs[i].Merge(acc); err != nil {
				return err
			}
		}
	}
	return nil
}

// Value renders the grouped state as a map from the key tuple to the
// tuple of nested accumulator values.
func (a *groupBy) Value() value.Value {
	pairs := make([]value.Pair, 0, len(a.groups))
	for _, g := range a.groups {
		vals := make([]value.Value, len(g.accs))
		for i, acc := range g.accs {
			vals[i] = acc.Value()
		}
		pairs = append(pairs, value.Pair{
			Key: value.NewTuple(append([]value.Value(nil), g.keys...)),
			Val: value.NewTuple(vals),
		})
	}
	return value.NewMap(pairs)
}

// NumGroups reports the number of grouping keys seen so far.
func (a *groupBy) NumGroups() int { return len(a.groups) }

func (a *groupBy) Clone() Accumulator {
	c := &groupBy{spec: a.spec, groups: make(map[string]*group, len(a.groups))}
	for gk, g := range a.groups {
		cl := &group{keys: g.keys, accs: make([]Accumulator, len(g.accs))}
		for i, acc := range g.accs {
			cl.accs[i] = acc.Clone()
		}
		c.groups[gk] = cl
	}
	return c
}
