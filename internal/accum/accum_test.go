package accum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gsqlgo/internal/value"
)

func mustInput(t *testing.T, a Accumulator, v value.Value, mult uint64) {
	t.Helper()
	if err := a.Input(v, mult); err != nil {
		t.Fatalf("Input(%v, %d) on %s: %v", v, mult, a.Spec(), err)
	}
}

func TestSumAccumInt(t *testing.T) {
	a := MustNew(SumSpec(value.KindInt))
	mustInput(t, a, value.NewInt(2), 1)
	mustInput(t, a, value.NewInt(3), 4) // multiplicity shortcut: +12
	if got := a.Value(); got.Int() != 14 {
		t.Errorf("sum = %v, want 14", got)
	}
	if err := a.Assign(value.NewInt(100)); err != nil {
		t.Fatal(err)
	}
	if a.Value().Int() != 100 {
		t.Error("assign failed")
	}
	if err := a.Input(value.NewFloat(1.5), 1); err == nil {
		t.Error("float input into SumAccum<int> must error")
	}
	if err := a.Input(value.NewString("x"), 1); err == nil {
		t.Error("string input into SumAccum<int> must error")
	}
}

func TestSumAccumFloatAcceptsInts(t *testing.T) {
	a := MustNew(SumSpec(value.KindFloat))
	mustInput(t, a, value.NewFloat(0.5), 2)
	mustInput(t, a, value.NewInt(3), 1)
	if got := a.Value(); got.Float() != 4 {
		t.Errorf("sum = %v, want 4", got)
	}
}

func TestSumAccumString(t *testing.T) {
	a := MustNew(SumSpec(value.KindString))
	mustInput(t, a, value.NewString("ab"), 2)
	mustInput(t, a, value.NewString("c"), 1)
	if got := a.Value(); got.Str() != "ababc" {
		t.Errorf("concat = %q, want abab c", got)
	}
	if err := a.Input(value.NewString("x"), maxReplication+1); err != ErrReplication {
		t.Errorf("huge multiplicity: %v, want ErrReplication", err)
	}
	if a.Spec().OrderInvariant() {
		t.Error("SumAccum<string> must be order-sensitive")
	}
}

func TestMinMaxAccum(t *testing.T) {
	min := MustNew(MinSpec(value.KindInt))
	max := MustNew(MaxSpec(value.KindInt))
	// Empty extremes (identity of the combiner).
	if min.Value().Int() != math.MaxInt64 || max.Value().Int() != math.MinInt64 {
		t.Error("empty Min/Max extremes wrong")
	}
	for _, v := range []int64{5, -2, 9} {
		mustInput(t, min, value.NewInt(v), 3) // multiplicity irrelevant
		mustInput(t, max, value.NewInt(v), 3)
	}
	if min.Value().Int() != -2 || max.Value().Int() != 9 {
		t.Errorf("min=%v max=%v", min.Value(), max.Value())
	}
	// Float extremes.
	fmin := MustNew(MinSpec(value.KindFloat))
	if !math.IsInf(fmin.Value().Float(), 1) {
		t.Error("empty MinAccum<float> must report +Inf")
	}
	mustInput(t, fmin, value.NewInt(2), 1) // int widens into float min
	if fmin.Value().Int() != 2 {
		t.Errorf("fmin = %v", fmin.Value())
	}
	// Strings: empty reports null.
	smin := MustNew(MinSpec(value.KindString))
	if !smin.Value().IsNull() {
		t.Error("empty MinAccum<string> must report null")
	}
	mustInput(t, smin, value.NewString("b"), 1)
	mustInput(t, smin, value.NewString("a"), 1)
	if smin.Value().Str() != "a" {
		t.Errorf("smin = %v", smin.Value())
	}
}

func TestAvgAccumOrderAndShortcutInvariance(t *testing.T) {
	a := MustNew(AvgSpec(value.KindFloat))
	mustInput(t, a, value.NewFloat(1), 1)
	mustInput(t, a, value.NewFloat(2), 3) // shortcut: three inputs of 2
	if got := a.Value().Float(); got != (1+2*3)/4.0 {
		t.Errorf("avg = %v, want 1.75", got)
	}
	if err := a.Assign(value.NewFloat(10)); err != nil {
		t.Fatal(err)
	}
	if a.Value().Float() != 10 {
		t.Error("assign must reset to a single sample")
	}
	empty := MustNew(AvgSpec(value.KindFloat))
	if empty.Value().Float() != 0 {
		t.Error("empty avg must be 0")
	}
}

func TestOrAndAccum(t *testing.T) {
	or := MustNew(OrSpec())
	and := MustNew(AndSpec())
	if or.Value().Bool() || !and.Value().Bool() {
		t.Error("identities wrong: Or starts false, And starts true")
	}
	mustInput(t, or, value.NewBool(false), 5)
	mustInput(t, and, value.NewBool(true), 5)
	if or.Value().Bool() || !and.Value().Bool() {
		t.Error("neutral inputs must not change values")
	}
	mustInput(t, or, value.NewBool(true), 1)
	mustInput(t, and, value.NewBool(false), 1)
	if !or.Value().Bool() || and.Value().Bool() {
		t.Error("Or/And aggregation wrong")
	}
	if err := or.Input(value.NewInt(1), 1); err == nil {
		t.Error("non-bool input must error")
	}
}

func TestSetAccum(t *testing.T) {
	a := MustNew(SetSpec(value.KindInt))
	mustInput(t, a, value.NewInt(2), 7) // multiplicity-insensitive
	mustInput(t, a, value.NewInt(1), 1)
	mustInput(t, a, value.NewInt(2), 1)
	got := a.Value()
	if got.Kind() != value.KindSet || len(got.Elems()) != 2 {
		t.Fatalf("set = %v", got)
	}
	if got.Elems()[0].Int() != 1 || got.Elems()[1].Int() != 2 {
		t.Errorf("set order = %v", got)
	}
}

func TestBagAccumCounts(t *testing.T) {
	a := MustNew(BagSpec(value.KindString))
	mustInput(t, a, value.NewString("x"), 1000000) // single count update
	mustInput(t, a, value.NewString("y"), 2)
	got := a.Value()
	if got.Kind() != value.KindMap {
		t.Fatalf("bag value kind %v", got.Kind())
	}
	counts := map[string]int64{}
	for _, p := range got.Pairs() {
		counts[p.Key.Str()] = p.Val.Int()
	}
	if counts["x"] != 1000000 || counts["y"] != 2 {
		t.Errorf("bag counts = %v", counts)
	}
}

func TestListAccumOrderSensitive(t *testing.T) {
	a := MustNew(ListSpec(value.KindInt))
	mustInput(t, a, value.NewInt(3), 2)
	mustInput(t, a, value.NewInt(1), 1)
	got := a.Value()
	if len(got.Elems()) != 3 || got.Elems()[0].Int() != 3 || got.Elems()[2].Int() != 1 {
		t.Errorf("list = %v", got)
	}
	if a.Spec().OrderInvariant() {
		t.Error("ListAccum must be order-sensitive")
	}
	if err := a.Input(value.NewInt(1), maxReplication+5); err != ErrReplication {
		t.Errorf("huge multiplicity: %v, want ErrReplication", err)
	}
}

func TestMapAccumNestedAggregation(t *testing.T) {
	a := MustNew(MapSpec(value.KindString, SumSpec(value.KindInt)))
	in := func(k string, v int64, mult uint64) value.Value {
		return value.NewTuple([]value.Value{value.NewString(k), value.NewInt(v)})
	}
	mustInput(t, a, in("a", 1, 0), 1)
	mustInput(t, a, in("a", 2, 0), 3)
	mustInput(t, a, in("b", 5, 0), 1)
	got := a.Value()
	want := map[string]int64{"a": 7, "b": 5}
	for _, p := range got.Pairs() {
		if p.Val.Int() != want[p.Key.Str()] {
			t.Errorf("map[%s] = %v, want %d", p.Key, p.Val, want[p.Key.Str()])
		}
	}
	if len(got.Pairs()) != 2 {
		t.Errorf("map size %d", len(got.Pairs()))
	}
	if err := a.Input(value.NewInt(1), 1); err == nil {
		t.Error("non-tuple input must error")
	}
}

func TestHeapAccumTopK(t *testing.T) {
	tt := &TupleType{Name: "Scored", Fields: []TupleField{
		{Name: "score", Kind: value.KindInt},
		{Name: "name", Kind: value.KindString},
	}}
	a := MustNew(HeapSpec(tt, 3, SortField{Field: "score", Desc: true}, SortField{Field: "name"}))
	push := func(score int64, name string) {
		mustInput(t, a, value.NewTuple([]value.Value{value.NewInt(score), value.NewString(name)}), 1)
	}
	push(5, "e")
	push(9, "a")
	push(1, "z")
	push(9, "b")
	push(7, "c")
	got := a.Value().Elems()
	if len(got) != 3 {
		t.Fatalf("heap size %d, want 3", len(got))
	}
	names := []string{}
	for _, e := range got {
		names = append(names, e.Elems()[1].Str())
	}
	// 9/a, 9/b (name ASC tiebreak), then 7/c.
	if names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("heap order = %v", names)
	}
	// Multiplicity capped at capacity.
	b := MustNew(HeapSpec(tt, 2, SortField{Field: "score", Desc: true}))
	mustInput(t, b, value.NewTuple([]value.Value{value.NewInt(1), value.NewString("x")}), 100)
	if len(b.Value().Elems()) != 2 {
		t.Errorf("heap with huge multiplicity = %v", b.Value())
	}
	if err := a.Input(value.NewInt(3), 1); err == nil {
		t.Error("non-tuple input must error")
	}
}

func TestGroupByAccum(t *testing.T) {
	spec := GroupBySpec(
		[]value.Kind{value.KindString, value.KindInt},
		[]*Spec{SumSpec(value.KindFloat), AvgSpec(value.KindFloat)},
	)
	a := MustNew(spec)
	in := func(k1 string, k2 int64, sum, av value.Value) value.Value {
		return value.NewTuple([]value.Value{value.NewString(k1), value.NewInt(k2), sum, av})
	}
	mustInput(t, a, in("x", 1, value.NewFloat(2), value.NewFloat(10)), 1)
	mustInput(t, a, in("x", 1, value.NewFloat(3), value.NewFloat(20)), 1)
	// Null skips the aggregate — per-grouping-set selection (Ex. 13).
	mustInput(t, a, in("y", 2, value.NewFloat(7), value.Null), 1)
	got := a.Value()
	if len(got.Pairs()) != 2 {
		t.Fatalf("groups = %d, want 2", len(got.Pairs()))
	}
	for _, p := range got.Pairs() {
		k1 := p.Key.Elems()[0].Str()
		vals := p.Val.Elems()
		switch k1 {
		case "x":
			if vals[0].Float() != 5 || vals[1].Float() != 15 {
				t.Errorf("group x = %v", p.Val)
			}
		case "y":
			if vals[0].Float() != 7 || vals[1].Float() != 0 {
				t.Errorf("group y = %v", p.Val)
			}
		}
	}
	if err := a.Input(value.NewTuple([]value.Value{value.NewString("x")}), 1); err == nil {
		t.Error("wrong arity must error")
	}
	if err := a.Assign(value.NewInt(1)); err == nil {
		t.Error("GroupByAccum assign must error")
	}
}

func TestCustomAccumRegistry(t *testing.T) {
	// A product accumulator, as a user extension.
	type prod struct {
		spec *Spec
		val  float64
	}
	Register(CustomType{
		Name:           "ProductAccum",
		OrderInvariant: true,
		New: func(s *Spec) Accumulator {
			return &customAdapter{spec: s, val: 1, combine: func(cur, in float64, mult uint64) float64 {
				for i := uint64(0); i < mult; i++ {
					cur *= in
				}
				return cur
			}}
		},
	})
	defer Unregister("ProductAccum")
	_ = prod{}
	spec := CustomSpec("ProductAccum")
	if !spec.OrderInvariant() {
		t.Error("registered custom must report order invariance")
	}
	a, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	mustInput(t, a, value.NewFloat(3), 1)
	mustInput(t, a, value.NewFloat(2), 2)
	if a.Value().Float() != 12 {
		t.Errorf("product = %v, want 12", a.Value())
	}
	if _, err := New(CustomSpec("NotRegistered")); err == nil {
		t.Error("unregistered custom must error")
	}
}

func TestSpecValidateErrors(t *testing.T) {
	bad := []*Spec{
		SumSpec(value.KindBool),
		AvgSpec(value.KindString),
		MinSpec(value.KindList),
		{Kind: KindSet},
		{Kind: KindMap},
		{Kind: KindMap, Keys: []value.Kind{value.KindList}, Nested: []*Spec{SumSpec(value.KindInt)}},
		{Kind: KindHeap},
		HeapSpec(&TupleType{Name: "T", Fields: []TupleField{{Name: "a", Kind: value.KindInt}}}, 0, SortField{Field: "a"}),
		HeapSpec(&TupleType{Name: "T", Fields: []TupleField{{Name: "a", Kind: value.KindInt}}}, 2, SortField{Field: "zed"}),
		{Kind: KindGroupBy},
		GroupBySpec([]value.Kind{value.KindInt}, []*Spec{SumSpec(value.KindBool)}),
		CustomSpec("missing"),
		{Kind: Kind(99)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%v) must fail", s)
		}
	}
}

func TestSpecStringAndKindByName(t *testing.T) {
	tt := &TupleType{Name: "T", Fields: []TupleField{{Name: "a", Kind: value.KindInt}}}
	cases := map[string]*Spec{
		"SumAccum<float>":                    SumSpec(value.KindFloat),
		"OrAccum":                            OrSpec(),
		"MapAccum<string, SumAccum<int>>":    MapSpec(value.KindString, SumSpec(value.KindInt)),
		"HeapAccum<T>(5, a DESC)":            HeapSpec(tt, 5, SortField{Field: "a", Desc: true}),
		"GroupByAccum<int, AvgAccum<float>>": GroupBySpec([]value.Kind{value.KindInt}, []*Spec{AvgSpec(value.KindFloat)}),
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if k, ok := KindByName("SumAccum"); !ok || k != KindSum {
		t.Error("KindByName(SumAccum) wrong")
	}
	if _, ok := KindByName("FooAccum"); ok {
		t.Error("KindByName must miss unknown names")
	}
}

// orderInvariantSpecs are the specs exercised by the property tests.
func orderInvariantSpecs() []*Spec {
	tt := &TupleType{Name: "S", Fields: []TupleField{{Name: "v", Kind: value.KindInt}}}
	return []*Spec{
		SumSpec(value.KindInt),
		SumSpec(value.KindFloat),
		MinSpec(value.KindInt),
		MaxSpec(value.KindInt),
		AvgSpec(value.KindFloat),
		OrSpec(),
		AndSpec(),
		BitwiseAndSpec(),
		BitwiseOrSpec(),
		SetSpec(value.KindInt),
		BagSpec(value.KindInt),
		MapSpec(value.KindInt, SumSpec(value.KindInt)),
		HeapSpec(tt, 4, SortField{Field: "v", Desc: true}),
		GroupBySpec([]value.Kind{value.KindInt}, []*Spec{SumSpec(value.KindInt), MaxSpec(value.KindInt)}),
	}
}

// randomInputFor builds a valid random input for the spec.
func randomInputFor(s *Spec, r *rand.Rand) value.Value {
	ri := func() value.Value { return value.NewInt(int64(r.Intn(7))) }
	switch s.Kind {
	case KindSum, KindMin, KindMax, KindAvg, KindSet, KindBag:
		if s.Elem == value.KindFloat {
			return value.NewFloat(float64(r.Intn(28)) / 4)
		}
		return ri()
	case KindOr, KindAnd:
		return value.NewBool(r.Intn(2) == 0)
	case KindBitwiseAnd, KindBitwiseOr:
		return value.NewInt(int64(r.Intn(16)))
	case KindMap:
		return value.NewTuple([]value.Value{ri(), ri()})
	case KindHeap:
		return value.NewTuple([]value.Value{ri()})
	case KindGroupBy:
		elems := []value.Value{ri()}
		for range s.Nested {
			elems = append(elems, ri())
		}
		return value.NewTuple(elems)
	default:
		return ri()
	}
}

// TestMultiplicityShortcutProperty verifies the Appendix A shortcut:
// for order-invariant accumulators, Input(v, μ) equals μ repetitions
// of Input(v, 1).
func TestMultiplicityShortcutProperty(t *testing.T) {
	specs := orderInvariantSpecs()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := specs[r.Intn(len(specs))]
		shortcut, long := MustNew(s), MustNew(s)
		for i := 0; i < 5; i++ {
			v := randomInputFor(s, r)
			mult := uint64(1 + r.Intn(6))
			if err := shortcut.Input(v, mult); err != nil {
				t.Logf("%s shortcut input: %v", s, err)
				return false
			}
			for j := uint64(0); j < mult; j++ {
				if err := long.Input(v, 1); err != nil {
					t.Logf("%s long input: %v", s, err)
					return false
				}
			}
		}
		if !value.Equal(shortcut.Value(), long.Value()) {
			t.Logf("%s: shortcut %v != long %v", s, shortcut.Value(), long.Value())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestParallelMergeDeterminism verifies the snapshot semantics
// determinism claim (Section 4.3): partitioning inputs arbitrarily
// across worker-local deltas and merging yields the same value as a
// sequential fold, for every order-invariant accumulator type.
func TestParallelMergeDeterminism(t *testing.T) {
	specs := orderInvariantSpecs()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := specs[r.Intn(len(specs))]
		inputs := make([]value.Value, 3+r.Intn(10))
		for i := range inputs {
			inputs[i] = randomInputFor(s, r)
		}
		sequential := MustNew(s)
		for _, v := range inputs {
			if err := sequential.Input(v, 1); err != nil {
				return false
			}
		}
		// Partition into k worker deltas, shuffled.
		k := 1 + r.Intn(4)
		workers := make([]Accumulator, k)
		for i := range workers {
			workers[i] = MustNew(s)
		}
		perm := r.Perm(len(inputs))
		for _, idx := range perm {
			if err := workers[r.Intn(k)].Input(inputs[idx], 1); err != nil {
				return false
			}
		}
		merged := MustNew(s)
		for _, w := range workers {
			if err := merged.Merge(w); err != nil {
				t.Logf("%s merge: %v", s, err)
				return false
			}
		}
		if !value.Equal(sequential.Value(), merged.Value()) {
			t.Logf("%s: sequential %v != merged %v", s, sequential.Value(), merged.Value())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestCloneIsDeep verifies clones do not alias mutable state.
func TestCloneIsDeep(t *testing.T) {
	for _, s := range orderInvariantSpecs() {
		a := MustNew(s)
		r := rand.New(rand.NewSource(1))
		mustInput(t, a, randomInputFor(s, r), 1)
		before := a.Value()
		c := a.Clone()
		mustInput(t, c, randomInputFor(s, r), 2)
		mustInput(t, c, randomInputFor(s, r), 1)
		if !value.Equal(a.Value(), before) {
			t.Errorf("%s: clone mutation leaked into original", s)
		}
	}
}

func TestMergeTypeMismatch(t *testing.T) {
	a := MustNew(SumSpec(value.KindInt))
	b := MustNew(OrSpec())
	if err := a.Merge(b); err == nil {
		t.Error("merging different accumulator types must error")
	}
}

// customAdapter backs the registry test with a float fold.
type customAdapter struct {
	spec    *Spec
	val     float64
	combine func(cur, in float64, mult uint64) float64
}

func (a *customAdapter) Spec() *Spec { return a.spec }

func (a *customAdapter) Input(v value.Value, mult uint64) error {
	f, ok := v.AsFloat()
	if !ok {
		return mismatch(a.spec, v)
	}
	a.val = a.combine(a.val, f, mult)
	return nil
}

func (a *customAdapter) Assign(v value.Value) error {
	f, ok := v.AsFloat()
	if !ok {
		return mismatch(a.spec, v)
	}
	a.val = f
	return nil
}

func (a *customAdapter) Merge(other Accumulator) error {
	o, ok := other.(*customAdapter)
	if !ok {
		return mergeMismatch(a.spec, other)
	}
	a.val = a.combine(a.val, o.val, 1)
	return nil
}

func (a *customAdapter) Value() value.Value { return value.NewFloat(a.val) }

func (a *customAdapter) Clone() Accumulator { c := *a; return &c }
