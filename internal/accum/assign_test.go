package accum

import (
	"testing"

	"gsqlgo/internal/value"
)

// TestAssignForms exercises the "=" operator of each accumulator type.
func TestAssignForms(t *testing.T) {
	// SumAccum<string>.
	ss := MustNew(SumSpec(value.KindString))
	if err := ss.Assign(value.NewString("x")); err != nil {
		t.Fatal(err)
	}
	mustInput(t, ss, value.NewString("y"), 1)
	if ss.Value().Str() != "xy" {
		t.Errorf("string assign+input: %v", ss.Value())
	}
	if err := ss.Assign(value.NewInt(1)); err == nil {
		t.Error("string accum assigning int must error")
	}
	// Clone and merge of sumString.
	c := ss.Clone()
	mustInput(t, c, value.NewString("z"), 1)
	if ss.Value().Str() != "xy" {
		t.Error("sumString clone leaked")
	}
	if err := ss.Merge(c); err != nil {
		t.Fatal(err)
	}
	if ss.Value().Str() != "xyxyz" {
		t.Errorf("sumString merge: %v", ss.Value())
	}
	if err := ss.Merge(MustNew(SumSpec(value.KindInt))); err == nil {
		t.Error("sumString merging sumNum must error")
	}

	// Bool assign.
	or := MustNew(OrSpec())
	if err := or.Assign(value.NewBool(true)); err != nil {
		t.Fatal(err)
	}
	if !or.Value().Bool() {
		t.Error("or assign")
	}
	if err := or.Assign(value.NewInt(1)); err == nil {
		t.Error("or assigning int must error")
	}

	// Set assign from list and set values.
	st := MustNew(SetSpec(value.KindInt))
	if err := st.Assign(value.NewList([]value.Value{value.NewInt(2), value.NewInt(2), value.NewInt(1)})); err != nil {
		t.Fatal(err)
	}
	if len(st.Value().Elems()) != 2 {
		t.Errorf("set assign: %v", st.Value())
	}
	if err := st.Assign(value.NewInt(1)); err == nil {
		t.Error("set assigning scalar must error")
	}

	// Bag assign counts duplicates.
	bg := MustNew(BagSpec(value.KindInt))
	if err := bg.Assign(value.NewList([]value.Value{value.NewInt(1), value.NewInt(1), value.NewInt(2)})); err != nil {
		t.Fatal(err)
	}
	for _, p := range bg.Value().Pairs() {
		if p.Key.Int() == 1 && p.Val.Int() != 2 {
			t.Errorf("bag assign counts: %v", bg.Value())
		}
	}
	if err := bg.Assign(value.NewInt(1)); err == nil {
		t.Error("bag assigning scalar must error")
	}
	// Bag clone/merge.
	bc := bg.Clone()
	if err := bg.Merge(bc); err != nil {
		t.Fatal(err)
	}
	if err := bg.Merge(st); err == nil {
		t.Error("bag merging set must error")
	}

	// List assign.
	ls := MustNew(ListSpec(value.KindInt))
	if err := ls.Assign(value.NewList([]value.Value{value.NewInt(3), value.NewInt(1)})); err != nil {
		t.Fatal(err)
	}
	if len(ls.Value().Elems()) != 2 {
		t.Errorf("list assign: %v", ls.Value())
	}
	if err := ls.Assign(value.NewInt(1)); err == nil {
		t.Error("list assigning scalar must error")
	}
	lc := ls.Clone()
	if err := ls.Merge(lc); err != nil {
		t.Fatal(err)
	}
	if len(ls.Value().Elems()) != 4 {
		t.Errorf("list merge: %v", ls.Value())
	}
	if err := ls.Merge(st); err == nil {
		t.Error("list merging set must error")
	}

	// Map assign from a map value.
	mp := MustNew(MapSpec(value.KindString, SumSpec(value.KindInt)))
	if err := mp.Assign(value.NewMap([]value.Pair{
		{Key: value.NewString("a"), Val: value.NewInt(5)},
	})); err != nil {
		t.Fatal(err)
	}
	mustInput(t, mp, value.NewTuple([]value.Value{value.NewString("a"), value.NewInt(2)}), 1)
	if mp.Value().Pairs()[0].Val.Int() != 7 {
		t.Errorf("map assign + input: %v", mp.Value())
	}
	if err := mp.Assign(value.NewInt(1)); err == nil {
		t.Error("map assigning scalar must error")
	}
	// Map merge with disjoint and overlapping keys.
	mp2 := MustNew(MapSpec(value.KindString, SumSpec(value.KindInt)))
	mustInput(t, mp2, value.NewTuple([]value.Value{value.NewString("a"), value.NewInt(1)}), 1)
	mustInput(t, mp2, value.NewTuple([]value.Value{value.NewString("b"), value.NewInt(4)}), 1)
	if err := mp.Merge(mp2); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, p := range mp.Value().Pairs() {
		got[p.Key.Str()] = p.Val.Int()
	}
	if got["a"] != 8 || got["b"] != 4 {
		t.Errorf("map merge: %v", got)
	}
	if err := mp.Merge(st); err == nil {
		t.Error("map merging set must error")
	}

	// Heap assign from a list of tuples.
	tt := &TupleType{Name: "T", Fields: []TupleField{{Name: "a", Kind: value.KindInt}}}
	hp := MustNew(HeapSpec(tt, 2, SortField{Field: "a", Desc: true}))
	if err := hp.Assign(value.NewList([]value.Value{
		value.NewTuple([]value.Value{value.NewInt(1)}),
		value.NewTuple([]value.Value{value.NewInt(5)}),
		value.NewTuple([]value.Value{value.NewInt(3)}),
	})); err != nil {
		t.Fatal(err)
	}
	elems := hp.Value().Elems()
	if len(elems) != 2 || elems[0].Elems()[0].Int() != 5 {
		t.Errorf("heap assign: %v", hp.Value())
	}
	if err := hp.Assign(value.NewInt(1)); err == nil {
		t.Error("heap assigning scalar must error")
	}
	if err := hp.Merge(st); err == nil {
		t.Error("heap merging set must error")
	}

	// Min/Max assign.
	mn := MustNew(MinSpec(value.KindInt))
	if err := mn.Assign(value.NewInt(5)); err != nil {
		t.Fatal(err)
	}
	mustInput(t, mn, value.NewInt(9), 1)
	if mn.Value().Int() != 5 {
		t.Errorf("min assign+input: %v", mn.Value())
	}
	if err := mn.Assign(value.NewString("x")); err == nil {
		t.Error("min assigning string must error")
	}

	// Avg assign type error.
	av := MustNew(AvgSpec(value.KindFloat))
	if err := av.Assign(value.NewString("x")); err == nil {
		t.Error("avg assigning string must error")
	}
	// Avg input type error.
	if err := av.Input(value.NewString("x"), 1); err == nil {
		t.Error("avg string input must error")
	}
}

// TestSpecAccessors covers the remaining Spec plumbing.
func TestSpecAccessors(t *testing.T) {
	for _, s := range orderInvariantSpecs() {
		a := MustNew(s)
		if a.Spec() != s {
			t.Errorf("Spec() identity lost for %s", s)
		}
	}
	if ArraySpec(value.KindInt).Kind != KindArray {
		t.Error("ArraySpec kind wrong")
	}
	if ArraySpec(value.KindInt).OrderInvariant() {
		t.Error("ArrayAccum must be order-sensitive")
	}
	// Map over an order-sensitive nested type is order-sensitive.
	if MapSpec(value.KindInt, ListSpec(value.KindInt)).OrderInvariant() {
		t.Error("MapAccum<., ListAccum> must be order-sensitive")
	}
	// GroupBy over invariant nested types is invariant.
	gb := GroupBySpec([]value.Kind{value.KindInt}, []*Spec{SumSpec(value.KindInt)})
	if !gb.OrderInvariant() {
		t.Error("GroupByAccum over sums must be order-invariant")
	}
	// GroupBy NumGroups accessor.
	a := MustNew(gb).(*groupBy)
	if a.NumGroups() != 0 {
		t.Error("fresh groupBy must have 0 groups")
	}
	mustInput(t, a, value.NewTuple([]value.Value{value.NewInt(1), value.NewInt(2)}), 1)
	if a.NumGroups() != 1 {
		t.Error("NumGroups after one input")
	}
	// mapAcc sortedKeys helper.
	m := MustNew(MapSpec(value.KindInt, SumSpec(value.KindInt))).(*mapAcc)
	mustInput(t, m, value.NewTuple([]value.Value{value.NewInt(2), value.NewInt(1)}), 1)
	mustInput(t, m, value.NewTuple([]value.Value{value.NewInt(1), value.NewInt(1)}), 1)
	keys := m.sortedKeys()
	if len(keys) != 2 || keys[0].Int() != 1 {
		t.Errorf("sortedKeys: %v", keys)
	}
}

// TestSetBagInputTypeErrors covers element-kind validation.
func TestSetBagInputTypeErrors(t *testing.T) {
	st := MustNew(SetSpec(value.KindInt))
	if err := st.Input(value.NewString("x"), 1); err == nil {
		t.Error("set wrong-kind input must error")
	}
	bg := MustNew(BagSpec(value.KindInt))
	if err := bg.Input(value.NewString("x"), 1); err == nil {
		t.Error("bag wrong-kind input must error")
	}
	ls := MustNew(ListSpec(value.KindInt))
	if err := ls.Input(value.NewString("x"), 1); err == nil {
		t.Error("list wrong-kind input must error")
	}
	// Float collections accept ints (widening).
	fs := MustNew(SetSpec(value.KindFloat))
	mustInput(t, fs, value.NewInt(3), 1)
	fb := MustNew(BagSpec(value.KindFloat))
	mustInput(t, fb, value.NewInt(3), 1)
	fl := MustNew(ListSpec(value.KindFloat))
	mustInput(t, fl, value.NewInt(3), 1)
}
