package accum

import (
	"testing"

	"gsqlgo/internal/value"
)

func TestBitwiseAccums(t *testing.T) {
	or := MustNew(BitwiseOrSpec())
	and := MustNew(BitwiseAndSpec())
	// Identities.
	if or.Value().Int() != 0 {
		t.Error("BitwiseOr identity must be 0")
	}
	if and.Value().Int() != ^int64(0) {
		t.Error("BitwiseAnd identity must be all ones")
	}
	mustInput(t, or, value.NewInt(0b0101), 7) // idempotent under multiplicity
	mustInput(t, or, value.NewInt(0b0010), 1)
	if or.Value().Int() != 0b0111 {
		t.Errorf("or = %b", or.Value().Int())
	}
	mustInput(t, and, value.NewInt(0b1110), 1)
	mustInput(t, and, value.NewInt(0b0111), 3)
	if and.Value().Int() != 0b0110 {
		t.Errorf("and = %b", and.Value().Int())
	}
	// Assign and merge.
	if err := or.Assign(value.NewInt(8)); err != nil {
		t.Fatal(err)
	}
	other := MustNew(BitwiseOrSpec())
	mustInput(t, other, value.NewInt(1), 1)
	if err := or.Merge(other); err != nil {
		t.Fatal(err)
	}
	if or.Value().Int() != 9 {
		t.Errorf("merged or = %d", or.Value().Int())
	}
	// Type errors and mismatched merges.
	if err := or.Input(value.NewString("x"), 1); err == nil {
		t.Error("non-int input must error")
	}
	if err := or.Assign(value.NewFloat(1)); err == nil {
		t.Error("non-int assign must error")
	}
	if err := or.Merge(and); err == nil {
		t.Error("or/and merge must error")
	}
	// Specs.
	if BitwiseOrSpec().String() != "BitwiseOrAccum" || BitwiseAndSpec().String() != "BitwiseAndAccum" {
		t.Error("bitwise spec names wrong")
	}
	if !BitwiseOrSpec().OrderInvariant() || !BitwiseOrSpec().TractableClassOK() {
		t.Error("bitwise accumulators are order-invariant and tractable")
	}
	// Clone independence.
	c := and.Clone()
	mustInput(t, c, value.NewInt(0), 1)
	if and.Value().Int() == 0 {
		t.Error("clone mutation leaked")
	}
}
