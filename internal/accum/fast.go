package accum

import (
	"gsqlgo/internal/value"
)

// FastOp classifies the scalar accumulator shapes the compiled ACCUM
// kernel can fold without boxing an Accumulator per delta: the
// order-invariant Sum/Min/Max/Avg/Or/And combiners over INT, FLOAT and
// BOOL elements. Everything else (strings, collections, heaps, custom
// accumulators) stays on the boxed Accumulator path, which the kernel
// uses as-is — identical semantics, just without the unboxed shortcut.
type FastOp uint8

// Fast-foldable combiner shapes.
const (
	FastNone FastOp = iota
	FastSumInt
	FastSumFloat
	FastMinInt
	FastMaxInt
	FastMinFloat
	FastMaxFloat
	FastAvg
	FastOr
	FastAnd
)

// ClassifyFast returns the unboxed fold shape for a spec, or FastNone
// when the spec needs the boxed Accumulator path.
func ClassifyFast(s *Spec) FastOp {
	if s == nil || len(s.Keys) > 0 || len(s.Nested) > 0 || s.Tuple != nil {
		return FastNone
	}
	switch s.Kind {
	case KindSum:
		switch s.Elem {
		case value.KindInt:
			return FastSumInt
		case value.KindFloat:
			return FastSumFloat
		}
	case KindMin:
		switch s.Elem {
		case value.KindInt:
			return FastMinInt
		case value.KindFloat:
			return FastMinFloat
		}
	case KindMax:
		switch s.Elem {
		case value.KindInt:
			return FastMaxInt
		case value.KindFloat:
			return FastMaxFloat
		}
	case KindAvg:
		return FastAvg
	case KindOr:
		return FastOr
	case KindAnd:
		return FastAnd
	}
	return FastNone
}

// FastCell is one worker-local unboxed delta: the flattened state of a
// fresh scalar accumulator, folded in place with no interface
// dispatch and no per-delta allocation. Which fields are live depends
// on the FastOp; Min/Max keep the winning value.Value (not a raw
// float) so a MinAccum<float> fed ints reports an int exactly like the
// boxed accumulator does.
type FastCell struct {
	I       int64       // FastSumInt running sum
	F       float64     // FastSumFloat / FastAvg running sum
	N       uint64      // FastAvg input count
	B       bool        // FastOr / FastAnd running fold
	Has     bool        // FastMin* / FastMax*: an input has arrived
	V       value.Value // FastMin* / FastMax*: current extreme
	Touched bool        // any input arrived (untouched cells never merge)
}

// InitFast returns the cell a fresh delta starts from: the combiner's
// identity (notably B=true for And, matching a fresh AndAccum).
func InitFast(op FastOp) FastCell {
	return FastCell{B: op == FastAnd}
}

// FoldFast folds one input into a cell with multiplicity mult,
// accepting and rejecting inputs under exactly the rules of the boxed
// accumulator's Input (same coercions, same error text), so the
// compiled kernel and the interpreter are bit-identical including on
// the error path.
func FoldFast(op FastOp, c *FastCell, s *Spec, v value.Value, mult uint64) error {
	switch op {
	case FastSumInt:
		iv, ok := v.AsInt()
		if !ok || v.Kind() == value.KindFloat {
			return mismatch(s, v)
		}
		c.I += iv * int64(mult)
	case FastSumFloat:
		f, ok := v.AsFloat()
		if !ok {
			return mismatch(s, v)
		}
		c.F += f * float64(mult)
	case FastAvg:
		f, ok := v.AsFloat()
		if !ok {
			return mismatch(s, v)
		}
		c.F += f * float64(mult)
		c.N += mult
	case FastMinInt, FastMaxInt:
		if v.Kind() != value.KindInt {
			return mismatch(s, v)
		}
		foldExtreme(op, c, v)
	case FastMinFloat, FastMaxFloat:
		if v.Kind() != value.KindFloat && v.Kind() != value.KindInt {
			return mismatch(s, v)
		}
		foldExtreme(op, c, v)
	case FastOr:
		if v.Kind() != value.KindBool {
			return mismatch(s, v)
		}
		c.B = c.B || v.Bool()
	case FastAnd:
		if v.Kind() != value.KindBool {
			return mismatch(s, v)
		}
		c.B = c.B && v.Bool()
	}
	c.Touched = true
	return nil
}

// FoldFastInt folds an input already evaluated as a machine int — the
// typed twin of FoldFast for the compiler's unboxed evaluators, which
// only attach to ops that accept an int outright (SumInt, MinInt,
// MaxInt), so no mismatch is possible and no Value crosses the call
// for the running-sum shapes.
func FoldFastInt(op FastOp, c *FastCell, iv int64, mult uint64) {
	switch op {
	case FastSumInt:
		c.I += iv * int64(mult)
	case FastMinInt, FastMaxInt:
		foldExtreme(op, c, value.NewInt(iv))
	}
	c.Touched = true
}

// FoldFastFloat is the float counterpart of FoldFastInt, valid for
// SumFloat, Avg, MinFloat and MaxFloat. Extremes still box the winner
// so a cell shared with the general FoldFast path keeps the boxed
// accumulator's kind-preserving comparison.
func FoldFastFloat(op FastOp, c *FastCell, fv float64, mult uint64) {
	switch op {
	case FastSumFloat:
		c.F += fv * float64(mult)
	case FastAvg:
		c.F += fv * float64(mult)
		c.N += mult
	case FastMinFloat, FastMaxFloat:
		foldExtreme(op, c, value.NewFloat(fv))
	}
	c.Touched = true
}

func foldExtreme(op FastOp, c *FastCell, v value.Value) {
	if !c.Has {
		c.Has = true
		c.V = v
		return
	}
	if op == FastMaxInt || op == FastMaxFloat {
		c.V = value.MaxOf(c.V, v)
	} else {
		c.V = value.MinOf(c.V, v)
	}
}

// MergeFast folds a worker cell into the live accumulator, mirroring
// what live.Merge(delta) does for the corresponding boxed delta —
// field-wise addition for Sum/Avg, a single Input of the extreme for
// Min/Max, a single boolean Input for Or/And. Callers must only merge
// Touched cells: the interpreter creates deltas lazily, so an
// untouched accumulator sees no Merge at all.
func MergeFast(a Accumulator, op FastOp, c *FastCell) error {
	switch live := a.(type) {
	case *sumNum:
		live.i += c.I
		live.f += c.F
		return nil
	case *avg:
		live.sum += c.F
		live.count += c.N
		return nil
	case *minMax:
		if c.Has {
			return live.Input(c.V, 1)
		}
		return nil
	case *boolAcc:
		return live.Input(value.NewBool(c.B), 1)
	}
	return mergeMismatch(a.Spec(), a)
}
