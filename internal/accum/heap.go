package accum

import (
	"fmt"
	"sort"

	"gsqlgo/internal/value"
)

// heap implements HeapAccum<T>(capacity, field [ASC|DESC]...): a
// bounded priority queue of tuples ordered lexicographically by the
// configured sort fields. The full tuple is used as a final tiebreak
// so the retained top-k set is deterministic (order-invariant), which
// keeps HeapAccum inside the snapshot semantics' deterministic class.
type heap struct {
	spec    *Spec
	sortIdx []int // tuple field index per sort component
	elems   []value.Value
}

func newHeap(s *Spec) *heap {
	idx := make([]int, len(s.Sort))
	for i, f := range s.Sort {
		idx[i] = s.Tuple.FieldIndex(f.Field)
	}
	return &heap{spec: s, sortIdx: idx}
}

func (a *heap) Spec() *Spec { return a.spec }

// less orders tuples by the sort spec, whole-tuple tiebreak last.
func (a *heap) less(x, y value.Value) bool {
	xe, ye := x.Elems(), y.Elems()
	for i, fi := range a.sortIdx {
		c := value.Compare(xe[fi], ye[fi])
		if a.spec.Sort[i].Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return value.Compare(x, y) < 0
}

func (a *heap) checkTuple(v value.Value) error {
	if v.Kind() != value.KindTuple || len(v.Elems()) != len(a.spec.Tuple.Fields) {
		return fmt.Errorf("accum: %s expects a %d-field tuple, got %s", a.spec, len(a.spec.Tuple.Fields), v.Kind())
	}
	return nil
}

func (a *heap) Input(v value.Value, mult uint64) error {
	if err := a.checkTuple(v); err != nil {
		return err
	}
	// Inserting μ identical copies is equivalent to inserting
	// min(μ, capacity) copies — the rest are evicted immediately.
	n := mult
	if n > uint64(a.spec.Capacity) {
		n = uint64(a.spec.Capacity)
	}
	for i := uint64(0); i < n; i++ {
		a.insert(v)
	}
	return nil
}

func (a *heap) insert(v value.Value) {
	pos := sort.Search(len(a.elems), func(i int) bool { return a.less(v, a.elems[i]) })
	a.elems = append(a.elems, value.Null)
	copy(a.elems[pos+1:], a.elems[pos:])
	a.elems[pos] = v
	if len(a.elems) > a.spec.Capacity {
		a.elems = a.elems[:a.spec.Capacity]
	}
}

func (a *heap) Assign(v value.Value) error {
	switch v.Kind() {
	case value.KindList, value.KindSet:
		a.elems = a.elems[:0]
		for _, e := range v.Elems() {
			if err := a.Input(e, 1); err != nil {
				return err
			}
		}
		return nil
	}
	return mismatch(a.spec, v)
}

func (a *heap) Merge(other Accumulator) error {
	o, ok := other.(*heap)
	if !ok {
		return mergeMismatch(a.spec, other)
	}
	for _, e := range o.elems {
		a.insert(e)
	}
	return nil
}

// Value returns the retained tuples, best first.
func (a *heap) Value() value.Value {
	return value.NewList(append([]value.Value(nil), a.elems...))
}

func (a *heap) Clone() Accumulator {
	c := *a
	c.elems = append([]value.Value(nil), a.elems...)
	return &c
}
