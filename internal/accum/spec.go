// Package accum implements GSQL's accumulator abstraction (Section 3
// of the paper): polymorphic data containers holding an internal value
// V, accepting inputs I, and folding them in with a binary combiner
// ⊕ : V × I → V. Accumulators implement "=" (Assign) and "+="
// (Input); Input takes an explicit multiplicity so the engine can
// replace μ identical ACCUM executions by one multiplicity-adjusted
// input (the Theorem 7.1 / Appendix A shortcut): Sum-like accumulators
// scale, multiplicity-insensitive ones (Min, Max, Or, And, Set, Map)
// input once, Bag adjusts counts, and order-sensitive ones replicate.
//
// Worker-local accumulator instances merge with Merge, giving the
// map/reduce snapshot semantics of Section 4.3 deterministic results
// for every order-invariant type.
package accum

import (
	"fmt"
	"strings"

	"gsqlgo/internal/value"
)

// Kind enumerates the built-in accumulator types.
type Kind int

// Built-in accumulator kinds (Section 3, "Accumulator Types").
const (
	KindSum Kind = iota
	KindMin
	KindMax
	KindAvg
	KindOr
	KindAnd
	KindSet
	KindBag
	KindList
	KindArray
	KindMap
	KindHeap
	KindGroupBy
	KindBitwiseAnd
	KindBitwiseOr
	KindCustom // user-registered (the paper's extensible library)
)

var kindNames = map[Kind]string{
	KindSum:        "SumAccum",
	KindMin:        "MinAccum",
	KindMax:        "MaxAccum",
	KindAvg:        "AvgAccum",
	KindOr:         "OrAccum",
	KindAnd:        "AndAccum",
	KindSet:        "SetAccum",
	KindBag:        "BagAccum",
	KindList:       "ListAccum",
	KindArray:      "ArrayAccum",
	KindMap:        "MapAccum",
	KindHeap:       "HeapAccum",
	KindGroupBy:    "GroupByAccum",
	KindBitwiseAnd: "BitwiseAndAccum",
	KindBitwiseOr:  "BitwiseOrAccum",
}

// KindByName resolves a GSQL accumulator type name ("SumAccum", ...).
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// TupleField is one field of a named tuple type (TYPEDEF TUPLE).
type TupleField struct {
	Name string
	Kind value.Kind
}

// TupleType is a named tuple type used by HeapAccum.
type TupleType struct {
	Name   string
	Fields []TupleField
}

// FieldIndex returns the position of the named field, or -1.
func (t *TupleType) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// SortField selects a heap ordering component.
type SortField struct {
	Field string
	Desc  bool
}

// Spec is a parsed accumulator type.
type Spec struct {
	Kind Kind

	// Elem is the element/input scalar kind for Sum, Min, Max, Avg,
	// Set, Bag, List and Array.
	Elem value.Kind

	// Keys are the key kinds of Map (one) or GroupBy (one or more).
	Keys []value.Kind
	// KeyNames optionally names GroupBy keys (diagnostics only).
	KeyNames []string
	// Nested are the value accumulator specs of Map (one) or GroupBy
	// (one or more).
	Nested []*Spec

	// Heap configuration.
	Capacity int
	Tuple    *TupleType
	Sort     []SortField

	// Custom accumulator name (Kind == KindCustom).
	CustomName string
}

// Convenience spec constructors.

// SumSpec returns a SumAccum<elem> spec.
func SumSpec(elem value.Kind) *Spec { return &Spec{Kind: KindSum, Elem: elem} }

// MinSpec returns a MinAccum<elem> spec.
func MinSpec(elem value.Kind) *Spec { return &Spec{Kind: KindMin, Elem: elem} }

// MaxSpec returns a MaxAccum<elem> spec.
func MaxSpec(elem value.Kind) *Spec { return &Spec{Kind: KindMax, Elem: elem} }

// AvgSpec returns an AvgAccum<elem> spec.
func AvgSpec(elem value.Kind) *Spec { return &Spec{Kind: KindAvg, Elem: elem} }

// OrSpec returns an OrAccum spec.
func OrSpec() *Spec { return &Spec{Kind: KindOr} }

// BitwiseAndSpec returns a BitwiseAndAccum spec (integer AND fold,
// identity ^0).
func BitwiseAndSpec() *Spec { return &Spec{Kind: KindBitwiseAnd} }

// BitwiseOrSpec returns a BitwiseOrAccum spec (integer OR fold,
// identity 0).
func BitwiseOrSpec() *Spec { return &Spec{Kind: KindBitwiseOr} }

// AndSpec returns an AndAccum spec.
func AndSpec() *Spec { return &Spec{Kind: KindAnd} }

// SetSpec returns a SetAccum<elem> spec.
func SetSpec(elem value.Kind) *Spec { return &Spec{Kind: KindSet, Elem: elem} }

// BagSpec returns a BagAccum<elem> spec.
func BagSpec(elem value.Kind) *Spec { return &Spec{Kind: KindBag, Elem: elem} }

// ListSpec returns a ListAccum<elem> spec.
func ListSpec(elem value.Kind) *Spec { return &Spec{Kind: KindList, Elem: elem} }

// ArraySpec returns an ArrayAccum<elem> spec.
func ArraySpec(elem value.Kind) *Spec { return &Spec{Kind: KindArray, Elem: elem} }

// MapSpec returns a MapAccum<key, nested> spec.
func MapSpec(key value.Kind, nested *Spec) *Spec {
	return &Spec{Kind: KindMap, Keys: []value.Kind{key}, Nested: []*Spec{nested}}
}

// HeapSpec returns a HeapAccum<tuple>(capacity, sort...) spec.
func HeapSpec(tuple *TupleType, capacity int, sort ...SortField) *Spec {
	return &Spec{Kind: KindHeap, Tuple: tuple, Capacity: capacity, Sort: sort}
}

// GroupBySpec returns a GroupByAccum<keys -> nested aggregates> spec.
func GroupBySpec(keys []value.Kind, nested []*Spec) *Spec {
	return &Spec{Kind: KindGroupBy, Keys: keys, Nested: nested}
}

// CustomSpec returns a spec for a registered user-defined accumulator.
func CustomSpec(name string) *Spec { return &Spec{Kind: KindCustom, CustomName: name} }

// String renders the spec in GSQL type syntax.
func (s *Spec) String() string {
	switch s.Kind {
	case KindOr, KindAnd, KindBitwiseAnd, KindBitwiseOr:
		return kindNames[s.Kind]
	case KindSum, KindMin, KindMax, KindAvg, KindSet, KindBag, KindList, KindArray:
		return fmt.Sprintf("%s<%s>", kindNames[s.Kind], s.Elem)
	case KindMap:
		return fmt.Sprintf("MapAccum<%s, %s>", s.Keys[0], s.Nested[0])
	case KindHeap:
		parts := make([]string, len(s.Sort))
		for i, f := range s.Sort {
			dir := "ASC"
			if f.Desc {
				dir = "DESC"
			}
			parts[i] = f.Field + " " + dir
		}
		return fmt.Sprintf("HeapAccum<%s>(%d, %s)", s.Tuple.Name, s.Capacity, strings.Join(parts, ", "))
	case KindGroupBy:
		keys := make([]string, len(s.Keys))
		for i, k := range s.Keys {
			keys[i] = k.String()
			if i < len(s.KeyNames) && s.KeyNames[i] != "" {
				keys[i] += " " + s.KeyNames[i]
			}
		}
		nested := make([]string, len(s.Nested))
		for i, n := range s.Nested {
			nested[i] = n.String()
		}
		return fmt.Sprintf("GroupByAccum<%s, %s>", strings.Join(keys, ", "), strings.Join(nested, ", "))
	case KindCustom:
		return s.CustomName
	default:
		return fmt.Sprintf("Accum(%d)", s.Kind)
	}
}

// numericKind reports whether k is int or float.
func numericKind(k value.Kind) bool { return k == value.KindInt || k == value.KindFloat }

// orderedKind reports whether values of k can be Min/Max aggregated.
func orderedKind(k value.Kind) bool {
	switch k {
	case value.KindInt, value.KindFloat, value.KindString, value.KindDatetime, value.KindBool, value.KindVertex:
		return true
	}
	return false
}

// Validate checks the spec's internal consistency.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindSum:
		if !numericKind(s.Elem) && s.Elem != value.KindString {
			return fmt.Errorf("accum: SumAccum requires a numeric or string element, got %s", s.Elem)
		}
	case KindAvg:
		if !numericKind(s.Elem) {
			return fmt.Errorf("accum: AvgAccum requires a numeric element, got %s", s.Elem)
		}
	case KindMin, KindMax:
		if !orderedKind(s.Elem) {
			return fmt.Errorf("accum: %s requires an ordered element, got %s", kindNames[s.Kind], s.Elem)
		}
	case KindOr, KindAnd, KindBitwiseAnd, KindBitwiseOr:
		// no parameters
	case KindSet, KindBag, KindList, KindArray:
		if s.Elem == value.KindNull {
			return fmt.Errorf("accum: %s requires an element type", kindNames[s.Kind])
		}
	case KindMap:
		if len(s.Keys) != 1 || len(s.Nested) != 1 {
			return fmt.Errorf("accum: MapAccum requires one key and one value type")
		}
		if !orderedKind(s.Keys[0]) {
			return fmt.Errorf("accum: MapAccum key must be an ordered type, got %s", s.Keys[0])
		}
		return s.Nested[0].Validate()
	case KindHeap:
		if s.Tuple == nil || len(s.Tuple.Fields) == 0 {
			return fmt.Errorf("accum: HeapAccum requires a tuple type")
		}
		if s.Capacity <= 0 {
			return fmt.Errorf("accum: HeapAccum capacity must be positive, got %d", s.Capacity)
		}
		if len(s.Sort) == 0 {
			return fmt.Errorf("accum: HeapAccum requires at least one sort field")
		}
		for _, f := range s.Sort {
			if s.Tuple.FieldIndex(f.Field) < 0 {
				return fmt.Errorf("accum: HeapAccum sort field %q not in tuple %s", f.Field, s.Tuple.Name)
			}
		}
	case KindGroupBy:
		if len(s.Keys) == 0 || len(s.Nested) == 0 {
			return fmt.Errorf("accum: GroupByAccum requires keys and nested accumulators")
		}
		for _, k := range s.Keys {
			if !orderedKind(k) {
				return fmt.Errorf("accum: GroupByAccum key must be an ordered type, got %s", k)
			}
		}
		for _, n := range s.Nested {
			if err := n.Validate(); err != nil {
				return err
			}
		}
	case KindCustom:
		if _, ok := lookupCustom(s.CustomName); !ok {
			return fmt.Errorf("accum: unregistered custom accumulator %q", s.CustomName)
		}
	default:
		return fmt.Errorf("accum: unknown accumulator kind %d", s.Kind)
	}
	return nil
}

// OrderInvariant reports whether the accumulator's reduce result is
// independent of input order (Section 4.3): true for every built-in
// type except ListAccum, ArrayAccum and SumAccum<string>, and
// recursively for MapAccum/GroupByAccum over invariant nested types.
func (s *Spec) OrderInvariant() bool {
	switch s.Kind {
	case KindList, KindArray:
		return false
	case KindSum:
		return s.Elem != value.KindString
	case KindMap, KindGroupBy:
		for _, n := range s.Nested {
			if !n.OrderInvariant() {
				return false
			}
		}
		return true
	case KindCustom:
		c, ok := lookupCustom(s.CustomName)
		return ok && c.OrderInvariant
	default:
		return true
	}
}

// TractableClassOK reports whether the accumulator type is admitted by
// the tractable query class of Theorem 7.1, which disallows ListAccum,
// ArrayAccum and SumAccum<string> (their results depend on path
// multiplicities in an order-sensitive way).
func (s *Spec) TractableClassOK() bool { return s.OrderInvariant() }
