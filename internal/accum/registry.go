package accum

import "sync"

// CustomType registers a user-defined accumulator constructor — the Go
// analogue of GSQL's C++ accumulator extension interface ("Extensible
// Accumulator Library", Section 3). New must return a fresh empty
// instance; OrderInvariant must report whether the combiner is
// commutative and associative (non-invariant customs are excluded from
// the tractable class and from deterministic parallel reduction, like
// ListAccum).
type CustomType struct {
	Name           string
	OrderInvariant bool
	New            func(spec *Spec) Accumulator
}

var (
	customMu  sync.RWMutex
	customReg = map[string]CustomType{}
)

// Register installs a custom accumulator type under its name,
// replacing any previous registration.
func Register(c CustomType) {
	customMu.Lock()
	defer customMu.Unlock()
	customReg[c.Name] = c
}

// Unregister removes a custom accumulator type.
func Unregister(name string) {
	customMu.Lock()
	defer customMu.Unlock()
	delete(customReg, name)
}

func lookupCustom(name string) (CustomType, bool) {
	customMu.RLock()
	defer customMu.RUnlock()
	c, ok := customReg[name]
	return c, ok
}
