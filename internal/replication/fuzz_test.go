package replication

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/storage"
)

// frame builds one wire frame around payload.
func frame(payload []byte) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// FuzzReplicationFrameDecode is the wire-framing fuzz target: for
// arbitrary chunk bytes, DecodeFrames must never panic and must either
// return payloads that re-encode to exactly the input (the wire is a
// pure concatenation of frames) or fail with the typed ErrBadFrame.
// Anything else means the follower trusted bytes off the network.
func FuzzReplicationFrameDecode(f *testing.F) {
	// Realistic seed: actual WAL frames from a live store.
	h := fuzzLeaderChunk(f)
	f.Add(h)
	f.Add([]byte{})
	f.Add(frame(nil))                                   // zero-length payload
	f.Add(frame([]byte{1}))                             // minimal record-ish
	f.Add(append(frame([]byte("ab")), h...))            // synthetic + real
	f.Add(append([]byte(nil), h[:len(h)-1]...))         // torn tail
	f.Add(append([]byte{0x00}, h...))                   // shifted off boundary
	f.Add(binary.LittleEndian.AppendUint32(nil, 1<<30)) // absurd length, no body
	for _, pos := range []int{0, 4, 8, len(h) / 2} {
		if pos < len(h) {
			mut := append([]byte(nil), h...)
			mut[pos] ^= 0x01
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, err := DecodeFrames(data)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("DecodeFrames: non-ErrBadFrame failure %v", err)
			}
			if payloads != nil {
				t.Fatal("DecodeFrames returned payloads alongside an error")
			}
			return
		}
		// Success must mean the input was exactly a frame concatenation:
		// re-framing the payloads reproduces the input byte for byte.
		var re []byte
		for _, p := range payloads {
			re = append(re, frame(p)...)
		}
		if len(re) != len(data) || (len(data) > 0 && !equal(re, data)) {
			t.Fatalf("decode/re-encode mismatch: %d bytes in, %d bytes out", len(data), len(re))
		}
	})
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fuzzLeaderChunk produces genuine WAL chunk bytes by running a few
// mutations through a real store and reading them back through the
// shipping API.
func fuzzLeaderChunk(f *testing.F) []byte {
	f.Helper()
	st, err := storage.Open(f.TempDir(), storage.Options{
		Init: func() (*graph.Graph, error) { return graph.New(testSchema(f)), nil },
	})
	if err != nil {
		f.Fatal(err)
	}
	defer st.Close()
	g := st.Graph()
	for i, key := range []string{"ada", "bob", "eve"} {
		if _, err := g.AddVertex("Person", key, nil); err != nil {
			f.Fatal(err)
		}
		if i > 0 {
			if _, err := g.AddEdge("Knows", 0, 1, nil); err != nil {
				f.Fatal(err)
			}
		}
	}
	seq, _ := st.Position()
	chunk, err := st.ReadWALChunk(seq, storage.WALHeaderSize, 0)
	if err != nil {
		f.Fatal(err)
	}
	return chunk.Data
}
