package replication

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/storage"
	"gsqlgo/internal/value"
)

// BenchmarkFollowerCatchUp measures replication end to end: one
// iteration is a fresh follower bootstrapping from the leader's
// snapshot and tailing a 5000-record WAL over HTTP until its position
// equals the leader's. The reported records/s is apply throughput
// including the follower's own re-logging (the bytes hit its WAL too —
// that is what persists the position).
func BenchmarkFollowerCatchUp(b *testing.B) {
	const records = 5000
	st, err := storage.Open(b.TempDir(), storage.Options{
		Init: func() (*graph.Graph, error) { return graph.New(testSchema(b)), nil },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	g := st.Graph()
	for i := 0; i < records; i++ {
		if _, err := g.AddVertex("Person", fmt.Sprintf("p%06d", i), map[string]value.Value{
			"name": value.NewString(fmt.Sprintf("Person %d", i)),
			"age":  value.NewInt(int64(20 + i%60)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	mux := http.NewServeMux()
	NewLeader(st, nil).Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	wantSeq, wantOff := st.Position()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw, err := OpenFollower(context.Background(), FollowerConfig{
			LeaderURL: srv.URL,
			Dir:       filepath.Join(b.TempDir(), fmt.Sprintf("fw-%d", i)),
			PollWait:  10 * time.Millisecond,
			Backoff:   time.Millisecond,
			MaxChunk:  64 << 10, // several round trips, like a real tail
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- fw.Run(ctx) }()
		for {
			seq, off := fw.Position()
			if seq == wantSeq && off == wantOff {
				break
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		if err := fw.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
