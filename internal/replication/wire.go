package replication

import (
	"errors"
	"fmt"

	"gsqlgo/internal/storage"
)

// ErrBadFrame reports a shipped WAL chunk that does not parse as a
// sequence of whole, CRC-valid frames. Unlike WAL recovery — where a
// torn tail is expected and silently truncated — the wire carries only
// bytes the leader already validated, so any framing error here means
// the transfer or the peer is broken and the follower should drop the
// chunk and re-fetch. Match with errors.Is; always returned wrapped.
var ErrBadFrame = errors.New("replication: bad WAL frame on the wire")

// DecodeFrames splits a shipped WAL chunk into its record payloads,
// re-verifying each frame's length and CRC. The returned slices alias
// data. An empty chunk decodes to nil; any torn, oversized or
// checksum-failing frame fails the whole chunk with ErrBadFrame —
// frames before the bad one are not returned, because applying half a
// chunk and refetching the rest would double-apply on retry.
func DecodeFrames(data []byte) ([][]byte, error) {
	var payloads [][]byte
	for off := 0; off < len(data); {
		payload, n, err := storage.ParseFrame(data[off:])
		if err != nil {
			return nil, fmt.Errorf("%w: offset %d of %d: %v", ErrBadFrame, off, len(data), err)
		}
		payloads = append(payloads, payload)
		off += n
	}
	return payloads, nil
}
