package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/storage"
	"gsqlgo/internal/trace"
)

// FollowerConfig configures a read replica.
type FollowerConfig struct {
	// LeaderURL is the leader's base URL (e.g. http://leader:8080).
	// Required.
	LeaderURL string
	// Dir is the follower's own store directory. A directory that
	// already holds a store is recovered and tailing resumes from its
	// position; an empty one bootstraps from the leader's snapshot.
	Dir string
	// Fsync and Retain configure the follower's local store exactly as
	// they would a leader's.
	Fsync  bool
	Retain int
	// Client performs the HTTP requests (default http.DefaultClient;
	// its Timeout must exceed PollWait or every long-poll times out).
	Client *http.Client
	// Logger receives lifecycle records (default slog.Default()).
	Logger *slog.Logger
	// PollWait is the long-poll wait requested from the leader when
	// caught up (default 10s).
	PollWait time.Duration
	// MaxChunk caps the bytes requested per WAL fetch (default: the
	// store's 1 MiB chunk default).
	MaxChunk int
	// Backoff and MaxBackoff bound the reconnect backoff after a fetch
	// failure (defaults 100ms and 5s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// AdvertiseURL, when set, is this follower's own base URL, sent to
	// the leader on every fetch (HdrReplicaURL) so the leader's
	// /cluster/status learns cluster membership from replication traffic.
	AdvertiseURL string
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.PollWait <= 0 {
		c.PollWait = 10 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	return c
}

// FollowerStats is a snapshot of a follower's replication counters and
// lag gauges.
type FollowerStats struct {
	RecordsApplied uint64
	BytesApplied   uint64
	Bootstraps     uint64
	Reconnects     uint64
	// LagRecords/LagBytes measure distance behind the leader as of the
	// last fetch. Exact while follower and leader share a WAL segment;
	// across a rotation the follower only knows the leader's active
	// segment, so the value is a lower bound until it catches up to the
	// same generation.
	LagRecords int64
	LagBytes   int64
}

// Follower tails a leader's WAL into its own store and keeps a local
// graph bit-identical to the leader's at its applied position. See the
// package comment for the protocol; the one structural invariant worth
// restating is that the follower's store mirrors the leader's file
// layout, so its replication position IS the store's recovered
// position — restarts resume tailing with no separate position file.
type Follower struct {
	cfg FollowerConfig
	log *slog.Logger

	// mu guards store against the swap a re-bootstrap performs. The
	// serving layer's writer lock (Bind) serializes apply against
	// queries; this narrower lock only protects the pointer.
	mu    sync.Mutex
	store *storage.Store

	// lock, onSwap, onTrace are supplied by the serving layer via Bind.
	lock    sync.Locker
	onSwap  func(*storage.Store)
	onTrace func(*trace.Span)

	nRecords    atomic.Uint64
	nBytes      atomic.Uint64
	nBootstraps atomic.Uint64
	nReconnects atomic.Uint64
	lagRecords  atomic.Int64
	lagBytes    atomic.Int64

	// traceID is minted once per follower lifetime and sent as
	// X-Trace-Id on every leader fetch, and stamped on bootstrap and
	// rotation spans — so one id stitches a follower's replication
	// activity across both nodes' /debug/traces rings.
	traceID string
}

// OpenFollower opens (or bootstraps) a follower. When dir already
// holds a store it is recovered locally — the leader is not contacted
// until Run. Otherwise the leader's latest snapshot is fetched and
// installed, which requires the leader to be reachable.
func OpenFollower(ctx context.Context, cfg FollowerConfig) (*Follower, error) {
	cfg = cfg.withDefaults()
	if cfg.LeaderURL == "" {
		return nil, errors.New("replication: FollowerConfig.LeaderURL is required")
	}
	f := &Follower{cfg: cfg, log: cfg.Logger, lock: noopLocker{}, traceID: trace.NewID()}
	has, err := storage.HasStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if !has {
		if err := f.fetchAndInstallSnapshot(ctx); err != nil {
			return nil, err
		}
	}
	st, err := storage.Open(cfg.Dir, f.storeOptions())
	if err != nil {
		return nil, err
	}
	f.store = st
	seq, off := st.Position()
	f.log.Info("replication: follower open",
		"dir", cfg.Dir, "leader", cfg.LeaderURL,
		"seq", seq, "off", off, "resumed", has)
	return f, nil
}

func (f *Follower) storeOptions() storage.Options {
	return storage.Options{
		// Init is nil on purpose: a follower's store always starts from
		// an installed snapshot; initializing an empty graph locally
		// would fabricate state the leader never had.
		Fsync:  f.cfg.Fsync,
		Retain: f.cfg.Retain,
	}
}

type noopLocker struct{}

func (noopLocker) Lock()   {}
func (noopLocker) Unlock() {}

// Bind hands the follower the serving layer's coupling points: lock is
// held exclusively around every record apply and store swap (pass the
// server's graph RWMutex so queries never observe a half-applied
// batch), onSwap is called — under that lock — when a re-bootstrap
// replaces the store, and onTrace receives the span of each bootstrap
// and segment rotation (nil callbacks are fine). Call before Run.
func (f *Follower) Bind(lock sync.Locker, onSwap func(*storage.Store), onTrace func(*trace.Span)) {
	if lock != nil {
		f.lock = lock
	}
	f.onSwap = onSwap
	f.onTrace = onTrace
}

// Store returns the follower's current store. After Run has started,
// the pointer is only stable while the Bind lock is held (re-bootstrap
// swaps it).
func (f *Follower) Store() *storage.Store {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.store
}

// Graph returns the follower's current graph (same stability caveat as
// Store).
func (f *Follower) Graph() *graph.Graph { return f.Store().Graph() }

// LeaderURL returns the base URL of the leader this follower tails.
// The serving layer advertises it on rejected writes (Leader response
// header + "leader" body field) so clients can redirect mutations
// without out-of-band configuration.
func (f *Follower) LeaderURL() string { return f.cfg.LeaderURL }

// TraceID returns the follower's lifetime trace id — the X-Trace-Id it
// sends to the leader on every fetch.
func (f *Follower) TraceID() string { return f.traceID }

// decorate stamps the follower's identity on an outgoing leader fetch:
// the lifetime trace id and, when configured, the advertised base URL.
func (f *Follower) decorate(req *http.Request) {
	if f.traceID != "" {
		req.Header.Set("X-Trace-Id", f.traceID)
	}
	if f.cfg.AdvertiseURL != "" {
		req.Header.Set(HdrReplicaURL, f.cfg.AdvertiseURL)
	}
}

// Stats snapshots the follower's counters and lag gauges.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		RecordsApplied: f.nRecords.Load(),
		BytesApplied:   f.nBytes.Load(),
		Bootstraps:     f.nBootstraps.Load(),
		Reconnects:     f.nReconnects.Load(),
		LagRecords:     f.lagRecords.Load(),
		LagBytes:       f.lagBytes.Load(),
	}
}

// Position returns the follower's applied replication position.
func (f *Follower) Position() (seq uint64, off int64) {
	return f.Store().Position()
}

// Close closes the follower's store. Call after Run has returned.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.store == nil {
		return nil
	}
	err := f.store.Close()
	f.store = nil
	return err
}

// Run tails the leader until ctx is cancelled (returns nil) or the
// follower hits a non-recoverable divergence (returns the error).
// Fetch failures reconnect with exponential backoff; a 410 from the
// leader triggers a snapshot re-bootstrap.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.cfg.Backoff
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		err := f.tailOnce(ctx)
		switch {
		case err == nil:
			backoff = f.cfg.Backoff
		case errors.Is(err, errPositionGone):
			f.log.Warn("replication: position pruned by leader, re-bootstrapping")
			if err := f.rebootstrap(ctx); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				f.log.Error("replication: re-bootstrap failed", "err", err)
				f.nReconnects.Add(1)
				if !sleepCtx(ctx, backoff) {
					return nil
				}
				backoff = min(backoff*2, f.cfg.MaxBackoff)
			} else {
				backoff = f.cfg.Backoff
			}
		case errors.Is(err, context.Canceled) || ctx.Err() != nil:
			return nil
		case isFatal(err):
			f.log.Error("replication: fatal", "err", err)
			return err
		default:
			f.log.Warn("replication: fetch failed, retrying",
				"err", err, "backoff", backoff)
			f.nReconnects.Add(1)
			if !sleepCtx(ctx, backoff) {
				return nil
			}
			backoff = min(backoff*2, f.cfg.MaxBackoff)
		}
	}
}

// errPositionGone is the internal signal for a leader 410.
var errPositionGone = errors.New("replication: leader no longer serves this position")

// fatalError marks divergence the tail loop cannot retry its way out
// of (a record that fails to apply): retrying would re-apply the same
// bytes to the same state. Run surfaces it to the caller.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

func isFatal(err error) bool {
	var fe *fatalError
	return errors.As(err, &fe)
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// tailOnce fetches one WAL chunk at the current position and applies
// it. Returns nil when progress was made or the poll simply came back
// empty; errPositionGone on a leader 410.
func (f *Follower) tailOnce(ctx context.Context) error {
	st := f.Store()
	seq, off := st.Position()
	url := fmt.Sprintf("%s/replication/wal?seq=%d&from=%d&wait_ms=%d",
		f.cfg.LeaderURL, seq, off, f.cfg.PollWait.Milliseconds())
	if f.cfg.MaxChunk > 0 {
		url += fmt.Sprintf("&max_bytes=%d", f.cfg.MaxChunk)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	f.decorate(req)
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		return errPositionGone
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replication: leader answered %s: %s", resp.Status, body)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	payloads, err := DecodeFrames(data)
	if err != nil {
		// The transfer is damaged, not the position: drop the chunk and
		// re-fetch from the same offset.
		return err
	}
	nextSeq, _ := strconv.ParseUint(resp.Header.Get(HdrNextSeq), 10, 64)

	if len(payloads) > 0 || nextSeq != 0 {
		if err := f.apply(st, payloads, nextSeq); err != nil {
			return err
		}
	}
	f.updateLag(st, resp.Header)
	return nil
}

// apply replays one chunk's records into the follower's graph under
// the serving layer's writer lock, then rotates to nextSeq if the
// chunk exhausted a sealed segment. Applying goes through the store's
// mutation-observer path, so every record is re-logged to the
// follower's own WAL — byte-identical frames, since record encoding is
// deterministic — which is what persists the replication position.
func (f *Follower) apply(st *storage.Store, payloads [][]byte, nextSeq uint64) error {
	f.lock.Lock()
	defer f.lock.Unlock()
	g := st.Graph()
	var bytes int
	for i, p := range payloads {
		if err := storage.ApplyRecord(g, p); err != nil {
			// Divergence or corruption the CRC could not see; retrying
			// the same bytes cannot succeed.
			return &fatalError{fmt.Errorf("replication: applying record %d of chunk: %w", i, err)}
		}
		bytes += 8 + len(p)
	}
	f.nRecords.Add(uint64(len(payloads)))
	f.nBytes.Add(uint64(bytes))
	if nextSeq != 0 {
		span := trace.New("replication.rotate")
		span.SetStr("trace_id", f.traceID)
		err := st.AdvanceSegment(nextSeq)
		span.SetStr("seq", strconv.FormatUint(nextSeq, 10))
		span.End()
		if f.onTrace != nil {
			f.onTrace(span)
		}
		if err != nil {
			return &fatalError{fmt.Errorf("replication: rotating to segment %d: %w", nextSeq, err)}
		}
		f.log.Info("replication: rotated segment", "seq", nextSeq)
	}
	return nil
}

// updateLag refreshes the lag gauges from the leader position headers
// of the response just processed.
func (f *Follower) updateLag(st *storage.Store, h http.Header) {
	leaderSeq, err1 := strconv.ParseUint(h.Get(HdrLeaderSeq), 10, 64)
	leaderOff, err2 := strconv.ParseInt(h.Get(HdrLeaderOff), 10, 64)
	leaderRecs, err3 := strconv.ParseUint(h.Get(HdrLeaderRecords), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return
	}
	mySeq, myOff := st.Position()
	if leaderSeq == mySeq {
		f.lagRecords.Store(int64(leaderRecs) - int64(st.ActiveRecords()))
		f.lagBytes.Store(leaderOff - myOff)
		return
	}
	// Different segments: the leader's active-segment counters alone are
	// a lower bound on the distance (sealed segments in between aren't
	// visible from one response). The gauge converges to exact as soon
	// as the follower reaches the leader's generation.
	f.lagRecords.Store(int64(leaderRecs))
	f.lagBytes.Store(leaderOff - storage.WALHeaderSize)
}

// ---- bootstrap -------------------------------------------------------------

// fetchSnapshot downloads the leader's newest snapshot.
func (f *Follower) fetchSnapshot(ctx context.Context) (seq uint64, data []byte, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		f.cfg.LeaderURL+"/replication/snapshot", nil)
	if err != nil {
		return 0, nil, err
	}
	f.decorate(req)
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, nil, fmt.Errorf("replication: snapshot fetch: leader answered %s: %s", resp.Status, body)
	}
	seq, err = strconv.ParseUint(resp.Header.Get(HdrSeq), 10, 64)
	if err != nil || seq == 0 {
		return 0, nil, fmt.Errorf("replication: snapshot response missing %s", HdrSeq)
	}
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return seq, data, nil
}

// fetchAndInstallSnapshot bootstraps an empty directory from the
// leader (initial open only; re-bootstrap of a live follower is
// rebootstrap's job).
func (f *Follower) fetchAndInstallSnapshot(ctx context.Context) error {
	span := trace.New("replication.bootstrap")
	span.SetStr("trace_id", f.traceID)
	defer func() {
		span.End()
		if f.onTrace != nil {
			f.onTrace(span)
		}
	}()
	seq, data, err := f.fetchSnapshot(ctx)
	if err != nil {
		span.SetStr("error", err.Error())
		return err
	}
	span.SetStr("seq", strconv.FormatUint(seq, 10))
	if err := storage.WriteBootstrapSnapshot(f.cfg.Dir, seq, data); err != nil {
		span.SetStr("error", err.Error())
		return err
	}
	f.nBootstraps.Add(1)
	f.log.Info("replication: bootstrapped from leader snapshot",
		"seq", seq, "bytes", len(data))
	return nil
}

// rebootstrap discards the follower's store and rebuilds it from the
// leader's newest snapshot — the recovery path when the follower's
// position aged past the leader's retention. The snapshot downloads
// outside the serving lock (it can be large); the destructive part —
// close, wipe, install, reopen, swap — runs under it, and onSwap lets
// the serving layer repoint its engine at the new graph before reads
// resume.
func (f *Follower) rebootstrap(ctx context.Context) error {
	span := trace.New("replication.rebootstrap")
	span.SetStr("trace_id", f.traceID)
	defer func() {
		span.End()
		if f.onTrace != nil {
			f.onTrace(span)
		}
	}()
	seq, data, err := f.fetchSnapshot(ctx)
	if err != nil {
		span.SetStr("error", err.Error())
		return err
	}
	span.SetStr("seq", strconv.FormatUint(seq, 10))

	f.lock.Lock()
	defer f.lock.Unlock()
	f.mu.Lock()
	old := f.store
	f.mu.Unlock()
	if err := old.Close(); err != nil {
		f.log.Warn("replication: closing store for re-bootstrap", "err", err)
	}
	if err := storage.WipeStore(f.cfg.Dir); err != nil {
		return &fatalError{fmt.Errorf("replication: wiping store for re-bootstrap: %w", err)}
	}
	if err := storage.WriteBootstrapSnapshot(f.cfg.Dir, seq, data); err != nil {
		return &fatalError{fmt.Errorf("replication: installing bootstrap snapshot: %w", err)}
	}
	st, err := storage.Open(f.cfg.Dir, f.storeOptions())
	if err != nil {
		return &fatalError{fmt.Errorf("replication: reopening store after re-bootstrap: %w", err)}
	}
	f.mu.Lock()
	f.store = st
	f.mu.Unlock()
	if f.onSwap != nil {
		f.onSwap(st)
	}
	f.nBootstraps.Add(1)
	f.lagRecords.Store(0)
	f.lagBytes.Store(0)
	f.log.Info("replication: re-bootstrapped", "seq", seq, "bytes", len(data))
	return nil
}
