// Package replication turns one durable gsqld into a writer with N
// read replicas — WAL shipping over HTTP, the cheapest credible path
// from the single-node engine into distribution, and the shape in
// which installed-query serving actually scales to heavy read traffic:
// one leader takes mutations, followers tail its log and serve
// queries.
//
// The protocol has two legs, both served by the leader next to its
// ordinary query routes:
//
//	GET /replication/snapshot
//	    The newest snapshot generation that decodes cleanly, raw
//	    bytes, with X-Replication-Seq naming the generation. A
//	    follower installs it as its own generation and tails the
//	    matching WAL segment from its first record.
//
//	GET /replication/wal?seq=N&from=OFF&wait_ms=W&max_bytes=B
//	    Complete CRC-framed WAL records of segment N starting at byte
//	    offset OFF — the exact bytes the leader's log holds, so the
//	    follower re-verifies every checksum and appends the identical
//	    frames to its own log. When nothing new is available the
//	    request long-polls up to wait_ms. Response headers carry the
//	    leader's live position for lag accounting, and 410 Gone means
//	    the position aged past the leader's retention: the follower's
//	    only safe move is a fresh snapshot bootstrap.
//
// The follower (gsqld -follow <leader-url>) mirrors the leader's file
// layout in its own -data-dir: the bootstrap snapshot becomes its
// generation-S snapshot, shipped frames are re-applied through the
// storage observer (which appends byte-identical frames to a local
// wal-S), and when the leader seals a segment the follower rotates to
// the same generation number. Its replication position is therefore
// never tracked separately — it IS the store's recovered (segment,
// offset), so a follower restart resumes tailing exactly where the
// crash truncated its log, surviving torn tails the same way leader
// recovery does.
//
// Replication is asynchronous: an acknowledged leader write reaches
// followers on the next poll, and a leader crash that loses an
// un-fsynced WAL tail can leave a follower ahead of the restarted
// leader — the leader detects the impossible position and answers 410,
// and the follower re-bootstraps. Run leaders with -fsync when that
// window matters.
package replication

import "errors"

// ErrReadOnly reports a mutation attempted against a follower. The
// serving layer maps it to HTTP 403: followers apply the leader's log
// and nothing else, so /graph/* and /admin/checkpoint writes belong on
// the leader.
var ErrReadOnly = errors.New("replication: follower is read-only")

// Wire header names. Every /replication/wal response carries the
// leader's live position (leader-seq/off/records) so followers can
// account lag without a second round trip.
const (
	// HdrSeq is the snapshot generation (snapshot responses) or the
	// requested segment (WAL responses).
	HdrSeq = "X-Replication-Seq"
	// HdrFrom echoes the requested byte offset of a WAL read.
	HdrFrom = "X-Replication-From"
	// HdrSegEnd is the requested segment's end offset at serve time.
	HdrSegEnd = "X-Replication-Segment-End"
	// HdrNextSeq, when present, tells the follower the requested
	// segment is sealed and exhausted; tail this generation next.
	HdrNextSeq = "X-Replication-Next-Seq"
	// HdrLeaderSeq / HdrLeaderOff are the leader's active position.
	HdrLeaderSeq = "X-Replication-Leader-Seq"
	HdrLeaderOff = "X-Replication-Leader-Off"
	// HdrLeaderRecords is how many records the leader's active segment
	// holds — with the follower's own in-segment record count, the
	// exact record lag whenever both sit on the same segment.
	HdrLeaderRecords = "X-Replication-Leader-Records"
	// HdrReplicaURL is the follower's advertised base URL, sent on every
	// fetch. The leader remembers recently-seen values so the cluster
	// membership behind GET /cluster/status is learned from replication
	// traffic itself — no static topology file required.
	HdrReplicaURL = "X-Replication-Replica"
)
