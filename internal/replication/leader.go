package replication

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gsqlgo/internal/storage"
)

// Leader serves a store's WAL to followers. It is a pure read-side
// view: it never mutates the store, so it can sit on the same mux as
// the query routes of a live gsqld without extra locking — every read
// goes through the store's own position accounting.
type Leader struct {
	store *storage.Store
	log   *slog.Logger

	// maxWait bounds how long a /replication/wal long-poll parks before
	// answering empty (the client re-polls). Bounded so a leader drain
	// never waits on parked followers longer than this.
	maxWait time.Duration

	nSnapshots atomic.Uint64
	nChunks    atomic.Uint64
	nBytes     atomic.Uint64

	// peers remembers each follower base URL (HdrReplicaURL) with when
	// it last fetched, so cluster status learns membership from the
	// replication traffic itself. Bounded by the number of distinct
	// advertised URLs; stale entries age out of Peers' answers.
	peersMu sync.Mutex
	peers   map[string]time.Time
}

// NewLeader wraps store as a replication leader. logger may be nil.
func NewLeader(store *storage.Store, logger *slog.Logger) *Leader {
	if logger == nil {
		logger = slog.Default()
	}
	return &Leader{store: store, log: logger, maxWait: 30 * time.Second,
		peers: map[string]time.Time{}}
}

// notePeer records a follower's advertised base URL from a fetch.
func (l *Leader) notePeer(r *http.Request) {
	u := r.Header.Get(HdrReplicaURL)
	if u == "" {
		return
	}
	l.peersMu.Lock()
	l.peers[u] = time.Now()
	l.peersMu.Unlock()
}

// Peers returns the base URLs of followers seen within maxAge
// (maxAge <= 0 returns every URL ever seen), sorted for stable output.
func (l *Leader) Peers(maxAge time.Duration) []string {
	cutoff := time.Time{}
	if maxAge > 0 {
		cutoff = time.Now().Add(-maxAge)
	}
	l.peersMu.Lock()
	out := make([]string, 0, len(l.peers))
	for u, seen := range l.peers {
		if cutoff.IsZero() || !seen.Before(cutoff) {
			out = append(out, u)
		}
	}
	l.peersMu.Unlock()
	sort.Strings(out)
	return out
}

// Register mounts the replication routes on mux.
func (l *Leader) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /replication/snapshot", l.handleSnapshot)
	mux.HandleFunc("GET /replication/wal", l.handleWAL)
	mux.HandleFunc("GET /replication/status", l.handleStatus)
}

// setLeaderPosition stamps the leader's live position on every
// response so followers account lag from the data path itself.
func (l *Leader) setLeaderPosition(h http.Header) {
	seq, off := l.store.Position()
	h.Set(HdrLeaderSeq, strconv.FormatUint(seq, 10))
	h.Set(HdrLeaderOff, strconv.FormatInt(off, 10))
	h.Set(HdrLeaderRecords, strconv.FormatUint(l.store.ActiveRecords(), 10))
}

// handleSnapshot serves the newest decodable snapshot generation.
func (l *Leader) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	l.notePeer(r)
	seq, data, err := l.store.BootstrapSnapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	l.nSnapshots.Add(1)
	l.log.Info("replication: snapshot served",
		"seq", seq, "bytes", len(data), "remote", r.RemoteAddr)
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HdrSeq, strconv.FormatUint(seq, 10))
	l.setLeaderPosition(h)
	w.Write(data)
}

// handleWAL serves complete frames of segment ?seq= from byte offset
// ?from=. When the position is caught up it parks up to ?wait_ms=
// (clamped to the leader's bound) for new appends before answering
// empty. A position the store no longer serves — pruned segment,
// offset past the end, bytes that do not frame — is 410 Gone: the
// follower must re-bootstrap.
func (l *Leader) handleWAL(w http.ResponseWriter, r *http.Request) {
	l.notePeer(r)
	q := r.URL.Query()
	seq, err1 := strconv.ParseUint(q.Get("seq"), 10, 64)
	from, err2 := strconv.ParseInt(q.Get("from"), 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "replication: seq and from are required integers", http.StatusBadRequest)
		return
	}
	maxBytes := 0
	if v := q.Get("max_bytes"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			maxBytes = n
		}
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			wait = min(time.Duration(n)*time.Millisecond, l.maxWait)
		}
	}

	deadline := time.Now().Add(wait)
	var chunk storage.WALChunk
	for {
		// Grab the notify channel before reading: an append between the
		// read and the park closes this channel, so the park wakes
		// instead of sleeping through the new frames.
		notify := l.store.WALNotify()
		chunk, err1 = l.store.ReadWALChunk(seq, from, maxBytes)
		if err1 != nil {
			if errors.Is(err1, storage.ErrSegmentGone) {
				l.log.Warn("replication: position gone",
					"seq", seq, "from", from, "remote", r.RemoteAddr, "err", err1)
				http.Error(w, err1.Error(), http.StatusGone)
				return
			}
			http.Error(w, err1.Error(), http.StatusInternalServerError)
			return
		}
		if len(chunk.Data) > 0 || chunk.NextSeq != 0 || wait <= 0 || !time.Now().Before(deadline) {
			break
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-notify:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}

	l.nChunks.Add(1)
	l.nBytes.Add(uint64(len(chunk.Data)))
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HdrSeq, strconv.FormatUint(seq, 10))
	h.Set(HdrFrom, strconv.FormatInt(from, 10))
	h.Set(HdrSegEnd, strconv.FormatInt(chunk.SegEnd, 10))
	if chunk.NextSeq != 0 {
		h.Set(HdrNextSeq, strconv.FormatUint(chunk.NextSeq, 10))
	}
	l.setLeaderPosition(h)
	w.Write(chunk.Data)
}

// handleStatus reports the leader's position as JSON — a cheap probe
// for operators and the CI smoke test (followers use response headers
// on the data path instead).
func (l *Leader) handleStatus(w http.ResponseWriter, r *http.Request) {
	seq, off := l.store.Position()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"seq":%d,"off":%d,"records":%d,"snapshots_served":%d,"chunks_served":%d,"bytes_served":%d}`+"\n",
		seq, off, l.store.ActiveRecords(), l.nSnapshots.Load(), l.nChunks.Load(), l.nBytes.Load())
}
