package replication

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/storage"
	"gsqlgo/internal/value"
)

func testSchema(t testing.TB) *graph.Schema {
	t.Helper()
	s := graph.NewSchema()
	if _, err := s.AddVertexType("Person",
		graph.AttrDef{Name: "name", Type: graph.AttrString},
		graph.AttrDef{Name: "age", Type: graph.AttrInt},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("Knows", true, graph.AttrDef{Name: "since", Type: graph.AttrInt}); err != nil {
		t.Fatal(err)
	}
	return s
}

// leaderHarness is a live leader: a durable store plus an httptest
// server exposing the replication routes, and a writer-lock mimicking
// the serving layer's discipline so tests can mutate while chunks are
// being served.
type leaderHarness struct {
	t     *testing.T
	store *storage.Store
	srv   *httptest.Server
	mu    sync.Mutex
	added int
}

func newLeaderHarness(t *testing.T, opts storage.Options) *leaderHarness {
	t.Helper()
	opts.Init = func() (*graph.Graph, error) { return graph.New(testSchema(t)), nil }
	st, err := storage.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	NewLeader(st, nil).Register(mux)
	srv := httptest.NewServer(mux)
	h := &leaderHarness{t: t, store: st, srv: srv}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return h
}

// addPeople appends n Person vertices (and a Knows edge every third)
// through the leader's observer path.
func (h *leaderHarness) addPeople(n int) {
	h.t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	g := h.store.Graph()
	for i := 0; i < n; i++ {
		id := h.added
		h.added++
		v, err := g.AddVertex("Person", fmt.Sprintf("p%06d", id), map[string]value.Value{
			"name": value.NewString(fmt.Sprintf("Person %d", id)),
			"age":  value.NewInt(int64(20 + id%60)),
		})
		if err != nil {
			h.t.Fatalf("AddVertex %d: %v", id, err)
		}
		if id%3 == 2 {
			if _, err := g.AddEdge("Knows", v-1, v, map[string]value.Value{
				"since": value.NewInt(int64(2000 + id)),
			}); err != nil {
				h.t.Fatalf("AddEdge at %d: %v", id, err)
			}
		}
	}
}

func (h *leaderHarness) checkpoint() {
	h.t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.store.Checkpoint(); err != nil {
		h.t.Fatalf("leader checkpoint: %v", err)
	}
}

func (h *leaderHarness) sig() []byte {
	h.t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	data, err := storage.EncodeSnapshot(h.store.Graph())
	if err != nil {
		h.t.Fatal(err)
	}
	return data
}

func followerConfig(h *leaderHarness, dir string) FollowerConfig {
	return FollowerConfig{
		LeaderURL: h.srv.URL,
		Dir:       dir,
		PollWait:  50 * time.Millisecond,
		Backoff:   5 * time.Millisecond,
	}
}

// runFollower starts fw.Run and returns a stop func that cancels it
// and waits for the loop to exit.
func runFollower(t *testing.T, fw *Follower) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fw.Run(ctx) }()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("follower Run: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Error("follower Run did not stop")
			}
		})
	}
}

// waitCaughtUp polls until the follower's position equals the leader's
// current position (which must be quiescent by then).
func waitCaughtUp(t *testing.T, h *leaderHarness, fw *Follower) {
	t.Helper()
	wantSeq, wantOff := h.store.Position()
	deadline := time.Now().Add(10 * time.Second)
	for {
		seq, off := fw.Position()
		if seq == wantSeq && off == wantOff {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at (%d, %d), leader at (%d, %d)", seq, off, wantSeq, wantOff)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func followerSig(t *testing.T, fw *Follower) []byte {
	t.Helper()
	data, err := storage.EncodeSnapshot(fw.Graph())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFollowerBootstrapAndTail: bootstrap from a non-empty leader,
// tail live appends across a checkpoint rotation, converge to a
// bit-identical graph — and because the follower re-logs what it
// applies, its sealed WAL segment is byte-identical to the leader's.
func TestFollowerBootstrapAndTail(t *testing.T) {
	h := newLeaderHarness(t, storage.Options{Retain: 8})
	h.addPeople(100) // pre-bootstrap history in the WAL, not the snapshot

	dir := t.TempDir()
	fw, err := OpenFollower(context.Background(), followerConfig(h, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	stop := runFollower(t, fw)
	defer stop()

	h.addPeople(150)
	h.checkpoint() // forces a rotation the follower must mirror
	h.addPeople(50)
	waitCaughtUp(t, h, fw)

	if got, want := followerSig(t, fw), h.sig(); !bytes.Equal(got, want) {
		t.Fatal("follower graph signature diverged from leader")
	}
	st := fw.Stats()
	if st.RecordsApplied == 0 || st.BytesApplied == 0 {
		t.Fatalf("stats show no applied work: %+v", st)
	}
	if st.LagRecords != 0 || st.LagBytes != 0 {
		t.Fatalf("caught-up lag gauges nonzero: %+v", st)
	}

	// Byte-identical re-logging: the sealed pre-checkpoint segment must
	// match the leader's file exactly.
	leaderSeq, _ := h.store.Position()
	sealed := leaderSeq - 1
	lb, err := os.ReadFile(filepath.Join(h.store.Dir(), fmt.Sprintf("wal-%08d.wal", sealed)))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("wal-%08d.wal", sealed)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, fb) {
		t.Fatalf("sealed segment %d differs between leader (%d bytes) and follower (%d bytes)",
			sealed, len(lb), len(fb))
	}
}

// TestFollowerRestartResumes: stop a follower mid-history — including
// a simulated crash that tears its active WAL tail — and prove the
// reopened follower resumes from its recovered position instead of
// re-bootstrapping, then converges.
func TestFollowerRestartResumes(t *testing.T) {
	h := newLeaderHarness(t, storage.Options{Retain: 8})
	h.addPeople(120)

	dir := t.TempDir()
	fw, err := OpenFollower(context.Background(), followerConfig(h, dir))
	if err != nil {
		t.Fatal(err)
	}
	stop := runFollower(t, fw)
	waitCaughtUp(t, h, fw)
	stop()
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash simulation: tear the last frame of the follower's active
	// WAL, as a kill mid-append would. Recovery must truncate back to a
	// frame boundary — which is a valid leader position — and tailing
	// must re-fetch exactly the torn-off records.
	seq, off := h.store.Position()
	walPath := filepath.Join(dir, fmt.Sprintf("wal-%08d.wal", seq))
	if err := os.Truncate(walPath, off-3); err != nil {
		t.Fatal(err)
	}

	h.addPeople(80)

	fw2, err := OpenFollower(context.Background(), followerConfig(h, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer fw2.Close()
	if got := fw2.Stats().Bootstraps; got != 0 {
		t.Fatalf("restart bootstrapped %d times, want 0 (resume)", got)
	}
	if rseq, roff := fw2.Position(); rseq != seq || roff >= off {
		t.Fatalf("recovered position (%d, %d), want segment %d below torn offset %d", rseq, roff, seq, off)
	}
	stop2 := runFollower(t, fw2)
	defer stop2()
	waitCaughtUp(t, h, fw2)
	if got, want := followerSig(t, fw2), h.sig(); !bytes.Equal(got, want) {
		t.Fatal("resumed follower diverged from leader")
	}
}

// TestFollowerRebootstrapsWhenPruned: a follower parked far behind a
// leader with default retention finds its segment pruned (410) and
// must re-bootstrap — wiping its store, installing the fresh snapshot,
// swapping the graph (onSwap observes the new store), and converging.
func TestFollowerRebootstrapsWhenPruned(t *testing.T) {
	h := newLeaderHarness(t, storage.Options{}) // default retention: 2
	h.addPeople(40)

	dir := t.TempDir()
	fw, err := OpenFollower(context.Background(), followerConfig(h, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()

	// While the follower is NOT running, age its position out of the
	// leader's retention: each checkpoint rotates, and two rotations
	// later generation 1 is gone.
	for i := 0; i < 4; i++ {
		h.addPeople(25)
		h.checkpoint()
	}
	if _, err := h.store.ReadWALChunk(1, storage.WALHeaderSize, 0); !errors.Is(err, storage.ErrSegmentGone) {
		t.Fatalf("leader still serves generation 1: %v", err)
	}

	var swapped atomic64
	fw.Bind(nil, func(st *storage.Store) { swapped.add(1) }, nil)
	stop := runFollower(t, fw)
	defer stop()
	waitCaughtUp(t, h, fw)

	if got, want := followerSig(t, fw), h.sig(); !bytes.Equal(got, want) {
		t.Fatal("re-bootstrapped follower diverged from leader")
	}
	if got := fw.Stats().Bootstraps; got < 1 {
		t.Fatalf("Bootstraps = %d, want >= 1", got)
	}
	if swapped.load() < 1 {
		t.Fatal("onSwap never observed the store swap")
	}
}

// atomic64 avoids importing sync/atomic just for one counter in tests
// while keeping the callback race-safe.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

// TestFollowerReconnectsAfterLeaderOutage: killing the leader's
// listener mid-tail produces fetch errors, not follower death; when a
// new listener serves the same store, tailing resumes and the
// reconnect counter shows the outage.
func TestFollowerReconnectsAfterLeaderOutage(t *testing.T) {
	h := newLeaderHarness(t, storage.Options{Retain: 8})
	h.addPeople(30)

	fw, err := OpenFollower(context.Background(), followerConfig(h, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	stop := runFollower(t, fw)
	defer stop()
	waitCaughtUp(t, h, fw)

	// Replace the listener at a new address and point a fresh config at
	// it by rebinding through the harness URL swap: simplest is to kill
	// the server, let the follower accumulate reconnects, then restart
	// on the same address.
	addr := h.srv.Listener.Addr().String()
	h.srv.CloseClientConnections()
	h.srv.Close()
	h.addPeople(20)
	deadline := time.Now().Add(5 * time.Second)
	for fw.Stats().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no reconnect attempts recorded during outage")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ln, err := listenOn(addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	mux := http.NewServeMux()
	NewLeader(h.store, nil).Register(mux)
	srv2 := &http.Server{Handler: mux}
	go srv2.Serve(ln)
	t.Cleanup(func() { srv2.Close() })

	waitCaughtUp(t, h, fw)
	if got, want := followerSig(t, fw), h.sig(); !bytes.Equal(got, want) {
		t.Fatal("follower diverged across leader outage")
	}
}

func listenOn(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// TestDecodeFramesRejectsDamage: wire-level validation — whole valid
// chunks decode, anything torn or bit-flipped is ErrBadFrame, and no
// partial result leaks.
func TestDecodeFramesRejectsDamage(t *testing.T) {
	h := newLeaderHarness(t, storage.Options{})
	h.addPeople(10)
	seq, off := h.store.Position()
	chunk, err := h.store.ReadWALChunk(seq, storage.WALHeaderSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(len(chunk.Data)) + storage.WALHeaderSize; got != off {
		t.Fatalf("chunk covers %d bytes, leader watermark %d", got, off)
	}
	payloads, err := DecodeFrames(chunk.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) == 0 {
		t.Fatal("no frames decoded from a populated chunk")
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"torn tail":    func(b []byte) []byte { return b[:len(b)-3] },
		"flipped byte": func(b []byte) []byte { b[len(b)/2] ^= 0x08; return b },
		"leading junk": func(b []byte) []byte { return append([]byte{0xFF, 0xEE}, b...) },
	} {
		data := mutate(append([]byte(nil), chunk.Data...))
		if got, err := DecodeFrames(data); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: got %d payloads, err %v; want ErrBadFrame", name, len(got), err)
		}
	}
	if got, err := DecodeFrames(nil); err != nil || got != nil {
		t.Errorf("empty chunk: got %v, %v; want nil, nil", got, err)
	}
}
