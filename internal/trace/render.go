package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Render writes an EXPLAIN ANALYZE-style text tree for a finished
// span: one line per span with its duration and attributes, children
// indented under their parent in attach (execution) order.
//
//	run  (actual time=1.234ms)  query=FriendReach semantics=nre
//	├─ parse  (actual time=0.002ms)  cached=true
//	└─ select  (actual time=1.101ms)
//	   ├─ hop  (actual time=0.950ms)  darpe=Knows*1..3 kind=counted ...
//	   ...
func Render(w io.Writer, s *Span) {
	if s == nil {
		fmt.Fprintln(w, "(no trace)")
		return
	}
	renderSpan(w, s, "", "")
}

func renderSpan(w io.Writer, s *Span, prefix, childPrefix string) {
	var b strings.Builder
	b.WriteString(prefix)
	b.WriteString(s.Name())
	fmt.Fprintf(&b, "  (actual time=%s)", fmtDur(s.Duration()))
	for _, a := range s.Attrs() {
		fmt.Fprintf(&b, "  %s=%v", a.Key, a.Val)
	}
	fmt.Fprintln(w, b.String())
	children := s.Children()
	for i, c := range children {
		if i == len(children)-1 {
			renderSpan(w, c, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			renderSpan(w, c, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// fmtDur renders a duration in milliseconds with microsecond
// precision, the EXPLAIN ANALYZE convention.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}

// RenderJSON writes the same text tree for a decoded wire-form span —
// what a client (gsqlbench's -trace-sample report) renders after
// fetching a trace from a server's /debug/traces. Attributes print in
// sorted key order, since the wire form's map has no attach order.
func RenderJSON(w io.Writer, j *SpanJSON) {
	if j == nil {
		fmt.Fprintln(w, "(no trace)")
		return
	}
	renderSpanJSON(w, j, "", "")
}

func renderSpanJSON(w io.Writer, j *SpanJSON, prefix, childPrefix string) {
	var b strings.Builder
	b.WriteString(prefix)
	b.WriteString(j.Name)
	fmt.Fprintf(&b, "  (actual time=%s)", fmtDur(time.Duration(j.DurationUS)*time.Microsecond))
	keys := make([]string, 0, len(j.Attrs))
	for k := range j.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s=%v", k, j.Attrs[k])
	}
	fmt.Fprintln(w, b.String())
	for i, c := range j.Children {
		if i == len(j.Children)-1 {
			renderSpanJSON(w, c, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			renderSpanJSON(w, c, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}
