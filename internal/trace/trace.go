// Package trace is a dependency-free per-run span tracer for the
// engine and the serving layer: a Span is a named, timed tree node
// with key/value attributes, built cooperatively by the code paths a
// run flows through (parse, DFA compile, pattern hops, SDMC kernel
// invocations, accumulator phases, storage ops).
//
// The design point is near-zero cost when tracing is off: every method
// is nil-receiver-safe, so call sites hold a possibly-nil *Span and
// pay one predictable branch per phase boundary — no allocation, no
// interface boxing, no time.Now. Tracing is opt-in per run: callers
// build a root with New, thread it through a context with NewContext,
// and the engine picks it up with FromContext; a context without a
// span traces nothing.
//
// Spans are written by the goroutine that starts them; attaching a
// child to its parent and setting attributes are the only
// cross-goroutine operations (parallel SDMC workers attach kernel
// spans to one hop span) and are mutex-guarded. Reading (JSON, Render,
// Find) is meant for finished spans.
package trace

import (
	"sync"
	"time"
)

// Attr is one key/value attribute on a span. Values are the small set
// JSON handles natively (string, int64, bool, float64).
type Attr struct {
	Key string
	Val any
}

// Span is one timed node of a trace tree.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	duration time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// New starts a root span. The caller owns it: End it when the traced
// operation completes, then render, marshal or ring-buffer it.
func New(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Start begins a child span. On a nil receiver it returns nil, so an
// untraced run threads nil spans through every call site for free.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End fixes the span's duration. The first End wins; a second call
// (e.g. a deferred End after an explicit one on the happy path) is a
// no-op, so error traces keep the duration observed at failure time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.duration = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetStr records a string attribute.
func (s *Span) SetStr(key, val string) {
	if s == nil {
		return
	}
	s.setAttr(key, val)
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, val int64) {
	if s == nil {
		return
	}
	s.setAttr(key, val)
}

// SetBool records a boolean attribute.
func (s *Span) SetBool(key string, val bool) {
	if s == nil {
		return
	}
	s.setAttr(key, val)
}

// SetFloat records a float attribute.
func (s *Span) SetFloat(key string, val float64) {
	if s == nil {
		return
	}
	s.setAttr(key, val)
}

func (s *Span) setAttr(key string, val any) {
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's fixed duration (0 before End or on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duration
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the value of the named attribute (nil, false if unset).
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return nil, false
}

// Children returns a copy of the span's child list, in attach order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first span named name in a depth-first walk of the
// tree rooted at s (including s itself), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// FindAll returns every span named name in depth-first order.
func (s *Span) FindAll(name string) []*Span {
	if s == nil {
		return nil
	}
	var out []*Span
	if s.name == name {
		out = append(out, s)
	}
	for _, c := range s.Children() {
		out = append(out, c.FindAll(name)...)
	}
	return out
}

// StageTotals aggregates durations by span name over the whole tree
// below (and including) s — the per-stage breakdown the slow-query log
// records. A name occurring many times (hop, sdmc) sums.
func (s *Span) StageTotals() map[string]time.Duration {
	out := map[string]time.Duration{}
	s.stageInto(out)
	return out
}

func (s *Span) stageInto(out map[string]time.Duration) {
	if s == nil {
		return
	}
	out[s.Name()] += s.Duration()
	for _, c := range s.Children() {
		c.stageInto(out)
	}
}
