package trace

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying s as the run's trace root. Passing a
// nil span returns ctx unchanged, so callers can thread an optional
// trace without branching.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the trace root carried by ctx, or nil. The
// engine calls this once per run; nil means the run is untraced and
// every span operation degrades to a pointer test.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
