package trace

import "sync"

// Ring is a bounded, concurrency-safe buffer of recent trace roots.
// The serving layer keeps one and exposes it at /debug/traces; when
// full, the oldest trace is overwritten.
type Ring struct {
	mu   sync.Mutex
	buf  []*Span
	next int
	n    uint64
}

// NewRing returns a ring holding at most capacity traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]*Span, capacity)}
}

// Add records a finished trace (nil spans are ignored).
func (r *Ring) Add(s *Span) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.n++
	r.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (r *Ring) Snapshot() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Span, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		s := r.buf[(r.next-i+len(r.buf))%len(r.buf)]
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Len reports how many traces are currently retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.buf {
		if s != nil {
			n++
		}
	}
	return n
}

// Total reports how many traces have ever been added.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
