package trace

import (
	"encoding/json"
	"sort"
	"time"
)

// SpanJSON is the wire form of a span tree. Attribute maps marshal
// with sorted keys (encoding/json's map behaviour), so the schema is
// deterministic given deterministic values; StartUS is the offset from
// the parent span's start (0 for the root), which keeps traces
// self-contained without leaking wall-clock times.
type SpanJSON struct {
	Name       string         `json:"name"`
	StartUS    int64          `json:"start_us"`
	DurationUS int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanJSON    `json:"children,omitempty"`
}

// JSON converts the span tree to its wire form.
func (s *Span) JSON() *SpanJSON {
	if s == nil {
		return nil
	}
	return s.jsonFrom(s.start)
}

func (s *Span) jsonFrom(parentStart time.Time) *SpanJSON {
	s.mu.Lock()
	out := &SpanJSON{
		Name:       s.name,
		StartUS:    s.start.Sub(parentStart).Microseconds(),
		DurationUS: s.duration.Microseconds(),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Val
		}
	}
	children := s.children
	start := s.start
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.jsonFrom(start))
	}
	return out
}

// MarshalJSON lets a *Span drop straight into a JSON response.
func (s *Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.JSON())
}

// ZeroTimes recursively clears StartUS and DurationUS, leaving only
// structure and attributes — what golden tests compare, since real
// timings are never reproducible.
func (j *SpanJSON) ZeroTimes() {
	if j == nil {
		return
	}
	j.StartUS, j.DurationUS = 0, 0
	for _, c := range j.Children {
		c.ZeroTimes()
	}
}

// SortChildren orders each child list by name (stable), for tests that
// assert on trees built by parallel workers where attach order races.
func (j *SpanJSON) SortChildren() {
	if j == nil {
		return
	}
	sort.SliceStable(j.Children, func(a, b int) bool { return j.Children[a].Name < j.Children[b].Name })
	for _, c := range j.Children {
		c.SortChildren()
	}
}
