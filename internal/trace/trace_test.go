package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilReceiverSafety pins the package's core contract: every method
// on a nil *Span (and nil *Ring) is a no-op, so untraced runs thread
// nil through every call site without branching.
func TestNilReceiverSafety(t *testing.T) {
	var s *Span
	if c := s.Start("child"); c != nil {
		t.Fatalf("nil.Start returned %v, want nil", c)
	}
	s.End()
	s.SetStr("k", "v")
	s.SetInt("k", 1)
	s.SetBool("k", true)
	s.SetFloat("k", 1.5)
	if s.Name() != "" || s.Duration() != 0 || s.Attrs() != nil || s.Children() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	if _, ok := s.Attr("k"); ok {
		t.Fatal("nil.Attr must report unset")
	}
	if s.Find("x") != nil || s.FindAll("x") != nil || s.JSON() != nil {
		t.Fatal("nil span walkers must return nil")
	}
	var r *Ring
	r.Add(New("x"))
	if r.Snapshot() != nil || r.Len() != 0 || r.Total() != 0 {
		t.Fatal("nil ring must behave as empty")
	}
}

// TestNilContextRoundTrip: NewContext with a nil span returns ctx
// unchanged, and FromContext on a bare context yields nil.
func TestNilContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := NewContext(ctx, nil); got != ctx {
		t.Fatal("NewContext(ctx, nil) must return ctx unchanged")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on a bare context must be nil")
	}
	root := New("r")
	if FromContext(NewContext(ctx, root)) != root {
		t.Fatal("FromContext must return the span NewContext stored")
	}
}

// TestEndFirstWins: a second End (the deferred one after an explicit
// happy-path End) must not overwrite the first duration.
func TestEndFirstWins(t *testing.T) {
	s := New("op")
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatalf("second End changed duration: %v -> %v", d, s.Duration())
	}
}

// TestAttrDedupe: setting a key twice overwrites in place instead of
// growing the list.
func TestAttrDedupe(t *testing.T) {
	s := New("op")
	s.SetInt("rows", 1)
	s.SetInt("rows", 2)
	s.SetStr("kind", "counted")
	if got := s.Attrs(); len(got) != 2 {
		t.Fatalf("want 2 attrs after overwrite, got %v", got)
	}
	if v, ok := s.Attr("rows"); !ok || v.(int64) != 2 {
		t.Fatalf("rows = %v, want 2", v)
	}
}

func buildTree() *Span {
	root := New("query")
	root.SetStr("query", "Q")
	p := root.Start("parse")
	p.SetBool("cached", true)
	p.End()
	sel := root.Start("select")
	h1 := sel.Start("hop")
	h1.SetStr("kind", "adjacency")
	h1.SetInt("rows_out", 4)
	h1.End()
	h2 := sel.Start("hop")
	h2.SetStr("kind", "counted")
	d := h2.Start("dfa")
	d.SetBool("cached", false)
	d.End()
	h2.End()
	sel.End()
	root.End()
	return root
}

// TestFindAndStageTotals exercises the tree walkers the server's
// slow-query log and the e2e assertions rely on.
func TestFindAndStageTotals(t *testing.T) {
	root := buildTree()
	if root.Find("dfa") == nil {
		t.Fatal("Find missed a nested span")
	}
	if got := len(root.FindAll("hop")); got != 2 {
		t.Fatalf("FindAll(hop) = %d, want 2", got)
	}
	totals := root.StageTotals()
	for _, name := range []string{"query", "parse", "select", "hop", "dfa"} {
		if _, ok := totals[name]; !ok {
			t.Fatalf("StageTotals missing %q: %v", name, totals)
		}
	}
	// The two hop spans must aggregate under one key.
	if len(totals) != 5 {
		t.Fatalf("StageTotals has %d entries, want 5: %v", len(totals), totals)
	}
}

// TestJSONGolden pins the trace wire schema: structure, attr types and
// key names are exactly what /debug/traces and ?trace=1 serve. Times
// are zeroed (never reproducible); everything else must match byte for
// byte.
func TestJSONGolden(t *testing.T) {
	j := buildTree().JSON()
	j.ZeroTimes()
	got, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"name":"query","start_us":0,"duration_us":0,` +
		`"attrs":{"query":"Q"},"children":[` +
		`{"name":"parse","start_us":0,"duration_us":0,"attrs":{"cached":true}},` +
		`{"name":"select","start_us":0,"duration_us":0,"children":[` +
		`{"name":"hop","start_us":0,"duration_us":0,"attrs":{"kind":"adjacency","rows_out":4}},` +
		`{"name":"hop","start_us":0,"duration_us":0,"attrs":{"kind":"counted"},"children":[` +
		`{"name":"dfa","start_us":0,"duration_us":0,"attrs":{"cached":false}}]}]}]}`
	if string(got) != want {
		t.Fatalf("trace JSON schema drifted\n got: %s\nwant: %s", got, want)
	}
}

// TestRenderGolden pins the EXPLAIN ANALYZE text shape (times zeroed
// through the JSON round trip is not possible for Render, so this
// builds spans whose durations are never set — End is skipped — and
// asserts the full tree with 0.000ms everywhere).
func TestRenderGolden(t *testing.T) {
	root := New("query")
	root.SetStr("query", "Q")
	root.Start("parse").SetBool("cached", true)
	sel := root.Start("select")
	sel.Start("hop").SetStr("kind", "adjacency")
	sel.Start("accum").SetInt("rows", 7)
	var b strings.Builder
	Render(&b, root)
	const want = "query  (actual time=0.000ms)  query=Q\n" +
		"├─ parse  (actual time=0.000ms)  cached=true\n" +
		"└─ select  (actual time=0.000ms)\n" +
		"   ├─ hop  (actual time=0.000ms)  kind=adjacency\n" +
		"   └─ accum  (actual time=0.000ms)  rows=7\n"
	if b.String() != want {
		t.Fatalf("render drifted\n got:\n%s\nwant:\n%s", b.String(), want)
	}
	b.Reset()
	Render(&b, nil)
	if b.String() != "(no trace)\n" {
		t.Fatalf("nil render = %q", b.String())
	}
}

// TestRingEviction: the ring retains the newest traces, newest first,
// and counts every add.
func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	names := []string{"a", "b", "c", "d", "e"}
	for _, n := range names {
		r.Add(New(n))
	}
	r.Add(nil) // ignored
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("Len=%d Total=%d, want 3/5", r.Len(), r.Total())
	}
	snap := r.Snapshot()
	got := make([]string, len(snap))
	for i, s := range snap {
		got[i] = s.Name()
	}
	want := []string{"e", "d", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", got, want)
		}
	}
}

// TestConcurrentChildrenAndAttrs hammers the two cross-goroutine
// operations (child attach, attr set) the parallel SDMC workers
// perform, plus a concurrent JSON read — meaningful under -race.
func TestConcurrentChildrenAndAttrs(t *testing.T) {
	root := New("hop")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Start("sdmc")
				c.SetInt("src", int64(w*50+i))
				c.End()
				root.SetInt("last", int64(i))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := json.Marshal(root); err != nil {
				t.Errorf("marshal during writes: %v", err)
			}
		}
	}()
	wg.Wait()
	root.End()
	if got := len(root.FindAll("sdmc")); got != 400 {
		t.Fatalf("lost children: %d/400", got)
	}
}
