package trace

import (
	"crypto/rand"
	"encoding/hex"
)

// Trace ids stitch one logical request across processes: a client (a
// load generator, a proxy, another gsqld) mints an id, sends it as the
// X-Trace-Id header, and every server hop stamps it on its root span,
// slow-query record and structured logs — so the span tree that served
// a request can be fetched later by the id the client still holds
// (GET /debug/traces?trace_id=). The format follows the W3C
// traceparent trace-id field: 16 random bytes as 32 lowercase hex
// characters.

// IDLen is the canonical rendered length of a minted trace id.
const IDLen = 32

// NewID mints a fresh random trace id.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; correlation degrades
		// to "no id" rather than taking the caller down.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// ValidID reports whether s is acceptable as a caller-supplied trace
// id: 1–64 characters of hex digits or dashes. Anything else is
// dropped (not escaped) — ids travel into logs and JSON verbatim, so
// the grammar is deliberately tight.
func ValidID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F', c == '-':
		default:
			return false
		}
	}
	return true
}
