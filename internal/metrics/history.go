package metrics

import (
	"sync"
	"time"
)

// History samples a Registry on a fixed interval into a bounded ring
// of timestamped Point snapshots — enough recent state to answer "what
// was QPS and p99 over the last N seconds" without an external TSDB.
//
// The sampler is a single background goroutine; the serving hot path
// never touches it, so the disabled-path overhead is exactly zero and
// the enabled-path overhead is one Gather per interval. The ring is
// bounded (capacity * one Gather's worth of points), so memory is flat
// regardless of uptime.
type History struct {
	reg      *Registry
	interval time.Duration

	// PreSample, when set before Start, runs before every Gather — the
	// serving layer uses it to fold externally-owned counters (storage,
	// replication, MVCC) into the registry so samples see fresh values,
	// exactly as a /metrics scrape would.
	PreSample func()

	mu   sync.Mutex
	buf  []*Sample // ring storage, len == cap once full
	next int       // ring write cursor
	size int       // ring capacity
	n    int       // samples currently retained (<= size)

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// Sample is one timestamped snapshot of every series.
type Sample struct {
	At     time.Time `json:"at"`
	Points []Point   `json:"points"`
}

// DefHistorySamples is the default ring capacity: ten minutes at the
// default one-second interval.
const DefHistorySamples = 600

// NewHistory builds a sampler over reg. interval <= 0 defaults to one
// second; capacity <= 0 defaults to DefHistorySamples. The sampler is
// inert until Start.
func NewHistory(reg *Registry, interval time.Duration, capacity int) *History {
	if interval <= 0 {
		interval = time.Second
	}
	if capacity <= 0 {
		capacity = DefHistorySamples
	}
	return &History{
		reg:      reg,
		interval: interval,
		size:     capacity,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval reports the sampling interval.
func (h *History) Interval() time.Duration { return h.interval }

// Start launches the sampling goroutine (idempotent). One sample is
// taken immediately so rate windows open as soon as the second tick
// lands, not after two full intervals.
func (h *History) Start() {
	h.startOnce.Do(func() {
		h.SampleNow()
		go h.run()
	})
}

// Stop halts the sampler and waits for the goroutine to exit
// (idempotent; safe even if Start was never called).
func (h *History) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.startOnce.Do(func() { close(h.done) }) // never started: unblock the wait
	<-h.done
}

func (h *History) run() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.SampleNow()
		}
	}
}

// SampleNow takes one snapshot immediately — the ticker body, exported
// so tests drive the ring without real time.
func (h *History) SampleNow() {
	if h.PreSample != nil {
		h.PreSample()
	}
	s := &Sample{At: time.Now(), Points: h.reg.Gather()}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.buf) < h.size {
		h.buf = append(h.buf, s)
		h.n = len(h.buf)
		h.next = h.n % h.size
		return
	}
	h.buf[h.next] = s
	h.next = (h.next + 1) % h.size
}

// Snapshot returns retained samples oldest-first, restricted to those
// within window of the newest sample (window <= 0 returns everything
// retained).
func (h *History) Snapshot(window time.Duration) []*Sample {
	h.mu.Lock()
	out := make([]*Sample, 0, h.n)
	if h.n == len(h.buf) && h.n == h.size {
		out = append(out, h.buf[h.next:]...)
		out = append(out, h.buf[:h.next]...)
	} else {
		out = append(out, h.buf[:h.n]...)
	}
	h.mu.Unlock()
	if window <= 0 || len(out) == 0 {
		return out
	}
	cutoff := out[len(out)-1].At.Add(-window)
	lo := 0
	for lo < len(out)-1 && out[lo].At.Before(cutoff) {
		lo++
	}
	return out[lo:]
}

// SeriesRate summarises one series over a window: last value for
// gauges; delta and per-second rate for counters; observation count,
// rate and window-local quantiles for histograms.
type SeriesRate struct {
	Kind      string  `json:"kind"`
	Last      float64 `json:"last"`
	Delta     float64 `json:"delta,omitempty"`
	PerSecond float64 `json:"per_second,omitempty"`

	// Histograms only: observations within the window.
	Count uint64  `json:"count,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// RatesOver computes per-series rates between the first and last of a
// sample run (as returned by Snapshot): counter deltas and per-second
// rates, gauge last-values, histogram window-quantiles from bucket
// deltas. Returns the window span in seconds and a map keyed by
// Point.Key(). Fewer than two samples yields last-values with zero
// rates over a zero-second window.
func RatesOver(samples []*Sample) (windowSeconds float64, out map[string]SeriesRate) {
	out = map[string]SeriesRate{}
	if len(samples) == 0 {
		return 0, out
	}
	first, last := samples[0], samples[len(samples)-1]
	windowSeconds = last.At.Sub(first.At).Seconds()
	base := map[string]Point{}
	if len(samples) > 1 {
		for _, p := range first.Points {
			base[p.Key()] = p
		}
	}
	for _, p := range last.Points {
		sr := SeriesRate{Kind: p.Kind}
		b, haveBase := base[p.Key()] // zero Point when created mid-window
		switch p.Kind {
		case "gauge":
			sr.Last = p.Value
		case "counter":
			sr.Last = p.Value
			sr.Delta = p.Value - b.Value
			if sr.Delta < 0 {
				// Counter reset (restart, store swap): the lifetime since
				// reset is the only delta we can still attribute.
				sr.Delta = p.Value
			}
			if windowSeconds > 0 {
				sr.PerSecond = sr.Delta / windowSeconds
			}
		case "histogram":
			sr.Last = float64(p.Count)
			deltas := make([]uint64, len(p.Buckets))
			reset := haveBase && b.Count > p.Count
			for i, c := range p.Buckets {
				var prev uint64
				if haveBase && !reset && i < len(b.Buckets) {
					prev = b.Buckets[i]
				}
				if c >= prev {
					deltas[i] = c - prev
				}
			}
			for _, d := range deltas {
				sr.Count += d
			}
			if windowSeconds > 0 {
				sr.PerSecond = float64(sr.Count) / windowSeconds
			}
			sr.P50 = QuantileFromBuckets(p.Bounds, deltas, 0.5)
			sr.P90 = QuantileFromBuckets(p.Bounds, deltas, 0.9)
			sr.P99 = QuantileFromBuckets(p.Bounds, deltas, 0.99)
		}
		out[p.Key()] = sr
	}
	return windowSeconds, out
}
