package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("inflight", "in flight")
	g.Set(3)
	g.Dec()
	g.Inc()
	g.Add(-2)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	// Re-registering the same name returns the same series.
	if r.Counter("reqs_total", "requests").Value() != 5 {
		t.Fatal("re-registration did not return the existing counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.1, 1, 10})
	for _, x := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 55.65; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Upper-inclusive cumulative buckets: 0.05 and 0.1 ≤ 0.1; 0.5 ≤ 1;
	// 5 ≤ 10; 50 only in +Inf.
	for _, want := range []string{
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 55.65`,
		`lat_count 5`,
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("runs_total", "per-query runs", "query", "status")
	v.With("pagerank", "ok").Add(2)
	v.With("pagerank", "error").Inc()
	v.With("pagerank", "ok").Inc() // same series
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `runs_total{query="pagerank",status="ok"} 3`) {
		t.Errorf("missing ok series:\n%s", out)
	}
	if !strings.Contains(out, `runs_total{query="pagerank",status="error"} 1`) {
		t.Errorf("missing error series:\n%s", out)
	}
	snap := r.Snapshot()
	if snap["runs_total{query=pagerank,status=ok}"] != uint64(3) {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c", "", "q").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `c{q="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping: %s", sb.String())
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("lat", "", []float64{1, 2, 3}, "q")
	c := r.CounterVec("n", "", "q")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := []string{"a", "b"}[w%2]
			for i := 0; i < 1000; i++ {
				h.With(q).Observe(float64(i % 5))
				c.With(q).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := h.With("a").Count() + h.With("b").Count(); got != 8000 {
		t.Fatalf("observations = %d, want 8000", got)
	}
	if got := c.With("a").Value() + c.With("b").Value(); got != 8000 {
		t.Fatalf("counts = %d, want 8000", got)
	}
}
