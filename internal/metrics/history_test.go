package metrics

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{1, 2, 3}
	cases := []struct {
		name    string
		buckets []uint64 // per-bucket, +Inf last
		q       float64
		want    float64
	}{
		{"empty", []uint64{0, 0, 0, 0}, 0.5, 0},
		{"median-interpolates", []uint64{1, 1, 1, 0}, 0.5, 1.5},
		{"all-first-bucket", []uint64{4, 0, 0, 0}, 0.99, 0.99},
		{"inf-bucket-clamps", []uint64{0, 0, 0, 5}, 0.5, 3},
		{"p0-still-finds-a-bucket", []uint64{2, 2, 0, 0}, 0, 0.5},
		{"p100-top-of-range", []uint64{2, 2, 0, 0}, 1, 2},
	}
	for _, c := range cases {
		if got := QuantileFromBuckets(bounds, c.buckets, c.q); got != c.want {
			t.Errorf("%s: QuantileFromBuckets(q=%g) = %g, want %g", c.name, c.q, got, c.want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.01, 0.1, 1})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // third bucket
	}
	if p50 := h.Quantile(0.5); p50 >= 0.01 {
		t.Errorf("p50 = %g, want inside first bucket (< 0.01)", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Errorf("p99 = %g, want inside (0.1, 1]", p99)
	}
}

// TestQuantileExposition: every histogram family is followed by a
// derived <name>_quantile gauge family with q labels, alongside the
// regular cumulative buckets.
func TestQuantileExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("lat_seconds", "help", []float64{0.1, 1}, "query")
	hv.With("Q1").Observe(0.05)
	hv.With("Q1").Observe(0.05)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds_quantile gauge",
		`lat_seconds_quantile{query="Q1",q="0.5"} `,
		`lat_seconds_quantile{query="Q1",q="0.9"} `,
		`lat_seconds_quantile{query="Q1",q="0.99"} `,
		`lat_seconds_bucket{query="Q1",le="0.1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGather(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	r.GaugeVec("g", "", "role").With("leader").Set(-3)
	h := r.Histogram("h_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)

	pts := r.Gather()
	byKey := map[string]Point{}
	for _, p := range pts {
		byKey[p.Key()] = p
	}
	if p := byKey["c_total"]; p.Kind != "counter" || p.Value != 7 {
		t.Errorf("counter point = %+v", p)
	}
	if p := byKey[`g{role="leader"}`]; p.Kind != "gauge" || p.Value != -3 {
		t.Errorf("gauge point = %+v", p)
	}
	p := byKey["h_seconds"]
	if p.Kind != "histogram" || p.Count != 2 || p.Sum != 5.5 {
		t.Errorf("histogram point = %+v", p)
	}
	if len(p.Buckets) != 3 || p.Buckets[0] != 1 || p.Buckets[2] != 1 {
		t.Errorf("histogram buckets = %v, want [1 0 1]", p.Buckets)
	}
}

// TestHistoryRing: the ring stays bounded and Snapshot returns
// oldest-first.
func TestHistoryRing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ticks_total", "")
	h := NewHistory(r, time.Hour, 4)
	for i := 0; i < 7; i++ {
		c.Inc()
		h.SampleNow()
	}
	got := h.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("retained %d samples, want 4", len(got))
	}
	for i, s := range got {
		// Sample k saw counter value k+1; the last 4 of 7 are 4..7.
		if want := float64(i + 4); s.Points[0].Value != want {
			t.Errorf("sample %d counter = %g, want %g", i, s.Points[0].Value, want)
		}
		if i > 0 && s.At.Before(got[i-1].At) {
			t.Errorf("samples out of order at %d", i)
		}
	}
}

func TestRatesOver(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total", "")
	g := r.Gauge("inflight", "")
	h := r.Histogram("lat", "", []float64{1, 2, 3})
	hist := NewHistory(r, time.Hour, 16)

	c.Add(10)
	g.Set(2)
	h.Observe(0.5)
	hist.SampleNow()
	time.Sleep(10 * time.Millisecond) // real window > 0
	c.Add(30)
	g.Set(5)
	h.Observe(2.5)
	h.Observe(2.5)
	hist.SampleNow()

	win, rates := RatesOver(hist.Snapshot(0))
	if win <= 0 {
		t.Fatalf("window = %g, want > 0", win)
	}
	cr := rates["runs_total"]
	if cr.Delta != 30 || cr.Last != 40 {
		t.Errorf("counter rate = %+v, want delta 30 last 40", cr)
	}
	if cr.PerSecond <= 0 {
		t.Errorf("counter per-second = %g, want > 0", cr.PerSecond)
	}
	if gr := rates["inflight"]; gr.Last != 5 {
		t.Errorf("gauge last = %g, want 5", gr.Last)
	}
	hr := rates["lat"]
	if hr.Count != 2 {
		t.Errorf("histogram window count = %d, want 2 (the 0.5 obs predates the window)", hr.Count)
	}
	// Both window observations landed in (2,3]; quantiles interpolate
	// inside that bucket only.
	if hr.P50 <= 2 || hr.P50 > 3 || hr.P99 <= 2 || hr.P99 > 3 {
		t.Errorf("histogram window quantiles = p50 %g p99 %g, want inside (2,3]", hr.P50, hr.P99)
	}
}

func TestRatesOverCounterReset(t *testing.T) {
	first := &Sample{At: time.Unix(100, 0), Points: []Point{{Name: "c", Kind: "counter", Value: 50}}}
	last := &Sample{At: time.Unix(110, 0), Points: []Point{{Name: "c", Kind: "counter", Value: 8}}}
	_, rates := RatesOver([]*Sample{first, last})
	if d := rates["c"].Delta; d != 8 {
		t.Errorf("reset delta = %g, want 8 (the lifetime since reset)", d)
	}
}

func TestHistoryStopIdempotent(t *testing.T) {
	h := NewHistory(NewRegistry(), time.Millisecond, 8)
	h.Stop() // never started: must not hang
	h.Stop()
	h2 := NewHistory(NewRegistry(), time.Millisecond, 8)
	h2.Start()
	h2.Start() // idempotent
	h2.Stop()
	h2.Stop()
}

// TestHistoryConcurrency hammers one registry from every direction the
// server does — the sampler goroutine, Prometheus scrapes, label-series
// creation on the hot path, snapshot/rate readers — under -race.
func TestHistoryConcurrency(t *testing.T) {
	r := NewRegistry()
	runs := r.CounterVec("runs_total", "", "query", "status")
	lat := r.HistogramVec("lat_seconds", "", []float64{0.001, 0.01, 0.1}, "query")
	hist := NewHistory(r, time.Millisecond, 32)
	hist.PreSample = func() { r.Gauge("synced", "").Inc() }
	hist.Start()
	defer hist.Stop()

	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := fmt.Sprintf("q%d", (w*13+i)%5) // churn label series
				runs.With(q, "ok").Inc()
				lat.With(q).Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	wg.Add(2)
	go func() { // scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.WritePrometheus(io.Discard)
		}
	}()
	go func() { // history reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			RatesOver(hist.Snapshot(50 * time.Millisecond))
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	hist.SampleNow()
	if got := hist.Snapshot(0); len(got) == 0 {
		t.Fatal("no samples retained")
	}
}
