package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestParallelLabelSeries hammers one CounterVec from many goroutines
// that race to create and increment overlapping label series — the
// exact access pattern gsqld's per-query counters see under concurrent
// traffic. Exact totals prove no increment was lost to a series being
// created twice; run under -race this also proves the family lock
// covers creation. Concurrent WritePrometheus calls exercise the
// snapshot path against live writers.
func TestParallelLabelSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("runs_total", "test", "query", "status")
	h := r.HistogramVec("lat", "test", []float64{0.1, 1}, "query")
	const (
		goroutines = 16
		perG       = 200
		queries    = 5
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := fmt.Sprintf("q%d", i%queries)
				v.With(q, "ok").Inc()
				h.With(q).Observe(0.5)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus during writes: %v", err)
			}
		}
	}()
	wg.Wait()
	perSeries := uint64(goroutines * perG / queries)
	for q := 0; q < queries; q++ {
		name := fmt.Sprintf("q%d", q)
		if got := v.With(name, "ok").Value(); got != perSeries {
			t.Errorf("series %s: %d increments, want %d", name, got, perSeries)
		}
		if got := h.With(name).Count(); got != perSeries {
			t.Errorf("histogram %s: %d observations, want %d", name, got, perSeries)
		}
	}
}

// TestPrometheusExpositionGolden pins the full text-format output:
// families in registration order, series in creation order, HELP/TYPE
// headers, label quoting, histogram buckets cumulative with le="+Inf",
// _sum and _count. The metrics endpoints gsqld exposes promise exactly
// this shape.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gsqld_walrecords_total", "WAL records appended.")
	c.Add(3)
	g := r.GaugeVec("gsqld_build_info", "Build metadata.", "go_version", "commit")
	g.With("go1.24", "abc123").Set(1)
	v := r.CounterVec("gsqld_runs_total", "Runs by query.", "query", "status")
	v.With("TopK", "ok").Add(2)
	v.With("TopK", "error").Inc()
	v.With("Reach", "ok").Inc()
	h := r.Histogram("gsqld_latency_seconds", "Latency.", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(10)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP gsqld_walrecords_total WAL records appended.
# TYPE gsqld_walrecords_total counter
gsqld_walrecords_total 3
# HELP gsqld_build_info Build metadata.
# TYPE gsqld_build_info gauge
gsqld_build_info{go_version="go1.24",commit="abc123"} 1
# HELP gsqld_runs_total Runs by query.
# TYPE gsqld_runs_total counter
gsqld_runs_total{query="TopK",status="ok"} 2
gsqld_runs_total{query="TopK",status="error"} 1
gsqld_runs_total{query="Reach",status="ok"} 1
# HELP gsqld_latency_seconds Latency.
# TYPE gsqld_latency_seconds histogram
gsqld_latency_seconds_bucket{le="0.5"} 1
gsqld_latency_seconds_bucket{le="2"} 2
gsqld_latency_seconds_bucket{le="+Inf"} 3
gsqld_latency_seconds_sum 11.1
gsqld_latency_seconds_count 3
# TYPE gsqld_latency_seconds_quantile gauge
gsqld_latency_seconds_quantile{q="0.5"} 1.25
gsqld_latency_seconds_quantile{q="0.9"} 2
gsqld_latency_seconds_quantile{q="0.99"} 2
`
	if sb.String() != want {
		t.Fatalf("exposition drifted\n got:\n%s\nwant:\n%s", sb.String(), want)
	}
}
