// Package metrics is a dependency-free metrics registry for the
// serving layer: counters, gauges and fixed-bucket histograms —
// optionally labeled — with two export surfaces: the Prometheus text
// exposition format (GET /metrics) and expvar JSON (GET /debug/vars).
//
// The implementation is deliberately small (the container image bakes
// in no third-party modules): lock-free atomic hot paths, a mutex only
// on series creation, exposition order fixed by registration order so
// scrapes are deterministic.
package metrics

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefLatencyBuckets are the default latency histogram bounds, in
// seconds (upper-inclusive, Prometheus "le" convention).
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// DefSizeBuckets are the default bounds for count-valued histograms
// (binding rows, result rows): powers of ten.
var DefSizeBuckets = []float64{0, 1, 10, 100, 1_000, 10_000, 100_000, 1_000_000}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bound bucket histogram. Observations are
// lock-free; bounds are upper-inclusive with an implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the histogram's bucket bounds. Shared, do not mutate.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts reads the per-bucket (non-cumulative) counts; the last
// entry is the implicit +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution from the bucket counts, interpolating linearly within
// the bucket holding the target rank — the same estimate
// histogram_quantile() would compute from the exposition, precomputed
// here so dashboards don't re-derive it. 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	return QuantileFromBuckets(h.bounds, h.BucketCounts(), q)
}

// QuantileFromBuckets is Histogram.Quantile over explicit per-bucket
// counts (len(bounds)+1, last = +Inf) — shared with the metrics
// history, which computes quantiles over bucket *deltas* between two
// samples to get per-window rather than lifetime percentiles.
func QuantileFromBuckets(bounds []float64, buckets []uint64, q float64) float64 {
	var total uint64
	for _, c := range buckets {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: no upper bound to interpolate toward; the
			// highest finite bound is the best (under)estimate.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

// metric is anything a family's series map can hold.
type metric interface{ isMetric() }

func (*Counter) isMetric()   {}
func (*Gauge) isMetric()     {}
func (*Histogram) isMetric() {}

// family is one exposition family: a name, a type, label names, and a
// series per observed label-value combination (exactly one unlabeled
// series when labels is empty).
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string
	bounds []float64 // histograms only

	mu     sync.Mutex
	series map[string]metric // key: label values joined by \x1f
	order  []string
}

const labelSep = "\x1f"

func (f *family) get(values []string, make func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := make()
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

// snapshot returns the series keys in creation order with their
// metrics (stable exposition without holding the lock while writing).
func (f *family) snapshot() ([]string, []metric) {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := append([]string(nil), f.order...)
	ms := make([]metric, len(keys))
	for i, k := range keys {
		ms[i] = f.series[k]
	}
	return keys, ms
}

// Registry holds metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) family(name, help, typ string, bounds []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, bounds: bounds, series: map[string]metric{}}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, "counter", nil, nil)
	return f.get(nil, func() metric { return &Counter{} }).(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, "gauge", nil, nil)
	return f.get(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or fetches) an unlabeled histogram with the
// given bucket bounds (nil = DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	f := r.family(name, help, "histogram", bounds, nil)
	return f.get(nil, func() metric { return newHistogram(f.bounds) }).(*Histogram)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, "counter", nil, labels)}
}

// With returns the series for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() metric { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, "gauge", nil, labels)}
}

// With returns the series for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() metric { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family (nil bounds =
// DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return &HistogramVec{r.family(name, help, "histogram", bounds, labels)}
}

// With returns the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() metric { return newHistogram(v.f.bounds) }).(*Histogram)
}

// ---- exposition ----------------------------------------------------------

// labelString renders {k="v",...} for a series key; extra appends one
// more pair (the histogram "le" label). Go's %q escaping coincides
// with the Prometheus text format's (\\, \", \n).
func (f *family) labelString(key string, extra ...string) string {
	if len(f.labels) == 0 && len(extra) == 0 {
		return ""
	}
	var parts []string
	if len(f.labels) > 0 {
		values := strings.Split(key, labelSep)
		for i, l := range f.labels {
			parts = append(parts, fmt.Sprintf("%s=%q", l, values[i]))
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(x float64) string {
	if math.IsInf(x, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		keys, ms := f.snapshot()
		if len(keys) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for i, key := range keys {
			switch m := ms[i].(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelString(key), m.Value()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelString(key), m.Value()); err != nil {
					return err
				}
			case *Histogram:
				cum := uint64(0)
				for bi, bound := range m.bounds {
					cum += m.buckets[bi].Load()
					ls := f.labelString(key, "le", formatFloat(bound))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cum); err != nil {
						return err
					}
				}
				cum += m.buckets[len(m.bounds)].Load()
				ls := f.labelString(key, "le", "+Inf")
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, f.labelString(key), formatFloat(m.Sum())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, f.labelString(key), m.Count()); err != nil {
					return err
				}
			}
		}
		if f.typ == "histogram" {
			if err := writeQuantiles(w, f, keys, ms); err != nil {
				return err
			}
		}
	}
	return nil
}

// expositionQuantiles are the precomputed percentiles appended after
// each histogram family as a derived <name>_quantile gauge family, so
// scrapers without a PromQL engine (gsqltop, curl) get p50/p90/p99
// without re-deriving them from buckets.
var expositionQuantiles = []float64{0.5, 0.9, 0.99}

func writeQuantiles(w io.Writer, f *family, keys []string, ms []metric) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s_quantile gauge\n", f.name); err != nil {
		return err
	}
	for i, key := range keys {
		h, ok := ms[i].(*Histogram)
		if !ok {
			continue
		}
		buckets := h.BucketCounts()
		for _, q := range expositionQuantiles {
			ls := f.labelString(key, "q", formatFloat(q))
			v := QuantileFromBuckets(h.bounds, buckets, q)
			if _, err := fmt.Fprintf(w, "%s_quantile%s %s\n", f.name, ls, formatFloat(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---- structured gather ---------------------------------------------------

// Point is one series' state at a moment: name, rendered labels, kind,
// and the kind-appropriate payload. The structured sibling of
// WritePrometheus, consumed by the metrics history sampler and the
// /cluster/node status builder — both need values, not text.
type Point struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"` // rendered {a="b",...}, "" when unlabeled
	Kind   string  `json:"kind"`             // "counter" | "gauge" | "histogram"
	Value  float64 `json:"value"`            // counters and gauges

	// Histograms only.
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`  // shared with the live histogram; do not mutate
	Buckets []uint64  `json:"buckets,omitempty"` // per-bucket counts, len(Bounds)+1 (+Inf last)
}

// Key identifies the series across samples: name plus rendered labels.
func (p Point) Key() string { return p.Name + p.Labels }

// Gather snapshots every series in registration order. Values within
// one histogram point are read bucket-by-bucket (same tearing window
// as a scrape), but each Point is internally consistent enough for
// rate and quantile math over successive gathers.
func (r *Registry) Gather() []Point {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var out []Point
	for _, f := range fams {
		keys, ms := f.snapshot()
		for i, key := range keys {
			p := Point{Name: f.name, Labels: f.labelString(key), Kind: f.typ}
			switch m := ms[i].(type) {
			case *Counter:
				p.Value = float64(m.Value())
			case *Gauge:
				p.Value = float64(m.Value())
			case *Histogram:
				p.Count = m.Count()
				p.Sum = m.Sum()
				p.Bounds = m.bounds
				p.Buckets = m.BucketCounts()
			}
			out = append(out, p)
		}
	}
	return out
}

// PublishExpvar publishes the registry as one expvar.Func under name.
// expvar publication is process-global and panics on duplicate names,
// so callers do this once per process, not per registry build.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Snapshot returns a JSON-marshalable view of every series — the
// expvar surface. Histograms export {count, sum}; labeled series are
// keyed "name{a=x,b=y}".
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	out := map[string]any{}
	for _, f := range fams {
		keys, ms := f.snapshot()
		for i, key := range keys {
			name := f.name
			if len(f.labels) > 0 {
				values := strings.Split(key, labelSep)
				var parts []string
				for li, l := range f.labels {
					parts = append(parts, l+"="+values[li])
				}
				name += "{" + strings.Join(parts, ",") + "}"
			}
			switch m := ms[i].(type) {
			case *Counter:
				out[name] = m.Value()
			case *Gauge:
				out[name] = m.Value()
			case *Histogram:
				out[name] = map[string]any{"count": m.Count(), "sum": m.Sum()}
			}
		}
	}
	return out
}
