package algo

import (
	"math"
	"testing"

	"gsqlgo/internal/core"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/value"
)

func TestPageRankMatchesNative(t *testing.T) {
	g := graph.BuildLinkGraph(80, 6, 3)
	e := core.New(g, core.Options{})
	if err := e.Install(PageRankSource("Page", "LinkTo")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run("PageRank", map[string]value.Value{
		"maxChange":     value.NewFloat(0.0005),
		"maxIteration":  value.NewInt(30),
		"dampingFactor": value.NewFloat(0.85),
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := PageRankNative(g, 0.0005, 30, 0.85)
	tab := res.Printed[0]
	if len(tab.Rows) != g.NumVertices() {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		v, _ := g.VertexByKey("Page", row[0].Str())
		if math.Abs(row[1].Float()-oracle[v]) > 1e-6 {
			t.Errorf("score[%s] = %v, native %v", row[0], row[1], oracle[v])
		}
	}
}

func knowsGraph(t *testing.T) *graph.Graph {
	t.Helper()
	s := graph.NewSchema()
	if _, err := s.AddVertexType("Person", graph.AttrDef{Name: "name", Type: graph.AttrString}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdgeType("Knows", false); err != nil {
		t.Fatal(err)
	}
	g := graph.New(s)
	// Two components: {0..5} in a path plus chord, {6..8} in a
	// triangle, and an isolated vertex 9.
	vs := make([]graph.VID, 10)
	for i := range vs {
		v, err := g.AddVertex("Person", string(rune('a'+i)), map[string]value.Value{
			"name": value.NewString(string(rune('a' + i))),
		})
		if err != nil {
			t.Fatal(err)
		}
		vs[i] = v
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 4}, {6, 7}, {7, 8}, {8, 6}} {
		if _, err := g.AddEdge("Knows", vs[e[0]], vs[e[1]], nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestWCCMatchesNative(t *testing.T) {
	g := knowsGraph(t)
	e := core.New(g, core.Options{})
	if err := e.Install(WCCSource("Person", "Knows")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run("WCC", map[string]value.Value{"maxIteration": value.NewInt(50)})
	if err != nil {
		t.Fatal(err)
	}
	oracle := WCCNative(g)
	tab := res.Printed[0]
	for _, row := range tab.Rows {
		v, _ := g.VertexByKey("Person", row[0].Str())
		if row[1].Int() != int64(oracle[v]) {
			t.Errorf("cc[%s] = %v, native %d", row[0], row[1], oracle[v])
		}
	}
	// Distinct components: two non-trivial plus the isolated vertex.
	comps := map[int64]bool{}
	for _, row := range tab.Rows {
		comps[row[1].Int()] = true
	}
	if len(comps) != 3 {
		t.Errorf("components = %d, want 3", len(comps))
	}
}

func TestSSSPMatchesNative(t *testing.T) {
	// Undirected social distances.
	g := knowsGraph(t)
	e := core.New(g, core.Options{})
	if err := e.Install(SSSPSource("Person", "Knows")); err != nil {
		t.Fatal(err)
	}
	src, _ := g.VertexByKey("Person", "a")
	res, err := e.Run("SSSP", map[string]value.Value{
		"src": value.NewVertex(int64(src)), "maxIteration": value.NewInt(50),
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := SSSPNative(g, src, "Knows")
	tab := res.Tables["Dist"]
	if tab == nil {
		t.Fatal("Dist table missing")
	}
	reachable := 0
	for _, d := range oracle {
		if d < math.MaxInt32 {
			reachable++
		}
	}
	if len(tab.Rows) != reachable {
		t.Fatalf("reachable rows = %d, native %d", len(tab.Rows), reachable)
	}
	for _, row := range tab.Rows {
		v, _ := g.VertexByKey("Person", row[0].Str())
		if row[1].Int() != int64(oracle[v]) {
			t.Errorf("dist[%s] = %v, native %d", row[0], row[1], oracle[v])
		}
	}

	// Directed variant on the link graph.
	lg := graph.BuildLinkGraph(50, 3, 9)
	le := core.New(lg, core.Options{})
	if err := le.Install(SSSPSource("Page", "LinkTo>")); err != nil {
		t.Fatal(err)
	}
	lsrc, _ := lg.VertexByKey("Page", "page0")
	lres, err := le.Run("SSSP", map[string]value.Value{
		"src": value.NewVertex(int64(lsrc)), "maxIteration": value.NewInt(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	loracle := SSSPNative(lg, lsrc, "LinkTo")
	for _, row := range lres.Tables["Dist"].Rows {
		v, _ := lg.VertexByKey("Page", row[0].Str())
		if row[1].Int() != int64(loracle[v]) {
			t.Errorf("directed dist[%s] = %v, native %d", row[0], row[1], loracle[v])
		}
	}
}
