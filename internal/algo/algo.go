// Package algo collects the iterative graph analytics of Section 5 as
// GSQL query sources — PageRank (Figure 4), weakly connected
// components and single-source shortest paths, the algorithm class
// the paper argues needs accumulator/control-flow support inside the
// query language — together with independent native Go implementations
// used as test oracles.
package algo

import (
	"fmt"
	"math"

	"gsqlgo/internal/graph"
)

// PageRankSource returns Figure 4's PageRank for a given vertex/edge
// type, with the conventional explicit @@maxDifference initializer.
func PageRankSource(vertexType, edgeType string) string {
	return fmt.Sprintf(`
CREATE QUERY PageRank (float maxChange, int maxIteration, float dampingFactor) {
  MaxAccum<float> @@maxDifference = 9999;
  SumAccum<float> @received_score;
  SumAccum<float> @score = 1;

  AllV = {%[1]s.*};
  WHILE @@maxDifference > maxChange LIMIT maxIteration DO
     @@maxDifference = 0;
     S = SELECT v
         FROM       AllV:v -(%[2]s>)- %[1]s:n
         ACCUM      n.@received_score += v.@score/v.outdegree()
         POST-ACCUM v.@score = 1-dampingFactor + dampingFactor * v.@received_score,
                    v.@received_score = 0,
                    @@maxDifference += abs(v.@score - v.@score');
  END;
  AllP = {%[1]s.*};
  PRINT AllP[AllP.name, AllP.@score];
}
`, vertexType, edgeType)
}

// PageRankNative mirrors the GSQL semantics exactly: synchronous
// updates, and only vertices with outgoing edges are rescored (they
// are the distinct FROM bindings).
func PageRankNative(g *graph.Graph, maxChange float64, maxIter int, damping float64) []float64 {
	n := g.NumVertices()
	score := make([]float64, n)
	for i := range score {
		score[i] = 1
	}
	received := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		maxDiff := 0.0
		for i := range received {
			received[i] = 0
		}
		for v := 0; v < n; v++ {
			out := g.OutDegree(graph.VID(v))
			if out == 0 {
				continue
			}
			share := score[v] / float64(out)
			for _, h := range g.Neighbors(graph.VID(v)) {
				if h.Dir == graph.DirOut || h.Dir == graph.DirUndir {
					received[h.To] += share
				}
			}
		}
		for v := 0; v < n; v++ {
			if g.OutDegree(graph.VID(v)) == 0 {
				continue
			}
			old := score[v]
			score[v] = 1 - damping + damping*received[v]
			if d := math.Abs(score[v] - old); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff <= maxChange {
			break
		}
	}
	return score
}

// WCCSource returns a label-propagation weakly-connected-components
// query over an undirected (or any-direction) edge type: every vertex
// starts labelled with its own id and repeatedly adopts the minimum
// label among its neighbours via a MinAccum, the canonical
// accumulator+loop composition of Section 5.
func WCCSource(vertexType, edgeType string) string {
	return fmt.Sprintf(`
CREATE QUERY WCC (int maxIteration) {
  MinAccum<int> @cc = 9223372036854775807;
  MinAccum<int> @ccNew = 9223372036854775807;
  SumAccum<int> @@changed = 1;

  Start = {%[1]s.*};
  Init = SELECT v FROM Start:v
         POST_ACCUM v.@cc = v.vid(), v.@ccNew = v.vid();

  WHILE @@changed > 0 LIMIT maxIteration DO
    @@changed = 0;
    S = SELECT v
        FROM Start:v -(_)- %[1]s:n
        ACCUM n.@ccNew += v.@cc
        POST-ACCUM @@changed += n.@cc - min(n.@cc, n.@ccNew),
                   n.@cc = min(n.@cc, n.@ccNew);
  END;

  AllV = {%[1]s.*};
  PRINT AllV[AllV.name, AllV.@cc];
}
`, vertexType)
}

// WCCNative computes components over all edges regardless of
// direction via union-find.
func WCCNative(g *graph.Graph) []int {
	parent := make([]int, g.NumVertices())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for e := graph.EID(0); int(e) < g.NumEdges(); e++ {
		s, d := g.EdgeEndpoints(e)
		union(int(s), int(d))
	}
	out := make([]int, g.NumVertices())
	for v := range out {
		out[v] = find(v)
	}
	// Normalize to the minimum vertex id per component, matching the
	// GSQL query's labels.
	minOf := map[int]int{}
	for v, r := range out {
		if m, ok := minOf[r]; !ok || v < m {
			minOf[r] = v
		}
	}
	for v, r := range out {
		out[v] = minOf[r]
	}
	return out
}

// SSSPSource returns an unweighted single-source shortest-path query:
// frontier expansion with a MinAccum distance, terminating when the
// frontier is empty (vertex-set size in the loop condition).
// edgeDarpe is the hop symbol, direction-adorned as desired (e.g.
// "LinkTo>" to follow directed links forward, "Knows" for undirected
// edges).
func SSSPSource(vertexType, edgeDarpe string) string {
	return fmt.Sprintf(`
CREATE QUERY SSSP (vertex<%[1]s> src, int maxIteration) {
  MinAccum<int> @dist = 1000000000;

  Frontier = SELECT src FROM %[1]s:src
             POST_ACCUM src.@dist = 0;

  WHILE Frontier.size() > 0 LIMIT maxIteration DO
    Frontier = SELECT n
               FROM Frontier:f -(%[2]s)- %[1]s:n
               WHERE f.@dist + 1 < n.@dist
               ACCUM n.@dist += f.@dist + 1;
  END;

  AllV = {%[1]s.*};
  SELECT v.name AS name, v.@dist AS dist INTO Dist
  FROM AllV:v
  WHERE v.@dist < 1000000000
  ORDER BY v.@dist ASC, v.name ASC;
}
`, vertexType, edgeDarpe)
}

// SSSPNative is a plain BFS over one edge type, following undirected
// edges both ways and directed edges forward.
func SSSPNative(g *graph.Graph, src graph.VID, edgeType string) []int {
	const inf = math.MaxInt32
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	frontier := []graph.VID{src}
	for len(frontier) > 0 {
		var next []graph.VID
		for _, v := range frontier {
			for _, h := range g.Neighbors(v) {
				if g.EdgeTypeOf(h.Edge).Name != edgeType || h.Dir == graph.DirIn {
					continue
				}
				if dist[h.To] > dist[v]+1 {
					dist[h.To] = dist[v] + 1
					next = append(next, h.To)
				}
			}
		}
		frontier = next
	}
	return dist
}
