package core

import (
	"container/list"
	"sync"

	"gsqlgo/internal/darpe"
	"gsqlgo/internal/graph"
	"gsqlgo/internal/match"
)

// defaultCountCacheSize bounds the count cache when Options leaves the
// size unset. At one entry per (DFA, semantics, source) it comfortably
// covers the working set of a served installed-query mix while keeping
// worst-case memory at cap · O(V) words.
const defaultCountCacheSize = 4096

// countKey identifies one cached single-source count run. The DFA
// pointer stands in for the DARPE text: the engine's dfa cache
// guarantees one stable *darpe.DFA per DARPE, so pointer identity is
// exact and hashing it is free. Semantics is part of the key because
// the same DARPE yields different Counts under different legality
// flavors (a query-level SEMANTICS override shares the engine cache).
type countKey struct {
	d   *darpe.DFA
	sem match.Semantics
	src graph.VID
}

// countCache is the engine-level LRU of single-source SDMC results:
// warm re-runs of installed queries against an unchanged graph skip
// the BFS entirely. Entries are immutable once inserted (runs share
// the *match.Counts), and the whole cache self-invalidates when the
// graph's topology epoch moves — the same mutation events that
// invalidate Freeze()'s CSR, so a cached count can never outlive the
// adjacency it was computed from.
type countCache struct {
	g   *graph.Graph
	cap int

	mu    sync.Mutex
	epoch uint64                     // graph epoch the entries belong to
	order *list.List                 // of countKey; front = most recent
	items map[countKey]*list.Element // element value is *countEntry
}

type countEntry struct {
	key countKey
	c   *match.Counts
}

// newCountCache sizes a cache from Options.CountCacheSize: 0 selects
// the default cap, negative disables caching (nil cache).
func newCountCache(g *graph.Graph, size int) *countCache {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = defaultCountCacheSize
	}
	return &countCache{
		g:     g,
		cap:   size,
		order: list.New(),
		items: make(map[countKey]*list.Element),
	}
}

// syncEpochLocked discards every entry when the graph's topology has
// moved since they were computed.
func (cc *countCache) syncEpochLocked() {
	if e := cc.g.Epoch(); e != cc.epoch {
		cc.epoch = e
		cc.order.Init()
		clear(cc.items)
	}
}

// get returns the cached counts for k, or nil on miss. epoch is the
// epoch of the snapshot the caller is running against: under MVCC a
// reader may be pinned on a snapshot older than the head the cache
// tracks, and serving it counts computed at a newer topology would
// break snapshot isolation — such lookups miss instead (and their puts
// are dropped by the same epoch guard).
func (cc *countCache) get(k countKey, epoch uint64) *match.Counts {
	if cc == nil {
		return nil
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.syncEpochLocked()
	if epoch != cc.epoch {
		return nil
	}
	el, ok := cc.items[k]
	if !ok {
		return nil
	}
	cc.order.MoveToFront(el)
	return el.Value.(*countEntry).c
}

// put inserts counts computed outside the lock, double-checked like
// the DFA cache: when a racing run already inserted k, the prior entry
// wins so every concurrent reader shares one *match.Counts. epoch is
// the graph epoch the caller observed before computing; counts from an
// epoch that has since moved are dropped rather than inserted, keeping
// stale results out.
func (cc *countCache) put(k countKey, c *match.Counts, epoch uint64) {
	if cc == nil {
		return
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.syncEpochLocked()
	if epoch != cc.epoch {
		return
	}
	if el, ok := cc.items[k]; ok {
		cc.order.MoveToFront(el)
		return
	}
	cc.items[k] = cc.order.PushFront(&countEntry{key: k, c: c})
	for cc.order.Len() > cc.cap {
		oldest := cc.order.Back()
		cc.order.Remove(oldest)
		delete(cc.items, oldest.Value.(*countEntry).key)
	}
}

// len reports the live entry count (tests).
func (cc *countCache) len() int {
	if cc == nil {
		return 0
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.order.Len()
}
