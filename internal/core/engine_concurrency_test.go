package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gsqlgo/internal/graph"
)

// TestEngineConcurrentInstallRunList hammers one Engine from many
// goroutines mixing Install, Run, Queries and QueryParams — the
// serving layer's exact access pattern. Run under -race this checks
// the catalog mutex discipline (including the double-checked DFA
// cache insert).
func TestEngineConcurrentInstallRunList(t *testing.T) {
	e := salesEngine(t, Options{Workers: 2})
	if err := e.Install(figure2Src); err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					// Unique name per goroutine+iteration; the DARPE
					// differs per goroutine so DFA compiles race too.
					src := fmt.Sprintf(`CREATE QUERY W%d_%d() FOR GRAPH SalesGraph {
  SumAccum<int> @@n;
  S = SELECT p FROM Customer:c -(Bought>*1..%d)- Product:p ACCUM @@n += 1;
  RETURN @@n;
}`, w, i, 1+w%3)
					if err := e.Install(src); err != nil {
						errs <- fmt.Errorf("install w%d i%d: %w", w, i, err)
						return
					}
				case 1:
					if _, err := e.Run("RevenuePerToyAndCustomer", nil); err != nil {
						errs <- fmt.Errorf("run w%d i%d: %w", w, i, err)
						return
					}
				case 2:
					if len(e.Queries()) == 0 {
						errs <- fmt.Errorf("w%d i%d: empty catalog", w, i)
						return
					}
				case 3:
					if _, err := e.QueryParams("RevenuePerToyAndCustomer"); err != nil {
						errs <- fmt.Errorf("params w%d i%d: %w", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every install must have landed: base query + one per (w, i%4==0).
	want := 1 + goroutines*(iters/4+1)
	if got := len(e.Queries()); got != want {
		t.Errorf("catalog size = %d, want %d", got, want)
	}
}

// TestRunCtxAlreadyCancelled: a dead context fails before execution,
// typed ErrCancelled.
func TestRunCtxAlreadyCancelled(t *testing.T) {
	e := salesEngine(t, Options{})
	if err := e.Install(figure2Src); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.RunCtx(ctx, "RevenuePerToyAndCustomer", nil)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// TestRunCtxDeadlineCancelsLoop: the per-statement checkpoint stops a
// long WHILE loop once the deadline passes.
func TestRunCtxDeadlineCancelsLoop(t *testing.T) {
	e := salesEngine(t, Options{})
	if err := e.Install(`CREATE QUERY Spin() {
  SumAccum<int> @@n;
  WHILE true LIMIT 100000000 DO
    @@n += 1;
  END;
  RETURN @@n;
}`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.RunCtx(ctx, "Spin", nil)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; checkpoints not firing", elapsed)
	}
}

// TestRunCtxDeadlineCancelsHopExpansion: cancellation propagates into
// the SDMC counted-hop kernel on a graph big enough that the BFS phase
// dominates.
func TestRunCtxDeadlineCancelsHopExpansion(t *testing.T) {
	g := graph.BuildLinkGraph(1200, 6, 7)
	e := New(g, Options{Workers: 2})
	if err := e.Install(`CREATE QUERY Reach() {
  SumAccum<int> @@n;
  S = SELECT t FROM Page:p -(LinkTo>*1..4)- Page:t ACCUM @@n += 1;
  RETURN @@n;
}`); err != nil {
		t.Fatal(err)
	}
	// Sanity: uncancelled run completes.
	if _, err := e.Run("Reach", nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := e.RunCtx(ctx, "Reach", nil)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// TestErrorTaxonomy pins the errors.Is contract the serving layer's
// status mapping relies on.
func TestErrorTaxonomy(t *testing.T) {
	e := salesEngine(t, Options{})
	if _, err := e.Run("nope", nil); !errors.Is(err, ErrUnknownQuery) {
		t.Errorf("unknown query: err = %v, want ErrUnknownQuery", err)
	}
	if err := e.Install("CREATE QUERY {"); !errors.Is(err, ErrParse) {
		t.Errorf("bad source: err = %v, want ErrParse", err)
	}
	if err := e.Install(figure2Src); err != nil {
		t.Fatal(err)
	}
	if err := e.Install(figure2Src); !errors.Is(err, ErrDuplicateQuery) {
		t.Errorf("re-install: err = %v, want ErrDuplicateQuery", err)
	}
	if _, err := e.Explain("nope"); !errors.Is(err, ErrUnknownQuery) {
		t.Errorf("explain unknown: err = %v, want ErrUnknownQuery", err)
	}
}

// TestRunStats checks the binding-row counter the serving layer turns
// into a histogram.
func TestRunStats(t *testing.T) {
	e := salesEngine(t, Options{})
	res, err := e.InstallAndRun(figure2Src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Selects != 3 {
		t.Errorf("Selects = %d, want 3", res.Stats.Selects)
	}
	if res.Stats.BindingRows <= 0 {
		t.Errorf("BindingRows = %d, want > 0", res.Stats.BindingRows)
	}
}
