package core

import (
	"fmt"
	"strings"
	"testing"

	"gsqlgo/internal/graph"
	"gsqlgo/internal/value"
)

// example1Src is the paper's Figure 1 query: join the relational
// Employee table against the LinkedIn graph to find the employees with
// the most connections outside the company since a given date.
const example1Src = `
CREATE QUERY TopConnectors(datetime since, int k) FOR GRAPH LinkedIn {
  SELECT emp.name AS name, emp.email AS email, count(*) AS connections INTO Result
  FROM Employee:emp, Person:p -(Connected:c)- Person:outsider
  WHERE emp.email == p.email
    AND outsider.worksFor != "ACME"
    AND c.since >= since
  GROUP BY emp.name, emp.email
  ORDER BY connections DESC, emp.name ASC
  LIMIT k;

  RETURN Result;
}
`

func linkedInFixture(t *testing.T) (*Engine, *graph.Graph, *RelTable) {
	t.Helper()
	g := graph.BuildLinkedInGraph(graph.LinkedInConfig{
		Persons: 120, Connections: 800, Companies: 6, Seed: 13,
	})
	e := New(g, Options{})
	// HR table: ACME employees are a subset of the graph's persons.
	var rows [][]value.Value
	for i := 0; i < 120; i += 3 {
		rows = append(rows, []value.Value{
			value.NewString(fmt.Sprintf("Employee %d", i)),
			value.NewString(fmt.Sprintf("person%d@mail.example", i)),
		})
	}
	tbl, err := NewRelTable("Employee", []string{"name", "email"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	return e, g, tbl
}

func TestExample1RelationalGraphJoin(t *testing.T) {
	e, g, tbl := linkedInFixture(t)
	if err := e.Install(example1Src); err != nil {
		t.Fatal(err)
	}
	since := graph.MustDatetime("2016-01-01")
	res, err := e.Run("TopConnectors", map[string]value.Value{
		"since": since, "k": value.NewInt(1000),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: per employee email, count Connected edges since the date
	// to persons outside ACME.
	oracle := map[string]int64{}
	for _, row := range tbl.Rows {
		email := row[1].Str()
		var person graph.VID = -1
		for _, v := range g.VerticesOfType("Person") {
			if em, _ := g.VertexAttr(v, "email"); em.Str() == email {
				person = v
				break
			}
		}
		if person < 0 {
			continue
		}
		for _, h := range g.Neighbors(person) {
			if g.EdgeTypeOf(h.Edge).Name != "Connected" {
				continue
			}
			sv, _ := g.EdgeAttr(h.Edge, "since")
			if sv.Datetime() < since.Datetime() {
				continue
			}
			wf, _ := g.VertexAttr(h.To, "worksFor")
			if wf.Str() != "ACME" {
				oracle[email]++
			}
		}
	}
	want := 0
	for _, n := range oracle {
		if n > 0 {
			want++
		}
	}
	tab := res.Returned
	if len(tab.Rows) != want {
		t.Fatalf("result rows = %d, oracle %d", len(tab.Rows), want)
	}
	if want == 0 {
		t.Fatal("oracle found nothing; adjust the fixture")
	}
	prev := int64(1 << 62)
	for _, row := range tab.Rows {
		email, n := row[1].Str(), row[2].Int()
		if n != oracle[email] {
			t.Errorf("connections[%s] = %d, oracle %d", email, n, oracle[email])
		}
		if n > prev {
			t.Error("ORDER BY connections DESC violated")
		}
		prev = n
	}
}

func TestRelTableErrors(t *testing.T) {
	e, _, tbl := linkedInFixture(t)
	if err := e.RegisterTable(tbl); err == nil {
		t.Error("duplicate table registration must error")
	}
	if err := e.RegisterTable(nil); err == nil {
		t.Error("nil table must error")
	}
	if _, err := NewRelTable("", nil, nil); err == nil {
		t.Error("table without columns must error")
	}
	if _, err := NewRelTable("T", []string{"a", "a"}, nil); err == nil {
		t.Error("duplicate column must error")
	}
	if _, err := NewRelTable("T", []string{"a"}, [][]value.Value{{value.NewInt(1), value.NewInt(2)}}); err == nil {
		t.Error("arity mismatch must error")
	}
	// Graph hops cannot start from a relational alias.
	if err := e.Install(`
CREATE QUERY BadHop() {
  S = SELECT p FROM Employee:emp -(Connected)- Person:p;
}`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run("BadHop", nil); err == nil || !strings.Contains(err.Error(), "relational table") {
		t.Errorf("hop from table: %v", err)
	}
	// Unknown column diagnoses.
	if err := e.Install(`
CREATE QUERY BadCol() {
  SELECT emp.salary INTO T FROM Employee:emp;
}`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run("BadCol", nil); err == nil || !strings.Contains(err.Error(), "no column") {
		t.Errorf("unknown column: %v", err)
	}
	// Duplicate table alias across conjuncts.
	if err := e.Install(`
CREATE QUERY DupAlias() {
  SELECT emp.name INTO T FROM Employee:emp, Employee:emp2, Employee:emp;
}`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run("DupAlias", nil); err == nil || !strings.Contains(err.Error(), "table alias") {
		t.Errorf("duplicate table alias: %v", err)
	}
}

func TestLoadTableCSV(t *testing.T) {
	tbl, err := LoadTableCSV("People", strings.NewReader(
		"name,age:int,score:float,active:bool,joined:datetime\nAnn,30,1.5,true,2020-01-02\nBen,40,2.5,false,1234\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || len(tbl.Cols) != 5 {
		t.Fatalf("table shape: %dx%d", len(tbl.Rows), len(tbl.Cols))
	}
	if tbl.Rows[0][1].Int() != 30 || tbl.Rows[0][2].Float() != 1.5 || !tbl.Rows[0][3].Bool() {
		t.Errorf("typed columns wrong: %v", tbl.Rows[0])
	}
	if tbl.Rows[1][4].Kind() != value.KindDatetime || tbl.Rows[1][4].Datetime() != 1234 {
		t.Errorf("datetime column wrong: %v", tbl.Rows[1][4])
	}
	for _, bad := range []string{
		"a:int\nnotanint\n",
		"a:float\nx\n",
		"a:bool\nx\n",
		"a:datetime\njunk here\n",
		"a:alien\n1\n",
	} {
		if _, err := LoadTableCSV("T", strings.NewReader(bad)); err == nil {
			t.Errorf("LoadTableCSV(%q) must error", bad)
		}
	}
}

// TestRelTableCartesianMultiplicity checks that relational conjuncts
// participate in the bag semantics of grouped outputs.
func TestRelTableCartesianMultiplicity(t *testing.T) {
	g := graph.BuildDiamondChain(2)
	e := New(g, Options{})
	tbl, err := NewRelTable("Factors", []string{"f"}, [][]value.Value{
		{value.NewInt(10)}, {value.NewInt(20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	// Each of the 8 edge bindings pairs with both factor rows.
	res, err := e.InstallAndRun(`
CREATE QUERY Cross() {
  SELECT count(*) AS n, sum(r.f) AS s INTO T
  FROM V:a -(E>)- V:b, Factors:r;
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Tables["T"].Rows[0]
	if row[0].Int() != 16 {
		t.Errorf("cartesian count = %v, want 16", row[0])
	}
	if row[1].Float() != 8*(10+20) {
		t.Errorf("sum over cartesian = %v, want 240", row[1])
	}
}
